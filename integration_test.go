package hmmer3gpu

// End-to-end integration: generate a workload, round-trip it through
// the on-disk formats (HMMER3 ASCII + FASTA), and run the search on
// every engine — CPU, single simulated K40, and a 4x Fermi system —
// asserting they retrieve the same hits.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

func TestEndToEndAllEngines(t *testing.T) {
	abc := alphabet.New()
	query, err := workload.Model("it-query", 110, abc, 21)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.EnvnrLike(0.0001, 22)
	spec.HomologFrac = 0.03
	db, err := workload.Generate(spec, query, abc)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip both inputs through their file formats.
	dir := t.TempDir()
	hmmPath := filepath.Join(dir, "q.hmm")
	fastaPath := filepath.Join(dir, "db.fasta")
	hf, err := os.Create(hmmPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := hmm.Write(hf, query); err != nil {
		t.Fatal(err)
	}
	hf.Close()
	ff, err := os.Create(fastaPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.WriteFASTA(ff, db, abc); err != nil {
		t.Fatal(err)
	}
	ff.Close()

	hf2, err := os.Open(hmmPath)
	if err != nil {
		t.Fatal(err)
	}
	defer hf2.Close()
	query2, err := hmm.Read(hf2, abc)
	if err != nil {
		t.Fatal(err)
	}
	ff2, err := os.Open(fastaPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ff2.Close()
	db2, err := seq.ReadFASTA(ff2, abc)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumSeqs() != db.NumSeqs() {
		t.Fatalf("FASTA round trip lost sequences: %d vs %d", db2.NumSeqs(), db.NumSeqs())
	}
	for i := range db.Seqs {
		if !bytes.Equal(db.Seqs[i].Residues, db2.Seqs[i].Residues) {
			t.Fatalf("sequence %d corrupted by the FASTA round trip", i)
		}
	}

	// Search with the round-tripped inputs on all three engines.
	opts := pipeline.DefaultOptions()
	opts.Calibration = stats.CalibrateOptions{N: 128, L: 100, Seed: 23, TailMass: 0.04}
	pl, err := pipeline.New(query2, int(db2.MeanLen()), opts)
	if err != nil {
		t.Fatal(err)
	}
	cpuRes, err := pl.RunCPU(db2)
	if err != nil {
		t.Fatal(err)
	}
	gpuRes, err := pl.RunGPU(simt.NewDevice(simt.TeslaK40()), gpu.MemAuto, db2)
	if err != nil {
		t.Fatal(err)
	}
	multiRes, err := pl.RunMultiGPU(simt.NewSystem(simt.GTX580(), 4), gpu.MemAuto, db2)
	if err != nil {
		t.Fatal(err)
	}

	if len(cpuRes.Hits) == 0 {
		t.Fatal("no hits found; homologs were planted")
	}
	for name, res := range map[string]*pipeline.Result{"gpu": gpuRes, "multigpu": multiRes} {
		if len(res.Hits) != len(cpuRes.Hits) {
			t.Fatalf("%s found %d hits, cpu found %d", name, len(res.Hits), len(cpuRes.Hits))
		}
		for i := range res.Hits {
			a, b := cpuRes.Hits[i], res.Hits[i]
			if a.Index != b.Index || a.FwdBits != b.FwdBits || a.EValue != b.EValue {
				t.Fatalf("%s hit %d differs: %+v vs %+v", name, i, b, a)
			}
		}
	}

	// The quantised-model round trip may shift scores by at most the
	// serialisation precision; hits must be planted homologs with
	// decisive E-values.
	for _, h := range cpuRes.Hits {
		if h.EValue > 1e-3 {
			t.Errorf("hit %s has weak E-value %g", h.Name, h.EValue)
		}
	}
}
