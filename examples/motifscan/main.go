// Motifscan: the paper's motivating use case — scanning a set of
// protein-family motif models against one sequence database and
// reporting which families have members in it. One model per family is
// searched through the accelerated pipeline; families are sized from
// the Pfam distribution (mostly small, a few large), which also
// demonstrates the shared/global memory auto-switch.
package main

import (
	"fmt"
	"log"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/workload"
)

func main() {
	abc := alphabet.New()
	dev := simt.NewDevice(simt.TeslaK40())

	// Family models across the size spectrum (Pfam-like: most <= 400).
	familySizes := []int{60, 120, 250, 400, 1100}
	type family struct {
		name string
		m    int
	}
	var families []family
	for i, m := range familySizes {
		families = append(families, family{fmt.Sprintf("FAM%04d-M%d", i, m), m})
	}

	// One shared target database; its homologs are planted from the
	// third family, so exactly one scan should light up.
	planted := 2
	plantedModel, err := workload.Model(families[planted].name, families[planted].m, abc, int64(planted))
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.EnvnrLike(0.0001, 99)
	spec.HomologFrac = 0.03
	db, err := workload.Generate(spec, plantedModel, abc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanning %d family models against %s (%d seqs, %d residues)\n\n",
		len(families), db.Name, db.NumSeqs(), db.TotalResidues())

	fmt.Printf("%-16s %6s %8s %10s %8s %s\n", "family", "M", "mem", "MSV-pass", "hits", "best E-value")
	for i, fam := range families {
		var model = plantedModel
		if i != planted {
			model, err = workload.Model(fam.name, fam.m, abc, int64(i))
			if err != nil {
				log.Fatal(err)
			}
		}
		pl, err := pipeline.New(model, int(db.MeanLen()), pipeline.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		res, err := pl.RunGPU(dev, gpu.MemAuto, db)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := gpu.PlanMSV(dev.Spec, fam.m, gpu.MemAuto)
		if err != nil {
			log.Fatal(err)
		}
		best := "-"
		if len(res.Hits) > 0 {
			best = fmt.Sprintf("%.3g", res.Hits[0].EValue)
		}
		fmt.Printf("%-16s %6d %8s %9.2f%% %8d %s\n",
			fam.name, fam.m, plan.MemConfig, res.MSV.PassFraction()*100, len(res.Hits), best)
	}
	fmt.Printf("\nfamily %s is the one with planted members — it should dominate the hit counts\n",
		families[planted].name)
}
