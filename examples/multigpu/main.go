// Multigpu: the Figure 11 scenario — partitioning one database search
// across four Fermi GTX 580s and checking that scaling is near linear.
// The example prints per-device load balance and the modelled stage
// times at paper scale, first with the static partition split and then
// with the streaming scheduler (residue-balanced batches dynamically
// assigned to whichever device drains first).
package main

import (
	"bytes"
	"fmt"
	"log"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/perf"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/workload"
)

func main() {
	abc := alphabet.New()
	query, err := workload.Model("multi-demo", 400, abc, 3)
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.SwissprotLike(0.003, 4)
	db, err := workload.Generate(spec, query, abc)
	if err != nil {
		log.Fatal(err)
	}

	opts := pipeline.DefaultOptions()
	opts.SkipForward = true
	pl, err := pipeline.New(query, int(db.MeanLen()), opts)
	if err != nil {
		log.Fatal(err)
	}

	fermi := simt.GTX580()
	for _, n := range []int{1, 2, 4} {
		sys := simt.NewSystem(fermi, n)
		res, err := pl.RunMultiGPU(sys, gpu.MemAuto, db)
		if err != nil {
			log.Fatal(err)
		}
		extra := res.Extra.(*pipeline.MultiGPUExtra)

		// The stage completes when the slowest device finishes.
		var worst float64
		fmt.Printf("%d x %s:\n", n, fermi.Name)
		for i, rep := range extra.MSV.PerDevice {
			if rep == nil {
				continue
			}
			t := perf.GPUTime(fermi, rep.Launch)
			if t > worst {
				worst = t
			}
			fmt.Printf("  device %d: %8d residues, MSV %.3fms (occupancy %.0f%%)\n",
				i, extra.MSV.ShardResidues[i], t*1e3, rep.Plan.Occupancy.Fraction*100)
		}
		cpuT := perf.CPUTimeMSV(perf.BaselineI5(), res.MSV.Cells)
		fmt.Printf("  MSV stage: %.3fms on %d device(s) vs %.3fms on the CPU baseline => %.2fx\n\n",
			worst*1e3, n, cpuT*1e3, perf.Speedup(cpuT, worst))
	}
	fmt.Println("database partitioning is dependency-free, so speedup grows almost linearly with devices")

	// The same search as a stream: the database never sits in memory
	// whole — it is parsed into residue-balanced batches that feed
	// whichever device frees up first, and the report shows how evenly
	// the scheduler spread the load.
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, db, abc); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	sys := simt.NewSystem(fermi, 4)
	res, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta.Bytes()),
		pipeline.StreamConfig{BatchResidues: db.TotalResidues() / 16})
	if err != nil {
		log.Fatal(err)
	}
	extra := res.Extra.(*pipeline.MultiGPUStreamExtra)
	sched := extra.Schedule
	fmt.Printf("streamed over 4 x %s: %d batches, wall %v\n", fermi.Name, sched.Batches, sched.Wall)
	for i, u := range sched.Util {
		var modelled float64
		for _, rep := range extra.Launches[i] {
			modelled += perf.GPUTime(fermi, rep)
		}
		fmt.Printf("  device %d: %3d batches, %8d residues, modelled %.3fms, busy %v\n",
			i, u.Batches, u.Residues, modelled*1e3, u.Busy)
	}
	fmt.Printf("filter outcome identical to the in-memory run: MSV %d/%d, Viterbi %d survivors\n",
		res.MSV.Out, res.MSV.In, res.Viterbi.Out)
}
