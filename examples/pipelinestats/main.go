// Pipelinestats: reproduces the Figure 1 study — what fraction of a
// database crosses each pipeline stage, and how the baseline's
// execution time splits across MSV, P7Viterbi and Forward. The paper
// reports 2.2% / 0.1% pass rates and an 80.6 / 14.5 / 4.9 time split
// for a size-400 model against Env_nr.
package main

import (
	"fmt"
	"log"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/perf"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/workload"
)

func main() {
	abc := alphabet.New()
	query, err := workload.Model("fig1-demo", 400, abc, 5)
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.EnvnrLike(0.001, 6) // ~6.5k sequences
	db, err := workload.Generate(spec, query, abc)
	if err != nil {
		log.Fatal(err)
	}

	pl, err := pipeline.New(query, int(db.MeanLen()), pipeline.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := pl.RunCPU(db)
	if err != nil {
		log.Fatal(err)
	}

	c := perf.BaselineI5()
	msvT := perf.CPUTimeMSV(c, res.MSV.Cells)
	vitT := perf.CPUTimeVit(c, res.Viterbi.Cells)
	fwdT := perf.CPUTimeFwd(c, res.Forward.Cells)
	total := msvT + vitT + fwdT

	fmt.Printf("HMMER3 task pipeline on %s (M=%d, %d sequences)\n\n", db.Name, query.M, db.NumSeqs())
	fmt.Printf("%-12s %9s %9s %12s %16s\n", "stage", "in", "out", "pass", "time share")
	fmt.Printf("%-12s %9d %9d %10.2f%%  %6.1f%%  (paper: 80.6%%)\n",
		"MSV", res.MSV.In, res.MSV.Out, res.MSV.PassFraction()*100, 100*msvT/total)
	fmt.Printf("%-12s %9d %9d %10.2f%%  %6.1f%%  (paper: 14.5%%)\n",
		"P7Viterbi", res.Viterbi.In, res.Viterbi.Out, res.Viterbi.PassFraction()*100, 100*vitT/total)
	fmt.Printf("%-12s %9d %9d %10.2f%%  %6.1f%%  (paper:  4.9%%)\n",
		"Forward", res.Forward.In, res.Forward.Out,
		float64(res.Viterbi.Out)/float64(res.MSV.In)*100, 100*fwdT/total)
	fmt.Printf("\npaper reference pass rates: 2.2%% cross MSV, 0.1%% cross P7Viterbi\n")
}
