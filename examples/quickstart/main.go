// Quickstart: build a query model, generate a small target database,
// and run the accelerated hmmsearch pipeline on a simulated Tesla K40 —
// the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/workload"
)

func main() {
	abc := alphabet.New()

	// A Pfam-like query model of 120 match states.
	query, err := workload.Model("example-family", 120, abc, 1)
	if err != nil {
		log.Fatal(err)
	}

	// A small Env_nr-like database with 2% planted homologs.
	spec := workload.EnvnrLike(0.0002, 2)
	spec.HomologFrac = 0.02
	db, err := workload.Generate(spec, query, abc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d sequences, %d residues\n", db.NumSeqs(), db.TotalResidues())

	// Configure and calibrate the three-stage pipeline.
	pl, err := pipeline.New(query, int(db.MeanLen()), pipeline.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Search on a simulated Kepler K40 with the auto (optimal) memory
	// strategy; the Forward stage runs on the host as in the paper.
	dev := simt.NewDevice(simt.TeslaK40())
	res, err := pl.RunGPU(dev, gpu.MemAuto, db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MSV filter:     %4d / %4d passed (%.2f%%)\n",
		res.MSV.Out, res.MSV.In, res.MSV.PassFraction()*100)
	fmt.Printf("P7Viterbi:      %4d / %4d passed\n", res.Viterbi.Out, res.Viterbi.In)
	fmt.Printf("Forward:        %4d final hits\n\n", len(res.Hits))

	for i, h := range res.Hits {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(res.Hits)-5)
			break
		}
		fmt.Printf("  %-24s E-value %.3g (%.1f bits)\n", h.Name, h.EValue, h.FwdBits)
	}
}
