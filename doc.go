// Package hmmer3gpu is a from-scratch Go reproduction of "Fine-Grained
// Acceleration of HMMER 3.0 via Architecture-aware Optimization on
// Massively Parallel Processors" (Jiang & Ganesan, IPDPSW 2015).
//
// The implementation lives under internal/: the Plan7 profile-HMM core
// and HMMER3 file formats (hmm, msa, profile, seq, alphabet), the
// full-precision reference algorithms (refimpl), the striped SSE-style
// CPU baseline (cpu), a warp-accurate SIMT device simulator (simt), the
// paper's warp-synchronous GPU kernels (gpu), score statistics (stats),
// the hmmsearch pipeline (pipeline), the performance model (perf),
// synthetic workloads (workload) and the figure-regeneration harness
// (bench). See README.md, DESIGN.md and EXPERIMENTS.md.
//
// The benchmarks in bench_test.go regenerate one data point per paper
// figure; cmd/hmmbench produces the full sweeps.
package hmmer3gpu
