module hmmer3gpu

go 1.22
