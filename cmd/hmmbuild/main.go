// Command hmmbuild constructs a profile HMM from a multiple sequence
// alignment (aligned FASTA) and writes it in HMMER3 ASCII format,
// calibrating the three score distributions on the way:
//
//	hmmbuild -name MyFam family.afa family.hmm
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/msa"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/refimpl"
	"hmmer3gpu/internal/stats"
)

func main() {
	var (
		name      = flag.String("name", "", "model name (default: alignment file stem)")
		consensus = flag.Float64("symfrac", 0.5, "residue fraction marking a consensus column")
		calibrate = flag.Bool("calibrate", true, "fit Gumbel/exponential score statistics")
		calLen    = flag.Int("callen", 100, "random-sequence length for calibration")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: hmmbuild [flags] <alignment.afa> <out.hmm>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	abc := alphabet.New()
	in, err := os.Open(flag.Arg(0))
	check(err)
	defer in.Close()
	ali, err := readAlignment(in, abc)
	check(err)

	if *name == "" {
		*name = stem(flag.Arg(0))
	}
	opts := msa.DefaultBuildOptions()
	opts.ConsensusFraction = *consensus
	model, err := msa.Build(*name, ali, abc, opts)
	check(err)

	if *calibrate {
		p := profile.Config(model)
		p.SetLength(*calLen)
		mp := profile.NewMSVProfile(p)
		vp := profile.NewVitProfile(p)
		copts := stats.DefaultCalibration()
		copts.L = *calLen
		bg := abc.Backgrounds()

		msvEng := cpu.NewMSVEngine(mp)
		g1, err := stats.CalibrateGumbel(func(dsq []byte) float64 {
			return stats.BitsFromNats(msvEng.Filter(dsq).Score)
		}, bg, copts)
		check(err)
		copts.Seed++
		vitEng := cpu.NewVitEngine(vp)
		g2, err := stats.CalibrateGumbel(func(dsq []byte) float64 {
			return stats.BitsFromNats(vitEng.Filter(dsq).Score)
		}, bg, copts)
		check(err)
		copts.Seed++
		e3, err := stats.CalibrateExponential(func(dsq []byte) float64 {
			return stats.BitsFromNats(refimpl.Forward(p, dsq))
		}, bg, copts)
		check(err)
		model.Stats = hmm.CalibrationStats{
			MSVMu: g1.Mu, MSVLambda: g1.Lambda,
			VitMu: g2.Mu, VitLambda: g2.Lambda,
			FwdTau: e3.Tau, FwdLambda: e3.Lambda,
			Calibrated: true,
		}
	}

	out, err := os.Create(flag.Arg(1))
	check(err)
	check(hmm.Write(out, model))
	check(out.Close())

	fmt.Printf("built %s: M=%d from %d aligned sequences (%d columns, %.2f bits/position)\n",
		*name, model.M, ali.NumSeqs(), ali.Cols, model.MeanMatchEntropy())
	if model.Stats.Calibrated {
		fmt.Printf("calibrated: MSV mu=%.2f, Viterbi mu=%.2f, Forward tau=%.2f (lambda=%.4f)\n",
			model.Stats.MSVMu, model.Stats.VitMu, model.Stats.FwdTau, math.Ln2)
	}
	fmt.Printf("wrote %s\n", flag.Arg(1))
}

// readAlignment sniffs the format: Stockholm files start with
// "# STOCKHOLM"; anything else is treated as aligned FASTA.
func readAlignment(f *os.File, abc *alphabet.Alphabet) (*msa.MSA, error) {
	head := make([]byte, 11)
	n, _ := io.ReadFull(f, head)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if n >= 11 && string(head[:11]) == "# STOCKHOLM" {
		return msa.ReadStockholm(f, abc)
	}
	return msa.Read(f, abc)
}

func stem(path string) string {
	base := path
	if i := lastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := lastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmmbuild: %v\n", err)
		os.Exit(1)
	}
}
