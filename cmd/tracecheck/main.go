// Command tracecheck validates observability artifacts produced by
// hmmsearch -trace / -metrics, for use as a CI gate:
//
//	tracecheck -format chrome run.chrome.json
//	tracecheck -metrics run.prom -require hmmer_simt_,hmmer_pipeline_,hmmer_sched_
//
// It exits nonzero when a trace file is empty or malformed, or when a
// metrics file is missing a required series prefix. The checks are the
// same validators the unit tests use (internal/obs), so CI and tests
// cannot drift apart.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hmmer3gpu/internal/obs"
)

func main() {
	var (
		format      = flag.String("format", "chrome", "trace file format: chrome|jsonl")
		metricsPath = flag.String("metrics", "", "Prometheus text file to validate")
		require     = flag.String("require", "", "comma-separated metric name prefixes that must each match at least one series in -metrics")
	)
	flag.Parse()
	if flag.NArg() == 0 && *metricsPath == "" {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [flags] [trace-file...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		check(path, err)
		var spans int
		switch *format {
		case "chrome":
			spans, err = obs.ValidateChromeTrace(data)
		case "jsonl":
			spans, err = obs.ValidateJSONL(data)
		default:
			fatalf("unknown -format %q (want chrome or jsonl)", *format)
		}
		check(path, err)
		if spans == 0 {
			fatalf("%s: trace is valid but holds no spans", path)
		}
		fmt.Printf("%s: ok (%s, %d spans)\n", path, *format, spans)
	}

	if *metricsPath != "" {
		data, err := os.ReadFile(*metricsPath)
		check(*metricsPath, err)
		series, err := obs.ParsePrometheus(data)
		check(*metricsPath, err)
		if len(series) == 0 {
			fatalf("%s: no metric series", *metricsPath)
		}
		for _, prefix := range strings.Split(*require, ",") {
			prefix = strings.TrimSpace(prefix)
			if prefix == "" {
				continue
			}
			found := false
			for name := range series {
				if strings.HasPrefix(name, prefix) {
					found = true
					break
				}
			}
			if !found {
				fatalf("%s: no series with required prefix %q", *metricsPath, prefix)
			}
		}
		fmt.Printf("%s: ok (%d series)\n", *metricsPath, len(series))
	}
}

func check(path string, err error) {
	if err != nil {
		fatalf("%s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
