// Command tracecheck validates observability artifacts produced by
// hmmsearch/hmmbench, for use as a CI gate:
//
//	tracecheck -format chrome run.chrome.json
//	tracecheck -format chrome -min-counters 4 run.chrome.json
//	tracecheck -metrics run.prom -require hmmer_simt_,hmmer_pipeline_,hmmer_sched_
//	tracecheck -metrics run.prom -require-hist hmmer_sched_batch_seconds
//	tracecheck -kprof run.kprof.json
//
// It exits nonzero when a trace file is empty or malformed, when a
// metrics file is missing a required series prefix or histogram
// triple, or when a kernel profile fails its schema/invariant checks.
// The checks are the same validators the unit tests use (internal/obs,
// internal/kernprof), so CI and tests cannot drift apart.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hmmer3gpu/internal/kernprof"
	"hmmer3gpu/internal/obs"
)

var errUsage = errors.New("usage: tracecheck [flags] [trace-file...]")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
}

// run is main with injectable arguments and output so tests can drive
// the real command path.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	var (
		format      = fs.String("format", "chrome", "trace file format: chrome|jsonl")
		metricsPath = fs.String("metrics", "", "Prometheus text file to validate")
		require     = fs.String("require", "", "comma-separated metric name prefixes that must each match at least one series in -metrics")
		requireHist = fs.String("require-hist", "", "comma-separated histogram base names that must each expose a full _bucket/_sum/_count triple in -metrics")
		minCounters = fs.Int("min-counters", 0, "minimum number of Chrome counter (\"C\") events each trace file must carry")
		kprofPaths  = fs.String("kprof", "", "comma-separated kernel-profile files (hmmsearch/hmmbench -kprof) to validate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 && *metricsPath == "" && *kprofPaths == "" {
		return errUsage
	}

	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		switch *format {
		case "chrome":
			st, err := obs.ValidateChromeTraceStats(data)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			if st.Spans == 0 {
				return fmt.Errorf("%s: trace is valid but holds no spans", path)
			}
			if st.Counters < *minCounters {
				return fmt.Errorf("%s: %d counter event(s), want at least %d", path, st.Counters, *minCounters)
			}
			fmt.Fprintf(stdout, "%s: ok (chrome, %d spans, %d counters)\n", path, st.Spans, st.Counters)
		case "jsonl":
			spans, err := obs.ValidateJSONL(data)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			if spans == 0 {
				return fmt.Errorf("%s: trace is valid but holds no spans", path)
			}
			if *minCounters > 0 {
				return fmt.Errorf("-min-counters applies to chrome traces only")
			}
			fmt.Fprintf(stdout, "%s: ok (jsonl, %d spans)\n", path, spans)
		default:
			return fmt.Errorf("unknown -format %q (want chrome or jsonl)", *format)
		}
	}

	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath, *require, *requireHist, stdout); err != nil {
			return err
		}
	}

	for _, path := range splitList(*kprofPaths) {
		p, err := kernprof.ReadFile(path)
		if err != nil {
			return err
		}
		if len(p.Launches) == 0 {
			return fmt.Errorf("%s: profile is valid but holds no launches", path)
		}
		fmt.Fprintf(stdout, "%s: ok (kernprof, %d launches, schema %s)\n", path, len(p.Launches), p.Schema)
	}
	return nil
}

// checkMetrics validates one Prometheus text file against the required
// series prefixes and histogram triples.
func checkMetrics(path, require, requireHist string, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	series, err := obs.ParsePrometheus(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(series) == 0 {
		return fmt.Errorf("%s: no metric series", path)
	}
	for _, prefix := range splitList(require) {
		found := false
		for name := range series {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: no series with required prefix %q", path, prefix)
		}
	}
	for _, base := range splitList(requireHist) {
		if err := checkHist(series, base); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	fmt.Fprintf(stdout, "%s: ok (%d series)\n", path, len(series))
	return nil
}

// checkHist asserts the Prometheus exposition holds a complete
// histogram triple for base: at least one _bucket series including the
// +Inf bucket, plus _sum and _count. Label sets are allowed on every
// series (le splices in alongside), so matching is by name prefix.
func checkHist(series map[string]float64, base string) error {
	var buckets, inf, sum, count bool
	for name := range series {
		switch {
		case strings.HasPrefix(name, base+"_bucket{"):
			buckets = true
			if strings.Contains(name, `le="+Inf"`) {
				inf = true
			}
		case name == base+"_sum" || strings.HasPrefix(name, base+"_sum{"):
			sum = true
		case name == base+"_count" || strings.HasPrefix(name, base+"_count{"):
			count = true
		}
	}
	switch {
	case !buckets:
		return fmt.Errorf("histogram %q: no _bucket series", base)
	case !inf:
		return fmt.Errorf("histogram %q: no le=\"+Inf\" bucket", base)
	case !sum:
		return fmt.Errorf("histogram %q: missing _sum", base)
	case !count:
		return fmt.Errorf("histogram %q: missing _count", base)
	}
	return nil
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}
