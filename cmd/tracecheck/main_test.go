package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hmmer3gpu/internal/kernprof"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/simt"
)

// writeArtifacts produces one of each artifact kind the way the real
// commands do: a Chrome trace with counter events, a Prometheus dump
// with a histogram triple, and a kernel profile from a live launch.
func writeArtifacts(t *testing.T) (trace, metrics, kprof string) {
	t.Helper()
	dir := t.TempDir()

	reg := obs.NewRegistry()
	h := obs.NewHist(obs.LatencyBuckets())
	h.Observe(0.004)
	h.Observe(0.250)
	reg.MergeHist("hmmer_sched_batch_seconds", h)
	reg.AddInt("hmmer_sched_batches_total", 2)

	tr := obs.New()
	sp := tr.Start("host", "search")
	sp.End()

	trace = filepath.Join(dir, "trace.json")
	fh, err := os.Create(trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTraceWithCounters(fh, reg); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	metrics = filepath.Join(dir, "metrics.prom")
	fh, err = os.Create(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(fh); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	col := kernprof.NewCollector()
	dev := simt.NewDevice(simt.TeslaK40())
	dev.Profiler = col
	_, err = dev.Launch(simt.LaunchConfig{
		Blocks: 2, WarpsPerBlock: 2, Name: "msv",
	}, func(w *simt.Warp) { w.ALU(3) })
	if err != nil {
		t.Fatal(err)
	}
	kprof = filepath.Join(dir, "prof.json")
	if err := col.Profile().WriteFile(kprof); err != nil {
		t.Fatal(err)
	}
	return trace, metrics, kprof
}

func TestValidatesAllArtifactKinds(t *testing.T) {
	trace, metrics, kprof := writeArtifacts(t)
	var buf bytes.Buffer
	err := run([]string{
		"-format", "chrome", "-min-counters", "1",
		"-metrics", metrics,
		"-require", "hmmer_sched_",
		"-require-hist", "hmmer_sched_batch_seconds",
		"-kprof", kprof,
		trace,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"counters)", "series)", "kernprof, 1 launches"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMinCountersFails(t *testing.T) {
	trace, _, _ := writeArtifacts(t)
	err := run([]string{"-min-counters", "1000", trace}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "counter event") {
		t.Fatalf("err = %v, want counter-count failure", err)
	}
}

func TestRequireHistFails(t *testing.T) {
	_, metrics, _ := writeArtifacts(t)
	err := run([]string{"-metrics", metrics, "-require-hist", "no_such_hist"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "no _bucket series") {
		t.Fatalf("err = %v, want missing-bucket failure", err)
	}
	// A plain counter must not satisfy a histogram requirement.
	err = run([]string{"-metrics", metrics, "-require-hist", "hmmer_sched_batches_total"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("counter series accepted as a histogram")
	}
}

func TestKprofRejectsBadSchema(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"wrong/v0","launches":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kprof", bad}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad kernel profile accepted")
	}
}

func TestUsageError(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err != errUsage {
		t.Fatalf("err = %v, want errUsage", err)
	}
}
