// Command hmmscan searches every model of a profile library (a
// multi-model HMMER3 file, like a Pfam release) against a sequence
// database and reports per-family hits — the paper's motivating
// use case of scanning "an entire database of HMMs for all motifs".
//
//	hmmscan -engine gpu pfam-like.hmm targets.fasta
package main

import (
	"flag"
	"fmt"
	"os"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

func main() {
	var (
		engine  = flag.String("engine", "cpu", "cpu|gpu")
		evalue  = flag.Float64("E", 10.0, "report hits with E-value <= this")
		workers = flag.Int("workers", 0, "host worker goroutines (0 = GOMAXPROCS)")
		top     = flag.Int("top", 3, "hits to list per model")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: hmmscan [flags] <library.hmm> <targets.fasta>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	abc := alphabet.New()
	hf, err := os.Open(flag.Arg(0))
	check(err)
	models, err := hmm.ReadAll(hf, abc)
	check(err)
	hf.Close()

	ff, err := os.Open(flag.Arg(1))
	check(err)
	db, err := seq.ReadFASTA(ff, abc)
	check(err)
	ff.Close()

	fmt.Printf("scanning %d models against %s (%d sequences, %d residues)\n\n",
		len(models), flag.Arg(1), db.NumSeqs(), db.TotalResidues())
	fmt.Printf("%-24s %6s %8s %8s %s\n", "model", "M", "MSVpass", "hits", "best hits (E-value)")

	var dev *simt.Device
	if *engine == "gpu" {
		dev = simt.NewDevice(simt.TeslaK40())
	} else if *engine != "cpu" {
		fatalf("unknown -engine %q", *engine)
	}

	for _, model := range models {
		opts := pipeline.DefaultOptions()
		opts.Workers = *workers
		pl, err := pipeline.New(model, int(db.MeanLen()), opts)
		check(err)
		var res *pipeline.Result
		if dev != nil {
			res, err = pl.RunGPU(dev, gpu.MemAuto, db)
		} else {
			res, err = pl.RunCPU(db)
		}
		check(err)

		reported := 0
		summary := ""
		for _, h := range res.Hits {
			if h.EValue > *evalue || reported == *top {
				break
			}
			if reported > 0 {
				summary += ", "
			}
			summary += fmt.Sprintf("%s (%.2g)", h.Name, h.EValue)
			reported++
		}
		if summary == "" {
			summary = "-"
		}
		fmt.Printf("%-24s %6d %7.2f%% %8d %s\n",
			model.Name, model.M, res.MSV.PassFraction()*100, len(res.Hits), summary)
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hmmscan: "+format+"\n", args...)
	os.Exit(1)
}
