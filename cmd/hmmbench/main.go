// Command hmmbench regenerates the paper's tables and figures on the
// simulated devices:
//
//	hmmbench -experiment fig1      pipeline pass rates & time split (Fig. 1)
//	hmmbench -experiment fig9      per-stage speedups & occupancy (Fig. 9)
//	hmmbench -experiment fig10     combined speedup, single K40 (Fig. 10)
//	hmmbench -experiment fig11     combined speedup, 4x GTX 580 (Fig. 11)
//	hmmbench -experiment pfam      Pfam model-size statistics (§IV)
//	hmmbench -experiment ablation  §III design-choice ablations
//	hmmbench -experiment stream    streamed multi-device scaling (dynamic scheduler)
//	hmmbench -experiment chaos     fault-injection sweep (retry/quarantine/fallback)
//	hmmbench -experiment sdc       silent-corruption sweep (bit flips vs integrity guards)
//	hmmbench -experiment resume    crash-recovery sweep (journal fsync overhead, recovery time)
//	hmmbench -experiment trajectory  wall-clock benchmark record (BENCH_<rev>.json)
//	hmmbench -experiment all       everything above (except trajectory)
//
// The -sim flag selects the simulator's execution mode: "cycles" (the
// default) runs the full cycle-accurate cost model; "fast" runs the
// same kernels functionally with accounting skipped. Results are
// byte-identical; the figure experiments' modelled columns are only
// meaningful under -sim cycles, while -experiment trajectory is meant
// for -sim fast.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hmmer3gpu/internal/bench"
	"hmmer3gpu/internal/kernprof"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/simt"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig1|fig9|fig10|fig11|pfam|ablation|extension|sensitivity|stream|chaos|sdc|resume|trajectory|all")
		quick      = flag.Bool("quick", false, "use reduced workloads (seconds instead of minutes)")
		seed       = flag.Int64("seed", 0, "override the workload seed")
		sizes      = flag.String("sizes", "", "comma-separated model sizes (default: the paper's sweep)")
		workers    = flag.Int("workers", 0, "host worker goroutines (0 = GOMAXPROCS)")
		csvDir     = flag.String("csv", "", "also write fig9/fig10/fig11 CSV files into this directory")
		trace      = flag.String("trace", "", "write a span timeline of the pipeline-driven experiments to this file")
		traceFmt   = flag.String("traceformat", "chrome", "trace file format: chrome|jsonl")
		simMode    = flag.String("sim", "cycles", "simulator mode: cycles (cycle-accurate) or fast (functional)")
		rev        = flag.String("rev", "dev", "revision label for -experiment trajectory (BENCH_<rev>.json)")
		kprof      = flag.String("kprof", "", "write a kernel-grained profile of every launch to this file as JSON; render with hmmprof")
		cpuprof    = flag.String("cpuprofile", "", "write a host CPU profile (runtime/pprof) to this file")
		memprof    = flag.String("memprofile", "", "write a host heap profile (runtime/pprof) to this file on exit")
		outDir     = flag.String("out", ".", "output directory for -experiment trajectory")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	mode, err := simt.ParseMode(*simMode)
	if err != nil {
		fatalf("%v", err)
	}
	cfg.Mode = mode
	stopProf, err := startProfiles(*cpuprof, *memprof)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProf()
	if *kprof != "" {
		cfg.Prof = kernprof.NewCollector()
		defer flushKprof(cfg.Prof, *kprof)
	}
	if *trace != "" {
		if *traceFmt != "chrome" && *traceFmt != "jsonl" {
			fatalf("unknown -traceformat %q (want chrome or jsonl)", *traceFmt)
		}
		cfg.Trace = obs.New()
		defer flushTrace(cfg.Trace, *trace, *traceFmt)
	}
	if *sizes != "" {
		cfg.Sizes = nil
		for _, tok := range strings.Split(*sizes, ",") {
			m, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || m < 1 {
				fatalf("bad -sizes entry %q", tok)
			}
			cfg.Sizes = append(cfg.Sizes, m)
		}
	}

	run := func(name string, f func() error) {
		fmt.Printf("==> %s\n", name)
		if err := f(); err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	if *csvDir != "" {
		fmt.Printf("==> csv export to %s\n", *csvDir)
		if err := bench.ExportCSV(cfg, *csvDir, os.Stdout); err != nil {
			fatalf("csv export: %v", err)
		}
		fmt.Println()
		return
	}

	// The trajectory is a wall-clock record, not a figure: it runs on
	// its own, never under -experiment all.
	if *experiment == "trajectory" {
		run("trajectory", func() error {
			rep, err := bench.Trajectory(cfg, *rev, os.Stdout)
			if err != nil {
				return err
			}
			path, err := rep.WriteFile(*outDir)
			if err != nil {
				return err
			}
			fmt.Printf("benchmark record written to %s\n", path)
			return nil
		})
		return
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := false
	if want("fig1") {
		run("fig1", func() error { _, err := bench.Fig1(cfg, os.Stdout); return err })
		ran = true
	}
	if want("fig9") {
		run("fig9", func() error { _, err := bench.Fig9(cfg, os.Stdout); return err })
		ran = true
	}
	if want("fig10") {
		run("fig10", func() error { _, err := bench.Fig10(cfg, os.Stdout); return err })
		ran = true
	}
	if want("fig11") {
		run("fig11", func() error { _, err := bench.Fig11(cfg, os.Stdout); return err })
		ran = true
	}
	if want("pfam") {
		run("pfam", func() error { _, err := bench.Pfam(cfg, os.Stdout); return err })
		ran = true
	}
	if want("ablation") {
		run("ablation", func() error { _, err := bench.Ablations(cfg, os.Stdout); return err })
		ran = true
	}
	if want("extension") {
		run("extension", func() error { _, err := bench.Extension(cfg, os.Stdout); return err })
		ran = true
	}
	if want("sensitivity") {
		run("sensitivity", func() error { _, err := bench.Sensitivity(cfg, os.Stdout); return err })
		ran = true
	}
	if want("stream") {
		run("stream", func() error { _, err := bench.StreamScaling(cfg, os.Stdout); return err })
		ran = true
	}
	if want("chaos") {
		run("chaos", func() error { _, err := bench.Chaos(cfg, os.Stdout); return err })
		ran = true
	}
	if want("sdc") {
		run("sdc", func() error { _, err := bench.SDC(cfg, os.Stdout); return err })
		ran = true
	}
	if want("resume") {
		run("resume", func() error { _, err := bench.Resume(cfg, os.Stdout); return err })
		ran = true
	}
	if !ran {
		fatalf("unknown experiment %q (want fig1|fig9|fig10|fig11|pfam|ablation|extension|sensitivity|stream|chaos|sdc|resume|trajectory|all)", *experiment)
	}
}

// flushKprof writes the accumulated kernel profile on exit.
func flushKprof(c *kernprof.Collector, path string) {
	prof := c.Profile()
	if err := prof.WriteFile(path); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("kernel profile (%d launches) written to %s; render with: hmmprof %s\n",
		len(prof.Launches), path, path)
}

// flushTrace writes the experiments' accumulated spans on exit.
func flushTrace(tr *obs.Tracer, path, format string) {
	fh, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if format == "jsonl" {
		err = tr.WriteJSONL(fh)
	} else {
		err = tr.WriteChromeTrace(fh)
	}
	if err == nil {
		err = fh.Close()
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("trace (%s, %d spans) written to %s\n", format, len(tr.Spans()), path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hmmbench: "+format+"\n", args...)
	os.Exit(1)
}
