// Command hmmload drives an hmmserved instance with closed-loop
// concurrent clients and reports what the service did under that
// offered load: how many queries were answered (fresh, cached,
// degraded), how many were shed with 429 or refused with 503, and the
// p50/p99 latency of the answered ones.
//
//	hmmload -url http://localhost:8731 -model query.hmm -db swiss -clients 16 -duration 10s
//
// Each client loops: POST the model, read the reply, repeat — so
// concurrency (not request rate) is the offered load, the natural
// shape for capacity probing. -qps adds an optional per-client pacing
// delay. With -strict the exit status is nonzero if any 5xx or
// transport error occurred, making it usable as a CI assertion.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sync"
	"time"

	"hmmer3gpu/internal/obs"
)

// counters aggregates the fleet's outcomes; one mutex guards both the
// counts and the latency histogram (obs.Hist is not internally locked).
type counters struct {
	mu        sync.Mutex
	sent      int
	ok        int
	cached    int
	degraded  int
	shed429   int
	refused   int
	server5xx int
	transport int
	lat       *obs.Hist
}

func main() {
	var (
		base     = flag.String("url", "http://localhost:8731", "hmmserved base URL")
		model    = flag.String("model", "", "profile HMM file to POST (required)")
		db       = flag.String("db", "", "database name to search (required)")
		clients  = flag.Int("clients", 8, "closed-loop concurrent clients")
		duration = flag.Duration("duration", 10*time.Second, "how long to offer load")
		qps      = flag.Float64("qps", 0, "per-client pacing: at most this many queries/second each (0 = as fast as replies arrive)")
		tenants  = flag.Int("tenants", 1, "spread clients across this many tenant identities (client i is tenant t<i%%n>)")
		format   = flag.String("format", "tbl", "response format to request: tbl or json")
		nocache  = flag.Bool("nocache", false, "send cache=off so every query computes fresh")
		timeout  = flag.Duration("timeout", 0, "per-query deadline to request via ?timeout= (0 = server default)")
		asJSON   = flag.Bool("json", false, "print the summary as JSON instead of text")
		strict   = flag.Bool("strict", false, "exit nonzero if any 5xx or transport error occurred")
	)
	flag.Parse()
	if *model == "" || *db == "" {
		fmt.Fprintln(os.Stderr, "usage: hmmload -model query.hmm -db name [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	modelBytes, err := os.ReadFile(*model)
	if err != nil {
		fatalf("%v", err)
	}
	if *clients < 1 {
		*clients = 1
	}
	if *tenants < 1 {
		*tenants = 1
	}

	target, err := url.Parse(*base)
	if err != nil {
		fatalf("bad -url: %v", err)
	}
	target = target.JoinPath("/search")

	agg := &counters{lat: obs.NewHist(obs.LatencyBuckets())}
	httpc := &http.Client{}
	stop := time.After(*duration)
	stopped := make(chan struct{})
	go func() { <-stop; close(stopped) }()

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		tenant := fmt.Sprintf("t%d", i%*tenants)
		go func() {
			defer wg.Done()
			var pace <-chan time.Time
			if *qps > 0 {
				t := time.NewTicker(time.Duration(float64(time.Second) / *qps))
				defer t.Stop()
				pace = t.C
			}
			for {
				select {
				case <-stopped:
					return
				default:
				}
				q := url.Values{"db": {*db}, "format": {*format}, "tenant": {tenant}}
				if *nocache {
					q.Set("cache", "off")
				}
				if *timeout > 0 {
					q.Set("timeout", timeout.String())
				}
				u := *target
				u.RawQuery = q.Encode()
				oneQuery(httpc, u.String(), modelBytes, agg)
				if pace != nil {
					select {
					case <-pace:
					case <-stopped:
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	agg.mu.Lock()
	defer agg.mu.Unlock()
	answered := agg.ok
	throughput := float64(answered) / elapsed.Seconds()
	p50, p99 := agg.lat.Quantile(0.50), agg.lat.Quantile(0.99)
	if *asJSON {
		out := map[string]any{
			"clients":        *clients,
			"duration_s":     elapsed.Seconds(),
			"sent":           agg.sent,
			"ok":             agg.ok,
			"cached":         agg.cached,
			"degraded":       agg.degraded,
			"shed_429":       agg.shed429,
			"refused_503":    agg.refused,
			"server_5xx":     agg.server5xx,
			"transport_errs": agg.transport,
			"throughput_qps": throughput,
			"latency_p50_s":  p50,
			"latency_p99_s":  p99,
		}
		b, _ := json.MarshalIndent(out, "", "  ")
		fmt.Println(string(b))
	} else {
		fmt.Printf("hmmload: %d clients for %.1fs against %s\n", *clients, elapsed.Seconds(), *base)
		fmt.Printf("  sent        %d\n", agg.sent)
		fmt.Printf("  ok          %d (%d cached, %d degraded)\n", agg.ok, agg.cached, agg.degraded)
		fmt.Printf("  shed 429    %d\n", agg.shed429)
		fmt.Printf("  refused 503 %d\n", agg.refused)
		fmt.Printf("  5xx         %d\n", agg.server5xx)
		fmt.Printf("  transport   %d\n", agg.transport)
		fmt.Printf("  throughput  %.2f answered/s\n", throughput)
		fmt.Printf("  latency     p50 %.3fs  p99 %.3fs\n", p50, p99)
	}
	if *strict && (agg.server5xx > 0 || agg.transport > 0) {
		fmt.Fprintf(os.Stderr, "hmmload: -strict: %d server 5xx, %d transport errors\n",
			agg.server5xx, agg.transport)
		os.Exit(1)
	}
}

// oneQuery sends one POST and classifies the outcome. Latency is only
// observed for answered (200) queries: shed and refused replies return
// in microseconds and would drag the percentiles into meaninglessness.
func oneQuery(httpc *http.Client, u string, model []byte, agg *counters) {
	t0 := time.Now()
	resp, err := httpc.Post(u, "application/octet-stream", bytes.NewReader(model))
	if err != nil {
		agg.mu.Lock()
		agg.sent++
		agg.transport++
		agg.mu.Unlock()
		return
	}
	_, readErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	dt := time.Since(t0).Seconds()

	agg.mu.Lock()
	defer agg.mu.Unlock()
	agg.sent++
	if readErr != nil {
		agg.transport++
		return
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		agg.ok++
		agg.lat.Observe(dt)
		if resp.Header.Get("X-Cache") == "hit" {
			agg.cached++
		}
		if resp.Header.Get("X-Degraded") != "" {
			agg.degraded++
		}
	case resp.StatusCode == http.StatusTooManyRequests:
		agg.shed429++
	case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusGatewayTimeout:
		agg.refused++
	case resp.StatusCode >= 500:
		agg.server5xx++
	default:
		// 4xx other than 429 is a client bug; surface it loudly.
		agg.server5xx++
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hmmload: "+format+"\n", args...)
	os.Exit(1)
}
