// Command hmmstat summarises the models in a HMMER3 file: length,
// information content, composition and calibration parameters —
// the equivalent of HMMER's hmmstat utility.
//
//	hmmstat pfam-like.hmm
package main

import (
	"flag"
	"fmt"
	"os"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/simt"
)

func main() {
	plan := flag.Bool("plan", false, "also show the K40 kernel launch plans per model")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hmmstat [flags] <models.hmm>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	abc := alphabet.New()
	fh, err := os.Open(flag.Arg(0))
	check(err)
	defer fh.Close()
	models, err := hmm.ReadAll(fh, abc)
	check(err)

	fmt.Printf("%-4s %-24s %-12s %6s %10s %10s %10s %10s\n",
		"#", "name", "accession", "M", "bits/pos", "msv-mu", "vit-mu", "fwd-tau")
	for i, m := range models {
		acc := m.Acc
		if acc == "" {
			acc = "-"
		}
		stats := []string{"-", "-", "-"}
		if m.Stats.Calibrated {
			stats[0] = fmt.Sprintf("%.2f", m.Stats.MSVMu)
			stats[1] = fmt.Sprintf("%.2f", m.Stats.VitMu)
			stats[2] = fmt.Sprintf("%.2f", m.Stats.FwdTau)
		}
		fmt.Printf("%-4d %-24s %-12s %6d %10.2f %10s %10s %10s\n",
			i+1, m.Name, acc, m.M, m.MeanMatchEntropy(), stats[0], stats[1], stats[2])

		if *plan {
			spec := simt.TeslaK40()
			if p, err := gpu.PlanMSV(spec, m.M, gpu.MemAuto); err == nil {
				fmt.Printf("     msv: %s config, %s\n", p.MemConfig, p.Occupancy)
			}
			if p, err := gpu.PlanViterbi(spec, m.M, gpu.MemAuto); err == nil {
				fmt.Printf("     vit: %s config, %s\n", p.MemConfig, p.Occupancy)
			}
		}
	}
	fmt.Printf("\n%d models\n", len(models))
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmmstat: %v\n", err)
		os.Exit(1)
	}
}
