package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden drives the real command path against the checked-in profile
// and compares byte-for-byte with the golden rendering.
func golden(t *testing.T, goldenFile string, args ...string) {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", goldenFile)
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s (re-run with -update to refresh):\n--- got ---\n%s\n--- want ---\n%s",
			path, buf.String(), string(want))
	}
}

func TestReportGolden(t *testing.T) {
	golden(t, "report.golden", "testdata/profile.json")
}

func TestFlameGolden(t *testing.T) {
	golden(t, "flame.golden", "-flame", "testdata/profile.json")
}

// TestReportFlagsCollapse pins the acceptance criterion's CI hook: the
// report on a sweep spanning the shared-config crossover must contain
// a grep-able "occupancy collapse" note naming the bracketing sizes.
func TestReportFlagsCollapse(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"testdata/profile.json"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "occupancy collapse") ||
		!strings.Contains(out, "M=960") || !strings.Contains(out, "M=1056") {
		t.Errorf("report does not flag the 960->1056 collapse:\n%s", out)
	}
}

func TestValidateMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-validate", "testdata/profile.json"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ok (3 launches") {
		t.Errorf("validate summary = %q", buf.String())
	}
}

func TestRejectsGarbage(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"wrong/v0","launches":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad schema accepted")
	}
}
