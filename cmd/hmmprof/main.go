// Command hmmprof renders kernel-profile artifacts collected with
// hmmsearch/hmmbench -kprof (see internal/kernprof):
//
//	hmmprof profile.json             full text report: per-kernel
//	                                 counters, occupancy table with
//	                                 collapse notes, stall attribution,
//	                                 block-cycle percentiles
//	hmmprof -occupancy profile.json  occupancy table only
//	hmmprof -flame profile.json      folded stacks of the stall
//	                                 attribution (flamegraph.pl /
//	                                 speedscope input)
//	hmmprof -validate profile.json   schema/invariant check only
//
// Multiple profile files merge into one report in argument order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hmmer3gpu/internal/kernprof"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hmmprof: %v\n", err)
		os.Exit(1)
	}
}

// run is main with injectable arguments and output, so the golden
// test drives the real command path.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hmmprof", flag.ContinueOnError)
	flame := fs.Bool("flame", false, "emit folded stall stacks instead of the report")
	occupancy := fs.Bool("occupancy", false, "emit the occupancy table only")
	validate := fs.Bool("validate", false, "validate the artifacts and print a summary line per file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("usage: hmmprof [-flame|-occupancy|-validate] <profile.json>...")
	}

	merged := &kernprof.Profile{Schema: kernprof.Schema}
	for _, path := range fs.Args() {
		p, err := kernprof.ReadFile(path)
		if err != nil {
			return err
		}
		if *validate {
			fmt.Fprintf(stdout, "%s: ok (%d launches, schema %s)\n", path, len(p.Launches), p.Schema)
			continue
		}
		merged.Merge(p)
	}
	if *validate {
		return nil
	}
	switch {
	case *flame:
		return merged.WriteFlame(stdout)
	case *occupancy:
		return merged.WriteOccupancy(stdout)
	default:
		return merged.WriteReport(stdout)
	}
}
