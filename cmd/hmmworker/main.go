// Command hmmworker is a cluster worker node for hmmsearch -stream.
// It loads the same query profile as the coordinator, listens on TCP,
// and computes the batches the coordinator assigns it over the
// length-prefixed, CRC-framed cluster wire protocol
// (internal/cluster).
//
//	hmmworker -listen 127.0.0.1:9101 -devices 2 -batchres 21000 query.hmm
//	hmmsearch -stream 60 -batchres 21000 -cluster-workers 127.0.0.1:9101 query.hmm db.fasta
//
// The handshake carries a fingerprint of the model, thresholds,
// calibration, and batch residue budget; a worker whose fingerprint
// disagrees with the coordinator's is rejected at connect, so
// -batchres/-stream/-targlen here must mirror the coordinator's
// flags. The simulator cost-model mode (-sim) must match too.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"syscall"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/drainctx"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/obsio"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/simt"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "TCP address to accept coordinator connections on (port 0 picks a free port, printed on startup)")
		name     = flag.String("name", "", "worker name reported in handshakes and coordinator logs (default: the listen address)")
		capacity = flag.Int("capacity", 0, "batches accepted in flight (0 = -devices)")
		engine   = flag.String("engine", "gpu", "batch engine: gpu (simulated devices) | cpu")
		devices  = flag.Int("devices", 1, "simulated device count for -engine gpu")
		mem      = flag.String("mem", "auto", "GPU memory configuration: auto|shared|global")
		sim      = flag.String("sim", "cycles", "simulator mode: cycles or fast (must match the coordinator's -sim)")
		workers  = flag.Int("workers", 0, "host worker goroutines (0 = GOMAXPROCS)")
		stream   = flag.Int("stream", 0, "coordinator's -stream value (with -targlen, derives the batch residue budget when -batchres is 0)")
		batchres = flag.Int64("batchres", 0, "coordinator's residue budget per batch (0 = stream * targlen); part of the handshake fingerprint")
		targlen  = flag.Int("targlen", 350, "coordinator's assumed target length for -stream")
		trace    = flag.String("trace", "", "write a span timeline of this worker's batches to this file on exit")
		traceFmt = flag.String("traceformat", "chrome", "trace file format: chrome | jsonl")
		metrics  = flag.String("metrics", "", "write this worker's counters to this file in Prometheus text format on exit")
		kprof    = flag.String("kprof", "", "write a kernel-grained profile of this worker's launches to this file as JSON on exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hmmworker [flags] <query.hmm>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	budget := *batchres
	if budget <= 0 {
		budget = int64(*stream) * int64(*targlen)
	}
	if budget <= 0 {
		fatalf("a batch residue budget is required: set -batchres, or -stream (with -targlen) to mirror the coordinator")
	}

	simMode, err := simt.ParseMode(*sim)
	check(err)
	memCfg := memConfig(*mem)

	hf, err := os.Open(flag.Arg(0))
	check(err)
	abc := alphabet.New()
	query, err := hmm.Read(hf, abc)
	check(err)
	hf.Close()

	// Observability sinks share the hmmsearch flag semantics (same
	// internal/obsio code): spans per batch, Prometheus counters, and a
	// kernel-grained profile, written on exit. Apply guards against the
	// typed-nil hazard — an unset *kernprof.Collector must never be
	// assigned into the device's Profiler interface.
	sk, err := obsio.New(*trace, *traceFmt, *metrics, *kprof)
	check(err)

	// The pipeline must calibrate exactly as the coordinator's does —
	// pipeline.New is deterministic given (query, targlen, opts), and
	// the resulting Gumbel/exponential parameters are part of the
	// handshake fingerprint (observability options are excluded from
	// the fingerprint; they cannot change results).
	opts := pipeline.DefaultOptions()
	opts.Workers = *workers
	sk.Apply(&opts)
	pl, err := pipeline.New(query, *targlen, opts)
	check(err)

	cfg := pipeline.StreamConfig{BatchResidues: budget}
	slots := *capacity
	if slots <= 0 {
		slots = *devices
	}
	wname := *name

	var exec = pl.ClusterExecCPU()
	switch *engine {
	case "cpu":
	case "gpu":
		sys := simt.NewSystem(simt.GTX580(), *devices).SetMode(simMode)
		exec = pl.ClusterExecGPU(sys, memCfg)
	default:
		fatalf("unknown -engine %q (want gpu or cpu)", *engine)
	}

	ln, err := net.Listen("tcp", *listen)
	check(err)
	if wname == "" {
		wname = ln.Addr().String()
	}
	ws := pl.NewWorkerServer(cfg, byte(simMode), wname, slots, exec)
	ws.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hmmworker: "+format+"\n", args...)
	}

	// Scripts scrape this line to learn the bound port under -listen :0.
	fmt.Printf("hmmworker: %s listening on %s (%s, capacity %d, batchres %d)\n",
		wname, ln.Addr(), *engine, slots, budget)
	os.Stdout.Sync()

	// Two-stage shutdown: the first SIGINT/SIGTERM drains — in-flight
	// batches finish and ship their results, new assignments are
	// refused so the coordinator requeues them, and Serve returns once
	// the coordinator disconnects. A second signal cancels ctx and
	// aborts in-flight batches mid-kernel.
	ctx, drain, stop := drainctx.Notify("hmmworker", os.Stderr, os.Interrupt, syscall.SIGTERM)
	defer stop()
	ws.Drain = drain

	check(ws.Serve(ctx, ln))
	check(sk.Flush(func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}))
}

func memConfig(name string) gpu.MemConfig {
	switch name {
	case "auto":
		return gpu.MemAuto
	case "shared":
		return gpu.MemShared
	case "global":
		return gpu.MemGlobal
	default:
		fatalf("unknown -mem %q", name)
		panic("unreachable")
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmmworker: %v\n", err)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hmmworker: "+format+"\n", args...)
	os.Exit(1)
}
