// Command hmmsearch searches a profile HMM against a FASTA sequence
// database with the accelerated HMMER3 pipeline, on the CPU engine or
// on a simulated GPU:
//
//	hmmsearch -engine cpu        query.hmm targets.fasta
//	hmmsearch -engine gpu        query.hmm targets.fasta   (Tesla K40)
//	hmmsearch -engine multigpu   query.hmm targets.fasta   (4x GTX 580)
//
// Databases too large for memory stream in batches; with -engine
// multigpu the batches are residue-balanced and fed to whichever
// device frees up first:
//
//	hmmsearch -stream 5000 query.hmm targets.fasta
//	hmmsearch -engine multigpu -stream 5000 -devices 4 query.hmm targets.fasta
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/checkpoint"
	"hmmer3gpu/internal/cluster"
	"hmmer3gpu/internal/drainctx"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/obsio"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/refimpl"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// simMode is the parsed -sim flag; every device this command creates
// runs in this mode.
var simMode simt.Mode

func main() {
	var (
		engine   = flag.String("engine", "cpu", "cpu|gpu|multigpu")
		mem      = flag.String("mem", "auto", "GPU memory configuration: auto|shared|global")
		evalue   = flag.Float64("E", 10.0, "report hits with E-value <= this")
		aligns   = flag.Bool("alignments", false, "render domain alignments for reported hits")
		null2    = flag.Bool("null2", false, "apply the biased-composition score correction")
		gpufwd   = flag.Bool("gpufwd", false, "run the Forward stage on the device too (-engine gpu)")
		tblout   = flag.String("tblout", "", "write a machine-readable per-target table to this file")
		stream   = flag.Int("stream", 0, "stream the database in batches of this many sequences (constant memory); 0 loads it whole (-engine cpu or multigpu)")
		batchres = flag.Int64("batchres", 0, "multigpu streaming: residue budget per batch (0 = stream * targlen)")
		targlen  = flag.Int("targlen", 350, "assumed typical target length for -stream (the length model cannot be derived from an unread stream)")
		workers  = flag.Int("workers", 0, "host worker goroutines (0 = GOMAXPROCS)")
		devices  = flag.Int("devices", 4, "device count for -engine multigpu")
		trace    = flag.String("trace", "", "write a span timeline of the run to this file (search, stage, batch, and kernel spans)")
		traceFmt = flag.String("traceformat", "chrome", "trace file format: chrome (load in ui.perfetto.dev or chrome://tracing) | jsonl")
		metrics  = flag.String("metrics", "", "write run counters to this file in Prometheus text format")
		kprof    = flag.String("kprof", "", "write a kernel-grained profile (occupancy, stall attribution, counters) to this file as JSON; render with hmmprof")
		cpuprof  = flag.String("cpuprofile", "", "write a host CPU profile (runtime/pprof) to this file")
		memprof  = flag.String("memprofile", "", "write a host heap profile (runtime/pprof) to this file on exit")
		sim      = flag.String("sim", "cycles", "simulator mode: cycles (cycle-accurate counters) or fast (functional, no accounting); results are identical")

		faultSpec    = flag.String("faults", "", "inject device faults (multigpu streaming): \"<dev>:<fault>[,...][;...]\" with faults p=<prob>, at=<ordinal>, hang=<ordinal>, dead[=<ordinal>], flip@p=<prob>, flip@shared=<prob>, flip@launch=<ordinal> — e.g. \"0:p=0.2;2:dead\" or \"0:flip@p=1e-4\"")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for probabilistic fault injection (-faults p=)")
		maxRetries   = flag.Int("max-retries", 0, "per-batch retry budget after transient device faults (0 = default, negative disables)")
		quarAfter    = flag.Int("quarantine-after", 0, "consecutive device failures before quarantine (0 = default, negative disables)")
		batchTimeout = flag.Duration("batch-timeout", 0, "per-batch watchdog deadline (0 disables); a timed-out batch is reassigned and its device quarantined")
		noFallback   = flag.Bool("no-fallback", false, "fail instead of completing on the host CPU when every device is quarantined")
		verify       = flag.String("verify", "off", "result-integrity policy against silent data corruption (multigpu streaming): off | guards (discard and requeue corrupt batches) | dmr (re-execute corrupt batches on the host CPU)")

		clusterN       = flag.Int("cluster", 0, "shard the streamed search across this many in-process worker nodes, each with -devices simulated devices (exercises the full cluster wire protocol; see cmd/hmmworker for real worker processes)")
		clusterWorkers = flag.String("cluster-workers", "", "comma-separated hmmworker addresses (host:port) to shard the streamed search across over TCP")
		clusterFaults  = flag.String("cluster-faults", "", "inject cluster faults: \"<worker>:<fault>[,...][;...]\" with faults refuse=N, kill=N, killp=P, torn=N, stall=N@D, dead=1, hello=bad — e.g. \"0:kill=1,dead=1\"")
		clusterSeed    = flag.Int64("cluster-fault-seed", 1, "seed for probabilistic cluster fault injection (-cluster-faults killp=)")
		clusterDeadl   = flag.Duration("cluster-deadline", 0, "per-batch assignment deadline in cluster mode (0 disables); a batch not answered in time is reclaimed and requeued, the late reply fenced")
		haStandby      = flag.Bool("ha-standby", false, "run as the hot-standby coordinator: keep warm connections to -cluster-workers, tail the -journal, and take over the run (fencing the dead primary by epoch) when the primary's <journal>.lock frees")
		haEpoch        = flag.Uint64("ha-epoch", 0, "coordinator epoch for fencing: the primary runs at 1 (default), a standby takes over at 2; chain further standbys with higher epochs")

		journalPath = flag.String("journal", "", "journal committed batches to this crash-safe file (multigpu streaming); an interrupted run resumes with -resume")
		resume      = flag.Bool("resume", false, "resume from the -journal file when it exists: journaled batches merge from disk and are not re-executed")
		journalSync = flag.Int("journal-sync", 1, "fsync the journal every N appended batches (1 = every batch; larger trades re-executing up to N-1 batches after a crash for append throughput)")
		crashSpec   = flag.String("crash", "", "inject a crash after N journal appends, for recovery testing: \"<n>[:before-append|after-append|after-sync]\" (exit status 3)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: hmmsearch [flags] <query.hmm> <targets.fasta>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	abc := alphabet.New()
	stopProf, err := startProfiles(*cpuprof, *memprof)
	check(err)
	defer stopProf()
	sk := newSinks(*trace, *traceFmt, *metrics, *kprof)
	simMode, err = simt.ParseMode(*sim)
	check(err)

	if *stream > 0 {
		budget := *batchres
		if budget <= 0 {
			budget = int64(*stream) * int64(*targlen)
		}
		co := ckptOpts{path: *journalPath, resume: *resume, syncEvery: *journalSync}
		if *crashSpec != "" {
			if *journalPath == "" {
				fatalf("-crash requires -journal")
			}
			plan, err := checkpoint.ParseCrash(*crashSpec)
			check(err)
			co.crash = plan
		}
		if *resume && *journalPath == "" {
			fatalf("-resume requires -journal")
		}
		if *clusterN > 0 || *clusterWorkers != "" {
			if *haStandby {
				if *clusterWorkers == "" || *clusterN > 0 {
					fatalf("-ha-standby requires TCP workers (-cluster-workers): the standby must reach the same worker processes the primary used")
				}
				if *journalPath == "" {
					fatalf("-ha-standby requires -journal: the primary's commit log is the handoff medium")
				}
				if *resume {
					fatalf("-ha-standby replaces -resume: the standby tails the journal live and settles it at takeover")
				}
			}
			cl := clusterOpts{
				inProcess:       *clusterN,
				addrs:           *clusterWorkers,
				faults:          *clusterFaults,
				faultSeed:       *clusterSeed,
				batchDeadline:   *clusterDeadl,
				maxRetries:      *maxRetries,
				quarantineAfter: *quarAfter,
				noFallback:      *noFallback,
				standby:         *haStandby,
				epoch:           *haEpoch,
			}
			runClusterStreaming(abc, flag.Arg(0), flag.Arg(1), memConfig(*mem), *devices,
				budget, *targlen, *workers, *evalue, *tblout, sk, cl, co)
			flushSinks(sk)
			return
		}
		switch *engine {
		case "cpu":
			if *journalPath != "" || *resume {
				fatalf("-journal/-resume require -engine multigpu or -cluster/-cluster-workers")
			}
			runStreaming(abc, flag.Arg(0), flag.Arg(1), *stream, *targlen, *workers, *evalue, *tblout, sk)
		case "multigpu":
			fo := faultOpts{
				spec:            *faultSpec,
				seed:            *faultSeed,
				maxRetries:      *maxRetries,
				quarantineAfter: *quarAfter,
				batchTimeout:    *batchTimeout,
				noFallback:      *noFallback,
				verify:          verifyMode(*verify),
			}
			runMultiStreaming(abc, flag.Arg(0), flag.Arg(1), memConfig(*mem), *devices,
				budget, *targlen, *workers, *evalue, *tblout, sk, fo, co)
		default:
			fatalf("-stream requires -engine cpu or multigpu")
		}
		flushSinks(sk)
		return
	}
	if *clusterN > 0 || *clusterWorkers != "" {
		fatalf("-cluster/-cluster-workers require -stream")
	}
	if *journalPath != "" || *resume {
		fatalf("-journal/-resume require -engine multigpu -stream")
	}

	query, db := loadInputs(abc, flag.Arg(0), flag.Arg(1))

	opts := pipeline.DefaultOptions()
	opts.Workers = *workers
	opts.ComputeAlignments = *aligns
	opts.UseNull2 = *null2
	opts.GPUForward = *gpufwd
	sk.Apply(&opts)
	pl, err := pipeline.New(query, int(db.MeanLen()), opts)
	check(err)

	memCfg := memConfig(*mem)

	var res *pipeline.Result
	switch *engine {
	case "cpu":
		res, err = pl.RunCPU(db)
	case "gpu":
		dev := simt.NewDevice(simt.TeslaK40())
		dev.Mode = simMode
		res, err = pl.RunGPU(dev, memCfg, db)
	case "multigpu":
		res, err = pl.RunMultiGPU(simt.NewSystem(simt.GTX580(), *devices).SetMode(simMode), memCfg, db)
	default:
		fatalf("unknown -engine %q", *engine)
	}
	check(err)

	fmt.Printf("Query:    %s (M=%d)\n", query.Name, query.M)
	fmt.Printf("Database: %s (%d sequences, %d residues)\n",
		flag.Arg(1), db.NumSeqs(), db.TotalResidues())
	fmt.Printf("Pipeline: MSV %s; Viterbi %s; Forward %s\n\n",
		res.MSV.Summary(), res.Viterbi.Summary(), res.Forward.Summary())

	fmt.Printf("%-12s %-28s %10s %10s %10s %10s\n",
		"E-value", "sequence", "fwd bits", "vit bits", "msv bits", "P-value")
	shown := 0
	for _, h := range res.Hits {
		if h.EValue > *evalue {
			continue
		}
		fmt.Printf("%-12.3g %-28s %10.2f %10.2f %10.2f %10.3g\n",
			h.EValue, h.Name, h.FwdBits, h.VitBits, h.MSVBits, h.PValue)
		shown++
		if *aligns {
			for d, dom := range h.Domains {
				fmt.Printf("\n  domain %d: hmm %d..%d, seq %d..%d\n", d+1,
					dom.HMMFrom, dom.HMMTo, dom.SeqFrom, dom.SeqTo)
				printWrapped(dom, query.Name, h.Name)
			}
			if len(h.Envelopes) > 0 {
				fmt.Printf("  posterior envelopes:")
				for _, e := range h.Envelopes {
					fmt.Printf(" %d..%d", e.From, e.To)
				}
				fmt.Println()
			}
			fmt.Println()
		}
	}
	if shown == 0 {
		fmt.Println("  (no hits below the E-value threshold)")
	}

	if *tblout != "" {
		check(writeTblout(*tblout, query.Name, res))
		fmt.Printf("\nper-target table written to %s\n", *tblout)
	}
	flushSinks(sk)
}

// sinks is the shared observability sink set (internal/obsio); the
// trace/metrics/kprof flag handling lives there so hmmworker and
// hmmserved interpret the flags identically.
type sinks = obsio.Sinks

func newSinks(tracePath, traceFmt, metricsPath, kprofPath string) *sinks {
	s, err := obsio.New(tracePath, traceFmt, metricsPath, kprofPath)
	check(err)
	return s
}

// flushSinks writes the artifact files, logging one line per artifact.
func flushSinks(s *sinks) {
	check(s.Flush(func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}))
}

// writeTblout emits a HMMER-style space-separated per-target table
// (the shared pipeline.WriteTblout format, so hmmserved responses
// byte-diff cleanly against this file).
func writeTblout(path, queryName string, res *pipeline.Result) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pipeline.WriteTblout(fh, queryName, res); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// printWrapped renders a three-row alignment in 60-column blocks.
func printWrapped(dom refimpl.DomainAlignment, qname, tname string) {
	const width = 60
	model, match, target := dom.Model, dom.Match, dom.Target
	for len(model) > 0 {
		n := width
		if n > len(model) {
			n = len(model)
		}
		fmt.Printf("  %-14.14s %s\n", qname, model[:n])
		fmt.Printf("  %-14.14s %s\n", "", match[:n])
		fmt.Printf("  %-14.14s %s\n", tname, target[:n])
		model, match, target = model[n:], match[n:], target[n:]
	}
}

// memConfig parses the -mem flag.
func memConfig(name string) gpu.MemConfig {
	switch name {
	case "auto":
		return gpu.MemAuto
	case "shared":
		return gpu.MemShared
	case "global":
		return gpu.MemGlobal
	default:
		fatalf("unknown -mem %q", name)
		panic("unreachable")
	}
}

// runStreaming searches a FASTA stream without loading it into memory.
func runStreaming(abc *alphabet.Alphabet, hmmPath, fastaPath string, batch, targetLen, workers int, evalue float64, tblout string, sk *sinks) {
	hf, err := os.Open(hmmPath)
	check(err)
	query, err := hmm.Read(hf, abc)
	check(err)
	hf.Close()

	opts := pipeline.DefaultOptions()
	opts.Workers = workers
	sk.Apply(&opts)
	pl, err := pipeline.New(query, targetLen, opts)
	check(err)

	ff, err := os.Open(fastaPath)
	check(err)
	defer ff.Close()
	res, err := pl.RunCPUStream(ff, batch)
	check(err)

	fmt.Printf("Query:    %s (M=%d, streamed in batches of %d)\n", query.Name, query.M, batch)
	fmt.Printf("Pipeline: MSV %d/%d passed; Viterbi %d; Forward hits %d\n\n",
		res.MSV.Out, res.MSV.In, res.Viterbi.Out, len(res.Hits))
	fmt.Printf("%-12s %-28s %10s\n", "E-value", "sequence", "fwd bits")
	shown := 0
	for _, h := range res.Hits {
		if h.EValue > evalue {
			continue
		}
		fmt.Printf("%-12.3g %-28s %10.2f\n", h.EValue, h.Name, h.FwdBits)
		shown++
	}
	if shown == 0 {
		fmt.Println("  (no hits below the E-value threshold)")
	}
	if tblout != "" {
		check(writeTblout(tblout, query.Name, res))
		fmt.Printf("\nper-target table written to %s\n", tblout)
	}
}

// faultOpts carries the chaos-engineering flags into the multigpu
// streaming path.
type faultOpts struct {
	spec            string
	seed            int64
	maxRetries      int
	quarantineAfter int
	batchTimeout    time.Duration
	noFallback      bool
	verify          pipeline.VerifyMode
}

// ckptOpts carries the crash-safety flags into the multigpu streaming
// path.
type ckptOpts struct {
	path      string
	resume    bool
	syncEvery int
	crash     *checkpoint.CrashPlan
}

// clusterOpts carries the cluster-mode flags.
type clusterOpts struct {
	// inProcess spins up this many in-process worker nodes; addrs lists
	// TCP hmmworker addresses. Both can be combined.
	inProcess int
	addrs     string
	// faults/faultSeed drive the deterministic cluster fault injector.
	faults    string
	faultSeed int64
	// batchDeadline bounds one assignment (0 disables).
	batchDeadline time.Duration
	// maxRetries/quarantineAfter/noFallback mirror the single-node
	// recovery knobs at the worker tier.
	maxRetries      int
	quarantineAfter int
	noFallback      bool
	// standby runs the hot-standby protocol instead of a primary
	// coordinator; epoch overrides the coordinator epoch for fencing.
	standby bool
	epoch   uint64
}

// drainOnInterrupt installs the two-stage SIGINT policy shared by the
// resumable streaming paths: the first interrupt drains gracefully
// (in-flight batches finish and are journaled), the second aborts via
// context cancellation. stop uninstalls the handler. The policy lives
// in internal/drainctx so hmmworker and hmmserved share it.
func drainOnInterrupt() (ctx context.Context, drain <-chan struct{}, stop func()) {
	return drainctx.Notify("hmmsearch", os.Stderr, os.Interrupt)
}

// verifyMode parses the -verify flag.
func verifyMode(s string) pipeline.VerifyMode {
	switch s {
	case "off":
		return pipeline.VerifyOff
	case "guards":
		return pipeline.VerifyGuards
	case "dmr":
		return pipeline.VerifyDMR
	}
	fatalf("unknown -verify mode %q (want off, guards, or dmr)", s)
	return pipeline.VerifyOff
}

// runMultiStreaming searches a FASTA stream across simulated devices:
// residue-balanced batches, dynamic device assignment, per-device
// utilization in the summary. fo optionally injects device faults and
// tunes the scheduler's recovery knobs; co optionally journals
// committed batches and resumes from a previous run's journal.
//
// With journaling active, SIGINT drains gracefully: in-flight batches
// finish and land in the journal, then the run exits cleanly with a
// resume hint. A second SIGINT aborts immediately.
func runMultiStreaming(abc *alphabet.Alphabet, hmmPath, fastaPath string, mem gpu.MemConfig,
	devices int, batchResidues int64, targetLen, workers int, evalue float64, tblout string, sk *sinks, fo faultOpts, co ckptOpts) {

	// The handler installs before the (slow) calibration in
	// pipeline.New, so an early SIGINT is drained, not fatal.
	// First SIGINT: graceful drain — in-flight batches finish (and are
	// journaled), then the run returns with a partial result. Second
	// SIGINT: hard abort via context cancellation (kernels poll the
	// cancel channel between blocks).
	ctx, drain, stop := drainOnInterrupt()
	defer stop()

	hf, err := os.Open(hmmPath)
	check(err)
	query, err := hmm.Read(hf, abc)
	check(err)
	hf.Close()

	opts := pipeline.DefaultOptions()
	opts.Workers = workers
	sk.Apply(&opts)
	pl, err := pipeline.New(query, targetLen, opts)
	check(err)

	ff, err := os.Open(fastaPath)
	check(err)
	defer ff.Close()
	sys := simt.NewSystem(simt.GTX580(), devices).SetMode(simMode)
	if fo.spec != "" {
		faults, err := simt.ParseFaults(fo.spec, fo.seed, devices)
		check(err)
		check(sys.ApplyFaults(faults))
	}

	cfg := pipeline.StreamConfig{
		BatchResidues:   batchResidues,
		MaxRetries:      fo.maxRetries,
		QuarantineAfter: fo.quarantineAfter,
		BatchTimeout:    fo.batchTimeout,
		DisableFallback: fo.noFallback,
		Verify:          fo.verify,
	}
	if co.path != "" {
		cfg.Checkpoint = &pipeline.CheckpointConfig{
			Path:      co.path,
			Resume:    co.resume,
			SyncEvery: co.syncEvery,
			Crash:     co.crash,
		}
	}

	cfg.Drain = drain

	res, err := pl.RunMultiGPUStreamContext(ctx, sys, mem, ff, cfg)
	if err != nil {
		if errors.Is(err, checkpoint.ErrInjectedCrash) {
			// Distinct exit status so recovery tests can assert the
			// simulated crash happened (and was not a real failure).
			fmt.Fprintf(os.Stderr, "hmmsearch: %v\n", err)
			os.Exit(3)
		}
		check(err)
	}

	extra := res.Extra.(*pipeline.MultiGPUStreamExtra)
	sched := extra.Schedule
	fmt.Printf("Query:    %s (M=%d, streamed in %d residue-balanced batches of ~%d residues)\n",
		query.Name, query.M, sched.Batches, batchResidues)
	fmt.Printf("Devices:  %d x %s\n", devices, sys.Devices[0].Spec.Name)
	fmt.Println(sched.String())
	if st := extra.Checkpoint; st != nil {
		fmt.Printf("Journal:  %s (%d batches journaled, %d replayed, %d torn-tail dropped, %d fsyncs)\n",
			co.path, st.Journaled, st.Replayed, st.DroppedTail, st.Syncs)
	}
	if extra.Drained {
		fmt.Printf("Run drained before the end of the stream: partial results only.\n")
		if co.path != "" {
			fmt.Printf("Resume with: hmmsearch -engine multigpu -stream -batchres %d -journal %s -resume ...\n",
				batchResidues, co.path)
		}
	}
	fmt.Printf("Pipeline: MSV %d/%d passed; Viterbi %d; Forward hits %d\n\n",
		res.MSV.Out, res.MSV.In, res.Viterbi.Out, len(res.Hits))
	fmt.Printf("%-12s %-28s %10s\n", "E-value", "sequence", "fwd bits")
	shown := 0
	for _, h := range res.Hits {
		if h.EValue > evalue {
			continue
		}
		fmt.Printf("%-12.3g %-28s %10.2f\n", h.EValue, h.Name, h.FwdBits)
		shown++
	}
	if shown == 0 {
		fmt.Println("  (no hits below the E-value threshold)")
	}
	if tblout != "" {
		check(writeTblout(tblout, query.Name, res))
		fmt.Printf("\nper-target table written to %s\n", tblout)
	}
}

// runClusterStreaming shards a FASTA stream across cluster workers:
// in-process worker nodes (-cluster n, each driving -devices simulated
// devices over the full wire protocol), TCP hmmworker processes
// (-cluster-workers), or both. Worker loss is detected by heartbeat
// and repaired by exactly-once requeue; with every worker gone the
// run degrades to the local CPU unless -no-fallback. Journaling,
// -resume, -crash, and the SIGINT drain behave exactly as in the
// single-node streamed path — the coordinator reuses the same journal
// as its commit log.
func runClusterStreaming(abc *alphabet.Alphabet, hmmPath, fastaPath string, mem gpu.MemConfig,
	devicesPerWorker int, batchResidues int64, targetLen, workers int, evalue float64,
	tblout string, sk *sinks, cl clusterOpts, co ckptOpts) {

	ctx, drain, stop := drainOnInterrupt()
	defer stop()

	hf, err := os.Open(hmmPath)
	check(err)
	query, err := hmm.Read(hf, abc)
	check(err)
	hf.Close()

	opts := pipeline.DefaultOptions()
	opts.Workers = workers
	sk.Apply(&opts)
	pl, err := pipeline.New(query, targetLen, opts)
	check(err)

	cfg := pipeline.StreamConfig{
		BatchResidues:   batchResidues,
		MaxRetries:      cl.maxRetries,
		QuarantineAfter: cl.quarantineAfter,
		DisableFallback: cl.noFallback,
		Drain:           drain,
	}
	if co.path != "" {
		cfg.Checkpoint = &pipeline.CheckpointConfig{
			Path:      co.path,
			Resume:    co.resume,
			SyncEvery: co.syncEvery,
			Crash:     co.crash,
		}
	}

	mode := byte(simMode)
	ccfg := pipeline.ClusterConfig{
		Mode:          mode,
		BatchDeadline: cl.batchDeadline,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hmmsearch: "+format+"\n", args...)
		},
	}
	if cl.faults != "" {
		inject, err := cluster.ParseFaults(cl.faults, cl.faultSeed)
		check(err)
		ccfg.Inject = inject
	}
	if cl.inProcess > 0 {
		ccfg.Workers = pl.InProcessClusterWorkers(cfg, mode, cl.inProcess, devicesPerWorker,
			func() cluster.Exec {
				sys := simt.NewSystem(simt.GTX580(), devicesPerWorker).SetMode(simMode)
				return pl.ClusterExecGPU(sys, mem)
			})
	}
	if cl.addrs != "" {
		for _, addr := range strings.Split(cl.addrs, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			a := addr
			ccfg.Workers = append(ccfg.Workers, cluster.WorkerSpec{
				Name: a,
				Dial: func(ctx context.Context) (net.Conn, error) {
					var d net.Dialer
					return d.DialContext(ctx, "tcp", a)
				},
			})
		}
	}

	ff, err := os.Open(fastaPath)
	check(err)
	defer ff.Close()
	var res *pipeline.Result
	if cl.standby {
		res, err = pl.RunStandbyClusterStreamContext(ctx, ff, cfg, ccfg,
			pipeline.StandbyClusterConfig{Epoch: cl.epoch})
	} else {
		if co.path != "" {
			// Hold the journal's flock for the whole run so a hot
			// standby's takeover gates on this process's death: the
			// kernel frees the lock when we exit, however we exit.
			release, lerr := cluster.AcquireFileLeadership(co.path+".lock",
				cluster.DefaultLeadershipPoll)(ctx)
			check(lerr)
			defer release()
		}
		ccfg.Epoch = cl.epoch
		res, err = pl.RunClusterStreamContext(ctx, ff, cfg, ccfg)
	}
	if err != nil {
		if errors.Is(err, checkpoint.ErrInjectedCrash) || errors.Is(err, cluster.ErrInjectedCoordinatorKill) {
			// Distinct exit status so recovery and failover tests can
			// assert the simulated death happened (and was not a real
			// failure).
			fmt.Fprintf(os.Stderr, "hmmsearch: %v\n", err)
			os.Exit(3)
		}
		check(err)
	}

	extra := res.Extra.(*pipeline.ClusterStreamExtra)
	rep := extra.Cluster
	fmt.Printf("Query:    %s (M=%d, streamed in %d residue-balanced batches of ~%d residues)\n",
		query.Name, query.M, rep.Batches, batchResidues)
	fmt.Println(rep.String())
	if rep.Failovers > 0 {
		fmt.Printf("Failover: took over at epoch %d after tailing %d committed batches from the primary's journal\n",
			rep.Epoch, rep.StandbyTailed)
	}
	if st := extra.Checkpoint; st != nil {
		fmt.Printf("Journal:  %s (%d batches journaled, %d replayed, %d torn-tail dropped, %d fsyncs)\n",
			co.path, st.Journaled, st.Replayed, st.DroppedTail, st.Syncs)
	}
	if extra.Drained {
		fmt.Printf("Run drained before the end of the stream: partial results only.\n")
		if co.path != "" {
			fmt.Printf("Resume with: hmmsearch -stream -batchres %d -journal %s -resume ...\n",
				batchResidues, co.path)
		}
	}
	fmt.Printf("Pipeline: MSV %d/%d passed; Viterbi %d; Forward hits %d\n\n",
		res.MSV.Out, res.MSV.In, res.Viterbi.Out, len(res.Hits))
	fmt.Printf("%-12s %-28s %10s\n", "E-value", "sequence", "fwd bits")
	shown := 0
	for _, h := range res.Hits {
		if h.EValue > evalue {
			continue
		}
		fmt.Printf("%-12.3g %-28s %10.2f\n", h.EValue, h.Name, h.FwdBits)
		shown++
	}
	if shown == 0 {
		fmt.Println("  (no hits below the E-value threshold)")
	}
	if tblout != "" {
		check(writeTblout(tblout, query.Name, res))
		fmt.Printf("\nper-target table written to %s\n", tblout)
	}
}

func loadInputs(abc *alphabet.Alphabet, hmmPath, fastaPath string) (*hmm.Plan7, *seq.Database) {
	hf, err := os.Open(hmmPath)
	check(err)
	defer hf.Close()
	query, err := hmm.Read(hf, abc)
	check(err)

	ff, err := os.Open(fastaPath)
	check(err)
	defer ff.Close()
	db, err := seq.ReadFASTA(ff, abc)
	check(err)
	return query, db
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hmmsearch: "+format+"\n", args...)
	os.Exit(1)
}
