// Command hmmsearch searches a profile HMM against a FASTA sequence
// database with the accelerated HMMER3 pipeline, on the CPU engine or
// on a simulated GPU:
//
//	hmmsearch -engine cpu        query.hmm targets.fasta
//	hmmsearch -engine gpu        query.hmm targets.fasta   (Tesla K40)
//	hmmsearch -engine multigpu   query.hmm targets.fasta   (4x GTX 580)
//
// Databases too large for memory stream in batches; with -engine
// multigpu the batches are residue-balanced and fed to whichever
// device frees up first:
//
//	hmmsearch -stream 5000 query.hmm targets.fasta
//	hmmsearch -engine multigpu -stream 5000 -devices 4 query.hmm targets.fasta
package main

import (
	"flag"
	"fmt"
	"os"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/refimpl"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

func main() {
	var (
		engine   = flag.String("engine", "cpu", "cpu|gpu|multigpu")
		mem      = flag.String("mem", "auto", "GPU memory configuration: auto|shared|global")
		evalue   = flag.Float64("E", 10.0, "report hits with E-value <= this")
		aligns   = flag.Bool("alignments", false, "render domain alignments for reported hits")
		null2    = flag.Bool("null2", false, "apply the biased-composition score correction")
		gpufwd   = flag.Bool("gpufwd", false, "run the Forward stage on the device too (-engine gpu)")
		tblout   = flag.String("tblout", "", "write a machine-readable per-target table to this file")
		stream   = flag.Int("stream", 0, "stream the database in batches of this many sequences (constant memory); 0 loads it whole (-engine cpu or multigpu)")
		batchres = flag.Int64("batchres", 0, "multigpu streaming: residue budget per batch (0 = stream * targlen)")
		targlen  = flag.Int("targlen", 350, "assumed typical target length for -stream (the length model cannot be derived from an unread stream)")
		workers  = flag.Int("workers", 0, "host worker goroutines (0 = GOMAXPROCS)")
		devices  = flag.Int("devices", 4, "device count for -engine multigpu")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: hmmsearch [flags] <query.hmm> <targets.fasta>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	abc := alphabet.New()

	if *stream > 0 {
		switch *engine {
		case "cpu":
			runStreaming(abc, flag.Arg(0), flag.Arg(1), *stream, *targlen, *workers, *evalue, *tblout)
		case "multigpu":
			budget := *batchres
			if budget <= 0 {
				budget = int64(*stream) * int64(*targlen)
			}
			runMultiStreaming(abc, flag.Arg(0), flag.Arg(1), memConfig(*mem), *devices,
				budget, *targlen, *workers, *evalue, *tblout)
		default:
			fatalf("-stream requires -engine cpu or multigpu")
		}
		return
	}

	query, db := loadInputs(abc, flag.Arg(0), flag.Arg(1))

	opts := pipeline.DefaultOptions()
	opts.Workers = *workers
	opts.ComputeAlignments = *aligns
	opts.UseNull2 = *null2
	opts.GPUForward = *gpufwd
	pl, err := pipeline.New(query, int(db.MeanLen()), opts)
	check(err)

	memCfg := memConfig(*mem)

	var res *pipeline.Result
	switch *engine {
	case "cpu":
		res, err = pl.RunCPU(db)
	case "gpu":
		res, err = pl.RunGPU(simt.NewDevice(simt.TeslaK40()), memCfg, db)
	case "multigpu":
		res, err = pl.RunMultiGPU(simt.NewSystem(simt.GTX580(), *devices), memCfg, db)
	default:
		fatalf("unknown -engine %q", *engine)
	}
	check(err)

	fmt.Printf("Query:    %s (M=%d)\n", query.Name, query.M)
	fmt.Printf("Database: %s (%d sequences, %d residues)\n",
		flag.Arg(1), db.NumSeqs(), db.TotalResidues())
	fmt.Printf("Pipeline: MSV %d/%d passed (%.2f%%) in %v; Viterbi %d/%d (%.2f%%) in %v; Forward %d/%d in %v\n\n",
		res.MSV.Out, res.MSV.In, res.MSV.PassFraction()*100, res.MSV.Wall,
		res.Viterbi.Out, res.Viterbi.In, res.Viterbi.PassFraction()*100, res.Viterbi.Wall,
		res.Forward.Out, res.Forward.In, res.Forward.Wall)

	fmt.Printf("%-12s %-28s %10s %10s %10s %10s\n",
		"E-value", "sequence", "fwd bits", "vit bits", "msv bits", "P-value")
	shown := 0
	for _, h := range res.Hits {
		if h.EValue > *evalue {
			continue
		}
		fmt.Printf("%-12.3g %-28s %10.2f %10.2f %10.2f %10.3g\n",
			h.EValue, h.Name, h.FwdBits, h.VitBits, h.MSVBits, h.PValue)
		shown++
		if *aligns {
			for d, dom := range h.Domains {
				fmt.Printf("\n  domain %d: hmm %d..%d, seq %d..%d\n", d+1,
					dom.HMMFrom, dom.HMMTo, dom.SeqFrom, dom.SeqTo)
				printWrapped(dom, query.Name, h.Name)
			}
			if len(h.Envelopes) > 0 {
				fmt.Printf("  posterior envelopes:")
				for _, e := range h.Envelopes {
					fmt.Printf(" %d..%d", e.From, e.To)
				}
				fmt.Println()
			}
			fmt.Println()
		}
	}
	if shown == 0 {
		fmt.Println("  (no hits below the E-value threshold)")
	}

	if *tblout != "" {
		check(writeTblout(*tblout, query.Name, res))
		fmt.Printf("\nper-target table written to %s\n", *tblout)
	}
}

// writeTblout emits a HMMER-style space-separated per-target table.
func writeTblout(path, queryName string, res *pipeline.Result) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(fh, "# target              query                 e-value   fwd-bits  vit-bits  msv-bits\n")
	for _, h := range res.Hits {
		fmt.Fprintf(fh, "%-20s %-20s %9.3g %9.2f %9.2f %9.2f\n",
			h.Name, queryName, h.EValue, h.FwdBits, h.VitBits, h.MSVBits)
	}
	return fh.Close()
}

// printWrapped renders a three-row alignment in 60-column blocks.
func printWrapped(dom refimpl.DomainAlignment, qname, tname string) {
	const width = 60
	model, match, target := dom.Model, dom.Match, dom.Target
	for len(model) > 0 {
		n := width
		if n > len(model) {
			n = len(model)
		}
		fmt.Printf("  %-14.14s %s\n", qname, model[:n])
		fmt.Printf("  %-14.14s %s\n", "", match[:n])
		fmt.Printf("  %-14.14s %s\n", tname, target[:n])
		model, match, target = model[n:], match[n:], target[n:]
	}
}

// memConfig parses the -mem flag.
func memConfig(name string) gpu.MemConfig {
	switch name {
	case "auto":
		return gpu.MemAuto
	case "shared":
		return gpu.MemShared
	case "global":
		return gpu.MemGlobal
	default:
		fatalf("unknown -mem %q", name)
		panic("unreachable")
	}
}

// runStreaming searches a FASTA stream without loading it into memory.
func runStreaming(abc *alphabet.Alphabet, hmmPath, fastaPath string, batch, targetLen, workers int, evalue float64, tblout string) {
	hf, err := os.Open(hmmPath)
	check(err)
	query, err := hmm.Read(hf, abc)
	check(err)
	hf.Close()

	opts := pipeline.DefaultOptions()
	opts.Workers = workers
	pl, err := pipeline.New(query, targetLen, opts)
	check(err)

	ff, err := os.Open(fastaPath)
	check(err)
	defer ff.Close()
	res, err := pl.RunCPUStream(ff, batch)
	check(err)

	fmt.Printf("Query:    %s (M=%d, streamed in batches of %d)\n", query.Name, query.M, batch)
	fmt.Printf("Pipeline: MSV %d/%d passed; Viterbi %d; Forward hits %d\n\n",
		res.MSV.Out, res.MSV.In, res.Viterbi.Out, len(res.Hits))
	fmt.Printf("%-12s %-28s %10s\n", "E-value", "sequence", "fwd bits")
	shown := 0
	for _, h := range res.Hits {
		if h.EValue > evalue {
			continue
		}
		fmt.Printf("%-12.3g %-28s %10.2f\n", h.EValue, h.Name, h.FwdBits)
		shown++
	}
	if shown == 0 {
		fmt.Println("  (no hits below the E-value threshold)")
	}
	if tblout != "" {
		check(writeTblout(tblout, query.Name, res))
		fmt.Printf("\nper-target table written to %s\n", tblout)
	}
}

// runMultiStreaming searches a FASTA stream across simulated devices:
// residue-balanced batches, dynamic device assignment, per-device
// utilization in the summary.
func runMultiStreaming(abc *alphabet.Alphabet, hmmPath, fastaPath string, mem gpu.MemConfig,
	devices int, batchResidues int64, targetLen, workers int, evalue float64, tblout string) {

	hf, err := os.Open(hmmPath)
	check(err)
	query, err := hmm.Read(hf, abc)
	check(err)
	hf.Close()

	opts := pipeline.DefaultOptions()
	opts.Workers = workers
	pl, err := pipeline.New(query, targetLen, opts)
	check(err)

	ff, err := os.Open(fastaPath)
	check(err)
	defer ff.Close()
	sys := simt.NewSystem(simt.GTX580(), devices)
	res, err := pl.RunMultiGPUStream(sys, mem, ff, pipeline.StreamConfig{BatchResidues: batchResidues})
	check(err)

	extra := res.Extra.(*pipeline.MultiGPUStreamExtra)
	sched := extra.Schedule
	fmt.Printf("Query:    %s (M=%d, streamed in %d residue-balanced batches of ~%d residues)\n",
		query.Name, query.M, sched.Batches, batchResidues)
	fmt.Printf("Devices:  %d x %s, wall %v\n", devices, sys.Devices[0].Spec.Name, sched.Wall)
	for i, u := range sched.Util {
		share := 0.0
		if sched.Residues > 0 {
			share = 100 * float64(u.Residues) / float64(sched.Residues)
		}
		fmt.Printf("  device %d: %3d batches, %9d residues (%5.1f%%), busy %v\n",
			i, u.Batches, u.Residues, share, u.Busy)
	}
	fmt.Printf("Pipeline: MSV %d/%d passed; Viterbi %d; Forward hits %d\n\n",
		res.MSV.Out, res.MSV.In, res.Viterbi.Out, len(res.Hits))
	fmt.Printf("%-12s %-28s %10s\n", "E-value", "sequence", "fwd bits")
	shown := 0
	for _, h := range res.Hits {
		if h.EValue > evalue {
			continue
		}
		fmt.Printf("%-12.3g %-28s %10.2f\n", h.EValue, h.Name, h.FwdBits)
		shown++
	}
	if shown == 0 {
		fmt.Println("  (no hits below the E-value threshold)")
	}
	if tblout != "" {
		check(writeTblout(tblout, query.Name, res))
		fmt.Printf("\nper-target table written to %s\n", tblout)
	}
}

func loadInputs(abc *alphabet.Alphabet, hmmPath, fastaPath string) (*hmm.Plan7, *seq.Database) {
	hf, err := os.Open(hmmPath)
	check(err)
	defer hf.Close()
	query, err := hmm.Read(hf, abc)
	check(err)

	ff, err := os.Open(fastaPath)
	check(err)
	defer ff.Close()
	db, err := seq.ReadFASTA(ff, abc)
	check(err)
	return query, db
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hmmsearch: "+format+"\n", args...)
	os.Exit(1)
}
