package main

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles enables the runtime/pprof collectors requested by
// -cpuprofile/-memprofile and returns the function that stops the CPU
// profile and writes the heap snapshot. The returned stop runs on the
// normal exit path only; error exits (os.Exit) drop the profiles, as
// with go test.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			fh, err := os.Create(memPath)
			if err != nil {
				return
			}
			runtime.GC() // snapshot live objects, not garbage
			pprof.WriteHeapProfile(fh)
			fh.Close()
		}
	}, nil
}
