// Command benchdiff compares two benchmark-trajectory records
// (BENCH_<rev>.json files written by hmmbench -experiment trajectory)
// and fails when wall-clock regresses beyond a threshold:
//
//	benchdiff -threshold 0.20 bench/BENCH_baseline.json BENCH_dev.json
//
// The exit status is 1 when any suite in the new record is slower than
// the baseline by more than the threshold fraction. Suites present in
// only one record are reported but never fail the comparison (the
// baseline predates them or they were retired). A host, sim-mode, or
// toolchain mismatch between the two records prints a loud banner on
// stderr, since wall-clock comparisons across different machines or
// modes are unreliable.
package main

import (
	"flag"
	"fmt"
	"os"

	"hmmer3gpu/internal/bench"
)

func main() {
	threshold := flag.Float64("threshold", 0.20,
		"fail when a suite's wall-clock regresses by more than this fraction")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.20] <baseline.json> <new.json>")
		os.Exit(2)
	}
	if *threshold < 0 {
		fatalf("-threshold must be >= 0, got %g", *threshold)
	}

	base, err := bench.ReadTrajectory(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	cur, err := bench.ReadTrajectory(flag.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}

	var mismatches []string
	if base.SimMode != cur.SimMode {
		mismatches = append(mismatches,
			fmt.Sprintf("sim mode differs: %s vs %s", base.SimMode, cur.SimMode))
	}
	if base.GOOS != cur.GOOS || base.GOARCH != cur.GOARCH || base.NumCPU != cur.NumCPU {
		mismatches = append(mismatches,
			fmt.Sprintf("host differs: %s/%s %d cpus vs %s/%s %d cpus",
				base.GOOS, base.GOARCH, base.NumCPU, cur.GOOS, cur.GOARCH, cur.NumCPU))
	}
	if base.GoVersion != cur.GoVersion {
		mismatches = append(mismatches,
			fmt.Sprintf("toolchain differs: %s vs %s", base.GoVersion, cur.GoVersion))
	}
	warnMismatches(mismatches)

	fmt.Printf("benchdiff: %s (%s) vs %s (%s), threshold %.0f%%\n",
		base.Rev, base.SimMode, cur.Rev, cur.SimMode, *threshold*100)
	fmt.Printf("%-16s %12s %12s %9s %s\n", "suite", "baseline", "new", "ratio", "status")

	baseBy := make(map[string]bench.TrajectorySuite, len(base.Suites))
	for _, s := range base.Suites {
		baseBy[s.Suite] = s
	}

	regressed := false
	seen := make(map[string]bool, len(cur.Suites))
	for _, s := range cur.Suites {
		seen[s.Suite] = true
		b, ok := baseBy[s.Suite]
		if !ok {
			fmt.Printf("%-16s %12s %11.3fs %9s new suite (not compared)\n", s.Suite, "-", s.WallSeconds, "-")
			continue
		}
		if b.WallSeconds <= 0 {
			fmt.Printf("%-16s %12s %11.3fs %9s baseline wall is zero (not compared)\n", s.Suite, "0s", s.WallSeconds, "-")
			continue
		}
		ratio := s.WallSeconds / b.WallSeconds
		status := "ok"
		if ratio > 1+*threshold {
			status = fmt.Sprintf("REGRESSION (> %.0f%%)", *threshold*100)
			regressed = true
		} else if ratio < 1 {
			status = "improved"
		}
		fmt.Printf("%-16s %11.3fs %11.3fs %8.2fx %s\n", s.Suite, b.WallSeconds, s.WallSeconds, ratio, status)
	}
	for _, b := range base.Suites {
		if !seen[b.Suite] {
			fmt.Printf("%-16s %11.3fs %12s %9s retired suite (not compared)\n", b.Suite, b.WallSeconds, "-", "-")
		}
	}

	if regressed {
		fmt.Println("benchdiff: FAIL — wall-clock regression beyond threshold")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

// warnMismatches prints a hard-to-miss banner on stderr when the two
// records were collected under different conditions. The comparison
// still runs — a cross-host diff is sometimes all you have — but the
// table below it must not be read as a clean regression signal.
func warnMismatches(mismatches []string) {
	if len(mismatches) == 0 {
		return
	}
	const bar = "============================================================"
	fmt.Fprintln(os.Stderr, bar)
	fmt.Fprintln(os.Stderr, "WARNING: the two records are NOT directly comparable:")
	for _, m := range mismatches {
		fmt.Fprintf(os.Stderr, "  - %s\n", m)
	}
	fmt.Fprintln(os.Stderr, "wall-clock ratios below are unreliable; treat any")
	fmt.Fprintln(os.Stderr, "REGRESSION/improved verdicts as suspect.")
	fmt.Fprintln(os.Stderr, bar)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
