// Command hmmserved runs the resident, overload-safe HMM search
// service (internal/serve): it loads one or more target databases into
// packed resident form at startup, keeps a bounded LRU of calibrated
// profiles hot, and multiplexes concurrent HTTP queries onto a shared
// pool of simulated devices.
//
//	hmmserved -listen :8731 -db swiss=targets.fasta -stream 2000 -devices 2 -sim fast
//
// Clients POST a profile HMM to /search?db=<name> and receive the
// same per-target table the one-shot CLI writes with -tblout —
// byte-identical, whether computed fresh, served from the result
// cache, or degraded to the host CPU after device faults:
//
//	curl --data-binary @query.hmm 'localhost:8731/search?db=swiss'
//
// Overload is shed with 429 + Retry-After (token bucket plus a bounded
// fair queue); /healthz and /readyz report device and queue state;
// /metrics serves Prometheus text. The first SIGTERM/SIGINT drains
// gracefully — admission stops, queued queries are refused into the
// drain journal, in-flight queries finish — and the process exits 0.
// A second signal aborts in-flight queries mid-kernel and exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"time"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/drainctx"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/serve"
	"hmmer3gpu/internal/simt"
)

// dbFlags collects repeatable -db name=path mappings.
type dbFlags map[string]string

func (d dbFlags) String() string {
	var parts []string
	for name, path := range d {
		parts = append(parts, name+"="+path)
	}
	return strings.Join(parts, ",")
}

func (d dbFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	if _, dup := d[name]; dup {
		return fmt.Errorf("database %q given twice", name)
	}
	d[name] = path
	return nil
}

func main() {
	dbs := dbFlags{}
	flag.Var(dbs, "db", "serve this database as name=path/to/targets.fasta (repeatable)")
	var (
		listen   = flag.String("listen", ":8731", "HTTP listen address")
		stream   = flag.Int("stream", 0, "database chunking: batches of this many sequences (must match the one-shot CLI's -stream for byte-identical output)")
		batchres = flag.Int64("batchres", 0, "residue budget per batch (0 = stream * targlen; must match the CLI's -batchres)")
		targlen  = flag.Int("targlen", 350, "assumed typical target length for calibration (must match the CLI's -targlen)")
		workers  = flag.Int("workers", 0, "host worker goroutines per query (0 = GOMAXPROCS)")
		mem      = flag.String("mem", "auto", "GPU memory configuration: auto|shared|global")
		sim      = flag.String("sim", "cycles", "simulator mode: cycles or fast; results are identical")
		devices  = flag.Int("devices", 2, "simulated device pool size")
		devsPerQ = flag.Int("devs-per-query", 1, "devices one query's scheduler spans (pool/devs-per-query queries run concurrently)")

		rate     = flag.Float64("rate", 0, "admission token bucket: sustained queries/second (0 disables the bucket)")
		burst    = flag.Float64("burst", 0, "admission token bucket: burst size")
		maxConc  = flag.Int("max-concurrent", 0, "queries executing simultaneously (0 = devices / devs-per-query)")
		maxQueue = flag.Int("max-queue", 0, "queries waiting for a slot before shedding (0 = max-concurrent, negative = no queue)")
		qTimeout = flag.Duration("query-timeout", 2*time.Minute, "per-query deadline; requests may ask for less via ?timeout= but never more")

		profileCap = flag.Int("profiles", 16, "calibrated-profile LRU capacity")
		resultCap  = flag.Int("cache", 256, "result cache capacity (entries)")

		faultSpec   = flag.String("faults", "", "inject device faults at startup, hmmsearch -faults syntax (chaos testing)")
		faultSeed   = flag.Int64("fault-seed", 1, "seed for probabilistic fault injection")
		cordonAfter = flag.Int("cordon-after", 2, "consecutive quarantined leases before a device is cordoned out of the pool")
		maxRetries  = flag.Int("max-retries", 0, "per-batch retry budget after transient device faults (0 = default)")
		quarAfter   = flag.Int("quarantine-after", 0, "consecutive device failures before in-run quarantine (0 = default)")
		verify      = flag.String("verify", "off", "result-integrity policy: off | guards | dmr")

		drainJournal = flag.String("drain-journal", "", "journal queries refused during drain to this file, one JSON line each; on startup any existing journal is replayed before /readyz flips healthy")
		replayOut    = flag.String("replay-out", "", "write each replayed query's response to this directory as replay-<n>.tbl (audit artifacts)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hmmserved -db name=targets.fasta [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if len(dbs) == 0 {
		fatalf("no databases: give at least one -db name=path")
	}
	budget := *batchres
	if budget <= 0 {
		if *stream <= 0 {
			fatalf("set -stream or -batchres (the chunking must match the one-shot CLI)")
		}
		budget = int64(*stream) * int64(*targlen)
	}
	mode, err := simt.ParseMode(*sim)
	check(err)

	abc := alphabet.New()
	resident := make(map[string]*pipeline.ResidentDB, len(dbs))
	for name, path := range dbs {
		fh, err := os.Open(path)
		check(err)
		rdb, err := pipeline.LoadResidentDB(name, fh, abc, budget)
		fh.Close()
		if err != nil {
			fatalf("load %s: %v", path, err)
		}
		resident[name] = rdb
		fmt.Printf("hmmserved: loaded %s: %d sequences, %d residues in %d batches\n",
			name, rdb.Seqs, rdb.Residues, len(rdb.Batches))
	}

	srv, err := serve.New(serve.Config{
		DBs:             resident,
		TargetLen:       *targlen,
		BatchResidues:   budget,
		Mem:             memConfig(*mem),
		Mode:            mode,
		Devices:         *devices,
		DevsPerQuery:    *devsPerQ,
		Faults:          *faultSpec,
		FaultSeed:       *faultSeed,
		CordonAfter:     *cordonAfter,
		Rate:            *rate,
		Burst:           *burst,
		MaxConcurrent:   *maxConc,
		MaxQueue:        *maxQueue,
		QueryTimeout:    *qTimeout,
		MaxRetries:      *maxRetries,
		QuarantineAfter: *quarAfter,
		Verify:          verifyMode(*verify),
		Workers:         *workers,
		ProfileCap:      *profileCap,
		ResultCap:       *resultCap,
		DrainJournal:    *drainJournal,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hmmserved: "+format+"\n", args...)
		},
	})
	check(err)

	ln, err := net.Listen("tcp", *listen)
	check(err)
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("hmmserved: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Replay any drain journal a previous life left behind, through the
	// normal admission path, before advertising readiness: a restarted
	// process answers every query it accepted before dying, and /readyz
	// stays 503 until it has. Replay errors are logged, not fatal — a
	// corrupt journal must not turn a restart into a crash loop.
	if *drainJournal != "" {
		rsum, err := srv.ReplayDrainJournal(*drainJournal, *replayOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hmmserved: drain-journal replay: %v\n", err)
		}
		if rsum.Replayed > 0 || rsum.Failed > 0 {
			fmt.Printf("hmmserved: replayed %d journaled queries (%d failed)\n",
				rsum.Replayed, rsum.Failed)
		}
	}
	srv.MarkReady()
	fmt.Printf("hmmserved: ready\n")

	// Two-stage termination: the first SIGTERM/SIGINT closes drain and
	// we stop admitting, finish in-flight queries, journal the queued
	// ones, and exit 0; a second signal cancels ctx, aborting queries
	// mid-kernel, and we exit 1.
	ctx, drain, stop := drainctx.Notify("hmmserved", os.Stderr, os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-serveErr:
		fatalf("serve: %v", err)
	case <-drain:
	}

	go func() {
		<-ctx.Done()
		srv.Abort()
	}()
	sum := srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	httpSrv.Shutdown(shutCtx)
	cancel()
	fmt.Printf("hmmserved: drained: %d in-flight completed, %d queued journaled\n",
		sum.Completed, sum.Journaled)
	if ctx.Err() != nil {
		os.Exit(1)
	}
}

// memConfig parses the -mem flag (same vocabulary as hmmsearch).
func memConfig(name string) gpu.MemConfig {
	switch name {
	case "auto":
		return gpu.MemAuto
	case "shared":
		return gpu.MemShared
	case "global":
		return gpu.MemGlobal
	}
	fatalf("unknown -mem %q", name)
	panic("unreachable")
}

// verifyMode parses the -verify flag (same vocabulary as hmmsearch).
func verifyMode(s string) pipeline.VerifyMode {
	switch s {
	case "off":
		return pipeline.VerifyOff
	case "guards":
		return pipeline.VerifyGuards
	case "dmr":
		return pipeline.VerifyDMR
	}
	fatalf("unknown -verify mode %q (want off, guards, or dmr)", s)
	panic("unreachable")
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hmmserved: "+format+"\n", args...)
	os.Exit(1)
}
