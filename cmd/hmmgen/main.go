// Command hmmgen writes synthetic workloads to disk: a Pfam-like query
// model in HMMER3 ASCII format and a Swissprot- or Env_nr-like FASTA
// database with planted homologs — the inputs the other tools consume.
//
//	hmmgen -m 400 -db envnr -scale 0.0005 -out ./work
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/workload"
)

func main() {
	var (
		m        = flag.Int("m", 400, "query model size")
		dbKind   = flag.String("db", "envnr", "database shape: swissprot|envnr")
		scale    = flag.Float64("scale", 0.0002, "database scale factor (1 = full paper size)")
		homologs = flag.Float64("homologs", -1, "planted homolog fraction (-1 = database default)")
		seed     = flag.Int64("seed", 42, "generator seed")
		outDir   = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	abc := alphabet.New()
	model, err := workload.Model(fmt.Sprintf("synthetic-M%d", *m), *m, abc, *seed)
	check(err)

	var spec workload.DBSpec
	switch *dbKind {
	case "swissprot":
		spec = workload.SwissprotLike(*scale, *seed+1)
	case "envnr":
		spec = workload.EnvnrLike(*scale, *seed+1)
	default:
		fatalf("unknown -db %q", *dbKind)
	}
	if *homologs >= 0 {
		spec.HomologFrac = *homologs
	}
	db, err := workload.Generate(spec, model, abc)
	check(err)

	check(os.MkdirAll(*outDir, 0o755))
	hmmPath := filepath.Join(*outDir, fmt.Sprintf("query-M%d.hmm", *m))
	fastaPath := filepath.Join(*outDir, spec.Name+".fasta")

	hf, err := os.Create(hmmPath)
	check(err)
	check(hmm.Write(hf, model))
	check(hf.Close())

	ff, err := os.Create(fastaPath)
	check(err)
	check(seq.WriteFASTA(ff, db, abc))
	check(ff.Close())

	fmt.Printf("wrote %s (M=%d)\n", hmmPath, model.M)
	fmt.Printf("wrote %s (%d sequences, %d residues, %.1f%% homologs)\n",
		fastaPath, db.NumSeqs(), db.TotalResidues(), spec.HomologFrac*100)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hmmgen: "+format+"\n", args...)
	os.Exit(1)
}
