package hmmer3gpu

// One testing.B benchmark per paper table/figure. Each benchmark runs
// a representative point of the corresponding experiment and reports
// the modelled paper-scale speedup as a custom metric
// ("paper-speedup-x"); cmd/hmmbench regenerates the full sweeps.
//
//	go test -bench=. -benchmem

import (
	"math/rand"
	"testing"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/bench"
	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/perf"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/refimpl"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

var benchAbc = alphabet.New()

func benchModel(b *testing.B, m int) *hmm.Plan7 {
	b.Helper()
	h, err := workload.Model("bench", m, benchAbc, int64(m))
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func benchDB(b *testing.B, kind workload.DBSpec, h *hmm.Plan7) *seq.Database {
	b.Helper()
	db, err := workload.Generate(kind, h, benchAbc)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func benchProfiles(h *hmm.Plan7, db *seq.Database) (*profile.MSVProfile, *profile.VitProfile) {
	p := profile.Config(h)
	p.SetLength(int(db.MeanLen()))
	return profile.NewMSVProfile(p), profile.NewVitProfile(p)
}

func envnrSpec(nSeqs int) workload.DBSpec {
	s := workload.EnvnrLike(1, 11)
	s.NumSeqs = nSeqs
	return s
}

// BenchmarkFig9MSVKernel runs the Figure 9 MSV point (M=400, shared
// configuration, Envnr-like) on the simulated K40 and reports the
// modelled speedup vs the SSE baseline.
func BenchmarkFig9MSVKernel(b *testing.B) {
	h := benchModel(b, 400)
	db := benchDB(b, envnrSpec(100), h)
	mp, _ := benchProfiles(h, db)
	spec := simt.TeslaK40()
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := simt.NewDevice(spec)
		ddb := gpu.UploadDB(dev, db)
		rep, err := (&gpu.Searcher{Dev: dev, Mem: gpu.MemShared}).MSVSearch(gpu.UploadMSVProfile(dev, mp), ddb)
		if err != nil {
			b.Fatal(err)
		}
		cells := ddb.TotalResidues * int64(mp.M)
		speedup = perf.Speedup(perf.CPUTimeMSV(perf.BaselineI5(), cells),
			perf.GPUTime(spec, rep.Launch))
		b.SetBytes(cells)
	}
	b.ReportMetric(speedup, "paper-speedup-x")
}

// BenchmarkFig9ViterbiKernel runs the Figure 9 P7Viterbi point (M=200,
// auto configuration, Envnr-like).
func BenchmarkFig9ViterbiKernel(b *testing.B) {
	h := benchModel(b, 200)
	db := benchDB(b, envnrSpec(60), h)
	_, vp := benchProfiles(h, db)
	spec := simt.TeslaK40()
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := simt.NewDevice(spec)
		ddb := gpu.UploadDB(dev, db)
		rep, err := (&gpu.Searcher{Dev: dev}).ViterbiSearch(gpu.UploadVitProfile(dev, vp), ddb)
		if err != nil {
			b.Fatal(err)
		}
		cells := ddb.TotalResidues * int64(vp.M)
		speedup = perf.Speedup(perf.CPUTimeVit(perf.BaselineI5(), cells),
			perf.GPUTime(spec, rep.Launch))
		b.SetBytes(cells)
	}
	b.ReportMetric(speedup, "paper-speedup-x")
}

// BenchmarkFig10CombinedPipeline runs one Figure 10 point: combined
// MSV+Viterbi on a single K40 with HMMER3 thresholds.
func BenchmarkFig10CombinedPipeline(b *testing.B) {
	h := benchModel(b, 400)
	sp := envnrSpec(300)
	db := benchDB(b, sp, h)
	opts := pipeline.DefaultOptions()
	opts.SkipForward = true
	opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: 3, TailMass: 0.04}
	pl, err := pipeline.New(h, int(db.MeanLen()), opts)
	if err != nil {
		b.Fatal(err)
	}
	spec := simt.TeslaK40()
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := simt.NewDevice(spec)
		res, err := pl.RunGPU(dev, gpu.MemAuto, db)
		if err != nil {
			b.Fatal(err)
		}
		extra := res.Extra.(*pipeline.GPUExtra)
		gpuT := perf.GPUTime(spec, extra.MSVReport.Launch)
		if extra.VitReport != nil {
			gpuT += perf.GPUTime(spec, extra.VitReport.Launch)
		}
		cpuT := perf.CPUTimeMSV(perf.BaselineI5(), res.MSV.Cells) +
			perf.CPUTimeVit(perf.BaselineI5(), res.Viterbi.Cells)
		speedup = perf.Speedup(cpuT, gpuT)
	}
	b.ReportMetric(speedup, "paper-speedup-x")
}

// BenchmarkFig11MultiGPU runs one Figure 11 point: the combined stages
// partitioned over four Fermi GTX 580s.
func BenchmarkFig11MultiGPU(b *testing.B) {
	h := benchModel(b, 400)
	db := benchDB(b, envnrSpec(300), h)
	mp, _ := benchProfiles(h, db)
	spec := simt.GTX580()
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := simt.NewSystem(spec, 4)
		ms := &gpu.MultiSearcher{Sys: sys}
		rep, err := ms.MSVSearch(mp, db)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rep.PerDevice {
			if r != nil {
				if t := perf.GPUTime(spec, r.Launch); t > worst {
					worst = t
				}
			}
		}
		cells := db.TotalResidues() * int64(mp.M)
		speedup = perf.Speedup(perf.CPUTimeMSV(perf.BaselineI5(), cells), worst)
	}
	b.ReportMetric(speedup, "paper-speedup-x")
}

// BenchmarkFig1PipelineStages runs the Figure 1 pipeline statistics
// workload on the CPU engine and reports the MSV pass rate.
func BenchmarkFig1PipelineStages(b *testing.B) {
	h := benchModel(b, 400)
	db := benchDB(b, envnrSpec(800), h)
	opts := pipeline.DefaultOptions()
	opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: 5, TailMass: 0.04}
	pl, err := pipeline.New(h, int(db.MeanLen()), opts)
	if err != nil {
		b.Fatal(err)
	}
	var pass float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pl.RunCPU(db)
		if err != nil {
			b.Fatal(err)
		}
		pass = res.MSV.PassFraction()
	}
	b.ReportMetric(pass*100, "msv-pass-%")
}

// BenchmarkPfamPlanning measures the launch planner over the Pfam
// sweep (the §IV table).
func BenchmarkPfamPlanning(b *testing.B) {
	spec := simt.TeslaK40()
	for i := 0; i < b.N; i++ {
		for _, m := range workload.PaperModelSizes {
			if _, err := gpu.PlanMSV(spec, m, gpu.MemAuto); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Real-throughput benchmarks of the Go implementations ----------

// BenchmarkCPUStripedMSV measures the actual Go throughput of the
// 16-lane striped MSV filter (the baseline implementation itself).
func BenchmarkCPUStripedMSV(b *testing.B) {
	h := benchModel(b, 400)
	db := benchDB(b, envnrSpec(60), h)
	mp, _ := benchProfiles(h, db)
	eng := cpu.NewMSVEngine(mp)
	cells := db.TotalResidues() * int64(mp.M)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range db.Seqs {
			eng.Filter(s.Residues)
		}
		b.SetBytes(cells)
	}
}

// BenchmarkCPUStripedViterbi measures the 8-lane striped Viterbi
// filter with lazy-F.
func BenchmarkCPUStripedViterbi(b *testing.B) {
	h := benchModel(b, 400)
	db := benchDB(b, envnrSpec(30), h)
	_, vp := benchProfiles(h, db)
	eng := cpu.NewVitEngine(vp)
	cells := db.TotalResidues() * int64(vp.M)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range db.Seqs {
			eng.Filter(s.Residues)
		}
		b.SetBytes(cells)
	}
}

// BenchmarkScalarGoldenMSV measures the unvectorised golden filter for
// comparison with the striped engine.
func BenchmarkScalarGoldenMSV(b *testing.B) {
	h := benchModel(b, 400)
	db := benchDB(b, envnrSpec(30), h)
	mp, _ := benchProfiles(h, db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range db.Seqs {
			cpu.MSVFilterScalar(mp, s.Residues)
		}
	}
}

// BenchmarkReferenceForward measures the full-precision Forward stage
// (the pipeline's final, slowest per-cell stage).
func BenchmarkReferenceForward(b *testing.B) {
	h := benchModel(b, 100)
	p := profile.Config(h)
	p.SetLength(200)
	rng := rand.New(rand.NewSource(9))
	dsq := make([]byte, 200)
	for i := range dsq {
		dsq[i] = byte(rng.Intn(20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refimpl.Forward(p, dsq)
	}
}

// BenchmarkAblationSyncFree compares against BenchmarkAblationSynced:
// the same MSV workload through the warp-synchronous kernel vs the
// barrier-laden multi-warp baseline of Figure 4.
func BenchmarkAblationSyncFree(b *testing.B) {
	h := benchModel(b, 256)
	db := benchDB(b, envnrSpec(40), h)
	mp, _ := benchProfiles(h, db)
	spec := simt.TeslaK40()
	var t float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := simt.NewDevice(spec)
		ddb := gpu.UploadDB(dev, db)
		rep, err := (&gpu.Searcher{Dev: dev, Mem: gpu.MemShared}).MSVSearch(gpu.UploadMSVProfile(dev, mp), ddb)
		if err != nil {
			b.Fatal(err)
		}
		t = perf.GPUTime(spec, rep.Launch)
	}
	b.ReportMetric(t*1e6, "modelled-us")
}

// BenchmarkAblationSynced is the synchronised counterpart.
func BenchmarkAblationSynced(b *testing.B) {
	h := benchModel(b, 256)
	db := benchDB(b, envnrSpec(40), h)
	mp, _ := benchProfiles(h, db)
	spec := simt.TeslaK40()
	var t float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := simt.NewDevice(spec)
		ddb := gpu.UploadDB(dev, db)
		rep, err := (&gpu.Searcher{Dev: dev}).MSVSearchSynced(gpu.UploadMSVProfile(dev, mp), ddb, false)
		if err != nil {
			b.Fatal(err)
		}
		t = perf.GPUTime(spec, rep.Launch)
	}
	b.ReportMetric(t*1e6, "modelled-us")
}

// BenchmarkBenchFig9Point exercises the full harness path for a single
// Figure 9 sweep point.
func BenchmarkBenchFig9Point(b *testing.B) {
	cfg := bench.QuickConfig()
	cfg.Sizes = []int{400}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig9(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
