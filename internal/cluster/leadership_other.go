//go:build !unix

package cluster

import (
	"context"
	"time"
)

// AcquireFileLeadership on platforms without flock(2) degrades to an
// immediate grant: single-host HA is a unix deployment concern, and the
// rest of the failover machinery (epoch fencing, journal takeover)
// still holds without the advisory lock.
func AcquireFileLeadership(path string, poll time.Duration) AcquireLeadership {
	_ = path
	_ = poll
	return func(ctx context.Context) (func(), error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return func() {}, nil
	}
}
