// Package cluster implements the two-level scheduler of ROADMAP item
// 4: a coordinator that shards the residue-budgeted batch stream of a
// streamed search across worker processes, each worker running the
// in-process multi-device scheduler. Robustness is the design center —
// worker loss, network failure, and coordinator crash are first-class,
// survivable events:
//
//   - Workers speak a length-prefixed, CRC-framed, versioned wire
//     protocol over localhost TCP (or an in-process net.Pipe); the
//     handshake carries the run's config fingerprint and simulator
//     mode, so a mismatched worker is rejected at connect, never after
//     it has computed a batch under the wrong configuration.
//   - Per-worker heartbeats and deadlines (on an injectable clock)
//     detect loss; a lost worker's in-flight batches requeue
//     exactly-once under the coordinator's commit-token discipline,
//     and late results from a presumed-dead worker are fenced by
//     (seq, epoch) and dropped, never double-merged.
//   - Repeatedly failing workers are quarantined by a circuit breaker;
//     with every worker gone the coordinator degrades gracefully to a
//     local executor instead of failing.
//   - The coordinator journals committed batches through the
//     checkpoint write-ahead log (the PR 6 machinery), so a coordinator
//     crash resumes by replaying the journal and re-sharding only the
//     remainder.
//
// The invariant throughout: the sharded run's hit table is
// byte-identical to the single-node run, clean or faulted.
package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"hmmer3gpu/internal/seq"
)

// ProtoVersion is the wire protocol version. A worker built from a
// different protocol version is rejected at handshake. Version 2
// extended hello with a coordinator role and fencing epoch (the
// hot-standby handshake of DESIGN §2j).
const ProtoVersion = 2

// Coordinator roles carried in the hello. An active coordinator
// assigns batches; a standby only holds the connection warm (pings)
// until it promotes itself by sending a fresh active hello on the same
// connection.
const (
	RoleActive  byte = 0
	RoleStandby byte = 1
)

// MaxFrame bounds a single frame so a corrupt or hostile length field
// cannot force a multi-gigabyte allocation. A batch frame holds one
// residue-budgeted batch (single-digit MB at realistic budgets).
const MaxFrame = 1 << 28

// frameHeaderSize prefixes every frame: u32 body length + u32 CRC-32
// (IEEE) of the body.
const frameHeaderSize = 8

// Message types (the first body byte). The body layouts are
// little-endian throughout:
//
//	hello     (coordinator→worker): u8 version | fingerprint[32] | u8 mode | u8 role | u64 epoch
//	helloAck  (worker→coordinator): u8 version | u16 capacity | u16 nameLen | name
//	helloNack (worker→coordinator): u16 reasonLen | reason
//	batch     (coordinator→worker): u64 seq | u64 epoch | u64 offset | u32 nSeqs |
//	           per seq: u32 nameLen | name | u32 descLen | desc | u32 resLen | residues
//	result    (worker→coordinator): u64 seq | u64 epoch | payload (opaque)
//	execErr   (worker→coordinator): u64 seq | u64 epoch | message
//	ping/pong (either direction):   u64 nonce
//	goodbye   (either direction):   empty
const (
	msgHello byte = iota + 1
	msgHelloAck
	msgHelloNack
	msgBatch
	msgResult
	msgExecErr
	msgPing
	msgPong
	msgGoodbye
)

// FrameError reports a malformed frame: implausible length, checksum
// mismatch, or a truncated body on a byte slice. Connection-level
// handlers treat it as fatal for the connection — a peer that frames
// incorrectly cannot be trusted to resynchronise.
type FrameError struct {
	Reason string
}

func (e *FrameError) Error() string { return "cluster: bad frame: " + e.Reason }

// WireError reports a well-framed body whose message payload is
// malformed (truncated field, implausible count).
type WireError struct {
	Msg    byte
	Reason string
}

func (e *WireError) Error() string {
	return fmt.Sprintf("cluster: bad message (type %d): %s", e.Msg, e.Reason)
}

// HandshakeError reports a connect-time rejection: protocol version
// skew, config-fingerprint mismatch, simulator-mode mismatch, or a
// corrupt hello.
type HandshakeError struct {
	Worker string
	Reason string
}

func (e *HandshakeError) Error() string {
	return fmt.Sprintf("cluster: handshake with worker %s rejected: %s", e.Worker, e.Reason)
}

// appendFrame frames body (type byte already first) into buf:
// u32 length | u32 crc | body.
func appendFrame(buf, body []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// frame returns body framed as a single contiguous buffer, ready for
// one Write call (frames must hit the wire in one write so fault
// injection and the torn-frame semantics can reason per frame).
func frame(body []byte) []byte {
	return appendFrame(make([]byte, 0, frameHeaderSize+len(body)), body)
}

// writeFrame writes one framed message to w as a single Write.
func writeFrame(w io.Writer, body []byte) error {
	_, err := w.Write(frame(body))
	return err
}

// readFrame reads one frame from r, validating length bounds and the
// CRC. io.EOF is returned verbatim only on a clean boundary (no bytes
// of the next frame read); a frame cut anywhere else surfaces as
// io.ErrUnexpectedEOF — the torn-frame signature.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length < 1 || length > MaxFrame {
		return 0, nil, &FrameError{Reason: fmt.Sprintf("implausible frame length %d", length)}
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(body) != sum {
		return 0, nil, &FrameError{Reason: "checksum mismatch"}
	}
	return body[0], body[1:], nil
}

// decodeFrame parses one frame from the front of data, returning the
// message type, its payload, and the unconsumed remainder. It is the
// byte-slice twin of readFrame (shared validation, no I/O), used by
// the FuzzDecodeFrame fuzzer and anywhere a frame is already in
// memory.
func decodeFrame(data []byte) (typ byte, payload, rest []byte, err error) {
	if len(data) < frameHeaderSize {
		return 0, nil, nil, &FrameError{Reason: "short header"}
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	if length < 1 || length > MaxFrame {
		return 0, nil, nil, &FrameError{Reason: fmt.Sprintf("implausible frame length %d", length)}
	}
	if uint64(len(data)-frameHeaderSize) < uint64(length) {
		return 0, nil, nil, &FrameError{Reason: "truncated body"}
	}
	body := data[frameHeaderSize : frameHeaderSize+int(length)]
	if crc32.ChecksumIEEE(body) != sum {
		return 0, nil, nil, &FrameError{Reason: "checksum mismatch"}
	}
	return body[0], body[1:], data[frameHeaderSize+int(length):], nil
}

// Handshake is the hello the coordinator opens every connection with.
// A standby coordinator re-sends an active hello mid-session to
// promote the warm connection (takeover); the worker re-vets it
// against the highest active epoch it has ever acked, so a stale
// primary reconnecting after a failover is nacked, never assigned to.
type Handshake struct {
	Version     byte
	Fingerprint [32]byte
	Mode        byte
	// Role is RoleActive or RoleStandby.
	Role byte
	// Epoch is the coordinator's fencing epoch. A worker that has
	// acked an active hello at epoch E nacks any later active hello
	// with epoch < E and answers batch frames from the older session
	// with a stale-epoch exec error.
	Epoch uint64
}

// HelloAck is the worker's acceptance: its name and how many batches
// it can process concurrently (its device count).
type HelloAck struct {
	Version  byte
	Capacity int
	Name     string
}

func encodeHello(h Handshake) []byte {
	body := make([]byte, 0, 1+1+32+1+1+8)
	body = append(body, msgHello, h.Version)
	body = append(body, h.Fingerprint[:]...)
	body = append(body, h.Mode, h.Role)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], h.Epoch)
	return append(body, u64[:]...)
}

func parseHello(p []byte) (Handshake, error) {
	var h Handshake
	if len(p) != 1+32+1+1+8 {
		return h, &WireError{Msg: msgHello, Reason: fmt.Sprintf("hello body is %d bytes, want %d", len(p), 1+32+1+1+8)}
	}
	h.Version = p[0]
	copy(h.Fingerprint[:], p[1:33])
	h.Mode = p[33]
	h.Role = p[34]
	h.Epoch = binary.LittleEndian.Uint64(p[35:43])
	return h, nil
}

func encodeHelloAck(a HelloAck) []byte {
	if len(a.Name) > 0xffff {
		a.Name = a.Name[:0xffff]
	}
	body := make([]byte, 0, 1+1+2+2+len(a.Name))
	body = append(body, msgHelloAck, a.Version)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(a.Capacity))
	body = append(body, u16[:]...)
	binary.LittleEndian.PutUint16(u16[:], uint16(len(a.Name)))
	body = append(body, u16[:]...)
	return append(body, a.Name...)
}

func parseHelloAck(p []byte) (HelloAck, error) {
	var a HelloAck
	if len(p) < 1+2+2 {
		return a, &WireError{Msg: msgHelloAck, Reason: "short helloAck body"}
	}
	a.Version = p[0]
	a.Capacity = int(binary.LittleEndian.Uint16(p[1:3]))
	n := int(binary.LittleEndian.Uint16(p[3:5]))
	if len(p) != 5+n {
		return a, &WireError{Msg: msgHelloAck, Reason: "helloAck name length does not match body"}
	}
	a.Name = string(p[5:])
	return a, nil
}

func encodeHelloNack(reason string) []byte {
	if len(reason) > 0xffff {
		reason = reason[:0xffff]
	}
	body := make([]byte, 0, 1+2+len(reason))
	body = append(body, msgHelloNack)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(reason)))
	body = append(body, u16[:]...)
	return append(body, reason...)
}

func parseHelloNack(p []byte) (string, error) {
	if len(p) < 2 {
		return "", &WireError{Msg: msgHelloNack, Reason: "short helloNack body"}
	}
	n := int(binary.LittleEndian.Uint16(p[0:2]))
	if len(p) != 2+n {
		return "", &WireError{Msg: msgHelloNack, Reason: "helloNack reason length does not match body"}
	}
	return string(p[2:]), nil
}

// encodeBatchMsg serialises one batch assignment: identity, fencing
// epoch, and the full sequence data (names, descriptions, digital
// residues) — the worker re-hosts the batch from the wire, it never
// reads the database file.
func encodeBatchMsg(seqNo, epoch, offset uint64, db *seq.Database) []byte {
	size := 1 + 8 + 8 + 8 + 4
	for _, s := range db.Seqs {
		size += 12 + len(s.Name) + len(s.Desc) + len(s.Residues)
	}
	body := make([]byte, 0, size)
	body = append(body, msgBatch)
	var u64 [8]byte
	for _, v := range []uint64{seqNo, epoch, offset} {
		binary.LittleEndian.PutUint64(u64[:], v)
		body = append(body, u64[:]...)
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(db.NumSeqs()))
	body = append(body, u32[:]...)
	for _, s := range db.Seqs {
		for _, field := range [][]byte{[]byte(s.Name), []byte(s.Desc), s.Residues} {
			binary.LittleEndian.PutUint32(u32[:], uint32(len(field)))
			body = append(body, u32[:]...)
			body = append(body, field...)
		}
	}
	return body
}

func parseBatchMsg(p []byte) (seqNo, epoch, offset uint64, db *seq.Database, err error) {
	pos := 0
	need := func(n int) bool { return pos+n <= len(p) }
	if !need(8 + 8 + 8 + 4) {
		return 0, 0, 0, nil, &WireError{Msg: msgBatch, Reason: "short batch header"}
	}
	seqNo = binary.LittleEndian.Uint64(p[pos:])
	epoch = binary.LittleEndian.Uint64(p[pos+8:])
	offset = binary.LittleEndian.Uint64(p[pos+16:])
	nSeqs := binary.LittleEndian.Uint32(p[pos+24:])
	pos += 28
	// Each sequence costs at least 12 bytes of length prefixes, so an
	// implausible count is rejected before any allocation.
	if uint64(nSeqs)*12 > uint64(len(p)-pos) {
		return 0, 0, 0, nil, &WireError{Msg: msgBatch, Reason: fmt.Sprintf("implausible sequence count %d", nSeqs)}
	}
	db = seq.NewDatabase("cluster-batch")
	for i := uint32(0); i < nSeqs; i++ {
		var fields [3][]byte
		for f := range fields {
			if !need(4) {
				return 0, 0, 0, nil, &WireError{Msg: msgBatch, Reason: fmt.Sprintf("seq %d: truncated length", i)}
			}
			n := binary.LittleEndian.Uint32(p[pos:])
			pos += 4
			if uint64(n) > uint64(len(p)-pos) {
				return 0, 0, 0, nil, &WireError{Msg: msgBatch, Reason: fmt.Sprintf("seq %d: field length %d exceeds body", i, n)}
			}
			fields[f] = p[pos : pos+int(n)]
			pos += int(n)
		}
		if len(fields[0]) == 0 {
			return 0, 0, 0, nil, &WireError{Msg: msgBatch, Reason: fmt.Sprintf("seq %d: empty name", i)}
		}
		db.Add(&seq.Sequence{
			Name:     string(fields[0]),
			Desc:     string(fields[1]),
			Residues: append([]byte(nil), fields[2]...),
		})
	}
	if pos != len(p) {
		return 0, 0, 0, nil, &WireError{Msg: msgBatch, Reason: fmt.Sprintf("%d trailing bytes", len(p)-pos)}
	}
	return seqNo, epoch, offset, db, nil
}

func encodeResultMsg(seqNo, epoch uint64, payload []byte) []byte {
	body := make([]byte, 0, 1+16+len(payload))
	body = append(body, msgResult)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], seqNo)
	body = append(body, u64[:]...)
	binary.LittleEndian.PutUint64(u64[:], epoch)
	body = append(body, u64[:]...)
	return append(body, payload...)
}

func parseResultMsg(p []byte) (seqNo, epoch uint64, payload []byte, err error) {
	if len(p) < 16 {
		return 0, 0, nil, &WireError{Msg: msgResult, Reason: "short result body"}
	}
	return binary.LittleEndian.Uint64(p[0:8]), binary.LittleEndian.Uint64(p[8:16]), p[16:], nil
}

func encodeExecErr(seqNo, epoch uint64, msg string) []byte {
	body := make([]byte, 0, 1+16+len(msg))
	body = append(body, msgExecErr)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], seqNo)
	body = append(body, u64[:]...)
	binary.LittleEndian.PutUint64(u64[:], epoch)
	body = append(body, u64[:]...)
	return append(body, msg...)
}

func parseExecErr(p []byte) (seqNo, epoch uint64, msg string, err error) {
	if len(p) < 16 {
		return 0, 0, "", &WireError{Msg: msgExecErr, Reason: "short execErr body"}
	}
	return binary.LittleEndian.Uint64(p[0:8]), binary.LittleEndian.Uint64(p[8:16]), string(p[16:]), nil
}

func encodePingPong(typ byte, nonce uint64) []byte {
	body := make([]byte, 9)
	body[0] = typ
	binary.LittleEndian.PutUint64(body[1:], nonce)
	return body
}

func parsePingPong(typ byte, p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, &WireError{Msg: typ, Reason: "ping/pong body is not 8 bytes"}
	}
	return binary.LittleEndian.Uint64(p), nil
}
