//go:build unix

package cluster

import (
	"context"
	"fmt"
	"os"
	"syscall"
	"time"
)

// AcquireFileLeadership returns an AcquireLeadership backed by an
// exclusive flock(2) on path (conventionally "<journal>.lock"). The
// lock is advisory and process-scoped: the kernel drops it when the
// holder's descriptor closes — including when the holder is SIGKILLed —
// so a standby polling it observes primary death with no lease clock.
// poll <= 0 uses DefaultLeadershipPoll.
func AcquireFileLeadership(path string, poll time.Duration) AcquireLeadership {
	if poll <= 0 {
		poll = DefaultLeadershipPoll
	}
	return func(ctx context.Context) (func(), error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("cluster: leadership lock %s: %w", path, err)
		}
		for {
			err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
			if err == nil {
				return func() { f.Close() }, nil
			}
			if err != syscall.EWOULDBLOCK && err != syscall.EAGAIN {
				f.Close()
				return nil, fmt.Errorf("cluster: leadership lock %s: %w", path, err)
			}
			select {
			case <-ctx.Done():
				f.Close()
				return nil, ctx.Err()
			case <-time.After(poll):
			}
		}
	}
}
