package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"hmmer3gpu/internal/seq"
)

// drainClient speaks the coordinator side of the protocol over one end
// of a net.Pipe, frame by frame, so the test controls exactly when
// batches are assigned relative to the drain signal.
type drainClient struct {
	t    *testing.T
	conn net.Conn
}

func (c *drainClient) hello(fp [32]byte, mode byte) {
	c.t.Helper()
	if err := writeFrame(c.conn, encodeHello(Handshake{Version: ProtoVersion, Fingerprint: fp, Mode: mode})); err != nil {
		c.t.Fatalf("hello: %v", err)
	}
	typ, payload, err := readFrame(c.conn)
	if err != nil {
		c.t.Fatalf("helloAck: %v", err)
	}
	if typ != msgHelloAck {
		c.t.Fatalf("hello answered with frame type %d", typ)
	}
	if _, err := parseHelloAck(payload); err != nil {
		c.t.Fatal(err)
	}
}

func (c *drainClient) sendBatch(seqNo uint64) {
	c.t.Helper()
	if err := writeFrame(c.conn, encodeBatchMsg(seqNo, 1, 0, testBatchDB(int(seqNo)))); err != nil {
		c.t.Fatalf("batch %d: %v", seqNo, err)
	}
}

// next reads one result-or-execErr frame and returns its batch seqNo
// and the exec error text ("" for a successful result).
func (c *drainClient) next() (uint64, string) {
	c.t.Helper()
	typ, payload, err := readFrame(c.conn)
	if err != nil {
		c.t.Fatalf("read: %v", err)
	}
	switch typ {
	case msgResult:
		seqNo, _, _, err := parseResultMsg(payload)
		if err != nil {
			c.t.Fatal(err)
		}
		return seqNo, ""
	case msgExecErr:
		seqNo, _, msg, err := parseExecErr(payload)
		if err != nil {
			c.t.Fatal(err)
		}
		return seqNo, msg
	default:
		c.t.Fatalf("unexpected frame type %d", typ)
		return 0, ""
	}
}

// A drained worker finishes the batch it is computing, answers batches
// queued behind the busy slot (or assigned after the signal) with
// drainingMsg so the coordinator requeues them elsewhere, keeps
// answering pings throughout, and still exits cleanly on goodbye.
func TestWorkerServerDrainRefusesNewFinishesInFlight(t *testing.T) {
	const mode = 7
	started := make(chan uint64, 8)
	release := make(chan struct{})
	drain := make(chan struct{})
	ws := &WorkerServer{
		Name:        "drainer",
		Capacity:    1,
		Fingerprint: testFP,
		Mode:        mode,
		Drain:       drain,
		Exec: func(ctx context.Context, seqNo uint64, db *seq.Database) ([]byte, error) {
			started <- seqNo
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return execPayload(seqNo, db), nil
		},
	}

	c1, c2 := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ws.ServeConn(context.Background(), c2) }()
	cl := &drainClient{t: t, conn: c1}
	cl.hello(testFP, mode)

	// Batch 0 occupies the only slot; batch 1 queues behind it.
	cl.sendBatch(0)
	select {
	case got := <-started:
		if got != 0 {
			t.Fatalf("batch %d started, want 0", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch 0 never started")
	}
	cl.sendBatch(1)

	// Drain. The queued batch 1 must come back refused; the in-flight
	// batch 0 keeps computing.
	close(drain)
	seqNo, msg := cl.next()
	if seqNo != 1 || msg != drainingMsg {
		t.Fatalf("after drain got (%d, %q), want (1, %q)", seqNo, msg, drainingMsg)
	}

	// A batch assigned after the signal is refused too.
	cl.sendBatch(2)
	if seqNo, msg := cl.next(); seqNo != 2 || msg != drainingMsg {
		t.Fatalf("post-drain batch got (%d, %q), want (2, %q)", seqNo, msg, drainingMsg)
	}

	// The read loop still answers pings mid-drain.
	if err := writeFrame(c1, encodePingPong(msgPing, 99)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(c1)
	if err != nil || typ != msgPong {
		t.Fatalf("ping during drain: type %d, err %v", typ, err)
	}
	if nonce, _ := parsePingPong(typ, payload); nonce != 99 {
		t.Fatalf("pong nonce %d, want 99", nonce)
	}

	// Release the in-flight batch: its real result is still written.
	close(release)
	seqNo, msg = cl.next()
	if seqNo != 0 || msg != "" {
		t.Fatalf("in-flight batch got (%d, %q), want (0, clean result)", seqNo, msg)
	}

	if err := writeFrame(c1, frameBodyGoodbye()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeConn after drain+goodbye: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn did not return after goodbye")
	}
}

// Serve with a closed Drain channel stops accepting new coordinator
// connections and returns once existing ones end.
func TestWorkerServerServeStopsAcceptingOnDrain(t *testing.T) {
	drain := make(chan struct{})
	ws := &WorkerServer{
		Name:        "drainer",
		Capacity:    1,
		Fingerprint: testFP,
		Mode:        0,
		Drain:       drain,
		Exec:        testExec,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ws.Serve(context.Background(), ln) }()

	close(drain)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain with no connections")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}
