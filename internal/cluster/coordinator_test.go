package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/seq"
)

var testFP = func() [32]byte {
	var fp [32]byte
	for i := range fp {
		fp[i] = byte(i * 3)
	}
	return fp
}()

// execPayload is the deterministic stand-in for a real batch search:
// any executor (remote worker or degraded local path) produces the
// same bytes for the same batch, so commits can be compared across
// clean and faulted runs.
func execPayload(seqNo uint64, db *seq.Database) []byte {
	sum := 0
	for _, s := range db.Seqs {
		for _, r := range s.Residues {
			sum += int(r)
		}
	}
	return []byte(fmt.Sprintf("%d:%d:%d:%d", seqNo, db.NumSeqs(), db.TotalResidues(), sum))
}

func testExec(ctx context.Context, seqNo uint64, db *seq.Database) ([]byte, error) {
	return execPayload(seqNo, db), nil
}

// pipeWorkers returns n in-process workers, each a WorkerServer served
// over one end of a net.Pipe per dial — the same wire code path the
// TCP transport uses.
func pipeWorkers(n int, mode byte, exec Exec) []WorkerSpec {
	specs := make([]WorkerSpec, n)
	for i := 0; i < n; i++ {
		ws := &WorkerServer{
			Name:        fmt.Sprintf("w%d", i),
			Capacity:    1,
			Fingerprint: testFP,
			Mode:        mode,
			Exec:        exec,
		}
		specs[i] = WorkerSpec{
			Name: ws.Name,
			Dial: func(ctx context.Context) (net.Conn, error) {
				c1, c2 := net.Pipe()
				go ws.ServeConn(context.Background(), c2)
				return c1, nil
			},
		}
	}
	return specs
}

// commitLog is the test commit callback: it claims the merge token,
// stores the payload, and fails loudly on any double merge — the
// exactly-once property every test rides on.
type commitLog struct {
	mu  sync.Mutex
	got map[int][]byte
}

func newCommitLog() *commitLog { return &commitLog{got: make(map[int][]byte)} }

func (cl *commitLog) fn(b Batch, payload []byte) (bool, error) {
	if !b.Commit() {
		return false, nil
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if _, ok := cl.got[b.Seq]; ok {
		return true, fmt.Errorf("batch %d merged twice", b.Seq)
	}
	cl.got[b.Seq] = append([]byte(nil), payload...)
	return true, nil
}

func (cl *commitLog) snapshot() map[int][]byte {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make(map[int][]byte, len(cl.got))
	for k, v := range cl.got {
		out[k] = v
	}
	return out
}

func produceN(n int) func(submit func(b Batch) error) error {
	return func(submit func(b Batch) error) error {
		off := 0
		for i := 0; i < n; i++ {
			db := testBatchDB(i)
			if err := submit(Batch{Seq: i, Offset: off, DB: db}); err != nil {
				return err
			}
			off += db.NumSeqs()
		}
		return nil
	}
}

// wantExact checks that exactly batches 0..n-1 committed, each with
// the payload a clean single executor would produce.
func wantExact(t *testing.T, cl *commitLog, n int) {
	t.Helper()
	got := cl.snapshot()
	if len(got) != n {
		t.Fatalf("committed %d batches, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		want := execPayload(uint64(i), testBatchDB(i))
		if string(got[i]) != string(want) {
			t.Fatalf("batch %d payload = %q, want %q", i, got[i], want)
		}
	}
}

func TestCleanShardedRun(t *testing.T) {
	cl := newCommitLog()
	c := &Coordinator{Cfg: Config{
		Workers:     pipeWorkers(3, 1, testExec),
		Fingerprint: testFP,
		Mode:        1,
	}}
	rep, err := c.Run(context.Background(), produceN(8), cl.fn)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantExact(t, cl, 8)
	if rep.Batches != 8 || rep.Requeues != 0 || rep.Quarantines != 0 || rep.Degraded {
		t.Fatalf("unexpected fault activity on clean run: %s", rep)
	}
	total := 0
	for _, w := range rep.Workers {
		total += w.Batches
	}
	if total != 8 {
		t.Fatalf("worker batch totals = %d, want 8", total)
	}
}

func TestTCPShardedRun(t *testing.T) {
	var specs []WorkerSpec
	for i := 0; i < 2; i++ {
		ws := &WorkerServer{
			Name:        fmt.Sprintf("tcp%d", i),
			Capacity:    2,
			Fingerprint: testFP,
			Mode:        0,
			Exec:        testExec,
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go ws.Serve(ctx, ln)
		addr := ln.Addr().String()
		specs = append(specs, WorkerSpec{
			Name: ws.Name,
			Dial: func(ctx context.Context) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "tcp", addr)
			},
		})
	}
	cl := newCommitLog()
	c := &Coordinator{Cfg: Config{Workers: specs, Fingerprint: testFP, Mode: 0}}
	rep, err := c.Run(context.Background(), produceN(6), cl.fn)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantExact(t, cl, 6)
	if rep.Faulted() {
		t.Fatalf("clean TCP run reported faults: %s", rep)
	}
}

// delayDial postpones a worker's first connection so a sibling worker
// deterministically claims the stream's early batches.
func delayDial(spec WorkerSpec, d time.Duration) WorkerSpec {
	dial := spec.Dial
	spec.Dial = func(ctx context.Context) (net.Conn, error) {
		time.Sleep(d)
		return dial(ctx)
	}
	return spec
}

func TestWorkerKillRequeuesExactlyOnce(t *testing.T) {
	inject, err := ParseFaults("0:kill=0,dead=1", 1)
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	cl := newCommitLog()
	workers := pipeWorkers(2, 0, testExec)
	workers[1] = delayDial(workers[1], 100*time.Millisecond)
	c := &Coordinator{Cfg: Config{
		Workers:     workers,
		Fingerprint: testFP,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
		Inject:      inject,
	}}
	rep, err := c.Run(context.Background(), produceN(4), cl.fn)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantExact(t, cl, 4)
	if rep.Requeues != 1 {
		t.Fatalf("Requeues = %d, want exactly 1 (the killed batch)", rep.Requeues)
	}
	if !rep.Workers[0].Quarantined {
		t.Fatalf("worker 0 not quarantined after kill + refused reconnects: %s", rep)
	}
	if rep.Workers[1].Batches != 4 {
		t.Fatalf("worker 1 completed %d batches, want all 4", rep.Workers[1].Batches)
	}
	if rep.ConnectFailures == 0 {
		t.Fatalf("expected refused reconnects to be counted: %s", rep)
	}
}

func TestTornFrameDiscardedAndRequeuedOnce(t *testing.T) {
	inject, err := ParseFaults("0:torn=0,dead=1", 1)
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	cl := newCommitLog()
	workers := pipeWorkers(2, 0, testExec)
	workers[1] = delayDial(workers[1], 100*time.Millisecond)
	c := &Coordinator{Cfg: Config{
		Workers:     workers,
		Fingerprint: testFP,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
		Inject:      inject,
	}}
	rep, err := c.Run(context.Background(), produceN(4), cl.fn)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantExact(t, cl, 4)
	if rep.Requeues != 1 {
		t.Fatalf("Requeues = %d, want exactly 1 (the torn batch)", rep.Requeues)
	}
	sched := inject.Schedule()
	found := false
	for _, s := range sched {
		if strings.Contains(s, "torn-frame") {
			found = true
		}
	}
	if !found {
		t.Fatalf("injector schedule %v missing torn-frame decision", sched)
	}
}

// fenceStub is a hand-rolled worker that withholds its first reply
// until the batch has been reclaimed on deadline, then sends the stale
// result — which must be fenced — followed by the live one.
func fenceStub(conn net.Conn) {
	defer conn.Close()
	if typ, _, err := readFrame(conn); err != nil || typ != msgHello {
		return
	}
	writeFrame(conn, encodeHelloAck(HelloAck{Version: ProtoVersion, Capacity: 1, Name: "stub"}))
	_, p, err := readFrame(conn)
	if err != nil {
		return
	}
	seq0, e0, _, db0, err := parseBatchMsg(p)
	if err != nil {
		return
	}
	// Withhold the reply; the coordinator's deadline reclaims the batch
	// and reassigns it (same session — it is the only worker).
	_, p, err = readFrame(conn)
	if err != nil {
		return
	}
	seq1, e1, _, db1, err := parseBatchMsg(p)
	if err != nil {
		return
	}
	// Late result under the stale epoch: must be fenced, never merged.
	writeFrame(conn, encodeResultMsg(seq0, e0, execPayload(seq0, db0)))
	// Live result under the current epoch: commits.
	writeFrame(conn, encodeResultMsg(seq1, e1, execPayload(seq1, db1)))
	for {
		if _, _, err := readFrame(conn); err != nil {
			return
		}
	}
}

func TestLateResultAfterDeadlineIsFenced(t *testing.T) {
	cl := newCommitLog()
	c := &Coordinator{Cfg: Config{
		Workers: []WorkerSpec{{
			Name: "stub",
			Dial: func(ctx context.Context) (net.Conn, error) {
				c1, c2 := net.Pipe()
				go fenceStub(c2)
				return c1, nil
			},
		}},
		Fingerprint:     testFP,
		HeartbeatEvery:  time.Hour, // keep pings out of the stub's frame stream
		BatchDeadline:   50 * time.Millisecond,
		QuarantineAfter: -1, // the deadline strike must not quarantine the only worker
	}}
	rep, err := c.Run(context.Background(), produceN(1), cl.fn)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantExact(t, cl, 1)
	if rep.Deadlines != 1 || rep.Requeues != 1 {
		t.Fatalf("Deadlines = %d, Requeues = %d, want 1/1: %s", rep.Deadlines, rep.Requeues, rep)
	}
	if rep.FencedResults != 1 {
		t.Fatalf("FencedResults = %d, want 1 (the stale-epoch reply): %s", rep.FencedResults, rep)
	}
}

// ackStub replies to its batch and then drops dead before any further
// traffic — the kill-after-commit-before-ack shape: the commit landed,
// so the batch must NOT be requeued when the session death is noticed.
func ackStub(conn net.Conn) {
	defer conn.Close()
	if typ, _, err := readFrame(conn); err != nil || typ != msgHello {
		return
	}
	writeFrame(conn, encodeHelloAck(HelloAck{Version: ProtoVersion, Capacity: 1, Name: "ack-stub"}))
	_, p, err := readFrame(conn)
	if err != nil {
		return
	}
	seqNo, epoch, _, db, err := parseBatchMsg(p)
	if err != nil {
		return
	}
	writeFrame(conn, encodeResultMsg(seqNo, epoch, execPayload(seqNo, db)))
	// Die immediately: the deferred Close severs the connection.
}

func TestKillAfterCommitBeforeAckDoesNotRequeue(t *testing.T) {
	cl := newCommitLog()
	c := &Coordinator{Cfg: Config{
		Workers: []WorkerSpec{{
			Name: "ack-stub",
			Dial: func(ctx context.Context) (net.Conn, error) {
				c1, c2 := net.Pipe()
				go ackStub(c2)
				return c1, nil
			},
		}},
		Fingerprint:    testFP,
		HeartbeatEvery: time.Hour,
		BackoffBase:    time.Millisecond,
		BackoffCap:     2 * time.Millisecond,
	}}
	rep, err := c.Run(context.Background(), produceN(1), cl.fn)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantExact(t, cl, 1)
	if rep.Requeues != 0 {
		t.Fatalf("Requeues = %d, want 0: the batch committed before the worker died: %s", rep.Requeues, rep)
	}
}

func TestDrainWithWorkersAttached(t *testing.T) {
	drain := make(chan struct{})
	cl := newCommitLog()
	c := &Coordinator{Cfg: Config{
		Workers:     pipeWorkers(3, 0, testExec),
		Fingerprint: testFP,
		Drain:       drain,
	}}
	produce := func(submit func(b Batch) error) error {
		if err := submit(Batch{Seq: 0, Offset: 0, DB: testBatchDB(0)}); err != nil {
			return err
		}
		close(drain)
		// Every further submission must be refused with ErrDraining.
		err := submit(Batch{Seq: 1, Offset: 100, DB: testBatchDB(1)})
		if !errors.Is(err, ErrDraining) {
			return fmt.Errorf("submit after drain: err = %v, want ErrDraining", err)
		}
		return err
	}
	rep, err := c.Run(context.Background(), produce, cl.fn)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Drained {
		t.Fatalf("report not marked drained: %s", rep)
	}
	// The already-submitted batch still landed, with workers attached.
	wantExact(t, cl, 1)
}

func TestAllWorkersLostDegradesToLocal(t *testing.T) {
	inject, err := ParseFaults("0:refuse=999", 1)
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	cl := newCommitLog()
	c := &Coordinator{Cfg: Config{
		Workers:     pipeWorkers(1, 0, testExec),
		Fingerprint: testFP,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
		Inject:      inject,
		Local: func(b Batch) (bool, error) {
			return cl.fn(b, execPayload(uint64(b.Seq), b.DB))
		},
	}}
	rep, err := c.Run(context.Background(), produceN(5), cl.fn)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantExact(t, cl, 5)
	if !rep.Degraded || rep.LocalBatches != 5 {
		t.Fatalf("Degraded = %v, LocalBatches = %d, want degraded run with all 5 local: %s",
			rep.Degraded, rep.LocalBatches, rep)
	}
	if !rep.Workers[0].Quarantined {
		t.Fatalf("unreachable worker not quarantined: %s", rep)
	}
}

func TestAllWorkersLostWithoutLocalFails(t *testing.T) {
	inject, err := ParseFaults("0:refuse=999", 1)
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	c := &Coordinator{Cfg: Config{
		Workers:     pipeWorkers(1, 0, testExec),
		Fingerprint: testFP,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
		Inject:      inject,
	}}
	_, err = c.Run(context.Background(), produceN(3), newCommitLog().fn)
	if !errors.Is(err, ErrAllWorkersLost) {
		t.Fatalf("err = %v, want ErrAllWorkersLost", err)
	}
}

func TestHandshakeRejectsMismatchedFingerprint(t *testing.T) {
	var wrongFP [32]byte
	wrongFP[0] = 0xde
	ws := &WorkerServer{Name: "skewed", Capacity: 1, Fingerprint: wrongFP, Mode: 0, Exec: testExec}
	cl := newCommitLog()
	c := &Coordinator{Cfg: Config{
		Workers: []WorkerSpec{{
			Name: "skewed",
			Dial: func(ctx context.Context) (net.Conn, error) {
				c1, c2 := net.Pipe()
				go ws.ServeConn(context.Background(), c2)
				return c1, nil
			},
		}},
		Fingerprint: testFP,
		Local: func(b Batch) (bool, error) {
			return cl.fn(b, execPayload(uint64(b.Seq), b.DB))
		},
	}}
	rep, err := c.Run(context.Background(), produceN(2), cl.fn)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantExact(t, cl, 2)
	if !rep.Degraded {
		t.Fatalf("mismatched worker should be rejected and run degraded: %s", rep)
	}
	if !strings.Contains(rep.Workers[0].LastError, "fingerprint") {
		t.Fatalf("LastError = %q, want fingerprint rejection", rep.Workers[0].LastError)
	}
}

func TestHandshakeRejectsMismatchedMode(t *testing.T) {
	ws := &WorkerServer{Name: "fastw", Capacity: 1, Fingerprint: testFP, Mode: 1, Exec: testExec}
	cl := newCommitLog()
	c := &Coordinator{Cfg: Config{
		Workers: []WorkerSpec{{
			Name: "fastw",
			Dial: func(ctx context.Context) (net.Conn, error) {
				c1, c2 := net.Pipe()
				go ws.ServeConn(context.Background(), c2)
				return c1, nil
			},
		}},
		Fingerprint: testFP,
		Mode:        0,
		Local: func(b Batch) (bool, error) {
			return cl.fn(b, execPayload(uint64(b.Seq), b.DB))
		},
	}}
	rep, err := c.Run(context.Background(), produceN(1), cl.fn)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantExact(t, cl, 1)
	if !strings.Contains(rep.Workers[0].LastError, "mode") {
		t.Fatalf("LastError = %q, want mode rejection", rep.Workers[0].LastError)
	}
}

func TestCorruptHandshakeQuarantinesWorker(t *testing.T) {
	inject, err := ParseFaults("0:hello=bad", 1)
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	cl := newCommitLog()
	c := &Coordinator{Cfg: Config{
		Workers:          pipeWorkers(1, 0, testExec),
		Fingerprint:      testFP,
		BackoffBase:      time.Millisecond,
		BackoffCap:       2 * time.Millisecond,
		HeartbeatTimeout: 100 * time.Millisecond, // bounds each corrupt-handshake wait
		Inject:           inject,
		Local: func(b Batch) (bool, error) {
			return cl.fn(b, execPayload(uint64(b.Seq), b.DB))
		},
	}}
	rep, err := c.Run(context.Background(), produceN(2), cl.fn)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantExact(t, cl, 2)
	if !rep.Workers[0].Quarantined || rep.ConnectFailures < DefaultMaxConnects {
		t.Fatalf("corrupt handshakes should exhaust connects and quarantine: %s", rep)
	}
}

// chaosRun executes one seeded chaos run and returns the injector's
// fault schedule plus the committed payloads.
func chaosRun(t *testing.T, seed int64) ([]string, map[int][]byte) {
	t.Helper()
	inject, err := ParseFaults("0:killp=0.4", seed)
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	cl := newCommitLog()
	c := &Coordinator{Cfg: Config{
		Workers:         pipeWorkers(1, 0, testExec),
		Fingerprint:     testFP,
		BackoffBase:     time.Millisecond,
		BackoffCap:      2 * time.Millisecond,
		QuarantineAfter: -1, // chaos may kill repeatedly; keep reconnecting
		Inject:          inject,
	}}
	if _, err := c.Run(context.Background(), produceN(6), cl.fn); err != nil {
		t.Fatalf("chaos Run: %v", err)
	}
	wantExact(t, cl, 6)
	return inject.Schedule(), cl.snapshot()
}

func TestChaosScheduleIsSeedDeterministic(t *testing.T) {
	sched1, got1 := chaosRun(t, 77)
	sched2, got2 := chaosRun(t, 77)
	if !reflect.DeepEqual(sched1, sched2) {
		t.Fatalf("same seed, different fault schedules:\n%v\nvs\n%v", sched1, sched2)
	}
	if !reflect.DeepEqual(got1, got2) {
		t.Fatal("same seed, different committed payloads")
	}
	if len(sched1) == 0 {
		t.Fatal("chaos run injected no faults; raise KillProb")
	}
}

func TestReportRecordEmitsStableSeries(t *testing.T) {
	rep := &Report{
		Batches:  3,
		Requeues: 2,
		Workers: []WorkerStats{
			{Name: "w0", Batches: 2},
			{Name: "w1", Batches: 1, Quarantined: true},
		},
	}
	reg := obs.NewRegistry()
	rep.Record(reg)
	for name, want := range map[string]float64{
		"hmmer_cluster_requeues_total":                    2,
		"hmmer_cluster_fenced_results_total":              0,
		"hmmer_cluster_fenced_commits_total":              0,
		"hmmer_cluster_degraded":                          0,
		`hmmer_cluster_worker_quarantined{worker="w0"}`:   0,
		`hmmer_cluster_worker_quarantined{worker="w1"}`:   1,
		`hmmer_cluster_worker_batches_total{worker="w0"}`: 2,
	} {
		got, ok := reg.Get(name)
		if !ok {
			t.Fatalf("series %s not emitted", name)
		}
		if got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestParseFaultsErrors(t *testing.T) {
	for _, spec := range []string{"nocolon", "x:kill=1", "0:kill", "0:kill=abc", "0:stall=1", "0:hello=good", "0:bogus=1"} {
		if _, err := ParseFaults(spec, 0); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
	fi, err := ParseFaults("1:kill=2,refuse=3,stall=4@250ms,hello=bad;2:torn=0,killp=0.5", 9)
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	p1, p2 := fi.plans[1], fi.plans[2]
	if p1 == nil || p1.KillAtBatch != 2 || p1.RefuseConnects != 3 || p1.StallAtBatch != 4 ||
		p1.StallFor != 250*time.Millisecond || !p1.CorruptHello {
		t.Fatalf("plan 1 = %+v", p1)
	}
	if p2 == nil || p2.TornAtBatch != 0 || p2.KillProb != 0.5 || p2.KillAtBatch != -1 {
		t.Fatalf("plan 2 = %+v", p2)
	}
}

func TestCoordinatorSIGINTStyleCancel(t *testing.T) {
	// A cancelled context aborts the run even with workers attached and
	// a producer mid-stream.
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{Cfg: Config{
		Workers:     pipeWorkers(2, 0, testExec),
		Fingerprint: testFP,
		QueueDepth:  1,
	}}
	produce := func(submit func(b Batch) error) error {
		for i := 0; ; i++ {
			if i == 2 {
				cancel()
			}
			if err := submit(Batch{Seq: i, Offset: i * 3, DB: testBatchDB(i % 4)}); err != nil {
				return err
			}
		}
	}
	_, err := c.Run(ctx, produce, newCommitLog().fn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
