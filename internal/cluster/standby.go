package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"hmmer3gpu/internal/gpu"
)

// Standby holds warm connections to the worker roster on behalf of a
// hot-standby coordinator (DESIGN §2j). Each connection completes a
// standby handshake (Role=RoleStandby — the worker acks it but will
// never be assigned batches over it) and is then kept alive with
// pings, so a takeover skips the dial + TCP + handshake latency: the
// promoted coordinator sends a fresh active hello down the already-
// open connection and starts assigning.
//
// Lifecycle: NewStandby → Start (maintainers run until Promote or
// Close) → Promote (stops the maintainers, returns a roster whose
// first dial per worker hands out the warm connection) → the normal
// Coordinator.Run with the promoted roster. Promote may only be
// called once.
type StandbyConfig struct {
	// Workers is the roster to hold warm; Dial must return a fresh
	// connection (same specs the primary uses).
	Workers []WorkerSpec
	// Fingerprint and Mode are carried in the standby handshake; a
	// mismatched worker is nacked exactly as at an active connect.
	Fingerprint [32]byte
	Mode        byte
	// PingEvery is the keepalive cadence (default
	// DefaultHeartbeatEvery). Each ping awaits its pong with a
	// deadline of 4x the cadence; a silent worker's connection is torn
	// down and redialled with capped backoff.
	PingEvery time.Duration
	// BackoffBase and BackoffCap pace redials (cluster defaults when
	// zero).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Clock substitutes a fake time source for backoff pacing in
	// tests; nil means the wall clock. (Ping read deadlines always use
	// wall time — net.Conn deadlines cannot run on a fake clock.)
	Clock gpu.Clock
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c *StandbyConfig) pingEvery() time.Duration {
	if c.PingEvery > 0 {
		return c.PingEvery
	}
	return DefaultHeartbeatEvery
}

func (c *StandbyConfig) clock() gpu.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return gpu.RealClock()
}

func (c *StandbyConfig) backoff(try int) time.Duration {
	cfg := Config{BackoffBase: c.BackoffBase, BackoffCap: c.BackoffCap}
	return cfg.backoff(try)
}

func (c *StandbyConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Standby maintains the warm connections. Create with NewStandby.
type Standby struct {
	cfg StandbyConfig

	mu       sync.Mutex
	conns    []net.Conn // warm connection per worker (nil: down)
	promoted bool
	closed   bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewStandby returns an idle Standby for the roster.
func NewStandby(cfg StandbyConfig) *Standby {
	return &Standby{
		cfg:   cfg,
		conns: make([]net.Conn, len(cfg.Workers)),
		stop:  make(chan struct{}),
	}
}

// Start launches one connection maintainer per worker. The
// maintainers run until Promote or Close (or ctx cancellation).
func (s *Standby) Start(ctx context.Context) {
	for i := range s.cfg.Workers {
		s.wg.Add(1)
		go s.maintain(ctx, i)
	}
}

// Warm returns how many workers currently hold a live standby
// connection.
func (s *Standby) Warm() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.conns {
		if c != nil {
			n++
		}
	}
	return n
}

// maintain owns worker i's warm connection: dial + standby hello, then
// ping/pong keepalive; on any failure, tear down and redial with
// capped backoff. On stop, the connection is left open and untouched —
// Promote hands it to the coordinator.
func (s *Standby) maintain(ctx context.Context, i int) {
	defer s.wg.Done()
	spec := s.cfg.Workers[i]
	clock := s.cfg.clock()
	fails := 0
	nonce := uint64(0)
	for {
		select {
		case <-s.stop:
			return
		case <-ctx.Done():
			return
		default:
		}

		s.mu.Lock()
		conn := s.conns[i]
		s.mu.Unlock()

		if conn == nil {
			c, err := s.connect(ctx, spec)
			if err != nil {
				fails++
				s.cfg.logf("cluster: standby: worker %s unreachable: %v", spec.Name, err)
				select {
				case <-clock.After(s.cfg.backoff(fails)):
				case <-s.stop:
					return
				case <-ctx.Done():
					return
				}
				continue
			}
			fails = 0
			s.cfg.logf("cluster: standby: worker %s connection warm", spec.Name)
			s.mu.Lock()
			if s.promoted || s.closed {
				s.mu.Unlock()
				c.Close()
				return
			}
			s.conns[i] = c
			conn = c
			s.mu.Unlock()
		}

		// One keepalive round trip. The pong read runs under a wall-
		// clock deadline so a dead worker cannot wedge the maintainer
		// (and so Promote's stop is honoured within a bounded wait).
		nonce++
		ok := func() bool {
			if err := writeFrame(conn, encodePingPong(msgPing, nonce)); err != nil {
				return false
			}
			conn.SetReadDeadline(time.Now().Add(4 * s.cfg.pingEvery()))
			defer conn.SetReadDeadline(time.Time{})
			typ, payload, err := readFrame(conn)
			if err != nil || typ != msgPong {
				return false
			}
			got, err := parsePingPong(typ, payload)
			return err == nil && got == nonce
		}()
		if !ok {
			s.cfg.logf("cluster: standby: worker %s connection lost, redialling", spec.Name)
			s.mu.Lock()
			s.conns[i] = nil
			s.mu.Unlock()
			conn.Close()
			continue
		}

		select {
		case <-clock.After(s.cfg.pingEvery()):
		case <-s.stop:
			return
		case <-ctx.Done():
			return
		}
	}
}

// connect dials worker i and completes the standby handshake.
func (s *Standby) connect(ctx context.Context, spec WorkerSpec) (net.Conn, error) {
	conn, err := spec.Dial(ctx)
	if err != nil {
		return nil, err
	}
	hello := Handshake{Version: ProtoVersion, Fingerprint: s.cfg.Fingerprint,
		Mode: s.cfg.Mode, Role: RoleStandby}
	if err := writeFrame(conn, encodeHello(hello)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: standby hello to %s: %w", spec.Name, err)
	}
	conn.SetReadDeadline(time.Now().Add(4 * s.cfg.pingEvery()))
	typ, payload, err := readFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: standby handshake with %s: %w", spec.Name, err)
	}
	switch typ {
	case msgHelloAck:
		if _, err := parseHelloAck(payload); err != nil {
			conn.Close()
			return nil, err
		}
		return conn, nil
	case msgHelloNack:
		reason, perr := parseHelloNack(payload)
		conn.Close()
		if perr != nil {
			return nil, perr
		}
		return nil, &HandshakeError{Worker: spec.Name, Reason: reason}
	default:
		conn.Close()
		return nil, &WireError{Msg: typ, Reason: "unexpected standby handshake reply"}
	}
}

// Promote stops the maintainers and returns the roster for the
// takeover coordinator: each spec's first Dial hands out the warm
// connection (read deadline cleared; a leftover pong from the last
// keepalive may sit in its buffer — the coordinator handshake skips
// pongs); later Dials fall through to a real redial. Workers whose
// connection is down at promotion simply redial — takeover does not
// require a full roster.
func (s *Standby) Promote() []WorkerSpec {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.promoted = true
	specs := make([]WorkerSpec, len(s.cfg.Workers))
	for i := range s.cfg.Workers {
		spec := s.cfg.Workers[i]
		warm := s.conns[i]
		s.conns[i] = nil
		if warm != nil {
			warm.SetReadDeadline(time.Time{})
		}
		var once sync.Once
		specs[i] = WorkerSpec{
			Name: spec.Name,
			Dial: func(ctx context.Context) (net.Conn, error) {
				var c net.Conn
				used := false
				once.Do(func() {
					if warm != nil {
						c, used = warm, true
					}
				})
				if used {
					return c, nil
				}
				return spec.Dial(ctx)
			},
		}
	}
	return specs
}

// Close stops the maintainers and closes every warm connection. A
// no-op after Promote (the coordinator owns the connections then).
func (s *Standby) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.promoted {
		return
	}
	for i, c := range s.conns {
		if c != nil {
			c.Close()
			s.conns[i] = nil
		}
	}
}
