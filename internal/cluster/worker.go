package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"hmmer3gpu/internal/seq"
)

// Exec computes one batch on the worker and returns the opaque result
// payload shipped back to the coordinator (the same encoding the
// coordinator journals and merges — pipeline.EncodeResultPayload).
type Exec func(ctx context.Context, seqNo uint64, db *seq.Database) ([]byte, error)

// WorkerServer serves the worker side of the cluster protocol. One
// server handles any number of coordinator connections (in practice
// one); each connection validates the handshake, then executes up to
// Capacity batches concurrently, writing results back as they finish.
type WorkerServer struct {
	// Name identifies the worker in handshakes and coordinator reports.
	Name string
	// Capacity is the number of batches the worker accepts in flight
	// (its device count). Zero means 1.
	Capacity int
	// Fingerprint and Mode must match the coordinator's hello, or the
	// connection is nacked — a worker launched against a different
	// model, thresholds, or simulator cost model must never compute a
	// batch.
	Fingerprint [32]byte
	Mode        byte
	// Exec computes one batch. Required.
	Exec Exec
	// Drain, when non-nil and closed, puts the server into graceful
	// drain: in-flight batches finish and their results are written
	// back, newly assigned batches are answered with an exec error
	// ("worker draining") so the coordinator requeues them elsewhere,
	// and Serve stops accepting new coordinator connections. Contrast
	// with cancelling Serve's context, which aborts in-flight work.
	Drain <-chan struct{}
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)

	// maxEpoch is the highest active-coordinator epoch this server has
	// ever acked, across every connection in its lifetime. It is the
	// worker's half of the failover fence: an active hello with a lower
	// epoch is nacked (a stale primary reconnecting after a takeover),
	// and a batch frame arriving on a session whose acked epoch has
	// since been superseded is answered with a stale-epoch exec error,
	// never executed.
	maxEpoch atomic.Uint64

	// fenced counts batch assignments refused for a stale epoch.
	fenced atomic.Int64
}

// MaxEpoch returns the highest active-coordinator epoch the server has
// acked (0 before any active coordinator connects).
func (ws *WorkerServer) MaxEpoch() uint64 { return ws.maxEpoch.Load() }

// FencedBatches returns the number of batch assignments this server
// refused because their session's epoch had been superseded.
func (ws *WorkerServer) FencedBatches() int64 { return ws.fenced.Load() }

// drainingMsg is the exec-error text a draining worker answers new
// batch assignments with; the coordinator requeues those batches.
const drainingMsg = "worker draining"

// staleEpochMsg prefixes the exec-error text a worker answers batch
// assignments from a superseded coordinator epoch with. The batch is
// never executed: the stale primary burns its retry budget and fails,
// while the new primary (whose hello raised the fence) proceeds.
const staleEpochMsg = "stale coordinator epoch"

// draining reports whether Drain is closed (false when unset).
func (ws *WorkerServer) draining() bool {
	select {
	case <-ws.Drain: // never fires while Drain is nil
		return true
	default:
		return false
	}
}

func (ws *WorkerServer) logf(format string, args ...any) {
	if ws.Logf != nil {
		ws.Logf(format, args...)
	}
}

// Serve accepts coordinator connections on ln until ctx is cancelled
// or the listener is closed, serving each connection on its own
// goroutine. It returns nil on a clean shutdown.
func (ws *WorkerServer) Serve(ctx context.Context, ln net.Listener) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-ctx.Done():
		case <-ws.Drain:
			// Draining: no new coordinators; existing connections keep
			// serving (refusing new batches) until they end.
		}
		ln.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ws.ServeConn(ctx, conn); err != nil {
				ws.logf("worker %s: connection ended: %v", ws.Name, err)
			}
		}()
	}
}

// ServeConn serves one coordinator connection to completion: handshake,
// then the batch/result loop until the coordinator says goodbye, the
// connection drops, or ctx is cancelled. In-process workers call this
// directly on one end of a net.Pipe, so the pipe and TCP paths run the
// same code.
func (ws *WorkerServer) ServeConn(ctx context.Context, conn net.Conn) error {
	defer conn.Close()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		// A cancelled context must unblock reads on the raw conn.
		<-ctx.Done()
		conn.Close()
	}()

	typ, payload, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("cluster: worker %s: reading hello: %w", ws.Name, err)
	}
	if typ != msgHello {
		return &HandshakeError{Worker: ws.Name, Reason: fmt.Sprintf("first frame is type %d, want hello", typ)}
	}
	hello, err := parseHello(payload)
	if err != nil {
		return err
	}
	if reason := ws.vetHello(hello); reason != "" {
		writeFrame(conn, encodeHelloNack(reason))
		return &HandshakeError{Worker: ws.Name, Reason: reason}
	}
	capacity := ws.Capacity
	if capacity < 1 {
		capacity = 1
	}
	var wmu sync.Mutex // serialises result/pong writes from exec goroutines
	write := func(body []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, body)
	}
	if err := write(encodeHelloAck(HelloAck{Version: ProtoVersion, Capacity: capacity, Name: ws.Name})); err != nil {
		return fmt.Errorf("cluster: worker %s: writing helloAck: %w", ws.Name, err)
	}
	// The session's role and epoch are only touched from this read
	// loop (promotion is a mid-session hello, read here too), so plain
	// variables suffice.
	sessRole, sessEpoch := hello.Role, hello.Epoch
	ws.logf("worker %s: %s coordinator connected (capacity %d, epoch %d)",
		ws.Name, roleName(sessRole), capacity, sessEpoch)

	var execs sync.WaitGroup
	defer execs.Wait() // cancel() above stops them; wait so conn.Close is last
	slots := make(chan struct{}, capacity)
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("cluster: worker %s: read: %w", ws.Name, err)
		}
		switch typ {
		case msgPing:
			nonce, err := parsePingPong(typ, payload)
			if err != nil {
				return err
			}
			if err := write(encodePingPong(msgPong, nonce)); err != nil {
				return err
			}
		case msgHello:
			// A mid-session hello: the peer is a standby promoting itself
			// to active after a failover (or an active coordinator
			// re-asserting itself). Re-vet exactly like the opening hello
			// — a promotion whose epoch has already been superseded is
			// nacked and the session torn down.
			h, err := parseHello(payload)
			if err != nil {
				return err
			}
			if reason := ws.vetHello(h); reason != "" {
				write(encodeHelloNack(reason))
				return &HandshakeError{Worker: ws.Name, Reason: reason}
			}
			sessRole, sessEpoch = h.Role, h.Epoch
			if err := write(encodeHelloAck(HelloAck{Version: ProtoVersion, Capacity: capacity, Name: ws.Name})); err != nil {
				return fmt.Errorf("cluster: worker %s: writing helloAck: %w", ws.Name, err)
			}
			ws.logf("worker %s: session re-helloed as %s (epoch %d)", ws.Name, roleName(sessRole), sessEpoch)
		case msgBatch:
			seqNo, epoch, _, db, err := parseBatchMsg(payload)
			if err != nil {
				return err
			}
			if sessRole != RoleActive {
				// A standby session must never assign work.
				if err := write(encodeExecErr(seqNo, epoch, "standby session may not assign batches")); err != nil {
					return err
				}
				break
			}
			if max := ws.maxEpoch.Load(); sessEpoch < max {
				// The fence: a batch from a session whose acked epoch has
				// been superseded by a newer active coordinator is refused,
				// never executed — the old primary cannot double-commit
				// work the new primary owns.
				ws.fenced.Add(1)
				ws.logf("worker %s: fenced batch %d from stale epoch %d (worker at %d)", ws.Name, seqNo, sessEpoch, max)
				if err := write(encodeExecErr(seqNo, epoch, fmt.Sprintf("%s: session epoch %d, worker fenced at %d", staleEpochMsg, sessEpoch, max))); err != nil {
					return err
				}
				break
			}
			// The slot wait lives in the goroutine so the read loop keeps
			// answering pings (and drain refusals) while all slots are
			// busy; the coordinator's capacity window bounds how many
			// assignments can pile up here.
			execs.Add(1)
			go func() {
				defer execs.Done()
				select {
				case slots <- struct{}{}:
				case <-ws.Drain:
					write(encodeExecErr(seqNo, epoch, drainingMsg))
					return
				case <-ctx.Done():
					return
				}
				defer func() { <-slots }()
				if ws.draining() {
					write(encodeExecErr(seqNo, epoch, drainingMsg))
					return
				}
				res, err := ws.Exec(ctx, seqNo, db)
				if ctx.Err() != nil {
					return
				}
				if err != nil {
					write(encodeExecErr(seqNo, epoch, err.Error()))
					return
				}
				write(encodeResultMsg(seqNo, epoch, res))
			}()
		case msgGoodbye:
			ws.logf("worker %s: coordinator said goodbye", ws.Name)
			execs.Wait()
			return nil
		default:
			return &WireError{Msg: typ, Reason: "unexpected message from coordinator"}
		}
	}
}

// vetHello validates a hello (opening or mid-session). A clean active
// hello also raises the server-wide epoch fence as a side effect —
// atomically with the staleness check, so two racing active hellos
// resolve to one winner and one nack-or-equal.
func (ws *WorkerServer) vetHello(h Handshake) string {
	if h.Version != ProtoVersion {
		return fmt.Sprintf("protocol version %d, worker speaks %d", h.Version, ProtoVersion)
	}
	if h.Fingerprint != ws.Fingerprint {
		return fmt.Sprintf("config fingerprint %x does not match worker's %x",
			h.Fingerprint[:6], ws.Fingerprint[:6])
	}
	if h.Mode != ws.Mode {
		return fmt.Sprintf("simulator mode %d does not match worker's %d", h.Mode, ws.Mode)
	}
	if h.Role != RoleActive && h.Role != RoleStandby {
		return fmt.Sprintf("unknown coordinator role %d", h.Role)
	}
	if h.Role == RoleActive {
		for {
			max := ws.maxEpoch.Load()
			if h.Epoch < max {
				return fmt.Sprintf("%s %d: this worker has acked epoch %d", staleEpochMsg, h.Epoch, max)
			}
			if ws.maxEpoch.CompareAndSwap(max, h.Epoch) {
				break
			}
		}
	}
	return ""
}

func roleName(r byte) string {
	if r == RoleStandby {
		return "standby"
	}
	return "active"
}
