package cluster

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"hmmer3gpu/internal/seq"
)

func testBatchDB(i int) *seq.Database {
	db := seq.NewDatabase("wire-test")
	for s := 0; s < 3; s++ {
		res := make([]byte, 5+2*s+i)
		for k := range res {
			res[k] = byte((i + s + k) % 20)
		}
		db.Add(&seq.Sequence{
			Name:     string(rune('a'+i)) + "seq",
			Desc:     "batch desc",
			Residues: res,
		})
	}
	return db
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := encodePingPong(msgPing, 42)
	if err := writeFrame(&buf, body); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if typ != msgPing {
		t.Fatalf("type = %d, want ping", typ)
	}
	nonce, err := parsePingPong(typ, payload)
	if err != nil || nonce != 42 {
		t.Fatalf("nonce = %d, err %v", nonce, err)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	raw := frame(encodeHello(Handshake{Version: ProtoVersion, Mode: 1}))
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0xff
		_, _, err := readFrame(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
}

func TestTornFrameIsUnexpectedEOF(t *testing.T) {
	raw := frame(encodeBatchMsg(1, 2, 3, testBatchDB(0)))
	for _, cut := range []int{frameHeaderSize + 1, len(raw) / 2, len(raw) - 1} {
		_, _, err := readFrame(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want unexpected EOF", cut, err)
		}
	}
	// A cut exactly on a frame boundary is a clean EOF, not torn.
	if _, _, err := readFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: err = %v, want EOF", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Handshake{Version: ProtoVersion, Mode: 1}
	for i := range h.Fingerprint {
		h.Fingerprint[i] = byte(i * 7)
	}
	body := encodeHello(h)
	if body[0] != msgHello {
		t.Fatalf("type byte = %d", body[0])
	}
	got, err := parseHello(body[1:])
	if err != nil {
		t.Fatalf("parseHello: %v", err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
}

func TestHelloAckAndNackRoundTrip(t *testing.T) {
	a := HelloAck{Version: ProtoVersion, Capacity: 4, Name: "worker-2"}
	got, err := parseHelloAck(encodeHelloAck(a)[1:])
	if err != nil || got != a {
		t.Fatalf("ack round trip: got %+v err %v", got, err)
	}
	reason, err := parseHelloNack(encodeHelloNack("fingerprint mismatch")[1:])
	if err != nil || reason != "fingerprint mismatch" {
		t.Fatalf("nack round trip: got %q err %v", reason, err)
	}
}

func TestBatchMsgRoundTrip(t *testing.T) {
	db := testBatchDB(2)
	body := encodeBatchMsg(7, 9, 120, db)
	seqNo, epoch, offset, got, err := parseBatchMsg(body[1:])
	if err != nil {
		t.Fatalf("parseBatchMsg: %v", err)
	}
	if seqNo != 7 || epoch != 9 || offset != 120 {
		t.Fatalf("identity = (%d,%d,%d)", seqNo, epoch, offset)
	}
	if got.NumSeqs() != db.NumSeqs() || got.TotalResidues() != db.TotalResidues() {
		t.Fatalf("db shape changed: %d seqs %d residues", got.NumSeqs(), got.TotalResidues())
	}
	for i, s := range got.Seqs {
		orig := db.Seqs[i]
		if s.Name != orig.Name || s.Desc != orig.Desc || !bytes.Equal(s.Residues, orig.Residues) {
			t.Fatalf("seq %d differs after round trip", i)
		}
	}
}

func TestResultAndExecErrRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 250}
	seqNo, epoch, got, err := parseResultMsg(encodeResultMsg(3, 11, payload)[1:])
	if err != nil || seqNo != 3 || epoch != 11 || !bytes.Equal(got, payload) {
		t.Fatalf("result round trip failed: (%d,%d,%v) err %v", seqNo, epoch, got, err)
	}
	seqNo, epoch, msg, err := parseExecErr(encodeExecErr(5, 13, "device lost")[1:])
	if err != nil || seqNo != 5 || epoch != 13 || msg != "device lost" {
		t.Fatalf("execErr round trip failed: (%d,%d,%q) err %v", seqNo, epoch, msg, err)
	}
}

func TestParseBatchRejectsImplausibleCounts(t *testing.T) {
	db := testBatchDB(0)
	body := encodeBatchMsg(1, 1, 0, db)[1:]
	// Inflate the sequence count field far beyond the body size.
	body[24], body[25], body[26], body[27] = 0xff, 0xff, 0xff, 0x0f
	if _, _, _, _, err := parseBatchMsg(body); err == nil {
		t.Fatal("implausible sequence count accepted")
	}
}

func TestDecodeFrameMatchesReadFrame(t *testing.T) {
	first := frame(encodePingPong(msgPong, 8))
	second := frame(encodeHelloNack("no"))
	stream := append(append([]byte(nil), first...), second...)
	typ, payload, rest, err := decodeFrame(stream)
	if err != nil || typ != msgPong || len(payload) != 8 {
		t.Fatalf("decodeFrame first: typ %d err %v", typ, err)
	}
	typ, _, rest, err = decodeFrame(rest)
	if err != nil || typ != msgHelloNack || len(rest) != 0 {
		t.Fatalf("decodeFrame second: typ %d rest %d err %v", typ, len(rest), err)
	}
}
