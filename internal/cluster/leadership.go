package cluster

import (
	"context"
	"time"
)

// AcquireLeadership blocks until the caller holds the cluster
// leadership lease, returning a release func. The pipeline's standby
// run path parks on this between tailing the primary's journal and
// taking it over; the file-backed implementation (AcquireFileLeadership)
// keys the lease to an OS advisory lock that the kernel revokes the
// instant the holder dies, so a crashed primary frees the lease without
// any timeout tuning. Tests substitute a channel-backed implementation.
type AcquireLeadership func(ctx context.Context) (release func(), err error)

// DefaultLeadershipPoll is how often AcquireFileLeadership retries a
// contended lock.
const DefaultLeadershipPoll = 50 * time.Millisecond
