package cluster

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder and
// every message parser behind it. The parsers must never panic,
// over-allocate past the frame bound, or accept a frame whose re-encode
// disagrees with what was parsed.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(frame(encodeHello(Handshake{Version: ProtoVersion, Mode: 1})))
	f.Add(frame(encodeHelloAck(HelloAck{Version: ProtoVersion, Capacity: 2, Name: "w0"})))
	f.Add(frame(encodeHelloNack("mode mismatch")))
	f.Add(frame(encodeBatchMsg(3, 7, 64, testBatchDB(1))))
	f.Add(frame(encodeResultMsg(3, 7, []byte("payload"))))
	f.Add(frame(encodeExecErr(3, 7, "device lost")))
	f.Add(frame(encodePingPong(msgPing, 99)))
	f.Add(frame([]byte{msgGoodbye}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, _, err := decodeFrame(data)
		if err != nil {
			return
		}
		// The body parsers behind a valid frame must be total: no
		// panics, structured errors only.
		switch typ {
		case msgHello:
			if h, err := parseHello(payload); err == nil {
				if !bytes.Equal(encodeHello(h)[1:], payload) {
					t.Fatalf("hello re-encode disagrees")
				}
			}
		case msgHelloAck:
			if a, err := parseHelloAck(payload); err == nil {
				if !bytes.Equal(encodeHelloAck(a)[1:], payload) {
					t.Fatalf("helloAck re-encode disagrees")
				}
			}
		case msgHelloNack:
			if reason, err := parseHelloNack(payload); err == nil {
				if !bytes.Equal(encodeHelloNack(reason)[1:], payload) {
					t.Fatalf("helloNack re-encode disagrees")
				}
			}
		case msgBatch:
			if seqNo, epoch, offset, db, err := parseBatchMsg(payload); err == nil {
				if !bytes.Equal(encodeBatchMsg(seqNo, epoch, offset, db)[1:], payload) {
					t.Fatalf("batch re-encode disagrees")
				}
			}
		case msgResult:
			if seqNo, epoch, res, err := parseResultMsg(payload); err == nil {
				if !bytes.Equal(encodeResultMsg(seqNo, epoch, res)[1:], payload) {
					t.Fatalf("result re-encode disagrees")
				}
			}
		case msgExecErr:
			if seqNo, epoch, msg, err := parseExecErr(payload); err == nil {
				if !bytes.Equal(encodeExecErr(seqNo, epoch, msg)[1:], payload) {
					t.Fatalf("execErr re-encode disagrees")
				}
			}
		case msgPing, msgPong:
			parsePingPong(typ, payload)
		}
	})
}
