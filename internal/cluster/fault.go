package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hmmer3gpu/internal/gpu"
)

// ErrInjectedRefusal marks a dial the fault injector refused, standing
// in for a worker process that is down or unreachable.
var ErrInjectedRefusal = errors.New("cluster: injected connect refusal")

// ErrInjectedKill marks a connection the fault injector severed
// mid-session, standing in for a worker process killed under the
// coordinator.
var ErrInjectedKill = errors.New("cluster: injected worker kill")

// ErrInjectedCoordinatorKill marks a run the fault injector aborted at
// a chosen batch assignment, standing in for the coordinator process
// itself dying mid-run — the event a hot standby exists to survive.
// cmd/hmmsearch exits with status 3 on it, like an injected journal
// crash.
var ErrInjectedCoordinatorKill = errors.New("cluster: injected coordinator kill")

// FaultPlan describes the faults to inject against one worker. Batch
// ordinals count batch frames written to that worker across its whole
// lifetime (all connections), so a plan is deterministic regardless of
// how reconnects interleave. -1 disables an ordinal-triggered fault.
type FaultPlan struct {
	// RefuseConnects fails the worker's first N dials outright.
	RefuseConnects int
	// KillAtBatch severs the connection instead of writing the Nth
	// (0-based) batch frame — the batch is lost before the worker sees
	// it.
	KillAtBatch int
	// TornAtBatch writes only the front half of the Nth batch frame,
	// then severs the connection — the worker observes a torn frame.
	TornAtBatch int
	// KillProb kills the connection before each batch frame with this
	// probability, drawn from the injector's seeded stream.
	KillProb float64
	// StallAtBatch sleeps StallFor (on the injector's clock) before
	// writing the Nth batch frame, modelling a network or worker stall
	// long enough to trip heartbeat or batch deadlines.
	StallAtBatch int
	StallFor     time.Duration
	// StayDead, combined with KillAtBatch/TornAtBatch/KillProb, refuses
	// every dial after the first injected kill — the killed worker
	// process stays gone instead of modelling a restart.
	StayDead bool
	// CorruptHello flips a byte in the first handshake frame of every
	// connection, so the worker sees a checksum mismatch.
	CorruptHello bool
}

func newFaultPlan() *FaultPlan {
	return &FaultPlan{KillAtBatch: -1, TornAtBatch: -1, StallAtBatch: -1}
}

// FaultInjector drives deterministic chaos against cluster
// connections. Probabilistic draws come from a per-worker stream
// derived from one seed, and decisions key off per-worker event
// ordinals — never goroutine interleaving — so the fault schedule of a
// (seed, plans, workload) triple reproduces exactly run-to-run, which
// the chaos determinism tests pin.
type FaultInjector struct {
	seed  int64
	clock gpu.Clock

	mu    sync.Mutex
	rngs  map[int]*rand.Rand
	plans map[int]*FaultPlan
	// dials / batches count per-worker lifetime events; dead marks
	// workers whose StayDead plan has fired.
	dials   map[int]int
	batches map[int]int
	dead    map[int]bool
	logs    map[int][]string
	// assigns counts batch assignments across all workers (the
	// coordinator-kill ordinal); coordKillAt is the assignment at which
	// the coordinator "dies" (-1: never).
	assigns     int
	coordKillAt int
}

// NewFaultInjector returns an injector drawing from the given seed.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{
		seed:        seed,
		rngs:        make(map[int]*rand.Rand),
		plans:       make(map[int]*FaultPlan),
		dials:       make(map[int]int),
		batches:     make(map[int]int),
		dead:        make(map[int]bool),
		logs:        make(map[int][]string),
		clock:       gpu.RealClock(),
		coordKillAt: -1,
	}
}

// rngLocked returns worker's private seeded stream, derived from the
// injector seed so distinct workers draw independently but
// reproducibly.
func (fi *FaultInjector) rngLocked(worker int) *rand.Rand {
	r, ok := fi.rngs[worker]
	if !ok {
		r = rand.New(rand.NewSource(fi.seed ^ (int64(worker)+1)*0x5851F42D4C957F2D))
		fi.rngs[worker] = r
	}
	return r
}

// SetClock substitutes the clock used for injected stalls (tests pass
// the same fake clock the coordinator runs on).
func (fi *FaultInjector) SetClock(c gpu.Clock) { fi.clock = c }

// Plan registers a fault plan for one worker index, replacing any
// previous plan.
func (fi *FaultInjector) Plan(worker int, p *FaultPlan) {
	fi.mu.Lock()
	fi.plans[worker] = p
	fi.mu.Unlock()
}

// Schedule returns the log of every fault decision the injector has
// made ("w1 refuse-connect #0", "w0 kill batch #2", ...), grouped by
// worker, each worker's decisions in event order. Two runs with the
// same seed, plans, and workload produce the same schedule — the
// determinism chaos tests pin this.
func (fi *FaultInjector) Schedule() []string {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	workers := make([]int, 0, len(fi.logs))
	for w := range fi.logs {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	var out []string
	for _, w := range workers {
		out = append(out, fi.logs[w]...)
	}
	return out
}

func (fi *FaultInjector) record(worker int, format string, args ...any) {
	fi.logs[worker] = append(fi.logs[worker], fmt.Sprintf(format, args...))
}

// SetCoordinatorKill arms the coordinator-kill fault: the run aborts
// with ErrInjectedCoordinatorKill at the nth (0-based) batch
// assignment, counted across all workers in assignment order. -1
// disarms it.
func (fi *FaultInjector) SetCoordinatorKill(n int) {
	fi.mu.Lock()
	fi.coordKillAt = n
	fi.mu.Unlock()
}

// BeforeAssign is consulted by the coordinator once per batch
// assignment, just before the batch frame is written. A non-nil error
// (ErrInjectedCoordinatorKill) means the coordinator process "dies"
// here. Safe on a nil injector.
func (fi *FaultInjector) BeforeAssign() error {
	if fi == nil {
		return nil
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	n := fi.assigns
	fi.assigns++
	if fi.coordKillAt >= 0 && n == fi.coordKillAt {
		fi.record(-1, "coordinator kill at assignment #%d", n)
		return fmt.Errorf("%w (assignment %d)", ErrInjectedCoordinatorKill, n)
	}
	return nil
}

// AllowConnect consults the plan for one dial attempt; a non-nil error
// means the dial must fail without touching the network.
func (fi *FaultInjector) AllowConnect(worker int) error {
	if fi == nil {
		return nil
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	n := fi.dials[worker]
	fi.dials[worker]++
	if fi.dead[worker] {
		fi.record(worker, "w%d refuse-connect #%d (dead)", worker, n)
		return fmt.Errorf("%w (worker %d is dead, dial %d)", ErrInjectedRefusal, worker, n)
	}
	if p := fi.plans[worker]; p != nil && n < p.RefuseConnects {
		fi.record(worker, "w%d refuse-connect #%d", worker, n)
		return fmt.Errorf("%w (worker %d, dial %d)", ErrInjectedRefusal, worker, n)
	}
	return nil
}

// WrapConn wraps an established connection with the worker's fault
// plan. With no plan (or a nil injector) the connection is returned
// unchanged.
func (fi *FaultInjector) WrapConn(worker int, conn net.Conn) net.Conn {
	if fi == nil {
		return conn
	}
	fi.mu.Lock()
	p := fi.plans[worker]
	fi.mu.Unlock()
	if p == nil {
		return conn
	}
	return &faultConn{Conn: conn, fi: fi, worker: worker, plan: p}
}

// faultConn intercepts writes on the coordinator side of a worker
// connection. Frames are written as single contiguous buffers
// (writeFrame), so each Write carries exactly one frame and the
// message type sits at offset frameHeaderSize.
type faultConn struct {
	net.Conn
	fi     *FaultInjector
	worker int
	plan   *FaultPlan

	mu         sync.Mutex
	killed     bool
	wroteHello bool
}

func (fc *faultConn) Write(b []byte) (int, error) {
	fc.mu.Lock()
	if fc.killed {
		fc.mu.Unlock()
		return 0, ErrInjectedKill
	}
	typ := byte(0)
	if len(b) > frameHeaderSize {
		typ = b[frameHeaderSize]
	}
	if typ == msgHello && !fc.wroteHello {
		fc.wroteHello = true
		if fc.plan.CorruptHello {
			fc.fi.mu.Lock()
			fc.fi.record(fc.worker, "w%d corrupt-hello", fc.worker)
			fc.fi.mu.Unlock()
			corrupt := append([]byte(nil), b...)
			corrupt[len(corrupt)-1] ^= 0xff
			fc.mu.Unlock()
			return fc.Conn.Write(corrupt)
		}
		fc.mu.Unlock()
		return fc.Conn.Write(b)
	}
	if typ != msgBatch {
		fc.mu.Unlock()
		return fc.Conn.Write(b)
	}

	// One batch frame: consult the plan under the injector lock so the
	// ordinal stream and rng draws are globally ordered.
	fc.fi.mu.Lock()
	n := fc.fi.batches[fc.worker]
	fc.fi.batches[fc.worker]++
	kill := fc.plan.KillAtBatch == n
	torn := fc.plan.TornAtBatch == n
	stall := fc.plan.StallAtBatch == n
	if !kill && !torn && fc.plan.KillProb > 0 && fc.fi.rngLocked(fc.worker).Float64() < fc.plan.KillProb {
		kill = true
	}
	switch {
	case kill:
		fc.fi.record(fc.worker, "w%d kill batch #%d", fc.worker, n)
	case torn:
		fc.fi.record(fc.worker, "w%d torn-frame batch #%d", fc.worker, n)
	case stall:
		fc.fi.record(fc.worker, "w%d stall batch #%d for %s", fc.worker, n, fc.plan.StallFor)
	}
	if (kill || torn) && fc.plan.StayDead {
		fc.fi.dead[fc.worker] = true
	}
	clock := fc.fi.clock
	fc.fi.mu.Unlock()

	switch {
	case kill:
		fc.killed = true
		fc.mu.Unlock()
		fc.Conn.Close()
		return 0, ErrInjectedKill
	case torn:
		fc.killed = true
		fc.mu.Unlock()
		half := b[:len(b)/2]
		fc.Conn.Write(half)
		fc.Conn.Close()
		return len(half), ErrInjectedKill
	case stall:
		fc.mu.Unlock()
		<-clock.After(fc.plan.StallFor)
		return fc.Conn.Write(b)
	}
	fc.mu.Unlock()
	return fc.Conn.Write(b)
}

// ParseFaults parses a fault specification of the form
//
//	worker:fault[,fault...][;worker:fault...]
//
// with faults
//
//	refuse=N    refuse the first N dials
//	kill=N      sever the connection at batch frame N (0-based)
//	killp=P     sever before each batch frame with probability P
//	torn=N      write half of batch frame N, then sever
//	stall=N@D   delay batch frame N by duration D (e.g. 2@3s)
//	dead=1      refuse every dial after the first injected kill/torn
//	hello=bad   corrupt the first handshake frame of every connection
//
// plus one worker-less clause
//
//	kill-coordinator@N   abort the run (ErrInjectedCoordinatorKill) at
//	                     the Nth (0-based) batch assignment, counted
//	                     across all workers — the coordinator process
//	                     dies; a hot standby must take over
//
// e.g. "1:kill=1,refuse=999;2:torn=0" or "kill-coordinator@4". An
// empty spec yields no plans.
func ParseFaults(spec string, seed int64) (*FaultInjector, error) {
	fi := NewFaultInjector(seed)
	if strings.TrimSpace(spec) == "" {
		return fi, nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if at, ok := strings.CutPrefix(clause, "kill-coordinator@"); ok {
			n, err := strconv.Atoi(at)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("cluster: fault clause %q: want kill-coordinator@N", clause)
			}
			fi.SetCoordinatorKill(n)
			continue
		}
		worker, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("cluster: fault clause %q: want worker:fault[,fault...] or kill-coordinator@N", clause)
		}
		w, err := strconv.Atoi(strings.TrimSpace(worker))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("cluster: fault clause %q: bad worker index %q", clause, worker)
		}
		p := newFaultPlan()
		for _, f := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(f), "=")
			if !ok {
				return nil, fmt.Errorf("cluster: fault %q: want key=value", f)
			}
			switch key {
			case "refuse":
				p.RefuseConnects, err = strconv.Atoi(val)
			case "kill":
				p.KillAtBatch, err = strconv.Atoi(val)
			case "torn":
				p.TornAtBatch, err = strconv.Atoi(val)
			case "killp":
				p.KillProb, err = strconv.ParseFloat(val, 64)
			case "stall":
				at, dur, ok := strings.Cut(val, "@")
				if !ok {
					return nil, fmt.Errorf("cluster: fault %q: want stall=N@duration", f)
				}
				p.StallAtBatch, err = strconv.Atoi(at)
				if err == nil {
					p.StallFor, err = time.ParseDuration(dur)
				}
			case "dead":
				if val != "1" {
					return nil, fmt.Errorf("cluster: fault %q: want dead=1", f)
				}
				p.StayDead = true
			case "hello":
				if val != "bad" {
					return nil, fmt.Errorf("cluster: fault %q: want hello=bad", f)
				}
				p.CorruptHello = true
			default:
				return nil, fmt.Errorf("cluster: unknown fault %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("cluster: fault %q: %v", f, err)
			}
		}
		fi.Plan(w, p)
	}
	return fi, nil
}
