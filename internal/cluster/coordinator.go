package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/seq"
)

// ErrAllWorkersLost reports that every worker was quarantined while
// batches were still outstanding and no local executor was configured.
var ErrAllWorkersLost = errors.New("cluster: all workers lost")

// ErrDraining is the graceful-stop sentinel, shared with the
// single-node scheduler so one producer serves both paths.
var ErrDraining = gpu.ErrDraining

// Default cluster knobs (used when the corresponding Config field is
// zero).
const (
	DefaultHeartbeatEvery   = 250 * time.Millisecond
	DefaultHeartbeatTimeout = 2 * time.Second
	DefaultMaxConnects      = 3
	DefaultQuarantineAfter  = 3
	DefaultMaxRetries       = 3
	DefaultBackoffBase      = 5 * time.Millisecond
	DefaultBackoffCap       = 500 * time.Millisecond
)

// Batch is one unit of sharded work, mirroring gpu.Batch: identity in
// the stream plus the one-shot merge token that makes requeues
// exactly-once.
type Batch struct {
	// Seq is the batch ordinal in stream order.
	Seq int
	// Offset is the global database index of the batch's first
	// sequence.
	Offset int
	// DB holds the batch's sequences.
	DB *seq.Database

	commit *atomic.Bool
}

// Commit claims the batch's one-shot merge token: exactly one caller
// across every attempt at the batch — any worker, any epoch, or the
// degraded local path — gets true. A zero Batch always commits.
func (b Batch) Commit() bool {
	if b.commit == nil {
		return true
	}
	return b.commit.CompareAndSwap(false, true)
}

// WorkerSpec names one worker and knows how to reach it. Dial returns
// a fresh connection; for in-process workers it returns one end of a
// net.Pipe whose other end a WorkerServer is serving, so both
// transports run the same wire code.
type WorkerSpec struct {
	Name string
	Dial func(ctx context.Context) (net.Conn, error)
}

// Config shapes one Coordinator.
type Config struct {
	// Workers is the roster; at least one is required.
	Workers []WorkerSpec
	// Fingerprint and Mode are carried in the handshake; a worker
	// reporting a different config fingerprint or simulator cost model
	// is rejected at connect.
	Fingerprint [32]byte
	Mode        byte
	// Epoch is the coordinator's fencing epoch, carried in every
	// active hello. Workers remember the highest epoch they have acked
	// and nack (or fence batches from) anything lower, which is what
	// makes hot-standby takeover safe: the standby runs at a higher
	// epoch, so the old primary — alive but presumed dead — can no
	// longer commit through the workers. Zero means 1 (a plain
	// single-coordinator run).
	Epoch uint64

	// QueueDepth bounds parsed-but-unassigned batches (backpressure on
	// the producer); 0 means two per worker. Requeues are exempt.
	QueueDepth int
	// HeartbeatEvery is the ping cadence per session; HeartbeatTimeout
	// is how long a session may go without any frame from the worker
	// before it is declared lost. Zero values use the defaults.
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// BatchDeadline bounds one assignment: a batch not answered within
	// it is reclaimed and requeued (the eventual late result is fenced
	// by epoch). 0 disables per-batch deadlines — heartbeats still
	// bound worker loss.
	BatchDeadline time.Duration
	// MaxConnects is the dial budget per (re)connect episode before the
	// worker is quarantined; 0 means DefaultMaxConnects.
	MaxConnects int
	// QuarantineAfter is the circuit breaker: a worker with this many
	// consecutive strikes (disconnects, deadlines, exec failures) is
	// quarantined. 0 means DefaultQuarantineAfter.
	QuarantineAfter int
	// MaxRetries is the per-batch budget for remote execution failures
	// (worker loss does not consume it); 0 means DefaultMaxRetries.
	MaxRetries int
	// BackoffBase and BackoffCap shape the capped exponential backoff
	// between reconnects and retries.
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// Local, when non-nil, executes a batch on the coordinator itself —
	// the graceful degradation engaged once every worker is gone. It
	// must merge its own results guarded by Batch.Commit and report
	// whether that Commit succeeded.
	Local func(b Batch) (committed bool, err error)
	// Drain, when non-nil, requests a graceful stop once closed:
	// submitted batches finish (processed, committed, journaled), new
	// submissions are refused with ErrDraining.
	Drain <-chan struct{}
	// Clock substitutes a fake time source in tests; nil means the wall
	// clock. The FaultInjector should share it.
	Clock gpu.Clock
	// Inject, when non-nil, applies fault plans to dials and
	// connections.
	Inject *FaultInjector
	// Trace, when non-nil, parents one span per assignment on a
	// per-worker track.
	Trace *obs.Span
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c *Config) coordEpoch() uint64 {
	if c.Epoch > 0 {
		return c.Epoch
	}
	return 1
}

func (c *Config) clock() gpu.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return gpu.RealClock()
}

func (c *Config) heartbeatEvery() time.Duration {
	if c.HeartbeatEvery > 0 {
		return c.HeartbeatEvery
	}
	return DefaultHeartbeatEvery
}

func (c *Config) heartbeatTimeout() time.Duration {
	if c.HeartbeatTimeout > 0 {
		return c.HeartbeatTimeout
	}
	return DefaultHeartbeatTimeout
}

func (c *Config) maxConnects() int {
	if c.MaxConnects > 0 {
		return c.MaxConnects
	}
	return DefaultMaxConnects
}

func (c *Config) quarantineAfter() int {
	if c.QuarantineAfter > 0 {
		return c.QuarantineAfter
	}
	if c.QuarantineAfter < 0 {
		return 0
	}
	return DefaultQuarantineAfter
}

func (c *Config) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	if c.MaxRetries < 0 {
		return 0
	}
	return DefaultMaxRetries
}

func (c *Config) backoff(try int) time.Duration {
	base := c.BackoffBase
	if base <= 0 {
		base = DefaultBackoffBase
	}
	max := c.BackoffCap
	if max <= 0 {
		max = DefaultBackoffCap
	}
	shift := try - 1
	if shift > 20 {
		shift = 20
	}
	d := base << shift
	if d > max || d <= 0 {
		d = max
	}
	return d
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Coordinator shards a batch stream across the configured workers. It
// is the cluster-level twin of gpu.Scheduler: same bounded pending
// list, same claim/requeue discipline, with workers in place of
// devices and the wire in place of function calls.
type Coordinator struct {
	Cfg Config
}

// clusterAttempt is one batch's place in the pending list.
type clusterAttempt struct {
	b     Batch
	tries int // failed remote executions so far
	excl  int // worker index that last failed it (-1: none)
}

// flightResult is what the reader hands a waiting slot: a result
// payload or the worker's execution error.
type flightResult struct {
	payload []byte
	execErr string
}

// flight is one in-flight assignment: (batch, epoch) on one session.
// The epoch is the fence — a result frame must match both the batch's
// live flight and its epoch, or it is dropped.
type flight struct {
	att       *clusterAttempt
	epoch     uint64
	ch        chan flightResult // buffered 1
	delivered bool              // guarded by coordRun.mu
}

// session is one live connection to a worker.
type session struct {
	worker   int
	name     string
	capacity int
	conn     net.Conn

	wmu sync.Mutex // serialises frame writes (slots + heartbeat)

	// dead closes when the session is torn down; deadFlag and cause are
	// guarded by coordRun.mu, set before dead closes.
	dead     chan struct{}
	once     sync.Once
	deadFlag bool
	cause    error

	lastSeen atomic.Int64 // clock nanos of the last frame from the worker

	// closing is set just before the coordinator says goodbye, so the
	// EOF the worker's close then produces reads as a clean shutdown,
	// not a worker loss.
	closing atomic.Bool

	inflight map[int]*flight // by batch Seq; guarded by coordRun.mu
}

func (s *session) write(body []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return writeFrame(s.conn, body)
}

func (s *session) touch(now time.Time) { s.lastSeen.Store(now.UnixNano()) }

// kill tears the session down exactly once: every still-inflight
// (undelivered) batch is requeued — exactly once, because inflight
// entries are removed both here and on delivery under the same lock —
// and the connection is closed. A nil cause is a clean shutdown.
func (s *session) kill(cr *coordRun, cause error) {
	s.once.Do(func() {
		cr.mu.Lock()
		s.cause = cause
		s.deadFlag = true
		n := 0
		for seqNo, fl := range s.inflight {
			delete(s.inflight, seqNo)
			cr.requeueLocked(fl.att, s.worker)
			n++
		}
		if n > 0 {
			cr.rep.Requeues += n
			cr.rep.Workers[s.worker].Requeues += n
		}
		close(s.dead)
		cr.cond.Broadcast()
		cr.mu.Unlock()
		s.conn.Close()
		if cause != nil {
			cr.c.Cfg.logf("cluster: worker %s session ended: %v (%d batches requeued)", s.name, cause, n)
		}
	})
}

// coordRun is the mutable state of one Run.
type coordRun struct {
	c        *Coordinator
	rep      *Report
	ctx      context.Context
	commitFn func(b Batch, payload []byte) (bool, error)

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*clusterAttempt
	// active counts batches claimed but not yet resolved; see
	// gpu.schedRun for why drain detection needs it.
	active   int
	closed   bool
	aborted  bool
	draining bool
	err      error
	abortCh  chan struct{}
	epoch    uint64 // next assignment epoch (globally unique)

	quar         []bool
	consec       []int
	healthy      int
	connectedOne []bool // worker has connected at least once
	localStarted bool

	wg sync.WaitGroup
}

func (cr *coordRun) failLocked(err error) {
	if !cr.aborted {
		cr.aborted = true
		cr.err = err
		close(cr.abortCh)
	}
	cr.cond.Broadcast()
}

func (cr *coordRun) fail(err error) {
	cr.mu.Lock()
	cr.failLocked(err)
	cr.mu.Unlock()
}

func (cr *coordRun) doneLocked() bool {
	return cr.closed && len(cr.pending) == 0 && cr.active == 0
}

// takeLocked claims the first pending attempt eligible for worker i
// (i < 0: the local path, exclusions ignored).
func (cr *coordRun) takeLocked(i int) *clusterAttempt {
	for k, att := range cr.pending {
		if i >= 0 && att.excl >= 0 && att.excl == i && cr.healthy > 1 {
			continue
		}
		cr.pending = append(cr.pending[:k], cr.pending[k+1:]...)
		cr.active++
		cr.cond.Broadcast()
		return att
	}
	return nil
}

func (cr *coordRun) requeueLocked(att *clusterAttempt, failedOn int) {
	att.excl = failedOn
	cr.pending = append(cr.pending, att)
	cr.active--
	cr.cond.Broadcast()
}

// quarantineLocked takes worker i out of service; losing the last
// healthy worker degrades to the local executor when one is
// configured, otherwise aborts the run if work is still outstanding.
func (cr *coordRun) quarantineLocked(i int) {
	if cr.quar[i] {
		return
	}
	cr.quar[i] = true
	cr.healthy--
	cr.rep.Quarantines++
	cr.rep.Workers[i].Quarantined = true
	cr.c.Cfg.logf("cluster: worker %s quarantined (%d healthy left)", cr.c.Cfg.Workers[i].Name, cr.healthy)
	if cr.healthy == 0 {
		if cr.c.Cfg.Local != nil {
			if !cr.localStarted {
				cr.localStarted = true
				cr.rep.Degraded = true
				cr.c.Cfg.logf("cluster: all workers lost, degrading to local execution")
				cr.wg.Add(1)
				go cr.runLocal()
			}
		} else if !cr.doneLocked() {
			cr.failLocked(fmt.Errorf("cluster: %d batches outstanding: %w",
				len(cr.pending)+cr.active, ErrAllWorkersLost))
		}
	}
	cr.cond.Broadcast()
}

// strikeLocked charges worker i one breaker strike; returns true when
// the breaker trips (the caller must then kill the session, outside
// the lock).
func (cr *coordRun) strikeLocked(i int) bool {
	cr.consec[i]++
	if k := cr.c.Cfg.quarantineAfter(); k > 0 && cr.consec[i] >= k {
		cr.quarantineLocked(i)
		return true
	}
	return false
}

// runWorker owns worker i for the run: connect (with backoff),
// serve the session until it dies, strike, reconnect — until the run
// completes, aborts, or the worker is quarantined.
func (cr *coordRun) runWorker(i int) {
	defer cr.wg.Done()
	cfg := &cr.c.Cfg
	ws := &cr.rep.Workers[i]
	for {
		cr.mu.Lock()
		if cr.aborted || cr.quar[i] || cr.doneLocked() {
			cr.mu.Unlock()
			return
		}
		cr.mu.Unlock()

		sess, err := cr.connect(i)
		if err != nil {
			cr.mu.Lock()
			ws.LastError = err.Error()
			cr.quarantineLocked(i)
			cr.mu.Unlock()
			return
		}
		cr.serveSession(i, sess)

		cr.mu.Lock()
		if sess.cause != nil {
			ws.Disconnects++
			ws.LastError = sess.cause.Error()
		}
		if cr.aborted || cr.quar[i] || cr.doneLocked() {
			cr.mu.Unlock()
			return
		}
		// The session died with work remaining: strike and reconnect.
		if cr.strikeLocked(i) {
			cr.mu.Unlock()
			return
		}
		delay := cfg.backoff(cr.consec[i])
		cr.mu.Unlock()
		select {
		case <-cfg.clock().After(delay):
		case <-cr.abortCh:
			return
		}
	}
}

// connect dials worker i with up to MaxConnects attempts (capped
// backoff between them) and completes the handshake. A handshake
// rejection (version/fingerprint/mode) is permanent and returned
// immediately — redialling a misconfigured worker cannot help.
func (cr *coordRun) connect(i int) (*session, error) {
	cfg := &cr.c.Cfg
	spec := cfg.Workers[i]
	ws := &cr.rep.Workers[i]
	var lastErr error
	for attempt := 0; attempt < cfg.maxConnects(); attempt++ {
		if attempt > 0 {
			select {
			case <-cfg.clock().After(cfg.backoff(attempt)):
			case <-cr.abortCh:
				return nil, cr.runErr()
			}
		}
		if err := cfg.Inject.AllowConnect(i); err != nil {
			lastErr = err
			cr.countConnectFailure(ws)
			continue
		}
		conn, err := spec.Dial(cr.ctx)
		if err != nil {
			lastErr = err
			cr.countConnectFailure(ws)
			continue
		}
		conn = cfg.Inject.WrapConn(i, conn)
		ack, err := cr.handshake(spec.Name, conn)
		if err != nil {
			conn.Close()
			cr.countConnectFailure(ws)
			var hs *HandshakeError
			if errors.As(err, &hs) {
				return nil, err
			}
			lastErr = err
			continue
		}
		sess := &session{
			worker:   i,
			name:     spec.Name,
			capacity: ack.Capacity,
			conn:     conn,
			dead:     make(chan struct{}),
			inflight: make(map[int]*flight),
		}
		sess.touch(cfg.clock().Now())
		cr.mu.Lock()
		if cr.connectedOne[i] {
			cr.rep.Reconnects++
			ws.Reconnects++
		}
		cr.connectedOne[i] = true
		cr.mu.Unlock()
		cfg.logf("cluster: worker %s connected (capacity %d)", ack.Name, ack.Capacity)
		return sess, nil
	}
	return nil, fmt.Errorf("cluster: worker %s unreachable after %d attempts: %w",
		spec.Name, cfg.maxConnects(), lastErr)
}

func (cr *coordRun) countConnectFailure(ws *WorkerStats) {
	cr.mu.Lock()
	cr.rep.ConnectFailures++
	ws.ConnectFailures++
	cr.mu.Unlock()
}

func (cr *coordRun) runErr() error {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if cr.err != nil {
		return cr.err
	}
	return errors.New("cluster: run aborted")
}

// handshake sends hello and awaits the ack, bounded by the heartbeat
// timeout so a corrupt or wedged worker cannot hang the connect loop.
// Stray pong frames are skipped: a connection inherited warm from a
// standby (takeover promotion) may still hold the reply to the
// standby's last keepalive ping.
func (cr *coordRun) handshake(name string, conn net.Conn) (HelloAck, error) {
	cfg := &cr.c.Cfg
	var ack HelloAck
	hello := Handshake{Version: ProtoVersion, Fingerprint: cfg.Fingerprint, Mode: cfg.Mode,
		Role: RoleActive, Epoch: cfg.coordEpoch()}
	if err := writeFrame(conn, encodeHello(hello)); err != nil {
		return ack, fmt.Errorf("cluster: writing hello to %s: %w", name, err)
	}
	type readRes struct {
		typ     byte
		payload []byte
		err     error
	}
	ch := make(chan readRes, 1)
	go func() {
		for {
			typ, payload, err := readFrame(conn)
			if err == nil && typ == msgPong {
				continue
			}
			ch <- readRes{typ, payload, err}
			return
		}
	}()
	var r readRes
	select {
	case r = <-ch:
	case <-cfg.clock().After(cfg.heartbeatTimeout()):
		conn.Close()
		return ack, fmt.Errorf("cluster: handshake with %s timed out after %v", name, cfg.heartbeatTimeout())
	case <-cr.abortCh:
		conn.Close()
		return ack, cr.runErr()
	}
	if r.err != nil {
		return ack, fmt.Errorf("cluster: reading handshake from %s: %w", name, r.err)
	}
	switch r.typ {
	case msgHelloAck:
		ack, err := parseHelloAck(r.payload)
		if err != nil {
			return ack, err
		}
		if ack.Version != ProtoVersion {
			return ack, &HandshakeError{Worker: name,
				Reason: fmt.Sprintf("worker speaks protocol version %d, coordinator %d", ack.Version, ProtoVersion)}
		}
		if ack.Capacity < 1 {
			ack.Capacity = 1
		}
		return ack, nil
	case msgHelloNack:
		reason, err := parseHelloNack(r.payload)
		if err != nil {
			return ack, err
		}
		return ack, &HandshakeError{Worker: name, Reason: reason}
	default:
		return ack, &WireError{Msg: r.typ, Reason: "unexpected handshake reply"}
	}
}

// serveSession runs one session to completion: a reader, a
// heartbeater, and capacity assignment slots. It returns once the
// session is dead and all three have unwound.
func (cr *coordRun) serveSession(i int, sess *session) {
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { defer aux.Done(); cr.readLoop(sess) }()
	go func() { defer aux.Done(); cr.heartbeat(sess) }()
	var slots sync.WaitGroup
	slots.Add(sess.capacity)
	for s := 0; s < sess.capacity; s++ {
		go func() { defer slots.Done(); cr.runSlot(i, sess) }()
	}
	slots.Wait()
	// All slots exited: either the session died under them, or the run
	// is complete/aborted/quarantined — say goodbye and tear down.
	sess.closing.Store(true)
	sess.write(frameBodyGoodbye())
	sess.kill(cr, nil)
	aux.Wait()
}

func frameBodyGoodbye() []byte { return []byte{msgGoodbye} }

// readLoop dispatches worker frames: results and exec errors are
// fenced by (seq, epoch) against the live inflight table and handed to
// the waiting slot; anything malformed kills the session.
func (cr *coordRun) readLoop(sess *session) {
	clock := cr.c.Cfg.clock()
	for {
		typ, payload, err := readFrame(sess.conn)
		if err != nil {
			if sess.closing.Load() {
				sess.kill(cr, nil)
			} else {
				sess.kill(cr, fmt.Errorf("cluster: read from worker %s: %w", sess.name, err))
			}
			return
		}
		sess.touch(clock.Now())
		switch typ {
		case msgPong:
			// touch above is the point of pongs
		case msgResult:
			seqNo, epoch, res, err := parseResultMsg(payload)
			if err != nil {
				sess.kill(cr, err)
				return
			}
			cr.deliver(sess, int(seqNo), epoch, flightResult{payload: res})
		case msgExecErr:
			seqNo, epoch, msg, err := parseExecErr(payload)
			if err != nil {
				sess.kill(cr, err)
				return
			}
			if msg == "" {
				msg = "worker reported an unspecified execution error"
			}
			cr.deliver(sess, int(seqNo), epoch, flightResult{execErr: msg})
		case msgGoodbye:
			sess.kill(cr, fmt.Errorf("cluster: worker %s closed the session", sess.name))
			return
		default:
			sess.kill(cr, &WireError{Msg: typ, Reason: "unexpected message from worker"})
			return
		}
	}
}

// deliver fences one worker reply: only a reply matching a live
// inflight entry and its exact assignment epoch reaches a slot. A
// stale epoch or an already-reclaimed batch — the late result of a
// presumed-dead worker or a blown deadline — is dropped and counted,
// never merged: the commit token is the backstop, the fence means the
// token race is never even entered.
func (cr *coordRun) deliver(sess *session, seqNo int, epoch uint64, res flightResult) {
	cr.mu.Lock()
	fl := sess.inflight[seqNo]
	if fl == nil || fl.epoch != epoch {
		cr.rep.FencedResults++
		cr.mu.Unlock()
		cr.c.Cfg.logf("cluster: fenced late result for batch %d (epoch %d) from worker %s", seqNo, epoch, sess.name)
		return
	}
	delete(sess.inflight, seqNo)
	fl.delivered = true
	cr.mu.Unlock()
	fl.ch <- res
}

// heartbeat pings the session and declares it lost when no frame has
// arrived within the timeout.
func (cr *coordRun) heartbeat(sess *session) {
	cfg := &cr.c.Cfg
	clock := cfg.clock()
	nonce := uint64(0)
	for {
		select {
		case <-clock.After(cfg.heartbeatEvery()):
		case <-sess.dead:
			return
		case <-cr.abortCh:
			sess.kill(cr, errors.New("cluster: run aborted"))
			return
		}
		nonce++
		if err := sess.write(encodePingPong(msgPing, nonce)); err != nil {
			sess.kill(cr, fmt.Errorf("cluster: ping to worker %s: %w", sess.name, err))
			return
		}
		if idle := clock.Now().Sub(time.Unix(0, sess.lastSeen.Load())); idle > cfg.heartbeatTimeout() {
			cr.mu.Lock()
			cr.rep.HeartbeatTimeouts++
			cr.mu.Unlock()
			sess.kill(cr, fmt.Errorf("cluster: worker %s silent for %v (timeout %v)", sess.name, idle, cfg.heartbeatTimeout()))
			return
		}
	}
}

// runSlot is one assignment slot on a session: claim a batch, ship it,
// await the fenced reply (or deadline, or session death), commit.
func (cr *coordRun) runSlot(i int, sess *session) {
	cfg := &cr.c.Cfg
	clock := cfg.clock()
	ws := &cr.rep.Workers[i]
	for {
		cr.mu.Lock()
		var att *clusterAttempt
		for {
			if cr.aborted || cr.quar[i] || sess.deadFlag {
				cr.mu.Unlock()
				return
			}
			if att = cr.takeLocked(i); att != nil {
				break
			}
			if cr.doneLocked() {
				cr.mu.Unlock()
				return
			}
			cr.cond.Wait()
		}
		epoch := cr.epoch
		cr.epoch++
		fl := &flight{att: att, epoch: epoch, ch: make(chan flightResult, 1)}
		sess.inflight[att.b.Seq] = fl
		cr.mu.Unlock()

		b := att.b
		span := cfg.Trace.ChildOn("worker:"+sess.name, fmt.Sprintf("batch %d", b.Seq),
			obs.Int("batch", int64(b.Seq)),
			obs.Int("epoch", int64(epoch)),
			obs.Int("seqs", int64(b.DB.NumSeqs())),
			obs.Int("residues", b.DB.TotalResidues()),
			obs.Int("attempt", int64(att.tries)))
		if err := cfg.Inject.BeforeAssign(); err != nil {
			// An injected coordinator kill: the "primary" dies here, with
			// this batch assigned-but-unsent and others possibly in
			// flight — exactly the state a hot standby must take over
			// from. Failing the run models the process dying; the caller
			// (cmd/hmmsearch) exits without committing anything further.
			span.Annotate(obs.String("error", err.Error()))
			span.End()
			cr.fail(err)
			return
		}
		t0 := clock.Now()
		if err := sess.write(encodeBatchMsg(uint64(b.Seq), epoch, uint64(b.Offset), b.DB)); err != nil {
			span.Annotate(obs.String("error", err.Error()))
			span.End()
			// kill requeues this flight along with the rest of the
			// session's inflight table.
			sess.kill(cr, fmt.Errorf("cluster: sending batch %d to worker %s: %w", b.Seq, sess.name, err))
			return
		}

		var deadlineCh <-chan time.Time
		if cfg.BatchDeadline > 0 {
			deadlineCh = clock.After(cfg.BatchDeadline)
		}
		var res flightResult
		gotRes := false
		select {
		case res = <-fl.ch:
			gotRes = true
		case <-deadlineCh:
			// The reply may have raced the deadline; resolve under the
			// lock — exactly one of {slot, reader} removes the flight.
			cr.mu.Lock()
			if fl.delivered {
				cr.mu.Unlock()
				res = <-fl.ch
				gotRes = true
			} else {
				delete(sess.inflight, b.Seq)
				cr.rep.Deadlines++
				ws.Deadlines++
				cr.rep.Requeues++
				ws.Requeues++
				cr.requeueLocked(att, i)
				tripped := cr.strikeLocked(i)
				cr.mu.Unlock()
				span.Annotate(obs.String("error", "assignment deadline expired"))
				span.End()
				if tripped {
					sess.kill(cr, fmt.Errorf("cluster: worker %s blew %d assignment deadlines", sess.name, cr.c.Cfg.quarantineAfter()))
					return
				}
				continue
			}
		case <-sess.dead:
			// kill requeued everything undelivered; but the reply may
			// have been delivered just before death — then it is valid
			// and must be processed, or the batch would be lost with the
			// requeue already fenced off.
			cr.mu.Lock()
			d := fl.delivered
			cr.mu.Unlock()
			if !d {
				span.Annotate(obs.String("error", "session died"))
				span.End()
				return
			}
			res = <-fl.ch
			gotRes = true
		case <-cr.abortCh:
			span.End()
			return
		}
		_ = gotRes
		busy := clock.Now().Sub(t0)

		if res.execErr != "" {
			span.Annotate(obs.String("error", res.execErr))
			span.End()
			cr.mu.Lock()
			cr.rep.RemoteFailures++
			ws.Failures++
			att.tries++
			if att.tries > cfg.maxRetries() {
				cr.active--
				cr.failLocked(fmt.Errorf("cluster: batch %d failed on workers after %d attempts: %s",
					b.Seq, att.tries, res.execErr))
				cr.mu.Unlock()
				return
			}
			tripped := cr.strikeLocked(i)
			delay := cfg.backoff(att.tries)
			cr.mu.Unlock()
			// Stay counted in active through the backoff so siblings do
			// not mistake the stream for drained.
			select {
			case <-clock.After(delay):
			case <-cr.abortCh:
				return
			}
			cr.mu.Lock()
			cr.requeueLocked(att, i)
			cr.mu.Unlock()
			if tripped {
				sess.kill(cr, fmt.Errorf("cluster: worker %s failed %d executions in a row", sess.name, cr.c.Cfg.quarantineAfter()))
				return
			}
			continue
		}

		committed, err := cr.commitFn(b, res.payload)
		span.End()
		if err != nil {
			cr.fail(err)
			return
		}
		cr.mu.Lock()
		if committed {
			ws.Batches++
			ws.Residues += b.DB.TotalResidues()
			ws.Busy += busy
		} else {
			// Something else (a fenced requeue that re-ran, or the local
			// path) won the merge token first.
			cr.rep.FencedCommits++
		}
		cr.consec[i] = 0
		cr.active--
		cr.cond.Broadcast()
		cr.mu.Unlock()
	}
}

// runLocal drains the remaining stream on the coordinator itself once
// every worker is quarantined.
func (cr *coordRun) runLocal() {
	defer cr.wg.Done()
	for {
		cr.mu.Lock()
		var att *clusterAttempt
		for {
			if cr.aborted {
				cr.mu.Unlock()
				return
			}
			if att = cr.takeLocked(-1); att != nil {
				break
			}
			if cr.doneLocked() {
				cr.mu.Unlock()
				return
			}
			cr.cond.Wait()
		}
		cr.mu.Unlock()

		span := cr.c.Cfg.Trace.ChildOn("local", fmt.Sprintf("batch %d (local degraded)", att.b.Seq),
			obs.Int("batch", int64(att.b.Seq)),
			obs.Bool("local_degraded", true))
		committed, err := cr.c.Cfg.Local(att.b)
		span.End()

		cr.mu.Lock()
		cr.active--
		if err != nil {
			cr.failLocked(err)
			cr.mu.Unlock()
			return
		}
		if committed {
			cr.rep.LocalBatches++
		} else {
			cr.rep.FencedCommits++
		}
		cr.cond.Broadcast()
		cr.mu.Unlock()
	}
}

// Run shards the produced batch stream across the configured workers.
// produce must call submit once per batch (stream order); submit
// blocks for backpressure and returns ErrDraining once a drain is
// requested. commit is called at most once per completed delivery
// with the worker's result payload; it must claim Batch.Commit, then
// journal and merge, and report whether the claim succeeded. The local
// degraded path (Cfg.Local) merges for itself.
//
// The report is returned for clean and drained runs; the first
// unrecoverable error (produce, commit, context, all-workers-lost with
// no local executor) aborts the run.
func (c *Coordinator) Run(ctx context.Context,
	produce func(submit func(b Batch) error) error,
	commit func(b Batch, payload []byte) (committed bool, err error),
) (*Report, error) {
	if len(c.Cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	if commit == nil {
		return nil, errors.New("cluster: no commit callback")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(c.Cfg.Workers)
	depth := c.Cfg.QueueDepth
	if depth <= 0 {
		depth = 2 * n
	}
	rep := &Report{Workers: make([]WorkerStats, n), Epoch: c.Cfg.coordEpoch()}
	for i := range rep.Workers {
		rep.Workers[i].Name = c.Cfg.Workers[i].Name
	}
	cr := &coordRun{
		c:            c,
		rep:          rep,
		ctx:          ctx,
		commitFn:     commit,
		abortCh:      make(chan struct{}),
		quar:         make([]bool, n),
		consec:       make([]int, n),
		connectedOne: make([]bool, n),
		healthy:      n,
	}
	cr.cond = sync.NewCond(&cr.mu)

	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			cr.fail(ctx.Err())
		case <-watchDone:
		}
	}()
	if c.Cfg.Drain != nil {
		go func() {
			select {
			case <-c.Cfg.Drain:
				cr.mu.Lock()
				cr.draining = true
				cr.cond.Broadcast()
				cr.mu.Unlock()
			case <-watchDone:
			}
		}()
	}

	start := time.Now()
	cr.wg.Add(n)
	for i := 0; i < n; i++ {
		go cr.runWorker(i)
	}

	submit := func(b Batch) error {
		if b.DB == nil {
			return fmt.Errorf("cluster: submitted batch %d has no database", b.Seq)
		}
		cr.mu.Lock()
		defer cr.mu.Unlock()
		if !cr.draining && c.Cfg.Drain != nil {
			select {
			case <-c.Cfg.Drain:
				cr.draining = true
				cr.cond.Broadcast()
			default:
			}
		}
		for len(cr.pending) >= depth && !cr.aborted && !cr.draining {
			cr.cond.Wait()
		}
		if cr.aborted {
			return fmt.Errorf("cluster: run aborted: %w", cr.err)
		}
		if cr.draining {
			rep.Drained = true
			return ErrDraining
		}
		b.commit = new(atomic.Bool)
		cr.pending = append(cr.pending, &clusterAttempt{b: b, excl: -1})
		rep.Batches++
		rep.Seqs += b.DB.NumSeqs()
		rep.Residues += b.DB.TotalResidues()
		cr.cond.Broadcast()
		return nil
	}
	perr := produce(submit)
	if errors.Is(perr, ErrDraining) {
		perr = nil
	}
	cr.mu.Lock()
	cr.closed = true
	cr.cond.Broadcast()
	cr.mu.Unlock()
	if perr != nil {
		cr.fail(perr)
	}
	cr.wg.Wait()
	rep.Wall = time.Since(start)
	cr.mu.Lock()
	ferr := cr.err
	cr.mu.Unlock()
	if ferr != nil {
		return nil, ferr
	}
	return rep, nil
}
