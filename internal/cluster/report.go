package cluster

import (
	"fmt"
	"strings"
	"time"

	"hmmer3gpu/internal/obs"
)

// WorkerStats is one worker's share of a sharded run.
type WorkerStats struct {
	Name string
	// Batches/Residues/Busy cover batches this worker completed and
	// that won the merge token.
	Batches  int
	Residues int64
	Busy     time.Duration
	// Requeues counts batches reclaimed from this worker (session loss
	// or blown deadline) and re-executed elsewhere.
	Requeues int
	// Failures counts remote execution errors this worker reported.
	Failures int
	// ConnectFailures counts failed dials/handshakes; Disconnects
	// counts sessions that ended with a cause; Reconnects counts
	// successful connects after the first.
	ConnectFailures int
	Disconnects     int
	Reconnects      int
	// Deadlines counts assignments reclaimed on the per-batch deadline.
	Deadlines   int
	Quarantined bool
	LastError   string
}

// Report is the outcome of one Coordinator.Run.
type Report struct {
	Wall time.Duration
	// Batches/Seqs/Residues total the submitted work.
	Batches  int
	Seqs     int
	Residues int64
	// Drained reports a graceful early stop (Drain channel closed).
	Drained bool
	// Epoch is the coordinator fencing epoch the run executed under.
	Epoch uint64
	// Failovers counts hot-standby takeovers this run performed (1 for
	// a standby run that assumed a dead primary's journal and workers,
	// 0 for a plain run).
	Failovers int
	// StandbyTailed counts journal records this run consumed while
	// still a standby (tailing the primary's journal before takeover).
	StandbyTailed int
	// Degraded reports that the run lost every worker and finished on
	// the coordinator's local executor.
	Degraded bool
	// LocalBatches counts batches the degraded local path committed.
	LocalBatches int
	// Requeues counts batches reclaimed from lost or stalled workers
	// and re-executed — each reclaim is exactly one requeue, so under
	// the commit-token discipline this equals the number of
	// re-executions caused by worker loss.
	Requeues int
	// FencedResults counts late worker replies dropped by the
	// (seq, epoch) fence — results from presumed-dead workers or blown
	// deadlines that were never allowed near the merge path.
	FencedResults int
	// FencedCommits counts deliveries that lost the merge-token race
	// (the token backstop behind the fence).
	FencedCommits int
	// RemoteFailures counts execution errors reported by workers.
	RemoteFailures int
	// Deadlines / HeartbeatTimeouts / ConnectFailures / Reconnects /
	// Quarantines total the corresponding per-worker events.
	Deadlines         int
	HeartbeatTimeouts int
	ConnectFailures   int
	Reconnects        int
	Quarantines       int
	// Workers is the per-worker breakdown, indexed by roster position.
	Workers []WorkerStats
}

// Faulted reports whether the run saw any fault activity.
func (r *Report) Faulted() bool {
	return r.Requeues > 0 || r.FencedResults > 0 || r.FencedCommits > 0 ||
		r.RemoteFailures > 0 || r.Deadlines > 0 || r.HeartbeatTimeouts > 0 ||
		r.ConnectFailures > 0 || r.Reconnects > 0 || r.Quarantines > 0 || r.Degraded
}

// String renders totals, one line per worker, and a fault summary when
// the run saw faults.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d batches, %d seqs, %d residues across %d workers in %v",
		r.Batches, r.Seqs, r.Residues, len(r.Workers), r.Wall)
	if r.Drained {
		b.WriteString(" (drained)")
	}
	if r.Degraded {
		fmt.Fprintf(&b, " (degraded: %d batches finished locally)", r.LocalBatches)
	}
	for _, w := range r.Workers {
		fmt.Fprintf(&b, "\n  worker %s: %d batches, %d residues (%s), busy %v",
			w.Name, w.Batches, w.Residues,
			obs.Pct(float64(w.Residues), float64(r.Residues)), w.Busy)
		if w.Quarantined {
			b.WriteString(" [quarantined]")
		}
		if w.LastError != "" {
			fmt.Fprintf(&b, " (last error: %s)", w.LastError)
		}
	}
	if r.Faulted() {
		fmt.Fprintf(&b, "\n  faults: %d requeues, %d fenced results, %d fenced commits, %d remote failures, %d deadlines, %d heartbeat timeouts, %d connect failures, %d reconnects, %d quarantines",
			r.Requeues, r.FencedResults, r.FencedCommits, r.RemoteFailures,
			r.Deadlines, r.HeartbeatTimeouts, r.ConnectFailures, r.Reconnects, r.Quarantines)
	}
	return b.String()
}

// Record merges the run into reg under the cluster subsystem. Every
// counter is emitted on every run — clean runs export explicit zeros —
// and the per-worker quarantined gauge is emitted for every worker in
// the roster, so scrapes always see the same series set.
func (r *Report) Record(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.AddInt("hmmer_cluster_batches_total", int64(r.Batches))
	reg.AddInt("hmmer_cluster_seqs_total", int64(r.Seqs))
	reg.AddInt("hmmer_cluster_residues_total", r.Residues)
	reg.Set("hmmer_cluster_wall_seconds", r.Wall.Seconds())
	reg.AddInt("hmmer_cluster_workers", int64(len(r.Workers)))
	reg.Set("hmmer_cluster_degraded", obs.Flag(r.Degraded))
	reg.AddInt("hmmer_cluster_local_batches_total", int64(r.LocalBatches))
	reg.AddInt("hmmer_cluster_requeues_total", int64(r.Requeues))
	reg.AddInt("hmmer_cluster_fenced_results_total", int64(r.FencedResults))
	reg.AddInt("hmmer_cluster_fenced_commits_total", int64(r.FencedCommits))
	reg.AddInt("hmmer_cluster_remote_failures_total", int64(r.RemoteFailures))
	reg.AddInt("hmmer_cluster_deadlines_total", int64(r.Deadlines))
	reg.AddInt("hmmer_cluster_heartbeat_timeouts_total", int64(r.HeartbeatTimeouts))
	reg.AddInt("hmmer_cluster_connect_failures_total", int64(r.ConnectFailures))
	reg.AddInt("hmmer_cluster_reconnects_total", int64(r.Reconnects))
	reg.AddInt("hmmer_cluster_quarantines_total", int64(r.Quarantines))
	reg.AddInt("hmmer_cluster_failovers_total", int64(r.Failovers))
	reg.AddInt("hmmer_cluster_standby_tailed_total", int64(r.StandbyTailed))
	reg.Set("hmmer_cluster_epoch", float64(r.Epoch))
	for _, w := range r.Workers {
		reg.Add(obs.WithLabel("hmmer_cluster_worker_busy_seconds_total", "worker", w.Name), w.Busy.Seconds())
		reg.AddInt(obs.WithLabel("hmmer_cluster_worker_batches_total", "worker", w.Name), int64(w.Batches))
		reg.AddInt(obs.WithLabel("hmmer_cluster_worker_residues_total", "worker", w.Name), w.Residues)
		reg.AddInt(obs.WithLabel("hmmer_cluster_worker_requeues_total", "worker", w.Name), int64(w.Requeues))
		reg.Set(obs.WithLabel("hmmer_cluster_worker_quarantined", "worker", w.Name), obs.Flag(w.Quarantined))
	}
	reg.Help("hmmer_cluster_requeues_total",
		"batches reclaimed from lost or stalled workers and re-executed exactly once")
	reg.Help("hmmer_cluster_fenced_results_total",
		"late worker replies dropped by the (seq, epoch) fence, never merged")
	reg.Help("hmmer_cluster_fenced_commits_total",
		"deliveries that lost the one-shot merge-token race")
	reg.Help("hmmer_cluster_degraded",
		"1 when the run lost every worker and finished on the local executor")
	reg.Help("hmmer_cluster_worker_quarantined",
		"1 when the worker was quarantined by the circuit breaker during the run")
	reg.Help("hmmer_cluster_failovers_total",
		"hot-standby takeovers performed by this run (journal assumed, workers promoted)")
	reg.Help("hmmer_cluster_standby_tailed_total",
		"journal records consumed while tailing the primary as a standby")
	reg.Help("hmmer_cluster_epoch",
		"the coordinator fencing epoch this run executed under")
}
