package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hmmer3gpu/internal/seq"
)

// haClient extends the frame-by-frame test client with role/epoch
// hellos for the failover tests.
type haClient struct{ drainClient }

func (c *haClient) helloRole(fp [32]byte, mode, role byte, epoch uint64) (acked bool, nackReason string) {
	c.t.Helper()
	h := Handshake{Version: ProtoVersion, Fingerprint: fp, Mode: mode, Role: role, Epoch: epoch}
	if err := writeFrame(c.conn, encodeHello(h)); err != nil {
		c.t.Fatalf("hello: %v", err)
	}
	typ, payload, err := readFrame(c.conn)
	if err != nil {
		c.t.Fatalf("hello reply: %v", err)
	}
	switch typ {
	case msgHelloAck:
		if _, err := parseHelloAck(payload); err != nil {
			c.t.Fatal(err)
		}
		return true, ""
	case msgHelloNack:
		reason, err := parseHelloNack(payload)
		if err != nil {
			c.t.Fatal(err)
		}
		return false, reason
	default:
		c.t.Fatalf("hello answered with frame type %d", typ)
		return false, ""
	}
}

func haConn(t *testing.T, ws *WorkerServer) *haClient {
	t.Helper()
	c1, c2 := net.Pipe()
	go ws.ServeConn(context.Background(), c2)
	t.Cleanup(func() { c1.Close() })
	return &haClient{drainClient{t: t, conn: c1}}
}

func TestHelloRoleEpochRoundTrip(t *testing.T) {
	h := Handshake{Version: ProtoVersion, Mode: 3, Role: RoleStandby, Epoch: 7}
	for i := range h.Fingerprint {
		h.Fingerprint[i] = byte(i * 5)
	}
	got, err := parseHello(encodeHello(h)[1:])
	if err != nil {
		t.Fatalf("parseHello: %v", err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
}

// A worker that has acked a newer active coordinator nacks an active
// hello from a stale epoch — across connections, not just within one.
func TestStaleActiveHelloNacked(t *testing.T) {
	ws := &WorkerServer{Name: "w", Fingerprint: testFP, Mode: 1, Exec: testExec}

	if ok, _ := haConn(t, ws).helloRole(testFP, 1, RoleActive, 2); !ok {
		t.Fatal("epoch-2 hello nacked")
	}
	if got := ws.MaxEpoch(); got != 2 {
		t.Fatalf("MaxEpoch = %d, want 2", got)
	}

	ok, reason := haConn(t, ws).helloRole(testFP, 1, RoleActive, 1)
	if ok {
		t.Fatal("stale epoch-1 hello acked")
	}
	if !strings.Contains(reason, staleEpochMsg) {
		t.Fatalf("nack reason %q does not mention the epoch fence", reason)
	}

	// Equal epoch must still be acked: the same primary reconnecting
	// after a transient drop is not a failover.
	if ok, reason := haConn(t, ws).helloRole(testFP, 1, RoleActive, 2); !ok {
		t.Fatalf("same-epoch reconnect nacked: %s", reason)
	}
}

// A session whose acked epoch is superseded mid-run gets its batch
// assignments answered with a stale-epoch exec error, never executed.
func TestBatchFencedOnSupersededSession(t *testing.T) {
	executed := make(chan uint64, 8)
	ws := &WorkerServer{Name: "w", Fingerprint: testFP, Mode: 1,
		Exec: func(ctx context.Context, seqNo uint64, db *seq.Database) ([]byte, error) {
			executed <- seqNo
			return execPayload(seqNo, db), nil
		}}

	old := haConn(t, ws)
	if ok, _ := old.helloRole(testFP, 1, RoleActive, 1); !ok {
		t.Fatal("epoch-1 hello nacked")
	}
	// The old primary still works before the takeover.
	old.sendBatch(0)
	if seqNo, msg := old.next(); seqNo != 0 || msg != "" {
		t.Fatalf("pre-takeover batch got (%d, %q)", seqNo, msg)
	}

	// Takeover: a new active coordinator acks at epoch 2.
	if ok, _ := haConn(t, ws).helloRole(testFP, 1, RoleActive, 2); !ok {
		t.Fatal("epoch-2 hello nacked")
	}

	// The stale session's next assignment is fenced.
	old.sendBatch(1)
	seqNo, msg := old.next()
	if seqNo != 1 || !strings.Contains(msg, staleEpochMsg) {
		t.Fatalf("post-takeover batch got (%d, %q), want stale-epoch refusal", seqNo, msg)
	}
	if got := ws.FencedBatches(); got != 1 {
		t.Fatalf("FencedBatches = %d, want 1", got)
	}
	select {
	case got := <-executed:
		if got != 0 {
			t.Fatalf("fenced batch %d was executed", got)
		}
	default:
	}
	select {
	case got := <-executed:
		t.Fatalf("fenced batch %d was executed", got)
	case <-time.After(50 * time.Millisecond):
	}
}

// A standby session may hold the connection and exchange pings but not
// assign batches; a mid-session active hello promotes it in place.
func TestStandbySessionPromotesInPlace(t *testing.T) {
	ws := &WorkerServer{Name: "w", Fingerprint: testFP, Mode: 1, Exec: testExec}

	cl := haConn(t, ws)
	if ok, reason := cl.helloRole(testFP, 1, RoleStandby, 0); !ok {
		t.Fatalf("standby hello nacked: %s", reason)
	}
	// A standby hello must not raise the epoch fence.
	if got := ws.MaxEpoch(); got != 0 {
		t.Fatalf("MaxEpoch after standby hello = %d, want 0", got)
	}

	// Pings flow on a standby session.
	if err := writeFrame(cl.conn, encodePingPong(msgPing, 5)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(cl.conn)
	if err != nil || typ != msgPong {
		t.Fatalf("standby ping: type %d, err %v", typ, err)
	}
	if nonce, _ := parsePingPong(typ, payload); nonce != 5 {
		t.Fatalf("pong nonce %d, want 5", nonce)
	}

	// Batches do not.
	cl.sendBatch(0)
	if seqNo, msg := cl.next(); seqNo != 0 || !strings.Contains(msg, "standby session") {
		t.Fatalf("standby batch got (%d, %q), want standby refusal", seqNo, msg)
	}

	// Promotion: an active hello on the same connection.
	if ok, reason := cl.helloRole(testFP, 1, RoleActive, 2); !ok {
		t.Fatalf("promotion hello nacked: %s", reason)
	}
	cl.sendBatch(1)
	if seqNo, msg := cl.next(); seqNo != 1 || msg != "" {
		t.Fatalf("post-promotion batch got (%d, %q), want clean result", seqNo, msg)
	}
	if got := ws.MaxEpoch(); got != 2 {
		t.Fatalf("MaxEpoch after promotion = %d, want 2", got)
	}
}

// A promotion whose epoch is already superseded is nacked and the
// session torn down.
func TestStalePromotionNacked(t *testing.T) {
	ws := &WorkerServer{Name: "w", Fingerprint: testFP, Mode: 1, Exec: testExec}
	if ok, _ := haConn(t, ws).helloRole(testFP, 1, RoleActive, 3); !ok {
		t.Fatal("epoch-3 hello nacked")
	}
	cl := haConn(t, ws)
	if ok, _ := cl.helloRole(testFP, 1, RoleStandby, 0); !ok {
		t.Fatal("standby hello nacked")
	}
	if ok, reason := cl.helloRole(testFP, 1, RoleActive, 2); ok || !strings.Contains(reason, staleEpochMsg) {
		t.Fatalf("stale promotion: acked=%v reason=%q", ok, reason)
	}
}

func TestParseFaultsKillCoordinator(t *testing.T) {
	fi, err := ParseFaults("kill-coordinator@2", 1)
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	for n := 0; n < 2; n++ {
		if err := fi.BeforeAssign(); err != nil {
			t.Fatalf("assignment %d: unexpected kill: %v", n, err)
		}
	}
	err = fi.BeforeAssign()
	if !errors.Is(err, ErrInjectedCoordinatorKill) {
		t.Fatalf("assignment 2: err = %v, want ErrInjectedCoordinatorKill", err)
	}
	// One-shot: later assignments proceed (the kill models one crash).
	if err := fi.BeforeAssign(); err != nil {
		t.Fatalf("assignment 3: unexpected second kill: %v", err)
	}
	if sched := strings.Join(fi.Schedule(), "\n"); !strings.Contains(sched, "coordinator kill") {
		t.Fatalf("schedule does not record the coordinator kill: %s", sched)
	}

	// Grammar errors.
	for _, bad := range []string{"kill-coordinator@", "kill-coordinator@-1", "kill-coordinator@x"} {
		if _, err := ParseFaults(bad, 1); err == nil {
			t.Fatalf("ParseFaults(%q) accepted", bad)
		}
	}
	// Mixes with per-worker clauses.
	if _, err := ParseFaults("0:kill=1;kill-coordinator@4", 1); err != nil {
		t.Fatalf("mixed grammar rejected: %v", err)
	}
}

// BeforeAssign fires inside a real run: the coordinator stops with
// ErrInjectedCoordinatorKill after exactly n assignments, leaving later
// batches unassigned — the crash window the standby recovers from.
func TestCoordinatorKillStopsRun(t *testing.T) {
	fi := NewFaultInjector(1)
	fi.SetCoordinatorKill(3)
	cl := newCommitLog()
	c := &Coordinator{Cfg: Config{
		Workers:     pipeWorkers(1, 0, testExec),
		Fingerprint: testFP,
		Inject:      fi,
		MaxRetries:  1,
	}}
	_, err := c.Run(context.Background(), produceN(8), cl.fn)
	if !errors.Is(err, ErrInjectedCoordinatorKill) {
		t.Fatalf("Run err = %v, want ErrInjectedCoordinatorKill", err)
	}
	if got := len(cl.snapshot()); got >= 8 {
		t.Fatalf("killed run committed all %d batches", got)
	}
}

// End-to-end failover against shared worker state: the primary dies
// mid-run, a standby holding warm connections promotes at a higher
// epoch and finishes the work, and a late batch from the stale primary
// is fenced.
func TestStandbyPromoteTakesOverWorkers(t *testing.T) {
	const nWorkers, nBatches = 3, 8
	// Persistent servers: the epoch fence lives in the WorkerServer, so
	// primary and standby must dial the same instances.
	servers := make([]*WorkerServer, nWorkers)
	specs := make([]WorkerSpec, nWorkers)
	for i := range servers {
		ws := &WorkerServer{Name: fmt.Sprintf("w%d", i), Capacity: 1,
			Fingerprint: testFP, Mode: 1, Exec: testExec}
		servers[i] = ws
		specs[i] = WorkerSpec{Name: ws.Name, Dial: func(ctx context.Context) (net.Conn, error) {
			c1, c2 := net.Pipe()
			go ws.ServeConn(context.Background(), c2)
			return c1, nil
		}}
	}

	// The standby warms its connections before the primary dies.
	sb := NewStandby(StandbyConfig{Workers: specs, Fingerprint: testFP, Mode: 1,
		PingEvery: 20 * time.Millisecond})
	sb.Start(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for sb.Warm() < nWorkers {
		if time.Now().After(deadline) {
			t.Fatalf("standby warmed %d/%d connections", sb.Warm(), nWorkers)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Primary run at epoch 1, killed after 4 assignments.
	fi := NewFaultInjector(1)
	fi.SetCoordinatorKill(4)
	primaryLog := newCommitLog()
	primary := &Coordinator{Cfg: Config{Workers: specs, Fingerprint: testFP,
		Mode: 1, Epoch: 1, Inject: fi}}
	if _, err := primary.Run(context.Background(), produceN(nBatches), primaryLog.fn); !errors.Is(err, ErrInjectedCoordinatorKill) {
		t.Fatalf("primary err = %v, want ErrInjectedCoordinatorKill", err)
	}
	committed := primaryLog.snapshot()

	// Takeover: promote the warm connections, run the remaining batches
	// at epoch 2. The promoted dials must be the warm conns (pipe conns
	// whose worker side is already mid-session), exercised by the
	// mid-session promotion hello.
	promoted := sb.Promote()
	standbyLog := newCommitLog()
	standby := &Coordinator{Cfg: Config{Workers: promoted, Fingerprint: testFP,
		Mode: 1, Epoch: 2}}
	rep, err := standby.Run(context.Background(), func(submit func(b Batch) error) error {
		off := 0
		for i := 0; i < nBatches; i++ {
			db := testBatchDB(i)
			if _, done := committed[i]; !done {
				if err := submit(Batch{Seq: i, Offset: off, DB: db}); err != nil {
					return err
				}
			}
			off += db.NumSeqs()
		}
		return nil
	}, standbyLog.fn)
	if err != nil {
		t.Fatalf("standby Run: %v", err)
	}
	if rep.Epoch != 2 {
		t.Fatalf("standby report epoch = %d, want 2", rep.Epoch)
	}

	// Exactly-once across the two runs: every batch committed by
	// exactly one coordinator, payloads identical to a clean run.
	for i := 0; i < nBatches; i++ {
		p, fromPrimary := committed[i]
		s, fromStandby := standbyLog.snapshot()[i]
		if fromPrimary == fromStandby {
			t.Fatalf("batch %d: primary=%v standby=%v, want exactly one", i, fromPrimary, fromStandby)
		}
		got := p
		if fromStandby {
			got = s
		}
		if want := execPayload(uint64(i), testBatchDB(i)); string(got) != string(want) {
			t.Fatalf("batch %d payload = %q, want %q", i, got, want)
		}
	}

	// A stale primary reconnecting at epoch 1 is nacked by every worker.
	for _, ws := range servers {
		if got := ws.MaxEpoch(); got != 2 {
			t.Fatalf("worker %s MaxEpoch = %d, want 2", ws.Name, got)
		}
	}
	stale := &Coordinator{Cfg: Config{Workers: specs, Fingerprint: testFP,
		Mode: 1, Epoch: 1, MaxConnects: 1,
		BackoffBase: time.Millisecond, BackoffCap: time.Millisecond}}
	if _, err := stale.Run(context.Background(), produceN(1), newCommitLog().fn); err == nil {
		t.Fatal("stale epoch-1 coordinator ran to completion after takeover")
	}
}

// Standby.Close tears the warm connections down without promoting.
func TestStandbyCloseWithoutPromote(t *testing.T) {
	specs := pipeWorkers(2, 1, testExec)
	sb := NewStandby(StandbyConfig{Workers: specs, Fingerprint: testFP, Mode: 1,
		PingEvery: 20 * time.Millisecond})
	sb.Start(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for sb.Warm() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("standby warmed %d/2 connections", sb.Warm())
		}
		time.Sleep(5 * time.Millisecond)
	}
	sb.Close()
	if got := sb.Warm(); got != 0 {
		t.Fatalf("Warm after Close = %d, want 0", got)
	}
}

// A standby redials after its worker drops the connection.
func TestStandbyRedialsLostWorker(t *testing.T) {
	ws := &WorkerServer{Name: "w0", Capacity: 1, Fingerprint: testFP, Mode: 1, Exec: testExec}
	var dials int
	var lastServer net.Conn
	spec := WorkerSpec{Name: "w0", Dial: func(ctx context.Context) (net.Conn, error) {
		c1, c2 := net.Pipe()
		go ws.ServeConn(context.Background(), c2)
		dials++
		lastServer = c2
		return c1, nil
	}}
	sb := NewStandby(StandbyConfig{Workers: []WorkerSpec{spec}, Fingerprint: testFP,
		Mode: 1, PingEvery: 10 * time.Millisecond,
		BackoffBase: time.Millisecond, BackoffCap: 5 * time.Millisecond})
	sb.Start(context.Background())
	defer sb.Close()
	deadline := time.Now().Add(5 * time.Second)
	for sb.Warm() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("standby never warmed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	lastServer.Close() // worker "crashes"
	for dials < 2 || sb.Warm() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("standby never re-warmed (dials=%d warm=%d)", dials, sb.Warm())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The flock lease: exclusive while held, released on close, and the
// waiter acquires it promptly.
func TestFileLeadership(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.lock")
	acquire := AcquireFileLeadership(path, time.Millisecond)

	release1, err := acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// A second acquire blocks until the first releases.
	got := make(chan error, 1)
	var release2 func()
	go func() {
		r, err := acquire(context.Background())
		release2 = r
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("second acquire succeeded while lock held (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	release1()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("second acquire: %v", err)
		}
		release2()
	case <-time.After(5 * time.Second):
		t.Fatal("second acquire never completed after release")
	}

	// Context cancellation unblocks a waiter.
	release3, err := acquire(context.Background())
	if err != nil {
		t.Fatalf("third acquire: %v", err)
	}
	defer release3()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled acquire err = %v, want deadline exceeded", err)
	}
}
