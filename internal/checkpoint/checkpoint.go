// Package checkpoint implements a crash-safe write-ahead journal of
// per-batch results for the streamed search pipeline. The host process
// of a multi-hour multi-device run is all-or-nothing without it: the
// devices are fault-tolerant (retry, quarantine, DMR), but a host
// crash discards every committed batch. The journal closes that gap
// with the classic WAL contract — a batch's result record is appended,
// checksummed and fsync'd *before* the batch's merge is acknowledged,
// so any batch the scheduler counted complete is durably recorded.
//
// On restart the journal is replayed: completed batches merge from
// disk and are skipped by the producer, so the resumed run's output is
// byte-identical to an uninterrupted run. Replay tolerates exactly one
// kind of damage — a truncated tail record, the signature of dying
// mid-append — by dropping it; anything else (a flipped bit inside a
// framed record, a foreign config fingerprint) refuses to resume with
// a typed error, because silently merging a corrupt or mismatched
// record would be worse than rerunning the whole search.
//
// File layout:
//
//	magic (12 bytes) | fingerprint (32 bytes) | sim mode (1 byte) | record*
//	record: u32 frame length | u32 CRC-32 (IEEE) of body | body
//	body:   u64 seq | u64 offset | u64 numSeqs | u64 residues | payload
//
// All integers are little-endian. The payload is the engine's opaque
// encoding of the batch result; the journal never interprets it.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"hmmer3gpu/internal/obs"
)

// magic identifies a journal file; the trailing byte is the format
// version. Version 2 added the simulator-mode byte after the
// fingerprint, so a resumed run can never silently mix cost models.
const magic = "HMM3GPUCKPT\x02"

// headerSize is the byte length of the magic + fingerprint + mode
// prologue.
const headerSize = len(magic) + 32 + 1

// recordHeaderSize frames every record body: u32 length + u32 CRC.
const recordHeaderSize = 8

// bodyFixedSize is the fixed portion of a record body (seq, offset,
// numSeqs, residues) preceding the payload.
const bodyFixedSize = 32

// MaxRecordSize bounds a single record's frame so a corrupt length
// field cannot force a multi-gigabyte allocation during replay.
const MaxRecordSize = 1 << 30

// Fingerprint identifies the run configuration a journal belongs to:
// the model, calibration, and chunking parameters that determine batch
// identity and batch results. Resuming under a different fingerprint
// is refused — the journaled records would merge into a different
// stream.
type Fingerprint [32]byte

func (f Fingerprint) String() string { return fmt.Sprintf("%x", f[:8]) }

// Record is one journaled batch result.
type Record struct {
	// Seq is the batch's ordinal in stream order; the producer's
	// deterministic chunking makes it stable across runs.
	Seq uint64
	// Offset is the global database index of the batch's first
	// sequence; replayed hit indexes are rebased by it.
	Offset uint64
	// NumSeqs and Residues describe the batch's extent, cross-checked
	// against the re-chunked stream on resume.
	NumSeqs  uint64
	Residues uint64
	// Payload is the engine's opaque encoding of the batch result.
	Payload []byte
}

// CorruptError reports a framed record whose checksum or structure is
// wrong — damage replay must not paper over.
type CorruptError struct {
	// Index is the record's ordinal in the journal (0-based).
	Index int
	// Off is the file offset of the record's frame header.
	Off int64
	// Reason describes the damage.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint: record %d at offset %d corrupt: %s", e.Index, e.Off, e.Reason)
}

// FingerprintError reports a journal written under a different run
// configuration (model, -batchres, calibration, ...).
type FingerprintError struct {
	Want, Got Fingerprint
}

func (e *FingerprintError) Error() string {
	return fmt.Sprintf("checkpoint: journal fingerprint %s does not match this run's configuration %s (different model, -batchres, or thresholds): refusing to resume",
		e.Got, e.Want)
}

// ModeMismatchError reports a journal written under a different
// simulator mode (-sim fast vs cycles). The two modes are
// result-identical by construction, but a resumed run that silently
// mixed cost models would corrupt every timing artifact (traces,
// metrics, benchmark records), so the mix is refused explicitly.
type ModeMismatchError struct {
	// Want is this run's mode; Got is the journal's.
	Want, Got byte
}

// modeName renders the journal's mode byte with the CLI spelling used
// by the -sim flag (the only two values current writers produce).
func modeName(m byte) string {
	switch m {
	case 0:
		return "cycles"
	case 1:
		return "fast"
	}
	return fmt.Sprintf("mode-%d", m)
}

func (e *ModeMismatchError) Error() string {
	return fmt.Sprintf("checkpoint: journal was written with -sim %s but this run uses -sim %s: refusing to resume across cost models (rerun with -sim %s, or start fresh without -resume)",
		modeName(e.Got), modeName(e.Want), modeName(e.Got))
}

// VersionError reports a journal written by a different format version
// of this code (the magic matched but the version byte did not).
type VersionError struct {
	Want, Got byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("checkpoint: journal format version %d, this build reads version %d: refusing to resume", e.Got, e.Want)
}

// Stats counts the journal's activity for one run, exported through
// internal/obs.
type Stats struct {
	// Journaled is the number of records appended (and made durable)
	// by this run.
	Journaled int
	// Replayed is the number of records recovered from the journal on
	// resume.
	Replayed int
	// DroppedTail is the number of truncated tail records dropped
	// during replay (0 or 1: only the final record can be torn).
	DroppedTail int
	// Syncs is the number of fsync calls issued.
	Syncs int
}

// Record merges the checkpoint counters into reg. All three headline
// counters are always emitted, so a clean run exports explicit zeros.
func (s Stats) Record(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.AddInt("hmmer_ckpt_batches_journaled_total", int64(s.Journaled))
	reg.AddInt("hmmer_ckpt_batches_replayed_total", int64(s.Replayed))
	reg.AddInt("hmmer_ckpt_batches_dropped_tail_total", int64(s.DroppedTail))
	reg.AddInt("hmmer_ckpt_syncs_total", int64(s.Syncs))
	reg.Help("hmmer_ckpt_batches_journaled_total",
		"batch results appended and fsync'd to the crash-recovery journal")
	reg.Help("hmmer_ckpt_batches_replayed_total",
		"batch results recovered from the journal on resume")
	reg.Help("hmmer_ckpt_batches_dropped_tail_total",
		"truncated tail records dropped during journal replay")
	reg.Help("hmmer_ckpt_syncs_total",
		"fsync calls issued by the journal")
}

// Options configures a journal.
type Options struct {
	// SyncEvery is the fsync cadence: 1 (or 0) syncs after every
	// append — the full WAL guarantee, one fsync per batch — while N>1
	// amortises the fsync over N appends, trading the last <N batches
	// for throughput (they re-execute on resume; correctness is
	// unaffected because un-synced batches are simply not skipped).
	SyncEvery int
	// Crash, when non-nil, injects a crash at a chosen append and
	// window (see CrashPlan) for testing every recovery path.
	Crash *CrashPlan
	// Mode is the simulator mode the run executes under (the byte value
	// of simt.Mode: 0 cycles, 1 fast). It is stamped into the journal
	// header next to the fingerprint; Resume refuses a journal whose
	// mode differs with a *ModeMismatchError, so a resumed run can
	// never silently mix cost models.
	Mode byte
}

func (o Options) syncEvery() int {
	if o.SyncEvery < 1 {
		return 1
	}
	return o.SyncEvery
}

// Journal is an append-only, checksummed, fsync'd record log. Appends
// are serialised internally; the scheduler's device workers commit
// concurrently.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	opts    Options
	written int64 // bytes written (may be ahead of synced)
	synced  int64 // bytes known durable
	pending int   // appends since the last fsync
	appends int   // total appends attempted (crash-plan ordinal)
	crashed bool
	stats   Stats
}

// Create starts a fresh journal at path (truncating any previous one)
// stamped with the run's fingerprint. The header is fsync'd before
// Create returns, so an empty journal is already well-formed.
func Create(path string, fp Fingerprint, opts Options) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic...)
	hdr = append(hdr, fp[:]...)
	hdr = append(hdr, opts.Mode)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: writing header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: syncing header: %w", err)
	}
	j := &Journal{f: f, opts: opts, written: int64(headerSize), synced: int64(headerSize)}
	j.stats.Syncs++
	return j, nil
}

// Resume replays the journal at path and reopens it for appending.
// Every intact record is returned in journal (commit) order; a
// truncated tail record is dropped (counted in Stats.DroppedTail) and
// the file truncated back to its last intact record, so subsequent
// appends start from a clean frame boundary. A checksum failure,
// structural damage, or a fingerprint mismatch aborts with a typed
// error — those journals must not be resumed from.
func Resume(path string, fp Fingerprint, opts Options) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	j := &Journal{f: f, opts: opts}
	recs, good, err := j.replay(fp)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop the torn tail (if any) so appends resume on a frame
	// boundary, and make the truncation durable before reporting the
	// journal open.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("checkpoint: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	j.stats.Syncs++
	j.written, j.synced = good, good
	j.stats.Replayed = len(recs)
	return j, recs, nil
}

// replay reads the header and every record, returning the intact
// records and the file offset just past the last intact one.
func (j *Journal) replay(fp Fingerprint) ([]Record, int64, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(j.f, hdr); err != nil {
		return nil, 0, fmt.Errorf("checkpoint: journal header unreadable (file shorter than %d bytes): %w", headerSize, err)
	}
	if string(hdr[:len(magic)-1]) != magic[:len(magic)-1] {
		return nil, 0, fmt.Errorf("checkpoint: not a journal file (bad magic)")
	}
	if hdr[len(magic)-1] != magic[len(magic)-1] {
		return nil, 0, &VersionError{Want: magic[len(magic)-1], Got: hdr[len(magic)-1]}
	}
	var got Fingerprint
	copy(got[:], hdr[len(magic):len(magic)+32])
	if got != fp {
		return nil, 0, &FingerprintError{Want: fp, Got: got}
	}
	if mode := hdr[len(magic)+32]; mode != j.opts.Mode {
		return nil, 0, &ModeMismatchError{Want: j.opts.Mode, Got: mode}
	}

	var recs []Record
	good := int64(headerSize)
	frame := make([]byte, recordHeaderSize)
	for i := 0; ; i++ {
		_, err := io.ReadFull(j.f, frame)
		if err == io.EOF {
			return recs, good, nil
		}
		if err == io.ErrUnexpectedEOF {
			// Torn frame header: the process died mid-append.
			j.stats.DroppedTail++
			return recs, good, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("checkpoint: %w", err)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length < bodyFixedSize || length > MaxRecordSize {
			return nil, 0, &CorruptError{Index: i, Off: good, Reason: fmt.Sprintf("implausible frame length %d", length)}
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(j.f, body); err != nil {
			if err == io.ErrUnexpectedEOF {
				// Torn body: same mid-append death, later window.
				j.stats.DroppedTail++
				return recs, good, nil
			}
			return nil, 0, fmt.Errorf("checkpoint: %w", err)
		}
		if crc32.ChecksumIEEE(body) != sum {
			// A complete frame with a wrong sum is bit rot, not a torn
			// write; a torn write cannot produce a full-length body.
			return nil, 0, &CorruptError{Index: i, Off: good, Reason: "checksum mismatch"}
		}
		recs = append(recs, Record{
			Seq:      binary.LittleEndian.Uint64(body[0:8]),
			Offset:   binary.LittleEndian.Uint64(body[8:16]),
			NumSeqs:  binary.LittleEndian.Uint64(body[16:24]),
			Residues: binary.LittleEndian.Uint64(body[24:32]),
			Payload:  body[bodyFixedSize:],
		})
		good += int64(recordHeaderSize) + int64(length)
	}
}

// Append journals one batch result. The record is made durable (per
// the SyncEvery cadence) before Append returns, which is what lets the
// caller acknowledge the batch's merge afterwards. Appends after an
// injected crash keep failing with ErrInjectedCrash, modelling a dead
// process.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.crashed {
		return ErrInjectedCrash
	}
	ordinal := j.appends
	j.appends++

	if j.opts.Crash.fires(ordinal, WindowBeforeAppend) {
		return j.crashLocked(0)
	}

	body := make([]byte, bodyFixedSize+len(rec.Payload))
	binary.LittleEndian.PutUint64(body[0:8], rec.Seq)
	binary.LittleEndian.PutUint64(body[8:16], rec.Offset)
	binary.LittleEndian.PutUint64(body[16:24], rec.NumSeqs)
	binary.LittleEndian.PutUint64(body[24:32], rec.Residues)
	copy(body[bodyFixedSize:], rec.Payload)
	frame := make([]byte, recordHeaderSize, recordHeaderSize+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	frame = append(frame, body...)

	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: append: %w", err)
	}
	j.written += int64(len(frame))

	if j.opts.Crash.fires(ordinal, WindowAfterAppend) {
		// Died after write(2), before fsync: the record sits in the page
		// cache. Power loss can persist any prefix; keep a torn half so
		// replay exercises the truncated-tail path.
		return j.crashLocked(int64(len(frame)) / 2)
	}

	j.pending++
	if j.pending >= j.opts.syncEvery() {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("checkpoint: fsync: %w", err)
		}
		j.stats.Syncs++
		j.pending = 0
		j.synced = j.written
	}

	if j.opts.Crash.fires(ordinal, WindowAfterSync) {
		// Died after the record was durable but before the merge was
		// acknowledged: resume must replay it, and the producer must
		// skip it — the duplicate-merge window.
		return j.crashLocked(0)
	}

	j.stats.Journaled++
	return nil
}

// crashLocked simulates the host dying with unsynced page cache lost:
// the file is cut back to the synced length plus tornExtra bytes of
// the unsynced tail, and every later Append fails.
func (j *Journal) crashLocked(tornExtra int64) error {
	j.crashed = true
	keep := j.synced + tornExtra
	if keep > j.written {
		keep = j.written
	}
	if err := j.f.Truncate(keep); err != nil {
		return fmt.Errorf("checkpoint: simulating crash: %w", err)
	}
	j.f.Sync()
	return ErrInjectedCrash
}

// Sync forces any batched appends to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.crashed || j.pending == 0 {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: fsync: %w", err)
	}
	j.stats.Syncs++
	j.pending = 0
	j.synced = j.written
	return nil
}

// Close syncs any batched appends and closes the file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	serr := j.syncLocked()
	cerr := j.f.Close()
	j.f = nil
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return fmt.Errorf("checkpoint: %w", cerr)
	}
	return nil
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Size returns the journal's current byte length (written, not
// necessarily synced).
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.written
}

// Exists reports whether a journal file is present at path.
func Exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
