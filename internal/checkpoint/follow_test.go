package checkpoint

import (
	"errors"
	"os"
	"testing"
)

func mustPoll(t *testing.T, fo *Follower) []Record {
	t.Helper()
	recs, err := fo.Poll()
	if err != nil {
		t.Fatalf("Poll: %v", err)
	}
	return recs
}

// TestFollowLiveAppends tails a journal while its appender is alive:
// each Poll returns exactly the records appended since the last one.
func TestFollowLiveAppends(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	fo, err := OpenFollower(path, fp(1), FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Close()

	if got := mustPoll(t, fo); len(got) != 0 {
		t.Fatalf("fresh journal: Poll returned %d records", len(got))
	}

	mustAppend(t, j, rec(0, "alpha"))
	mustAppend(t, j, rec(1, "beta"))
	got := mustPoll(t, fo)
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 1 || string(got[1].Payload) != "beta" {
		t.Fatalf("Poll after two appends = %+v", got)
	}
	// No re-delivery.
	if got := mustPoll(t, fo); len(got) != 0 {
		t.Fatalf("idle Poll returned %d records", len(got))
	}
	mustAppend(t, j, rec(2, "gamma"))
	got = mustPoll(t, fo)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("Poll after third append = %+v", got)
	}
	if fo.Delivered() != 3 {
		t.Fatalf("Delivered = %d, want 3", fo.Delivered())
	}
}

// TestFollowUnsyncedAppendsVisible pins the fsync-race semantics: with
// SyncEvery>1 the appender's records sit in the page cache unsynced,
// and the follower (same page cache) still sees them — "newly fsynced"
// is a lower bound on what Poll returns, not an upper one.
func TestFollowUnsyncedAppendsVisible(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	fo, err := OpenFollower(path, fp(1), FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Close()

	mustAppend(t, j, rec(0, "unsynced"))
	if st := j.Stats(); st.Syncs != 1 { // only the header sync so far
		t.Fatalf("Syncs = %d, want 1 (append must still be pending)", st.Syncs)
	}
	got := mustPoll(t, fo)
	if len(got) != 1 || string(got[0].Payload) != "unsynced" {
		t.Fatalf("Poll = %+v, want the unsynced record", got)
	}
}

// TestFollowMidRecordTail tails while the appender is mid-record: the
// torn bytes at the frontier are pending, not an error, and once the
// remaining bytes land the record is delivered.
func TestFollowMidRecordTail(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(0, "complete"))
	j.Close()

	// Reconstruct the full frame of record 1 by appending it to a copy,
	// then land it on the real file byte range by byte range.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	j2, _, err := Resume(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j2, rec(1, "arrives-in-pieces"))
	j2.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := whole[len(full):]
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}

	fo, err := OpenFollower(path, fp(1), FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Close()
	if got := mustPoll(t, fo); len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("initial Poll = %+v, want record 0", got)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Land the frame in three slices: cut inside the frame header, then
	// inside the body, then the rest. After each partial write the
	// frontier must hold (no records, no error).
	cuts := []int{recordHeaderSize - 3, recordHeaderSize + 5, len(frame)}
	prev := 0
	for _, cut := range cuts[:len(cuts)-1] {
		if _, err := f.Write(frame[prev:cut]); err != nil {
			t.Fatal(err)
		}
		prev = cut
		if got := mustPoll(t, fo); len(got) != 0 {
			t.Fatalf("Poll mid-write (at %d bytes) returned %d records", cut, len(got))
		}
	}
	if _, err := f.Write(frame[prev:]); err != nil {
		t.Fatal(err)
	}
	got := mustPoll(t, fo)
	if len(got) != 1 || got[0].Seq != 1 || string(got[0].Payload) != "arrives-in-pieces" {
		t.Fatalf("Poll after frame completion = %+v", got)
	}
}

// TestFollowTornTailOverwritten models a primary that dies mid-append
// (torn tail on disk), resumes (Resume truncates the torn bytes), and
// re-appends: the follower polls across all three states and must end
// up with exactly the committed records.
func TestFollowTornTailOverwritten(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{Crash: CrashAfter(1, WindowAfterAppend)})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := OpenFollower(path, fp(1), FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Close()

	mustAppend(t, j, rec(0, "durable"))
	if got := mustPoll(t, fo); len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("Poll = %+v, want record 0", got)
	}
	// The injected crash leaves half of record 1's frame on disk.
	if err := j.Append(rec(1, "torn-on-disk-payload")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v, want ErrInjectedCrash", err)
	}
	j.Close()
	if got := mustPoll(t, fo); len(got) != 0 {
		t.Fatalf("Poll over torn tail returned %d records", len(got))
	}

	// Primary restarts: Resume truncates the torn tail and re-appends a
	// different record over the same byte range.
	j2, recs, err := Resume(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("Resume recovered %d records, want 1", len(recs))
	}
	mustAppend(t, j2, rec(1, "retried-after-restart"))
	j2.Close()

	got := mustPoll(t, fo)
	if len(got) != 1 || got[0].Seq != 1 || string(got[0].Payload) != "retried-after-restart" {
		t.Fatalf("Poll after overwrite = %+v, want the retried record", got)
	}
}

// TestFollowerRestartFromOffset persists the frontier and reopens a
// new follower there: only records past the offset are delivered.
func TestFollowerRestartFromOffset(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, rec(0, "before"))
	mustAppend(t, j, rec(1, "before-too"))

	fo, err := OpenFollower(path, fp(1), FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustPoll(t, fo); len(got) != 2 {
		t.Fatalf("first reader got %d records, want 2", len(got))
	}
	frontier := fo.Offset()
	fo.Close()

	mustAppend(t, j, rec(2, "after"))
	fo2, err := OpenFollower(path, fp(1), FollowerOptions{Offset: frontier})
	if err != nil {
		t.Fatal(err)
	}
	defer fo2.Close()
	got := mustPoll(t, fo2)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("restarted reader Poll = %+v, want only record 2", got)
	}
}

func TestFollowerHeaderValidation(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{Mode: 1})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	var fe *FingerprintError
	if _, err := OpenFollower(path, fp(2), FollowerOptions{Mode: 1}); !errors.As(err, &fe) {
		t.Fatalf("wrong fingerprint: err = %v, want *FingerprintError", err)
	}
	var me *ModeMismatchError
	if _, err := OpenFollower(path, fp(1), FollowerOptions{Mode: 0}); !errors.As(err, &me) {
		t.Fatalf("wrong mode: err = %v, want *ModeMismatchError", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(magic)-1] = 0x7f
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var ve *VersionError
	if _, err := OpenFollower(path, fp(1), FollowerOptions{Mode: 1}); !errors.As(err, &ve) {
		t.Fatalf("forged version: err = %v, want *VersionError", err)
	}
}

// TestFollowerShrinkDetected: truncating the journal below the
// frontier (file replaced out from under the reader) is a hard error,
// not a silent reset.
func TestFollowerShrinkDetected(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(0, "soon-gone"))
	j.Close()

	fo, err := OpenFollower(path, fp(1), FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Close()
	if got := mustPoll(t, fo); len(got) != 1 {
		t.Fatalf("Poll = %d records, want 1", len(got))
	}
	if err := os.Truncate(path, int64(headerSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := fo.Poll(); err == nil {
		t.Fatal("Poll over a shrunk journal succeeded")
	}
}

// TestTakeOverSettlesTail promotes a follower whose journal holds two
// polled records, one unpolled tail record, and a torn half-frame: the
// tail record comes back from TakeOver, the torn bytes are truncated,
// and the returned journal appends cleanly from the settled boundary.
func TestTakeOverSettlesTail(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{Crash: CrashAfter(3, WindowAfterAppend)})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := OpenFollower(path, fp(1), FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}

	mustAppend(t, j, rec(0, "polled-a"))
	mustAppend(t, j, rec(1, "polled-b"))
	if got := mustPoll(t, fo); len(got) != 2 {
		t.Fatalf("Poll = %d records, want 2", len(got))
	}
	mustAppend(t, j, rec(2, "unpolled-tail"))
	if err := j.Append(rec(3, "dies-mid-append")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v, want ErrInjectedCrash", err)
	}
	j.Close()

	j2, tail, err := fo.TakeOver(Options{})
	if err != nil {
		t.Fatalf("TakeOver: %v", err)
	}
	if len(tail) != 1 || tail[0].Seq != 2 || string(tail[0].Payload) != "unpolled-tail" {
		t.Fatalf("TakeOver tail = %+v, want record 2", tail)
	}
	st := j2.Stats()
	if st.Replayed != 3 || st.DroppedTail != 1 {
		t.Fatalf("stats = %+v, want Replayed 3, DroppedTail 1", st)
	}
	mustAppend(t, j2, rec(3, "appended-by-standby"))
	j2.Close()

	// The settled journal resumes as 4 clean records.
	j3, recs, err := Resume(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(recs) != 4 || string(recs[3].Payload) != "appended-by-standby" {
		t.Fatalf("Resume after takeover = %d records", len(recs))
	}
	// The follower is consumed.
	if _, err := fo.Poll(); err == nil {
		t.Fatal("Poll after TakeOver succeeded")
	}
}

// TestTakeOverRejectsBitRot: a complete frame with a bad checksum past
// the frontier is corruption, not a torn tail — TakeOver must refuse.
func TestTakeOverRejectsBitRot(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(0, "clean"))
	fo, err := OpenFollower(path, fp(1), FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustPoll(t, fo); len(got) != 1 {
		t.Fatalf("Poll = %d records, want 1", len(got))
	}
	mustAppend(t, j, rec(1, "rotten-payload"))
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = fo.TakeOver(Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("TakeOver over bit rot: err = %v, want *CorruptError", err)
	}
}
