package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "run.ckpt")
}

func fp(b byte) Fingerprint {
	var f Fingerprint
	for i := range f {
		f[i] = b
	}
	return f
}

func mustAppend(t *testing.T, j *Journal, rec Record) {
	t.Helper()
	if err := j.Append(rec); err != nil {
		t.Fatalf("Append(%d): %v", rec.Seq, err)
	}
}

func rec(seq uint64, payload string) Record {
	return Record{Seq: seq, Offset: seq * 10, NumSeqs: 10, Residues: 1000 + seq, Payload: []byte(payload)}
}

func TestRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{rec(0, "alpha"), rec(1, ""), rec(2, "gamma-gamma")}
	for _, r := range want {
		mustAppend(t, j, r)
	}
	if st := j.Stats(); st.Journaled != 3 {
		t.Fatalf("Journaled = %d, want 3", st.Journaled)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got, err := Resume(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		w := want[i]
		if r.Seq != w.Seq || r.Offset != w.Offset || r.NumSeqs != w.NumSeqs || r.Residues != w.Residues || string(r.Payload) != string(w.Payload) {
			t.Errorf("record %d = %+v, want %+v", i, r, w)
		}
	}
	st := j2.Stats()
	if st.Replayed != 3 || st.DroppedTail != 0 {
		t.Fatalf("stats = %+v, want Replayed 3, DroppedTail 0", st)
	}
}

func TestResumeEmptyJournal(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, recs, err := Resume(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from empty journal", len(recs))
	}
}

func TestFingerprintMismatchRefusesResume(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(0, "x"))
	j.Close()

	_, _, err = Resume(path, fp(2), Options{})
	var fe *FingerprintError
	if !errors.As(err, &fe) {
		t.Fatalf("Resume with wrong fingerprint: err = %v, want *FingerprintError", err)
	}
	if fe.Want != fp(2) || fe.Got != fp(1) {
		t.Fatalf("FingerprintError = %+v", fe)
	}
}

func TestModeMismatchRefusesResume(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{Mode: 1}) // written in fast mode
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(0, "x"))
	j.Close()

	_, _, err = Resume(path, fp(1), Options{Mode: 0}) // resumed in cycles mode
	var me *ModeMismatchError
	if !errors.As(err, &me) {
		t.Fatalf("Resume across sim modes: err = %v, want *ModeMismatchError", err)
	}
	if me.Want != 0 || me.Got != 1 {
		t.Fatalf("ModeMismatchError = %+v, want {Want:0 Got:1}", me)
	}
	for _, frag := range []string{"fast", "cycles", "refusing to resume"} {
		if !strings.Contains(me.Error(), frag) {
			t.Errorf("error %q does not mention %q", me.Error(), frag)
		}
	}

	// Matching mode resumes fine.
	j2, recs, err := Resume(path, fp(1), Options{Mode: 1})
	if err != nil {
		t.Fatalf("Resume with matching mode: %v", err)
	}
	defer j2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
}

func TestVersionMismatchRefusesResume(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(magic)-1] = 0x7f // forge a future format version
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Resume(path, fp(1), Options{})
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("Resume with forged version: err = %v, want *VersionError", err)
	}
	if ve.Got != 0x7f {
		t.Fatalf("VersionError = %+v, want Got 0x7f", ve)
	}
}

// TestTornTailDropped truncates the file mid-record at several
// depths: replay must return every intact record, count one dropped
// tail, and leave the file appendable from a clean frame boundary.
func TestTornTailDropped(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(0, "first-record"))
	mustAppend(t, j, rec(1, "second-record"))
	whole := j.Size()
	mustAppend(t, j, rec(2, "third-record-gets-torn"))
	torn := j.Size()
	j.Close()

	// Tear at every byte depth of the final record: frame header cut,
	// body cut, single trailing byte.
	for _, keep := range []int64{whole + 1, whole + recordHeaderSize - 1, whole + recordHeaderSize + 3, torn - 1} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := filepath.Join(t.TempDir(), "torn.ckpt")
		if err := os.WriteFile(cut, data[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs, err := Resume(cut, fp(1), Options{})
		if err != nil {
			t.Fatalf("keep=%d: %v", keep, err)
		}
		if len(recs) != 2 {
			t.Fatalf("keep=%d: replayed %d records, want 2", keep, len(recs))
		}
		if st := j2.Stats(); st.DroppedTail != 1 {
			t.Fatalf("keep=%d: DroppedTail = %d, want 1", keep, st.DroppedTail)
		}
		// The journal must be appendable after the tear: the torn bytes
		// were truncated away.
		mustAppend(t, j2, rec(2, "third-record-retried"))
		j2.Close()
		j3, recs, err := Resume(cut, fp(1), Options{})
		if err != nil {
			t.Fatalf("keep=%d reopen: %v", keep, err)
		}
		if len(recs) != 3 || string(recs[2].Payload) != "third-record-retried" {
			t.Fatalf("keep=%d reopen: got %d records", keep, len(recs))
		}
		j3.Close()
	}
}

// TestFlippedBitRejected flips one payload bit inside a non-tail
// record: replay must fail with a CorruptError, not silently merge or
// silently drop.
func TestFlippedBitRejected(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(0, "victim-payload"))
	mustAppend(t, j, rec(1, "follower"))
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+recordHeaderSize+bodyFixedSize+2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Resume(path, fp(1), Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Resume with flipped bit: err = %v, want *CorruptError", err)
	}
	if ce.Index != 0 {
		t.Fatalf("CorruptError.Index = %d, want 0", ce.Index)
	}
}

func TestImplausibleLengthRejected(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(0, "x"))
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Stamp a huge frame length; the body bytes that follow are intact,
	// so this is structural damage, not a torn tail.
	data[headerSize] = 0xff
	data[headerSize+1] = 0xff
	data[headerSize+2] = 0xff
	data[headerSize+3] = 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Resume(path, fp(1), Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
}

func TestNotAJournal(t *testing.T) {
	path := tmpJournal(t)
	if err := os.WriteFile(path, []byte(">seq1\nACDEFGHIKLMNPQRSTVWY\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(path, fp(1), Options{}); err == nil {
		t.Fatal("Resume accepted a FASTA file as a journal")
	}
}

// TestCrashWindows drives each injection window and checks exactly
// what survives.
func TestCrashWindows(t *testing.T) {
	cases := []struct {
		window      Window
		survives    int // records recovered on resume
		droppedTail int
	}{
		// Crash before append 1 writes anything: only record 0 is on
		// disk, cleanly.
		{WindowBeforeAppend, 1, 0},
		// Crash after append 1's write but before its fsync: the torn
		// prefix is dropped on replay.
		{WindowAfterAppend, 1, 1},
		// Crash after append 1's fsync: record 1 is durable and must be
		// recovered even though the process died before the merge-ack.
		{WindowAfterSync, 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.window.String(), func(t *testing.T) {
			path := tmpJournal(t)
			j, err := Create(path, fp(1), Options{Crash: CrashAfter(1, tc.window)})
			if err != nil {
				t.Fatal(err)
			}
			mustAppend(t, j, rec(0, "safe"))
			err = j.Append(rec(1, "doomed-record-payload"))
			if !errors.Is(err, ErrInjectedCrash) {
				t.Fatalf("Append at crash point: err = %v, want ErrInjectedCrash", err)
			}
			// The process is "dead": further appends fail too.
			if err := j.Append(rec(2, "after")); !errors.Is(err, ErrInjectedCrash) {
				t.Fatalf("Append after crash: err = %v, want ErrInjectedCrash", err)
			}
			j.Close()

			j2, recs, err := Resume(path, fp(1), Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if len(recs) != tc.survives {
				t.Fatalf("recovered %d records, want %d", len(recs), tc.survives)
			}
			if st := j2.Stats(); st.DroppedTail != tc.droppedTail {
				t.Fatalf("DroppedTail = %d, want %d", st.DroppedTail, tc.droppedTail)
			}
		})
	}
}

// TestBatchedSyncLosesUnsyncedTail checks the SyncEvery>1 trade-off:
// a crash loses the records since the last fsync (they re-execute on
// resume) but never yields a corrupt journal.
func TestBatchedSyncLosesUnsyncedTail(t *testing.T) {
	path := tmpJournal(t)
	// Sync every 3: appends 0,1,2 sync; 3,4 sit in the page cache when
	// the crash fires at append 5 (before-append keeps no torn prefix).
	j, err := Create(path, fp(1), Options{SyncEvery: 3, Crash: CrashAfter(5, WindowBeforeAppend)})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		mustAppend(t, j, rec(i, "payload"))
	}
	if err := j.Append(rec(5, "payload")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v, want ErrInjectedCrash", err)
	}
	j.Close()

	j2, recs, err := Resume(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3 (unsynced tail lost)", len(recs))
	}
}

func TestResumeAfterResumeConverges(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{Crash: CrashAfter(2, WindowAfterAppend)})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(0, "a"))
	mustAppend(t, j, rec(1, "b"))
	if err := j.Append(rec(2, "c")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("first crash: %v", err)
	}
	j.Close()

	// First resume crashes again on its own first append.
	j2, recs, err := Resume(path, fp(1), Options{Crash: CrashAfter(0, WindowAfterAppend)})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("first resume recovered %d, want 2", len(recs))
	}
	if err := j2.Append(rec(2, "c")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("second crash: %v", err)
	}
	j2.Close()

	// Second resume completes.
	j3, recs, err := Resume(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("second resume recovered %d, want 2", len(recs))
	}
	mustAppend(t, j3, rec(2, "c"))
	mustAppend(t, j3, rec(3, "d"))
	j3.Close()

	j4, recs, err := Resume(path, fp(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j4.Close()
	if len(recs) != 4 {
		t.Fatalf("final journal holds %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has Seq %d", i, r.Seq)
		}
	}
}

func TestParseCrash(t *testing.T) {
	ok := []struct {
		spec string
		want CrashPlan
	}{
		{"3", CrashPlan{After: 3, Window: WindowAfterSync}},
		{"0:before-append", CrashPlan{After: 0, Window: WindowBeforeAppend}},
		{"7:after-append", CrashPlan{After: 7, Window: WindowAfterAppend}},
		{"2:after-sync", CrashPlan{After: 2, Window: WindowAfterSync}},
	}
	for _, tc := range ok {
		got, err := ParseCrash(tc.spec)
		if err != nil {
			t.Fatalf("ParseCrash(%q): %v", tc.spec, err)
		}
		if *got != tc.want {
			t.Fatalf("ParseCrash(%q) = %+v, want %+v", tc.spec, *got, tc.want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "3:mid-append", "3:"} {
		if _, err := ParseCrash(bad); err == nil {
			t.Fatalf("ParseCrash(%q) accepted", bad)
		}
	}
}

func TestSyncEveryCadence(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, fp(1), Options{SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		mustAppend(t, j, rec(i, "p"))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Header sync + 2 cadence syncs (after appends 3 and 7) + close
	// sync for the final 2 pending.
	if st := j.Stats(); st.Syncs != 4 {
		t.Fatalf("Syncs = %d, want 4", st.Syncs)
	}
}
