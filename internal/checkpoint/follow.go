// Journal following: the hot-standby half of the checkpoint package.
// A Follower opens a live journal read-only and streams newly durable
// records to a second process (the standby coordinator of DESIGN §2j)
// while the primary is still appending. The frontier discipline makes
// tailing safe against every mid-append state the appender can leave
// behind:
//
//   - Poll only advances past complete, CRC-valid frames. A short
//     frame header, short body, or checksum mismatch at the tail is
//     treated as "the appender is mid-record" — Poll returns what is
//     complete and re-reads from the same frontier next time, so a
//     torn tail that is later overwritten by the real bytes (the
//     appender finishing its write) is picked up cleanly.
//   - Nothing before the frontier is ever re-interpreted, so a record
//     is delivered exactly once per Follower.
//   - TakeOver converts the read-only tail into an appending Journal
//     with Resume's strict semantics: the torn tail (if any) is
//     truncated, and a complete frame with a bad checksum — bit rot,
//     not a torn write — refuses with *CorruptError.
//
// The follower reads whatever bytes the OS makes visible; on a shared
// filesystem that is the page cache, which includes not-yet-fsynced
// appends. That is safe: every complete CRC-valid frame the primary
// wrote is a record the primary either acknowledged or was about to,
// and re-merging it on takeover is idempotent under the (seq, epoch)
// fence. "Newly fsynced" is therefore a lower bound on what Poll
// returns, not an upper one.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// FollowerOptions configures a Follower.
type FollowerOptions struct {
	// Mode is the simulator mode this reader expects (see
	// Options.Mode); a journal stamped with a different mode refuses
	// with *ModeMismatchError.
	Mode byte
	// Offset, when nonzero, resumes tailing from a byte offset
	// previously returned by Follower.Offset — a restarted reader
	// skips records it already consumed. Zero starts just past the
	// header.
	Offset int64
}

// Follower tails a live journal. It is not safe for concurrent use.
type Follower struct {
	f    *os.File
	fp   Fingerprint
	mode byte
	// off is the read frontier: the file offset just past the last
	// complete, CRC-valid record returned by Poll.
	off int64
	// delivered counts records returned by Poll over the Follower's
	// lifetime.
	delivered int
	closed    bool
}

// OpenFollower opens the journal at path for tailing, validating its
// header against fp and opts.Mode exactly as Resume does. The file
// must already hold a complete header (Create fsyncs it before
// returning, so a journal that exists is header-complete).
func OpenFollower(path string, fp Fingerprint, opts FollowerOptions) (*Follower, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := readHeader(f, fp, opts.Mode); err != nil {
		f.Close()
		return nil, err
	}
	off := int64(headerSize)
	if opts.Offset > off {
		off = opts.Offset
	}
	return &Follower{f: f, fp: fp, mode: opts.Mode, off: off}, nil
}

// readHeader validates the journal prologue at the start of f,
// leaving the read position just past it. The checks (and their typed
// errors) mirror Journal.replay.
func readHeader(f *os.File, fp Fingerprint, mode byte) error {
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return fmt.Errorf("checkpoint: journal header unreadable (file shorter than %d bytes): %w", headerSize, err)
	}
	if string(hdr[:len(magic)-1]) != magic[:len(magic)-1] {
		return fmt.Errorf("checkpoint: not a journal file (bad magic)")
	}
	if hdr[len(magic)-1] != magic[len(magic)-1] {
		return &VersionError{Want: magic[len(magic)-1], Got: hdr[len(magic)-1]}
	}
	var got Fingerprint
	copy(got[:], hdr[len(magic):len(magic)+32])
	if got != fp {
		return &FingerprintError{Want: fp, Got: got}
	}
	if m := hdr[len(magic)+32]; m != mode {
		return &ModeMismatchError{Want: mode, Got: m}
	}
	return nil
}

// Poll reads every complete record appended since the previous Poll
// (or since opts.Offset) and returns them in journal order. An
// incomplete or checksum-failing tail is not an error — the appender
// may be mid-record, or the write may still be landing — so Poll
// returns the complete prefix and retries the tail on the next call.
// The only hard error is the file shrinking below the frontier, which
// means the journal was truncated or replaced out from under the
// reader.
func (fo *Follower) Poll() ([]Record, error) {
	if fo.closed {
		return nil, fmt.Errorf("checkpoint: follower is closed")
	}
	fi, err := fo.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	size := fi.Size()
	if size < fo.off {
		return nil, fmt.Errorf("checkpoint: journal shrank from %d to %d bytes: truncated or replaced underneath the follower", fo.off, size)
	}
	var recs []Record
	for {
		rec, next, ok, err := readRecordAt(fo.f, fo.off, size)
		if err != nil {
			return recs, err
		}
		if !ok {
			return recs, nil
		}
		recs = append(recs, rec)
		fo.delivered++
		fo.off = next
	}
}

// readRecordAt attempts to read one complete record at offset off in a
// file of the given size. ok=false with a nil error means the bytes at
// off do not (yet) form a complete valid record — the tail frontier.
func readRecordAt(f *os.File, off, size int64) (rec Record, next int64, ok bool, err error) {
	if off+recordHeaderSize > size {
		return rec, 0, false, nil
	}
	var hdr [recordHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return rec, 0, false, fmt.Errorf("checkpoint: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length < bodyFixedSize || length > MaxRecordSize {
		// An implausible length at the frontier is indistinguishable
		// from a torn frame header mid-write; wait for the appender to
		// finish (or for TakeOver's strict pass to judge it).
		return rec, 0, false, nil
	}
	if off+recordHeaderSize+int64(length) > size {
		return rec, 0, false, nil
	}
	body := make([]byte, length)
	if _, err := f.ReadAt(body, off+recordHeaderSize); err != nil {
		return rec, 0, false, fmt.Errorf("checkpoint: %w", err)
	}
	if crc32.ChecksumIEEE(body) != sum {
		// The body bytes may still be landing out of order; treat as
		// pending and re-read next poll.
		return rec, 0, false, nil
	}
	rec = Record{
		Seq:      binary.LittleEndian.Uint64(body[0:8]),
		Offset:   binary.LittleEndian.Uint64(body[8:16]),
		NumSeqs:  binary.LittleEndian.Uint64(body[16:24]),
		Residues: binary.LittleEndian.Uint64(body[24:32]),
		Payload:  body[bodyFixedSize:],
	}
	return rec, off + recordHeaderSize + int64(length), true, nil
}

// Offset returns the current read frontier — the file offset just past
// the last record Poll returned. Persist it to restart a reader
// mid-file via FollowerOptions.Offset.
func (fo *Follower) Offset() int64 { return fo.off }

// Delivered returns the number of records this Follower has returned
// from Poll over its lifetime.
func (fo *Follower) Delivered() int { return fo.delivered }

// Close releases the follower's file handle. TakeOver closes it
// implicitly.
func (fo *Follower) Close() error {
	if fo.closed {
		return nil
	}
	fo.closed = true
	return fo.f.Close()
}

// TakeOver promotes the follower into the journal's appender: the
// standby has decided the primary is dead and is assuming its commit
// log. The file is reopened read-write and settled with Resume's
// strict semantics — any records past the frontier not yet returned by
// Poll are returned here (tail records), a torn tail is truncated
// away (counted in Stats.DroppedTail), and a complete frame with a bad
// checksum refuses with *CorruptError, because appending after bit rot
// would wedge a corrupt record into the committed prefix. The follower
// is closed either way; on success the returned Journal appends from
// the settled tail and its Stats.Replayed counts every record tailed
// across the follower's whole life (Poll + tail), so takeover metrics
// match a plain Resume of the same journal.
func (fo *Follower) TakeOver(opts Options) (*Journal, []Record, error) {
	if fo.closed {
		return nil, nil, fmt.Errorf("checkpoint: follower is closed")
	}
	frontier := fo.off
	prior := fo.delivered
	fo.Close()

	f, err := os.OpenFile(fo.f.Name(), os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	opts.Mode = fo.mode
	j := &Journal{f: f, opts: opts}
	if err := readHeader(f, fo.fp, fo.mode); err != nil {
		f.Close()
		return nil, nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	size := fi.Size()
	if size < frontier {
		f.Close()
		return nil, nil, fmt.Errorf("checkpoint: journal shrank from %d to %d bytes: truncated or replaced underneath the follower", frontier, size)
	}

	// Strict settle of the tail past the frontier: complete valid
	// frames are records; a complete frame failing its CRC is bit rot
	// (the primary is dead — nobody is still writing it); anything
	// shorter is the torn tail.
	var tail []Record
	good := frontier
	for i := prior; ; i++ {
		rec, next, ok, err := readRecordAt(f, good, size)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if !ok {
			if good+recordHeaderSize <= size {
				// A full frame header fits; decide torn vs corrupt the
				// way Resume does: a full-length body with a bad sum is
				// corruption, anything truncated is a torn tail.
				var hdr [recordHeaderSize]byte
				if _, err := f.ReadAt(hdr[:], good); err != nil {
					f.Close()
					return nil, nil, fmt.Errorf("checkpoint: %w", err)
				}
				length := binary.LittleEndian.Uint32(hdr[0:4])
				if length < bodyFixedSize || length > MaxRecordSize {
					f.Close()
					return nil, nil, &CorruptError{Index: i, Off: good, Reason: fmt.Sprintf("implausible frame length %d", length)}
				}
				if good+recordHeaderSize+int64(length) <= size {
					f.Close()
					return nil, nil, &CorruptError{Index: i, Off: good, Reason: "checksum mismatch"}
				}
			}
			if good < size {
				j.stats.DroppedTail++
			}
			break
		}
		tail = append(tail, rec)
		good = next
	}

	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("checkpoint: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	j.stats.Syncs++
	j.written, j.synced = good, good
	j.stats.Replayed = prior + len(tail)
	return j, tail, nil
}
