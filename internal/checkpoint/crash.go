package checkpoint

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrInjectedCrash is returned by Journal.Append when a CrashPlan
// fires. The process is modelled as dead from that point: the append
// did not happen (or only its synced prefix survived), and every later
// append fails the same way. Callers treat it like a host crash — the
// run aborts and must be resumed.
var ErrInjectedCrash = errors.New("checkpoint: injected crash")

// Window names the instant within a commit where an injected crash
// fires. The three windows cover the commit-hook ordering's distinct
// failure modes (see DESIGN §2e for the matrix).
type Window int

const (
	// WindowBeforeAppend crashes before anything is written: the batch
	// was computed but never journaled. Resume re-executes it.
	WindowBeforeAppend Window = iota
	// WindowAfterAppend crashes after write(2) but before fsync: the
	// record may survive only partially (the simulation keeps a torn
	// prefix). Resume drops the torn tail and re-executes the batch.
	WindowAfterAppend
	// WindowAfterSync crashes after the record is durable but before
	// the merge is acknowledged to the scheduler: the most dangerous
	// window, because a naive resume would run the batch again and
	// merge it twice. Replay-then-skip makes it exactly-once.
	WindowAfterSync
)

func (w Window) String() string {
	switch w {
	case WindowBeforeAppend:
		return "before-append"
	case WindowAfterAppend:
		return "after-append"
	case WindowAfterSync:
		return "after-sync"
	}
	return fmt.Sprintf("window(%d)", int(w))
}

// CrashPlan schedules one injected crash: at the N-th append (0-based,
// in journal commit order), in the given window. A nil plan never
// fires.
type CrashPlan struct {
	// After is the append ordinal at which the crash fires.
	After int
	// Window is the instant within that append.
	Window Window
}

// CrashAfter returns a plan that crashes at append n in window w.
func CrashAfter(n int, w Window) *CrashPlan {
	return &CrashPlan{After: n, Window: w}
}

func (p *CrashPlan) fires(ordinal int, w Window) bool {
	return p != nil && p.After == ordinal && p.Window == w
}

// ParseCrash parses a CLI crash spec of the form "<n>" or
// "<n>:<window>", window one of before-append, after-append,
// after-sync (default after-sync — the window that exercises the
// duplicate-merge hazard).
func ParseCrash(spec string) (*CrashPlan, error) {
	numPart, winPart := spec, "after-sync"
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		numPart, winPart = spec[:i], strings.TrimSpace(spec[i+1:])
	}
	n, err := strconv.Atoi(strings.TrimSpace(numPart))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("checkpoint: bad crash spec %q: want \"<n>[:before-append|after-append|after-sync]\"", spec)
	}
	var w Window
	switch winPart {
	case "after-sync":
		w = WindowAfterSync
	case "before-append":
		w = WindowBeforeAppend
	case "after-append":
		w = WindowAfterAppend
	default:
		return nil, fmt.Errorf("checkpoint: bad crash window %q: want before-append, after-append, or after-sync", winPart)
	}
	return CrashAfter(n, w), nil
}
