package gpu

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// Batch is one unit of streamed work: a parsed slice of the input
// database tagged with its global position in the stream.
type Batch struct {
	// Seq is the batch ordinal in stream order (0, 1, 2, ...).
	Seq int
	// Offset is the global database index of the batch's first
	// sequence; per-batch hit indexes are rebased by it.
	Offset int
	// DB holds the batch's sequences.
	DB *seq.Database
	// Trace is the batch's span on the serving device's track (nil
	// when the run is untraced); process callbacks parent their stage
	// and kernel spans under it.
	Trace *obs.Span
}

// DeviceUtilization is one device's share of a scheduled run — the
// observable load-balance picture the static Partition split cannot
// provide.
type DeviceUtilization struct {
	// Busy is the wall time the device's worker spent processing
	// batches (upload + kernel execution + host-side post-filtering).
	Busy time.Duration
	// QueueWait is the wall time the device's worker spent blocked on
	// the work queue waiting for a batch — scheduler starvation, as
	// distinct from finishing quickly because its batches were short.
	QueueWait time.Duration
	// Residues is the number of residues the device processed.
	Residues int64
	// Batches is the number of batches the device served.
	Batches int
}

// BusyFraction is Busy over the run's wall time (0 when wall is 0).
func (u DeviceUtilization) BusyFraction(wall time.Duration) float64 {
	return obs.Ratio(float64(u.Busy), float64(wall))
}

// ScheduleReport is the outcome of one Scheduler.Run.
type ScheduleReport struct {
	// Wall is the end-to-end wall time of the run (parsing overlapped
	// with processing).
	Wall time.Duration
	// Batches and Seqs and Residues total the submitted work.
	Batches  int
	Seqs     int
	Residues int64
	// Util is the per-device utilization, indexed by device.
	Util []DeviceUtilization
}

// String renders the schedule: totals, then one line per device with
// busy/queue-wait splits. Undefined ratios (a zero-wall or zero-work
// run) render as "-", never NaN.
func (r *ScheduleReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule: %d batches, %d seqs, %d residues in %v",
		r.Batches, r.Seqs, r.Residues, r.Wall)
	for i, u := range r.Util {
		fmt.Fprintf(&b, "\n  device %d: %d batches, %d residues (%s), busy %v (%s of wall), queue-wait %v",
			i, u.Batches, u.Residues,
			obs.Pct(float64(u.Residues), float64(r.Residues)),
			u.Busy, obs.Pct(float64(u.Busy), float64(r.Wall)), u.QueueWait)
	}
	return b.String()
}

// Record merges the schedule into reg under the sched subsystem:
// totals, wall, and per-device busy/queue-wait/busy-fraction series.
func (r *ScheduleReport) Record(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.AddInt("hmmer_sched_batches_total", int64(r.Batches))
	reg.AddInt("hmmer_sched_seqs_total", int64(r.Seqs))
	reg.AddInt("hmmer_sched_residues_total", r.Residues)
	reg.Set("hmmer_sched_wall_seconds", r.Wall.Seconds())
	reg.AddInt("hmmer_sched_devices", int64(len(r.Util)))
	for i, u := range r.Util {
		dev := fmt.Sprint(i)
		reg.Add(obs.WithLabel("hmmer_sched_device_busy_seconds_total", "device", dev), u.Busy.Seconds())
		reg.Add(obs.WithLabel("hmmer_sched_device_queue_wait_seconds_total", "device", dev), u.QueueWait.Seconds())
		reg.AddInt(obs.WithLabel("hmmer_sched_device_batches_total", "device", dev), int64(u.Batches))
		reg.AddInt(obs.WithLabel("hmmer_sched_device_residues_total", "device", dev), u.Residues)
		reg.Set(obs.WithLabel("hmmer_sched_device_busy_fraction", "device", dev), u.BusyFraction(r.Wall))
	}
	reg.Help("hmmer_sched_device_queue_wait_seconds_total",
		"wall time the device worker spent blocked on the work queue (starvation)")
}

// Scheduler feeds a stream of batches to the devices of a System
// through a bounded queue: the producer (host-side parsing) blocks
// once QueueDepth batches are parsed but unprocessed (backpressure, so
// input memory stays bounded), and each batch is claimed by whichever
// device worker drains the queue first — the dynamic load balancing
// that replaces the static Partition split for streamed input
// (CUDAMPF++'s point about proactive resource exhaustion: throughput
// at scale comes from keeping every device saturated, not from one
// up-front split).
type Scheduler struct {
	Sys *simt.System
	// QueueDepth bounds parsed-but-unprocessed batches; 0 means two
	// per device (enough to hide parse latency without unbounding
	// memory).
	QueueDepth int
	// Trace, when non-nil, parents one span per batch on the serving
	// device's track (the per-device gantt a Chrome trace renders);
	// the span is handed to the process callback via Batch.Trace.
	Trace *obs.Span
}

// Run overlaps produce with per-device processing. produce must call
// submit once per batch, in stream order; submit blocks for
// backpressure and returns an error once the run is aborted. process
// runs concurrently, one invocation at a time per device, and must be
// safe for concurrent calls across devices. The first error (from
// produce or process) aborts the run and is returned.
func (s *Scheduler) Run(
	produce func(submit func(db *seq.Database) error) error,
	process func(devIdx int, dev *simt.Device, b Batch) error,
) (*ScheduleReport, error) {
	if s.Sys == nil || len(s.Sys.Devices) == 0 {
		return nil, fmt.Errorf("gpu: scheduler has no devices")
	}
	depth := s.QueueDepth
	if depth <= 0 {
		depth = 2 * len(s.Sys.Devices)
	}

	rep := &ScheduleReport{Util: make([]DeviceUtilization, len(s.Sys.Devices))}
	queue := make(chan Batch, depth)
	abort := make(chan struct{})
	var abortOnce sync.Once
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		abortOnce.Do(func() { close(abort) })
	}

	start := time.Now()
	var workers sync.WaitGroup
	workers.Add(len(s.Sys.Devices))
	for i, dev := range s.Sys.Devices {
		go func(i int, dev *simt.Device) {
			defer workers.Done()
			util := &rep.Util[i]
			for {
				tw := time.Now()
				b, ok := <-queue
				util.QueueWait += time.Since(tw)
				if !ok {
					return
				}
				b.Trace = s.Trace.ChildOn(dev.Track(), fmt.Sprintf("batch %d", b.Seq),
					obs.Int("batch", int64(b.Seq)),
					obs.Int("offset", int64(b.Offset)),
					obs.Int("seqs", int64(b.DB.NumSeqs())),
					obs.Int("residues", b.DB.TotalResidues()))
				t0 := time.Now()
				err := process(i, dev, b)
				util.Busy += time.Since(t0)
				b.Trace.End()
				if err != nil {
					fail(err)
					return
				}
				util.Residues += b.DB.TotalResidues()
				util.Batches++
			}
		}(i, dev)
	}

	// The producer runs on this goroutine so parse errors surface with
	// no extra synchronisation; workers overlap with it via the queue.
	submit := func(db *seq.Database) error {
		b := Batch{Seq: rep.Batches, Offset: rep.Seqs, DB: db}
		select {
		case queue <- b:
			rep.Batches++
			rep.Seqs += db.NumSeqs()
			rep.Residues += db.TotalResidues()
			return nil
		case <-abort:
			return fmt.Errorf("gpu: scheduler aborted")
		}
	}
	if err := produce(submit); err != nil {
		fail(err)
	}
	close(queue)
	workers.Wait()
	rep.Wall = time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	return rep, nil
}

// DeviceWorker binds one device to a reusable Searcher and one-time
// profile uploads, so a stream of batches pays the model-upload cost
// once per device instead of once per batch.
type DeviceWorker struct {
	Dev *simt.Device
	S   *Searcher
	MSV *DeviceMSVProfile
	Vit *DeviceVitProfile
}

// NewDeviceWorker uploads the filter profiles to dev and returns the
// bound worker.
func NewDeviceWorker(dev *simt.Device, mem MemConfig, hostWorkers int,
	mp *profile.MSVProfile, vp *profile.VitProfile) *DeviceWorker {
	return &DeviceWorker{
		Dev: dev,
		S:   &Searcher{Dev: dev, Mem: mem, HostWorkers: hostWorkers},
		MSV: UploadMSVProfile(dev, mp),
		Vit: UploadVitProfile(dev, vp),
	}
}

// MSVBatch uploads one batch and runs the MSV kernel over it.
func (w *DeviceWorker) MSVBatch(db *seq.Database) (*SearchReport, error) {
	return w.S.MSVSearch(w.MSV, UploadDB(w.Dev, db))
}

// ViterbiBatch uploads one batch and runs the P7Viterbi kernel over it.
func (w *DeviceWorker) ViterbiBatch(db *seq.Database) (*SearchReport, error) {
	return w.S.ViterbiSearch(w.Vit, UploadDB(w.Dev, db))
}
