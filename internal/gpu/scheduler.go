package gpu

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// Batch is one unit of streamed work: a parsed slice of the input
// database tagged with its global position in the stream.
type Batch struct {
	// Seq is the batch ordinal in stream order (0, 1, 2, ...).
	Seq int
	// Offset is the global database index of the batch's first
	// sequence; per-batch hit indexes are rebased by it.
	Offset int
	// DB holds the batch's sequences.
	DB *seq.Database
	// Trace is the batch's span on the serving device's track (nil
	// when the run is untraced); process callbacks parent their stage
	// and kernel spans under it.
	Trace *obs.Span

	// commit is the batch's one-shot merge token, shared by retries and
	// requeues of the batch — except after a watchdog expiry, which
	// burns the token (so the abandoned attempt can never merge) and
	// hands the requeued attempt a fresh one.
	commit *atomic.Bool
}

// Commit claims the batch's one-shot merge token: exactly one caller
// across all attempts at the batch gets true. When the watchdog
// abandons an attempt it claims the token itself, so an abandoned
// attempt that completes late loses the race and must discard its
// results; if the abandoned attempt committed first, the scheduler
// waits for its merge to land and counts the batch complete instead
// of re-running it. A zero Batch (constructed outside the scheduler)
// always commits.
func (b Batch) Commit() bool {
	if b.commit == nil {
		return true
	}
	return b.commit.CompareAndSwap(false, true)
}

// DeviceUtilization is one device's share of a scheduled run — the
// observable load-balance picture the static Partition split cannot
// provide.
type DeviceUtilization struct {
	// Busy is the wall time the device's worker spent processing
	// batches (upload + kernel execution + host-side post-filtering),
	// including attempts that failed.
	Busy time.Duration
	// QueueWait is the wall time the device's worker spent blocked on
	// the work queue waiting for a batch it then claimed — scheduler
	// starvation, as distinct from finishing quickly because its
	// batches were short. Waits that end in shutdown, abort or
	// quarantine are not starvation and are not counted.
	QueueWait time.Duration
	// Residues is the number of residues the device processed.
	Residues int64
	// Batches is the number of batches the device completed.
	Batches int
}

// BusyFraction is Busy over the run's wall time (0 when wall is 0).
func (u DeviceUtilization) BusyFraction(wall time.Duration) float64 {
	return obs.Ratio(float64(u.Busy), float64(wall))
}

// ScheduleReport is the outcome of one Scheduler.Run.
type ScheduleReport struct {
	// Wall is the end-to-end wall time of the run (parsing overlapped
	// with processing).
	Wall time.Duration
	// Batches and Seqs and Residues total the submitted work.
	Batches  int
	Seqs     int
	Residues int64
	// Drained reports that the run stopped early at the producer's
	// request: the Drain channel closed and at least one batch was
	// refused by submit. Every batch counted above was still fully
	// processed and committed.
	Drained bool
	// Util is the per-device utilization, indexed by device.
	Util []DeviceUtilization
	// Faults summarises the run's fault handling (zero when clean).
	Faults FaultReport
	// BatchSeconds is the distribution of per-batch processing attempt
	// durations across all devices (failed attempts included — a retry
	// storm shows up as a fat tail, exactly what the mean hides).
	BatchSeconds *obs.Hist
	// QueueWaitSeconds is the distribution of the waits counted by
	// DeviceUtilization.QueueWait: how long a worker sat idle before
	// claiming each batch.
	QueueWaitSeconds *obs.Hist
}

// String renders the schedule: totals, then one line per device with
// busy/queue-wait splits, then the fault summary if the run saw any
// faults. Undefined ratios (a zero-wall or zero-work run) render as
// "-", never NaN.
func (r *ScheduleReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule: %d batches, %d seqs, %d residues in %v",
		r.Batches, r.Seqs, r.Residues, r.Wall)
	for i, u := range r.Util {
		fmt.Fprintf(&b, "\n  device %d: %d batches, %d residues (%s), busy %v (%s of wall), queue-wait %v",
			i, u.Batches, u.Residues,
			obs.Pct(float64(u.Residues), float64(r.Residues)),
			u.Busy, obs.Pct(float64(u.Busy), float64(r.Wall)), u.QueueWait)
	}
	if r.BatchSeconds != nil && r.BatchSeconds.Count > 0 {
		fmt.Fprintf(&b, "\n  batch latency: p50 %.3fs p99 %.3fs, queue-wait p99 %.3fs",
			r.BatchSeconds.Quantile(0.5), r.BatchSeconds.Quantile(0.99),
			r.QueueWaitSeconds.Quantile(0.99))
	}
	if r.Faults.Any() {
		fmt.Fprintf(&b, "\n  %s", r.Faults.String())
	}
	return b.String()
}

// Record merges the schedule into reg under the sched subsystem:
// totals, wall, per-device busy/queue-wait/busy-fraction series, and
// the fault counters (always emitted, so a clean run exports explicit
// zeros that dashboards can alert on).
func (r *ScheduleReport) Record(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.AddInt("hmmer_sched_batches_total", int64(r.Batches))
	reg.AddInt("hmmer_sched_seqs_total", int64(r.Seqs))
	reg.AddInt("hmmer_sched_residues_total", r.Residues)
	reg.Set("hmmer_sched_wall_seconds", r.Wall.Seconds())
	reg.AddInt("hmmer_sched_devices", int64(len(r.Util)))
	reg.AddInt("hmmer_sched_retries_total", int64(r.Faults.Retries))
	reg.AddInt("hmmer_sched_requeues_total", int64(r.Faults.Requeues))
	reg.AddInt("hmmer_sched_batch_timeouts_total", int64(r.Faults.Timeouts))
	reg.AddInt("hmmer_sched_fallback_batches_total", int64(r.Faults.Fallbacks))
	reg.AddInt("hmmer_sched_sdc_detected_total", int64(r.Faults.SDCDetected))
	reg.AddInt("hmmer_sched_sdc_reruns_total", int64(r.Faults.SDCReruns))
	for i, u := range r.Util {
		dev := fmt.Sprint(i)
		reg.Add(obs.WithLabel("hmmer_sched_device_busy_seconds_total", "device", dev), u.Busy.Seconds())
		reg.Add(obs.WithLabel("hmmer_sched_device_queue_wait_seconds_total", "device", dev), u.QueueWait.Seconds())
		reg.AddInt(obs.WithLabel("hmmer_sched_device_batches_total", "device", dev), int64(u.Batches))
		reg.AddInt(obs.WithLabel("hmmer_sched_device_residues_total", "device", dev), u.Residues)
		reg.Set(obs.WithLabel("hmmer_sched_device_busy_fraction", "device", dev), u.BusyFraction(r.Wall))
	}
	if r.BatchSeconds != nil && r.BatchSeconds.Count > 0 {
		reg.MergeHist("hmmer_sched_batch_seconds", r.BatchSeconds)
		reg.Set("hmmer_sched_batch_seconds_p50", r.BatchSeconds.Quantile(0.5))
		reg.Set("hmmer_sched_batch_seconds_p99", r.BatchSeconds.Quantile(0.99))
	}
	if r.QueueWaitSeconds != nil && r.QueueWaitSeconds.Count > 0 {
		reg.MergeHist("hmmer_sched_queue_wait_seconds", r.QueueWaitSeconds)
		reg.Set("hmmer_sched_queue_wait_seconds_p50", r.QueueWaitSeconds.Quantile(0.5))
		reg.Set("hmmer_sched_queue_wait_seconds_p99", r.QueueWaitSeconds.Quantile(0.99))
	}
	// The per-device fault series are emitted for every device the run
	// used, not just devices with fault activity — and not only when a
	// FaultReport happens to carry a per-device breakdown. A report
	// built without one (len(Faults.Devices) < len(Util)) still exports
	// explicit zeros, so tracecheck and Prometheus scrapes always see
	// the same series set and "healthy" is distinguishable from "not
	// scraped". ScheduleReport.String may elide quiet devices; metrics
	// must not.
	for i := 0; i < len(r.Util) || i < len(r.Faults.Devices); i++ {
		var d DeviceFaultStats
		if i < len(r.Faults.Devices) {
			d = r.Faults.Devices[i]
		}
		dev := fmt.Sprint(i)
		reg.Set(obs.WithLabel("hmmer_sched_device_quarantined", "device", dev), obs.Flag(d.Quarantined))
		reg.AddInt(obs.WithLabel("hmmer_sched_device_failures_total", "device", dev), int64(d.Failures))
		reg.AddInt(obs.WithLabel("hmmer_sched_device_sdc_total", "device", dev), int64(d.SDCs))
	}
	reg.Help("hmmer_sched_device_queue_wait_seconds_total",
		"wall time the device worker spent blocked on the work queue (starvation)")
	reg.Help("hmmer_sched_batch_seconds",
		"per-batch processing attempt duration across all devices")
	reg.Help("hmmer_sched_queue_wait_seconds",
		"per-claim wait a device worker spent idle on the work queue")
	reg.Help("hmmer_sched_device_quarantined",
		"1 when the device was quarantined by the circuit breaker during the run")
	reg.Help("hmmer_sched_sdc_detected_total",
		"batches whose device results failed an integrity check (silent data corruption)")
	reg.Help("hmmer_sched_sdc_reruns_total",
		"re-executions that replaced discarded corrupt batch results")
}

// Default fault-tolerance knobs (used when the corresponding
// Scheduler field is 0; negative values disable the mechanism).
const (
	DefaultMaxRetries      = 3
	DefaultQuarantineAfter = 3
	DefaultBackoffBase     = 5 * time.Millisecond
	DefaultBackoffCap      = 500 * time.Millisecond
)

// Scheduler feeds a stream of batches to the devices of a System
// through a bounded pending list: the producer (host-side parsing)
// blocks once QueueDepth batches are parsed but unprocessed
// (backpressure, so input memory stays bounded), and each batch is
// claimed by whichever device worker gets to it first — the dynamic
// load balancing that replaces the static Partition split for streamed
// input (CUDAMPF++'s point about proactive resource exhaustion:
// throughput at scale comes from keeping every device saturated, not
// from one up-front split).
//
// The scheduler is fault-tolerant: a batch that fails transiently is
// retried with capped exponential backoff, preferring a different
// device; a device that fails persistently (lost) or accumulates
// QuarantineAfter consecutive failures is quarantined and its share of
// the stream drains to the healthy devices; when every device is
// quarantined the Fallback callback (if set) completes the remaining
// batches on the host CPU. Kernel panics are deterministic bugs, never
// retried: they abort the run as errors.
type Scheduler struct {
	Sys *simt.System
	// QueueDepth bounds parsed-but-unprocessed batches; 0 means two
	// per device (enough to hide parse latency without unbounding
	// memory). Requeued batches are exempt from the bound.
	QueueDepth int
	// Trace, when non-nil, parents one span per batch attempt on the
	// serving device's track (the per-device gantt a Chrome trace
	// renders); the span is handed to the process callback via
	// Batch.Trace.
	Trace *obs.Span

	// MaxRetries is the per-batch budget of retries after transient
	// faults: 0 means DefaultMaxRetries, negative disables retrying
	// (the first transient fault aborts the run).
	MaxRetries int
	// QuarantineAfter is the circuit breaker: a device with this many
	// consecutive failures is quarantined. 0 means
	// DefaultQuarantineAfter, negative disables the breaker
	// (persistent device-lost faults still quarantine).
	QuarantineAfter int
	// BackoffBase and BackoffCap shape the exponential backoff between
	// retries (base, 2*base, 4*base, ... capped); zero values use
	// DefaultBackoffBase/Cap.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BatchTimeout is the per-batch watchdog: an attempt that has not
	// returned within it is abandoned, the device quarantined, and the
	// batch requeued with a fresh commit token (the watchdog claims the
	// old token, so the abandoned attempt can never merge; if the
	// abandoned attempt committed just before the watchdog, its merge
	// is awaited and the batch counts as complete instead). 0 disables
	// the watchdog.
	BatchTimeout time.Duration
	// Fallback, when non-nil, processes a batch on the host CPU; it is
	// engaged only once every device is quarantined. It must merge its
	// own results (guarded by Batch.Commit), report whether that
	// Commit succeeded, and be safe to call from a dedicated
	// goroutine.
	Fallback func(b Batch) (committed bool, err error)
	// DMR, when non-nil, re-executes a batch whose device results
	// failed an integrity check on the host CPU — dual-modular
	// redundancy on suspicion only, so the clean path pays nothing.
	// Like Fallback it must merge its own results (guarded by
	// Batch.Commit) and report whether that Commit succeeded. When
	// nil, an integrity failure consumes retry budget and requeues the
	// batch to a different device instead.
	DMR func(b Batch) (committed bool, err error)
	// Drain, when non-nil, requests a graceful stop once closed:
	// batches already submitted finish normally (processed, committed,
	// journaled), but submit refuses further batches with ErrDraining.
	// This is the SIGINT path — in-flight work lands durably, then the
	// run returns with ScheduleReport.Drained set, distinguishable from
	// both completion and the hard abort of a cancelled context.
	Drain <-chan struct{}
	// Clock substitutes a fake time source in tests; nil means the
	// wall clock.
	Clock Clock
}

func (s *Scheduler) clock() Clock {
	if s.Clock != nil {
		return s.Clock
	}
	return realClock{}
}

func (s *Scheduler) maxRetries() int {
	if s.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	if s.MaxRetries < 0 {
		return 0
	}
	return s.MaxRetries
}

func (s *Scheduler) quarantineAfter() int {
	if s.QuarantineAfter == 0 {
		return DefaultQuarantineAfter
	}
	if s.QuarantineAfter < 0 {
		return 0
	}
	return s.QuarantineAfter
}

// backoff returns the delay before retry number `try` (1-based),
// doubling from BackoffBase up to BackoffCap.
func (s *Scheduler) backoff(try int) time.Duration {
	base := s.BackoffBase
	if base <= 0 {
		base = DefaultBackoffBase
	}
	max := s.BackoffCap
	if max <= 0 {
		max = DefaultBackoffCap
	}
	shift := try - 1
	if shift > 20 {
		shift = 20
	}
	d := base << shift
	if d > max || d <= 0 {
		d = max
	}
	return d
}

// schedAttempt is one batch's place in the pending list, carrying its
// retry count and the device that must not reclaim it.
type schedAttempt struct {
	b     Batch
	tries int // failed attempts so far
	excl  int // device index that last failed it (-1: none)
}

// schedRun is the mutable state of one Run: a cond-guarded pending
// list replaces a channel so that requeues, quarantine and targeted
// claiming ("any device but the one that just failed it") are
// expressible.
type schedRun struct {
	s   *Scheduler
	rep *ScheduleReport

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*schedAttempt
	// active counts batches claimed but not yet resolved (success,
	// requeue, or abort); workers may only exit the claim loop when
	// the producer is done, pending is empty AND active is zero,
	// because an active batch may still be requeued.
	active   int
	closed   bool
	aborted  bool
	draining bool
	err      error
	abortCh  chan struct{}

	quar            []bool
	consec          []int
	healthy         int
	fallbackStarted bool

	wg sync.WaitGroup
}

func (st *schedRun) failLocked(err error) {
	if !st.aborted {
		st.aborted = true
		st.err = err
		close(st.abortCh)
	}
	st.cond.Broadcast()
}

func (st *schedRun) fail(err error) {
	st.mu.Lock()
	st.failLocked(err)
	st.mu.Unlock()
}

// takeLocked claims the first pending attempt eligible for device i
// (any=true ignores exclusions — the host fallback path). A batch is
// ineligible for the device that just failed it unless that device is
// the only one left in service.
func (st *schedRun) takeLocked(i int, any bool) *schedAttempt {
	for k, att := range st.pending {
		if !any && att.excl >= 0 && att.excl == i && st.healthy > 1 {
			continue
		}
		st.pending = append(st.pending[:k], st.pending[k+1:]...)
		st.active++
		st.cond.Broadcast() // pending shrank: wake the producer
		return att
	}
	return nil
}

// requeueLocked puts a claimed attempt back on the pending list,
// excluding the device that failed it.
func (st *schedRun) requeueLocked(att *schedAttempt, failedOn int) {
	att.excl = failedOn
	st.pending = append(st.pending, att)
	st.active--
	st.cond.Broadcast()
}

// quarantineLocked takes device i out of service; when it was the last
// healthy device, the host fallback (if any) is started, otherwise the
// run aborts.
func (st *schedRun) quarantineLocked(i int) {
	if st.quar[i] {
		return
	}
	st.quar[i] = true
	st.healthy--
	st.rep.Faults.Quarantines++
	st.rep.Faults.Devices[i].Quarantined = true
	if st.healthy == 0 {
		if st.s.Fallback != nil {
			if !st.fallbackStarted {
				st.fallbackStarted = true
				st.wg.Add(1)
				go st.runFallback()
			}
		} else if !st.closed || len(st.pending) > 0 || st.active > 0 {
			// Losing every device only fails the run while work is
			// still outstanding; quarantining the last device on the
			// stream's final batch (a late-committed watchdog expiry)
			// leaves nothing to execute.
			st.failLocked(fmt.Errorf("gpu: no devices left in service: %w", ErrAllQuarantined))
		}
	}
	st.cond.Broadcast()
}

// runBatch executes one processing attempt, racing it against the
// per-batch watchdog when one is configured. On expiry the watchdog
// claims the batch's commit token, so the abandoned attempt — which
// keeps running on its goroutine — can never merge and its late
// result is discarded wherever it lands. If the attempt committed
// first, its merge is already in flight: runBatch waits for it to
// land (the run must not finish under it) and reports the batch
// complete via errLateCommit.
func (st *schedRun) runBatch(i int, dev *simt.Device, b Batch,
	process func(devIdx int, dev *simt.Device, b Batch) error) error {
	if st.s.BatchTimeout <= 0 {
		return process(i, dev, b)
	}
	done := make(chan error, 1)
	go func() { done <- process(i, dev, b) }()
	select {
	case err := <-done:
		return err
	case <-st.s.clock().After(st.s.BatchTimeout):
		if b.Commit() {
			return fmt.Errorf("gpu: batch %d on device %d: %w after %v", b.Seq, i, ErrBatchTimeout, st.s.BatchTimeout)
		}
		<-done
		return errLateCommit
	}
}

// runWorker is device i's claim-process loop. It exits on abort, on
// quarantine of its device, or when the stream is fully drained.
func (st *schedRun) runWorker(i int, dev *simt.Device,
	process func(devIdx int, dev *simt.Device, b Batch) error) {
	defer st.wg.Done()
	s := st.s
	util := &st.rep.Util[i]
	dstats := &st.rep.Faults.Devices[i]
	for {
		st.mu.Lock()
		tw := s.clock().Now()
		var att *schedAttempt
		for {
			if st.aborted || st.quar[i] {
				st.mu.Unlock()
				return
			}
			if att = st.takeLocked(i, false); att != nil {
				break
			}
			if st.closed && len(st.pending) == 0 && st.active == 0 {
				st.mu.Unlock()
				return
			}
			st.cond.Wait()
		}
		// Only a wait that ends in claiming work counts as starvation;
		// the shutdown/abort/quarantine exits above accrue nothing.
		wait := s.clock().Now().Sub(tw)
		util.QueueWait += wait
		st.rep.QueueWaitSeconds.Observe(wait.Seconds())
		if att.excl >= 0 && att.excl != i {
			st.rep.Faults.Requeues++
		}
		st.mu.Unlock()

		b := att.b
		b.Trace = s.Trace.ChildOn(dev.Track(), fmt.Sprintf("batch %d", b.Seq),
			obs.Int("batch", int64(b.Seq)),
			obs.Int("offset", int64(b.Offset)),
			obs.Int("seqs", int64(b.DB.NumSeqs())),
			obs.Int("residues", b.DB.TotalResidues()),
			obs.Int("attempt", int64(att.tries)))
		t0 := time.Now()
		err := st.runBatch(i, dev, b, process)
		dur := time.Since(t0)
		util.Busy += dur
		if err != nil {
			b.Trace.Annotate(obs.String("error", err.Error()))
		}
		b.Trace.End()

		st.mu.Lock()
		st.rep.BatchSeconds.Observe(dur.Seconds())
		if err == nil {
			util.Residues += b.DB.TotalResidues()
			util.Batches++
			st.consec[i] = 0
			st.active--
			st.cond.Broadcast()
			st.mu.Unlock()
			continue
		}
		if errors.Is(err, errLateCommit) {
			// The watchdog expired, but the abandoned attempt had
			// already committed and merged: the batch is complete on
			// this device. The deadline was still blown, so the
			// timeout is recorded and the device quarantined.
			util.Residues += b.DB.TotalResidues()
			util.Batches++
			st.rep.Faults.Timeouts++
			dstats.Timeouts++
			st.active--
			st.quarantineLocked(i)
			st.mu.Unlock()
			return
		}
		dstats.Failures++
		switch classifyFault(err) {
		case faultDeviceFatal:
			// The device is gone (lost) or suspect (a watchdog-abandoned
			// attempt may still be running on it): quarantine it and hand
			// the batch to another device without consuming retry budget.
			if errors.Is(err, ErrBatchTimeout) {
				st.rep.Faults.Timeouts++
				dstats.Timeouts++
				// The watchdog burned the batch's merge token when it
				// abandoned the attempt; the requeued batch needs a
				// live one.
				att.b.commit = new(atomic.Bool)
			}
			st.quarantineLocked(i)
			st.requeueLocked(att, i)
			st.mu.Unlock()
			return
		case faultIntegrity:
			// The launch succeeded but the results are corrupt: the
			// failed attempt returned before committing, so the batch's
			// merge token is untouched and the corrupt result can never
			// land. Count the detection, charge the device a health
			// strike (a card that silently corrupts is on its way out),
			// then replace the result: host DMR when configured,
			// otherwise requeue to a different device on retry budget.
			st.rep.Faults.SDCDetected++
			dstats.SDCs++
			st.consec[i]++
			quarantined := false
			if k := s.quarantineAfter(); k > 0 && st.consec[i] >= k {
				st.quarantineLocked(i)
				quarantined = true
			}
			if s.DMR != nil {
				st.mu.Unlock()
				span := s.Trace.ChildOn("host", fmt.Sprintf("batch %d (dmr re-execution)", b.Seq),
					obs.Int("batch", int64(b.Seq)),
					obs.Int("offset", int64(b.Offset)),
					obs.Bool("sdc_rerun", true))
				committed, derr := s.DMR(b)
				span.End()
				st.mu.Lock()
				st.active--
				if derr != nil {
					st.failLocked(derr)
					st.mu.Unlock()
					return
				}
				// Mirrors Fallbacks: only a rerun that won the merge
				// token actually replaced the result.
				if committed {
					st.rep.Faults.SDCReruns++
				}
				st.cond.Broadcast()
				st.mu.Unlock()
				if quarantined {
					return
				}
				continue
			}
			if quarantined {
				// A breaker trip is a device-health event, not the
				// batch's fault: requeue without consuming its budget.
				st.requeueLocked(att, i)
				st.mu.Unlock()
				return
			}
			att.tries++
			if att.tries > s.maxRetries() {
				st.active--
				st.failLocked(fmt.Errorf("gpu: batch %d failed integrity checks after %d attempts: %w", b.Seq, att.tries, err))
				st.mu.Unlock()
				return
			}
			st.rep.Faults.SDCReruns++
			delay := s.backoff(att.tries)
			st.mu.Unlock()
			select {
			case <-s.clock().After(delay):
			case <-st.abortCh:
				return
			}
			st.mu.Lock()
			st.requeueLocked(att, i)
			st.mu.Unlock()
		case faultTransient:
			st.consec[i]++
			if k := s.quarantineAfter(); k > 0 && st.consec[i] >= k {
				// A device-health trip, not the batch's fault: like the
				// device-fatal path, requeue without consuming the
				// batch's retry budget.
				st.quarantineLocked(i)
				st.requeueLocked(att, i)
				st.mu.Unlock()
				return
			}
			att.tries++
			if att.tries > s.maxRetries() {
				st.active--
				st.failLocked(fmt.Errorf("gpu: batch %d failed after %d attempts: %w", b.Seq, att.tries, err))
				st.mu.Unlock()
				return
			}
			st.rep.Faults.Retries++
			dstats.Retries++
			delay := s.backoff(att.tries)
			st.mu.Unlock()
			// The attempt stays counted in active during the backoff so
			// sibling workers do not mistake the stream for drained.
			select {
			case <-s.clock().After(delay):
			case <-st.abortCh:
				return
			}
			st.mu.Lock()
			st.requeueLocked(att, i)
			st.mu.Unlock()
		default:
			st.active--
			st.failLocked(err)
			st.mu.Unlock()
			return
		}
	}
}

// runFallback drains the remaining stream through the host CPU once
// every device is quarantined. Exclusions do not apply: the host is
// the only executor left.
func (st *schedRun) runFallback() {
	defer st.wg.Done()
	s := st.s
	for {
		st.mu.Lock()
		var att *schedAttempt
		for {
			if st.aborted {
				st.mu.Unlock()
				return
			}
			if att = st.takeLocked(-1, true); att != nil {
				break
			}
			if st.closed && len(st.pending) == 0 && st.active == 0 {
				st.mu.Unlock()
				return
			}
			st.cond.Wait()
		}
		st.mu.Unlock()

		b := att.b
		b.Trace = s.Trace.ChildOn("host", fmt.Sprintf("batch %d (cpu fallback)", b.Seq),
			obs.Int("batch", int64(b.Seq)),
			obs.Int("offset", int64(b.Offset)),
			obs.Bool("cpu_fallback", true))
		t0 := time.Now()
		committed, err := s.Fallback(b)
		dur := time.Since(t0)
		b.Trace.End()

		st.mu.Lock()
		st.rep.BatchSeconds.Observe(dur.Seconds())
		st.active--
		if err != nil {
			st.failLocked(err)
			st.mu.Unlock()
			return
		}
		// Only batches the fallback actually committed count toward
		// Fallbacks; a batch that was already merged elsewhere was not
		// completed by the host.
		if committed {
			st.rep.Faults.Fallbacks++
		}
		st.cond.Broadcast()
		st.mu.Unlock()
	}
}

// Run overlaps produce with per-device processing; see RunContext.
func (s *Scheduler) Run(
	produce func(submit func(db *seq.Database) error) error,
	process func(devIdx int, dev *simt.Device, b Batch) error,
) (*ScheduleReport, error) {
	return s.RunContext(context.Background(), produce, process)
}

// RunContext overlaps produce with per-device processing. produce must
// call submit once per batch, in stream order; submit blocks for
// backpressure and returns an error once the run is aborted. process
// runs concurrently, one invocation at a time per healthy device, and
// must be safe for concurrent calls across devices; results must be
// merged only after Batch.Commit reports true. Transient device faults
// are retried per the scheduler's fault-tolerance knobs; the first
// unrecoverable error (from produce, process, or ctx) aborts the run
// and is returned.
//
// Batch identity is assigned here: consecutive ordinals and offsets in
// submission order. A producer that needs to skip batches (resuming
// from a checkpoint journal) must assign identity itself via
// RunBatches.
func (s *Scheduler) RunContext(ctx context.Context,
	produce func(submit func(db *seq.Database) error) error,
	process func(devIdx int, dev *simt.Device, b Batch) error,
) (*ScheduleReport, error) {
	seqNo, offset := 0, 0
	return s.RunBatches(ctx, func(submit func(b Batch) error) error {
		return produce(func(db *seq.Database) error {
			if err := submit(Batch{Seq: seqNo, Offset: offset, DB: db}); err != nil {
				return err
			}
			seqNo++
			offset += db.NumSeqs()
			return nil
		})
	}, process)
}

// RunBatches is RunContext with caller-assigned batch identity: the
// producer submits fully-formed Batch values (Seq, Offset, DB) and the
// scheduler only attaches the merge token. This is the entry point for
// resumed runs, whose producer skips journaled batches — ordinals then
// have holes, and offsets must match the original chunking rather than
// restart at zero.
//
// A closed Drain channel stops the run gracefully: submit refuses the
// batch with ErrDraining (unwrapped, so the producer can detect it),
// already-submitted batches complete, and produce's ErrDraining return
// is treated as a clean stop with ScheduleReport.Drained set.
func (s *Scheduler) RunBatches(ctx context.Context,
	produce func(submit func(b Batch) error) error,
	process func(devIdx int, dev *simt.Device, b Batch) error,
) (*ScheduleReport, error) {
	if s.Sys == nil || len(s.Sys.Devices) == 0 {
		return nil, fmt.Errorf("gpu: scheduler has no devices")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	depth := s.QueueDepth
	if depth <= 0 {
		depth = 2 * len(s.Sys.Devices)
	}

	n := len(s.Sys.Devices)
	rep := &ScheduleReport{
		Util:             make([]DeviceUtilization, n),
		Faults:           FaultReport{Devices: make([]DeviceFaultStats, n)},
		BatchSeconds:     obs.NewHist(obs.LatencyBuckets()),
		QueueWaitSeconds: obs.NewHist(obs.LatencyBuckets()),
	}
	st := &schedRun{
		s:       s,
		rep:     rep,
		abortCh: make(chan struct{}),
		quar:    make([]bool, n),
		consec:  make([]int, n),
		healthy: n,
	}
	st.cond = sync.NewCond(&st.mu)

	// Cancellation propagates as an abort; a drain request only flips
	// the flag so submit starts refusing. Both watchers die with the run.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			st.fail(ctx.Err())
		case <-watchDone:
		}
	}()
	if s.Drain != nil {
		go func() {
			select {
			case <-s.Drain:
				st.mu.Lock()
				st.draining = true
				st.cond.Broadcast()
				st.mu.Unlock()
			case <-watchDone:
			}
		}()
	}

	start := time.Now()
	st.wg.Add(n)
	for i, dev := range s.Sys.Devices {
		go st.runWorker(i, dev, process)
	}

	// The producer runs on this goroutine so parse errors surface with
	// no extra synchronisation; workers overlap with it via the pending
	// list.
	submit := func(b Batch) error {
		if b.DB == nil {
			return fmt.Errorf("gpu: submitted batch %d has no database", b.Seq)
		}
		st.mu.Lock()
		defer st.mu.Unlock()
		// The watcher goroutine delivers drains asynchronously; also poll
		// the channel here so a drain requested before the watcher was
		// scheduled (or between broadcasts) refuses this submit rather
		// than the next one.
		if !st.draining && s.Drain != nil {
			select {
			case <-s.Drain:
				st.draining = true
				st.cond.Broadcast()
			default:
			}
		}
		for len(st.pending) >= depth && !st.aborted && !st.draining {
			st.cond.Wait()
		}
		if st.aborted {
			return fmt.Errorf("gpu: scheduler aborted: %w", st.err)
		}
		if st.draining {
			rep.Drained = true
			return ErrDraining
		}
		b.Trace = nil
		b.commit = new(atomic.Bool)
		st.pending = append(st.pending, &schedAttempt{b: b, excl: -1})
		rep.Batches++
		rep.Seqs += b.DB.NumSeqs()
		rep.Residues += b.DB.TotalResidues()
		st.cond.Broadcast()
		return nil
	}
	perr := produce(submit)
	if errors.Is(perr, ErrDraining) {
		perr = nil
	}
	st.mu.Lock()
	st.closed = true
	st.cond.Broadcast()
	st.mu.Unlock()
	if perr != nil {
		st.fail(perr)
	}
	st.wg.Wait()
	rep.Wall = time.Since(start)
	st.mu.Lock()
	ferr := st.err
	st.mu.Unlock()
	if ferr != nil {
		return nil, ferr
	}
	return rep, nil
}

// DeviceWorker binds one device to a reusable Searcher and one-time
// profile uploads, so a stream of batches pays the model-upload cost
// once per device instead of once per batch.
type DeviceWorker struct {
	Dev *simt.Device
	S   *Searcher
	MSV *DeviceMSVProfile
	Vit *DeviceVitProfile
}

// NewDeviceWorker uploads the filter profiles to dev and returns the
// bound worker.
func NewDeviceWorker(dev *simt.Device, mem MemConfig, hostWorkers int,
	mp *profile.MSVProfile, vp *profile.VitProfile) *DeviceWorker {
	return &DeviceWorker{
		Dev: dev,
		S:   &Searcher{Dev: dev, Mem: mem, HostWorkers: hostWorkers},
		MSV: UploadMSVProfile(dev, mp),
		Vit: UploadVitProfile(dev, vp),
	}
}

// MSVBatch uploads one batch and runs the MSV kernel over it.
func (w *DeviceWorker) MSVBatch(db *seq.Database) (*SearchReport, error) {
	return w.S.MSVSearch(w.MSV, UploadDB(w.Dev, db))
}

// ViterbiBatch uploads one batch and runs the P7Viterbi kernel over it.
func (w *DeviceWorker) ViterbiBatch(db *seq.Database) (*SearchReport, error) {
	return w.S.ViterbiSearch(w.Vit, UploadDB(w.Dev, db))
}
