package gpu

import (
	"fmt"
	"math"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/satmath"
	"hmmer3gpu/internal/simt"
)

// Synchronised multi-warp MSV kernel — the generic parallelisation the
// paper argues against (Figure 4): one block scores one sequence, all
// the block's warps update each DP row in place, which requires two
// __syncthreads per sweep (after reading the diagonal dependencies and
// after writing back) plus more for the cross-warp row-max reduction.
// The warp schedulers' freedom to interleave warps makes every barrier
// a stall; the paper's warp-synchronous design exists to eliminate
// them.
//
// With skipSyncs the same kernel runs without its barriers,
// demonstrating the racing hazard at warp boundaries (yellow cells of
// Figure 4) — the simulator's race tracker flags the unsynchronised
// cross-warp accesses.

type syncedMSVRun struct {
	db        *DeviceDB
	prof      *DeviceMSVProfile
	warps     int
	skipSyncs bool
	out       []cpu.FilterResult
}

func (r *syncedMSVRun) sync(w *simt.Warp) {
	if !r.skipSyncs {
		w.Sync()
	}
}

func (r *syncedMSVRun) kernel(w *simt.Warp) {
	lanes := w.Lanes()
	mp := r.prof.MP
	m := mp.M
	const base = uint8(profile.MSVBase)
	overflowAt := mp.OverflowThreshold()
	threads := r.warps * lanes
	rs := newReduceScratch(lanes)
	// Block shared layout: row buffer [0, M+1), then one byte per warp
	// of reduction scratch (word-padded), then Fermi warp scratch.
	redBase := (m + 1 + 3) &^ 3
	warpScratch := redBase + ((r.warps + 3) &^ 3)

	addrs := make([]int, lanes)
	gaddr := make([]int64, lanes)
	cur := make([]uint8, lanes)
	temp := make([]uint8, lanes)
	xEv := make([]uint8, lanes)
	zero := make([]uint8, lanes)

	for seqID := w.BlockIdx; seqID < len(r.db.Packed); seqID += w.NumBlocks {
		words := r.db.Packed[seqID]
		seqAddr := r.db.Addr[seqID]
		seqLen := r.db.Lens[seqID]
		w.ALU(4)

		// Cooperatively clear the row buffer.
		for p0 := w.WarpInBlock * lanes; p0 <= m; p0 += threads {
			for l := 0; l < lanes; l++ {
				if p0+l <= m {
					addrs[l] = p0 + l
				} else {
					addrs[l] = -1
				}
			}
			w.SharedStoreU8(addrs, zero)
		}
		r.sync(w)

		xJ := uint8(0)
		xB := satmath.SubU8(base, mp.TJB)
		overflowed := false

		for i := 0; i < seqLen; i++ {
			if i%alphabet.ResiduesPerWord == 0 {
				a := packedWordAddr(seqAddr, i/alphabet.ResiduesPerWord)
				for l := 0; l < lanes; l++ {
					gaddr[l] = a
				}
				w.GlobalLoad(gaddr, 4)
			}
			res := alphabet.PackedAt(words, i)
			if res == alphabet.PackSentinel {
				break
			}
			w.ALU(2)
			costRow := r.prof.Cost[res]
			xBtbm := satmath.SubU8(xB, mp.TBM)
			for l := 0; l < lanes; l++ {
				xEv[l] = 0
			}
			w.ALU(2)

			for sweep := 0; sweep*threads < m; sweep++ {
				p0 := sweep*threads + w.WarpInBlock*lanes
				// Read the diagonal dependencies (sources p0+l).
				for l := 0; l < lanes; l++ {
					if p0+l < m {
						addrs[l] = p0 + l
					} else {
						addrs[l] = -1
					}
				}
				w.SharedLoadU8Into(cur, addrs)
				// First synchronisation: everyone must have read before
				// anyone writes (Figure 4, annotation 1).
				r.sync(w)

				for l := 0; l < lanes; l++ {
					t := p0 + 1 + l
					if t > m {
						continue
					}
					sv := satmath.MaxU8(cur[l], xBtbm)
					sv = satmath.AddU8(sv, mp.Bias)
					sv = satmath.SubU8(sv, costRow[t])
					temp[l] = sv
					xEv[l] = satmath.MaxU8(xEv[l], sv)
				}
				w.ALU(4)
				for l := 0; l < lanes; l++ {
					if p0+1+l <= m {
						addrs[l] = p0 + 1 + l
					} else {
						addrs[l] = -1
					}
				}
				w.SharedStoreU8(addrs, temp)
				// Second synchronisation: the row must be fully written
				// before the next sweep reads it (annotation 2).
				r.sync(w)
			}

			// Cross-warp row-max reduction through shared memory:
			// per-warp max, leaders publish, barrier, warp 0 reduces,
			// barrier, everyone reads the result.
			warpMax := warpMaxU8(w, xEv, warpScratch+w.WarpInBlock*reduceScratchU8, rs)
			w.SharedStoreU8([]int{redBase + w.WarpInBlock}, []uint8{warpMax})
			r.sync(w)
			var xE uint8
			if w.WarpInBlock == 0 {
				for l := 0; l < lanes; l++ {
					if l < r.warps {
						addrs[l] = redBase + l
					} else {
						addrs[l] = -1
					}
				}
				w.SharedLoadU8Into(temp, addrs)
				for l := 0; l < r.warps; l++ {
					if temp[l] > xE {
						xE = temp[l]
					}
				}
				w.ALU(1)
				w.SharedStoreU8([]int{redBase}, []uint8{xE})
			}
			r.sync(w)
			xE = w.SharedLoadU8([]int{redBase})[0]
			// Third barrier: warp 0 will overwrite redBase for the next
			// row; laggards must have read this row's value first.
			r.sync(w)

			if xE >= overflowAt {
				overflowed = true
				break
			}
			xJ = satmath.MaxU8(xJ, satmath.SubU8(xE, mp.TEC))
			xB = satmath.SubU8(satmath.MaxU8(base, xJ), mp.TJB)
			w.ALU(4)
		}

		if w.WarpInBlock == 0 {
			if overflowed {
				r.out[seqID] = cpu.FilterResult{Score: math.Inf(1), Overflowed: true}
			} else {
				r.out[seqID] = cpu.FilterResult{Score: mp.ScoreToNats(xJ)}
			}
			gaddr[0] = r.db.ScoreAddr + int64(8*seqID)
			for l := 1; l < lanes; l++ {
				gaddr[l] = -1
			}
			w.GlobalStore(gaddr, 8)
		}
		r.sync(w)
	}
}

// MSVSearchSynced runs the synchronised multi-warp MSV baseline. With
// skipSyncs=true the barriers are elided to demonstrate the warp-
// boundary race (check Launch.Stats.SharedRaces); scores are then
// unreliable by construction.
func (s *Searcher) MSVSearchSynced(dp *DeviceMSVProfile, db *DeviceDB, skipSyncs bool) (*SearchReport, error) {
	spec := s.Dev.Spec
	const warps = 4
	shared := (dp.MP.M + 1 + 3) & ^3
	shared += (warps + 3) & ^3
	shared += warps * reduceScratchU8
	if shared > spec.SharedMemPerBlockMax {
		return nil, fmt.Errorf("gpu: model size %d does not fit a single block on %s", dp.MP.M, spec.Name)
	}
	occ := spec.CalcOccupancy(simt.KernelResources{
		RegsPerThread:   msvRegsPerThread,
		SharedPerBlock:  shared,
		ThreadsPerBlock: warps * spec.WarpSize,
	})
	blocks := occ.BlocksPerSM * spec.SMCount
	if blocks < 1 {
		return nil, fmt.Errorf("gpu: model size %d does not fit a single block on %s", dp.MP.M, spec.Name)
	}
	run := &syncedMSVRun{
		db:        db,
		prof:      dp,
		warps:     warps,
		skipSyncs: skipSyncs,
		out:       make([]cpu.FilterResult, len(db.Packed)),
	}
	rep, err := s.Dev.Launch(simt.LaunchConfig{
		Blocks:              blocks,
		WarpsPerBlock:       warps,
		SharedBytesPerBlock: shared,
		RegsPerThread:       msvRegsPerThread,
		Cooperative:         true,
		DetectRaces:         true,
		HostWorkers:         s.HostWorkers,
	}, run.kernel)
	if err != nil {
		return nil, err
	}
	plan := LaunchPlan{
		MemConfig:      MemGlobal,
		WarpsPerBlock:  warps,
		Blocks:         blocks,
		SharedPerBlock: shared,
		Occupancy:      occ,
	}
	return &SearchReport{Results: run.out, Plan: plan, Launch: rep}, nil
}
