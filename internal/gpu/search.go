package gpu

import (
	"math"

	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/simt"
)

// Searcher runs the accelerated filters on one device.
type Searcher struct {
	Dev *simt.Device
	// Mem selects the model-parameter memory configuration
	// (MemAuto by default).
	Mem MemConfig
	// DisablePacking turns residue packing off (one byte-per-residue
	// global fetch per DP row) — the packing ablation.
	DisablePacking bool
	// EagerLazyF disables the warp-vote early exit of the parallel
	// Lazy-F, running the worst-case D-D loop on every chunk — the
	// lazy-evaluation ablation.
	EagerLazyF bool
	// DDScan resolves the D-D chain with the §VI prefix-scan extension
	// (5 shuffle rounds per chunk) instead of the vote loop. Requires
	// warp shuffle; ignored on Fermi devices.
	DDScan bool
	// DetectRaces enables the simulator's shared-memory race tracker.
	DetectRaces bool
	// HostWorkers caps host-side parallelism (0 = GOMAXPROCS).
	HostWorkers int
	// Trace, when non-nil, parents a kernel span per launch on the
	// device's track. Callers running one stage at a time (the
	// pipeline engines, the per-device stream workers) repoint it at
	// the current stage span before each search.
	Trace *obs.Span
	// Cancel, when non-nil, aborts in-flight launches once closed
	// (simt.LaunchConfig.Cancel): searches then fail with
	// simt.ErrLaunchCanceled. Context-aware callers set this to
	// ctx.Done() so a deadline interrupts a running kernel between
	// blocks.
	Cancel <-chan struct{}
}

// LazyFStats aggregates the parallel Lazy-F work over a launch.
type LazyFStats struct {
	// RowsIterated counts DP rows that needed at least one lazy-F
	// iteration beyond the initial M-D seeding.
	RowsIterated int64
	// Iterations is the total lazy-F iteration count.
	Iterations int64
}

// SearchReport is the outcome of one accelerated database pass.
type SearchReport struct {
	// Results holds the per-sequence filter scores in database order.
	Results []cpu.FilterResult
	// Plan is the launch configuration that ran.
	Plan LaunchPlan
	// Launch carries the simulator's counters and occupancy.
	Launch *simt.LaunchReport
	// LazyF is populated by Viterbi searches.
	LazyF LazyFStats
}

// applyReadbackFaults lands the device's pending silent readback
// flips in the per-sequence result buffer (one 64-bit score word per
// sequence). On a healthy or ECC device this is a no-op.
func applyReadbackFaults(dev *simt.Device, out []cpu.FilterResult) {
	for _, f := range dev.ReadbackFaults(len(out)) {
		if f.Word < 0 || f.Word >= len(out) {
			continue
		}
		r := &out[f.Word]
		r.Score = math.Float64frombits(math.Float64bits(r.Score) ^ 1<<f.Bit)
	}
}

// MSVSearch scores every sequence of db with the MSV kernel.
func (s *Searcher) MSVSearch(dp *DeviceMSVProfile, db *DeviceDB) (*SearchReport, error) {
	plan, err := planLaunch(s.Dev.Spec, kindMSV, dp.MP.M, s.Mem)
	if err != nil {
		return nil, err
	}
	run := &msvRun{
		db:     db,
		prof:   dp,
		plan:   plan,
		packed: !s.DisablePacking,
		out:    make([]cpu.FilterResult, len(db.Packed)),
	}
	rep, err := s.Dev.Launch(simt.LaunchConfig{
		Blocks:              plan.Blocks,
		WarpsPerBlock:       plan.WarpsPerBlock,
		SharedBytesPerBlock: plan.SharedPerBlock,
		RegsPerThread:       msvRegsPerThread,
		DetectRaces:         s.DetectRaces,
		HostWorkers:         s.HostWorkers,
		Name:                "msv",
		Trace:               s.Trace,
		Cancel:              s.Cancel,
	}, run.kernel)
	if err != nil {
		return nil, err
	}
	applyReadbackFaults(s.Dev, run.out)
	return &SearchReport{Results: run.out, Plan: plan, Launch: rep}, nil
}

// ViterbiSearch scores every sequence of db with the P7Viterbi kernel.
func (s *Searcher) ViterbiSearch(dp *DeviceVitProfile, db *DeviceDB) (*SearchReport, error) {
	plan, err := planLaunch(s.Dev.Spec, kindVit, dp.VP.M, s.Mem)
	if err != nil {
		return nil, err
	}
	nWarps := plan.Blocks * plan.WarpsPerBlock
	run := &vitRun{
		db:        db,
		prof:      dp,
		plan:      plan,
		eager:     s.EagerLazyF,
		ddScan:    s.DDScan && s.Dev.Spec.HasShuffle,
		out:       make([]cpu.FilterResult, len(db.Packed)),
		lazyRows:  make([]int64, nWarps),
		lazyIters: make([]int64, nWarps),
	}
	if plan.RowsInGlobal {
		run.rowAddr = s.Dev.AllocGlobal(int64(nWarps) * int64(6*(dp.VP.M+1)))
	}
	rep, err := s.Dev.Launch(simt.LaunchConfig{
		Blocks:              plan.Blocks,
		WarpsPerBlock:       plan.WarpsPerBlock,
		SharedBytesPerBlock: plan.SharedPerBlock,
		RegsPerThread:       vitRegsPerThread,
		DetectRaces:         s.DetectRaces,
		HostWorkers:         s.HostWorkers,
		Name:                "p7viterbi",
		Trace:               s.Trace,
		Cancel:              s.Cancel,
	}, run.kernel)
	if err != nil {
		return nil, err
	}
	applyReadbackFaults(s.Dev, run.out)
	out := &SearchReport{Results: run.out, Plan: plan, Launch: rep}
	for i := range run.lazyRows {
		out.LazyF.RowsIterated += run.lazyRows[i]
		out.LazyF.Iterations += run.lazyIters[i]
	}
	return out, nil
}
