package gpu

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"hmmer3gpu/internal/integrity"
	"hmmer3gpu/internal/simt"
)

// Fault handling for the streaming scheduler. The simt layer injects
// and surfaces typed device faults (see internal/simt/fault.go); this
// file decides what the scheduler does about each of them: retry with
// backoff, requeue to a different device, quarantine the device, or
// fall back to the host CPU.

// ErrBatchTimeout marks a batch whose processing exceeded the
// scheduler's per-batch watchdog (Scheduler.BatchTimeout). The worker
// abandons the batch and the watchdog claims the batch's commit
// token, so the abandoned attempt's late result, if it ever arrives,
// is discarded.
var ErrBatchTimeout = errors.New("gpu: batch processing exceeded deadline")

// errLateCommit reports that a watchdog-expired attempt committed its
// result before the watchdog could claim the batch's merge token: the
// merge already landed (runBatch waits for it), so the batch is
// complete and must not be requeued.
var errLateCommit = errors.New("gpu: abandoned attempt committed its result late")

// ErrAllQuarantined is returned when every device has been quarantined
// and the scheduler has no host fallback to drain the remaining work.
var ErrAllQuarantined = errors.New("gpu: all devices quarantined")

// ErrDraining is returned by the scheduler's submit once a graceful
// drain has been requested (Scheduler.Drain closed): the producer
// should stop submitting and return — RunBatches treats a producer
// that returns ErrDraining as a clean stop.
var ErrDraining = errors.New("gpu: scheduler draining")

// Clock abstracts time for the scheduler so retry/backoff tests can
// run without real sleeps. The zero Scheduler uses the wall clock.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock returns the wall clock, for components outside this
// package (the cluster coordinator) that share the Clock seam.
func RealClock() Clock { return realClock{} }

// faultClass is the scheduler's triage of a processing error.
type faultClass int

const (
	// faultRunFatal aborts the run: kernel panics (deterministic bugs
	// that retrying anywhere reproduces) and unrecognised errors.
	faultRunFatal faultClass = iota
	// faultTransient is worth retrying with backoff, preferably on a
	// different device.
	faultTransient
	// faultDeviceFatal quarantines the device immediately (lost device,
	// or a watchdog-abandoned batch whose device may still be wedged)
	// and requeues the batch elsewhere without consuming retry budget.
	faultDeviceFatal
	// faultIntegrity marks a batch whose results failed an integrity
	// check: the launch succeeded but the numbers are suspect (silent
	// data corruption). The result is discarded before merge and the
	// batch re-executed — via the DMR callback on the host when
	// configured, otherwise on a different device — and the producing
	// device takes a health strike toward the quarantine breaker.
	faultIntegrity
)

// classifyFault maps a batch-processing error to the scheduler's
// response.
func classifyFault(err error) faultClass {
	var kp *simt.KernelPanicError
	if errors.As(err, &kp) {
		return faultRunFatal
	}
	var ie *integrity.Error
	if errors.As(err, &ie) {
		return faultIntegrity
	}
	if errors.Is(err, ErrBatchTimeout) || simt.IsPersistentFault(err) {
		return faultDeviceFatal
	}
	if simt.IsTransientFault(err) {
		return faultTransient
	}
	return faultRunFatal
}

// DeviceFaultStats is one device's share of a run's fault activity.
type DeviceFaultStats struct {
	// Failures counts failed processing attempts on the device.
	Failures int
	// Retries counts the transient failures that were retried.
	Retries int
	// Timeouts counts watchdog expirations charged to the device.
	Timeouts int
	// SDCs counts silent-data-corruption detections charged to the
	// device (batches whose results failed an integrity check).
	SDCs int
	// Quarantined reports the device was taken out of service.
	Quarantined bool
}

// FaultReport aggregates a run's fault handling, embedded in
// ScheduleReport.
type FaultReport struct {
	// Retries is the number of retry attempts scheduled after
	// transient faults.
	Retries int
	// Requeues is the number of times a failed batch was picked up by
	// a different device than the one that failed it.
	Requeues int
	// Timeouts is the number of watchdog-abandoned batches.
	Timeouts int
	// Quarantines is the number of devices quarantined during the run.
	Quarantines int
	// Fallbacks is the number of batches completed by the host CPU
	// after every device was quarantined.
	Fallbacks int
	// SDCDetected is the number of batches whose results failed an
	// integrity check (silent data corruption caught before merge).
	SDCDetected int
	// SDCReruns is the number of re-executions performed to replace
	// discarded corrupt results (host DMR runs that committed, or
	// requeues to another device in guards-only mode).
	SDCReruns int
	// Devices is the per-device fault breakdown, indexed by device.
	Devices []DeviceFaultStats
}

// Any reports whether the run saw any fault activity.
func (f *FaultReport) Any() bool {
	return f.Retries+f.Requeues+f.Timeouts+f.Quarantines+f.Fallbacks+
		f.SDCDetected+f.SDCReruns > 0
}

// String renders the fault summary (empty when the run was clean).
// SDC lines appear only when corruption was detected, so a run with
// purely fail-stop faults renders exactly as before.
func (f *FaultReport) String() string {
	if !f.Any() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "faults: %d retries, %d requeues, %d timeouts, %d devices quarantined, %d cpu-fallback batches",
		f.Retries, f.Requeues, f.Timeouts, f.Quarantines, f.Fallbacks)
	if f.SDCDetected > 0 || f.SDCReruns > 0 {
		fmt.Fprintf(&b, "\n    silent data corruption: %d detected, %d re-executed",
			f.SDCDetected, f.SDCReruns)
	}
	for i, d := range f.Devices {
		if d.Failures == 0 && !d.Quarantined {
			continue
		}
		status := ""
		if d.Quarantined {
			status = ", quarantined"
		}
		sdc := ""
		if d.SDCs > 0 {
			sdc = fmt.Sprintf(", %d sdc", d.SDCs)
		}
		fmt.Fprintf(&b, "\n    device %d: %d failures (%d retried, %d timeouts%s)%s",
			i, d.Failures, d.Retries, d.Timeouts, sdc, status)
	}
	return b.String()
}
