package gpu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/refimpl"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

var abc = alphabet.New()

func randomSeq(rng *rand.Rand, n int) []byte {
	bg := abc.Backgrounds()
	out := make([]byte, n)
	for i := range out {
		u, acc := rng.Float64(), 0.0
		out[i] = byte(len(bg) - 1)
		for r, f := range bg {
			acc += f
			if u < acc {
				out[i] = byte(r)
				break
			}
		}
	}
	return out
}

func testDB(t testing.TB, rng *rand.Rand, n, maxLen int) *seq.Database {
	t.Helper()
	db := seq.NewDatabase("gputest")
	for i := 0; i < n; i++ {
		db.Add(&seq.Sequence{Name: "s", Residues: randomSeq(rng, 1+rng.Intn(maxLen))})
	}
	return db
}

func buildProfiles(t testing.TB, m, l int, seed int64) (*profile.MSVProfile, *profile.VitProfile) {
	t.Helper()
	h, err := hmm.Random("gpu", m, abc, hmm.DefaultBuildParams(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	p.SetLength(l)
	return profile.NewMSVProfile(p), profile.NewVitProfile(p)
}

// TestMSVKernelMatchesGoldenExactly: the central claim — the warp-
// synchronous kernel, under every architecture and memory
// configuration, reproduces the scalar golden filter bit for bit.
func TestMSVKernelMatchesGoldenExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	specs := []simt.DeviceSpec{simt.TeslaK40(), simt.GTX580()}
	for _, m := range []int{1, 31, 32, 33, 64, 100, 257} {
		mp, _ := buildProfiles(t, m, 180, int64(m))
		db := testDB(t, rng, 40, 300)
		want := make([]cpu.FilterResult, db.NumSeqs())
		for i, s := range db.Seqs {
			want[i] = cpu.MSVFilterScalar(mp, s.Residues)
		}
		for _, spec := range specs {
			for _, mem := range []MemConfig{MemShared, MemGlobal} {
				dev := simt.NewDevice(spec)
				ddb := UploadDB(dev, db)
				dp := UploadMSVProfile(dev, mp)
				s := &Searcher{Dev: dev, Mem: mem}
				rep, err := s.MSVSearch(dp, ddb)
				if err != nil {
					t.Fatalf("M=%d %s/%s: %v", m, spec.Arch, mem, err)
				}
				for i := range want {
					if rep.Results[i] != want[i] {
						t.Fatalf("M=%d %s/%s seq %d: gpu %+v != golden %+v",
							m, spec.Arch, mem, i, rep.Results[i], want[i])
					}
				}
			}
		}
	}
}

// TestVitKernelMatchesGoldenExactly does the same for the P7Viterbi
// kernel, whose parallel Lazy-F is the subtle part.
func TestVitKernelMatchesGoldenExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	specs := []simt.DeviceSpec{simt.TeslaK40(), simt.GTX580()}
	for _, m := range []int{1, 31, 32, 33, 65, 120} {
		_, vp := buildProfiles(t, m, 150, int64(50+m))
		db := testDB(t, rng, 30, 250)
		want := make([]cpu.FilterResult, db.NumSeqs())
		for i, s := range db.Seqs {
			want[i] = cpu.VitFilterScalar(vp, s.Residues)
		}
		for _, spec := range specs {
			for _, mem := range []MemConfig{MemShared, MemGlobal} {
				dev := simt.NewDevice(spec)
				ddb := UploadDB(dev, db)
				dp := UploadVitProfile(dev, vp)
				s := &Searcher{Dev: dev, Mem: mem}
				rep, err := s.ViterbiSearch(dp, ddb)
				if err != nil {
					t.Fatalf("M=%d %s/%s: %v", m, spec.Arch, mem, err)
				}
				for i := range want {
					if rep.Results[i] != want[i] {
						t.Fatalf("M=%d %s/%s seq %d: gpu %+v != golden %+v",
							m, spec.Arch, mem, i, rep.Results[i], want[i])
					}
				}
			}
		}
	}
}

// TestVitKernelGappyModels drives the parallel Lazy-F hard: with heavy
// gap probabilities the D-D chains actually propagate across lanes and
// chunks.
func TestVitKernelGappyModels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	params := hmm.BuildParams{MatchIdentity: 0.7, GapOpen: 0.2, GapExtend: 0.9}
	for _, m := range []int{40, 100} {
		h, err := hmm.Random("gappy", m, abc, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		p := profile.Config(h)
		p.SetLength(150)
		vp := profile.NewVitProfile(p)
		db := testDB(t, rng, 25, 200)
		dev := simt.NewDevice(simt.TeslaK40())
		ddb := UploadDB(dev, db)
		dp := UploadVitProfile(dev, vp)
		s := &Searcher{Dev: dev, Mem: MemShared}
		rep, err := s.ViterbiSearch(dp, ddb)
		if err != nil {
			t.Fatal(err)
		}
		for i, sq := range db.Seqs {
			want := cpu.VitFilterScalar(vp, sq.Residues)
			if rep.Results[i] != want {
				t.Fatalf("M=%d seq %d: gpu %+v != golden %+v", m, i, rep.Results[i], want)
			}
		}
		if rep.LazyF.Iterations == 0 {
			t.Errorf("M=%d: gappy model should trigger lazy-F iterations", m)
		}
	}
}

func TestLazyFRareOnTypicalModels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	_, vp := buildProfiles(t, 100, 200, 5)
	db := testDB(t, rng, 30, 250)
	dev := simt.NewDevice(simt.TeslaK40())
	ddb := UploadDB(dev, db)
	dp := UploadVitProfile(dev, vp)
	s := &Searcher{Dev: dev}
	rep, err := s.ViterbiSearch(dp, ddb)
	if err != nil {
		t.Fatal(err)
	}
	// Each lazy-F iteration propagates D-D chains one lane further
	// within a 32-position chunk; for a typical (rarely-deleting)
	// model the chains are short, so the average iteration count per
	// chunk must stay far below the 32-iteration worst case — the
	// premise of the paper's §III-B.
	chunks := float64(ddb.TotalResidues) * math.Ceil(float64(dp.VP.M)/32.0)
	avg := float64(rep.LazyF.Iterations) / chunks
	if avg > 5 {
		t.Errorf("lazy-F averaged %.2f iterations/chunk; expected short D-D chains", avg)
	}
}

func TestDegenerateAndRemappedResidues(t *testing.T) {
	// Sequences containing every degenerate code must score identically
	// on GPU (with its 24-row remapped alphabet) and the scalar golden
	// filter (29-row host alphabet).
	rng := rand.New(rand.NewSource(6))
	mp, vp := buildProfiles(t, 50, 120, 7)
	db := seq.NewDatabase("degen")
	for i := 0; i < 10; i++ {
		res := randomSeq(rng, 120)
		for j := 0; j < 15; j++ {
			res[rng.Intn(len(res))] = byte(20 + rng.Intn(6)) // B J Z O U X
		}
		db.Add(&seq.Sequence{Name: "d", Residues: res})
	}
	dev := simt.NewDevice(simt.TeslaK40())
	ddb := UploadDB(dev, db)
	s := &Searcher{Dev: dev}
	mrep, err := s.MSVSearch(UploadMSVProfile(dev, mp), ddb)
	if err != nil {
		t.Fatal(err)
	}
	vrep, err := s.ViterbiSearch(UploadVitProfile(dev, vp), ddb)
	if err != nil {
		t.Fatal(err)
	}
	for i, sq := range db.Seqs {
		if want := cpu.MSVFilterScalar(mp, sq.Residues); mrep.Results[i] != want {
			t.Errorf("MSV seq %d: %+v != %+v", i, mrep.Results[i], want)
		}
		if want := cpu.VitFilterScalar(vp, sq.Residues); vrep.Results[i] != want {
			t.Errorf("Vit seq %d: %+v != %+v", i, vrep.Results[i], want)
		}
	}
}

func TestOverflowPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cons := randomSeq(rng, 60)
	h, err := hmm.FromConsensus("hot", cons, abc,
		hmm.BuildParams{MatchIdentity: 0.9, GapOpen: 0.01, GapExtend: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	var hit []byte
	for i := 0; i < 20; i++ {
		hit = append(hit, cons...)
	}
	p.SetLength(len(hit))
	mp := profile.NewMSVProfile(p)
	db := seq.NewDatabase("hot")
	db.Add(&seq.Sequence{Name: "hit", Residues: hit})
	dev := simt.NewDevice(simt.TeslaK40())
	ddb := UploadDB(dev, db)
	s := &Searcher{Dev: dev}
	rep, err := s.MSVSearch(UploadMSVProfile(dev, mp), ddb)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Results[0].Overflowed || !math.IsInf(rep.Results[0].Score, 1) {
		t.Errorf("expected overflow pass-through, got %+v", rep.Results[0])
	}
}

func TestPackingReducesGlobalTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mp, _ := buildProfiles(t, 64, 200, 10)
	db := testDB(t, rng, 30, 300)
	dev1 := simt.NewDevice(simt.TeslaK40())
	ddb1 := UploadDB(dev1, db)
	packed, err := (&Searcher{Dev: dev1, Mem: MemShared}).MSVSearch(UploadMSVProfile(dev1, mp), ddb1)
	if err != nil {
		t.Fatal(err)
	}
	dev2 := simt.NewDevice(simt.TeslaK40())
	ddb2 := UploadDB(dev2, db)
	unpacked, err := (&Searcher{Dev: dev2, Mem: MemShared, DisablePacking: true}).MSVSearch(UploadMSVProfile(dev2, mp), ddb2)
	if err != nil {
		t.Fatal(err)
	}
	// Scores unchanged...
	for i := range packed.Results {
		if packed.Results[i] != unpacked.Results[i] {
			t.Fatalf("packing changed scores at %d", i)
		}
	}
	// ...but sequence-fetch traffic drops ~6x. Compare total load
	// transactions net of the (identical) model prologue and emission
	// metering by using the difference between the two runs.
	p, u := packed.Launch.Stats.GlobalLoadTransactions, unpacked.Launch.Stats.GlobalLoadTransactions
	if p >= u {
		t.Fatalf("packed %d transactions >= unpacked %d", p, u)
	}
	ratio := float64(u-p) / float64(ddb1.TotalResidues)
	// Unpacked: 1 transaction per residue; packed: 1 per 6 -> the
	// difference should be ~5/6 of a transaction per residue.
	if ratio < 0.7 || ratio > 0.95 {
		t.Errorf("packing saved %.2f transactions/residue, want ~0.83", ratio)
	}
}

func TestMSVKernelConflictAndRaceFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mp, _ := buildProfiles(t, 96, 150, 12)
	db := testDB(t, rng, 20, 200)
	dev := simt.NewDevice(simt.TeslaK40())
	ddb := UploadDB(dev, db)
	s := &Searcher{Dev: dev, Mem: MemGlobal, DetectRaces: true}
	rep, err := s.MSVSearch(UploadMSVProfile(dev, mp), ddb)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Launch.Stats.BankConflictReplays != 0 {
		t.Errorf("warp-synchronous MSV kernel caused %d bank-conflict replays; the paper's access pattern is conflict-free",
			rep.Launch.Stats.BankConflictReplays)
	}
	if rep.Launch.Stats.SharedRaces != 0 {
		t.Errorf("warp-synchronous kernel reported %d races; warps own disjoint row buffers",
			rep.Launch.Stats.SharedRaces)
	}
	if rep.Launch.Stats.Syncs != 0 {
		t.Errorf("warp-synchronous kernel executed %d __syncthreads; the design eliminates them all",
			rep.Launch.Stats.Syncs)
	}
}

func TestSyncedBaselineMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mp, _ := buildProfiles(t, 70, 150, 14)
	db := testDB(t, rng, 15, 200)
	dev := simt.NewDevice(simt.TeslaK40())
	ddb := UploadDB(dev, db)
	s := &Searcher{Dev: dev}
	rep, err := s.MSVSearchSynced(UploadMSVProfile(dev, mp), ddb, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, sq := range db.Seqs {
		want := cpu.MSVFilterScalar(mp, sq.Residues)
		if rep.Results[i] != want {
			t.Fatalf("synced baseline seq %d: %+v != %+v", i, rep.Results[i], want)
		}
	}
	if rep.Launch.Stats.Syncs == 0 {
		t.Error("synced baseline reported no barriers")
	}
	if rep.Launch.Stats.SharedRaces != 0 {
		t.Errorf("synced baseline raced: %d", rep.Launch.Stats.SharedRaces)
	}
}

func TestUnsyncedBaselineRaces(t *testing.T) {
	// Eliding the barriers reproduces the Figure 4 hazard: the race
	// tracker must flag cross-warp conflicts.
	rng := rand.New(rand.NewSource(15))
	mp, _ := buildProfiles(t, 70, 150, 16)
	db := testDB(t, rng, 10, 200)
	dev := simt.NewDevice(simt.TeslaK40())
	ddb := UploadDB(dev, db)
	s := &Searcher{Dev: dev}
	rep, err := s.MSVSearchSynced(UploadMSVProfile(dev, mp), ddb, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Launch.Stats.SharedRaces == 0 {
		t.Error("unsynchronised multi-warp kernel did not race")
	}
}

func TestMultiGPUMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mp, vp := buildProfiles(t, 80, 180, 18)
	db := testDB(t, rng, 60, 250)

	single := simt.NewDevice(simt.GTX580())
	ddb := UploadDB(single, db)
	srep, err := (&Searcher{Dev: single}).MSVSearch(UploadMSVProfile(single, mp), ddb)
	if err != nil {
		t.Fatal(err)
	}

	sys := simt.NewSystem(simt.GTX580(), 4)
	ms := &MultiSearcher{Sys: sys}
	mrep, err := ms.MSVSearch(mp, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(mrep.Results) != db.NumSeqs() {
		t.Fatalf("multi-GPU returned %d results", len(mrep.Results))
	}
	for i := range srep.Results {
		if srep.Results[i] != mrep.Results[i] {
			t.Fatalf("seq %d: multi %+v != single %+v", i, mrep.Results[i], srep.Results[i])
		}
	}

	vrep, err := ms.ViterbiSearch(vp, db)
	if err != nil {
		t.Fatal(err)
	}
	for i, sq := range db.Seqs {
		want := cpu.VitFilterScalar(vp, sq.Residues)
		if vrep.Results[i] != want {
			t.Fatalf("multi-GPU Viterbi seq %d: %+v != %+v", i, vrep.Results[i], want)
		}
	}
	// Shards should be residue-balanced.
	var lo, hi int64 = math.MaxInt64, 0
	for _, r := range mrep.ShardResidues {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if float64(hi) > 2.0*float64(lo) {
		t.Errorf("shard imbalance: %v", mrep.ShardResidues)
	}
}

// TestMemConfigCrossover verifies the headline occupancy behaviour of
// Figure 9: the shared configuration holds 100% occupancy for small
// MSV models, degrades for big ones, and the auto strategy switches to
// global at approximately model size 1002 — while models beyond ~1528
// cannot use the shared configuration at all.
func TestMemConfigCrossover(t *testing.T) {
	spec := simt.TeslaK40()
	occAt := func(m int, cfg MemConfig) float64 {
		plan, err := PlanMSV(spec, m, cfg)
		if err != nil {
			return -1
		}
		return plan.Occupancy.Fraction
	}
	if got := occAt(400, MemShared); got != 1.0 {
		t.Errorf("shared occupancy at M=400 is %.2f, want 1.0", got)
	}
	if got := occAt(48, MemShared); got != 1.0 {
		t.Errorf("shared occupancy at M=48 is %.2f, want 1.0", got)
	}
	// At M=800 shared occupancy has fallen to ~50% (the paper's curve)
	// but auto still picks shared — its lower access cost buys back the
	// deficit; the paper's peak MSV speedup is at 800 on shared.
	if s800 := occAt(800, MemShared); s800 > 0.6 || s800 < 0.4 {
		t.Errorf("shared occupancy at M=800 is %.2f, want ~0.5", s800)
	}
	if plan, err := PlanMSV(spec, 800, MemAuto); err != nil || plan.MemConfig != MemShared {
		t.Errorf("auto at M=800 picked %v (err %v), want shared", plan.MemConfig, err)
	}
	s1002, g1002 := occAt(1002, MemShared), occAt(1002, MemGlobal)
	if s1002 >= g1002 {
		t.Errorf("at M=1002 global (%.2f) should beat shared (%.2f) — the paper's crossover", g1002, s1002)
	}
	if occAt(2405, MemShared) > 0.1 && occAt(2405, MemShared) != -1 {
		t.Errorf("shared at M=2405 should be crippled or impossible, got %.2f", occAt(2405, MemShared))
	}
	// Auto must pick global past the crossover.
	plan, err := PlanMSV(spec, 1528, MemAuto)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MemConfig != MemGlobal {
		t.Errorf("auto at M=1528 picked %s, want global", plan.MemConfig)
	}
	plan, err = PlanMSV(spec, 100, MemAuto)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MemConfig != MemShared {
		t.Errorf("auto at M=100 picked %s, want shared", plan.MemConfig)
	}
}

// TestViterbiOccupancyCeiling: the register footprint caps Viterbi at
// 50% occupancy on Kepler (§IV), lower on Fermi.
func TestViterbiOccupancyCeiling(t *testing.T) {
	for _, m := range []int{48, 100, 200, 400, 800} {
		plan, err := PlanViterbi(simt.TeslaK40(), m, MemAuto)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Occupancy.Fraction > 0.5 {
			t.Errorf("M=%d: Viterbi occupancy %.2f exceeds the 50%% register ceiling",
				m, plan.Occupancy.Fraction)
		}
	}
	k, err := PlanViterbi(simt.TeslaK40(), 100, MemAuto)
	if err != nil {
		t.Fatal(err)
	}
	f, err := PlanViterbi(simt.GTX580(), 100, MemAuto)
	if err != nil {
		t.Fatal(err)
	}
	if f.Occupancy.Fraction >= k.Occupancy.Fraction {
		t.Errorf("Fermi Viterbi occupancy %.2f should trail Kepler %.2f",
			f.Occupancy.Fraction, k.Occupancy.Fraction)
	}
}

func TestRemapResidue(t *testing.T) {
	cases := map[byte]byte{
		0: 0, 19: 19, // canonical pass through
		20: devB, 21: devJ, 22: devZ, 25: devX,
		23:               8, // O -> K
		24:               1, // U -> C
		alphabet.CodeGap: devInvalid, alphabet.CodeEnd: devInvalid, alphabet.CodeMissing: devInvalid,
	}
	for in, want := range cases {
		if got := remapResidue(in); got != want {
			t.Errorf("remapResidue(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestUploadDBSentinelTermination(t *testing.T) {
	dev := simt.NewDevice(simt.TeslaK40())
	db := seq.NewDatabase("s")
	db.Add(&seq.Sequence{Name: "six", Residues: []byte{0, 1, 2, 3, 4, 5}}) // exactly one word
	ddb := UploadDB(dev, db)
	if alphabet.PackedAt(ddb.Packed[0], 6) != alphabet.PackSentinel {
		t.Error("packed sequence lacks a trailing sentinel")
	}
}

// TestDDScanMatchesGoldenExactly: the §VI prefix-scan D-D resolution
// must agree with the golden filter bit for bit, including on
// gap-heavy models with long D-D chains, while eliminating the lazy-F
// iterations entirely.
func TestDDScanMatchesGoldenExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, params := range []hmm.BuildParams{
		hmm.DefaultBuildParams(),
		{MatchIdentity: 0.7, GapOpen: 0.2, GapExtend: 0.9},
	} {
		for _, m := range []int{31, 33, 100} {
			h, err := hmm.Random("scan", m, abc, params, rng)
			if err != nil {
				t.Fatal(err)
			}
			p := profile.Config(h)
			p.SetLength(150)
			vp := profile.NewVitProfile(p)
			db := testDB(t, rng, 25, 220)
			dev := simt.NewDevice(simt.TeslaK40())
			ddb := UploadDB(dev, db)
			s := &Searcher{Dev: dev, Mem: MemShared, DDScan: true}
			rep, err := s.ViterbiSearch(UploadVitProfile(dev, vp), ddb)
			if err != nil {
				t.Fatal(err)
			}
			for i, sq := range db.Seqs {
				want := cpu.VitFilterScalar(vp, sq.Residues)
				if rep.Results[i] != want {
					t.Fatalf("gapOpen=%g M=%d seq %d: dd-scan %+v != golden %+v",
						params.GapOpen, m, i, rep.Results[i], want)
				}
			}
			if rep.LazyF.Iterations != 0 {
				t.Errorf("dd-scan path should report zero lazy-F iterations, got %d", rep.LazyF.Iterations)
			}
			if rep.Launch.Stats.ShuffleOps == 0 {
				t.Error("dd-scan path should issue shuffles")
			}
		}
	}
}

// TestDDScanIgnoredOnFermi: the scan needs shuffle; Fermi silently
// falls back to the vote loop and still matches golden.
func TestDDScanIgnoredOnFermi(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	_, vp := buildProfiles(t, 64, 150, 33)
	db := testDB(t, rng, 10, 200)
	dev := simt.NewDevice(simt.GTX580())
	ddb := UploadDB(dev, db)
	s := &Searcher{Dev: dev, Mem: MemShared, DDScan: true}
	rep, err := s.ViterbiSearch(UploadVitProfile(dev, vp), ddb)
	if err != nil {
		t.Fatal(err)
	}
	for i, sq := range db.Seqs {
		want := cpu.VitFilterScalar(vp, sq.Residues)
		if rep.Results[i] != want {
			t.Fatalf("seq %d: fermi fallback %+v != golden %+v", i, rep.Results[i], want)
		}
	}
}

// TestForwardKernelMatchesReference: the GPU Forward extension must
// track the float64 reference within float32 accumulation error, on
// both architectures (Fermi takes the serial D-chain path).
func TestForwardKernelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, spec := range []simt.DeviceSpec{simt.TeslaK40(), simt.GTX580()} {
		for _, m := range []int{31, 33, 80} {
			h, err := hmm.Random("fwd", m, abc, hmm.DefaultBuildParams(), rng)
			if err != nil {
				t.Fatal(err)
			}
			p := profile.Config(h)
			p.SetLength(150)
			db := testDB(t, rng, 15, 250)
			dev := simt.NewDevice(spec)
			ddb := UploadDB(dev, db)
			s := &Searcher{Dev: dev, Mem: MemShared}
			rep, results, err := s.ForwardSearch(UploadFwdProfile(dev, p), ddb)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Launch.Stats.WarpsExecuted == 0 {
				t.Fatal("no warps executed")
			}
			for i, sq := range db.Seqs {
				want := refimpl.Forward(p, sq.Residues)
				got := results[i].Score
				if relErr := math.Abs(got-want) / (1 + math.Abs(want)); relErr > 2e-4 {
					t.Fatalf("%s M=%d seq %d: gpu fwd %.6f vs reference %.6f (rel %g)",
						spec.Arch, m, i, got, want, relErr)
				}
			}
		}
	}
}

// TestForwardKernelGappy drives the log-semiring D scan on a
// delete-heavy model where the D chain carries real probability mass.
func TestForwardKernelGappy(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	h, err := hmm.Random("fwdgappy", 64, abc,
		hmm.BuildParams{MatchIdentity: 0.7, GapOpen: 0.2, GapExtend: 0.9}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	p.SetLength(120)
	db := testDB(t, rng, 12, 200)
	dev := simt.NewDevice(simt.TeslaK40())
	ddb := UploadDB(dev, db)
	s := &Searcher{Dev: dev}
	_, results, err := s.ForwardSearch(UploadFwdProfile(dev, p), ddb)
	if err != nil {
		t.Fatal(err)
	}
	for i, sq := range db.Seqs {
		want := refimpl.Forward(p, sq.Residues)
		got := results[i].Score
		if relErr := math.Abs(got-want) / (1 + math.Abs(want)); relErr > 5e-4 {
			t.Fatalf("seq %d: gpu fwd %.6f vs reference %.6f (rel %g)", i, got, want, relErr)
		}
	}
}

// TestForwardOrderingVsViterbi: Forward >= Viterbi must survive the
// GPU paths (up to quantisation of the Viterbi filter).
func TestForwardOrderingVsViterbi(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	h, err := hmm.Random("ord", 48, abc, hmm.DefaultBuildParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	p.SetLength(150)
	vp := profile.NewVitProfile(p)
	db := testDB(t, rng, 10, 200)
	dev := simt.NewDevice(simt.TeslaK40())
	ddb := UploadDB(dev, db)
	s := &Searcher{Dev: dev}
	vrep, err := s.ViterbiSearch(UploadVitProfile(dev, vp), ddb)
	if err != nil {
		t.Fatal(err)
	}
	_, fres, err := s.ForwardSearch(UploadFwdProfile(dev, p), ddb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range db.Seqs {
		if vrep.Results[i].Overflowed {
			continue
		}
		if fres[i].Score < vrep.Results[i].Score-1.0 {
			t.Errorf("seq %d: Forward %.3f far below Viterbi %.3f", i, fres[i].Score, vrep.Results[i].Score)
		}
	}
}

// TestLaunchDeterministicAcrossHostWorkers: host-side parallelism must
// not change results or counters (the stats merge is ordered).
func TestLaunchDeterministicAcrossHostWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	mp, vp := buildProfiles(t, 90, 150, 72)
	db := testDB(t, rng, 50, 250)
	var baseM, baseV *SearchReport
	for _, workers := range []int{1, 2, 8} {
		dev := simt.NewDevice(simt.TeslaK40())
		ddb := UploadDB(dev, db)
		s := &Searcher{Dev: dev, HostWorkers: workers}
		mrep, err := s.MSVSearch(UploadMSVProfile(dev, mp), ddb)
		if err != nil {
			t.Fatal(err)
		}
		vrep, err := s.ViterbiSearch(UploadVitProfile(dev, vp), ddb)
		if err != nil {
			t.Fatal(err)
		}
		if baseM == nil {
			baseM, baseV = mrep, vrep
			continue
		}
		if mrep.Launch.Stats != baseM.Launch.Stats || vrep.Launch.Stats != baseV.Launch.Stats {
			t.Fatalf("workers=%d: counters differ from workers=1", workers)
		}
		for i := range baseM.Results {
			if mrep.Results[i] != baseM.Results[i] || vrep.Results[i] != baseV.Results[i] {
				t.Fatalf("workers=%d: results differ at %d", workers, i)
			}
		}
	}
}

// TestRowSpillViterbiLargeModels: on very large models the planner
// spills the DP rows to (L2-cached) global memory, recovering
// occupancy, while the scores stay bit-identical to the golden filter.
func TestRowSpillViterbiLargeModels(t *testing.T) {
	spec := simt.TeslaK40()
	plan, err := PlanViterbi(spec, 2405, MemSpill)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.RowsInGlobal {
		t.Fatalf("spill plan lacks RowsInGlobal: %+v", plan)
	}
	if plan.Occupancy.Fraction < 0.4 {
		t.Errorf("spilled occupancy %.2f, want the register ceiling (~0.5)", plan.Occupancy.Fraction)
	}
	// The paper's configurations never spill.
	small, err := PlanViterbi(spec, 2405, MemGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if small.RowsInGlobal {
		t.Error("the global configuration must keep rows in shared memory")
	}
	if _, err := PlanMSV(spec, 400, MemSpill); err == nil {
		t.Error("spill must be rejected for the MSV kernel")
	}

	// Exactness on a spilled launch (use a large-but-simulable model).
	rng := rand.New(rand.NewSource(81))
	_, vp := buildProfiles(t, 1600, 120, 82)
	db := testDB(t, rng, 6, 150)
	dev := simt.NewDevice(spec)
	ddb := UploadDB(dev, db)
	s := &Searcher{Dev: dev, Mem: MemSpill}
	rep, err := s.ViterbiSearch(UploadVitProfile(dev, vp), ddb)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Plan.RowsInGlobal {
		t.Fatal("launch did not use the spill plan")
	}
	for i, sq := range db.Seqs {
		want := cpu.VitFilterScalar(vp, sq.Residues)
		if rep.Results[i] != want {
			t.Fatalf("spilled seq %d: gpu %+v != golden %+v", i, rep.Results[i], want)
		}
	}
	if rep.Launch.Stats.CachedStoreTransactions == 0 {
		t.Error("spilled rows should meter cached stores")
	}
}

// TestQuickCrossEngineEquivalence: property-based spot check — for
// random models, lengths and memory configurations, the GPU kernels
// must equal the golden filters exactly.
func TestQuickCrossEngineEquivalence(t *testing.T) {
	f := func(seed int64, mRaw, lRaw uint8, memBit, archBit bool) bool {
		m := int(mRaw)%120 + 1
		l := int(lRaw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		h, err := hmm.Random("q", m, abc, hmm.DefaultBuildParams(), rng)
		if err != nil {
			return false
		}
		p := profile.Config(h)
		p.SetLength(l)
		mp, vp := profile.NewMSVProfile(p), profile.NewVitProfile(p)
		dsq := randomSeq(rng, l)

		spec := simt.TeslaK40()
		if archBit {
			spec = simt.GTX580()
		}
		mem := MemShared
		if memBit {
			mem = MemGlobal
		}
		db := seq.NewDatabase("q")
		db.Add(&seq.Sequence{Name: "s", Residues: dsq})
		dev := simt.NewDevice(spec)
		ddb := UploadDB(dev, db)
		s := &Searcher{Dev: dev, Mem: mem}
		mrep, err := s.MSVSearch(UploadMSVProfile(dev, mp), ddb)
		if err != nil {
			return false
		}
		vrep, err := s.ViterbiSearch(UploadVitProfile(dev, vp), ddb)
		if err != nil {
			return false
		}
		return mrep.Results[0] == cpu.MSVFilterScalar(mp, dsq) &&
			vrep.Results[0] == cpu.VitFilterScalar(vp, dsq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestLaneUtilizationRaggedModels: a model one position past a chunk
// boundary wastes almost a full chunk of lanes per row, while an
// aligned model keeps the warps full — a divergence cost orthogonal to
// occupancy.
func TestLaneUtilizationRaggedModels(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	db := testDB(t, rng, 20, 200)
	util := func(m int) float64 {
		mp, _ := buildProfiles(t, m, 150, int64(m))
		dev := simt.NewDevice(simt.TeslaK40())
		ddb := UploadDB(dev, db)
		rep, err := (&Searcher{Dev: dev, Mem: MemShared}).MSVSearch(UploadMSVProfile(dev, mp), ddb)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Launch.Stats.LaneUtilization()
	}
	aligned, ragged := util(64), util(65)
	if aligned < 0.95 {
		t.Errorf("aligned model utilisation %.2f, want ~1", aligned)
	}
	if ragged > aligned-0.2 {
		t.Errorf("ragged model should waste lanes: %.2f vs %.2f", ragged, aligned)
	}
}

func TestPlanForwardConfigs(t *testing.T) {
	spec := simt.TeslaK40()
	shared, err := PlanForward(spec, 100, MemShared)
	if err != nil {
		t.Fatal(err)
	}
	global, err := PlanForward(spec, 100, MemGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Occupancy.BlocksPerSM == 0 || global.Occupancy.BlocksPerSM == 0 {
		t.Fatal("plans should fit at M=100")
	}
	// Forward's float rows (12 bytes/cell/warp) exhaust shared memory
	// sooner than Viterbi's: huge models must fail in shared config.
	if _, err := PlanForward(spec, 2405, MemShared); err == nil {
		if p, _ := PlanForward(spec, 2405, MemShared); p.Occupancy.Fraction > 0.25 {
			t.Errorf("M=2405 shared forward occupancy %.2f implausible", p.Occupancy.Fraction)
		}
	}
	if _, err := PlanForward(spec, 100, MemAuto); err != nil {
		t.Errorf("auto plan failed: %v", err)
	}
}
