package gpu

import (
	"math"

	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/simt"
)

// GPU Forward kernel — a beyond-the-paper extension in the direction
// of §VI ("heterogeneous platforms ... are currently being explored to
// accelerate the application"): the same warp-synchronous,
// three-tiered framework applied to the full-precision Forward stage.
// Scores are float32 log-space sums; the within-row D chain — a
// sequential log-sum recurrence, the additive analogue of the Viterbi
// D-D problem — is resolved with a Kogge-Stone prefix scan over the
// log semiring (shuffles, 5 rounds per 32-position chunk). Unlike the
// integer filters the result is not bit-exact against the float64
// reference; tests bound the relative error instead.

// negInfF32 is the float32 log-space floor.
var negInfF32 = float32(math.Inf(-1))

// lseF32 returns log(exp(a)+exp(b)) in float32.
func lseF32(a, b float32) float32 {
	if a == negInfF32 {
		return b
	}
	if b == negInfF32 {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + float32(math.Log1p(math.Exp(float64(b-a))))
}

// DeviceFwdProfile is the Forward profile in device layout (float32).
type DeviceFwdProfile struct {
	P *profile.Profile
	// MSC[r][k] over the device alphabet.
	MSC [][]float32
	// Transition arrays, indexed like profile.Profile.
	TMM, TMI, TMD, TIM, TII, TDM, TDD []float32
	TBM, TEC, TEJ, TLoop, TMove       float32
	// TableAddr is the logical global address of the parameter block.
	TableAddr int64
}

// UploadFwdProfile converts p to device layout.
func UploadFwdProfile(dev *simt.Device, p *profile.Profile) *DeviceFwdProfile {
	m := p.M
	d := &DeviceFwdProfile{P: p}
	d.MSC = make([][]float32, devInvalid+1)
	for r := 0; r <= devInvalid; r++ {
		row := make([]float32, m+1)
		row[0] = negInfF32
		if r == devInvalid {
			for k := range row {
				row[k] = negInfF32
			}
		} else {
			src := p.MSC[hostRowForDeviceResidue(r)]
			for k := 1; k <= m; k++ {
				row[k] = float32(src[k])
			}
		}
		d.MSC[r] = row
	}
	conv := func(src []float64) []float32 {
		out := make([]float32, len(src))
		for i, v := range src {
			out[i] = float32(v)
		}
		return out
	}
	d.TMM, d.TMI, d.TMD = conv(p.TMM), conv(p.TMI), conv(p.TMD)
	d.TIM, d.TII = conv(p.TIM), conv(p.TII)
	d.TDM, d.TDD = conv(p.TDM), conv(p.TDD)
	d.TBM, d.TEC, d.TEJ = float32(p.TBM), float32(p.TEC), float32(p.TEJ)
	d.TLoop, d.TMove = float32(p.TLoop), float32(p.TMove)
	d.TableAddr = dev.AllocGlobal(int64(4 * (devInvalid + 8) * (m + 1)))
	return d
}

// FwdResult is one sequence's Forward score.
type FwdResult struct {
	// Score is the Forward score in nats (float64 for the caller's
	// convenience; computed in float32 on the device).
	Score float64
}

// fwdRegsPerThread: the Forward kernel's float state (three row
// vectors, scan ladders, specials) is the heaviest of the three.
const fwdRegsPerThread = 64

// sharedBytesFwd is the per-block shared footprint: three float32 row
// buffers per warp plus (for MemShared) the float32 parameter block.
func sharedBytesFwd(spec simt.DeviceSpec, m, warps int, cfg MemConfig) int {
	b := warps * 12 * (m + 1)
	if !spec.HasShuffle {
		b += warps * 128
	}
	if cfg == MemShared {
		b += 4 * (deviceAlphaSize + 7) * (m + 1)
	}
	return b
}

// PlanForward plans a Forward launch (exported for the harness).
func PlanForward(spec simt.DeviceSpec, m int, cfg MemConfig) (LaunchPlan, error) {
	if cfg == MemAuto {
		shared, errS := PlanForward(spec, m, MemShared)
		global, errG := PlanForward(spec, m, MemGlobal)
		switch {
		case errS != nil && errG != nil:
			return LaunchPlan{}, errG
		case errS != nil:
			return global, nil
		case errG != nil:
			return shared, nil
		case shared.Occupancy.Fraction*2 > global.Occupancy.Fraction:
			return shared, nil
		default:
			return global, nil
		}
	}
	best := LaunchPlan{MemConfig: cfg}
	found := false
	for _, w := range []int{2, 4, 8, 16, 32} {
		if w*spec.WarpSize > spec.MaxThreadsPerBlock {
			continue
		}
		sb := sharedBytesFwd(spec, m, w, cfg)
		if sb > spec.SharedMemPerBlockMax {
			continue
		}
		occ := spec.CalcOccupancy(simt.KernelResources{
			RegsPerThread:   fwdRegsPerThread,
			SharedPerBlock:  sb,
			ThreadsPerBlock: w * spec.WarpSize,
		})
		if occ.BlocksPerSM == 0 {
			continue
		}
		if !found || occ.Fraction >= best.Occupancy.Fraction {
			found = true
			best.WarpsPerBlock = w
			best.SharedPerBlock = sb
			best.Occupancy = occ
		}
	}
	if !found {
		return LaunchPlan{}, errFwdTooLarge(m, spec.Name)
	}
	best.Blocks = best.Occupancy.BlocksPerSM * spec.SMCount
	return best, nil
}

func errFwdTooLarge(m int, name string) error {
	return &fwdPlanError{m: m, dev: name}
}

type fwdPlanError struct {
	m   int
	dev string
}

func (e *fwdPlanError) Error() string {
	return "gpu: forward kernel: model too large for " + e.dev
}

// ForwardSearch computes Forward scores for every sequence of db on
// the device. This is an extension beyond the paper's MSV+Viterbi
// scope; see the package comment in fwd.go.
func (s *Searcher) ForwardSearch(dp *DeviceFwdProfile, db *DeviceDB) (*SearchReport, []FwdResult, error) {
	plan, err := PlanForward(s.Dev.Spec, dp.P.M, s.Mem)
	if err != nil {
		return nil, nil, err
	}
	run := &fwdRun{
		db:   db,
		prof: dp,
		plan: plan,
		out:  make([]FwdResult, len(db.Packed)),
	}
	rep, err := s.Dev.Launch(simt.LaunchConfig{
		Blocks:              plan.Blocks,
		WarpsPerBlock:       plan.WarpsPerBlock,
		SharedBytesPerBlock: plan.SharedPerBlock,
		RegsPerThread:       fwdRegsPerThread,
		DetectRaces:         s.DetectRaces,
		HostWorkers:         s.HostWorkers,
		Name:                "forward",
		Trace:               s.Trace,
		Cancel:              s.Cancel,
	}, run.kernel)
	if err != nil {
		return nil, nil, err
	}
	return &SearchReport{Plan: plan, Launch: rep}, run.out, nil
}
