package gpu

import (
	"fmt"
	"time"

	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// MultiSearcher distributes a database search over the devices of a
// System — the paper's §IV-A multi-GPU configuration, where the
// database is partitioned across devices with no cross-device
// dependencies and scaling is near linear.
type MultiSearcher struct {
	Sys *simt.System
	Mem MemConfig
	// HostWorkers caps host-side parallelism per device launch.
	HostWorkers int
	// Trace, when non-nil, parents one shard span per device (and the
	// kernel span beneath it) on that device's track.
	Trace *obs.Span
	// Cancel, when non-nil, aborts every shard's in-flight launch once
	// closed; see Searcher.Cancel.
	Cancel <-chan struct{}
}

// MultiReport is the merged outcome of a multi-device search.
type MultiReport struct {
	// Results holds per-sequence scores in original database order.
	Results []cpu.FilterResult
	// PerDevice carries each device's report, indexed by device.
	PerDevice []*SearchReport
	// ShardResidues is each shard's residue count (the load-balance
	// picture).
	ShardResidues []int64
	// Util is each device's utilization (busy wall time, residues,
	// batches served); the static split serves one batch per device.
	Util []DeviceUtilization
}

// MSVSearch runs the MSV stage over all devices.
func (ms *MultiSearcher) MSVSearch(mp *profile.MSVProfile, db *seq.Database) (*MultiReport, error) {
	shards := db.Partition(len(ms.Sys.Devices))
	out := &MultiReport{
		Results:       make([]cpu.FilterResult, 0, db.NumSeqs()),
		PerDevice:     make([]*SearchReport, len(shards)),
		ShardResidues: make([]int64, len(shards)),
		Util:          make([]DeviceUtilization, len(ms.Sys.Devices)),
	}
	_, err := ms.Sys.LaunchAll(func(i int, dev *simt.Device) (*simt.LaunchReport, error) {
		if i >= len(shards) {
			return &simt.LaunchReport{}, nil
		}
		start := time.Now()
		span := ms.Trace.ChildOn(dev.Track(), fmt.Sprintf("shard %d", i),
			obs.Int("seqs", int64(shards[i].NumSeqs())),
			obs.Int("residues", shards[i].TotalResidues()))
		defer span.End()
		ddb := UploadDB(dev, shards[i])
		dp := UploadMSVProfile(dev, mp)
		s := &Searcher{Dev: dev, Mem: ms.Mem, HostWorkers: ms.HostWorkers, Trace: span, Cancel: ms.Cancel}
		rep, err := s.MSVSearch(dp, ddb)
		if err != nil {
			return nil, err
		}
		out.PerDevice[i] = rep
		out.ShardResidues[i] = ddb.TotalResidues
		out.Util[i] = DeviceUtilization{Busy: time.Since(start), Residues: ddb.TotalResidues, Batches: 1}
		return rep.Launch, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rep := range out.PerDevice {
		if rep != nil {
			out.Results = append(out.Results, rep.Results...)
		}
	}
	return out, nil
}

// ViterbiSearch runs the P7Viterbi stage over all devices.
func (ms *MultiSearcher) ViterbiSearch(vp *profile.VitProfile, db *seq.Database) (*MultiReport, error) {
	shards := db.Partition(len(ms.Sys.Devices))
	out := &MultiReport{
		Results:       make([]cpu.FilterResult, 0, db.NumSeqs()),
		PerDevice:     make([]*SearchReport, len(shards)),
		ShardResidues: make([]int64, len(shards)),
		Util:          make([]DeviceUtilization, len(ms.Sys.Devices)),
	}
	_, err := ms.Sys.LaunchAll(func(i int, dev *simt.Device) (*simt.LaunchReport, error) {
		if i >= len(shards) {
			return &simt.LaunchReport{}, nil
		}
		start := time.Now()
		span := ms.Trace.ChildOn(dev.Track(), fmt.Sprintf("shard %d", i),
			obs.Int("seqs", int64(shards[i].NumSeqs())),
			obs.Int("residues", shards[i].TotalResidues()))
		defer span.End()
		ddb := UploadDB(dev, shards[i])
		dp := UploadVitProfile(dev, vp)
		s := &Searcher{Dev: dev, Mem: ms.Mem, HostWorkers: ms.HostWorkers, Trace: span, Cancel: ms.Cancel}
		rep, err := s.ViterbiSearch(dp, ddb)
		if err != nil {
			return nil, err
		}
		out.PerDevice[i] = rep
		out.ShardResidues[i] = ddb.TotalResidues
		out.Util[i] = DeviceUtilization{Busy: time.Since(start), Residues: ddb.TotalResidues, Batches: 1}
		return rep.Launch, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rep := range out.PerDevice {
		if rep != nil {
			out.Results = append(out.Results, rep.Results...)
		}
	}
	return out, nil
}
