package gpu

import (
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/satmath"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// Device residue remapping. The on-device alphabet has 24 rows: the 20
// canonical residues, the genuinely ambiguous B, J and Z, and the
// fully degenerate X. O (pyrrolysine) and U (selenocysteine) expand to
// exactly one canonical residue, so they are rewritten to K and C when
// the database is uploaded; gap-like codes map to an invalid slot that
// scores as impossible.
const (
	devB       = 20
	devJ       = 21
	devZ       = 22
	devX       = 23
	devInvalid = 24
)

// remapResidue converts a host digital code to the device alphabet.
func remapResidue(c byte) byte {
	switch {
	case c < 20:
		return c
	case c == 20: // B
		return devB
	case c == 21: // J
		return devJ
	case c == 22: // Z
		return devZ
	case c == 23: // O -> K
		return 8
	case c == 24: // U -> C
		return 1
	case c == 25: // X
		return devX
	default:
		return devInvalid
	}
}

// hostRowForDeviceResidue maps a device emission-table row back to the
// host digital code whose profile scores it carries.
func hostRowForDeviceResidue(r int) byte {
	switch r {
	case devB:
		return 20 // B
	case devJ:
		return 21 // J
	case devZ:
		return 22 // Z
	case devX:
		return 25 // X
	default:
		return byte(r)
	}
}

// DeviceDB is a sequence database uploaded to a device: residues
// remapped to the device alphabet and packed six-per-word with a
// guaranteed trailing sentinel (Figure 6), plus logical global-memory
// addresses for traffic metering.
type DeviceDB struct {
	// Packed[s] is sequence s in packed form.
	Packed [][]uint32
	// Lens[s] is the residue count of sequence s.
	Lens []int
	// Addr[s] is the logical global base address of Packed[s].
	Addr []int64
	// ScoreAddr is the base address of the per-sequence result array.
	ScoreAddr int64
	// TotalResidues is the summed residue count (total DP rows).
	TotalResidues int64
}

// UploadDB prepares db for the device.
func UploadDB(dev *simt.Device, db *seq.Database) *DeviceDB {
	d := &DeviceDB{
		Packed: make([][]uint32, db.NumSeqs()),
		Lens:   make([]int, db.NumSeqs()),
		Addr:   make([]int64, db.NumSeqs()),
	}
	remapped := make([]byte, 0, 1024)
	for i, s := range db.Seqs {
		remapped = remapped[:0]
		for _, c := range s.Residues {
			remapped = append(remapped, remapResidue(c))
		}
		words := profile.PackTerminated(remapped)
		d.Packed[i] = words
		d.Lens[i] = s.Len()
		d.Addr[i] = dev.AllocGlobal(int64(4 * len(words)))
		d.TotalResidues += int64(s.Len())
	}
	d.ScoreAddr = dev.AllocGlobal(int64(8 * db.NumSeqs()))
	return d
}

// DeviceMSVProfile is the MSV filter profile in device layout: biased
// emission cost rows over the 24-residue device alphabet.
type DeviceMSVProfile struct {
	MP *profile.MSVProfile
	// Cost[r][k] for device residue r, node k (row devInvalid is all
	// 255 so gap codes score as impossible).
	Cost [][]uint8
	// TableAddr is the logical global address of the emission table.
	TableAddr int64
}

// UploadMSVProfile converts mp to device layout.
func UploadMSVProfile(dev *simt.Device, mp *profile.MSVProfile) *DeviceMSVProfile {
	d := &DeviceMSVProfile{MP: mp}
	d.Cost = make([][]uint8, devInvalid+1)
	for r := 0; r <= devInvalid; r++ {
		row := make([]uint8, mp.M+1)
		if r == devInvalid {
			for k := range row {
				row[k] = 255
			}
		} else {
			copy(row, mp.MatCost[hostRowForDeviceResidue(r)])
			row[0] = 255
		}
		d.Cost[r] = row
	}
	d.TableAddr = dev.AllocGlobal(int64(deviceAlphaSize * (mp.M + 1)))
	return d
}

// DeviceVitProfile is the P7Viterbi filter profile in device layout.
type DeviceVitProfile struct {
	VP *profile.VitProfile
	// MatUnit[r][k] over the device alphabet.
	MatUnit [][]int16
	// TableAddr is the logical global address of the emission table;
	// TransAddr of the transition block.
	TableAddr int64
	TransAddr int64
}

// UploadVitProfile converts vp to device layout.
func UploadVitProfile(dev *simt.Device, vp *profile.VitProfile) *DeviceVitProfile {
	d := &DeviceVitProfile{VP: vp}
	d.MatUnit = make([][]int16, devInvalid+1)
	for r := 0; r <= devInvalid; r++ {
		row := make([]int16, vp.M+1)
		if r == devInvalid {
			for k := range row {
				row[k] = satmath.NegInf16
			}
		} else {
			copy(row, vp.MatUnit[hostRowForDeviceResidue(r)])
			row[0] = satmath.NegInf16
		}
		d.MatUnit[r] = row
	}
	d.TableAddr = dev.AllocGlobal(int64(2 * deviceAlphaSize * (vp.M + 1)))
	d.TransAddr = dev.AllocGlobal(int64(7 * 2 * (vp.M + 1)))
	return d
}

// packedWordAddr returns the logical address of packed word wi of a
// sequence based at addr.
func packedWordAddr(addr int64, wi int) int64 { return addr + int64(4*wi) }
