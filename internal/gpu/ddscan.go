package gpu

import (
	"hmmer3gpu/internal/satmath"
	"hmmer3gpu/internal/simt"
)

// Prefix-scan D-D resolution — the paper's §VI future work: "in order
// to accelerate evaluation of sequential dependencies, parallel prefix
// sums can be employed to establish an upper bound in the number of
// iterations". Within a 32-position chunk the final D values satisfy
//
//	D(t) = max_{j <= t} ( seed(j) + W(j+1..t) ),   W = sum of D-D costs,
//
// a weighted max-plus inclusive scan, which a Kogge-Stone ladder
// resolves in log2(32) = 5 shuffle rounds regardless of how deep the
// D-D chains run — versus up to 31 vote-loop iterations for the lazy
// approach on delete-heavy models.
//
// Saturation note: D-D costs are negative and the 16-bit floor is
// absorbing, so accumulated weights use an explicit "absorbing
// negative infinity" (ddAdd) to keep the scan's one-shot sums exactly
// equal to the serial clamped step-by-step evaluation (the tests check
// bit-for-bit equality against the golden filter).

// ddAdd adds two weights with NegInf16 absorbing.
func ddAdd(a, b int16) int16 {
	if a == satmath.NegInf16 || b == satmath.NegInf16 {
		return satmath.NegInf16
	}
	s := satmath.AddI16(a, b)
	// A clamped sum of finite negative weights has reached the floor,
	// which the serial evaluation also treats as absorbing.
	return s
}

// ddScanState holds the preallocated buffers for the scan.
type ddScanState struct {
	acc, accOther   []int32
	wsum, wsumOther []int32
}

func newDDScanState(lanes int) *ddScanState {
	return &ddScanState{
		acc:       make([]int32, lanes),
		accOther:  make([]int32, lanes),
		wsum:      make([]int32, lanes),
		wsumOther: make([]int32, lanes),
	}
}

// ddScanResolve computes the final D values of one chunk from the
// per-lane M-D seeds (st.dv, already including the cross-chunk link in
// lane 0) and the per-lane incoming D-D edge weights, using shuffle-up
// exchanges. The result replaces st.dv. weights[l] is the cost of the
// D(t_l - 1) -> D(t_l) edge; lanes beyond the model are inactive.
func ddScanResolve(w *simt.Warp, sc *ddScanState, dv []int16, weights []int16, active int) {
	lanes := w.Lanes()
	for l := 0; l < lanes; l++ {
		sc.acc[l] = int32(dv[l])
		sc.wsum[l] = int32(weights[l])
	}
	// Kogge-Stone: after round s, acc[l] covers chains reaching back
	// 2^(s+1)-1 edges; wsum[l] is the weight of the last 2^(s+1) edges.
	for shift := 1; shift < lanes; shift <<= 1 {
		// A shuffle-up by `shift`: one shuffle instruction each for
		// values and weights.
		w.ShflUpI32Into(sc.accOther, sc.acc, shift)
		w.ShflUpI32Into(sc.wsumOther, sc.wsum, shift)
		w.ALU(3)
		for l := 0; l < lanes; l++ {
			if l < shift {
				continue // no source lane: chain starts here
			}
			// Candidate: the chain ending 'shift' lanes back, extended
			// by this lane's accumulated window weight.
			cand := ddAdd(int16(sc.accOther[l]), int16(sc.wsum[l]))
			if int32(cand) > sc.acc[l] {
				sc.acc[l] = int32(cand)
			}
			sc.wsum[l] = int32(ddAdd(int16(sc.wsum[l]), int16(sc.wsumOther[l])))
		}
	}
	for l := 0; l < active; l++ {
		dv[l] = int16(sc.acc[l])
	}
}
