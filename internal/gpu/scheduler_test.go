package gpu

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// feedBatches submits n small databases with the given per-batch
// residue counts.
func feedBatches(rng *rand.Rand, lens []int) func(submit func(*seq.Database) error) error {
	return func(submit func(*seq.Database) error) error {
		for _, l := range lens {
			db := seq.NewDatabase("sched")
			db.Add(&seq.Sequence{Name: "b", Residues: randomSeq(rng, l)})
			if err := submit(db); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestSchedulerProcessesEveryBatchOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sys := simt.NewSystem(simt.GTX580(), 3)
	lens := make([]int, 40)
	var wantResidues int64
	for i := range lens {
		lens[i] = 10 + rng.Intn(90)
		wantResidues += int64(lens[i])
	}

	var mu sync.Mutex
	seen := map[int]int{}    // batch ordinal -> times processed
	offsets := map[int]int{} // batch ordinal -> offset
	s := &Scheduler{Sys: sys}
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(2)), lens),
		func(devIdx int, dev *simt.Device, b Batch) error {
			if dev != sys.Devices[devIdx] {
				t.Error("devIdx does not match the device")
			}
			mu.Lock()
			seen[b.Seq]++
			offsets[b.Seq] = b.Offset
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != len(lens) || len(seen) != len(lens) {
		t.Fatalf("processed %d distinct of %d submitted batches", len(seen), rep.Batches)
	}
	for ord, n := range seen {
		if n != 1 {
			t.Errorf("batch %d processed %d times", ord, n)
		}
	}
	// One sequence per batch, so offsets must be exactly the ordinals.
	for ord, off := range offsets {
		if off != ord {
			t.Errorf("batch %d has offset %d", ord, off)
		}
	}
	if rep.Seqs != len(lens) || rep.Residues != wantResidues {
		t.Errorf("report totals %d seqs / %d residues, want %d / %d",
			rep.Seqs, rep.Residues, len(lens), wantResidues)
	}
	var busy time.Duration
	var gotResidues int64
	var gotBatches int
	for _, u := range rep.Util {
		busy += u.Busy
		gotResidues += u.Residues
		gotBatches += u.Batches
	}
	if gotBatches != len(lens) || gotResidues != wantResidues {
		t.Errorf("utilization sums %d batches / %d residues, want %d / %d",
			gotBatches, gotResidues, len(lens), wantResidues)
	}
	if busy <= 0 || rep.Wall <= 0 {
		t.Error("busy/wall times not recorded")
	}
}

func TestSchedulerBalancesAroundSlowDevice(t *testing.T) {
	// Device 0 is 30x slower per batch; dynamic assignment must route
	// most of the work to the fast devices instead of stalling on the
	// static 1/N share.
	sys := simt.NewSystem(simt.GTX580(), 3)
	lens := make([]int, 30)
	for i := range lens {
		lens[i] = 20
	}
	s := &Scheduler{Sys: sys, QueueDepth: 1}
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(3)), lens),
		func(devIdx int, dev *simt.Device, b Batch) error {
			d := time.Millisecond
			if devIdx == 0 {
				d = 30 * time.Millisecond
			}
			time.Sleep(d)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	fast := rep.Util[1].Batches + rep.Util[2].Batches
	if slow := rep.Util[0].Batches; slow >= fast {
		t.Errorf("slow device served %d of %d batches; scheduler did not rebalance", slow, rep.Batches)
	}
	if fast+rep.Util[0].Batches != len(lens) {
		t.Errorf("batches lost: %d + %d != %d", fast, rep.Util[0].Batches, len(lens))
	}
}

func TestSchedulerBackpressureBoundsQueue(t *testing.T) {
	// With QueueDepth=2 and workers blocked, at most depth+devices
	// batches can be submitted before the producer blocks.
	sys := simt.NewSystem(simt.GTX580(), 2)
	release := make(chan struct{})
	var submitted atomic.Int64
	done := make(chan error, 1)
	s := &Scheduler{Sys: sys, QueueDepth: 2}
	go func() {
		_, err := s.Run(func(submit func(*seq.Database) error) error {
			rng := rand.New(rand.NewSource(4))
			for i := 0; i < 20; i++ {
				db := seq.NewDatabase("bp")
				db.Add(&seq.Sequence{Name: "b", Residues: randomSeq(rng, 10)})
				if err := submit(db); err != nil {
					return err
				}
				submitted.Add(1)
			}
			return nil
		}, func(devIdx int, dev *simt.Device, b Batch) error {
			<-release
			return nil
		})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	if n := submitted.Load(); n > 4 {
		t.Errorf("%d batches submitted while workers blocked; backpressure bound is 4", n)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if submitted.Load() != 20 {
		t.Errorf("only %d of 20 batches submitted after release", submitted.Load())
	}
}

func TestSchedulerPropagatesErrors(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 2)
	sentinel := errors.New("kernel fault")
	s := &Scheduler{Sys: sys, QueueDepth: 1}
	_, err := s.Run(feedBatches(rand.New(rand.NewSource(5)), make([]int, 50)),
		func(devIdx int, dev *simt.Device, b Batch) error {
			if b.Seq == 3 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the process error", err)
	}

	parseErr := errors.New("bad fasta")
	_, err = s.Run(func(submit func(*seq.Database) error) error {
		return parseErr
	}, func(devIdx int, dev *simt.Device, b Batch) error { return nil })
	if !errors.Is(err, parseErr) {
		t.Fatalf("got %v, want the produce error", err)
	}

	empty := &Scheduler{Sys: &simt.System{}}
	if _, err := empty.Run(nil, nil); err == nil {
		t.Error("scheduler with no devices accepted")
	}
}

func TestDeviceWorkerReusesProfileUploads(t *testing.T) {
	// The worker must score batches identically to a fresh per-batch
	// searcher while uploading the model tables only once.
	rng := rand.New(rand.NewSource(6))
	mp, vp := buildProfiles(t, 60, 80, 7)
	dev := simt.NewDevice(simt.TeslaK40())
	w := NewDeviceWorker(dev, MemAuto, 0, mp, vp)

	for batch := 0; batch < 3; batch++ {
		db := testDB(t, rng, 12, 120)
		msvRep, err := w.MSVBatch(db)
		if err != nil {
			t.Fatal(err)
		}
		vitRep, err := w.ViterbiBatch(db)
		if err != nil {
			t.Fatal(err)
		}

		fresh := simt.NewDevice(simt.TeslaK40())
		s := &Searcher{Dev: fresh, Mem: MemAuto}
		wantMSV, err := s.MSVSearch(UploadMSVProfile(fresh, mp), UploadDB(fresh, db))
		if err != nil {
			t.Fatal(err)
		}
		wantVit, err := s.ViterbiSearch(UploadVitProfile(fresh, vp), UploadDB(fresh, db))
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantMSV.Results {
			if msvRep.Results[i] != wantMSV.Results[i] {
				t.Fatalf("batch %d seq %d: MSV differs from fresh searcher", batch, i)
			}
			if vitRep.Results[i] != wantVit.Results[i] {
				t.Fatalf("batch %d seq %d: Viterbi differs from fresh searcher", batch, i)
			}
		}
	}
}

// TestSchedulerLatencyHistograms pins the first-class latency
// distributions: every processed attempt lands in BatchSeconds, every
// claim's wait in QueueWaitSeconds, and Record exports both as
// Prometheus histograms with p50/p99 gauges.
func TestSchedulerLatencyHistograms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys := simt.NewSystem(simt.GTX580(), 2)
	lens := make([]int, 12)
	for i := range lens {
		lens[i] = 20
	}
	s := &Scheduler{Sys: sys}
	rep, err := s.Run(feedBatches(rng, lens),
		func(devIdx int, dev *simt.Device, b Batch) error {
			time.Sleep(time.Millisecond)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatchSeconds == nil || rep.BatchSeconds.Count != uint64(len(lens)) {
		t.Fatalf("BatchSeconds covers %+v, want %d observations", rep.BatchSeconds, len(lens))
	}
	if rep.QueueWaitSeconds == nil || rep.QueueWaitSeconds.Count != uint64(len(lens)) {
		t.Fatalf("QueueWaitSeconds covers %+v, want %d observations", rep.QueueWaitSeconds, len(lens))
	}
	if p50 := rep.BatchSeconds.Quantile(0.5); p50 <= 0 {
		t.Errorf("batch p50 = %g, want > 0", p50)
	}
	if p50, p99 := rep.BatchSeconds.Quantile(0.5), rep.BatchSeconds.Quantile(0.99); p99 < p50 {
		t.Errorf("p99 %g < p50 %g", p99, p50)
	}
	if !strings.Contains(rep.String(), "batch latency: p50") {
		t.Errorf("String() missing latency line:\n%s", rep.String())
	}

	reg := obs.NewRegistry()
	rep.Record(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE hmmer_sched_batch_seconds histogram",
		"hmmer_sched_batch_seconds_bucket{le=\"+Inf\"}",
		"hmmer_sched_batch_seconds_p50",
		"hmmer_sched_batch_seconds_p99",
		"# TYPE hmmer_sched_queue_wait_seconds histogram",
		"hmmer_sched_queue_wait_seconds_p99",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
	if h, ok := reg.GetHist("hmmer_sched_batch_seconds"); !ok || h.Count != uint64(len(lens)) {
		t.Errorf("registry histogram count = %+v, want %d", h, len(lens))
	}
}

// TestRecordEmitsStableDeviceSeries pins the metrics contract that a
// clean run and a faulted run export the same series set: the
// per-device quarantined gauge (and failure counters) appear for every
// device with explicit zeros, even on a report whose FaultReport
// carries no per-device breakdown at all. tracecheck -require and
// presence-based Prometheus alerts depend on this.
func TestRecordEmitsStableDeviceSeries(t *testing.T) {
	rep := &ScheduleReport{
		Util: make([]DeviceUtilization, 3),
		// Deliberately no Faults.Devices: a hand-built or legacy report
		// must still export the full series set.
	}
	reg := obs.NewRegistry()
	rep.Record(reg)
	for dev := 0; dev < 3; dev++ {
		name := obs.WithLabel("hmmer_sched_device_quarantined", "device", dev)
		v, ok := reg.Get(name)
		if !ok {
			t.Fatalf("clean report did not emit %s", name)
		}
		if v != 0 {
			t.Fatalf("%s = %g, want 0", name, v)
		}
		if _, ok := reg.Get(obs.WithLabel("hmmer_sched_device_failures_total", "device", dev)); !ok {
			t.Fatalf("clean report did not emit failures_total for device %d", dev)
		}
	}

	// A quarantined device flips only its own gauge.
	rep.Faults.Devices = make([]DeviceFaultStats, 3)
	rep.Faults.Devices[1].Quarantined = true
	reg2 := obs.NewRegistry()
	rep.Record(reg2)
	for dev, want := range []float64{0, 1, 0} {
		name := obs.WithLabel("hmmer_sched_device_quarantined", "device", dev)
		if v, _ := reg2.Get(name); v != want {
			t.Errorf("%s = %g, want %g", name, v, want)
		}
	}
}
