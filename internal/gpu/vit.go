package gpu

import (
	"math"
	"sync"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/satmath"
	"hmmer3gpu/internal/simt"
)

// vitRun carries one P7Viterbi launch's state.
type vitRun struct {
	db     *DeviceDB
	prof   *DeviceVitProfile
	plan   LaunchPlan
	eager  bool // lazyf ablation: always run the full D-D update loop
	ddScan bool // §VI extension: prefix-scan D-D resolution (Kepler)
	// rowAddr is the logical global base of the spilled per-warp row
	// buffers when plan.RowsInGlobal is set.
	rowAddr int64
	out     []cpu.FilterResult
	// lazyRows / lazyIters count rows needing >= 1 parallel lazy-F
	// iteration and the total iterations, summed over all warps
	// (written at launch end, read by the ablation benchmark).
	lazyRows, lazyIters []int64 // indexed by global warp id
	// states pools per-warp register buffers across blocks (the DP
	// rows are re-initialised per sequence, so reuse is safe).
	states sync.Pool
}

// Shared-memory layout per block for the Viterbi kernel:
//
//	[0, warps*6*(M+1))                    per-warp M/I/D int16 row buffers
//	[+, warps*reduceScratchI16)           Fermi reduction scratch
//	[+, 2*24*(M+1) + 14*(M+1))            model tables (MemShared only)
func (r *vitRun) rowBase(warpInBlock int) int {
	return warpInBlock * 6 * (r.prof.VP.M + 1)
}

// Region offsets within a warp's row area (byte offsets; 2 bytes/cell).
func (r *vitRun) mOff(rowBase, k int) int { return rowBase + 2*k }
func (r *vitRun) iOff(rowBase, k int) int { return rowBase + 2*(r.prof.VP.M+1) + 2*k }
func (r *vitRun) dOff(rowBase, k int) int { return rowBase + 4*(r.prof.VP.M+1) + 2*k }

func (r *vitRun) scratchBase(w *simt.Warp) int {
	if r.plan.RowsInGlobal {
		return w.WarpInBlock * reduceScratchI16
	}
	base := r.plan.WarpsPerBlock * 6 * (r.prof.VP.M + 1)
	return base + w.WarpInBlock*reduceScratchI16
}

func (r *vitRun) modelBase(hasShuffle bool) int {
	base := r.plan.WarpsPerBlock * 6 * (r.prof.VP.M + 1)
	if !hasShuffle {
		base += r.plan.WarpsPerBlock * reduceScratchI16
	}
	return base
}

// vitWarpState holds a warp's preallocated register buffers.
type vitWarpState struct {
	curM   []int16
	curI   []int16
	curD   []int16
	nextM  []int16
	nextI  []int16
	nextD  []int16
	pmT    []int16
	piT    []int16
	mv     []int16
	iv     []int16
	dv     []int16
	ddCand []int16
	xEv    []int16
	neg    []int16
	wgt    []int16
	// rowBuf backs the spilled DP rows (row-in-global variant only);
	// M, I and D regions are laid out exactly as in shared memory.
	rowBuf []int16
	rs     *reduceScratch
	scan   *ddScanState
}

func newVitWarpState(lanes, rowCells int) *vitWarpState {
	st := &vitWarpState{
		curM:   make([]int16, lanes),
		curI:   make([]int16, lanes),
		curD:   make([]int16, lanes),
		nextM:  make([]int16, lanes),
		nextI:  make([]int16, lanes),
		nextD:  make([]int16, lanes),
		pmT:    make([]int16, lanes),
		piT:    make([]int16, lanes),
		mv:     make([]int16, lanes),
		iv:     make([]int16, lanes),
		dv:     make([]int16, lanes),
		ddCand: make([]int16, lanes),
		xEv:    make([]int16, lanes),
		neg:    make([]int16, lanes),
		wgt:    make([]int16, lanes),
		rs:     newReduceScratch(lanes),
		scan:   newDDScanState(lanes),
	}
	if rowCells > 0 {
		st.rowBuf = make([]int16, rowCells)
	}
	for l := range st.neg {
		st.neg[l] = satmath.NegInf16
	}
	return st
}

// kernel is the warp-synchronous P7Viterbi kernel (Algorithm 2) with
// parallel Lazy-F (Figure 7).
func (r *vitRun) kernel(w *simt.Warp) {
	lanes := w.Lanes()
	vp := r.prof.VP
	m := vp.M
	neg := satmath.NegInf16
	rowBase := r.rowBase(w.WarpInBlock)
	scratchBase := r.scratchBase(w)
	st, _ := r.states.Get().(*vitWarpState)
	if st == nil {
		rowCells := 0
		if r.plan.RowsInGlobal {
			rowCells = 3 * (m + 1)
		}
		st = newVitWarpState(lanes, rowCells)
	}
	defer r.states.Put(st)
	if r.plan.RowsInGlobal {
		rowBase = 0 // helpers address the warp's private spilled area
	}

	// Model prologue: meter the cooperative global->shared copy when
	// the model lives in shared memory.
	if r.plan.MemConfig == MemShared && w.WarpInBlock == 0 {
		tableBytes := 2*deviceAlphaSize*(m+1) + 14*(m+1)
		for off := 0; off < tableBytes; off += 4 * lanes {
			n := (tableBytes - off + 3) / 4
			if n > lanes {
				n = lanes
			}
			w.GlobalSpanLoad(r.prof.TableAddr+int64(off), 4, n)
		}
	}

	nSeqs := len(r.db.Packed)
	span := w.TotalWarps()
	var lazyRows, lazyIters int64

	for seqID := w.GlobalWarpID(); seqID < nSeqs; seqID += span {
		words := r.db.Packed[seqID]
		seqAddr := r.db.Addr[seqID]
		seqLen := r.db.Lens[seqID]
		w.ALU(4)

		// Initialise all three row buffers to -infinity.
		for region := 0; region < 3; region++ {
			for k0 := 0; k0 <= m; k0 += lanes {
				r.storeAt(w, st, st.neg, rowBase+region*2*(m+1), k0, m)
			}
		}

		xJ, xC := neg, neg
		xB := vp.TMove

		for i := 0; i < seqLen; i++ {
			if i%alphabet.ResiduesPerWord == 0 {
				w.GlobalBroadcastLoad(packedWordAddr(seqAddr, i/alphabet.ResiduesPerWord), 4)
			}
			res := alphabet.PackedAt(words, i)
			if res == alphabet.PackSentinel {
				break
			}
			w.ALU(2)

			mscRow := r.prof.MatUnit[res]
			xBtbm := satmath.AddI16(xB, vp.TBM)
			for l := 0; l < lanes; l++ {
				st.xEv[l] = neg
			}
			w.ALU(2)

			dChain := neg // D value at the last completed position
			dAtM := neg   // final D(M), folded into E after the row
			rowIters := 0 // parallel lazy-F iterations this row

			// Load the first 32 previous-row dependencies.
			r.loadRow3(w, st, rowBase, 0, m)

			for p0 := 0; p0 < m; p0 += lanes {
				// Double-buffer the warp boundary: prefetch the next 32
				// previous-row cells before any in-place update.
				if p0+lanes < m {
					r.prefetchRow3(w, st, rowBase, p0+lanes, m)
				}

				// Previous-row M and I at the target positions (for the
				// I recurrence) — still unwritten this row.
				r.loadAt(w, st, st.pmT, r.mOff(rowBase, 0), p0+1, m)
				r.loadAt(w, st, st.piT, r.iOff(rowBase, 0), p0+1, m)

				// Model parameter fetches (metered per configuration).
				r.meterModel(w, st, res, p0, m)

				// temp_m / temp_i (Algorithm 2, lines 15-18).
				for l := 0; l < lanes; l++ {
					t := p0 + 1 + l
					if t > m {
						continue
					}
					s := t - 1
					mv := satmath.MaxI16(
						satmath.MaxI16(
							satmath.AddI16(st.curM[l], vp.TMM[s]),
							satmath.AddI16(st.curI[l], vp.TIM[s]),
						),
						satmath.MaxI16(
							satmath.AddI16(st.curD[l], vp.TDM[s]),
							xBtbm,
						),
					)
					mv = satmath.AddI16(mv, mscRow[t])
					st.mv[l] = mv
					st.iv[l] = satmath.MaxI16(
						satmath.AddI16(st.pmT[l], vp.TMI[t]),
						satmath.AddI16(st.piT[l], vp.TII[t]),
					)
					st.xEv[l] = satmath.MaxI16(st.xEv[l], mv)
				}
				w.ALU(10)

				// Store M and I (line 20).
				r.storeAt(w, st, st.mv, r.mOff(rowBase, 0), p0+1, m)
				r.storeAt(w, st, st.iv, r.iOff(rowBase, 0), p0+1, m)

				// D partial value: M-D path only (line 17). The new M at
				// t-1 is read back through shared memory — lane 0 picks
				// up the previous chunk's boundary cell.
				r.loadAt(w, st, st.pmT, r.mOff(rowBase, 0), p0, m)
				for l := 0; l < lanes; l++ {
					t := p0 + 1 + l
					if t > m {
						continue
					}
					st.dv[l] = satmath.AddI16(st.pmT[l], vp.TMD[t-1])
				}
				// Cross-chunk D-D link into lane 0.
				st.dv[0] = satmath.MaxI16(st.dv[0],
					satmath.AddI16(dChain, vp.TDD[p0]))
				w.ALU(3)

				if r.ddScan {
					// §VI extension: resolve every intra-chunk D-D
					// chain with a 5-round weighted max-plus prefix
					// scan over shuffles, then store once.
					active := lanes
					if m-p0 < active {
						active = m - p0
					}
					for l := 0; l < lanes; l++ {
						if t := p0 + 1 + l; t <= m {
							st.wgt[l] = vp.TDD[t-1]
						} else {
							st.wgt[l] = satmath.NegInf16
						}
					}
					ddScanResolve(w, st.scan, st.dv, st.wgt, active)
					r.storeAt(w, st, st.dv, r.dOff(rowBase, 0), p0+1, m)
				} else {
					r.storeAt(w, st, st.dv, r.dOff(rowBase, 0), p0+1, m)

					// Parallel Lazy-F (Figure 7): iterate until the
					// warp vote confirms every position holds its
					// highest D. (The eager ablation runs the full
					// worst-case loop unconditionally — the cost the
					// lazy design avoids.)
					for iter := 0; iter < lanes; iter++ {
						r.loadAt(w, st, st.ddCand, r.dOff(rowBase, 0), p0, m)
						// The vote predicate folds into a host flag in
						// the same pass that computes the candidates.
						settled := true
						for l := 0; l < lanes; l++ {
							t := p0 + 1 + l
							if t > m {
								continue
							}
							cand := satmath.AddI16(st.ddCand[l], vp.TDD[t-1])
							st.ddCand[l] = cand
							if st.dv[l] < cand {
								settled = false
							}
						}
						w.ALU(3)
						if !r.eager {
							w.Vote()
							if settled {
								break
							}
						}
						rowIters++
						for l := 0; l < lanes; l++ {
							if p0+1+l <= m {
								st.dv[l] = satmath.MaxI16(st.dv[l], st.ddCand[l])
							}
						}
						w.ALU(1)
						r.storeAt(w, st, st.dv, r.dOff(rowBase, 0), p0+1, m)
					}
				}

				// Carry the chunk boundary D value and remember D(M).
				lastT := p0 + lanes
				if lastT > m {
					lastT = m
				}
				dChain = st.dv[lastT-p0-1]
				if lastT == m {
					dAtM = st.dv[m-p0-1]
				}
				w.ALU(2)

				st.curM, st.nextM = st.nextM, st.curM
				st.curI, st.nextI = st.nextI, st.curI
				st.curD, st.nextD = st.nextD, st.curD
			}

			if rowIters > 0 {
				lazyRows++
				lazyIters += int64(rowIters)
			}

			// Row maximum (line 22) plus the D_M local exit, then the
			// specials (line 24).
			xE := warpMaxI16(w, st.xEv, scratchBase, st.rs)
			xE = satmath.MaxI16(xE, dAtM)
			xJ = satmath.MaxI16(xJ, satmath.AddI16(xE, vp.TEJ))
			xC = satmath.MaxI16(xC, satmath.AddI16(xE, vp.TEC))
			xB = satmath.AddI16(satmath.MaxI16(0, xJ), vp.TMove)
			w.ALU(5)
		}

		if profile.Overflowed(xC) {
			r.out[seqID] = cpu.FilterResult{Score: math.Inf(1), Overflowed: true}
		} else {
			r.out[seqID] = cpu.FilterResult{Score: vp.ScoreToNats(xC)}
		}
		w.GlobalSpanStore(r.db.ScoreAddr+int64(8*seqID), 8, 1)
	}

	if r.lazyRows != nil {
		r.lazyRows[w.GlobalWarpID()] += lazyRows
		r.lazyIters[w.GlobalWarpID()] += lazyIters
	}
}

// loadRow3 fills curM/curI/curD with previous-row values at positions
// p0+l.
func (r *vitRun) loadRow3(w *simt.Warp, st *vitWarpState, rowBase, p0, m int) {
	r.loadAt(w, st, st.curM, r.mOff(rowBase, 0), p0, m)
	r.loadAt(w, st, st.curI, r.iOff(rowBase, 0), p0, m)
	r.loadAt(w, st, st.curD, r.dOff(rowBase, 0), p0, m)
}

// prefetchRow3 fills nextM/nextI/nextD with previous-row values at
// positions p0+l.
func (r *vitRun) prefetchRow3(w *simt.Warp, st *vitWarpState, rowBase, p0, m int) {
	r.loadAt(w, st, st.nextM, r.mOff(rowBase, 0), p0, m)
	r.loadAt(w, st, st.nextI, r.iOff(rowBase, 0), p0, m)
	r.loadAt(w, st, st.nextD, r.dOff(rowBase, 0), p0, m)
}

// loadAt gathers int16 cells at positions p0+l (consecutive cells: a
// conflict-free span) from a row region whose position-0 byte offset
// is base0 (warp-relative when rows are spilled to global memory).
func (r *vitRun) loadAt(w *simt.Warp, st *vitWarpState, dst []int16, base0, p0, m int) {
	n := m + 1 - p0
	if lanes := w.Lanes(); n > lanes {
		n = lanes
	}
	off0 := base0 + 2*p0
	if r.plan.RowsInGlobal {
		warpBase := r.rowAddr + int64(w.GlobalWarpID())*int64(6*(m+1))
		w.GlobalSpanLoadCached(warpBase+int64(off0), 2, n)
		copy(dst[:n], st.rowBuf[off0/2:off0/2+n])
		return
	}
	w.SharedSpanLoadI16(dst, off0, n)
}

// storeAt scatters int16 cells to positions p0+l.
func (r *vitRun) storeAt(w *simt.Warp, st *vitWarpState, vals []int16, base0, p0, m int) {
	n := m + 1 - p0
	if lanes := w.Lanes(); n > lanes {
		n = lanes
	}
	off0 := base0 + 2*p0
	if r.plan.RowsInGlobal {
		warpBase := r.rowAddr + int64(w.GlobalWarpID())*int64(6*(m+1))
		w.GlobalSpanStoreCached(warpBase+int64(off0), 2, n)
		copy(st.rowBuf[off0/2:off0/2+n], vals[:n])
		return
	}
	w.SharedSpanStoreI16(vals, off0, n)
}

// meterModel accounts the emission and transition parameter fetches
// for one chunk (the values themselves come from the host tables).
func (r *vitRun) meterModel(w *simt.Warp, st *vitWarpState, res byte, p0, m int) {
	n := m - p0
	if lanes := w.Lanes(); n > lanes {
		n = lanes
	}
	if r.plan.MemConfig == MemShared {
		mb := r.modelBase(w.HasShuffle())
		// Emission row + 7 transition arrays: 8 shared gathers of
		// consecutive 16-bit cells (conflict-free).
		for arr := 0; arr < 8; arr++ {
			var b int
			if arr == 0 {
				b = mb + int(res)*2*(m+1)
			} else {
				b = mb + 2*deviceAlphaSize*(m+1) + (arr-1)*2*(m+1)
			}
			w.SharedSpanTouch(b+2*p0, 2, n, false)
		}
		return
	}
	for arr := 0; arr < 8; arr++ {
		var b int64
		if arr == 0 {
			b = r.prof.TableAddr + int64(int(res)*2*(m+1))
		} else {
			b = r.prof.TransAddr + int64((arr-1)*2*(m+1))
		}
		w.GlobalSpanLoadCached(b+int64(2*p0), 2, n)
	}
}
