package gpu

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// TestSchedulerDrainStopsSubmission closes the drain channel partway
// through the stream: the scheduler must refuse further submits, finish
// every batch already accepted, report Drained, and not surface an
// error to the caller.
func TestSchedulerDrainStopsSubmission(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys := simt.NewSystem(simt.GTX580(), 2)
	drain := make(chan struct{})

	var mu sync.Mutex
	processed := map[int]bool{}
	s := &Scheduler{Sys: sys, Drain: drain}
	submitted := 0
	rep, err := s.Run(func(submit func(*seq.Database) error) error {
		for i := 0; i < 40; i++ {
			if i == 5 {
				close(drain)
			}
			db := seq.NewDatabase("drain")
			db.Add(&seq.Sequence{Name: "b", Residues: randomSeq(rng, 50)})
			if err := submit(db); err != nil {
				return err
			}
			submitted++
		}
		return nil
	}, func(devIdx int, dev *simt.Device, b Batch) error {
		mu.Lock()
		processed[b.Seq] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("drained run surfaced an error: %v", err)
	}
	if !rep.Drained {
		t.Fatal("report does not mark the run drained")
	}
	if submitted >= 40 {
		t.Fatal("drain did not stop the producer")
	}
	// Every accepted batch completed: no batch accepted then dropped.
	mu.Lock()
	defer mu.Unlock()
	if len(processed) != rep.Batches || len(processed) != submitted {
		t.Fatalf("processed %d batches, accepted %d, submitted %d",
			len(processed), rep.Batches, submitted)
	}
}

// TestSchedulerDrainBeforeStart closes the drain channel before the run
// begins: the first submit is refused, zero batches execute, and the
// run still returns cleanly with Drained set.
func TestSchedulerDrainBeforeStart(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sys := simt.NewSystem(simt.GTX580(), 2)
	drain := make(chan struct{})
	close(drain)

	s := &Scheduler{Sys: sys, Drain: drain}
	rep, err := s.Run(feedBatches(rng, []int{30, 30, 30}),
		func(devIdx int, dev *simt.Device, b Batch) error { return nil })
	if err != nil {
		t.Fatalf("pre-drained run surfaced an error: %v", err)
	}
	if !rep.Drained || rep.Batches != 0 {
		t.Fatalf("want Drained with 0 batches, got Drained=%v Batches=%d", rep.Drained, rep.Batches)
	}
}

// TestSchedulerDrainErrorIsSilenced checks that a producer returning
// ErrDraining verbatim (the normal propagation path through a streaming
// parser) is not reported as a run error.
func TestSchedulerDrainErrorIsSilenced(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 1)
	s := &Scheduler{Sys: sys}
	_, err := s.Run(func(submit func(*seq.Database) error) error {
		return ErrDraining
	}, func(devIdx int, dev *simt.Device, b Batch) error { return nil })
	if err != nil {
		t.Fatalf("ErrDraining from the producer surfaced as %v", err)
	}
	// A different producer error still surfaces.
	boom := errors.New("boom")
	_, err = s.Run(func(submit func(*seq.Database) error) error {
		return boom
	}, func(devIdx int, dev *simt.Device, b Batch) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("producer error lost: %v", err)
	}
}

// TestRunBatchesCallerOrdinals checks the resume-enabling contract of
// RunBatches: the caller owns batch identity, so skipped ordinals and
// non-contiguous offsets pass through to the processor untouched.
func TestRunBatchesCallerOrdinals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sys := simt.NewSystem(simt.GTX580(), 2)

	// Simulate a resume that already has batches 0 and 2: submit only 1
	// and 3, with offsets as the original chunking assigned them.
	want := map[int]int{1: 10, 3: 30}
	var mu sync.Mutex
	got := map[int]int{}
	s := &Scheduler{Sys: sys}
	rep, err := s.RunBatches(context.Background(), func(submit func(b Batch) error) error {
		for seqNo, off := range want {
			db := seq.NewDatabase("resume")
			db.Add(&seq.Sequence{Name: "b", Residues: randomSeq(rng, 40)})
			if err := submit(Batch{Seq: seqNo, Offset: off, DB: db}); err != nil {
				return err
			}
		}
		return nil
	}, func(devIdx int, dev *simt.Device, b Batch) error {
		mu.Lock()
		got[b.Seq] = b.Offset
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 2 {
		t.Fatalf("ran %d batches, want 2", rep.Batches)
	}
	mu.Lock()
	defer mu.Unlock()
	for seqNo, off := range want {
		if got[seqNo] != off {
			t.Errorf("batch %d processed with offset %d, want %d", seqNo, got[seqNo], off)
		}
	}
}

// TestRunBatchesRejectsNilDB checks submit validation.
func TestRunBatchesRejectsNilDB(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 1)
	s := &Scheduler{Sys: sys}
	_, err := s.RunBatches(context.Background(), func(submit func(b Batch) error) error {
		return submit(Batch{Seq: 0, Offset: 0})
	}, func(devIdx int, dev *simt.Device, b Batch) error { return nil })
	if err == nil {
		t.Fatal("nil-DB batch accepted")
	}
}
