package gpu_test

import (
	"fmt"
	"math/rand"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// ExampleSearcher_MSVSearch scores a tiny database with the
// warp-synchronous MSV kernel on a simulated Tesla K40 and shows that
// it matches the CPU golden filter bit for bit.
func ExampleSearcher_MSVSearch() {
	abc := alphabet.New()
	rng := rand.New(rand.NewSource(1))
	h, _ := hmm.Random("example", 64, abc, hmm.DefaultBuildParams(), rng)
	p := profile.Config(h)
	p.SetLength(100)
	mp := profile.NewMSVProfile(p)

	db := seq.NewDatabase("tiny")
	for i := 0; i < 4; i++ {
		res := make([]byte, 100)
		for j := range res {
			res[j] = byte(rng.Intn(20))
		}
		db.Add(&seq.Sequence{Name: fmt.Sprintf("t%d", i), Residues: res})
	}

	dev := simt.NewDevice(simt.TeslaK40())
	s := &gpu.Searcher{Dev: dev, Mem: gpu.MemShared}
	rep, err := s.MSVSearch(gpu.UploadMSVProfile(dev, mp), gpu.UploadDB(dev, db))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d sequences scored, occupancy %.0f%%, %d syncthreads\n",
		len(rep.Results), rep.Plan.Occupancy.Fraction*100, rep.Launch.Stats.Syncs)
	// Output: 4 sequences scored, occupancy 100%, 0 syncthreads
}

// ExamplePlanMSV shows the shared/global auto switch at the paper's
// model-size threshold.
func ExamplePlanMSV() {
	spec := simt.TeslaK40()
	for _, m := range []int{400, 1528} {
		plan, err := gpu.PlanMSV(spec, m, gpu.MemAuto)
		if err != nil {
			panic(err)
		}
		fmt.Printf("M=%d -> %s\n", m, plan.MemConfig)
	}
	// Output:
	// M=400 -> shared
	// M=1528 -> global
}
