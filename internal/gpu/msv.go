package gpu

import (
	"math"
	"sync"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/satmath"
	"hmmer3gpu/internal/simt"
)

// msvRun carries one MSV launch's state. Results are written at each
// sequence's database index; warps never share a sequence, so the
// output needs no locking.
type msvRun struct {
	db     *DeviceDB
	prof   *DeviceMSVProfile
	plan   LaunchPlan
	packed bool // residue packing on (off only in the packing ablation)
	out    []cpu.FilterResult
	// states pools per-warp register buffers across the blocks a host
	// worker executes (a fresh allocation per warp per block is pure
	// GC pressure: the buffers are fully re-initialised per sequence).
	states sync.Pool
}

// Shared-memory layout per block for the MSV kernel:
//
//	[0, warps*(M+1))                      per-warp DP row buffers
//	[+, warps*reduceScratchU8)            Fermi reduction scratch
//	[+, deviceAlphaSize*(M+1))            emission table (MemShared only)
func (r *msvRun) rowBase(warpInBlock int) int {
	return warpInBlock * (r.prof.MP.M + 1)
}

func (r *msvRun) scratchBase(w *simt.Warp) int {
	base := r.plan.WarpsPerBlock * (r.prof.MP.M + 1)
	return base + w.WarpInBlock*reduceScratchU8
}

func (r *msvRun) modelBase(hasShuffle bool) int {
	base := r.plan.WarpsPerBlock * (r.prof.MP.M + 1)
	if !hasShuffle {
		base += r.plan.WarpsPerBlock * reduceScratchU8
	}
	return base
}

// msvWarpState holds a warp's preallocated register buffers.
type msvWarpState struct {
	cur  []uint8
	next []uint8
	temp []uint8
	xEv  []uint8
	zero []uint8
	rs   *reduceScratch
}

func newMSVWarpState(lanes int) *msvWarpState {
	return &msvWarpState{
		cur:  make([]uint8, lanes),
		next: make([]uint8, lanes),
		temp: make([]uint8, lanes),
		xEv:  make([]uint8, lanes),
		zero: make([]uint8, lanes),
		rs:   newReduceScratch(lanes),
	}
}

// kernel is the warp-synchronous MSV alignment kernel (Algorithm 1).
func (r *msvRun) kernel(w *simt.Warp) {
	lanes := w.Lanes()
	mp := r.prof.MP
	m := mp.M
	const base = uint8(profile.MSVBase)
	overflowAt := mp.OverflowThreshold()
	rowBase := r.rowBase(w.WarpInBlock)
	scratchBase := r.scratchBase(w)
	st, _ := r.states.Get().(*msvWarpState)
	if st == nil {
		st = newMSVWarpState(lanes)
	}
	defer r.states.Put(st)
	cur, next := st.cur, st.next

	// Block prologue: with the model in shared memory, the block loads
	// the emission table from global once (metered as the cooperative
	// load it would be; warp 0 performs it here, which the simulator's
	// in-order warp start makes visible to its block mates).
	if r.plan.MemConfig == MemShared && w.WarpInBlock == 0 {
		mb := r.modelBase(w.HasShuffle())
		tableBytes := deviceAlphaSize * (m + 1)
		for off := 0; off < tableBytes; off += 4 * lanes {
			n := (tableBytes - off + 3) / 4
			if n > lanes {
				n = lanes
			}
			w.GlobalSpanLoad(r.prof.TableAddr+int64(off), 4, n)
		}
		// Materialise the table so emission reads flow through the
		// simulated shared memory (stores metered in 32-byte groups).
		for rcode := 0; rcode < deviceAlphaSize; rcode++ {
			src := r.prof.Cost[rcode]
			for k0 := 0; k0 <= m; k0 += lanes {
				n := m + 1 - k0
				if n > lanes {
					n = lanes
				}
				w.SharedSpanStoreU8(src[k0:], mb+rcode*(m+1)+k0, n)
			}
		}
	}

	nSeqs := len(r.db.Packed)
	span := w.TotalWarps()
	for seqID := w.GlobalWarpID(); seqID < nSeqs; seqID += span {
		words := r.db.Packed[seqID]
		seqAddr := r.db.Addr[seqID]
		seqLen := r.db.Lens[seqID]
		w.ALU(4) // loop/index setup

		// Clear this warp's DP row buffer (the -inf floor is byte 0).
		for p0 := 0; p0 <= m; p0 += lanes {
			n := m + 1 - p0
			if n > lanes {
				n = lanes
			}
			w.SharedSpanStoreU8(st.zero, rowBase+p0, n)
		}

		xJ := uint8(0)
		xB := satmath.SubU8(base, mp.TJB)
		overflowed := false

		for i := 0; i < seqLen; i++ {
			// Fetch the packed word holding residue i (all lanes read
			// the same address: one transaction, hardware broadcast).
			if r.packed {
				if i%alphabet.ResiduesPerWord == 0 {
					w.GlobalBroadcastLoad(packedWordAddr(seqAddr, i/alphabet.ResiduesPerWord), 4)
				}
			} else {
				// Packing ablation: one byte-per-residue fetch per row.
				w.GlobalBroadcastLoad(seqAddr+int64(i), 1)
			}
			res := alphabet.PackedAt(words, i)
			if res == alphabet.PackSentinel {
				// Redundant-cell flag (Figure 6): end of sequence.
				break
			}
			w.ALU(2) // decode: shift + mask

			costRow := r.prof.Cost[res]
			xBtbm := satmath.SubU8(xB, mp.TBM)
			for l := 0; l < lanes; l++ {
				st.xEv[l] = 0
			}
			w.ALU(2)

			// Step 1 (Figure 5): load the first 32 previous-row cells.
			r.loadRow(w, cur, rowBase, 0, m)

			for p0 := 0; p0 < m; p0 += lanes {
				// Step 2: cache the next 32 dependencies before the
				// in-place update can overwrite the warp boundary.
				if p0+lanes < m {
					r.loadRow(w, next, rowBase, p0+lanes, m)
				}

				// Emission costs for target positions p0+1+l.
				r.loadCosts(w, st.temp, costRow, res, p0, m)

				// temp = max(mmx, xB) + bias - em(res, p)  (line 15).
				for l := 0; l < lanes; l++ {
					t := p0 + 1 + l
					if t > m {
						continue
					}
					sv := satmath.MaxU8(cur[l], xBtbm)
					sv = satmath.AddU8(sv, mp.Bias)
					sv = satmath.SubU8(sv, st.temp[l])
					st.temp[l] = sv
					st.xEv[l] = satmath.MaxU8(st.xEv[l], sv)
				}
				w.ALU(4)

				// Step 3: write the updated cells back (line 18).
				n := m - p0
				if n > lanes {
					n = lanes
				}
				w.SharedSpanStoreU8(st.temp, rowBase+p0+1, n)

				cur, next = next, cur
			}

			// Warp-shuffled max reduction and broadcast (line 20).
			xE := warpMaxU8(w, st.xEv, scratchBase, st.rs)
			if xE >= overflowAt {
				overflowed = true
				break
			}
			xJ = satmath.MaxU8(xJ, satmath.SubU8(xE, mp.TEC))
			xB = satmath.SubU8(satmath.MaxU8(base, xJ), mp.TJB)
			w.ALU(4)
		}

		if overflowed {
			r.out[seqID] = cpu.FilterResult{Score: math.Inf(1), Overflowed: true}
		} else {
			r.out[seqID] = cpu.FilterResult{Score: mp.ScoreToNats(xJ)}
		}
		// Save the final score (line 23): one active lane, 8 bytes.
		w.GlobalSpanStore(r.db.ScoreAddr+int64(8*seqID), 8, 1)
	}
}

// loadRow reads previous-row cells at positions p0+l into dst through
// shared memory (consecutive bytes: intrinsically conflict-free).
func (r *msvRun) loadRow(w *simt.Warp, dst []uint8, rowBase, p0, m int) {
	n := m + 1 - p0
	if lanes := w.Lanes(); n > lanes {
		n = lanes
	}
	w.SharedSpanLoadU8(dst, rowBase+p0, n)
}

// loadCosts fetches the emission costs for targets p0+1+l into dst,
// metering shared or global traffic per the launch's memory
// configuration.
func (r *msvRun) loadCosts(w *simt.Warp, dst []uint8, costRow []uint8, res byte, p0, m int) {
	n := m - p0
	if lanes := w.Lanes(); n > lanes {
		n = lanes
	}
	if r.plan.MemConfig == MemShared {
		mb := r.modelBase(w.HasShuffle())
		w.SharedSpanLoadU8(dst, mb+int(res)*(m+1)+p0+1, n)
		return
	}
	w.GlobalSpanLoadCached(r.prof.TableAddr+int64(int(res)*(m+1)+p0+1), 1, n)
	copy(dst[:n], costRow[p0+1:p0+1+n])
}
