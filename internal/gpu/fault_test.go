package gpu

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hmmer3gpu/internal/integrity"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// fakeClock makes backoff instantaneous while recording every delay
// the scheduler asked for, so retry tests run with no real sleeps.
type fakeClock struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (c *fakeClock) Now() time.Time { return time.Unix(0, 0) }

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.delays = append(c.delays, d)
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- time.Unix(0, 0)
	return ch
}

func (c *fakeClock) recorded() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.delays...)
}

// transientErr builds the fault a device launch surfaces for a failed
// launch.
func transientErr(dev string) error {
	return &simt.FaultError{Device: dev, Ordinal: 0, Err: simt.ErrLaunchFailed}
}

func TestSchedulerRetriesTransientFaultWithBackoff(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 1)
	clock := &fakeClock{}
	s := &Scheduler{Sys: sys, Clock: clock, MaxRetries: 5, QuarantineAfter: -1,
		BackoffBase: 10 * time.Millisecond, BackoffCap: 35 * time.Millisecond}

	var attempts int32
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			if atomic.AddInt32(&attempts, 1) <= 3 {
				return transientErr(dev.Track())
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 4 {
		t.Errorf("attempts = %d, want 4 (3 failures + success)", attempts)
	}
	if rep.Faults.Retries != 3 || rep.Faults.Devices[0].Retries != 3 {
		t.Errorf("retries = %d (device %d), want 3", rep.Faults.Retries, rep.Faults.Devices[0].Retries)
	}
	if rep.Faults.Devices[0].Failures != 3 {
		t.Errorf("device failures = %d, want 3", rep.Faults.Devices[0].Failures)
	}
	// Exponential backoff: 10ms, 20ms, then capped at 35ms.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond}
	got := clock.recorded()
	if len(got) != len(want) {
		t.Fatalf("backoff delays = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v", i, got[i], want[i])
		}
	}
	if rep.Util[0].Batches != 1 {
		t.Errorf("device completed %d batches, want 1", rep.Util[0].Batches)
	}
}

func TestSchedulerRetryBudgetExhaustionFailsRun(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 1)
	s := &Scheduler{Sys: sys, Clock: &fakeClock{}, MaxRetries: 2, QuarantineAfter: -1}
	_, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			return transientErr(dev.Track())
		})
	if !errors.Is(err, simt.ErrLaunchFailed) {
		t.Fatalf("err = %v, want wrapped ErrLaunchFailed", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("err = %v, want attempt count in message", err)
	}
}

func TestSchedulerRetriesDisabled(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 1)
	s := &Scheduler{Sys: sys, Clock: &fakeClock{}, MaxRetries: -1, QuarantineAfter: -1}
	var attempts int32
	_, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			atomic.AddInt32(&attempts, 1)
			return transientErr(dev.Track())
		})
	if !errors.Is(err, simt.ErrLaunchFailed) {
		t.Fatalf("err = %v, want wrapped ErrLaunchFailed", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (retries disabled)", attempts)
	}
}

func TestSchedulerRequeuesToDifferentDevice(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 2)
	clock := &fakeClock{}
	s := &Scheduler{Sys: sys, Clock: clock, QuarantineAfter: -1}
	var mu sync.Mutex
	served := map[int][]int{} // batch -> device sequence
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			mu.Lock()
			served[b.Seq] = append(served[b.Seq], devIdx)
			first := len(served[b.Seq]) == 1
			mu.Unlock()
			if first {
				return transientErr(dev.Track())
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	devs := served[0]
	if len(devs) != 2 || devs[0] == devs[1] {
		t.Fatalf("batch served by devices %v, want a retry on the other device", devs)
	}
	if rep.Faults.Requeues != 1 {
		t.Errorf("requeues = %d, want 1", rep.Faults.Requeues)
	}
}

func TestSchedulerQuarantinesAfterConsecutiveFailures(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 2)
	s := &Scheduler{Sys: sys, Clock: &fakeClock{}, QuarantineAfter: 3, MaxRetries: 100}
	// Device 0 always fails; device 1 succeeds but holds its first
	// batch until device 0 has tripped the breaker, so the failures are
	// guaranteed to land on device 0 regardless of host scheduling.
	var processed int32
	tripped := make(chan struct{})
	var fails int32
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50, 50, 50, 50, 50, 50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			if devIdx == 0 {
				if atomic.AddInt32(&fails, 1) == 3 {
					close(tripped)
				}
				return transientErr(dev.Track())
			}
			<-tripped
			atomic.AddInt32(&processed, 1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Faults.Devices[0].Quarantined || rep.Faults.Quarantines != 1 {
		t.Errorf("device 0 not quarantined: %+v", rep.Faults)
	}
	if rep.Faults.Devices[1].Quarantined {
		t.Error("healthy device 1 was quarantined")
	}
	if int(processed) != rep.Batches {
		t.Errorf("device 1 completed %d of %d batches", processed, rep.Batches)
	}
	if rep.Faults.Devices[0].Failures < 3 {
		t.Errorf("device 0 failures = %d, want >= 3 before quarantine", rep.Faults.Devices[0].Failures)
	}
	if rep.Util[0].Batches != 0 {
		t.Errorf("quarantined device credited %d completed batches", rep.Util[0].Batches)
	}
}

func TestSchedulerQuarantinesLostDeviceImmediately(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 2)
	s := &Scheduler{Sys: sys, Clock: &fakeClock{}}
	// Device 1 holds its first batch until device 0 has faulted, so the
	// lost device is guaranteed to see (exactly) one batch.
	var failures int32
	lost := make(chan struct{})
	var lostOnce sync.Once
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50, 50, 50, 50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			if devIdx == 0 {
				atomic.AddInt32(&failures, 1)
				lostOnce.Do(func() { close(lost) })
				return &simt.FaultError{Device: dev.Track(), Persistent: true, Err: simt.ErrDeviceLost}
			}
			<-lost
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Errorf("lost device was asked to process %d batches, want 1 (immediate quarantine)", failures)
	}
	if !rep.Faults.Devices[0].Quarantined {
		t.Error("lost device not quarantined")
	}
	// The device-lost requeue consumes no retry budget.
	if rep.Faults.Retries != 0 {
		t.Errorf("retries = %d, want 0 for a persistent fault", rep.Faults.Retries)
	}
}

func TestSchedulerAllQuarantinedFallsBackToHost(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 2)
	s := &Scheduler{Sys: sys, Clock: &fakeClock{}}
	var fallbacks int32
	s.Fallback = func(b Batch) (bool, error) {
		if !b.Commit() {
			t.Error("fallback lost the commit race with no competing attempt")
			return false, nil
		}
		atomic.AddInt32(&fallbacks, 1)
		return true, nil
	}
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50, 50, 50, 50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			return &simt.FaultError{Device: dev.Track(), Persistent: true, Err: simt.ErrDeviceLost}
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.Quarantines != 2 {
		t.Errorf("quarantines = %d, want 2", rep.Faults.Quarantines)
	}
	if int(fallbacks) != rep.Batches || rep.Faults.Fallbacks != rep.Batches {
		t.Errorf("fallback completed %d (reported %d) of %d batches",
			fallbacks, rep.Faults.Fallbacks, rep.Batches)
	}
}

func TestSchedulerAllQuarantinedNoFallbackAborts(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 2)
	s := &Scheduler{Sys: sys, Clock: &fakeClock{}}
	_, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50, 50, 50, 50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			return &simt.FaultError{Device: dev.Track(), Persistent: true, Err: simt.ErrDeviceLost}
		})
	if !errors.Is(err, ErrAllQuarantined) {
		t.Fatalf("err = %v, want ErrAllQuarantined", err)
	}
}

func TestSchedulerWatchdogTimeout(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 2)
	s := &Scheduler{Sys: sys, BatchTimeout: 20 * time.Millisecond}
	release := make(chan struct{})
	defer close(release)
	// Device 1 waits for device 0 to claim (and wedge on) a batch, so
	// the watchdog provably fires on device 0.
	wedged := make(chan struct{})
	var wedgeOnce sync.Once
	var mu sync.Mutex
	committed := map[int]int{}
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50, 50, 50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			if devIdx == 0 {
				wedgeOnce.Do(func() { close(wedged) })
				<-release // wedge device 0's first attempt past the deadline
			} else {
				<-wedged
			}
			if b.Commit() {
				mu.Lock()
				committed[b.Seq]++
				mu.Unlock()
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.Timeouts != 1 || rep.Faults.Devices[0].Timeouts != 1 {
		t.Errorf("timeouts = %d (device %d), want 1", rep.Faults.Timeouts, rep.Faults.Devices[0].Timeouts)
	}
	if !rep.Faults.Devices[0].Quarantined {
		t.Error("timed-out device not quarantined")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(committed) != rep.Batches {
		t.Errorf("%d of %d batches committed", len(committed), rep.Batches)
	}
	for ord, n := range committed {
		if n != 1 {
			t.Errorf("batch %d committed %d times, want exactly once", ord, n)
		}
	}
}

// manualClock hands out watchdog channels that fire only when the
// test says so; fire blocks until the scheduler consumes the expiry,
// so a test can sequence "the watchdog has expired" deterministically.
type manualClock struct {
	mu  sync.Mutex
	chs []chan time.Time
}

func (c *manualClock) Now() time.Time { return time.Unix(0, 0) }

func (c *manualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time)
	c.mu.Lock()
	c.chs = append(c.chs, ch)
	c.mu.Unlock()
	return ch
}

// fire expires the oldest armed watchdog, waiting first for one to be
// armed and then for the scheduler to consume the expiry.
func (c *manualClock) fire() {
	for {
		c.mu.Lock()
		if len(c.chs) > 0 {
			ch := c.chs[0]
			c.chs = c.chs[1:]
			c.mu.Unlock()
			ch <- time.Time{}
			return
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
}

// An attempt that commits its result just before the watchdog expires
// must win: the scheduler waits for the in-flight merge and counts the
// batch complete instead of requeueing it (which would double-run the
// batch and let the run finish under a still-pending merge), and
// quarantining the last device on the stream's final batch must not
// abort the fully-merged run.
func TestSchedulerWatchdogLateCommitCompletesBatch(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 1)
	clock := &manualClock{}
	s := &Scheduler{Sys: sys, Clock: clock, BatchTimeout: time.Second}
	committed := make(chan struct{})
	release := make(chan struct{})
	var calls, merges int32
	go func() {
		<-committed
		clock.fire() // expire the watchdog after the attempt committed
		close(release)
	}()
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			atomic.AddInt32(&calls, 1)
			// Give the producer time to close the stream, so the
			// quarantine below sees no outstanding work.
			time.Sleep(20 * time.Millisecond)
			if b.Commit() {
				atomic.AddInt32(&merges, 1)
			}
			close(committed)
			<-release // keep the attempt running past the deadline
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || merges != 1 {
		t.Errorf("process ran %d times with %d merges, want exactly one of each", calls, merges)
	}
	if rep.Faults.Timeouts != 1 || rep.Faults.Devices[0].Timeouts != 1 {
		t.Errorf("timeouts = %d (device %d), want 1", rep.Faults.Timeouts, rep.Faults.Devices[0].Timeouts)
	}
	if !rep.Faults.Devices[0].Quarantined {
		t.Error("device that blew its deadline was not quarantined")
	}
	if rep.Util[0].Batches != 1 {
		t.Errorf("device credited %d batches, want 1 (the late-committed batch)", rep.Util[0].Batches)
	}
}

// A quarantine trip is a device-health event: the batch that tripped
// the breaker must be requeued without consuming its retry budget
// (matching the device-lost path), so a batch bounced off flaky
// devices is not aborted for their failures.
func TestSchedulerQuarantineTripPreservesRetryBudget(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 2)
	s := &Scheduler{Sys: sys, Clock: &fakeClock{}, QuarantineAfter: 2, MaxRetries: 1}
	// Device 0 fails every attempt, tripping its breaker on the second;
	// device 1 (gated until the trip, so the trip provably lands on
	// device 0) then fails the tripped batch once more before letting
	// it through. With the trip budget-free the batch has spent 1 of
	// its 1 retries and completes; charging the trip would abort the
	// run.
	var mu sync.Mutex
	dev0Fails := 0
	tripSeq := -1
	dev1FailedTrip := false
	tripped := make(chan struct{})
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50, 50, 50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			if devIdx == 0 {
				mu.Lock()
				dev0Fails++
				if dev0Fails == 2 {
					tripSeq = b.Seq
					close(tripped)
				}
				mu.Unlock()
				return transientErr(dev.Track())
			}
			<-tripped
			mu.Lock()
			fail := b.Seq == tripSeq && !dev1FailedTrip
			if fail {
				dev1FailedTrip = true
			}
			mu.Unlock()
			if fail {
				return transientErr(dev.Track())
			}
			return nil
		})
	if err != nil {
		t.Fatalf("run aborted: %v (the trip batch was charged a retry it did not spend)", err)
	}
	if rep.Faults.Retries != 2 {
		t.Errorf("retries = %d, want 2 (the trip itself is budget-free)", rep.Faults.Retries)
	}
	if !rep.Faults.Devices[0].Quarantined || rep.Faults.Devices[1].Quarantined {
		t.Errorf("quarantine = %+v, want device 0 only", rep.Faults.Devices)
	}
	if rep.Util[1].Batches != rep.Batches {
		t.Errorf("device 1 completed %d of %d batches", rep.Util[1].Batches, rep.Batches)
	}
}

func TestSchedulerContextCancellation(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 2)
	s := &Scheduler{Sys: sys, QueueDepth: 1}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	_, err := s.RunContext(ctx,
		func(submit func(db *seq.Database) error) error {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 100; i++ {
				db := seq.NewDatabase("ctx")
				db.Add(&seq.Sequence{Name: "b", Residues: randomSeq(rng, 50)})
				if err := submit(db); err != nil {
					return err
				}
			}
			return nil
		},
		func(devIdx int, dev *simt.Device, b Batch) error {
			once.Do(func() { close(started); cancel() })
			return nil
		})
	<-started
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A worker that wakes to an aborted run must not claim and process
// batches that are still pending.
func TestSchedulerAbortStopsQueuedWork(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 1)
	s := &Scheduler{Sys: sys, QueueDepth: 8}
	bang := errors.New("bang")
	var processed int32
	_, err := s.Run(
		func(submit func(db *seq.Database) error) error {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 8; i++ {
				db := seq.NewDatabase("abort")
				db.Add(&seq.Sequence{Name: "b", Residues: randomSeq(rng, 50)})
				if err := submit(db); err != nil {
					return err
				}
			}
			return nil
		},
		func(devIdx int, dev *simt.Device, b Batch) error {
			atomic.AddInt32(&processed, 1)
			return bang
		})
	if !errors.Is(err, bang) {
		t.Fatalf("err = %v, want bang", err)
	}
	if processed != 1 {
		t.Errorf("processed %d batches after the first fatal error, want 1", processed)
	}
}

// QueueWait must reflect starvation while work was still flowing, not
// the final wait that ends in shutdown.
func TestSchedulerQueueWaitExcludesShutdown(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 4)
	s := &Scheduler{Sys: sys}
	rep, err := s.Run(
		func(submit func(db *seq.Database) error) error {
			db := seq.NewDatabase("qw")
			db.Add(&seq.Sequence{Name: "b", Residues: randomSeq(rand.New(rand.NewSource(1)), 50)})
			return submit(db)
		},
		func(devIdx int, dev *simt.Device, b Batch) error {
			time.Sleep(30 * time.Millisecond)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// Three of four workers never claim a batch; their 30ms park while
	// the lone batch is processed must not be booked as starvation.
	for i, u := range rep.Util {
		if u.Batches == 0 && u.QueueWait > 10*time.Millisecond {
			t.Errorf("idle device %d booked %v queue-wait during shutdown", i, u.QueueWait)
		}
	}
}

func TestScheduleReportFaultRendering(t *testing.T) {
	rep := &ScheduleReport{
		Batches: 4, Seqs: 4, Residues: 200, Wall: time.Second,
		Util: make([]DeviceUtilization, 2),
		Faults: FaultReport{
			Retries: 3, Requeues: 2, Quarantines: 1, Fallbacks: 1, Timeouts: 1,
			Devices: []DeviceFaultStats{
				{Failures: 4, Retries: 3, Timeouts: 1, Quarantined: true},
				{},
			},
		},
	}
	out := rep.String()
	for _, want := range []string{"3 retries", "2 requeues", "1 devices quarantined", "1 cpu-fallback", "quarantined"} {
		if !strings.Contains(out, want) {
			t.Errorf("report %q missing %q", out, want)
		}
	}

	// SDC lines are opt-in: a fail-stop-only report must not mention
	// silent corruption, and a clean report renders nothing at all.
	if strings.Contains(out, "silent data corruption") || strings.Contains(out, "sdc") {
		t.Errorf("fail-stop-only report mentions SDC: %q", out)
	}

	clean := &ScheduleReport{Batches: 1, Util: make([]DeviceUtilization, 1)}
	if strings.Contains(clean.String(), "faults:") {
		t.Error("clean report renders a faults line")
	}

	sdc := &ScheduleReport{
		Batches: 4, Seqs: 4, Residues: 200, Wall: time.Second,
		Util: make([]DeviceUtilization, 2),
		Faults: FaultReport{
			SDCDetected: 2, SDCReruns: 2,
			Devices: []DeviceFaultStats{
				{Failures: 2, SDCs: 2},
				{},
			},
		},
	}
	sout := sdc.String()
	for _, want := range []string{
		"silent data corruption: 2 detected, 2 re-executed",
		"device 0: 2 failures (0 retried, 0 timeouts, 2 sdc)",
	} {
		if !strings.Contains(sout, want) {
			t.Errorf("SDC report %q missing %q", sout, want)
		}
	}

	reg := obs.NewRegistry()
	rep.Record(reg)
	for name, want := range map[string]float64{
		"hmmer_sched_retries_total":          3,
		"hmmer_sched_requeues_total":         2,
		"hmmer_sched_batch_timeouts_total":   1,
		"hmmer_sched_fallback_batches_total": 1,
	} {
		if got, ok := reg.Get(name); !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", name, got, ok, want)
		}
	}
	qname := obs.WithLabel("hmmer_sched_device_quarantined", "device", "0")
	if got, ok := reg.Get(qname); !ok || got != 1 {
		t.Errorf("%s = %v (present %v), want 1", qname, got, ok)
	}
	if got, ok := reg.Get(obs.WithLabel("hmmer_sched_device_quarantined", "device", "1")); !ok || got != 0 {
		t.Errorf("healthy device quarantine gauge = %v (present %v), want 0", got, ok)
	}

	sreg := obs.NewRegistry()
	sdc.Record(sreg)
	for name, want := range map[string]float64{
		"hmmer_sched_sdc_detected_total":                             2,
		"hmmer_sched_sdc_reruns_total":                               2,
		obs.WithLabel("hmmer_sched_device_sdc_total", "device", "0"): 2,
		obs.WithLabel("hmmer_sched_device_sdc_total", "device", "1"): 0,
	} {
		if got, ok := sreg.Get(name); !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", name, got, ok, want)
		}
	}
}

func TestClassifyFault(t *testing.T) {
	cases := []struct {
		err  error
		want faultClass
	}{
		{&simt.FaultError{Device: "d", Err: simt.ErrLaunchFailed}, faultTransient},
		{&simt.FaultError{Device: "d", Err: simt.ErrDeviceHung}, faultTransient},
		{&simt.FaultError{Device: "d", Persistent: true, Err: simt.ErrDeviceLost}, faultDeviceFatal},
		{fmt.Errorf("wrap: %w", ErrBatchTimeout), faultDeviceFatal},
		{&simt.KernelPanicError{Device: "d", Block: -1}, faultRunFatal},
		{&integrity.Error{Stage: "msv", Seq: 3, Detail: "off grid"}, faultIntegrity},
		{fmt.Errorf("batch 2: %w", &integrity.Error{Stage: "hit", Seq: -1, Detail: "ordering"}), faultIntegrity},
		{errors.New("mystery"), faultRunFatal},
	}
	for _, c := range cases {
		if got := classifyFault(c.err); got != c.want {
			t.Errorf("classifyFault(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// integrityErr builds the error a process callback surfaces when a
// batch's results fail an integrity check.
func integrityErr(b Batch) error {
	return fmt.Errorf("batch %d: %w", b.Seq, &integrity.Error{Stage: "msv", Seq: 0, Detail: "score off grid"})
}

// An integrity failure with a DMR callback configured must hand the
// batch to the callback, which commits the replacement result; the
// corrupt attempt never reaches the merge.
func TestSchedulerIntegrityFailureRunsDMR(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 1)
	var dmrRuns, committed int32
	s := &Scheduler{Sys: sys, Clock: &fakeClock{}, QuarantineAfter: -1,
		DMR: func(b Batch) (bool, error) {
			atomic.AddInt32(&dmrRuns, 1)
			if b.Commit() {
				atomic.AddInt32(&committed, 1)
				return true, nil
			}
			return false, nil
		}}
	var attempts int32
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50, 60}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			if atomic.AddInt32(&attempts, 1) == 1 {
				return integrityErr(b)
			}
			if !b.Commit() {
				t.Error("healthy attempt lost its commit token")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if dmrRuns != 1 || committed != 1 {
		t.Errorf("DMR runs = %d (committed %d), want 1 and 1", dmrRuns, committed)
	}
	if rep.Faults.SDCDetected != 1 || rep.Faults.SDCReruns != 1 {
		t.Errorf("SDC detected/reruns = %d/%d, want 1/1", rep.Faults.SDCDetected, rep.Faults.SDCReruns)
	}
	if rep.Faults.Devices[0].SDCs != 1 {
		t.Errorf("device SDCs = %d, want 1", rep.Faults.Devices[0].SDCs)
	}
	// The DMR-resolved batch must not be retried on the device.
	if attempts != 2 {
		t.Errorf("device attempts = %d, want 2 (one corrupt, one healthy batch)", attempts)
	}
}

// Without DMR the scheduler discards the corrupt result and re-executes
// the batch on retry budget, preferring a different device.
func TestSchedulerIntegrityFailureRequeuesWithoutDMR(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 2)
	s := &Scheduler{Sys: sys, Clock: &fakeClock{}, MaxRetries: 5, QuarantineAfter: -1}
	var mu sync.Mutex
	devs := []int{}
	first := true
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			mu.Lock()
			devs = append(devs, devIdx)
			corrupt := first
			first = false
			mu.Unlock()
			if corrupt {
				return integrityErr(b)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.SDCDetected != 1 || rep.Faults.SDCReruns != 1 {
		t.Errorf("SDC detected/reruns = %d/%d, want 1/1", rep.Faults.SDCDetected, rep.Faults.SDCReruns)
	}
	if len(devs) != 2 || devs[0] == devs[1] {
		t.Errorf("device sequence = %v, want re-execution on the other device", devs)
	}
}

// A device that keeps corrupting results trips the quarantine breaker
// like any other repeat offender; the stream drains on the healthy
// device.
func TestSchedulerIntegrityRepeatOffenderQuarantined(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 2)
	s := &Scheduler{Sys: sys, Clock: &fakeClock{}, MaxRetries: 20, QuarantineAfter: 2}
	// The healthy device waits for the offender's second strike before
	// completing anything, so it cannot drain the stream while device 0
	// is still one failure short of the breaker.
	var strikes int32
	tripped := make(chan struct{})
	var once sync.Once
	rep, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50, 50, 50, 50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			if devIdx == 0 {
				if atomic.AddInt32(&strikes, 1) >= 2 {
					once.Do(func() { close(tripped) })
				}
				return integrityErr(b)
			}
			<-tripped
			if !b.Commit() {
				t.Error("healthy attempt lost its commit token")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Faults.Devices[0].Quarantined {
		t.Error("silently corrupting device 0 not quarantined")
	}
	if rep.Faults.Devices[0].SDCs < 2 {
		t.Errorf("device 0 SDCs = %d, want >= 2 (breaker threshold)", rep.Faults.Devices[0].SDCs)
	}
	if rep.Util[0].Batches != 0 {
		t.Errorf("corrupting device credited %d completed batches", rep.Util[0].Batches)
	}
	if rep.Util[1].Batches != 4 {
		t.Errorf("healthy device completed %d of 4 batches", rep.Util[1].Batches)
	}
}

// Integrity retry budget is finite: a batch whose every re-execution
// also fails integrity must fail the run with the integrity error.
func TestSchedulerIntegrityBudgetExhaustionFailsRun(t *testing.T) {
	sys := simt.NewSystem(simt.GTX580(), 1)
	s := &Scheduler{Sys: sys, Clock: &fakeClock{}, MaxRetries: 2, QuarantineAfter: -1}
	_, err := s.Run(feedBatches(rand.New(rand.NewSource(1)), []int{50}),
		func(devIdx int, dev *simt.Device, b Batch) error {
			return integrityErr(b)
		})
	var ie *integrity.Error
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want wrapped *integrity.Error", err)
	}
	if !strings.Contains(err.Error(), "failed integrity checks after 3 attempts") {
		t.Errorf("err = %v, want attempt count in message", err)
	}
}
