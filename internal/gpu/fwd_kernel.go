package gpu

import (
	"sync"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/simt"
)

// fwdRun carries one Forward launch's state.
type fwdRun struct {
	db   *DeviceDB
	prof *DeviceFwdProfile
	plan LaunchPlan
	out  []FwdResult
	// states pools per-warp register buffers across blocks.
	states sync.Pool
}

// Shared layout: per warp three float32 row buffers (M, I, D), then
// Fermi scratch, then the parameter block (MemShared).
func (r *fwdRun) rowBase(warpInBlock int) int {
	return warpInBlock * 12 * (r.prof.P.M + 1)
}
func (r *fwdRun) mOff(rowBase, k int) int { return rowBase + 4*k }
func (r *fwdRun) iOff(rowBase, k int) int { return rowBase + 4*(r.prof.P.M+1) + 4*k }
func (r *fwdRun) dOff(rowBase, k int) int { return rowBase + 8*(r.prof.P.M+1) + 4*k }
func (r *fwdRun) scratchBase(w *simt.Warp) int {
	// The Fermi reduction scratch sits after the row buffers; it is
	// only allocated on devices without warp shuffle.
	return r.plan.WarpsPerBlock*12*(r.prof.P.M+1) + w.WarpInBlock*128
}

// modelBase returns the shared offset of the parameter block
// (MemShared only); the Fermi scratch precedes it when present.
func (r *fwdRun) modelBase(hasShuffle bool) int {
	base := r.plan.WarpsPerBlock * 12 * (r.prof.P.M + 1)
	if !hasShuffle {
		base += r.plan.WarpsPerBlock * 128
	}
	return base
}

type fwdWarpState struct {
	curM, curI, curD    []float32
	nextM, nextI, nextD []float32
	pmT, piT            []float32
	mv, iv, dv          []float32
	xEv                 []float32
	wgt                 []float32
	accO, wsumO         []float32
	shflA, shflB        []float32
	negs                []float32
}

func newFwdWarpState(lanes int) *fwdWarpState {
	mk := func() []float32 { return make([]float32, lanes) }
	st := &fwdWarpState{
		curM: mk(), curI: mk(), curD: mk(),
		nextM: mk(), nextI: mk(), nextD: mk(),
		pmT: mk(), piT: mk(),
		mv: mk(), iv: mk(), dv: mk(),
		xEv: mk(), wgt: mk(),
		accO: mk(), wsumO: mk(),
		shflA: mk(), shflB: mk(),
		negs: mk(),
	}
	for l := range st.negs {
		st.negs[l] = negInfF32
	}
	return st
}

// kernel is the warp-synchronous Forward kernel: Algorithm 2's shape
// with log-sum-exp in place of max and a log-semiring prefix scan in
// place of Lazy-F (every position accumulates D mass, so lazy
// short-circuiting does not apply).
func (r *fwdRun) kernel(w *simt.Warp) {
	lanes := w.Lanes()
	p := r.prof
	m := p.P.M
	rowBase := r.rowBase(w.WarpInBlock)
	st, _ := r.states.Get().(*fwdWarpState)
	if st == nil {
		st = newFwdWarpState(lanes)
	}
	defer r.states.Put(st)

	nSeqs := len(r.db.Packed)
	span := w.TotalWarps()
	for seqID := w.GlobalWarpID(); seqID < nSeqs; seqID += span {
		words := r.db.Packed[seqID]
		seqAddr := r.db.Addr[seqID]
		seqLen := r.db.Lens[seqID]
		w.ALU(4)

		for region := 0; region < 3; region++ {
			for k0 := 0; k0 <= m; k0 += lanes {
				n := m + 1 - k0
				if n > lanes {
					n = lanes
				}
				w.SharedSpanStoreF32(st.negs, rowBase+region*4*(m+1)+4*k0, n)
			}
		}

		xN := float32(0)
		xB := p.TMove
		xJ, xC := negInfF32, negInfF32

		for i := 0; i < seqLen; i++ {
			if i%alphabet.ResiduesPerWord == 0 {
				w.GlobalBroadcastLoad(packedWordAddr(seqAddr, i/alphabet.ResiduesPerWord), 4)
			}
			res := alphabet.PackedAt(words, i)
			if res == alphabet.PackSentinel {
				break
			}
			w.ALU(2)

			mscRow := p.MSC[res]
			xBtbm := xB + p.TBM
			for l := 0; l < lanes; l++ {
				st.xEv[l] = negInfF32
			}
			w.ALU(2)

			dChain := negInfF32
			dAtM := negInfF32

			r.load3(w, st, rowBase, 0, m)
			for p0 := 0; p0 < m; p0 += lanes {
				if p0+lanes < m {
					r.prefetch3(w, st, rowBase, p0+lanes, m)
				}
				r.loadF(w, st.pmT, r.mOff(rowBase, 0), p0+1, m, w.Lanes())
				r.loadF(w, st.piT, r.iOff(rowBase, 0), p0+1, m, w.Lanes())
				r.meterModel(w, st, res, p0, m)

				for l := 0; l < lanes; l++ {
					t := p0 + 1 + l
					if t > m {
						continue
					}
					s := t - 1
					mv := lseF32(
						lseF32(st.curM[l]+float32(p.TMM[s]), st.curI[l]+float32(p.TIM[s])),
						lseF32(st.curD[l]+float32(p.TDM[s]), xBtbm),
					) + mscRow[t]
					st.mv[l] = mv
					st.iv[l] = lseF32(st.pmT[l]+float32(p.TMI[t]), st.piT[l]+float32(p.TII[t]))
					st.xEv[l] = lseF32(st.xEv[l], mv)
				}
				w.ALU(16) // lse trees are ~2x the max trees

				r.storeF(w, st.mv, r.mOff(rowBase, 0), p0+1, m, lanes)
				r.storeF(w, st.iv, r.iOff(rowBase, 0), p0+1, m, lanes)

				// D seeds from the new M row.
				r.loadF(w, st.pmT, r.mOff(rowBase, 0), p0, m, lanes)
				for l := 0; l < lanes; l++ {
					t := p0 + 1 + l
					if t > m {
						st.dv[l] = negInfF32
						st.wgt[l] = negInfF32
						continue
					}
					st.dv[l] = st.pmT[l] + float32(p.TMD[t-1])
					st.wgt[l] = float32(p.TDD[t-1])
				}
				st.dv[0] = lseF32(st.dv[0], dChain+float32(p.TDD[p0]))
				w.ALU(3)

				// Log-semiring Kogge-Stone scan over the chunk.
				r.ddScanLse(w, st)
				r.storeF(w, st.dv, r.dOff(rowBase, 0), p0+1, m, lanes)

				lastT := p0 + lanes
				if lastT > m {
					lastT = m
				}
				dChain = st.dv[lastT-p0-1]
				if lastT == m {
					dAtM = st.dv[m-p0-1]
				}
				w.ALU(2)

				st.curM, st.nextM = st.nextM, st.curM
				st.curI, st.nextI = st.nextI, st.curI
				st.curD, st.nextD = st.nextD, st.curD
			}

			xE := r.warpLse(w, st)
			xE = lseF32(xE, dAtM)
			xJ = lseF32(xJ+p.TLoop, xE+p.TEJ)
			xC = lseF32(xC+p.TLoop, xE+p.TEC)
			xN += p.TLoop
			xB = lseF32(xN, xJ) + p.TMove
			w.ALU(8)
		}

		r.out[seqID] = FwdResult{Score: float64(xC + p.TMove)}
		w.GlobalSpanStore(r.db.ScoreAddr+int64(8*seqID), 8, 1)
	}
}

func (r *fwdRun) load3(w *simt.Warp, st *fwdWarpState, rowBase, p0, m int) {
	lanes := w.Lanes()
	r.loadF(w, st.curM, r.mOff(rowBase, 0), p0, m, lanes)
	r.loadF(w, st.curI, r.iOff(rowBase, 0), p0, m, lanes)
	r.loadF(w, st.curD, r.dOff(rowBase, 0), p0, m, lanes)
}

func (r *fwdRun) prefetch3(w *simt.Warp, st *fwdWarpState, rowBase, p0, m int) {
	lanes := w.Lanes()
	r.loadF(w, st.nextM, r.mOff(rowBase, 0), p0, m, lanes)
	r.loadF(w, st.nextI, r.iOff(rowBase, 0), p0, m, lanes)
	r.loadF(w, st.nextD, r.dOff(rowBase, 0), p0, m, lanes)
}

// loadF reads cells at positions p0+l (a conflict-free contiguous
// span) into dst.
func (r *fwdRun) loadF(w *simt.Warp, dst []float32, base0, p0, m, lanes int) {
	n := m + 1 - p0
	if n > lanes {
		n = lanes
	}
	w.SharedSpanLoadF32(dst, base0+4*p0, n)
}

// storeF writes cells at positions p0+l.
func (r *fwdRun) storeF(w *simt.Warp, vals []float32, base0, p0, m, lanes int) {
	n := m + 1 - p0
	if n > lanes {
		n = lanes
	}
	w.SharedSpanStoreF32(vals, base0+4*p0, n)
}

// meterModel accounts the float parameter fetches (metered like the
// Viterbi kernel's; values come from the host tables).
func (r *fwdRun) meterModel(w *simt.Warp, st *fwdWarpState, res byte, p0, m int) {
	n := m - p0
	if lanes := w.Lanes(); n > lanes {
		n = lanes
	}
	base := r.modelBase(w.HasShuffle())
	for arr := 0; arr < 8; arr++ {
		if r.plan.MemConfig == MemShared {
			w.SharedSpanTouch(base+arr*4*(m+1)+4*p0, 4, n, false)
			continue
		}
		w.GlobalSpanLoadCached(r.prof.TableAddr+int64(arr*4*(m+1))+int64(4*p0), 4, n)
	}
	_ = res
}

// ddScanLse resolves the within-chunk D recurrence with a Kogge-Stone
// scan over (logsum, +): D(t) = logsum_j<=t ( seed(j) + W(j+1..t) ).
// On Fermi (no shuffle) the chain is evaluated serially in registers,
// modelled as one warp instruction per step.
func (r *fwdRun) ddScanLse(w *simt.Warp, st *fwdWarpState) {
	lanes := w.Lanes()
	if !w.HasShuffle() {
		for l := 1; l < lanes; l++ {
			st.dv[l] = lseF32(st.dv[l], st.dv[l-1]+st.wgt[l])
		}
		w.ALU(lanes)
		return
	}
	acc, wsum := st.dv, st.wgt
	for shift := 1; shift < lanes; shift <<= 1 {
		w.ShflUpF32Into(st.accO, acc, shift)
		w.ShflUpF32Into(st.wsumO, wsum, shift)
		w.ALU(4)
		for l := lanes - 1; l >= shift; l-- {
			acc[l] = lseF32(acc[l], st.accO[l]+wsum[l])
			wsum[l] = wsum[l] + st.wsumO[l]
		}
	}
}

// warpLse reduces the per-lane xE accumulators to the warp-wide
// log-sum with broadcast.
func (r *fwdRun) warpLse(w *simt.Warp, st *fwdWarpState) float32 {
	lanes := w.Lanes()
	if w.HasShuffle() {
		copy(st.shflA, st.xEv)
		for mask := lanes / 2; mask > 0; mask >>= 1 {
			w.ShflXorF32Into(st.shflB, st.shflA, mask)
			w.ALU(2)
			for l := 0; l < lanes; l++ {
				st.shflA[l] = lseF32(st.shflA[l], st.shflB[l])
			}
		}
		return st.shflA[0]
	}
	// Fermi: fold through the shared scratch region.
	base := r.scratchBase(w)
	w.SharedSpanStoreF32(st.xEv, base, lanes)
	copy(st.shflA, st.xEv)
	for stride := lanes / 2; stride > 0; stride >>= 1 {
		w.SharedSpanLoadF32(st.shflB, base+4*stride, stride)
		w.ALU(2)
		for l := 0; l < stride; l++ {
			st.shflA[l] = lseF32(st.shflA[l], st.shflB[l])
		}
		w.SharedSpanStoreF32(st.shflA, base, stride)
	}
	return st.shflA[0]
}
