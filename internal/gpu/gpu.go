// Package gpu implements the paper's contribution: fine-grained,
// architecture-aware MSV and P7Viterbi kernels for SIMT processors,
// running on the internal/simt device simulator.
//
// The implementation follows Section III of the paper:
//
//   - Warp-synchronous execution: one warp scores one sequence; each DP
//     row is covered by the warp looping over the model in 32-position
//     chunks, with the warp-boundary diagonal protected by
//     double-buffered registers (Figure 5) instead of __syncthreads.
//   - Three-tiered parallelization: warp <-> sequence, multiple warps
//     (sequences) per block, multiple blocks per device; finished warps
//     pull the next sequence with a grid-wide stride (Algorithm 1).
//   - Warp-shuffled reduction for the row maximum on Kepler; a
//     shared-memory reduction fallback on Fermi (which costs extra
//     shared memory and occupancy, as the paper reports).
//   - Residue packing: 6 five-bit residues per 32-bit word with the 31
//     sentinel as loop terminator (Figure 6).
//   - Parallel Lazy-F for the P7Viterbi D-D chain using the warp-vote
//     __all instruction (Figure 7).
//   - Shared vs global memory configurations for the model parameters,
//     selectable per launch, with occupancy-driven auto selection.
//
// DP row buffers live in (simulated) shared memory and all row data
// really flows through it, so the double-buffering scheme is exercised
// for real. Model-parameter reads are metered through the simulator
// (shared or global per the configuration) while their values come
// from the host-side tables; DESIGN.md documents this simplification.
package gpu

import (
	"fmt"

	"hmmer3gpu/internal/simt"
)

// MemConfig selects where the model parameters live on the device —
// the paper's two configurations in Figure 9.
type MemConfig int

const (
	// MemAuto (the zero value) picks the configuration with the better
	// occupancy for the model size (ties go to shared) — the paper's
	// "optimal speedup strategy" black curve.
	MemAuto MemConfig = iota
	// MemShared buffers the model (emission costs, transitions) in
	// shared memory: fastest for small models, strangles occupancy for
	// large ones.
	MemShared
	// MemGlobal leaves the model in global memory: higher latency and
	// traffic, but occupancy stays high for large models.
	MemGlobal
	// MemSpill (P7Viterbi only; beyond the paper) additionally spills
	// the DP row buffers to L2-cached global memory, recovering the
	// register-ceiling occupancy on very large models where even the
	// global configuration collapses.
	MemSpill
)

func (m MemConfig) String() string {
	switch m {
	case MemShared:
		return "shared"
	case MemGlobal:
		return "global"
	case MemSpill:
		return "spill"
	case MemAuto:
		return "auto"
	default:
		return fmt.Sprintf("MemConfig(%d)", int(m))
	}
}

// Kernel kind, used for resource accounting.
type kernelKind int

const (
	kindMSV kernelKind = iota
	kindVit
)

// Register footprints of the two kernels (per thread). The Viterbi
// kernel's heavier row state (M, I and D buffers plus the lazy-F
// machinery) costs roughly twice the registers, which is what caps its
// occupancy at 50% on Kepler and below that on Fermi (§IV).
const (
	msvRegsPerThread = 32
	vitRegsPerThread = 64
)

// deviceAlphaSize is the residue-row count of the on-device emission
// tables: 20 canonical residues plus B, J, Z and X. O and U expand to
// exactly one canonical residue each and are remapped at upload time;
// gap-like codes score as impossible and need no row.
const deviceAlphaSize = 24

// reduceScratchU8 and reduceScratchI16 are the per-warp shared-memory
// scratch bytes needed by the Fermi reduction fallback.
const (
	reduceScratchU8  = 32
	reduceScratchI16 = 64
)

// sharedBytes returns the shared-memory footprint per block for a
// kernel of the given kind, model size m, warps per block, and memory
// configuration on the given device.
func sharedBytes(spec simt.DeviceSpec, kind kernelKind, m, warps int, cfg MemConfig) int {
	var b int
	switch kind {
	case kindMSV:
		b = warps * (m + 1) // one byte row buffer per warp
		if !spec.HasShuffle {
			b += warps * reduceScratchU8
		}
		if cfg == MemShared {
			b += deviceAlphaSize * (m + 1) // emission cost table
		}
	case kindVit:
		b = warps * 6 * (m + 1) // three int16 row buffers per warp
		if !spec.HasShuffle {
			b += warps * reduceScratchI16
		}
		if cfg == MemShared {
			// emission table (int16) + 7 transition arrays (int16)
			b += 2*deviceAlphaSize*(m+1) + 7*2*(m+1)
		}
	}
	return b
}

func regsPerThread(kind kernelKind) int {
	if kind == kindMSV {
		return msvRegsPerThread
	}
	return vitRegsPerThread
}

// LaunchPlan is a tuned kernel configuration for one (device, model,
// memory-config) combination.
type LaunchPlan struct {
	MemConfig      MemConfig
	WarpsPerBlock  int
	Blocks         int
	SharedPerBlock int
	Occupancy      simt.Occupancy
	// RowsInGlobal marks the Viterbi row-spill variant: DP rows live
	// in (L2-cached) global memory instead of shared memory, trading
	// per-access cost for occupancy on very large models — the fix for
	// the shared-memory collapse beyond M~1000 that the paper's §V
	// points toward ("any further improvements ... would directly
	// depend on the performance of shared memory and global memory").
	RowsInGlobal bool
}

// planLaunch picks the warps-per-block that maximises occupancy
// (preferring wider blocks on ties, which reduces per-block overhead),
// then sizes the grid to exactly fill the device's resident capacity.
func planLaunch(spec simt.DeviceSpec, kind kernelKind, m int, cfg MemConfig) (LaunchPlan, error) {
	if cfg == MemSpill {
		return planSpill(spec, kind, m)
	}
	if cfg == MemAuto {
		shared, errS := planLaunch(spec, kind, m, MemShared)
		global, errG := planLaunch(spec, kind, m, MemGlobal)
		switch {
		case errS != nil && errG != nil:
			return LaunchPlan{}, errG
		case errS != nil:
			return global, nil
		case errG != nil:
			return shared, nil
		case shared.Occupancy.Fraction*2 > global.Occupancy.Fraction:
			// Shared is preferred up to a 2x occupancy deficit: its
			// model-parameter accesses cost a fraction of a global
			// transaction's latency and traffic, which buys back about
			// one halving of occupancy. On the K40 this rule flips MSV
			// from shared to global just above model size 1000 — the
			// paper's measured switching threshold of 1002.
			return shared, nil
		default:
			return global, nil
		}
	}
	best := LaunchPlan{MemConfig: cfg}
	found := false
	for _, w := range []int{2, 4, 8, 16, 32} {
		if w*spec.WarpSize > spec.MaxThreadsPerBlock {
			continue
		}
		sb := sharedBytes(spec, kind, m, w, cfg)
		if sb > spec.SharedMemPerBlockMax {
			continue
		}
		occ := spec.CalcOccupancy(simt.KernelResources{
			RegsPerThread:   regsPerThread(kind),
			SharedPerBlock:  sb,
			ThreadsPerBlock: w * spec.WarpSize,
		})
		if occ.BlocksPerSM == 0 {
			continue
		}
		if !found || occ.Fraction >= best.Occupancy.Fraction {
			found = true
			best.WarpsPerBlock = w
			best.SharedPerBlock = sb
			best.Occupancy = occ
		}
	}
	if !found {
		return LaunchPlan{}, fmt.Errorf("gpu: model size %d does not fit the %s configuration on %s",
			m, cfg, spec.Name)
	}
	best.Blocks = best.Occupancy.BlocksPerSM * spec.SMCount
	return best, nil
}

// PlanMSV exposes launch planning for the MSV kernel (used by the
// benchmark harness to report occupancy).
func PlanMSV(spec simt.DeviceSpec, m int, cfg MemConfig) (LaunchPlan, error) {
	return planLaunch(spec, kindMSV, m, cfg)
}

// PlanViterbi exposes launch planning for the P7Viterbi kernel.
func PlanViterbi(spec simt.DeviceSpec, m int, cfg MemConfig) (LaunchPlan, error) {
	return planLaunch(spec, kindVit, m, cfg)
}

// planSpill plans the P7Viterbi row-spill variant: only the Fermi
// reduction scratch stays in shared memory; the model and the DP rows
// live in (L2-cached) global memory.
func planSpill(spec simt.DeviceSpec, kind kernelKind, m int) (LaunchPlan, error) {
	if kind != kindVit {
		return LaunchPlan{}, fmt.Errorf("gpu: the spill configuration applies to the P7Viterbi kernel only")
	}
	best := LaunchPlan{MemConfig: MemSpill, RowsInGlobal: true}
	found := false
	for _, w := range []int{2, 4, 8, 16, 32} {
		if w*spec.WarpSize > spec.MaxThreadsPerBlock {
			continue
		}
		sb := 0
		if !spec.HasShuffle {
			sb = w * reduceScratchI16
		}
		occ := spec.CalcOccupancy(simt.KernelResources{
			RegsPerThread:   vitRegsPerThread,
			SharedPerBlock:  sb,
			ThreadsPerBlock: w * spec.WarpSize,
		})
		if occ.BlocksPerSM == 0 {
			continue
		}
		if !found || occ.Fraction >= best.Occupancy.Fraction {
			found = true
			best.WarpsPerBlock = w
			best.SharedPerBlock = sb
			best.Occupancy = occ
		}
	}
	if !found {
		return LaunchPlan{}, fmt.Errorf("gpu: spill configuration does not fit on %s", spec.Name)
	}
	best.Blocks = best.Occupancy.BlocksPerSM * spec.SMCount
	return best, nil
}
