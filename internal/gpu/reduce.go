package gpu

import "hmmer3gpu/internal/simt"

// Warp-wide max reduction with broadcast, the operation the paper
// calls "Warp-Shuffled Reduction": on Kepler it is a butterfly
// exchange (XOR shuffle) — even workload, no shared memory, no
// synchronisation, and the maximum lands on every lane, ready for the
// next residue. On Fermi (no shuffle) the classic shared-memory binary
// reduction runs in a per-warp scratch region instead, consuming
// shared memory and extra instructions (the occupancy cost §IV-A
// attributes to the older architecture).

// reduceScratch bundles the preallocated buffers a warp needs for
// reductions.
type reduceScratch struct {
	a, b   []int32
	bytes  []uint8
	bytes2 []uint8
	words  []int16
	words2 []int16
}

func newReduceScratch(lanes int) *reduceScratch {
	return &reduceScratch{
		a:      make([]int32, lanes),
		b:      make([]int32, lanes),
		bytes:  make([]uint8, lanes),
		bytes2: make([]uint8, lanes),
		words:  make([]int16, lanes),
		words2: make([]int16, lanes),
	}
}

// warpMaxU8 reduces per-lane byte values to the warp-wide maximum.
// scratchBase is the warp's shared scratch offset (Fermi path only).
func warpMaxU8(w *simt.Warp, vals []uint8, scratchBase int, rs *reduceScratch) uint8 {
	lanes := w.Lanes()
	if w.HasShuffle() {
		for l := 0; l < lanes; l++ {
			rs.a[l] = int32(vals[l])
		}
		for mask := lanes / 2; mask > 0; mask >>= 1 {
			w.ShflXorI32Into(rs.b, rs.a, mask)
			w.ALU(1)
			for l := 0; l < lanes; l++ {
				if rs.b[l] > rs.a[l] {
					rs.a[l] = rs.b[l]
				}
			}
		}
		return uint8(rs.a[0]) // identical on every lane (broadcast)
	}

	// Fermi fallback: strided binary reduction through shared memory.
	// Each stride step is one partner load, one max, one store by the
	// active half-warp (consecutive cells: conflict-free spans).
	w.SharedSpanStoreU8(vals, scratchBase, lanes)
	cur := rs.bytes
	copy(cur, vals)
	for stride := lanes / 2; stride > 0; stride >>= 1 {
		partner := rs.bytes2
		w.SharedSpanLoadU8(partner, scratchBase+stride, stride)
		w.ALU(1)
		for l := 0; l < stride; l++ {
			if partner[l] > cur[l] {
				cur[l] = partner[l]
			}
		}
		w.SharedSpanStoreU8(cur, scratchBase, stride)
	}
	// Broadcast the result back to every lane (one shared read).
	w.SharedBroadcastU8(scratchBase)
	return cur[0]
}

// warpMaxI16 is the 16-bit variant used by the Viterbi kernel.
func warpMaxI16(w *simt.Warp, vals []int16, scratchBase int, rs *reduceScratch) int16 {
	lanes := w.Lanes()
	if w.HasShuffle() {
		for l := 0; l < lanes; l++ {
			rs.a[l] = int32(vals[l])
		}
		for mask := lanes / 2; mask > 0; mask >>= 1 {
			w.ShflXorI32Into(rs.b, rs.a, mask)
			w.ALU(1)
			for l := 0; l < lanes; l++ {
				if rs.b[l] > rs.a[l] {
					rs.a[l] = rs.b[l]
				}
			}
		}
		return int16(rs.a[0])
	}

	w.SharedSpanStoreI16(vals, scratchBase, lanes)
	cur := rs.words
	copy(cur, vals)
	partner := rs.words2
	for stride := lanes / 2; stride > 0; stride >>= 1 {
		w.SharedSpanLoadI16(partner, scratchBase+2*stride, stride)
		w.ALU(1)
		for l := 0; l < stride; l++ {
			if partner[l] > cur[l] {
				cur[l] = partner[l]
			}
		}
		w.SharedSpanStoreI16(cur, scratchBase, stride)
	}
	w.SharedBroadcastI16(scratchBase)
	return cur[0]
}
