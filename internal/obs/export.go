package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// jsonlSpan is the JSON-lines wire form of one span.
type jsonlSpan struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent"`
	Name    string         `json:"name"`
	Track   string         `json:"track"`
	StartUS float64        `json:"start_us"`
	DurUS   float64        `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// WriteJSONL emits one JSON object per completed span, in start
// order, timestamps in microseconds relative to the tracer epoch.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Spans() {
		rec := jsonlSpan{
			ID:      s.ID,
			Parent:  s.Parent,
			Name:    s.Name,
			Track:   s.Track,
			StartUS: float64(s.Start.Sub(t.Epoch())) / 1e3,
			DurUS:   float64(s.Dur) / 1e3,
			Attrs:   attrMap(s.Attrs),
		}
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one trace_event entry; ph "X" is a complete span,
// ph "M" carries track (thread) names.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace emits the span set in Chrome trace_event JSON
// ({"traceEvents":[...]}): each track becomes a named thread row, so
// chrome://tracing and Perfetto render the per-device batch gantt of
// the streaming scheduler directly. Span IDs and parent links ride in
// each event's args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return t.WriteChromeTraceWithCounters(w, nil)
}

// WriteChromeTraceWithCounters is WriteChromeTrace plus one "C"
// (counter) event per histogram metric in reg, stamped at the end of
// the trace with the final p50/p90/p99/mean/count — so the latency
// distribution of a run rides in the same artifact as its span gantt.
// A nil registry (or one without histograms) degrades to the plain
// span trace.
func (t *Tracer) WriteChromeTraceWithCounters(w io.Writer, reg *Registry) error {
	spans := t.Spans()

	// Tracks become tids in order of first appearance, so the host
	// row sits above the device rows.
	tids := make(map[string]int)
	var events []chromeEvent
	var endTS float64
	for _, s := range spans {
		tid, ok := tids[s.Track]
		if !ok {
			tid = len(tids) + 1
			tids[s.Track] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": s.Track},
			})
		}
		args := attrMap(s.Attrs)
		if args == nil {
			args = make(map[string]any, 2)
		}
		args["id"] = s.ID
		args["parent"] = s.Parent
		ts := float64(s.Start.Sub(t.Epoch())) / 1e3
		dur := float64(s.Dur) / 1e3
		if ts+dur > endTS {
			endTS = ts + dur
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X", Pid: 1, Tid: tid,
			TS:   ts,
			Dur:  dur,
			Args: args,
		})
	}

	for _, m := range reg.Snapshot() {
		if m.Kind != Histogram || m.Hist == nil {
			continue
		}
		events = append(events, chromeEvent{
			Name: m.Name, Ph: "C", Pid: 1, Tid: 0, TS: endTS,
			Args: map[string]any{
				"p50":   m.Hist.Quantile(0.50),
				"p90":   m.Hist.Quantile(0.90),
				"p99":   m.Hist.Quantile(0.99),
				"mean":  m.Hist.Mean(),
				"count": m.Hist.Count,
			},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WritePrometheus renders the registry snapshot in Prometheus text
// exposition format (# HELP / # TYPE preambles, one sample per line).
// Samples are grouped by base metric name so labelled series sit
// under their # TYPE line as the format requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	sort.Slice(snap, func(i, j int) bool {
		bi, bj := snap[i].BaseName(), snap[j].BaseName()
		if bi != bj {
			return bi < bj
		}
		return snap[i].Name < snap[j].Name
	})
	bw := bufio.NewWriter(w)
	typed := make(map[string]bool)
	for _, m := range snap {
		base := m.BaseName()
		if !typed[base] {
			typed[base] = true
			if m.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", base, m.Help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, m.Kind)
		}
		if m.Kind == Histogram && m.Hist != nil {
			writePromHist(bw, m)
			continue
		}
		fmt.Fprintf(bw, "%s %g\n", m.Name, m.Value)
	}
	return bw.Flush()
}

// writePromHist explodes one histogram metric into the classic
// Prometheus series triple: cumulative _bucket{le="..."} samples, a
// _sum and a _count. Any label set on the metric name is preserved on
// every series, with le spliced in alongside.
func writePromHist(w io.Writer, m Metric) {
	var cum uint64
	for i, c := range m.Hist.Counts {
		cum += c
		le := "+Inf"
		if i < len(m.Hist.Buckets) {
			le = fmt.Sprintf("%g", m.Hist.Buckets[i])
		}
		fmt.Fprintf(w, "%s %d\n", WithLabel(suffixedName(m.Name, "_bucket"), "le", le), cum)
	}
	fmt.Fprintf(w, "%s %g\n", suffixedName(m.Name, "_sum"), m.Hist.Sum)
	fmt.Fprintf(w, "%s %d\n", suffixedName(m.Name, "_count"), m.Hist.Count)
}

// suffixedName appends a suffix to the base metric name, keeping any
// label set in place: foo{a="b"} + _sum → foo_sum{a="b"}.
func suffixedName(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}
