package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestHistObserveAndQuantile(t *testing.T) {
	h := NewHist([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count != 8 {
		t.Fatalf("count = %d, want 8", h.Count)
	}
	if want := 0.5 + 1.5 + 1.5 + 3 + 3 + 3 + 7 + 100; h.Sum != want {
		t.Errorf("sum = %g, want %g", h.Sum, want)
	}
	wantCounts := []uint64{1, 2, 3, 1, 1}
	for i, c := range h.Counts {
		if c != wantCounts[i] {
			t.Errorf("counts[%d] = %d, want %d", i, c, wantCounts[i])
		}
	}
	// p50: rank 4 lands in the (2,4] bucket (cumulative 3 before it).
	p50 := h.Quantile(0.5)
	if p50 <= 2 || p50 > 4 {
		t.Errorf("p50 = %g, want in (2,4]", p50)
	}
	// p100 falls in the overflow bucket: reports the last bound.
	if got := h.Quantile(1); got != 8 {
		t.Errorf("p100 = %g, want 8 (last finite bound)", got)
	}
	if got := (&Hist{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	var nilH *Hist
	nilH.Observe(3) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Mean() != 0 {
		t.Error("nil histogram should report zero")
	}
}

func TestHistQuantileMonotone(t *testing.T) {
	h := NewHist(LatencyBuckets())
	for i := 0; i < 1000; i++ {
		h.Observe(0.001 * float64(i%97+1))
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%g) = %g < Quantile at lower q (%g)", q, v, prev)
		}
		prev = v
	}
}

func TestHistMerge(t *testing.T) {
	a := NewHist([]float64{1, 2})
	b := NewHist([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(10)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count != 3 || a.Counts[0] != 1 || a.Counts[1] != 1 || a.Counts[2] != 1 {
		t.Errorf("merged: %+v", a)
	}
	c := NewHist([]float64{1, 3})
	if err := a.Merge(c); err == nil {
		t.Error("merging mismatched buckets should error")
	}
}

func TestRegistryHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Observe("lat_seconds", 0.003)
	reg.Observe("lat_seconds", 0.5)
	h, ok := reg.GetHist("lat_seconds")
	if !ok || h.Count != 2 {
		t.Fatalf("GetHist: %+v ok=%v", h, ok)
	}
	// The copy must be isolated from later observations.
	reg.Observe("lat_seconds", 1)
	if h.Count != 2 {
		t.Error("GetHist returned a live reference, want a copy")
	}
	if v, _ := reg.Get("lat_seconds"); v != 3 {
		t.Errorf("Get on a histogram = %g, want observation count 3", v)
	}

	other := NewHist(LatencyBuckets())
	other.Observe(2)
	if err := reg.MergeHist("lat_seconds", other); err != nil {
		t.Fatal(err)
	}
	if h2, _ := reg.GetHist("lat_seconds"); h2.Count != 4 {
		t.Errorf("after merge count = %d, want 4", h2.Count)
	}

	bad := NewHist([]float64{1})
	if err := reg.MergeHist("lat_seconds", bad); err == nil {
		t.Error("MergeHist with mismatched buckets should error")
	}

	var nilReg *Registry
	nilReg.Observe("x", 1)
	if err := nilReg.MergeHist("x", other); err != nil {
		t.Errorf("nil registry MergeHist: %v", err)
	}
}

// TestPrometheusHistogramRoundTrip pins the exposition: cumulative
// _bucket series with le labels (spliced into any existing label
// set), _sum, _count, a histogram TYPE line — and that ParsePrometheus
// accepts the result.
func TestPrometheusHistogramRoundTrip(t *testing.T) {
	reg := NewRegistry()
	name := WithLabel("hmmer_sched_batch_seconds", "device", 0)
	reg.Observe(name, 0.5, 1, 2, 4)
	reg.Observe(name, 1.5, 1, 2, 4)
	reg.Observe(name, 99, 1, 2, 4)
	reg.Help(name, "batch latency")
	reg.AddInt("plain_total", 7)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	wants := []string{
		"# TYPE hmmer_sched_batch_seconds histogram",
		`hmmer_sched_batch_seconds_bucket{device="0",le="1"} 1`,
		`hmmer_sched_batch_seconds_bucket{device="0",le="2"} 2`,
		`hmmer_sched_batch_seconds_bucket{device="0",le="4"} 2`,
		`hmmer_sched_batch_seconds_bucket{device="0",le="+Inf"} 3`,
		`hmmer_sched_batch_seconds_sum{device="0"} 101`,
		`hmmer_sched_batch_seconds_count{device="0"} 3`,
	}
	for _, want := range wants {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	series, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("ParsePrometheus rejected histogram exposition: %v", err)
	}
	if series[`hmmer_sched_batch_seconds_count{device="0"}`] != 3 {
		t.Error("parsed count series wrong")
	}
	if series["plain_total"] != 7 {
		t.Error("scalar series lost")
	}
}

// TestChromeTraceCounterEvents pins the "C" event export path and the
// validator's census of it.
func TestChromeTraceCounterEvents(t *testing.T) {
	tr := New()
	sp := tr.Start("host", "work")
	sp.End()

	reg := NewRegistry()
	reg.Observe("hmmer_sched_batch_seconds", 0.25)
	reg.Observe("hmmer_sched_batch_seconds", 0.75)

	var buf bytes.Buffer
	if err := tr.WriteChromeTraceWithCounters(&buf, reg); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateChromeTraceStats(buf.Bytes())
	if err != nil {
		t.Fatalf("validator rejected counter trace: %v", err)
	}
	if st.Spans != 1 || st.Counters != 1 {
		t.Errorf("stats = %+v, want 1 span and 1 counter", st)
	}
	if !strings.Contains(buf.String(), `"ph":"C"`) {
		t.Error("no C event in output")
	}

	// Plain WriteChromeTrace stays counter-free.
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if st, _ := ValidateChromeTraceStats(buf.Bytes()); st.Counters != 0 {
		t.Error("plain trace should have no counter events")
	}

	// A C event without args must fail validation.
	bad := []byte(`{"traceEvents":[{"name":"c","ph":"C","pid":1,"tid":0,"ts":0}]}`)
	if _, err := ValidateChromeTraceStats(bad); err == nil {
		t.Error("C event without args should fail validation")
	}
}
