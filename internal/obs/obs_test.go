package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step per reading, so exports are
// deterministic.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0).UTC()
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewWithClock(fakeClock(time.Millisecond))
	search := tr.Start("host", "search", String("engine", "gpu"))
	stage := search.Child("stage:msv")
	kernel := stage.ChildOn("device0", "kernel:msv", Int("blocks", 4))
	kernel.Annotate(Float("occupancy", 0.75), Bool("packed", true))
	kernel.End()
	stage.End()
	search.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["stage:msv"].Parent != byName["search"].ID {
		t.Error("stage span not parented under search")
	}
	if byName["kernel:msv"].Parent != byName["stage:msv"].ID {
		t.Error("kernel span not parented under stage")
	}
	if byName["kernel:msv"].Track != "device0" {
		t.Errorf("kernel track = %q, want device0", byName["kernel:msv"].Track)
	}
	if byName["stage:msv"].Track != "host" {
		t.Errorf("stage inherited track = %q, want host", byName["stage:msv"].Track)
	}
	if byName["kernel:msv"].Dur <= 0 {
		t.Error("kernel span has no duration")
	}
	attrs := map[string]any{}
	for _, a := range byName["kernel:msv"].Attrs {
		attrs[a.Key] = a.Value()
	}
	if attrs["blocks"] != int64(4) || attrs["occupancy"] != 0.75 || attrs["packed"] != true {
		t.Errorf("kernel attrs wrong: %v", attrs)
	}
}

// TestNilTracerIsFree: the untraced path must not allocate or record
// anything — that is the "<2% overhead when disabled" contract.
func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer claims enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("host", "search")
		child := sp.Child("stage")
		grand := child.ChildOn("device0", "kernel")
		grand.Annotate(Int("x", 1))
		grand.End()
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil tracer allocates %.0f objects per traced region, want 0", allocs)
	}
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer returned spans: %v", got)
	}

	var reg *Registry
	allocs = testing.AllocsPerRun(100, func() {
		reg.Add("x", 1)
		reg.AddInt("y", 2)
		reg.Set("z", 3)
	})
	if allocs != 0 {
		t.Errorf("nil registry allocates %.0f objects per record, want 0", allocs)
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := New()
	root := tr.Start("host", "search")
	var wg sync.WaitGroup
	for d := 0; d < 4; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for b := 0; b < 50; b++ {
				sp := root.ChildOn("device", "batch")
				sp.End()
			}
		}(d)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != 4*50+1 {
		t.Fatalf("got %d spans, want %d", got, 4*50+1)
	}
	ids := map[uint64]bool{}
	for _, s := range tr.Spans() {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New()
	sp := tr.Start("host", "x")
	sp.End()
	sp.End()
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("double End recorded %d spans, want 1", got)
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.AddInt("hmmer_simt_alu_ops_total", 10)
	reg.AddInt("hmmer_simt_alu_ops_total", 5)
	reg.Set("hmmer_pipeline_stage_pass_fraction", 0.02)
	reg.Set("hmmer_pipeline_stage_pass_fraction", 0.03)
	reg.Add(WithLabel("hmmer_sched_device_busy_seconds_total", "device", 0), 1.5)

	if v, _ := reg.Get("hmmer_simt_alu_ops_total"); v != 15 {
		t.Errorf("counter = %g, want 15", v)
	}
	if v, _ := reg.Get("hmmer_pipeline_stage_pass_fraction"); v != 0.03 {
		t.Errorf("gauge = %g, want 0.03 (last set wins)", v)
	}
	if v, _ := reg.Get(`hmmer_sched_device_busy_seconds_total{device="0"}`); v != 1.5 {
		t.Errorf("labelled counter = %g, want 1.5", v)
	}
	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d series, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Errorf("snapshot not sorted: %q >= %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestWithLabel(t *testing.T) {
	got := WithLabel("m", "device", 3)
	if got != `m{device="3"}` {
		t.Errorf("WithLabel = %q", got)
	}
	got = WithLabel(got, "kernel", "msv")
	if got != `m{device="3",kernel="msv"}` {
		t.Errorf("stacked WithLabel = %q", got)
	}
}

func TestRatioAndPct(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio(1,0) != 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio(3,4) != 0.75")
	}
	if Pct(1, 0) != "-" {
		t.Errorf("Pct(1,0) = %q, want -", Pct(1, 0))
	}
	if Pct(1, 4) != "25.0%" {
		t.Errorf("Pct(1,4) = %q", Pct(1, 4))
	}
}
