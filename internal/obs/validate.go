package obs

// Exporter validators. Tests use them as oracles over exporter output;
// the CI trace-smoke gate (cmd/tracecheck) reuses them to fail the
// build when a run produces an empty or malformed trace.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// ValidateJSONL checks a JSON-lines trace: every non-empty line must
// be a JSON object carrying name, track, and dur_us. Returns the span
// count.
func ValidateJSONL(data []byte) (int, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	n := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec map[string]json.RawMessage
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return n, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		for _, key := range []string{"name", "track", "dur_us"} {
			if _, ok := rec[key]; !ok {
				return n, fmt.Errorf("obs: jsonl line %d: missing %q", line, key)
			}
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("obs: jsonl scan: %w", err)
	}
	return n, nil
}

// ChromeTraceStats summarizes a validated Chrome trace document.
type ChromeTraceStats struct {
	// Spans counts X events plus matched B/E pairs.
	Spans int
	// Counters counts "C" counter events.
	Counters int
}

// ValidateChromeTrace checks a Chrome trace_event JSON document (the
// {"traceEvents": [...]} object form or a bare event array): it must
// parse, every event needs a name and a phase, X events need a
// duration field, and B/E begin/end events must balance per thread.
// Returns the span count (X events plus matched B/E pairs).
func ValidateChromeTrace(data []byte) (int, error) {
	st, err := ValidateChromeTraceStats(data)
	return st.Spans, err
}

// ValidateChromeTraceStats is ValidateChromeTrace returning the full
// event census, including "C" counter events (which must carry a
// non-empty args payload — an empty counter sample renders as nothing
// in every viewer and always indicates an exporter bug).
func ValidateChromeTraceStats(data []byte) (ChromeTraceStats, error) {
	var st ChromeTraceStats
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	events := doc.TraceEvents
	if err := json.Unmarshal(data, &doc); err != nil {
		// Retry the bare-array form.
		if arrErr := json.Unmarshal(data, &events); arrErr != nil {
			return st, fmt.Errorf("obs: chrome trace: %w", err)
		}
	} else {
		events = doc.TraceEvents
	}

	type event struct {
		Name *string                    `json:"name"`
		Ph   string                     `json:"ph"`
		Tid  int                        `json:"tid"`
		Dur  *float64                   `json:"dur"`
		Args map[string]json.RawMessage `json:"args"`
	}
	depth := make(map[int]int)
	for i, raw := range events {
		var ev event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return st, fmt.Errorf("obs: chrome trace event %d: %w", i, err)
		}
		if ev.Name == nil {
			return st, fmt.Errorf("obs: chrome trace event %d: missing name", i)
		}
		switch ev.Ph {
		case "":
			return st, fmt.Errorf("obs: chrome trace event %d (%q): missing ph", i, *ev.Name)
		case "X":
			if ev.Dur == nil {
				return st, fmt.Errorf("obs: chrome trace event %d (%q): X event without dur", i, *ev.Name)
			}
			st.Spans++
		case "B":
			depth[ev.Tid]++
		case "E":
			depth[ev.Tid]--
			if depth[ev.Tid] < 0 {
				return st, fmt.Errorf("obs: chrome trace event %d (%q): E without matching B on tid %d", i, *ev.Name, ev.Tid)
			}
			st.Spans++
		case "C":
			if len(ev.Args) == 0 {
				return st, fmt.Errorf("obs: chrome trace event %d (%q): C event without args", i, *ev.Name)
			}
			st.Counters++
		}
	}
	for tid, d := range depth {
		if d != 0 {
			return st, fmt.Errorf("obs: chrome trace: %d unclosed B event(s) on tid %d", d, tid)
		}
	}
	return st, nil
}

// ParsePrometheus parses text exposition line-by-line into a
// series-name → value map, validating comment directives and sample
// syntax as it goes.
func ParsePrometheus(data []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("obs: prom line %d: bad comment directive %q", line, text)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: prom line %d: malformed TYPE line %q", line, text)
				}
				kind := fields[3]
				if kind != "counter" && kind != "gauge" && kind != "histogram" {
					return nil, fmt.Errorf("obs: prom line %d: unknown type %q", line, kind)
				}
			}
			continue
		}
		// A sample: name{labels} value — the value is the last field.
		i := strings.LastIndexByte(text, ' ')
		if i < 0 {
			return nil, fmt.Errorf("obs: prom line %d: no value in %q", line, text)
		}
		name := strings.TrimSpace(text[:i])
		var v float64
		if _, err := fmt.Sscanf(text[i+1:], "%g", &v); err != nil {
			return nil, fmt.Errorf("obs: prom line %d: bad value in %q", line, text)
		}
		if name == "" {
			return nil, fmt.Errorf("obs: prom line %d: empty series name", line)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("obs: prom line %d: duplicate series %q", line, name)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: prom scan: %w", err)
	}
	return out, nil
}
