// Package obs is the repo's zero-dependency observability layer: a
// Tracer of nestable spans (search → stage → batch → kernel launch)
// and a Registry of named counters and gauges, with exporters to
// JSON-lines, Chrome trace_event format (open in chrome://tracing or
// Perfetto), and Prometheus text exposition.
//
// The layer is threaded through every execution path — pipeline
// engines, the multi-device streaming scheduler, and simulator kernel
// launches — so one run yields a single merged picture: per-device
// batch timelines plus a metrics table spanning lane utilization,
// bank-conflict replays, stage pass fractions, device busy fractions,
// and modelled vs. wall time.
//
// Untraced runs pay ~nothing: a nil *Tracer is the no-op default, and
// every Tracer, Span, and Registry method is safe to call on a nil
// receiver, so call sites never need to guard.
//
// Spans live on named tracks ("host", "device0", ...): tracks become
// per-device rows in the Chrome trace, which is how the streaming
// scheduler's batch gantt is rendered.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// AttrKind discriminates the typed attribute payload.
type AttrKind uint8

const (
	KindString AttrKind = iota
	KindInt
	KindFloat
	KindBool
)

// Attr is one typed key/value attribute attached to a span.
type Attr struct {
	Key   string
	Kind  AttrKind
	Str   string
	Int   int64
	Float float64
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Kind: KindString, Str: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Kind: KindInt, Int: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Kind: KindFloat, Float: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	a := Attr{Key: k, Kind: KindBool}
	if v {
		a.Int = 1
	}
	return a
}

// Value returns the attribute's payload as an any.
func (a Attr) Value() any {
	switch a.Kind {
	case KindString:
		return a.Str
	case KindInt:
		return a.Int
	case KindFloat:
		return a.Float
	case KindBool:
		return a.Int != 0
	}
	return nil
}

// SpanRecord is one completed span as stored by the tracer.
type SpanRecord struct {
	// ID is unique within the tracer; Parent is 0 for root spans.
	ID     uint64
	Parent uint64
	Name   string
	// Track names the timeline row ("host", "device0", ...).
	Track string
	Start time.Time
	Dur   time.Duration
	Attrs []Attr
}

// Tracer collects completed spans. It is safe for concurrent use by
// the scheduler's device workers; a nil Tracer is the no-op default.
type Tracer struct {
	now func() time.Time

	mu     sync.Mutex
	epoch  time.Time
	spans  []SpanRecord
	nextID uint64
}

// New returns a tracer using the wall clock.
func New() *Tracer { return NewWithClock(time.Now) }

// NewWithClock returns a tracer reading time from now — tests inject a
// deterministic clock to produce golden exports.
func NewWithClock(now func() time.Time) *Tracer {
	return &Tracer{now: now, epoch: now()}
}

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool { return t != nil }

// Epoch is the tracer's time origin; exporters emit span timestamps
// relative to it.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Start opens a root span on the given track. Returns nil (a valid
// no-op span) when the tracer is nil.
func (t *Tracer) Start(track, name string, attrs ...Attr) *Span {
	return t.newSpan(0, track, name, attrs)
}

func (t *Tracer) newSpan(parent uint64, track, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{
		tr:     t,
		id:     id,
		parent: parent,
		name:   name,
		track:  track,
		start:  t.now(),
		attrs:  append([]Attr(nil), attrs...),
	}
}

// Spans returns a snapshot of the completed spans, ordered by start
// time (ID breaks ties) so exports are deterministic.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Span is one live span. A Span is used by a single goroutine; the
// tracer it reports to may be shared. All methods are nil-safe.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	track  string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// Child opens a nested span on the same track.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s.id, s.track, name, attrs)
}

// ChildOn opens a nested span on another track — how a host-side stage
// span parents kernel spans on a device's timeline row.
func (s *Span) ChildOn(track, name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s.id, track, name, attrs)
}

// Annotate appends attributes — counters that are only known when the
// work completes (kernel stats, survivor counts).
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End completes the span and records it with the tracer. End is
// idempotent; a nil span ends silently.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Track:  s.track,
		Start:  s.start,
		Dur:    s.tr.now().Sub(s.start),
		Attrs:  s.attrs,
	}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, rec)
	s.tr.mu.Unlock()
}

// Ratio returns num/den, or 0 when den is 0 — the shared guard for
// every derived fraction in reports (pass fractions, busy fractions,
// lane utilization), so no report ever renders NaN.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Pct renders a fraction as "12.3%", or "-" when the denominator was
// zero (undefined ratio), for report strings.
func Pct(num, den float64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*num/den)
}
