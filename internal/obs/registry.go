package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MetricKind distinguishes monotonic counters, point-in-time gauges
// and bucketed histograms in the Prometheus exposition.
type MetricKind uint8

const (
	Counter MetricKind = iota
	Gauge
	Histogram
)

func (k MetricKind) String() string {
	switch k {
	case Gauge:
		return "gauge"
	case Histogram:
		return "histogram"
	}
	return "counter"
}

// Metric is one named series in a Registry snapshot.
type Metric struct {
	// Name is the full series name, possibly carrying a label set
	// (`hmmer_sched_device_busy_seconds{device="0"}`).
	Name string
	Kind MetricKind
	Help string
	// Value holds the counter/gauge sample; for a histogram it mirrors
	// the observation count so Get keeps working uniformly.
	Value float64
	// Hist carries the bucket state of a Histogram metric (nil for the
	// scalar kinds). Snapshot deep-copies it.
	Hist *Hist
}

// BaseName strips the label set from the series name (the name the
// Prometheus # TYPE line uses).
func (m Metric) BaseName() string {
	if i := strings.IndexByte(m.Name, '{'); i >= 0 {
		return m.Name[:i]
	}
	return m.Name
}

// Registry holds the named counters and gauges of one run. Adapters
// across the subsystems (simt kernel counters, pipeline stage stats,
// scheduler utilization, perf time model) merge into one Registry, so
// a single run yields a single metrics table.
//
// Naming scheme: hmmer_<subsystem>_<metric>[_total], subsystem one of
// simt, pipeline, sched, perf. Per-device series carry a
// {device="N"} label. A nil Registry is the no-op default.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*Metric
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*Metric)}
}

// Enabled reports whether metrics are being collected.
func (r *Registry) Enabled() bool { return r != nil }

func (r *Registry) upsert(name string, kind MetricKind) *Metric {
	m, ok := r.metrics[name]
	if !ok {
		m = &Metric{Name: name, Kind: kind}
		r.metrics[name] = m
		r.order = append(r.order, name)
	}
	return m
}

// Add accumulates delta into the named counter, creating it at zero
// first if needed.
func (r *Registry) Add(name string, delta float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.upsert(name, Counter).Value += delta
	r.mu.Unlock()
}

// AddInt is Add for integer counters.
func (r *Registry) AddInt(name string, delta int64) { r.Add(name, float64(delta)) }

// Set stores the named gauge's current value.
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	m := r.upsert(name, Gauge)
	m.Kind = Gauge
	m.Value = v
	r.mu.Unlock()
}

// Observe adds one observation to the named histogram, creating it
// with the given bucket bounds (LatencyBuckets when omitted) on first
// use. Later calls ignore the bucket argument.
func (r *Registry) Observe(name string, v float64, buckets ...float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	m := r.upsert(name, Histogram)
	if m.Hist == nil {
		m.Kind = Histogram
		if len(buckets) == 0 {
			buckets = LatencyBuckets()
		}
		m.Hist = NewHist(buckets)
	}
	m.Hist.Observe(v)
	m.Value = float64(m.Hist.Count)
	r.mu.Unlock()
}

// MergeHist accumulates a standalone histogram into the named
// histogram metric, creating it with h's bucket layout if absent. A
// bucket-layout mismatch is reported but leaves the metric untouched.
func (r *Registry) MergeHist(name string, h *Hist) error {
	if r == nil || h == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.upsert(name, Histogram)
	if m.Hist == nil {
		m.Kind = Histogram
		m.Hist = NewHist(h.Buckets)
	}
	if err := m.Hist.Merge(h); err != nil {
		return err
	}
	m.Value = float64(m.Hist.Count)
	return nil
}

// GetHist returns a deep copy of the named histogram's current state.
func (r *Registry) GetHist(name string) (*Hist, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[name]
	if !ok || m.Hist == nil {
		return nil, false
	}
	return m.Hist.clone(), true
}

// Help attaches a description rendered as the # HELP line.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if m, ok := r.metrics[name]; ok {
		m.Help = text
	}
	r.mu.Unlock()
}

// Get returns the current value of a series.
func (r *Registry) Get(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[name]
	if !ok {
		return 0, false
	}
	return m.Value, true
}

// Snapshot returns every series sorted by name, for deterministic
// export.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Metric, 0, len(r.metrics))
	for _, name := range r.order {
		m := *r.metrics[name]
		m.Hist = m.Hist.clone()
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Flag renders a boolean as a 0/1 gauge value. Boolean conditions
// (quarantined, drained, degraded) must be exported on every run —
// emitting the series only when true makes "false" indistinguishable
// from "not scraped" and breaks alerting on series presence; Flag
// keeps the always-emit call sites one expression.
func Flag(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// WithLabel appends a {key="value"} label set to a series name (or
// extends an existing set), keeping call sites free of quoting rules.
func WithLabel(name, key string, value any) string {
	label := fmt.Sprintf("%s=%q", key, fmt.Sprint(value))
	if i := strings.LastIndexByte(name, '}'); i >= 0 {
		return name[:i] + "," + label + "}"
	}
	return name + "{" + label + "}"
}
