package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrace builds the same small span tree every time, on a
// deterministic clock.
func goldenTrace() *Tracer {
	tr := NewWithClock(fakeClock(time.Millisecond))
	search := tr.Start("host", "search", String("engine", "multigpu-stream"))
	batch := search.ChildOn("device0", "batch 0", Int("seqs", 16))
	stage := batch.Child("stage:msv")
	kernel := stage.Child("kernel:msv", Int("blocks", 4), Float("occupancy", 0.5))
	kernel.End()
	stage.End()
	batch.End()
	search.End()
	return tr
}

func TestWriteJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSONL export drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	n, err := ValidateJSONL(buf.Bytes())
	if err != nil {
		t.Fatalf("golden output fails its own validator: %v", err)
	}
	if n != 4 {
		t.Errorf("validator counted %d spans, want 4", n)
	}
}

func TestWriteChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("chrome export fails validation: %v\n%s", err, buf.Bytes())
	}
	if n != 4 {
		t.Errorf("validator counted %d spans, want 4", n)
	}
	out := buf.String()
	// Track rows must be named via thread_name metadata, one per track.
	if strings.Count(out, `"thread_name"`) != 2 {
		t.Errorf("want 2 thread_name metadata events (host, device0), got:\n%s", out)
	}
	for _, track := range []string{"host", "device0"} {
		if !strings.Contains(out, `"name":"`+track+`"`) {
			t.Errorf("missing track name %q in chrome trace", track)
		}
	}
	// Parent links ride in args so the span tree survives the format.
	if !strings.Contains(out, `"parent":`) {
		t.Error("chrome trace lost parent links")
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	if _, err := ValidateJSONL([]byte("{not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ValidateJSONL([]byte(`{"name":"x","track":"host"}` + "\n")); err == nil {
		t.Error("span without dur_us accepted")
	}
	n, err := ValidateJSONL(nil)
	if err != nil || n != 0 {
		t.Errorf("empty input: n=%d err=%v, want 0,nil (caller enforces non-empty)", n, err)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents": [}`,
		"missing name":  `{"traceEvents":[{"ph":"X","ts":0,"dur":1}]}`,
		"missing ph":    `{"traceEvents":[{"name":"x","ts":0}]}`,
		"X without dur": `{"traceEvents":[{"name":"x","ph":"X","ts":0}]}`,
		"unbalanced B":  `{"traceEvents":[{"name":"x","ph":"B","ts":0,"tid":1}]}`,
		"E without B":   `{"traceEvents":[{"name":"x","ph":"E","ts":0,"tid":1}]}`,
	}
	for label, doc := range cases {
		if _, err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
	// The bare-array form and matched B/E pairs are legal.
	ok := `[{"name":"x","ph":"B","ts":0,"tid":1},{"name":"x","ph":"E","ts":1,"tid":1}]`
	n, err := ValidateChromeTrace([]byte(ok))
	if err != nil || n != 1 {
		t.Errorf("matched B/E pair: n=%d err=%v, want 1,nil", n, err)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.AddInt("hmmer_simt_alu_ops_total", 42)
	reg.Help("hmmer_simt_alu_ops_total", "arithmetic/logic warp instructions")
	reg.Set("hmmer_pipeline_stage_pass_fraction", 0.02)
	reg.Add(WithLabel("hmmer_sched_device_busy_seconds_total", "device", 0), 0.25)
	reg.Add(WithLabel("hmmer_sched_device_busy_seconds_total", "device", 1), 0.75)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE hmmer_simt_alu_ops_total counter") {
		t.Errorf("missing counter TYPE line:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE hmmer_pipeline_stage_pass_fraction gauge") {
		t.Errorf("missing gauge TYPE line:\n%s", out)
	}
	if !strings.Contains(out, "# HELP hmmer_simt_alu_ops_total arithmetic/logic warp instructions") {
		t.Errorf("missing HELP line:\n%s", out)
	}
	if strings.Count(out, "# TYPE hmmer_sched_device_busy_seconds_total") != 1 {
		t.Errorf("labelled series must share one TYPE line:\n%s", out)
	}

	parsed, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition fails its own parser: %v\n%s", err, out)
	}
	want := map[string]float64{
		"hmmer_simt_alu_ops_total":                          42,
		"hmmer_pipeline_stage_pass_fraction":                0.02,
		`hmmer_sched_device_busy_seconds_total{device="0"}`: 0.25,
		`hmmer_sched_device_busy_seconds_total{device="1"}`: 0.75,
	}
	if len(parsed) != len(want) {
		t.Fatalf("parsed %d series, want %d: %v", len(parsed), len(want), parsed)
	}
	for name, v := range want {
		if parsed[name] != v {
			t.Errorf("series %s = %g, want %g", name, parsed[name], v)
		}
	}
}

func TestParsePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"bad directive":  "# FROB x y\n",
		"no value":       "metric_without_value\n",
		"bad value":      "m one\n",
		"duplicate":      "m 1\nm 2\n",
		"malformed TYPE": "# TYPE m\n",
		"unknown kind":   "# TYPE m summary\n",
	}
	for label, doc := range cases {
		if _, err := ParsePrometheus([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}
