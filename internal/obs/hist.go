package obs

// Hist is a fixed-bucket histogram: the third metric kind next to
// counters and gauges, backing the first-class p50/p99 the scheduler
// and profiler publish. Buckets are chosen at construction (they must
// match to merge), observations are O(log buckets), and quantiles are
// estimated by linear interpolation inside the winning bucket — the
// same contract as a Prometheus classic histogram, which is exactly
// what WritePrometheus renders it as.
//
// A nil *Hist ignores observations and reports zero everywhere,
// extending the package's nil-receiver philosophy.

import (
	"fmt"
	"math"
	"sort"
)

// Hist accumulates observations into fixed buckets.
type Hist struct {
	// Buckets holds the ascending inclusive upper bounds; an implicit
	// +Inf bucket follows the last one.
	Buckets []float64 `json:"buckets"`
	// Counts has len(Buckets)+1 entries: Counts[i] observations fell
	// into (Buckets[i-1], Buckets[i]], the final entry is the +Inf
	// overflow.
	Counts []uint64 `json:"counts"`
	// Sum and Count are the running total and number of observations.
	Sum   float64 `json:"sum"`
	Count uint64  `json:"count"`
}

// NewHist builds an empty histogram over the given ascending bucket
// bounds (copied).
func NewHist(buckets []float64) *Hist {
	b := make([]float64, len(buckets))
	copy(b, buckets)
	return &Hist{Buckets: b, Counts: make([]uint64, len(b)+1)}
}

// LatencyBuckets returns the default latency bucket bounds in seconds:
// an exponential ladder from 1ms to ~2 minutes, sized for batch and
// queue-wait latencies.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 18)
	for v := 0.001; v < 130; v *= 2 {
		out = append(out, v)
	}
	return out
}

// Observe adds one observation.
func (h *Hist) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.Buckets, v)
	h.Counts[i]++
	h.Sum += v
	h.Count++
}

// Merge accumulates other into h. The bucket layouts must match.
func (h *Hist) Merge(other *Hist) error {
	if h == nil || other == nil {
		return nil
	}
	if len(h.Buckets) != len(other.Buckets) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(h.Buckets), len(other.Buckets))
	}
	for i, b := range h.Buckets {
		if b != other.Buckets[i] {
			return fmt.Errorf("obs: merging histograms with mismatched bucket %d (%g vs %g)", i, b, other.Buckets[i])
		}
	}
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
	h.Sum += other.Sum
	h.Count += other.Count
	return nil
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the bucket holding the target rank. The
// overflow bucket reports its lower bound (the histogram cannot see
// beyond its last boundary); an empty histogram reports 0.
func (h *Hist) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.Buckets) {
			// Overflow bucket: no finite upper bound to interpolate to.
			if len(h.Buckets) == 0 {
				return 0
			}
			return h.Buckets[len(h.Buckets)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Buckets[i-1]
		}
		hi := h.Buckets[i]
		frac := (rank - prev) / float64(c)
		if math.IsNaN(frac) || frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return h.Buckets[len(h.Buckets)-1]
}

// Mean returns the average observation (0 when empty).
func (h *Hist) Mean() float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// clone deep-copies the histogram (Snapshot uses it so exported
// metrics cannot race with later observations).
func (h *Hist) clone() *Hist {
	if h == nil {
		return nil
	}
	out := &Hist{
		Buckets: append([]float64(nil), h.Buckets...),
		Counts:  append([]uint64(nil), h.Counts...),
		Sum:     h.Sum,
		Count:   h.Count,
	}
	return out
}
