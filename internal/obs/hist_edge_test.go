package obs

import (
	"sync"
	"testing"
)

// An allocated-but-never-observed histogram reports 0 at every
// quantile (not NaN, not a bucket bound) so dashboards render a flat
// zero instead of garbage before traffic arrives.
func TestHistEmptyQuantiles(t *testing.T) {
	h := NewHist(LatencyBuckets())
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	if h.Mean() != 0 {
		t.Errorf("empty Mean = %g, want 0", h.Mean())
	}
	// Out-of-range q values clamp rather than extrapolate.
	h.Observe(0.002)
	if lo, hi := h.Quantile(-0.5), h.Quantile(2); lo != h.Quantile(0) || hi != h.Quantile(1) {
		t.Errorf("q clamp: Quantile(-0.5)=%g Quantile(2)=%g", lo, hi)
	}
}

// With a single finite bucket and every observation beyond it, all
// mass sits in the overflow bucket: p50 and p99 both report the last
// finite bound — the histogram's honest "at least this much" answer.
func TestHistSingleBucketOverflowQuantiles(t *testing.T) {
	h := NewHist([]float64{0.010})
	for i := 0; i < 100; i++ {
		h.Observe(5.0)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 != 0.010 || p99 != 0.010 {
		t.Errorf("overflow quantiles p50=%g p99=%g, want both 0.010 (last finite bound)", p50, p99)
	}
	if h.Count != 100 || h.Counts[len(h.Counts)-1] != 100 {
		t.Errorf("overflow bucket holds %d of %d", h.Counts[len(h.Counts)-1], h.Count)
	}
}

// Registry.Observe is the concurrency boundary for histograms (raw
// Hist is deliberately unlocked); hammer one metric from many
// goroutines so the race detector can vet the locking.
func TestRegistryObserveConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				reg.Observe("t_latency_seconds", 0.001*float64((g*each+i)%50+1), LatencyBuckets()...)
			}
		}(g)
	}
	wg.Wait()
	h, ok := reg.GetHist("t_latency_seconds")
	if !ok {
		t.Fatal("histogram missing after concurrent observes")
	}
	if h.Count != goroutines*each {
		t.Fatalf("count = %d, want %d (lost observations under concurrency)", h.Count, goroutines*each)
	}
	if p99 := h.Quantile(0.99); p99 <= 0 {
		t.Errorf("p99 = %g after %d observations", p99, h.Count)
	}
}
