package integrity

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/profile"
)

var abc = alphabet.New()

func testChecker(t testing.TB, m, l int, seed int64) *Checker {
	t.Helper()
	h, err := hmm.Random("integrity", m, abc, hmm.DefaultBuildParams(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	p.SetLength(l)
	return &Checker{MSV: profile.NewMSVProfile(p), Vit: profile.NewVitProfile(p)}
}

func randomSeq(rng *rand.Rand, n int) []byte {
	bg := abc.Backgrounds()
	out := make([]byte, n)
	for i := range out {
		u, acc := rng.Float64(), 0.0
		out[i] = byte(len(bg) - 1)
		for r, f := range bg {
			acc += f
			if u < acc {
				out[i] = byte(r)
				break
			}
		}
	}
	return out
}

// Every real filter output must pass its grid guard, and almost any
// single bit flip of a finite score must fail it. "Almost": a flip
// whose delta times the quantisation scale is an integer lands
// bit-exactly on another grid point, indistinguishable from a
// legitimate score by any memoryless guard. For Viterbi (scale 150) a
// high-mantissa or exponent flip has a power-of-two delta with
// 150*2^k integral, so a tail of its flips collide; for MSV the scale
// 3/ln2 is irrational and collisions require a float-rounding
// coincidence. The test bounds both families at their expected rates;
// anything beyond means the guard logic is broken.
func TestGridGuardsCleanAndFlipped(t *testing.T) {
	c := testChecker(t, 60, 200, 1)
	rng := rand.New(rand.NewSource(2))
	msvEng := cpu.NewMSVEngine(c.MSV)
	vitEng := cpu.NewVitEngine(c.Vit)

	var msv, vit []cpu.FilterResult
	for i := 0; i < 64; i++ {
		dsq := randomSeq(rng, 50+rng.Intn(300))
		msv = append(msv, msvEng.Filter(dsq))
		vit = append(vit, vitEng.Filter(dsq))
	}
	if err := c.CheckMSV(msv); err != nil {
		t.Fatalf("clean MSV batch rejected: %v", err)
	}
	if err := c.CheckViterbi(vit); err != nil {
		t.Fatalf("clean Viterbi batch rejected: %v", err)
	}

	flip := func(s float64, bit uint) float64 {
		return math.Float64frombits(math.Float64bits(s) ^ 1<<bit)
	}
	trials, missMSV, missVit := 0, 0, 0
	for trial := 0; trial < 256; trial++ {
		i := rng.Intn(len(msv))
		bit := uint(rng.Intn(64))

		bad := append([]cpu.FilterResult(nil), msv...)
		if !bad[i].Overflowed {
			trials++
			bad[i].Score = flip(bad[i].Score, bit)
			err := c.CheckMSV(bad)
			if err == nil {
				missMSV++
				t.Logf("MSV seq %d bit %d: flip collided with the grid (score %v)", i, bit, bad[i].Score)
			} else {
				var ie *Error
				if !errors.As(err, &ie) || ie.Stage != "msv" || ie.Seq != i {
					t.Fatalf("MSV flip error = %v, want *Error{msv, %d}", err, i)
				}
			}
		}

		bad = append([]cpu.FilterResult(nil), vit...)
		if !bad[i].Overflowed {
			trials++
			bad[i].Score = flip(bad[i].Score, bit)
			if err := c.CheckViterbi(bad); err == nil {
				missVit++
				t.Logf("Viterbi seq %d bit %d: flip collided with the grid (score %v)", i, bit, bad[i].Score)
			}
		}
	}
	if trials == 0 {
		t.Fatal("every result overflowed; workload exercises nothing")
	}
	if missMSV*50 > trials { // > ~2%: MSV's irrational scale leaves no room for this
		t.Fatalf("MSV grid guard missed %d of ~%d flips", missMSV, trials/2)
	}
	if missVit*4 > trials { // > ~25%: far beyond the commensurate-delta tail
		t.Fatalf("Viterbi grid guard missed %d of ~%d flips", missVit, trials/2)
	}
}

func TestOverflowExactness(t *testing.T) {
	c := testChecker(t, 30, 100, 3)
	ok := []cpu.FilterResult{{Score: math.Inf(1), Overflowed: true}}
	if err := c.CheckMSV(ok); err != nil {
		t.Errorf("overflowed +Inf rejected: %v", err)
	}
	if err := c.CheckViterbi(ok); err != nil {
		t.Errorf("overflowed +Inf rejected: %v", err)
	}
	for _, bad := range [][]cpu.FilterResult{
		{{Score: math.NaN(), Overflowed: true}},   // corrupted overflow marker
		{{Score: math.Inf(-1), Overflowed: true}}, // sign bit flipped
		{{Score: 12.5, Overflowed: true}},         // finite but flagged
		{{Score: math.Inf(1)}},                    // +Inf without the flag
		{{Score: math.NaN()}},
	} {
		if err := c.CheckMSV(bad); err == nil {
			t.Errorf("CheckMSV(%+v) passed, want error", bad[0])
		}
		if err := c.CheckViterbi(bad); err == nil {
			t.Errorf("CheckViterbi(%+v) passed, want error", bad[0])
		}
	}
}

func TestCheckHitOrdering(t *testing.T) {
	c := testChecker(t, 30, 100, 4)
	tol := OrderingTolNats / math.Ln2
	cases := []struct {
		msv, vit, fwd float64
		ok            bool
	}{
		{10, 12, 14, true},
		{12, 11.9, 14, true},                 // MSV slightly above Viterbi: within envelope
		{10, 14.1, 14, true},                 // Viterbi slightly above Forward: within envelope
		{12 + 2*tol, 12, 14, false},          // gross MSV corruption
		{10, 14 + 2*tol, 14, false},          // gross Viterbi corruption
		{math.Inf(1), 12, 14, true},          // MSV overflow: skipped
		{10, math.Inf(1), 14, true},          // Viterbi overflow: skipped
		{14 + 2*tol, math.Inf(1), 14, false}, // MSV vs Forward when Viterbi unknown
		{10, 12, math.NaN(), false},
		{10, 12, math.Inf(1), false}, // Forward is float64: never legitimately +Inf
	}
	for _, tc := range cases {
		err := c.CheckHit(0, tc.msv, tc.vit, tc.fwd)
		if (err == nil) != tc.ok {
			t.Errorf("CheckHit(%v, %v, %v) = %v, want ok=%v", tc.msv, tc.vit, tc.fwd, err, tc.ok)
		}
	}
}

func TestChecksumOrderIndependentContentSensitive(t *testing.T) {
	a := []cpu.FilterResult{{Score: 1.5}, {Score: -2.25}, {Score: math.Inf(1), Overflowed: true}}
	sum := Checksum(a)

	// Summing per-element hashes makes the accumulation order
	// irrelevant: hashing a partial view of each index must combine to
	// the full checksum.
	part := Checksum(a[:1])
	rest := Checksum([]cpu.FilterResult{{}, a[1], a[2]}) - Checksum([]cpu.FilterResult{{}})
	if part+rest != sum {
		t.Error("checksum is not an index-keyed sum")
	}

	b := append([]cpu.FilterResult(nil), a...)
	b[1].Score = -2.2500000001
	if Checksum(b) == sum {
		t.Error("checksum ignores a score change")
	}
	c := append([]cpu.FilterResult(nil), a...)
	c[2].Overflowed = false
	if Checksum(c) == sum {
		t.Error("checksum ignores the overflow flag")
	}
	d := []cpu.FilterResult{a[1], a[0], a[2]}
	if Checksum(d) == sum {
		t.Error("checksum ignores which index holds which score")
	}
}
