// Package integrity detects silent data corruption in filter results.
//
// The fail-stop faults handled by the scheduler announce themselves;
// a bit flip in non-ECC device memory does not — the launch succeeds
// and a score is simply wrong. This package supplies the cheap,
// per-sequence guards the pipeline runs on every device batch and the
// checksum used to revalidate a suspect batch:
//
//   - Grid membership: an uncorrupted MSV score is ScoreToNats(x) for
//     some byte x, and a Viterbi score is ScoreToNats(xC) for some
//     int16 xC — both affine maps with coarse spacing (1/MSVScale and
//     1/VitScale nats). A random float64 bit flip almost surely leaves
//     the grid, so requiring bit-exact membership catches essentially
//     every readback flip deterministically.
//   - Overflow exactness: a saturated filter result must carry exactly
//     +Inf; any other non-finite value (or a non-finite value without
//     the overflow flag) is corruption.
//   - Pipeline ordering: MSV is an upper-bound approximation of
//     Viterbi, which lower-bounds Forward, so for every reported hit
//     MSV <= Viterbi <= Forward must hold within OrderingTolNats.
//     This is the only guard with a tolerance, and the only one that
//     can see gross corruption of on-grid values (e.g. a flipped high
//     bit of the quantised byte itself).
//
// What the guards cannot see: a shared-memory flip corrupts the DP
// recurrence mid-kernel, so the kernel emits a wrong but well-formed
// on-grid score. Catching those requires re-execution (the
// scheduler's DMR policy); the sdc benchmark measures how often the
// ordering guard gets lucky anyway.
//
// The package sits below internal/gpu and internal/pipeline on
// purpose: it imports only the CPU result and profile types, so both
// the scheduler (fault classification) and the pipeline (guard
// invocation) can use it without cycles.
package integrity

import (
	"fmt"
	"math"

	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/profile"
)

// OrderingTolNats is the tolerance on the MSV <= Viterbi <= Forward
// pipeline invariant, in nats. The slack is empirical: MSV's free
// M->M transitions let it exceed Viterbi by up to ~0.5 nats on seed
// workloads, and 16-bit quantisation lets Viterbi exceed Forward by
// up to ~0.25 nats; 1.0 covers both with margin while still flagging
// the multi-nat jumps a flipped score-grid bit produces.
const OrderingTolNats = 1.0

// Error is a failed integrity check on a device batch. It wraps no
// deeper cause: the result itself is the evidence.
type Error struct {
	// Stage is the pipeline stage whose output failed ("msv",
	// "viterbi", "hit").
	Stage string
	// Seq is the batch-local sequence index (-1 when the check is not
	// tied to one sequence).
	Seq int
	// Detail says what was wrong with the value.
	Detail string
}

func (e *Error) Error() string {
	return fmt.Sprintf("integrity: %s check failed on sequence %d: %s", e.Stage, e.Seq, e.Detail)
}

// Checker validates filter results against the quantisation grids of
// the profile that produced them.
type Checker struct {
	MSV *profile.MSVProfile
	Vit *profile.VitProfile
}

// checkOnGrid validates one de-quantised score against its affine
// grid: score = base + q/scale for some integer q in [lo, hi], where
// base is ScoreToNats(0). toNats recomputes the profile's exact
// conversion so membership is judged bit-for-bit, immune to any
// rounding slack in the inversion.
func checkOnGrid(score, base, scale float64, lo, hi int, toNats func(int) float64) bool {
	q := int(math.Round((score - base) * scale))
	// The inversion is exact to ~1 ulp; probing the neighbours makes
	// the guard robust to the rounding of the forward conversion
	// rather than dependent on it.
	for _, cand := range [3]int{q - 1, q, q + 1} {
		if cand >= lo && cand <= hi && toNats(cand) == score {
			return true
		}
	}
	return false
}

// CheckMSV validates a batch of MSV filter results: overflowed
// results carry exactly +Inf, everything else is finite and on the
// 8-bit score grid.
func (c *Checker) CheckMSV(results []cpu.FilterResult) error {
	base := c.MSV.ScoreToNats(0)
	for i, r := range results {
		if r.Overflowed {
			if !(math.IsInf(r.Score, 1)) {
				return &Error{Stage: "msv", Seq: i,
					Detail: fmt.Sprintf("overflowed result carries %v, want +Inf", r.Score)}
			}
			continue
		}
		if math.IsNaN(r.Score) || math.IsInf(r.Score, 0) {
			return &Error{Stage: "msv", Seq: i,
				Detail: fmt.Sprintf("non-finite score %v without overflow flag", r.Score)}
		}
		if !checkOnGrid(r.Score, base, profile.MSVScale, 0, 255,
			func(q int) float64 { return c.MSV.ScoreToNats(uint8(q)) }) {
			return &Error{Stage: "msv", Seq: i,
				Detail: fmt.Sprintf("score %v is not on the 8-bit filter grid", r.Score)}
		}
	}
	return nil
}

// CheckViterbi validates a batch of Viterbi filter results against
// the 16-bit score grid.
func (c *Checker) CheckViterbi(results []cpu.FilterResult) error {
	base := c.Vit.ScoreToNats(0)
	for i, r := range results {
		if r.Overflowed {
			if !(math.IsInf(r.Score, 1)) {
				return &Error{Stage: "viterbi", Seq: i,
					Detail: fmt.Sprintf("overflowed result carries %v, want +Inf", r.Score)}
			}
			continue
		}
		if math.IsNaN(r.Score) || math.IsInf(r.Score, 0) {
			return &Error{Stage: "viterbi", Seq: i,
				Detail: fmt.Sprintf("non-finite score %v without overflow flag", r.Score)}
		}
		// 32767 is the saturation value: a non-overflowed result can
		// only come from xC <= 32766.
		if !checkOnGrid(r.Score, base, profile.VitScale, -32768, 32766,
			func(q int) float64 { return c.Vit.ScoreToNats(int16(q)) }) {
			return &Error{Stage: "viterbi", Seq: i,
				Detail: fmt.Sprintf("score %v is not on the 16-bit filter grid", r.Score)}
		}
	}
	return nil
}

// CheckHit validates one reported hit's score triple (in bits, as the
// pipeline reports them): Forward must be finite, and the pipeline
// ordering MSV <= Viterbi <= Forward must hold within OrderingTolNats
// (converted to bits; the null-model correction is the same affine
// shift on all three scores, so nat-space differences survive the
// conversion). +Inf filter scores mark overflow and are skipped —
// overflow means "passed unconditionally", not a known score. seq is
// the hit's sequence index, used only for the error.
func (c *Checker) CheckHit(seq int, msvBits, vitBits, fwdBits float64) error {
	if math.IsNaN(fwdBits) || math.IsInf(fwdBits, 0) {
		return &Error{Stage: "hit", Seq: seq,
			Detail: fmt.Sprintf("non-finite Forward score %v", fwdBits)}
	}
	tol := OrderingTolNats / math.Ln2
	msvKnown := !math.IsInf(msvBits, 1) && !math.IsNaN(msvBits)
	vitKnown := !math.IsInf(vitBits, 1) && !math.IsNaN(vitBits)
	if msvKnown && vitKnown && msvBits > vitBits+tol {
		return &Error{Stage: "hit", Seq: seq,
			Detail: fmt.Sprintf("MSV %.2f bits exceeds Viterbi %.2f beyond tolerance", msvBits, vitBits)}
	}
	if vitKnown && vitBits > fwdBits+tol {
		return &Error{Stage: "hit", Seq: seq,
			Detail: fmt.Sprintf("Viterbi %.2f bits exceeds Forward %.2f beyond tolerance", vitBits, fwdBits)}
	}
	if msvKnown && !vitKnown && msvBits > fwdBits+tol {
		return &Error{Stage: "hit", Seq: seq,
			Detail: fmt.Sprintf("MSV %.2f bits exceeds Forward %.2f beyond tolerance", msvBits, fwdBits)}
	}
	return nil
}

// Checksum returns an order-independent checksum of a batch's
// per-sequence filter scores: each (index, score, overflow) triple is
// mixed into a 64-bit hash and the hashes are summed, so partial
// vectors computed in any order — or on different devices — combine
// to the same value. Two runs of the same batch agree iff every
// sequence's result agrees.
func Checksum(results []cpu.FilterResult) uint64 {
	var sum uint64
	for i, r := range results {
		h := (uint64(i) + 1) * 0x9E3779B97F4A7C15
		h ^= math.Float64bits(r.Score)
		if r.Overflowed {
			h ^= 0xA5A5A5A5A5A5A5A5
		}
		h ^= h >> 30
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		sum += h
	}
	return sum
}
