package refimpl

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/profile"
)

func TestViterbiTraceScoreMatchesViterbi(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		m := 5 + rng.Intn(60)
		L := 10 + rng.Intn(200)
		p := testProfile(t, m, int64(200+trial))
		p.SetLength(L)
		dsq := randomSeq(rng, L)
		tr, err := ViterbiTrace(p, dsq)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := Viterbi(p, dsq)
		if tr.Score != want {
			t.Fatalf("trial %d (M=%d L=%d): trace score %g != Viterbi %g", trial, m, L, tr.Score, want)
		}
	}
}

// TestTracePathConsistency re-scores the traced path step by step; its
// summed score must equal the Viterbi score, which proves the path is
// genuine (not just the right number).
func TestTracePathConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		m := 5 + rng.Intn(40)
		L := 10 + rng.Intn(120)
		p := testProfile(t, m, int64(300+trial))
		p.SetLength(L)
		dsq := randomSeq(rng, L)
		tr, err := ViterbiTrace(p, dsq)
		if err != nil {
			t.Fatal(err)
		}
		got := scoreTrace(t, p, dsq, tr)
		if math.Abs(got-tr.Score) > 1e-6*(1+math.Abs(tr.Score)) {
			t.Fatalf("trial %d: path rescore %g != trace score %g", trial, got, tr.Score)
		}
		// Emitting steps must cover each residue exactly once, in order.
		next := 1
		for _, st := range tr.Steps {
			if st.I > 0 {
				if st.I != next {
					t.Fatalf("trial %d: emission order broken at %+v (want %d)", trial, st, next)
				}
				next++
			}
		}
		if next != L+1 {
			t.Fatalf("trial %d: %d residues emitted, want %d", trial, next-1, L)
		}
	}
}

// scoreTrace accumulates the model's log probabilities along the path.
func scoreTrace(t *testing.T, p *profile.Profile, dsq []byte, tr *Trace) float64 {
	t.Helper()
	score := 0.0
	steps := tr.Steps
	for j := 0; j < len(steps); j++ {
		st := steps[j]
		// Emission terms.
		if st.State == StM {
			score += p.MSC[dsq[st.I-1]][st.K]
		}
		// Transition to the next step.
		if j+1 >= len(steps) {
			break
		}
		nx := steps[j+1]
		switch {
		case st.State == StN && nx.State == StN:
			score += p.TLoop
		case st.State == StN && nx.State == StB:
			score += p.TMove
		case st.State == StB && nx.State == StM:
			score += p.TBM
		case st.State == StM && nx.State == StM:
			score += p.TMM[st.K]
		case st.State == StM && nx.State == StI:
			score += p.TMI[st.K]
		case st.State == StM && nx.State == StD:
			score += p.TMD[st.K]
		case st.State == StI && nx.State == StM:
			score += p.TIM[st.K]
		case st.State == StI && nx.State == StI:
			score += p.TII[st.K]
		case st.State == StD && nx.State == StM:
			score += p.TDM[st.K]
		case st.State == StD && nx.State == StD:
			score += p.TDD[st.K]
		case (st.State == StM || st.State == StD) && nx.State == StE:
			// Local exit, score 0.
		case st.State == StE && nx.State == StJ:
			score += p.TEJ
		case st.State == StE && nx.State == StC:
			score += p.TEC
		case st.State == StJ && nx.State == StJ:
			score += p.TLoop
		case st.State == StJ && nx.State == StB:
			score += p.TMove
		case st.State == StC && nx.State == StC:
			score += p.TLoop
		default:
			t.Fatalf("illegal transition %v -> %v in trace", st.State, nx.State)
		}
	}
	return score + p.TMove // final C -> T
}

func TestAlignmentsRenderPlantedDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cons := randomSeq(rng, 30)
	h, err := hmm.FromConsensus("dom", cons, abc,
		hmm.BuildParams{MatchIdentity: 0.95, GapOpen: 0.005, GapExtend: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	// Target: random flank + consensus + random flank.
	target := append(append(append([]byte{}, randomSeq(rng, 20)...), cons...), randomSeq(rng, 25)...)
	p.SetLength(len(target))
	tr, err := ViterbiTrace(p, target)
	if err != nil {
		t.Fatal(err)
	}
	aligns := tr.Alignments(p, target, h.Consensus(), abc)
	if len(aligns) != 1 {
		t.Fatalf("got %d domains, want 1", len(aligns))
	}
	a := aligns[0]
	if a.SeqFrom != 21 || a.SeqTo != 50 {
		t.Errorf("domain at %d..%d, want 21..50", a.SeqFrom, a.SeqTo)
	}
	if a.HMMFrom != 1 || a.HMMTo != 30 {
		t.Errorf("model span %d..%d, want 1..30", a.HMMFrom, a.HMMTo)
	}
	// A perfect consensus hit: the match row equals the model row.
	if a.Model != a.Target || !strings.EqualFold(a.Match, a.Model) {
		t.Errorf("alignment rows differ for an exact hit:\n%s\n%s\n%s", a.Model, a.Match, a.Target)
	}
	if len(a.Model) != len(a.Match) || len(a.Match) != len(a.Target) {
		t.Error("alignment rows have unequal lengths")
	}
}

func TestAlignmentsMultihit(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	cons := randomSeq(rng, 25)
	h, err := hmm.FromConsensus("two", cons, abc,
		hmm.BuildParams{MatchIdentity: 0.95, GapOpen: 0.005, GapExtend: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	target := append(append(append(append([]byte{}, randomSeq(rng, 12)...), cons...),
		randomSeq(rng, 30)...), cons...)
	p.SetLength(len(target))
	tr, err := ViterbiTrace(p, target)
	if err != nil {
		t.Fatal(err)
	}
	aligns := tr.Alignments(p, target, h.Consensus(), abc)
	if len(aligns) != 2 {
		t.Fatalf("got %d domains, want 2 (multihit through J)", len(aligns))
	}
	if aligns[0].SeqTo >= aligns[1].SeqFrom {
		t.Error("domains out of order")
	}
}

func TestViterbiTraceEmptySequence(t *testing.T) {
	p := testProfile(t, 10, 400)
	p.SetLength(10)
	if _, err := ViterbiTrace(p, nil); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestPosteriorDecodeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 8; trial++ {
		m := 5 + rng.Intn(40)
		L := 10 + rng.Intn(150)
		p := testProfile(t, m, int64(500+trial))
		p.SetLength(L)
		dsq := randomSeq(rng, L)
		po, err := PosteriorDecode(p, dsq)
		if err != nil {
			t.Fatal(err)
		}
		want := Forward(p, dsq)
		if math.Abs(po.Score-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: posterior total %g != Forward %g", trial, po.Score, want)
		}
		for i, v := range po.InModel {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("trial %d: InModel[%d] = %g", trial, i, v)
			}
		}
	}
}

func TestPosteriorEnvelopeFindsPlantedDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	cons := randomSeq(rng, 40)
	h, err := hmm.FromConsensus("env", cons, abc,
		hmm.BuildParams{MatchIdentity: 0.9, GapOpen: 0.01, GapExtend: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	target := append(append(append([]byte{}, randomSeq(rng, 30)...), cons...), randomSeq(rng, 30)...)
	p.SetLength(len(target))
	po, err := PosteriorDecode(p, target)
	if err != nil {
		t.Fatal(err)
	}
	envs := po.Envelopes(0.5)
	if len(envs) != 1 {
		t.Fatalf("got %d envelopes, want 1 (%v)", len(envs), envs)
	}
	// The envelope must cover the planted core with a little slack.
	if envs[0].From > 35 || envs[0].To < 65 {
		t.Errorf("envelope %v misses the planted domain 31..70", envs[0])
	}
	// Flanks must have low occupancy.
	if po.InModel[5] > 0.3 || po.InModel[len(target)-5] > 0.3 {
		t.Errorf("flank occupancy too high: %g, %g", po.InModel[5], po.InModel[len(target)-5])
	}
}

func TestEnvelopesEdgeRuns(t *testing.T) {
	po := &Posterior{InModel: []float64{0.9, 0.9, 0.1, 0.8, 0.8}}
	envs := po.Envelopes(0.5)
	if len(envs) != 2 || envs[0] != (Envelope{1, 2}) || envs[1] != (Envelope{4, 5}) {
		t.Errorf("envelopes = %v", envs)
	}
	if got := (&Posterior{InModel: []float64{0.1, 0.2}}).Envelopes(0.5); len(got) != 0 {
		t.Errorf("no-domain case returned %v", got)
	}
}

func TestNull2CorrectionPenalisesBiasedComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	// A model whose consensus is poly-L: a poly-L target scores high
	// for compositional reasons and must receive a large correction.
	cons := make([]byte, 40)
	lCode := byte(9) // 'L' in the canonical order ACDEFGHIKL...
	for i := range cons {
		cons[i] = lCode
	}
	h, err := hmm.FromConsensus("polyL", cons, abc,
		hmm.BuildParams{MatchIdentity: 0.9, GapOpen: 0.01, GapExtend: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	polyL := make([]byte, 60)
	for i := range polyL {
		polyL[i] = lCode
	}
	p.SetLength(len(polyL))
	po, err := PosteriorDecode(p, polyL)
	if err != nil {
		t.Fatal(err)
	}
	biasedCorr := Null2Correction(p, polyL, po)
	if biasedCorr < 5 {
		t.Errorf("poly-L correction %.2f nats, want substantial (>5)", biasedCorr)
	}

	// A diverse-composition model with a true homolog: the correction
	// is small relative to the hit's score (any finite model is a
	// little biased, so a few nats are expected — real null2 behaves
	// the same) and far below the poly-L case.
	hd, err := hmm.Random("diverse", 60, abc, hmm.DefaultBuildParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	pd := profile.Config(hd)
	homolog := hd.SampleSequence(rng)
	pd.SetLength(len(homolog))
	pod, err := PosteriorDecode(pd, homolog)
	if err != nil {
		t.Fatal(err)
	}
	cleanCorr := Null2Correction(pd, homolog, pod)
	if score := Forward(pd, homolog); cleanCorr > score/4 {
		t.Errorf("diverse homolog correction %.2f nats too large vs score %.2f", cleanCorr, score)
	}
	if 2*cleanCorr >= biasedCorr {
		t.Errorf("biased correction %.2f should far exceed clean %.2f", biasedCorr, cleanCorr)
	}

	// A random, non-homologous target aligns weakly: its posterior
	// weights are small, so the omega prior crushes the correction.
	random := randomSeq(rng, 80)
	pd.SetLength(len(random))
	por, err := PosteriorDecode(pd, random)
	if err != nil {
		t.Fatal(err)
	}
	if rc := Null2Correction(pd, random, por); rc > 0.5 {
		t.Errorf("random-target correction %.2f nats, want ~0", rc)
	}
}

func TestNull2CorrectionNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 8; trial++ {
		p := testProfile(t, 20+rng.Intn(40), int64(600+trial))
		L := 30 + rng.Intn(150)
		dsq := randomSeq(rng, L)
		p.SetLength(L)
		po, err := PosteriorDecode(p, dsq)
		if err != nil {
			t.Fatal(err)
		}
		if corr := Null2Correction(p, dsq, po); corr < 0 {
			t.Fatalf("negative correction %g", corr)
		}
	}
}
