package refimpl

import (
	"fmt"
	"strings"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/profile"
)

// Viterbi traceback: the optimal state path, used to render hit
// alignments. Memory is O(L*M) — intended for reporting surviving
// hits, not for database scanning (that is what the filters are for).

// StateType labels Plan7 states in a trace.
type StateType int8

// Trace state labels.
const (
	StN StateType = iota
	StB
	StM
	StI
	StD
	StE
	StJ
	StC
)

func (s StateType) String() string {
	return [...]string{"N", "B", "M", "I", "D", "E", "J", "C"}[s]
}

// TraceStep is one state visit: K is the model node (M/I/D states
// only) and I the 1-based target position whose residue the state
// emitted (0 for silent states and non-emitting visits).
type TraceStep struct {
	State StateType
	K     int
	I     int
}

// Trace is an optimal alignment path with its score.
type Trace struct {
	Score float64
	Steps []TraceStep
}

// ViterbiTrace computes the Viterbi score with a full dynamic
// programming matrix and returns the optimal state path. The score
// equals Viterbi(p, dsq) exactly.
func ViterbiTrace(p *profile.Profile, dsq []byte) (*Trace, error) {
	m, L := p.M, len(dsq)
	if L == 0 {
		return nil, fmt.Errorf("refimpl: cannot trace an empty sequence")
	}

	idx := func(i, k int) int { return i*(m+1) + k }
	mx := make([]float64, (L+1)*(m+1))
	ix := make([]float64, (L+1)*(m+1))
	dx := make([]float64, (L+1)*(m+1))
	for i := range mx {
		mx[i], ix[i], dx[i] = profile.NegInf, profile.NegInf, profile.NegInf
	}
	xN := make([]float64, L+1)
	xB := make([]float64, L+1)
	xE := make([]float64, L+1)
	xJ := make([]float64, L+1)
	xC := make([]float64, L+1)
	for i := 0; i <= L; i++ {
		xN[i], xB[i], xE[i], xJ[i], xC[i] =
			profile.NegInf, profile.NegInf, profile.NegInf, profile.NegInf, profile.NegInf
	}
	xN[0] = 0
	xB[0] = p.TMove

	for i := 1; i <= L; i++ {
		msc := p.MSC[dsq[i-1]]
		for k := 1; k <= m; k++ {
			mv := max4(
				mx[idx(i-1, k-1)]+p.TMM[k-1],
				ix[idx(i-1, k-1)]+p.TIM[k-1],
				dx[idx(i-1, k-1)]+p.TDM[k-1],
				xB[i-1]+p.TBM,
			) + msc[k]
			mx[idx(i, k)] = mv
			ix[idx(i, k)] = max2(mx[idx(i-1, k)]+p.TMI[k], ix[idx(i-1, k)]+p.TII[k])
			dx[idx(i, k)] = max2(mx[idx(i, k-1)]+p.TMD[k-1], dx[idx(i, k-1)]+p.TDD[k-1])
			if mv > xE[i] {
				xE[i] = mv
			}
		}
		xE[i] = max2(xE[i], dx[idx(i, m)])
		xJ[i] = max2(xJ[i-1]+p.TLoop, xE[i]+p.TEJ)
		xC[i] = max2(xC[i-1]+p.TLoop, xE[i]+p.TEC)
		xN[i] = xN[i-1] + p.TLoop
		xB[i] = max2(xN[i], xJ[i]) + p.TMove
	}
	score := xC[L] + p.TMove

	// Traceback. Values were computed with the exact expressions below,
	// so float equality identifies the taken branch.
	var rev []TraceStep
	push := func(s StateType, k, i int) { rev = append(rev, TraceStep{s, k, i}) }

	push(StC, 0, 0)
	stateK := 0
	i := L
	cur := StC
	for !(cur == StN && i == 0) {
		switch cur {
		case StC:
			if xC[i] == xE[i]+p.TEC {
				cur = StE
			} else {
				push(StC, 0, i) // C emitted residue i on its self loop
				i--
			}
		case StJ:
			if xJ[i] == xE[i]+p.TEJ {
				cur = StE
			} else {
				push(StJ, 0, i)
				i--
			}
		case StE:
			push(StE, 0, 0)
			if xE[i] == dx[idx(i, m)] {
				cur, stateK = StD, m
				break
			}
			for k := m; k >= 1; k-- {
				if xE[i] == mx[idx(i, k)] {
					cur, stateK = StM, k
					break
				}
			}
			if cur == StE {
				return nil, fmt.Errorf("refimpl: traceback failed at E, i=%d", i)
			}
		case StM:
			push(StM, stateK, i)
			// Compare candidates in exactly the form the DP computed
			// them ((candidate) + msc), so float equality is reliable.
			v := mx[idx(i, stateK)]
			e := p.MSC[dsq[i-1]][stateK]
			switch {
			case v == (xB[i-1]+p.TBM)+e:
				cur = StB
			case v == (mx[idx(i-1, stateK-1)]+p.TMM[stateK-1])+e:
				cur, stateK = StM, stateK-1
			case v == (ix[idx(i-1, stateK-1)]+p.TIM[stateK-1])+e:
				cur, stateK = StI, stateK-1
			case v == (dx[idx(i-1, stateK-1)]+p.TDM[stateK-1])+e:
				cur, stateK = StD, stateK-1
			default:
				return nil, fmt.Errorf("refimpl: traceback failed at M%d, i=%d", stateK, i)
			}
			i--
		case StI:
			push(StI, stateK, i)
			v := ix[idx(i, stateK)]
			if v == mx[idx(i-1, stateK)]+p.TMI[stateK] {
				cur = StM
			} else {
				cur = StI
			}
			i--
		case StD:
			push(StD, stateK, 0)
			v := dx[idx(i, stateK)]
			if v == mx[idx(i, stateK-1)]+p.TMD[stateK-1] {
				cur, stateK = StM, stateK-1
			} else {
				cur, stateK = StD, stateK-1
			}
		case StB:
			push(StB, 0, 0)
			if xB[i] == xJ[i]+p.TMove {
				cur = StJ
			} else {
				cur = StN
			}
		case StN:
			push(StN, 0, i)
			i--
		}
	}
	push(StN, 0, 0)

	// Reverse into forward order.
	steps := make([]TraceStep, len(rev))
	for j := range rev {
		steps[j] = rev[len(rev)-1-j]
	}
	return &Trace{Score: score, Steps: steps}, nil
}

// DomainAlignment is one B..E segment of a trace rendered in HMMER's
// three-line style.
type DomainAlignment struct {
	// HMMFrom/HMMTo are the first/last model nodes of the domain;
	// SeqFrom/SeqTo the 1-based target coordinates.
	HMMFrom, HMMTo int
	SeqFrom, SeqTo int
	// Model, Match and Target are the three alignment display rows.
	Model  string
	Match  string
	Target string
}

// Alignments renders every domain (B..E pass) of the trace. consensus
// is the model's consensus residue per node (digital codes).
func (t *Trace) Alignments(p *profile.Profile, dsq []byte, consensus []byte, abc *alphabet.Alphabet) []DomainAlignment {
	var out []DomainAlignment
	var model, match, target strings.Builder
	var dom *DomainAlignment

	flush := func() {
		if dom == nil {
			return
		}
		dom.Model = model.String()
		dom.Match = match.String()
		dom.Target = target.String()
		out = append(out, *dom)
		dom = nil
		model.Reset()
		match.Reset()
		target.Reset()
	}

	for _, st := range t.Steps {
		switch st.State {
		case StB:
			flush()
			dom = &DomainAlignment{HMMFrom: -1, SeqFrom: -1}
		case StE:
			flush()
		case StM:
			if dom == nil {
				continue
			}
			if dom.HMMFrom < 0 {
				dom.HMMFrom = st.K
			}
			if dom.SeqFrom < 0 {
				dom.SeqFrom = st.I
			}
			dom.HMMTo, dom.SeqTo = st.K, st.I
			c := consensus[st.K-1]
			r := dsq[st.I-1]
			model.WriteByte(abc.Symbol(c))
			target.WriteByte(abc.Symbol(r))
			switch {
			case c == r:
				match.WriteByte(abc.Symbol(c))
			case p.MSC[r][st.K] > 0:
				match.WriteByte('+')
			default:
				match.WriteByte(' ')
			}
		case StI:
			if dom == nil {
				continue
			}
			if dom.SeqFrom < 0 {
				dom.SeqFrom = st.I
			}
			dom.SeqTo = st.I
			model.WriteByte('.')
			match.WriteByte(' ')
			target.WriteByte(abc.Symbol(dsq[st.I-1]))
		case StD:
			if dom == nil {
				continue
			}
			if dom.HMMFrom < 0 {
				dom.HMMFrom = st.K
			}
			dom.HMMTo = st.K
			model.WriteByte(abc.Symbol(consensus[st.K-1]))
			match.WriteByte(' ')
			target.WriteByte('-')
		}
	}
	flush()
	return out
}
