package refimpl

import (
	"math"

	"hmmer3gpu/internal/profile"
)

// Null2 biased-composition correction, after HMMER3's null2 model:
// low-complexity targets (poly-amino-acid runs, coiled coils) can
// reach high log-odds scores against the standard background simply
// because their composition matches the model's better than the
// background does. The second null hypothesis re-scores the aligned
// residues against the model's own posterior-weighted average emission
// distribution; a biased model/target pair loses its compositional
// advantage while a genuine homolog of a diverse model is barely
// touched (its null2 is close to the background). The omega prior
// keeps small, noisy corrections from moving scores at all.

// null2Omega is the prior probability of the null2 hypothesis
// (HMMER's default is 1/8).
const null2Omega = 1.0 / 8.0

// Null2Correction returns the score correction in nats (>= 0) to be
// subtracted from a Forward score, given the target's posterior
// decoding.
func Null2Correction(p *profile.Profile, dsq []byte, po *Posterior) float64 {
	abc := p.Abc
	bg := abc.Backgrounds()
	K := abc.Size()

	// null2[r]: the model's expected emission distribution over the
	// states the alignment actually used. Match state k emits with
	// probability bg[r]*exp(MSC[r][k]); insert states emit the
	// background.
	var totalUse float64
	null2 := make([]float64, K)
	for k := 1; k <= p.M; k++ {
		u := po.MatchUsage[k]
		if u <= 0 {
			continue
		}
		totalUse += u
		for r := 0; r < K; r++ {
			sc := p.MSC[r][k]
			if math.IsInf(sc, -1) {
				continue
			}
			null2[r] += u * bg[r] * math.Exp(sc)
		}
	}
	if po.InsertUsage > 0 {
		totalUse += po.InsertUsage
		for r := 0; r < K; r++ {
			null2[r] += po.InsertUsage * bg[r]
		}
	}
	if totalUse <= 0 {
		return 0
	}
	for r := 0; r < K; r++ {
		null2[r] /= totalUse
	}

	// The aligned residues' log advantage under null2, posterior
	// weighted; degenerate residues marginalise over their expansion.
	raw := 0.0
	for i, w := range po.InModel {
		if w <= 0 {
			continue
		}
		exp := abc.Expand(dsq[i])
		if len(exp) == 0 {
			continue
		}
		var n2, n1 float64
		for _, r := range exp {
			n2 += bg[r] * null2[r]
			n1 += bg[r] * bg[r]
		}
		raw += w * math.Log(n2/n1)
	}

	// Fold with the omega prior: ln((1-w) + w*exp(raw)). Noise-level
	// raw corrections vanish; large ones pass through minus ln(1/w).
	corr := logSum(math.Log(1-null2Omega), math.Log(null2Omega)+raw)
	if corr < 0 || math.IsNaN(corr) {
		return 0
	}
	return corr
}
