// Package refimpl holds the full-precision (float64) generic dynamic
// programming implementations of the HMMER3 scoring algorithms: MSV,
// Viterbi, Forward and Backward. They are deliberately simple — row
// matrices, no vectorisation — and serve as the ground truth every
// optimised engine (striped CPU filters, GPU kernels) is validated
// against.
package refimpl

import (
	"math"

	"hmmer3gpu/internal/profile"
)

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func max4(a, b, c, d float64) float64 {
	return max2(max2(a, b), max2(c, d))
}

// logSum returns ln(exp(a)+exp(b)) stably.
func logSum(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// MSV computes the full-precision Multiple Segment Viterbi score (nats)
// of dsq against the profile. The profile must have SetLength applied
// for the target's length.
func MSV(p *profile.Profile, dsq []byte) float64 {
	m := p.M
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for k := range prev {
		prev[k] = profile.NegInf
	}
	xN := 0.0
	xB := p.TMove
	xJ, xC := profile.NegInf, profile.NegInf

	for i := 0; i < len(dsq); i++ {
		msc := p.MSC[dsq[i]]
		xE := profile.NegInf
		cur[0] = profile.NegInf
		for k := 1; k <= m; k++ {
			sc := max2(prev[k-1], xB+p.TBM) + msc[k]
			cur[k] = sc
			xE = max2(xE, sc)
		}
		xJ = max2(xJ+p.TLoop, xE+p.TEJ)
		xC = max2(xC+p.TLoop, xE+p.TEC)
		xN += p.TLoop
		xB = max2(xN, xJ) + p.TMove
		prev, cur = cur, prev
	}
	return xC + p.TMove
}

// Viterbi computes the full-precision P7Viterbi score (nats) of dsq
// against the profile (multihit local mode).
func Viterbi(p *profile.Profile, dsq []byte) float64 {
	m := p.M
	type row struct{ mx, ix, dx []float64 }
	newRow := func() row {
		r := row{
			mx: make([]float64, m+1),
			ix: make([]float64, m+1),
			dx: make([]float64, m+1),
		}
		for k := 0; k <= m; k++ {
			r.mx[k], r.ix[k], r.dx[k] = profile.NegInf, profile.NegInf, profile.NegInf
		}
		return r
	}
	prev, cur := newRow(), newRow()
	xN := 0.0
	xB := p.TMove
	xJ, xC := profile.NegInf, profile.NegInf

	for i := 0; i < len(dsq); i++ {
		msc := p.MSC[dsq[i]]
		xE := profile.NegInf
		cur.mx[0], cur.ix[0], cur.dx[0] = profile.NegInf, profile.NegInf, profile.NegInf
		for k := 1; k <= m; k++ {
			mv := max4(
				prev.mx[k-1]+p.TMM[k-1],
				prev.ix[k-1]+p.TIM[k-1],
				prev.dx[k-1]+p.TDM[k-1],
				xB+p.TBM,
			) + msc[k]
			cur.mx[k] = mv
			// Insert state (emission score 0 in local mode).
			cur.ix[k] = max2(prev.mx[k]+p.TMI[k], prev.ix[k]+p.TII[k])
			// Delete state: within-row dependency.
			cur.dx[k] = max2(cur.mx[k-1]+p.TMD[k-1], cur.dx[k-1]+p.TDD[k-1])
			xE = max2(xE, mv)
		}
		xE = max2(xE, cur.dx[m]) // local exit from D_M
		xJ = max2(xJ+p.TLoop, xE+p.TEJ)
		xC = max2(xC+p.TLoop, xE+p.TEC)
		xN += p.TLoop
		xB = max2(xN, xJ) + p.TMove
		prev, cur = cur, prev
	}
	return xC + p.TMove
}

// Forward computes the full-precision Forward score (nats): the total
// log-likelihood ratio summed over all alignments, the scoring system
// HMMER 3.0 introduced over optimal-alignment Viterbi scores.
func Forward(p *profile.Profile, dsq []byte) float64 {
	m := p.M
	type row struct{ mx, ix, dx []float64 }
	newRow := func() row {
		r := row{
			mx: make([]float64, m+1),
			ix: make([]float64, m+1),
			dx: make([]float64, m+1),
		}
		for k := 0; k <= m; k++ {
			r.mx[k], r.ix[k], r.dx[k] = profile.NegInf, profile.NegInf, profile.NegInf
		}
		return r
	}
	prev, cur := newRow(), newRow()
	xN := 0.0
	xB := p.TMove
	xJ, xC := profile.NegInf, profile.NegInf

	for i := 0; i < len(dsq); i++ {
		msc := p.MSC[dsq[i]]
		xE := profile.NegInf
		cur.mx[0], cur.ix[0], cur.dx[0] = profile.NegInf, profile.NegInf, profile.NegInf
		for k := 1; k <= m; k++ {
			mv := logSum(
				logSum(prev.mx[k-1]+p.TMM[k-1], prev.ix[k-1]+p.TIM[k-1]),
				logSum(prev.dx[k-1]+p.TDM[k-1], xB+p.TBM),
			) + msc[k]
			cur.mx[k] = mv
			cur.ix[k] = logSum(prev.mx[k]+p.TMI[k], prev.ix[k]+p.TII[k])
			cur.dx[k] = logSum(cur.mx[k-1]+p.TMD[k-1], cur.dx[k-1]+p.TDD[k-1])
			xE = logSum(xE, mv)
		}
		xE = logSum(xE, cur.dx[m])
		xJ = logSum(xJ+p.TLoop, xE+p.TEJ)
		xC = logSum(xC+p.TLoop, xE+p.TEC)
		xN += p.TLoop
		xB = logSum(xN, xJ) + p.TMove
		prev, cur = cur, prev
	}
	return xC + p.TMove
}

// Backward computes the full-precision Backward score (nats). For a
// correct implementation Backward(dsq) == Forward(dsq) up to floating
// point error; the pair is the basis of posterior decoding in the
// Forward-Backward stage of the pipeline.
func Backward(p *profile.Profile, dsq []byte) float64 {
	m := p.M
	L := len(dsq)
	type row struct{ mx, ix, dx []float64 }
	newRow := func() row {
		r := row{
			mx: make([]float64, m+2),
			ix: make([]float64, m+2),
			dx: make([]float64, m+2),
		}
		for k := range r.mx {
			r.mx[k], r.ix[k], r.dx[k] = profile.NegInf, profile.NegInf, profile.NegInf
		}
		return r
	}
	next, cur := newRow(), newRow()

	// Special states at position i, computed backwards. At i = L:
	xC := p.TMove // C -> T
	xJ := profile.NegInf
	xB := profile.NegInf
	xE := logSum(p.TEC+xC, p.TEJ+xJ)
	xN := logSum(p.TMove+xB, profile.NegInf)

	// Row L: no residues remain, so match states can only exit locally
	// through E, possibly after deleting through to D_M.
	for k := m; k >= 1; k-- {
		if k == m {
			cur.dx[k] = xE // D_M -> E
		} else {
			cur.dx[k] = p.TDD[k] + cur.dx[k+1]
		}
		cur.mx[k] = logSum(xE, p.TMD[k]+cur.dx[k+1])
		cur.ix[k] = profile.NegInf
	}

	for i := L - 1; i >= 0; i-- {
		// Entering M_k at DP row i+1 emits dsq[i] (0-based), so every
		// transition from row i into a next-row match state carries the
		// msc term over dsq[i].
		msc := p.MSC[dsq[i]]
		next, cur = cur, next

		// Specials at position i (order matters: B before J/N, E last).
		xB = profile.NegInf
		for k := 1; k <= m; k++ {
			xB = logSum(xB, p.TBM+msc[k]+next.mx[k])
		}
		xJ = logSum(p.TMove+xB, p.TLoop+xJ)
		// C can only reach T once every residue is emitted, so before
		// time L its only outgoing option is the emitting self-loop.
		xC = p.TLoop + xC
		xE = logSum(p.TEC+xC, p.TEJ+xJ)
		xN = logSum(p.TMove+xB, p.TLoop+xN)

		for k := m; k >= 1; k-- {
			if k == m {
				// M_M and D_M can only exit through E.
				cur.dx[k] = xE
				cur.mx[k] = xE
				cur.ix[k] = profile.NegInf
				continue
			}
			cur.dx[k] = logSum(
				p.TDM[k]+msc[k+1]+next.mx[k+1],
				p.TDD[k]+cur.dx[k+1],
			)
			cur.ix[k] = logSum(
				p.TIM[k]+msc[k+1]+next.mx[k+1],
				p.TII[k]+next.ix[k],
			)
			cur.mx[k] = logSum(
				logSum(
					p.TMM[k]+msc[k+1]+next.mx[k+1],
					p.TMI[k]+next.ix[k],
				),
				logSum(p.TMD[k]+cur.dx[k+1], xE),
			)
		}
	}
	return xN
}
