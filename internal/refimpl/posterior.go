package refimpl

import (
	"fmt"
	"math"

	"hmmer3gpu/internal/profile"
)

// Posterior decoding: per-residue probability of being emitted by the
// core model (any match or insert state), from full Forward and
// Backward matrices — the basis of the Forward-Backward stage's domain
// identification. Memory is O(L*M); intended for surviving hits.

// Posterior holds the decoding result.
type Posterior struct {
	// Score is the Forward score (nats).
	Score float64
	// InModel[i] is P(residue i+1 emitted by a match/insert state).
	InModel []float64
	// MatchUsage[k] is the expected number of residues emitted by
	// match state k; InsertUsage the total over all insert states.
	// Together they define the null2 composition (see null2.go).
	MatchUsage  []float64
	InsertUsage float64
}

// Envelope is a maximal run of residues with high core occupancy: a
// domain's approximate extent on the target.
type Envelope struct {
	// From and To are 1-based inclusive target coordinates.
	From, To int
}

// PosteriorDecode runs full-matrix Forward and Backward and decodes
// the per-residue core occupancy.
func PosteriorDecode(p *profile.Profile, dsq []byte) (*Posterior, error) {
	m, L := p.M, len(dsq)
	if L == 0 {
		return nil, fmt.Errorf("refimpl: cannot decode an empty sequence")
	}
	idx := func(i, k int) int { return i*(m+1) + k }

	// Forward matrices.
	fM := make([]float64, (L+1)*(m+1))
	fI := make([]float64, (L+1)*(m+1))
	fD := make([]float64, (L+1)*(m+1))
	for i := range fM {
		fM[i], fI[i], fD[i] = profile.NegInf, profile.NegInf, profile.NegInf
	}
	fB := make([]float64, L+1)
	fJ := make([]float64, L+1)
	fC := make([]float64, L+1)
	fN := make([]float64, L+1)
	fN[0] = 0
	fB[0] = p.TMove
	for i := 1; i <= L; i++ {
		fJ[i], fC[i] = profile.NegInf, profile.NegInf
	}
	fJ[0], fC[0] = profile.NegInf, profile.NegInf

	for i := 1; i <= L; i++ {
		msc := p.MSC[dsq[i-1]]
		xE := profile.NegInf
		for k := 1; k <= m; k++ {
			mv := logSum(
				logSum(fM[idx(i-1, k-1)]+p.TMM[k-1], fI[idx(i-1, k-1)]+p.TIM[k-1]),
				logSum(fD[idx(i-1, k-1)]+p.TDM[k-1], fB[i-1]+p.TBM),
			) + msc[k]
			fM[idx(i, k)] = mv
			fI[idx(i, k)] = logSum(fM[idx(i-1, k)]+p.TMI[k], fI[idx(i-1, k)]+p.TII[k])
			fD[idx(i, k)] = logSum(fM[idx(i, k-1)]+p.TMD[k-1], fD[idx(i, k-1)]+p.TDD[k-1])
			xE = logSum(xE, mv)
		}
		xE = logSum(xE, fD[idx(i, m)])
		fJ[i] = logSum(fJ[i-1]+p.TLoop, xE+p.TEJ)
		fC[i] = logSum(fC[i-1]+p.TLoop, xE+p.TEC)
		fN[i] = fN[i-1] + p.TLoop
		fB[i] = logSum(fN[i], fJ[i]) + p.TMove
	}
	total := fC[L] + p.TMove

	// Backward matrices (indexing as in Backward; bM[i][k] is the
	// probability of finishing from M_k after i residues are consumed).
	bM := make([]float64, (L+1)*(m+1))
	bI := make([]float64, (L+1)*(m+1))
	bD := make([]float64, (L+1)*(m+1))
	for i := range bM {
		bM[i], bI[i], bD[i] = profile.NegInf, profile.NegInf, profile.NegInf
	}
	bC := profile.NegInf
	bJ := profile.NegInf

	// Row L.
	bC = p.TMove
	xE := logSum(p.TEC+bC, p.TEJ+bJ)
	for k := m; k >= 1; k-- {
		if k == m {
			bD[idx(L, k)] = xE
			bM[idx(L, k)] = xE // M_M exits only through E
			continue
		}
		bD[idx(L, k)] = p.TDD[k] + bD[idx(L, k+1)]
		bM[idx(L, k)] = logSum(xE, p.TMD[k]+bD[idx(L, k+1)])
	}

	for i := L - 1; i >= 0; i-- {
		msc := p.MSC[dsq[i]]
		xB := profile.NegInf
		for k := 1; k <= m; k++ {
			xB = logSum(xB, p.TBM+msc[k]+bM[idx(i+1, k)])
		}
		bJ = logSum(p.TMove+xB, p.TLoop+bJ)
		bC = p.TLoop + bC
		xE = logSum(p.TEC+bC, p.TEJ+bJ)

		for k := m; k >= 1; k-- {
			if k == m {
				bD[idx(i, k)] = xE
				bM[idx(i, k)] = xE
				continue
			}
			bD[idx(i, k)] = logSum(
				p.TDM[k]+msc[k+1]+bM[idx(i+1, k+1)],
				p.TDD[k]+bD[idx(i, k+1)],
			)
			bI[idx(i, k)] = logSum(
				p.TIM[k]+msc[k+1]+bM[idx(i+1, k+1)],
				p.TII[k]+bI[idx(i+1, k)],
			)
			bM[idx(i, k)] = logSum(
				logSum(
					p.TMM[k]+msc[k+1]+bM[idx(i+1, k+1)],
					p.TMI[k]+bI[idx(i+1, k)],
				),
				logSum(p.TMD[k]+bD[idx(i, k+1)], xE),
			)
		}
	}

	po := &Posterior{
		Score:      total,
		InModel:    make([]float64, L),
		MatchUsage: make([]float64, m+1),
	}
	for i := 1; i <= L; i++ {
		var acc float64
		for k := 1; k <= m; k++ {
			pm := math.Exp(fM[idx(i, k)] + bM[idx(i, k)] - total)
			pi := math.Exp(fI[idx(i, k)] + bI[idx(i, k)] - total)
			po.MatchUsage[k] += pm
			po.InsertUsage += pi
			acc += pm + pi
		}
		if acc > 1 {
			// Tolerate floating point excess just above 1.
			if acc > 1+1e-6 {
				return nil, fmt.Errorf("refimpl: posterior %g > 1 at residue %d", acc, i)
			}
			acc = 1
		}
		po.InModel[i-1] = acc
	}
	return po, nil
}

// Envelopes returns the maximal runs of residues whose core occupancy
// is at least threshold.
func (po *Posterior) Envelopes(threshold float64) []Envelope {
	var out []Envelope
	start := -1
	for i, v := range po.InModel {
		if v >= threshold {
			if start < 0 {
				start = i + 1
			}
		} else if start > 0 {
			out = append(out, Envelope{From: start, To: i})
			start = -1
		}
	}
	if start > 0 {
		out = append(out, Envelope{From: start, To: len(po.InModel)})
	}
	return out
}
