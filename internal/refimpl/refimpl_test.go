package refimpl

import (
	"math"
	"math/rand"
	"testing"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/profile"
)

var abc = alphabet.New()

func randomSeq(rng *rand.Rand, n int) []byte {
	bg := abc.Backgrounds()
	out := make([]byte, n)
	for i := range out {
		u, acc := rng.Float64(), 0.0
		out[i] = byte(len(bg) - 1)
		for r, f := range bg {
			acc += f
			if u < acc {
				out[i] = byte(r)
				break
			}
		}
	}
	return out
}

func testProfile(t testing.TB, m int, seed int64) *profile.Profile {
	t.Helper()
	h, err := hmm.Random("ref", m, abc, hmm.DefaultBuildParams(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return profile.Config(h)
}

func TestScoresFiniteOnRandomSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := testProfile(t, 40, 1)
	for _, L := range []int{1, 5, 40, 200} {
		dsq := randomSeq(rng, L)
		p.SetLength(L)
		for name, f := range map[string]func(*profile.Profile, []byte) float64{
			"MSV": MSV, "Viterbi": Viterbi, "Forward": Forward, "Backward": Backward,
		} {
			sc := f(p, dsq)
			if math.IsInf(sc, 0) || math.IsNaN(sc) {
				t.Errorf("%s score for L=%d is %v", name, L, sc)
			}
		}
	}
}

func TestViterbiNeverExceedsForward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		m := 5 + rng.Intn(60)
		p := testProfile(t, m, int64(trial))
		L := 10 + rng.Intn(300)
		dsq := randomSeq(rng, L)
		p.SetLength(L)
		v, f := Viterbi(p, dsq), Forward(p, dsq)
		if v > f+1e-9 {
			t.Errorf("trial %d (M=%d, L=%d): Viterbi %g > Forward %g", trial, m, L, v, f)
		}
	}
}

func TestForwardEqualsBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		m := 3 + rng.Intn(50)
		L := 3 + rng.Intn(250)
		p := testProfile(t, m, int64(100+trial))
		dsq := randomSeq(rng, L)
		p.SetLength(L)
		fwd, bwd := Forward(p, dsq), Backward(p, dsq)
		if math.Abs(fwd-bwd) > 1e-6*(1+math.Abs(fwd)) {
			t.Errorf("trial %d (M=%d, L=%d): Forward %.9f != Backward %.9f", trial, m, L, fwd, bwd)
		}
	}
}

func TestMSVEqualsViterbiOnUngappedModel(t *testing.T) {
	// With gap opening impossible, the Plan7 Viterbi model degenerates
	// to the MSV model up to the M->M transition costs, which become
	// ln(1) = 0 — so the two scores must coincide exactly.
	rng := rand.New(rand.NewSource(4))
	cons := randomSeq(rng, 30)
	h, err := hmm.FromConsensus("ungapped", cons, abc,
		hmm.BuildParams{MatchIdentity: 0.7, GapOpen: 0, GapExtend: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	for trial := 0; trial < 10; trial++ {
		L := 20 + rng.Intn(200)
		dsq := randomSeq(rng, L)
		p.SetLength(L)
		msv, vit := MSV(p, dsq), Viterbi(p, dsq)
		if math.Abs(msv-vit) > 1e-9 {
			t.Errorf("trial %d: MSV %g != Viterbi %g on ungapped model", trial, msv, vit)
		}
	}
}

func TestHomologScoresAboveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h, err := hmm.Random("homolog", 80, abc, hmm.DefaultBuildParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)

	homolog := h.SampleSequence(rng)
	random := randomSeq(rng, len(homolog))
	p.SetLength(len(homolog))
	hm, hv, hf := MSV(p, homolog), Viterbi(p, homolog), Forward(p, homolog)
	rm, rv, rf := MSV(p, random), Viterbi(p, random), Forward(p, random)
	if hm < rm+5 || hv < rv+5 || hf < rf+5 {
		t.Errorf("homolog should dominate: MSV %g vs %g, Vit %g vs %g, Fwd %g vs %g",
			hm, rm, hv, rv, hf, rf)
	}
}

func TestScoresDependOnLengthModel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := testProfile(t, 25, 6)
	dsq := randomSeq(rng, 100)
	p.SetLength(100)
	a := Viterbi(p, dsq)
	p.SetLength(5000)
	b := Viterbi(p, dsq)
	if a == b {
		t.Error("Viterbi score should change with the length model")
	}
}

func TestSingleResidueSequence(t *testing.T) {
	p := testProfile(t, 10, 7)
	p.SetLength(1)
	dsq := []byte{3}
	v, f := Viterbi(p, dsq), Forward(p, dsq)
	if math.IsNaN(v) || math.IsNaN(f) || v > f+1e-9 {
		t.Errorf("L=1: Viterbi %g Forward %g", v, f)
	}
	b := Backward(p, dsq)
	if math.Abs(f-b) > 1e-9*(1+math.Abs(f)) {
		t.Errorf("L=1: Forward %g != Backward %g", f, b)
	}
}

func TestModelLengthOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := testProfile(t, 1, 8)
	dsq := randomSeq(rng, 50)
	p.SetLength(50)
	v, f, b := Viterbi(p, dsq), Forward(p, dsq), Backward(p, dsq)
	if math.IsNaN(v) || math.IsNaN(f) {
		t.Fatalf("M=1: Viterbi %g Forward %g", v, f)
	}
	if v > f+1e-9 {
		t.Errorf("M=1: Viterbi %g > Forward %g", v, f)
	}
	if math.Abs(f-b) > 1e-6*(1+math.Abs(f)) {
		t.Errorf("M=1: Forward %g != Backward %g", f, b)
	}
}

func TestLogSum(t *testing.T) {
	cases := []struct{ a, b float64 }{
		{0, 0}, {1, 2}, {-700, -700}, {100, -100},
		{profile.NegInf, 3}, {3, profile.NegInf}, {profile.NegInf, profile.NegInf},
	}
	for _, c := range cases {
		got := logSum(c.a, c.b)
		var want float64
		if math.IsInf(c.a, -1) && math.IsInf(c.b, -1) {
			want = profile.NegInf
		} else {
			want = math.Log(math.Exp(c.a) + math.Exp(c.b))
			if math.IsInf(want, 1) { // direct form overflowed, trust identity
				want = math.Max(c.a, c.b) + math.Log1p(math.Exp(-math.Abs(c.a-c.b)))
			}
		}
		if math.IsInf(want, -1) {
			if !math.IsInf(got, -1) {
				t.Errorf("logSum(%g,%g) = %g, want -inf", c.a, c.b, got)
			}
			continue
		}
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Errorf("logSum(%g,%g) = %g, want %g", c.a, c.b, got, want)
		}
	}
}
