package refimpl

import (
	"math/rand"
	"testing"
)

func BenchmarkGenericViterbi(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := testProfile(b, 100, 1)
	p.SetLength(200)
	dsq := randomSeq(rng, 200)
	b.SetBytes(int64(100 * 200))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Viterbi(p, dsq)
	}
}

func BenchmarkGenericForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p := testProfile(b, 100, 2)
	p.SetLength(200)
	dsq := randomSeq(rng, 200)
	b.SetBytes(int64(100 * 200))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(p, dsq)
	}
}

func BenchmarkViterbiTrace(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := testProfile(b, 100, 3)
	p.SetLength(200)
	dsq := randomSeq(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ViterbiTrace(p, dsq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPosteriorDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	p := testProfile(b, 100, 4)
	p.SetLength(200)
	dsq := randomSeq(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PosteriorDecode(p, dsq); err != nil {
			b.Fatal(err)
		}
	}
}
