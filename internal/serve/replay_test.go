package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/simt"
)

// rawTestServer is newTestServer without MarkReady, for tests that
// exercise the pre-ready window.
func rawTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	f := fixture(t)
	rdb, err := pipeline.LoadResidentDB("test", bytes.NewReader(f.fasta), abc, f.budget)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		DBs:           map[string]*pipeline.ResidentDB{"test": rdb},
		TargetLen:     fixtureTargetLen,
		BatchResidues: f.budget,
		Mode:          simt.ModeFast,
		Devices:       2,
		Logf:          t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// /readyz answers 503 (status "starting") from construction until
// MarkReady; /healthz stays 200 throughout (the process is alive).
func TestReadyzGatedUntilMarkReady(t *testing.T) {
	s, ts := rawTestServer(t, nil)
	var p healthPayload
	getJSON(t, ts, "/readyz", http.StatusServiceUnavailable, &p)
	if p.Ready || p.Status != "starting" {
		t.Errorf("pre-ready readyz: %+v", p)
	}
	getJSON(t, ts, "/healthz", http.StatusOK, &p)

	s.MarkReady()
	getJSON(t, ts, "/readyz", http.StatusOK, &p)
	if !p.Ready || p.Status != "ok" {
		t.Errorf("post-ready readyz: %+v", p)
	}
}

// The restart contract: queries journaled at drain are re-admitted by
// a fresh server through its normal /search path, and the replayed
// responses are byte-identical to what a fresh query returns.
func TestRestartReplaysDrainJournalByteIdentical(t *testing.T) {
	f := fixture(t)
	journal := filepath.Join(t.TempDir(), "drain.jsonl")
	outDir := filepath.Join(t.TempDir(), "replayed")

	// First life: two queries queued behind a held slot get journaled
	// at drain.
	s1, ts1 := newTestServer(t, func(cfg *Config) {
		cfg.MaxConcurrent = 1
		cfg.MaxQueue = 4
		cfg.DrainJournal = journal
	})
	if err := s1.adm.acquire(context.Background(), "inflight"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postQuery(t, ts1, "db=test&cache=off&tenant=queued", f.modelText)
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("queued query at drain: status %d, want 503", resp.StatusCode)
			}
		}()
	}
	waitDepth(t, s1.adm, 2)
	done := make(chan DrainSummary, 1)
	go func() { done <- s1.Drain() }()
	wg.Wait()
	s1.adm.release()
	var sum DrainSummary
	select {
	case sum = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return")
	}
	if sum.Journaled != 2 {
		t.Fatalf("journaled %d, want 2", sum.Journaled)
	}

	// Every journal line must carry a replayable model payload.
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec drainRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Model == "" {
			t.Fatal("journal record without model payload")
		}
	}

	// Second life: a fresh server replays the journal before readiness.
	s2, ts2 := rawTestServer(t, nil)
	rsum, err := s2.ReplayDrainJournal(journal, outDir)
	if err != nil {
		t.Fatalf("ReplayDrainJournal: %v", err)
	}
	if rsum.Replayed != 2 || rsum.Failed != 0 {
		t.Fatalf("replay summary %+v, want 2 replayed, 0 failed", rsum)
	}
	if got := counter(t, s2, "hmmer_serve_replayed_total"); got != 2 {
		t.Errorf("hmmer_serve_replayed_total = %v, want 2", got)
	}
	s2.MarkReady()

	// Replayed responses are byte-identical to the one-shot reference
	// and to a fresh query against the restarted server.
	_, fresh := postQuery(t, ts2, "db=test", f.modelText)
	for i := 0; i < 2; i++ {
		b, err := os.ReadFile(filepath.Join(outDir, "replay-"+string(rune('0'+i))+".tbl"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, f.refTbl) {
			t.Errorf("replayed response %d differs from one-shot reference", i)
		}
		if !bytes.Equal(b, fresh) {
			t.Errorf("replayed response %d differs from fresh query", i)
		}
	}

	// A missing journal is a clean first-boot no-op.
	none, err := s2.ReplayDrainJournal(filepath.Join(t.TempDir(), "absent.jsonl"), "")
	if err != nil || none.Replayed != 0 || none.Failed != 0 {
		t.Errorf("missing journal: %+v, %v", none, err)
	}
}

// A record without a model payload fails that line but not the replay.
func TestReplayToleratesBadRecords(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "drain.jsonl")
	lines := `{"tenant":"a","db":"test","query":"old","fingerprint":"ff","reason":"queued-at-drain"}
not json at all
`
	if err := os.WriteFile(journal, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _ := newTestServer(t, nil)
	sum, err := s.ReplayDrainJournal(journal, "")
	if err != nil {
		t.Fatalf("ReplayDrainJournal: %v", err)
	}
	if sum.Replayed != 0 || sum.Failed != 2 {
		t.Errorf("summary %+v, want 0 replayed, 2 failed", sum)
	}
	if got := counter(t, s, "hmmer_serve_replay_failed_total"); got != 2 {
		t.Errorf("hmmer_serve_replay_failed_total = %v, want 2", got)
	}
}

// The thundering herd: N concurrent identical cache-misses coalesce
// onto one execution — one profile build, one admission, N identical
// responses.
func TestConcurrentIdenticalMissesCoalesce(t *testing.T) {
	f := fixture(t)
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.MaxConcurrent = 1
		cfg.MaxQueue = 4
	})

	// Hold the only slot so the leader parks in the admission queue
	// while the followers arrive and coalesce.
	if err := s.adm.acquire(context.Background(), "hog"); err != nil {
		t.Fatal(err)
	}
	const n = 4
	type reply struct {
		cache string
		code  int
		body  []byte
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, body := postQuery(t, ts, "db=test", f.modelText)
			replies <- reply{resp.Header.Get("X-Cache"), resp.StatusCode, body}
		}()
	}

	// Exactly one query queues (the leader); the rest coalesce.
	waitDepth(t, s.adm, 1)
	deadline := time.Now().Add(10 * time.Second)
	for counter(t, s, "hmmer_serve_search_coalesced_total") < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %v, want %d", counter(t, s, "hmmer_serve_search_coalesced_total"), n-1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.adm.release()

	var miss, coalesced int
	for i := 0; i < n; i++ {
		r := <-replies
		if r.code != http.StatusOK {
			t.Fatalf("status %d", r.code)
		}
		if !bytes.Equal(r.body, f.refTbl) {
			t.Error("coalesced response differs from reference")
		}
		switch r.cache {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("unexpected X-Cache %q", r.cache)
		}
	}
	if miss != 1 || coalesced != n-1 {
		t.Errorf("miss=%d coalesced=%d, want 1 and %d", miss, coalesced, n-1)
	}
	if builds := counter(t, s, "hmmer_serve_profile_builds_total"); builds != 1 {
		t.Errorf("profile builds = %v, want 1 (the herd built once)", builds)
	}
	if q := counter(t, s, "hmmer_serve_queries_total"); q != n {
		t.Errorf("queries_total = %v, want %d", q, n)
	}
}
