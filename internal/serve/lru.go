package serve

import "container/list"

// lru is a small entry-count-bounded LRU map. It is not internally
// locked; callers guard it with their own mutex (the server holds one
// lock across the lookup-then-insert sequences anyway).
type lru[V any] struct {
	cap   int
	order *list.List // front = most recently used; values are *lruEntry[V]
	items map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[V]{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the value and marks it most recently used.
func (l *lru[V]) get(key string) (V, bool) {
	if el, ok := l.items[key]; ok {
		l.order.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// peek returns the value without touching recency.
func (l *lru[V]) peek(key string) (V, bool) {
	if el, ok := l.items[key]; ok {
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or refreshes key, evicting the least recently used
// entry when over capacity.
func (l *lru[V]) put(key string, val V) {
	if el, ok := l.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		l.order.MoveToFront(el)
		return
	}
	l.items[key] = l.order.PushFront(&lruEntry[V]{key: key, val: val})
	if l.order.Len() > l.cap {
		el := l.order.Back()
		l.order.Remove(el)
		delete(l.items, el.Value.(*lruEntry[V]).key)
	}
}

func (l *lru[V]) len() int { return l.order.Len() }
