package serve

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
)

// ReplaySummary reports what a drain-journal replay did.
type ReplaySummary struct {
	// Replayed is how many journaled queries were re-admitted and
	// answered 200.
	Replayed int
	// Failed is how many could not be replayed (decode error or
	// non-200 response); each is logged.
	Failed int
}

// drainRecord is one journalRefusal line.
type drainRecord struct {
	Tenant      string `json:"tenant"`
	DB          string `json:"db"`
	Query       string `json:"query"`
	Fingerprint string `json:"fingerprint"`
	Model       string `json:"model"`
	Reason      string `json:"reason"`
}

// ReplayDrainJournal re-admits every query journaled by a previous
// process's drain, before this one advertises readiness: each line's
// model upload is re-POSTed through the server's own /search handler —
// the normal admission, cache, and execution path — so the replayed
// response is byte-identical to what the dead process would have
// returned. Call it after New and before MarkReady; a missing journal
// is a clean no-op (first boot). When outDir is non-empty, each 200
// response body is written to outDir/replay-<n>.tbl for auditing
// (byte-diff against a fresh query in CI).
//
// Replay failures don't abort the remaining lines: one malformed
// record must not turn a restart into a crash loop. They are counted,
// logged, and exported as hmmer_serve_replay_failed_total.
func (s *Server) ReplayDrainJournal(path, outDir string) (ReplaySummary, error) {
	var sum ReplaySummary
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return sum, nil
		}
		return sum, fmt.Errorf("serve: drain journal: %w", err)
	}
	defer f.Close()
	// Materialise both counters at zero so a clean replay still
	// exports hmmer_serve_replay_failed_total 0 (CI pins it).
	s.reg.AddInt("hmmer_serve_replayed_total", 0)
	s.reg.AddInt("hmmer_serve_replay_failed_total", 0)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return sum, fmt.Errorf("serve: replay output: %w", err)
		}
	}

	sc := bufio.NewScanner(f)
	// Journal lines carry whole model uploads in base64; size the
	// scanner for them rather than the 64 KiB default.
	sc.Buffer(make([]byte, 64*1024), int(2*s.cfg.MaxModelBytes)+4096)
	line := 0
	fail := func(format string, args ...any) {
		sum.Failed++
		s.reg.AddInt("hmmer_serve_replay_failed_total", 1)
		s.cfg.Logf("replay line %d: %s", line, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec drainRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			fail("bad record: %v", err)
			continue
		}
		model, err := base64.StdEncoding.DecodeString(rec.Model)
		if err != nil || len(model) == 0 {
			fail("query %q has no replayable model payload (journal from an older version?)", rec.Query)
			continue
		}
		status, body, err := s.selfPost(rec, model)
		if err != nil {
			fail("query %q: %v", rec.Query, err)
			continue
		}
		if status != http.StatusOK {
			fail("query %q re-admitted with status %d: %s", rec.Query, status, bytes.TrimSpace(body))
			continue
		}
		sum.Replayed++
		s.reg.AddInt("hmmer_serve_replayed_total", 1)
		if outDir != "" {
			out := filepath.Join(outDir, fmt.Sprintf("replay-%d.tbl", line-1))
			if err := os.WriteFile(out, body, 0o644); err != nil {
				return sum, fmt.Errorf("serve: replay output: %w", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return sum, fmt.Errorf("serve: drain journal: %w", err)
	}
	s.cfg.Logf("drain-journal replay: %d replayed, %d failed", sum.Replayed, sum.Failed)
	return sum, nil
}

// selfPost drives one journaled query through the server's own mux —
// the identical code path an external client hits.
func (s *Server) selfPost(rec drainRecord, model []byte) (int, []byte, error) {
	u := "/search?db=" + url.QueryEscape(rec.DB) + "&tenant=" + url.QueryEscape(rec.Tenant)
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(model))
	if err != nil {
		return 0, nil, err
	}
	rw := &memResponse{header: make(http.Header), code: http.StatusOK}
	s.mux.ServeHTTP(rw, req)
	return rw.code, rw.body.Bytes(), nil
}

// memResponse is the minimal in-memory http.ResponseWriter the replay
// path needs.
type memResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (m *memResponse) Header() http.Header         { return m.header }
func (m *memResponse) WriteHeader(code int)        { m.code = code }
func (m *memResponse) Write(p []byte) (int, error) { return m.body.Write(p) }
