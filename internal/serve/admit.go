package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"
)

// ErrShed is returned by the admission controller when a query must be
// shed: the token bucket is empty or the wait queue is full. The
// server answers 429 with a Retry-After hint instead of queueing
// unboundedly — shedding early is what keeps the p99 of *admitted*
// queries bounded under overload.
var ErrShed = errors.New("serve: overloaded, query shed")

// ErrDraining is returned once the server has begun its graceful
// drain: no new work is admitted and queued waiters are failed (the
// handler journals them so nothing is silently lost).
var ErrDraining = errors.New("serve: draining, not admitting queries")

// tokenBucket rate-limits admissions: capacity burst, refilled at rate
// tokens/second. rate <= 0 disables the limiter. now is injectable for
// deterministic tests.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate, burst float64, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// take consumes one token. When the bucket is empty it reports the
// time until one token will have refilled — the 429 Retry-After hint.
func (tb *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	if tb == nil || tb.rate <= 0 {
		return true, 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	t := tb.now()
	tb.tokens = math.Min(tb.burst, tb.tokens+t.Sub(tb.last).Seconds()*tb.rate)
	tb.last = t
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	return false, time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
}

// admitter bounds the number of queries running concurrently and, when
// all slots are busy, queues waiters in per-tenant FIFOs served round-
// robin — one tenant flooding the queue cannot starve the others,
// because each release hands the freed slot to the *next tenant's*
// oldest waiter, not the globally oldest. The queue itself is bounded:
// a waiter beyond maxQueue is shed immediately (bounded memory under
// any offered load).
type admitter struct {
	mu       sync.Mutex
	free     int
	inflight int
	queued   int
	maxQueue int
	tenants  map[string][]*waiter
	ring     []string // tenants with waiters, in round-robin order
	next     int
	draining bool
}

type waiter struct {
	tenant  string
	ch      chan error // buffered(1); receives nil on grant
	granted bool       // guarded by admitter.mu
	removed bool       // guarded by admitter.mu
}

func newAdmitter(slots, maxQueue int) *admitter {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admitter{free: slots, maxQueue: maxQueue, tenants: make(map[string][]*waiter)}
}

// acquire claims an execution slot for tenant, queueing (fairly,
// bounded) when none is free. It returns ErrShed when the queue is
// full, ErrDraining once the drain has begun, or ctx's error if the
// caller's deadline expires while queued.
func (a *admitter) acquire(ctx context.Context, tenant string) error {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return ErrDraining
	}
	if a.free > 0 {
		a.free--
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		return ErrShed
	}
	w := &waiter{tenant: tenant, ch: make(chan error, 1)}
	a.tenants[tenant] = append(a.tenants[tenant], w)
	if len(a.tenants[tenant]) == 1 {
		a.ring = append(a.ring, tenant)
	}
	a.queued++
	a.mu.Unlock()

	select {
	case err := <-w.ch:
		return err
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced our cancellation: the slot is ours, so give
			// it back (which hands it to the next waiter).
			a.mu.Unlock()
			if err := <-w.ch; err == nil {
				a.release()
			}
			return ctx.Err()
		}
		a.remove(w)
		a.mu.Unlock()
		return ctx.Err()
	}
}

// remove unlinks a cancelled waiter. Caller holds a.mu.
func (a *admitter) remove(w *waiter) {
	if w.removed || w.granted {
		return
	}
	w.removed = true
	q := a.tenants[w.tenant]
	for i, x := range q {
		if x == w {
			a.tenants[w.tenant] = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	if len(a.tenants[w.tenant]) == 0 {
		delete(a.tenants, w.tenant)
		a.dropFromRing(w.tenant)
	}
	a.queued--
}

func (a *admitter) dropFromRing(tenant string) {
	for i, t := range a.ring {
		if t == tenant {
			a.ring = append(a.ring[:i:i], a.ring[i+1:]...)
			if a.next > i {
				a.next--
			}
			if len(a.ring) > 0 {
				a.next %= len(a.ring)
			} else {
				a.next = 0
			}
			return
		}
	}
}

// release returns a slot: the next tenant in round-robin order (if any
// has a waiter) receives it directly; otherwise the slot goes free.
func (a *admitter) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight--
	if len(a.ring) > 0 {
		tenant := a.ring[a.next%len(a.ring)]
		q := a.tenants[tenant]
		w := q[0]
		if len(q) == 1 {
			delete(a.tenants, tenant)
			a.dropFromRing(tenant)
		} else {
			a.tenants[tenant] = q[1:]
			a.next = (a.next + 1) % len(a.ring)
		}
		a.queued--
		w.granted = true
		a.inflight++
		w.ch <- nil
		return
	}
	a.free++
}

// startDrain stops admitting and fails every queued waiter with
// ErrDraining; their handlers journal the refusals. In-flight slots
// are untouched — those queries run to completion.
func (a *admitter) startDrain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.draining = true
	for _, q := range a.tenants {
		for _, w := range q {
			w.removed = true
			w.ch <- ErrDraining
		}
	}
	a.tenants = make(map[string][]*waiter)
	a.ring = nil
	a.next = 0
	a.queued = 0
}

// depth reports the queue depth and in-flight count for health
// endpoints and gauges.
func (a *admitter) depth() (queued, inflight int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued, a.inflight
}
