package serve

import (
	"context"
	"sync"

	"hmmer3gpu/internal/simt"
)

// devicePool owns the daemon's simulated devices and leases them to
// queries. Unlike the one-shot CLI — where a quarantined device just
// sits out the rest of the run — the pool remembers: a device whose
// lease ends quarantined collects a strike, and at strikes >= cordon
// threshold it is cordoned out of the pool for the life of the
// process. A clean lease resets the strikes, so devices with one
// transient bad run recover. With every device cordoned, leases come
// back empty and the caller degrades to the host CPU.
type devicePool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	devs    []*poolDevice
	strikes int // cordon after this many consecutive quarantined leases
}

type poolDevice struct {
	index    int
	dev      *simt.Device
	busy     bool
	strikes  int
	cordoned bool
}

func newDevicePool(devs []*simt.Device, cordonAfter int) *devicePool {
	if cordonAfter < 1 {
		cordonAfter = 2
	}
	p := &devicePool{strikes: cordonAfter}
	p.cond = sync.NewCond(&p.mu)
	for i, d := range devs {
		p.devs = append(p.devs, &poolDevice{index: i, dev: d})
	}
	return p
}

// lease claims up to n healthy devices, blocking while healthy devices
// exist but are all busy. It returns an empty lease — the degrade-to-
// CPU signal — when every device is cordoned, and ctx's error if the
// caller gives up while waiting.
func (p *devicePool) lease(ctx context.Context, n int) ([]*poolDevice, error) {
	if n < 1 {
		n = 1
	}
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()

	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var got []*poolDevice
		healthy := 0
		for _, d := range p.devs {
			if d.cordoned {
				continue
			}
			healthy++
			if !d.busy && len(got) < n {
				got = append(got, d)
			}
		}
		if healthy == 0 {
			return nil, nil
		}
		if len(got) > 0 {
			for _, d := range got {
				d.busy = true
			}
			return got, nil
		}
		p.cond.Wait()
	}
}

// release ends a lease. quarantined[i] reports whether lease[i]'s
// device ended the run quarantined (from the scheduler's fault
// report); nil means the run never reached the scheduler (strikes are
// left untouched).
func (p *devicePool) release(lease []*poolDevice, quarantined []bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, d := range lease {
		d.busy = false
		if quarantined != nil {
			if i < len(quarantined) && quarantined[i] {
				d.strikes++
				if d.strikes >= p.strikes {
					d.cordoned = true
				}
			} else {
				d.strikes = 0
			}
		}
	}
	p.cond.Broadcast()
}

// health reports pool state for /healthz, /readyz, and gauges.
func (p *devicePool) health() (healthy, cordoned, busy int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, d := range p.devs {
		if d.cordoned {
			cordoned++
			continue
		}
		healthy++
		if d.busy {
			busy++
		}
	}
	return
}

// cordonedIndexes lists cordoned device indexes (for health payloads).
func (p *devicePool) cordonedIndexes() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []int
	for _, d := range p.devs {
		if d.cordoned {
			out = append(out, d.index)
		}
	}
	return out
}
