package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestTokenBucketFakeClock(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	tb := newTokenBucket(2, 3, clock) // 2/s, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := tb.take(); !ok {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	ok, retry := tb.take()
	if ok {
		t.Fatal("take beyond burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retry hint %v, want (0, 500ms]-ish for rate 2/s", retry)
	}
	now = now.Add(time.Second) // refills 2 tokens
	for i := 0; i < 2; i++ {
		if ok, _ := tb.take(); !ok {
			t.Fatalf("take %d after refill refused", i)
		}
	}
	if ok, _ := tb.take(); ok {
		t.Fatal("third take after 1s refill admitted")
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	tb := newTokenBucket(0, 0, nil)
	for i := 0; i < 100; i++ {
		if ok, _ := tb.take(); !ok {
			t.Fatal("disabled bucket refused")
		}
	}
}

// acquireAsync queues an acquire and reports its result.
func acquireAsync(a *admitter, tenant string) chan error {
	ready := make(chan struct{})
	out := make(chan error, 1)
	go func() {
		close(ready)
		out <- a.acquire(context.Background(), tenant)
	}()
	<-ready
	return out
}

func waitDepth(t *testing.T, a *admitter, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if q, _ := a.depth(); q == want {
			return
		}
		if time.Now().After(deadline) {
			q, _ := a.depth()
			t.Fatalf("queue depth %d, want %d", q, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// One heavy tenant must not starve a light one: with tenant a holding
// three queued waiters and tenant b one, released slots alternate
// between the tenants' FIFOs instead of draining a first.
func TestAdmitterRoundRobinFairness(t *testing.T) {
	a := newAdmitter(1, 10)
	if err := a.acquire(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}

	// Queue in arrival order: a, a, a, b.
	var grants []chan error
	order := make(chan string, 4)
	var mu sync.Mutex
	granted := []string{}
	for _, tenant := range []string{"a", "a", "a", "b"} {
		tenant := tenant
		ch := make(chan error, 1)
		grants = append(grants, ch)
		go func() {
			err := a.acquire(context.Background(), tenant)
			mu.Lock()
			granted = append(granted, tenant)
			mu.Unlock()
			order <- tenant
			ch <- err
		}()
		waitDepth(t, a, len(grants))
	}

	var got []string
	for i := 0; i < 4; i++ {
		a.release()
		got = append(got, <-order)
	}
	a.release()
	want := []string{"a", "b", "a", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v (round-robin across tenants)", got, want)
		}
	}
	for _, ch := range grants {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdmitterQueueBound(t *testing.T) {
	a := newAdmitter(1, 1)
	if err := a.acquire(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	got := acquireAsync(a, "x")
	waitDepth(t, a, 1)
	// Queue full: the next acquire is shed immediately.
	if err := a.acquire(context.Background(), "y"); !errors.Is(err, ErrShed) {
		t.Fatalf("over-queue acquire: %v, want ErrShed", err)
	}
	a.release()
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	a.release()
}

func TestAdmitterDrainFailsWaiters(t *testing.T) {
	a := newAdmitter(1, 5)
	if err := a.acquire(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	w1 := acquireAsync(a, "a")
	waitDepth(t, a, 1)
	w2 := acquireAsync(a, "b")
	waitDepth(t, a, 2)

	a.startDrain()
	for _, ch := range []chan error{w1, w2} {
		if err := <-ch; !errors.Is(err, ErrDraining) {
			t.Fatalf("queued waiter at drain: %v, want ErrDraining", err)
		}
	}
	if err := a.acquire(context.Background(), "c"); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain acquire: %v, want ErrDraining", err)
	}
	// The in-flight slot still releases cleanly.
	a.release()
}

func TestAdmitterCancelledWaiterLeavesQueue(t *testing.T) {
	a := newAdmitter(1, 5)
	if err := a.acquire(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- a.acquire(ctx, "a") }()
	waitDepth(t, a, 1)
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: %v", err)
	}
	waitDepth(t, a, 0)
	// The released slot must not be consumed by the dead waiter.
	a.release()
	if err := a.acquire(context.Background(), "b"); err != nil {
		t.Fatalf("slot lost to cancelled waiter: %v", err)
	}
	a.release()
}

func TestLRUEvictsOldest(t *testing.T) {
	l := newLRU[int](2)
	l.put("a", 1)
	l.put("b", 2)
	l.get("a") // a is now most recent
	l.put("c", 3)
	if _, ok := l.get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	if v, ok := l.get("a"); !ok || v != 1 {
		t.Error("a missing after eviction round")
	}
	if v, ok := l.get("c"); !ok || v != 3 {
		t.Error("c missing after insert")
	}
	if l.len() != 2 {
		t.Errorf("len %d, want 2", l.len())
	}
}

func TestLRUPeekDoesNotTouchRecency(t *testing.T) {
	l := newLRU[int](2)
	l.put("a", 1)
	l.put("b", 2)
	l.peek("a") // must NOT refresh a
	l.put("c", 3)
	if _, ok := l.peek("a"); ok {
		t.Error("a should have been evicted: peek must not refresh recency")
	}
}
