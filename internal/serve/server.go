// Package serve implements hmmserved's core: a long-running,
// overload-safe HMM search service that keeps packed target databases
// and a bounded LRU of calibrated profiles resident across queries and
// multiplexes concurrent searches onto a shared device pool.
//
// Robustness is the design center (DESIGN §2i):
//
//   - Admission control: a token bucket plus a bounded fair queue shed
//     excess load with 429 + Retry-After instead of queueing without
//     bound, so the p99 of admitted queries stays flat under overload
//     and memory stays bounded.
//   - Fairness: queued queries wait in per-tenant FIFOs served
//     round-robin; a flooding tenant cannot starve the rest.
//   - Degradation: devices that end runs quarantined collect strikes
//     and are cordoned out of the pool; queries degrade to the host
//     CPU (mid-run via the scheduler's fallback, or wholesale when the
//     pool is empty) and still return byte-identical hits.
//   - Result caching keyed by the checkpoint layer's SHA-256 config
//     fingerprint (model + thresholds + chunking) plus the database
//     content hash — a content key, never a path.
//   - Two-stage drain: the first SIGTERM stops admission, fails queued
//     waiters into a journal, and lets in-flight queries finish; a
//     second signal aborts them mid-kernel via context cancellation.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/checkpoint"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/simt"
)

// Config configures a Server. The zero value of most fields selects a
// sensible default (documented per field); DBs is required.
type Config struct {
	// DBs maps database names (the ?db= parameter) to resident
	// databases. Every database must be chunked with BatchResidues.
	DBs map[string]*pipeline.ResidentDB
	// TargetLen is the assumed target length for pipeline calibration
	// (must match the one-shot CLI's -targlen for byte-identical
	// output). Default 350.
	TargetLen int
	// BatchResidues is the residue budget queries are scheduled with
	// (must match the CLI's -batchres). Required.
	BatchResidues int64

	// Mem, Mode, Spec, Devices describe the device pool. Devices
	// defaults to 2; Spec to the GTX 580.
	Mem     gpu.MemConfig
	Mode    simt.Mode
	Spec    simt.DeviceSpec
	Devices int
	// DevsPerQuery is how many devices one query's scheduler spans
	// (default 1: concurrency across queries, not within one).
	DevsPerQuery int
	// Faults/FaultSeed inject device faults at pool creation (chaos
	// testing, mirrors hmmsearch -faults).
	Faults    string
	FaultSeed int64
	// CordonAfter is how many consecutive quarantined leases cordon a
	// device out of the pool (default 2).
	CordonAfter int

	// Rate/Burst shape the admission token bucket (queries per second;
	// Rate <= 0 disables it).
	Rate  float64
	Burst float64
	// MaxConcurrent bounds queries executing simultaneously (default
	// Devices/DevsPerQuery); MaxQueue bounds queries waiting for a slot
	// (default MaxConcurrent) — beyond it, queries are shed.
	MaxConcurrent int
	MaxQueue      int
	// QueryTimeout is the per-query deadline (default 2m); requests may
	// ask for less via ?timeout= but never more.
	QueryTimeout time.Duration

	// MaxRetries/QuarantineAfter/Verify tune each query's scheduler
	// (see pipeline.StreamConfig).
	MaxRetries      int
	QuarantineAfter int
	Verify          pipeline.VerifyMode
	// Workers is the host worker goroutine count per query (0 =
	// GOMAXPROCS).
	Workers int

	// ProfileCap bounds the calibrated-profile LRU (default 16);
	// ResultCap the result cache (default 256 entries).
	ProfileCap int
	ResultCap  int
	// MaxModelBytes bounds an uploaded model (default 8 MiB).
	MaxModelBytes int64

	// DrainJournal, when set, receives one JSON line per query refused
	// during drain, so an orchestrator can replay them.
	DrainJournal string

	// Logf receives operational log lines (default: silent).
	Logf func(format string, args ...any)
	// Metrics receives service counters/histograms; when nil the
	// server creates its own registry (it backs /metrics either way).
	Metrics *obs.Registry
	// Now is the clock (injectable for tests; default time.Now).
	Now func() time.Time
}

// profileEntry is one calibrated pipeline resident in the profile LRU.
type profileEntry struct {
	pl   *pipeline.Pipeline
	fp   checkpoint.Fingerprint
	name string
}

type buildCall struct {
	done  chan struct{}
	entry *profileEntry
	err   error
}

// DrainSummary reports what the graceful drain did.
type DrainSummary struct {
	// Completed is how many in-flight queries finished during drain.
	Completed int
	// Journaled is how many queued queries were refused and journaled.
	Journaled int
}

// Server is the resident search service. Create with New, expose
// Handler over net/http, call Drain on the first termination signal
// and Abort on the second.
type Server struct {
	cfg    Config
	abc    *alphabet.Alphabet
	reg    *obs.Registry
	mux    *http.ServeMux
	bucket *tokenBucket
	adm    *admitter
	pool   *devicePool

	mu        sync.Mutex // guards profiles, results, building, searching
	profiles  *lru[*profileEntry]
	results   *lru[*pipeline.Result]
	building  map[string]*buildCall
	searching map[string]*searchCall

	// ready gates /readyz: it stays false — and load balancers keep
	// traffic away — until the caller finishes startup work (resident
	// DB loading, drain-journal replay) and calls MarkReady. /search
	// itself is not gated: the replay path drives it pre-ready.
	ready atomic.Bool

	wg sync.WaitGroup // in-flight /search handlers

	stateMu   sync.Mutex
	draining  bool
	journal   *os.File
	journaled int

	abortCtx    context.Context
	abortCancel context.CancelFunc
}

// New validates the config, builds the device pool, and returns a
// ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if len(cfg.DBs) == 0 {
		return nil, errors.New("serve: no databases configured")
	}
	if cfg.BatchResidues < 1 {
		return nil, fmt.Errorf("serve: batch residues %d < 1", cfg.BatchResidues)
	}
	for name, rdb := range cfg.DBs {
		if rdb == nil || len(rdb.Batches) == 0 {
			return nil, fmt.Errorf("serve: database %q is empty", name)
		}
		if rdb.BatchResidues != cfg.BatchResidues {
			return nil, fmt.Errorf("serve: database %q chunked at %d residues, server runs at %d (results would not match the one-shot CLI)",
				name, rdb.BatchResidues, cfg.BatchResidues)
		}
	}
	if cfg.TargetLen == 0 {
		cfg.TargetLen = 350
	}
	if cfg.Devices < 1 {
		cfg.Devices = 2
	}
	if cfg.DevsPerQuery < 1 {
		cfg.DevsPerQuery = 1
	}
	if cfg.Spec.Name == "" {
		cfg.Spec = simt.GTX580()
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = cfg.Devices / cfg.DevsPerQuery
		if cfg.MaxConcurrent < 1 {
			cfg.MaxConcurrent = 1
		}
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = cfg.MaxConcurrent
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 2 * time.Minute
	}
	if cfg.ProfileCap < 1 {
		cfg.ProfileCap = 16
	}
	if cfg.ResultCap < 1 {
		cfg.ResultCap = 256
	}
	if cfg.MaxModelBytes < 1 {
		cfg.MaxModelBytes = 8 << 20
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}

	sys := simt.NewSystem(cfg.Spec, cfg.Devices).SetMode(cfg.Mode)
	if cfg.Faults != "" {
		faults, err := simt.ParseFaults(cfg.Faults, cfg.FaultSeed, cfg.Devices)
		if err != nil {
			return nil, err
		}
		if err := sys.ApplyFaults(faults); err != nil {
			return nil, err
		}
	}

	abortCtx, abortCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		abc:         alphabet.New(),
		reg:         reg,
		bucket:      newTokenBucket(cfg.Rate, cfg.Burst, cfg.Now),
		adm:         newAdmitter(cfg.MaxConcurrent, cfg.MaxQueue),
		pool:        newDevicePool(sys.Devices, cfg.CordonAfter),
		profiles:    newLRU[*profileEntry](cfg.ProfileCap),
		results:     newLRU[*pipeline.Result](cfg.ResultCap),
		building:    make(map[string]*buildCall),
		searching:   make(map[string]*searchCall),
		abortCtx:    abortCtx,
		abortCancel: abortCancel,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Handler is the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// MarkReady flips /readyz healthy. Call it after startup work —
// binding the listener and replaying any drain journal — so a restart
// never advertises readiness while journaled queries are still being
// re-admitted.
func (s *Server) MarkReady() { s.ready.Store(true) }

// Abort hard-cancels every running query (the second-signal path):
// their contexts cancel down to mid-kernel polls and the handlers
// answer 503.
func (s *Server) Abort() { s.abortCancel() }

// Drain runs the graceful first-signal stage: stop admitting, fail and
// journal queued waiters, then block until in-flight queries have
// finished. It returns a summary the caller logs; "0 lost" is the
// contract — every query past admission either completed or has a
// journal line.
func (s *Server) Drain() DrainSummary {
	s.stateMu.Lock()
	if s.draining {
		s.stateMu.Unlock()
		s.wg.Wait()
		return DrainSummary{}
	}
	s.draining = true
	if s.cfg.DrainJournal != "" {
		fh, err := os.Create(s.cfg.DrainJournal)
		if err != nil {
			s.cfg.Logf("drain journal: %v", err)
		} else {
			s.journal = fh
		}
	}
	s.stateMu.Unlock()

	_, inflight := s.adm.depth()
	s.adm.startDrain()
	s.wg.Wait()

	s.stateMu.Lock()
	journaled := s.journaled
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	s.stateMu.Unlock()
	s.cfg.Logf("drain complete: %d in-flight completed, %d queued journaled, 0 lost", inflight, journaled)
	return DrainSummary{Completed: inflight, Journaled: journaled}
}

func (s *Server) isDraining() bool {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.draining
}

// journalRefusal appends one JSON line for a query refused during
// drain, so nothing admitted-then-abandoned is silently lost. The
// record carries the full model upload (base64), which is what makes
// the journal replayable: a restarted server re-POSTs each line
// through its own admission path and produces byte-identical
// responses (ReplayDrainJournal).
func (s *Server) journalRefusal(tenant, db, query, fp string, model []byte, reason string) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.journaled++
	if s.journal == nil {
		return
	}
	rec := map[string]string{
		"time":        s.cfg.Now().UTC().Format(time.RFC3339Nano),
		"tenant":      tenant,
		"db":          db,
		"query":       query,
		"fingerprint": fp,
		"model":       base64.StdEncoding.EncodeToString(model),
		"reason":      reason,
	}
	b, _ := json.Marshal(rec)
	s.journal.Write(append(b, '\n'))
}

// getPipeline returns the calibrated pipeline for a model upload,
// building it at most once per content hash (singleflight) and keeping
// it in the bounded LRU. hit reports whether it was already resident.
func (s *Server) getPipeline(key string, body []byte) (e *profileEntry, hit bool, err error) {
	s.mu.Lock()
	if e, ok := s.profiles.get(key); ok {
		s.mu.Unlock()
		return e, true, nil
	}
	if c, ok := s.building[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.entry, false, c.err
	}
	c := &buildCall{done: make(chan struct{})}
	s.building[key] = c
	s.mu.Unlock()

	h, err := hmm.Read(bytes.NewReader(body), s.abc)
	if err == nil {
		opts := pipeline.DefaultOptions()
		opts.Workers = s.cfg.Workers
		var pl *pipeline.Pipeline
		pl, err = pipeline.New(h, s.cfg.TargetLen, opts)
		if err == nil {
			fp := pl.Fingerprint(pipeline.StreamConfig{BatchResidues: s.cfg.BatchResidues})
			c.entry = &profileEntry{pl: pl, fp: fp, name: h.Name}
		}
	}
	c.err = err

	s.mu.Lock()
	delete(s.building, key)
	if c.err == nil {
		s.profiles.put(key, c.entry)
	}
	s.mu.Unlock()
	if c.err == nil {
		s.reg.AddInt("hmmer_serve_profile_builds_total", 1)
	}
	close(c.done)
	return c.entry, false, c.err
}

// resultKey is the cache key: config fingerprint (model, thresholds,
// calibration, chunk budget) plus database content hash. Nothing
// path-shaped enters it.
func resultKey(fp checkpoint.Fingerprint, rdb *pipeline.ResidentDB) string {
	return hex.EncodeToString(fp[:]) + ":" + hex.EncodeToString(rdb.Hash[:])
}

func (s *Server) cachedResult(key string) (*pipeline.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.results.get(key)
}

func (s *Server) storeResult(key string, res *pipeline.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results.put(key, res)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a profile HMM to /search", http.StatusMethodNotAllowed)
		return
	}
	s.wg.Add(1)
	defer s.wg.Done()
	start := time.Now()

	if s.isDraining() {
		s.reg.AddInt("hmmer_serve_refused_drain_total", 1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining: not admitting queries", http.StatusServiceUnavailable)
		return
	}

	q := r.URL.Query()
	dbName := q.Get("db")
	rdb, ok := s.cfg.DBs[dbName]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown database %q", dbName), http.StatusNotFound)
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "tbl"
	}
	if format != "tbl" && format != "json" {
		http.Error(w, fmt.Sprintf("unknown format %q (want tbl or json)", format), http.StatusBadRequest)
		return
	}
	tenant := q.Get("tenant")
	if tenant == "" {
		tenant = "default"
	}
	useCache := q.Get("cache") != "off"
	timeout := s.cfg.QueryTimeout
	if t := q.Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil || d <= 0 {
			http.Error(w, fmt.Sprintf("bad timeout %q", t), http.StatusBadRequest)
			return
		}
		if d < timeout {
			timeout = d
		}
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxModelBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading model: %v", err), http.StatusBadRequest)
		return
	}
	sum := sha256.Sum256(body)
	modelKey := hex.EncodeToString(sum[:])

	// A query whose profile is already resident can be answered from
	// the result cache without spending an admission token: cache hits
	// cost microseconds, and charging them would let a cacheable
	// workload shed work it could have absorbed.
	s.mu.Lock()
	peeked, resident := s.profiles.peek(modelKey)
	s.mu.Unlock()
	if resident && useCache {
		if res, ok := s.cachedResult(resultKey(peeked.fp, rdb)); ok {
			s.reg.AddInt("hmmer_serve_cache_hits_total", 1)
			s.respond(w, format, peeked, res, start, "hit", "")
			return
		}
	}

	if ok, retry := s.bucket.take(); !ok {
		s.shed(w, retry)
		return
	}

	entry, _, err := s.getPipeline(modelKey, body)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad model: %v", err), http.StatusBadRequest)
		return
	}
	key := resultKey(entry.fp, rdb)
	if useCache {
		if res, ok := s.cachedResult(key); ok {
			s.reg.AddInt("hmmer_serve_cache_hits_total", 1)
			s.respond(w, format, entry, res, start, "hit", "")
			return
		}
	}
	s.reg.AddInt("hmmer_serve_cache_misses_total", 1)

	// Per-query deadline, threaded all the way to the kernels' between-
	// block cancellation polls; Abort (second signal) cancels it too.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	stopAbort := context.AfterFunc(s.abortCtx, cancel)
	defer stopAbort()

	// Coalesce identical concurrent misses: if another handler is
	// already computing this exact (fingerprint, database) result, wait
	// for it instead of burning a second admission slot on duplicate
	// work — the thundering-herd case of N clients uploading the same
	// model at once costs one execution. Skipped when the client asked
	// for cache=off: that is an explicit request for a fresh run.
	var call *searchCall
	if useCache {
		s.mu.Lock()
		if c, ok := s.searching[key]; ok {
			s.mu.Unlock()
			s.reg.AddInt("hmmer_serve_search_coalesced_total", 1)
			select {
			case <-c.done:
			case <-ctx.Done():
				s.queryErr(w, ctx, ctx.Err())
				return
			}
			if c.err != nil {
				s.admitErr(w, ctx, c.err, tenant, dbName, entry, body)
				return
			}
			s.respond(w, format, entry, c.res, start, "coalesced", c.degraded)
			return
		}
		call = &searchCall{done: make(chan struct{})}
		s.searching[key] = call
		s.mu.Unlock()
		defer func() {
			s.mu.Lock()
			delete(s.searching, key)
			s.mu.Unlock()
			close(call.done)
		}()
	}

	queueStart := time.Now()
	if err := s.adm.acquire(ctx, tenant); err != nil {
		if call != nil {
			call.err = err
		}
		s.admitErr(w, ctx, err, tenant, dbName, entry, body)
		return
	}
	defer s.adm.release()
	s.reg.Observe("hmmer_serve_queue_wait_seconds", time.Since(queueStart).Seconds(), obs.LatencyBuckets()...)

	res, degraded, err := s.execute(ctx, entry, rdb)
	if err != nil {
		if call != nil {
			call.err = err
		}
		s.queryErr(w, ctx, err)
		return
	}
	if call != nil {
		call.res, call.degraded = res, degraded
	}
	if degraded != "" {
		s.reg.AddInt("hmmer_serve_degraded_total", 1)
	}
	if useCache {
		s.storeResult(key, res)
	}
	s.respond(w, format, entry, res, start, "miss", degraded)
}

// searchCall is one in-flight cache-miss execution that concurrent
// identical queries coalesce onto; done closes when the leader's
// handler returns with res/degraded or err populated.
type searchCall struct {
	done     chan struct{}
	res      *pipeline.Result
	degraded string
	err      error
}

// admitErr maps an admission (or coalesced-leader) failure to its
// response. A query refused because drain started while it was queued
// is journaled — coalesced followers too: each was an accepted query,
// and each must be replayable.
func (s *Server) admitErr(w http.ResponseWriter, ctx context.Context, err error, tenant, dbName string, entry *profileEntry, body []byte) {
	switch {
	case errors.Is(err, ErrShed):
		s.shed(w, time.Second)
	case errors.Is(err, ErrDraining):
		s.reg.AddInt("hmmer_serve_refused_drain_total", 1)
		s.journalRefusal(tenant, dbName, entry.name, hex.EncodeToString(entry.fp[:]), body, "queued-at-drain")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining: queued query refused (journaled)", http.StatusServiceUnavailable)
	default:
		s.queryErr(w, ctx, err)
	}
}

// execute runs one admitted query: lease devices (or degrade to the
// host CPU when the pool has none left), run the resident streaming
// engine, and feed the pool's strike counter from the scheduler's
// quarantine report. degraded is "" for a clean device run, "fallback"
// when some batches drained to the host mid-run, "cpu" for a
// whole-query host run.
func (s *Server) execute(ctx context.Context, entry *profileEntry, rdb *pipeline.ResidentDB) (res *pipeline.Result, degraded string, err error) {
	lease, err := s.pool.lease(ctx, s.cfg.DevsPerQuery)
	if err != nil {
		return nil, "", err
	}
	if lease == nil {
		res, err := entry.pl.RunResidentCPUContext(ctx, rdb)
		return res, "cpu", err
	}
	devs := make([]*simt.Device, len(lease))
	for i, d := range lease {
		devs[i] = d.dev
	}
	scfg := pipeline.StreamConfig{
		BatchResidues:   s.cfg.BatchResidues,
		MaxRetries:      s.cfg.MaxRetries,
		QuarantineAfter: s.cfg.QuarantineAfter,
		Verify:          s.cfg.Verify,
	}
	res, err = entry.pl.RunResidentStreamContext(ctx, &simt.System{Devices: devs}, s.cfg.Mem, rdb, scfg)
	if err != nil {
		// The run never produced a fault report; release without
		// touching strikes.
		s.pool.release(lease, nil)
		return nil, "", err
	}
	extra := res.Extra.(*pipeline.MultiGPUStreamExtra)
	quarantined := make([]bool, len(lease))
	for i := range lease {
		if i < len(extra.Schedule.Faults.Devices) {
			quarantined[i] = extra.Schedule.Faults.Devices[i].Quarantined
		}
	}
	s.pool.release(lease, quarantined)
	if extra.Schedule.Faults.Fallbacks > 0 {
		degraded = "fallback"
	}
	s.updateDeviceGauges()
	return res, degraded, nil
}

func (s *Server) shed(w http.ResponseWriter, retry time.Duration) {
	s.reg.AddInt("hmmer_serve_shed_total", 1)
	secs := int(retry/time.Second) + 1
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	http.Error(w, "overloaded: query shed, retry later", http.StatusTooManyRequests)
}

// queryErr maps an execution error to its status: deadline -> 504,
// cancellation (client gone or hard abort) -> 503, anything else is a
// real 500.
func (s *Server) queryErr(w http.ResponseWriter, ctx context.Context, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, "query cancelled", http.StatusServiceUnavailable)
	default:
		s.reg.AddInt("hmmer_serve_errors_total", 1)
		s.cfg.Logf("query failed: %v", err)
		http.Error(w, fmt.Sprintf("search failed: %v", err), http.StatusInternalServerError)
	}
}

// respond renders the result. The body is a pure function of the
// Result and format — per-run facts (cache hit, degradation) ride in
// headers only, so a cached response is byte-identical to the original
// and both byte-diff cleanly against the one-shot CLI's table.
func (s *Server) respond(w http.ResponseWriter, format string, entry *profileEntry, res *pipeline.Result, start time.Time, cache, degraded string) {
	s.reg.AddInt("hmmer_serve_queries_total", 1)
	s.reg.Observe("hmmer_serve_latency_seconds", time.Since(start).Seconds(), obs.LatencyBuckets()...)
	w.Header().Set("X-Cache", cache)
	w.Header().Set("X-Fingerprint", hex.EncodeToString(entry.fp[:]))
	if degraded != "" {
		w.Header().Set("X-Degraded", degraded)
	}
	var buf bytes.Buffer
	if format == "json" {
		if err := writeJSONResult(&buf, entry.name, res); err != nil {
			s.queryErr(w, context.Background(), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
	} else {
		if err := pipeline.WriteTblout(&buf, entry.name, res); err != nil {
			s.queryErr(w, context.Background(), err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Header().Set("Content-Length", fmt.Sprintf("%d", buf.Len()))
	w.Write(buf.Bytes())
}

// jsonFloat marshals like a float64 but survives the ±Inf sentinel
// scores (an overflowed MSV filter reports +Inf bits), which
// encoding/json otherwise rejects.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// writeJSONResult renders the deterministic JSON body: hits and stage
// pass counts only — never wall times or schedule reports, which vary
// run to run and would break cached-response byte identity.
func writeJSONResult(w io.Writer, query string, res *pipeline.Result) error {
	type hitJSON struct {
		Index   int       `json:"index"`
		Name    string    `json:"name"`
		MSVBits jsonFloat `json:"msv_bits"`
		VitBits jsonFloat `json:"vit_bits"`
		FwdBits jsonFloat `json:"fwd_bits"`
		PValue  jsonFloat `json:"p_value"`
		EValue  jsonFloat `json:"e_value"`
	}
	type stageJSON struct {
		In  int `json:"in"`
		Out int `json:"out"`
	}
	out := struct {
		Query   string    `json:"query"`
		Hits    []hitJSON `json:"hits"`
		MSV     stageJSON `json:"msv"`
		Viterbi stageJSON `json:"viterbi"`
		Forward stageJSON `json:"forward"`
	}{Query: query, Hits: []hitJSON{},
		MSV:     stageJSON{res.MSV.In, res.MSV.Out},
		Viterbi: stageJSON{res.Viterbi.In, res.Viterbi.Out},
		Forward: stageJSON{res.Forward.In, res.Forward.Out}}
	for _, h := range res.Hits {
		out.Hits = append(out.Hits, hitJSON{h.Index, h.Name,
			jsonFloat(h.MSVBits), jsonFloat(h.VitBits), jsonFloat(h.FwdBits),
			jsonFloat(h.PValue), jsonFloat(h.EValue)})
	}
	b, err := json.Marshal(out)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// healthPayload is the /healthz and /readyz body.
type healthPayload struct {
	Status   string `json:"status"`
	Ready    bool   `json:"ready"`
	Draining bool   `json:"draining"`
	Devices  struct {
		Total    int   `json:"total"`
		Healthy  int   `json:"healthy"`
		Cordoned []int `json:"cordoned"`
		Busy     int   `json:"busy"`
	} `json:"devices"`
	Queue struct {
		Depth    int `json:"depth"`
		Max      int `json:"max"`
		Inflight int `json:"inflight"`
	} `json:"queue"`
}

func (s *Server) health() healthPayload {
	var p healthPayload
	healthy, cordoned, busy := s.pool.health()
	p.Devices.Total = healthy + cordoned
	p.Devices.Healthy = healthy
	p.Devices.Cordoned = s.pool.cordonedIndexes()
	if p.Devices.Cordoned == nil {
		p.Devices.Cordoned = []int{}
	}
	p.Devices.Busy = busy
	p.Queue.Depth, p.Queue.Inflight = s.adm.depth()
	p.Queue.Max = s.cfg.MaxQueue
	p.Draining = s.isDraining()
	p.Ready = s.ready.Load()
	switch {
	case p.Draining:
		p.Status = "draining"
	case !p.Ready:
		p.Status = "starting" // startup (DB load / journal replay) still running
	case healthy == 0:
		p.Status = "degraded" // still serving, on the host CPU
	default:
		p.Status = "ok"
	}
	return p
}

// handleHealthz is liveness: 200 as long as the process can answer,
// with the full device/queue state in the body.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleReadyz is readiness: 503 until MarkReady (resident DBs loaded
// and any drain-journal replay finished) and again once draining —
// load balancers route here only between those points. The degraded
// all-devices-cordoned state stays 200: it still serves correct
// results from the CPU.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	p := s.health()
	code := http.StatusOK
	if p.Draining || !p.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, p)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(v)
	w.Write(append(b, '\n'))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.updateGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}

func (s *Server) updateGauges() {
	queued, inflight := s.adm.depth()
	s.reg.Set("hmmer_serve_queue_depth", float64(queued))
	s.reg.Set("hmmer_serve_inflight", float64(inflight))
	s.updateDeviceGauges()
}

func (s *Server) updateDeviceGauges() {
	healthy, cordoned, _ := s.pool.health()
	s.reg.Set("hmmer_serve_devices_healthy", float64(healthy))
	s.reg.Set("hmmer_serve_devices_cordoned", float64(cordoned))
}
