package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/workload"
)

var abc = alphabet.New()

const fixtureTargetLen = 350

// serveFixture builds a query model (as the HMM text a client would
// POST), a small homolog-rich database, and the one-shot reference
// table computed by the same engine the CLI uses.
type serveFixture struct {
	modelText []byte
	fasta     []byte
	refTbl    []byte
	budget    int64
}

var (
	fixtureOnce sync.Once
	fixtureVal  serveFixture
	fixtureErr  error
)

func fixture(t *testing.T) serveFixture {
	t.Helper()
	fixtureOnce.Do(func() { fixtureVal, fixtureErr = buildFixture() })
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureVal
}

func buildFixture() (serveFixture, error) {
	var f serveFixture
	h, err := workload.Model("servetest", 60, abc, 31)
	if err != nil {
		return f, err
	}
	db, err := workload.Generate(workload.DBSpec{
		Name: "serve-db", NumSeqs: 70, MeanLen: 120, LogSigma: 0.4,
		MinLen: 30, MaxLen: 400, HomologFrac: 0.15, Seed: 5,
	}, h, abc)
	if err != nil {
		return f, err
	}
	var model bytes.Buffer
	if err := hmm.Write(&model, h); err != nil {
		return f, err
	}
	f.modelText = model.Bytes()
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, db, abc); err != nil {
		return f, err
	}
	f.fasta = fasta.Bytes()
	f.budget = db.TotalResidues() / 5

	// The one-shot reference: exactly what `hmmsearch -engine multigpu
	// -stream -batchres <budget> -sim fast -tblout` writes. The CLI
	// reads the model from its text file — the same serialization the
	// server receives — so the reference must round-trip it too (the
	// text format quantizes probabilities).
	h2, err := hmm.Read(bytes.NewReader(f.modelText), abc)
	if err != nil {
		return f, err
	}
	pl, err := pipeline.New(h2, fixtureTargetLen, pipeline.DefaultOptions())
	if err != nil {
		return f, err
	}
	sys := simt.NewSystem(simt.GTX580(), 2).SetMode(simt.ModeFast)
	ref, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(f.fasta),
		pipeline.StreamConfig{BatchResidues: f.budget})
	if err != nil {
		return f, err
	}
	var tbl bytes.Buffer
	if err := pipeline.WriteTblout(&tbl, h.Name, ref); err != nil {
		return f, err
	}
	f.refTbl = tbl.Bytes()
	return f, nil
}

// newTestServer builds a Server over the fixture database; mutate lets
// a test adjust the config before construction.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	f := fixture(t)
	rdb, err := pipeline.LoadResidentDB("test", bytes.NewReader(f.fasta), abc, f.budget)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		DBs:           map[string]*pipeline.ResidentDB{"test": rdb},
		TargetLen:     fixtureTargetLen,
		BatchResidues: f.budget,
		Mode:          simt.ModeFast,
		Devices:       2,
		Logf:          t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.MarkReady() // tests that exercise the pre-ready window skip this helper
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postQuery(t *testing.T, ts *httptest.Server, params string, model []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/search?"+params, "text/plain", bytes.NewReader(model))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func counter(t *testing.T, s *Server, name string) float64 {
	t.Helper()
	v, _ := s.reg.Get(name)
	return v
}

// The headline invariant: a served query's table is byte-identical to
// the one-shot CLI's, fresh and from the cache.
func TestServedMatchesOneShot(t *testing.T) {
	f := fixture(t)
	s, ts := newTestServer(t, nil)

	resp, body := postQuery(t, ts, "db=test", f.modelText)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, f.refTbl) {
		t.Fatalf("served table differs from one-shot reference:\nserved:\n%s\nreference:\n%s", body, f.refTbl)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first query X-Cache = %q, want miss", got)
	}
	fp := resp.Header.Get("X-Fingerprint")
	if len(fp) != 64 {
		t.Errorf("X-Fingerprint = %q, want 64 hex chars", fp)
	}

	// Same model content again: a cache hit with an identical body.
	resp2, body2 := postQuery(t, ts, "db=test", f.modelText)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second query X-Cache = %q, want hit", got)
	}
	if resp2.Header.Get("X-Fingerprint") != fp {
		t.Error("fingerprint changed between identical queries")
	}
	if !bytes.Equal(body2, body) {
		t.Error("cached body differs from fresh body")
	}
	if hits := counter(t, s, "hmmer_serve_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %v, want 1", hits)
	}

	// A different model must miss: the key is the config fingerprint,
	// not anything path- or handle-shaped.
	other, err := workload.Model("othermodel", 50, abc, 77)
	if err != nil {
		t.Fatal(err)
	}
	var otherText bytes.Buffer
	if err := hmm.Write(&otherText, other); err != nil {
		t.Fatal(err)
	}
	resp3, _ := postQuery(t, ts, "db=test", otherText.Bytes())
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp3.StatusCode)
	}
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("different model X-Cache = %q, want miss", got)
	}
	if resp3.Header.Get("X-Fingerprint") == fp {
		t.Error("different model produced the same fingerprint")
	}
	if hits := counter(t, s, "hmmer_serve_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits after different model = %v, want still 1", hits)
	}
}

func TestServedJSONFormat(t *testing.T) {
	f := fixture(t)
	_, ts := newTestServer(t, nil)
	resp, body := postQuery(t, ts, "db=test&format=json", f.modelText)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Query string `json:"query"`
		Hits  []struct {
			Name   string  `json:"name"`
			EValue float64 `json:"e_value"`
		} `json:"hits"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out.Query != "servetest" || len(out.Hits) == 0 {
		t.Errorf("JSON result query=%q hits=%d", out.Query, len(out.Hits))
	}
}

// Mid-query quarantine: with every device dead the scheduler's host
// fallback finishes the run, the response is flagged degraded, and the
// bytes still match. The next query finds the pool cordoned and runs
// wholesale on the CPU — still byte-identical.
func TestServedDegradedByteIdentical(t *testing.T) {
	f := fixture(t)
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.Faults = "0:dead;1:dead"
		cfg.CordonAfter = 1
		// One lease spans both devices, so the first faulted query
		// strikes out the whole pool.
		cfg.DevsPerQuery = 2
	})

	resp, body := postQuery(t, ts, "db=test&cache=off", f.modelText)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Degraded"); got != "fallback" {
		t.Errorf("X-Degraded = %q, want fallback", got)
	}
	if !bytes.Equal(body, f.refTbl) {
		t.Error("degraded (mid-run fallback) table differs from one-shot reference")
	}

	// Both devices struck out; the pool is now empty.
	if healthy, cordoned, _ := s.pool.health(); healthy != 0 || cordoned != 2 {
		t.Fatalf("pool health after faulted run: healthy=%d cordoned=%d", healthy, cordoned)
	}
	resp2, body2 := postQuery(t, ts, "db=test&cache=off", f.modelText)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Degraded"); got != "cpu" {
		t.Errorf("X-Degraded = %q, want cpu", got)
	}
	if !bytes.Equal(body2, f.refTbl) {
		t.Error("fully-degraded (CPU) table differs from one-shot reference")
	}

	var h healthPayload
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.Status != "degraded" || len(h.Devices.Cordoned) != 2 {
		t.Errorf("healthz after cordon: %+v", h)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("%s status %d, want %d: %s", path, resp.StatusCode, wantCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("%s: bad JSON: %v", path, err)
	}
}

func TestTokenBucketSheds429(t *testing.T) {
	f := fixture(t)
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.Rate = 0.001
		cfg.Burst = 1
	})
	resp, _ := postQuery(t, ts, "db=test", f.modelText)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first query status %d", resp.StatusCode)
	}
	resp2, _ := postQuery(t, ts, "db=test&cache=off", f.modelText)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second query status %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if shed := counter(t, s, "hmmer_serve_shed_total"); shed != 1 {
		t.Errorf("shed_total = %v, want 1", shed)
	}

	// A cache hit must not need a token: the first query populated the
	// cache, so this one serves even with the bucket empty.
	resp3, body3 := postQuery(t, ts, "db=test", f.modelText)
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("X-Cache") != "hit" {
		t.Errorf("cache hit with empty bucket: status %d X-Cache %q: %s",
			resp3.StatusCode, resp3.Header.Get("X-Cache"), body3)
	}
}

func TestQueueFullSheds429(t *testing.T) {
	f := fixture(t)
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.MaxConcurrent = 1
		cfg.MaxQueue = -1 // no queue at all
	})
	// Occupy the only slot so the HTTP query finds the queue full.
	if err := s.adm.acquire(context.Background(), "hog"); err != nil {
		t.Fatal(err)
	}
	defer s.adm.release()
	resp, _ := postQuery(t, ts, "db=test&cache=off", f.modelText)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (queue full)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full 429 without Retry-After")
	}
}

func TestQueryDeadline504(t *testing.T) {
	f := fixture(t)
	_, ts := newTestServer(t, nil)
	resp, _ := postQuery(t, ts, "db=test&cache=off&timeout=1ns", f.modelText)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

func TestUnknownDB404(t *testing.T) {
	f := fixture(t)
	_, ts := newTestServer(t, nil)
	resp, _ := postQuery(t, ts, "db=nope", f.modelText)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestBadModel400(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, _ := postQuery(t, ts, "db=test", []byte("this is not an HMM"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// The automated drain test the acceptance criteria call for: with the
// single slot held, a queued query is refused with 503 and lands in
// the journal; new arrivals are refused; in-flight work completes;
// the summary reports zero loss.
func TestDrainJournalsQueuedAndRefusesNew(t *testing.T) {
	f := fixture(t)
	journal := filepath.Join(t.TempDir(), "drain.jsonl")
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.MaxConcurrent = 1
		cfg.MaxQueue = 4
		cfg.DrainJournal = journal
	})

	// Hold the only slot (stands in for a long in-flight query).
	if err := s.adm.acquire(context.Background(), "inflight"); err != nil {
		t.Fatal(err)
	}

	// A queued query, waiting for the slot.
	queued := make(chan *http.Response, 1)
	go func() {
		resp, _ := postQuery(t, ts, "db=test&cache=off&tenant=queued", f.modelText)
		queued <- resp
	}()
	waitDepth(t, s.adm, 1)

	done := make(chan DrainSummary, 1)
	go func() { done <- s.Drain() }()

	resp := <-queued
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued query at drain: status %d, want 503", resp.StatusCode)
	}

	// The "in-flight query" finishes; Drain can now complete.
	s.adm.release()
	var sum DrainSummary
	select {
	case sum = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return")
	}
	if sum.Journaled != 1 {
		t.Errorf("drain journaled %d, want 1", sum.Journaled)
	}
	if sum.Completed != 1 {
		t.Errorf("drain completed %d, want 1", sum.Completed)
	}

	b, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 1 {
		t.Fatalf("journal has %d lines, want 1:\n%s", len(lines), b)
	}
	var rec map[string]string
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["tenant"] != "queued" || rec["reason"] != "queued-at-drain" || rec["db"] != "test" || len(rec["fingerprint"]) != 64 {
		t.Errorf("journal record %v", rec)
	}

	// New arrivals are refused while (and after) draining.
	resp2, _ := postQuery(t, ts, "db=test", f.modelText)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query: status %d, want 503", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("drain 503 without Retry-After")
	}

	var r healthPayload
	getJSON(t, ts, "/readyz", http.StatusServiceUnavailable, &r)
	if !r.Draining || r.Status != "draining" {
		t.Errorf("readyz during drain: %+v", r)
	}
	getJSON(t, ts, "/healthz", http.StatusOK, &r)
}

// Abort cancels a running query mid-kernel: the handler answers 503.
func TestAbortCancelsRunning(t *testing.T) {
	f := fixture(t)
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.MaxConcurrent = 1
		cfg.MaxQueue = 4
	})
	// Hold the slot so the query is queued when Abort fires — the
	// deterministic way to catch it before completion.
	if err := s.adm.acquire(context.Background(), "hog"); err != nil {
		t.Fatal(err)
	}
	got := make(chan *http.Response, 1)
	go func() {
		resp, _ := postQuery(t, ts, "db=test&cache=off", f.modelText)
		got <- resp
	}()
	waitDepth(t, s.adm, 1)
	s.Abort()
	resp := <-got
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("aborted query: status %d, want 503", resp.StatusCode)
	}
	s.adm.release()
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	f := fixture(t)
	_, ts := newTestServer(t, nil)
	var h healthPayload
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.Status != "ok" || h.Devices.Healthy != 2 || h.Queue.Depth != 0 {
		t.Errorf("healthz: %+v", h)
	}
	getJSON(t, ts, "/readyz", http.StatusOK, &h)

	postQuery(t, ts, "db=test", f.modelText)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"hmmer_serve_queries_total", "hmmer_serve_latency_seconds",
		"hmmer_serve_devices_healthy", "hmmer_serve_queue_depth",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
