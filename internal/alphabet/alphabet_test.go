package alphabet

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSymbolsCoverAllCodes(t *testing.T) {
	if len(Symbols) != Kp {
		t.Fatalf("Symbols has %d entries, want %d", len(Symbols), Kp)
	}
	a := New()
	for code := 0; code < Kp; code++ {
		got, err := a.Code(Symbols[code])
		if err != nil {
			t.Fatalf("Code(%q): %v", Symbols[code], err)
		}
		if int(got) != code {
			t.Errorf("Code(%q) = %d, want %d", Symbols[code], got, code)
		}
	}
}

func TestCodeCaseInsensitive(t *testing.T) {
	a := New()
	up, err := a.Code('W')
	if err != nil {
		t.Fatal(err)
	}
	lo, err := a.Code('w')
	if err != nil {
		t.Fatal(err)
	}
	if up != lo {
		t.Errorf("case sensitivity: W=%d w=%d", up, lo)
	}
}

func TestCodeRejectsInvalid(t *testing.T) {
	a := New()
	for _, s := range []byte{'1', '@', 0, 0xff} {
		if _, err := a.Code(s); err == nil {
			t.Errorf("Code(%q) accepted an invalid symbol", s)
		}
	}
}

func TestDigitizeTextizeRoundTrip(t *testing.T) {
	a := New()
	const text = "ACDEFGHIKLMNPQRSTVWYBJZOUX"
	dsq, err := a.Digitize(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Textize(dsq); got != text {
		t.Errorf("round trip = %q, want %q", got, text)
	}
}

func TestDigitizeSkipsWhitespace(t *testing.T) {
	a := New()
	dsq, err := a.Digitize("AC D\nEF\tG\r")
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Textize(dsq); got != "ACDEFG" {
		t.Errorf("got %q, want ACDEFG", got)
	}
}

func TestDigitizeReportsPosition(t *testing.T) {
	a := New()
	if _, err := a.Digitize("ACD!EF"); err == nil {
		t.Fatal("expected error for '!'")
	} else if !strings.Contains(err.Error(), "position 3") {
		t.Errorf("error %q does not name position 3", err)
	}
}

func TestGapAliases(t *testing.T) {
	a := New()
	dot, err := a.Code('.')
	if err != nil {
		t.Fatal(err)
	}
	dash, err := a.Code('-')
	if err != nil {
		t.Fatal(err)
	}
	if dot != dash || dot != CodeGap {
		t.Errorf("'.'=%d '-'=%d, want both %d", dot, dash, CodeGap)
	}
}

func TestClassPredicates(t *testing.T) {
	a := New()
	for c := byte(0); c < K; c++ {
		if !a.IsCanonical(c) || !a.IsResidue(c) || a.IsDegenerate(c) {
			t.Errorf("code %d misclassified (canonical)", c)
		}
	}
	for c := byte(K); c < CodeGap; c++ {
		if a.IsCanonical(c) || !a.IsResidue(c) || !a.IsDegenerate(c) {
			t.Errorf("code %d misclassified (degenerate)", c)
		}
	}
	for c := byte(CodeGap); c < Kp; c++ {
		if a.IsResidue(c) {
			t.Errorf("code %d misclassified (gap-like)", c)
		}
	}
}

func TestExpandDegenerates(t *testing.T) {
	a := New()
	mustCode := func(s byte) byte {
		c, err := a.Code(s)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	bCode := mustCode('B')
	exp := a.Expand(bCode)
	if len(exp) != 2 {
		t.Fatalf("Expand(B) = %v, want 2 residues", exp)
	}
	want := map[byte]bool{mustCode('D'): true, mustCode('N'): true}
	for _, r := range exp {
		if !want[r] {
			t.Errorf("Expand(B) contains unexpected residue %d", r)
		}
	}
	if x := a.Expand(mustCode('X')); len(x) != K {
		t.Errorf("Expand(X) = %d residues, want %d", len(x), K)
	}
	if g := a.Expand(CodeGap); len(g) != 0 {
		t.Errorf("Expand(gap) = %v, want empty", g)
	}
	if got := a.Expand(mustCode('A')); len(got) != 1 || got[0] != 0 {
		t.Errorf("Expand(A) = %v, want [0]", got)
	}
}

func TestBackgroundSumsToOne(t *testing.T) {
	a := New()
	var sum float64
	for c := byte(0); c < K; c++ {
		f := a.Background(c)
		if f <= 0 || f >= 1 {
			t.Errorf("Background(%d) = %g out of (0,1)", c, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("background sums to %g, want ~1", sum)
	}
	if a.Background(K) != 0 {
		t.Errorf("Background of non-canonical code should be 0")
	}
}

func TestDegenerateScoreMarginalises(t *testing.T) {
	a := New()
	scores := make([]float64, K)
	for i := range scores {
		scores[i] = float64(i)
	}
	// Canonical code passes through.
	if got := a.DegenerateScore(5, scores); got != 5 {
		t.Errorf("DegenerateScore(canonical) = %g, want 5", got)
	}
	// B = {D=2, N=11} weighted by backgrounds.
	bCode, _ := a.Code('B')
	wD, wN := a.Background(2), a.Background(11)
	want := (wD*2 + wN*11) / (wD + wN)
	if got := a.DegenerateScore(bCode, scores); math.Abs(got-want) > 1e-12 {
		t.Errorf("DegenerateScore(B) = %g, want %g", got, want)
	}
	// Gap-like codes score 0.
	if got := a.DegenerateScore(CodeGap, scores); got != 0 {
		t.Errorf("DegenerateScore(gap) = %g, want 0", got)
	}
}

func TestPackUnpackRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		dsq := make([]byte, len(raw))
		for i, b := range raw {
			dsq[i] = b % Kp
		}
		return string(Unpack(Pack(dsq), len(dsq))) == string(dsq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPackSentinelFillsSlack(t *testing.T) {
	dsq := []byte{1, 2, 3, 4} // 4 residues -> 1 word with 2 sentinel slots
	words := Pack(dsq)
	if len(words) != 1 {
		t.Fatalf("packed %d words, want 1", len(words))
	}
	for s := 4; s < ResiduesPerWord; s++ {
		got := byte((words[0] >> (5 * s)) & 31)
		if got != PackSentinel {
			t.Errorf("slot %d = %d, want sentinel %d", s, got, PackSentinel)
		}
	}
}

func TestPackedAtMatchesUnpack(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dsq := make([]byte, 1000)
	for i := range dsq {
		dsq[i] = byte(rng.Intn(Kp))
	}
	words := Pack(dsq)
	for i, want := range dsq {
		if got := PackedAt(words, i); got != want {
			t.Fatalf("PackedAt(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestPackedLen(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {5, 1}, {6, 1}, {7, 2}, {12, 2}, {13, 3},
	}
	for _, c := range cases {
		if got := PackedLen(c.n); got != c.want {
			t.Errorf("PackedLen(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPackCompressionRatio(t *testing.T) {
	// 6 residues per 4-byte word: ~1.5x fewer bytes than 1 byte/residue,
	// i.e. 6 residues in 4 bytes.
	n := 6000
	words := Pack(make([]byte, n))
	if got := 4 * len(words); got != 4000 {
		t.Errorf("packed %d residues into %d bytes, want 4000", n, got)
	}
}
