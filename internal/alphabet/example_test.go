package alphabet_test

import (
	"fmt"

	"hmmer3gpu/internal/alphabet"
)

// ExamplePack shows the paper's residue packing: six 5-bit residues
// per 32-bit word, with the sentinel flagging the padding slots.
func ExamplePack() {
	abc := alphabet.New()
	dsq, _ := abc.Digitize("ACDEFGH") // 7 residues -> 2 words
	words := alphabet.Pack(dsq)
	fmt.Println(len(words), abc.Textize(alphabet.Unpack(words, len(dsq))))
	fmt.Println(alphabet.PackedAt(words, 7) == alphabet.PackSentinel)
	// Output:
	// 2 ACDEFGH
	// true
}
