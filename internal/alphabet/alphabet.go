// Package alphabet implements the digital amino-acid alphabet used
// throughout the HMMER3 reproduction.
//
// The alphabet follows the paper's Figure 6: 20 standard amino acids,
// 6 degenerate/unusual symbols (B J Z O U X) and 3 gap-like symbols
// ('-' gap, '*' stop/end, '~' missing data), for 29 digital codes in
// total. Each residue therefore fits in 5 bits, which is what enables
// the residue-packing optimisation (six residues per 32-bit word) in
// the GPU path.
package alphabet

import (
	"fmt"
	"strings"
)

// Digital residue codes. Codes 0..19 are the canonical amino acids in
// HMMER's standard order "ACDEFGHIKLMNPQRSTVWY"; 20..25 are the
// degenerate symbols; 26..28 are the gap-like symbols.
const (
	// K is the number of canonical residues (match-state emission arity).
	K = 20
	// Kp is the total number of digital codes (canonical + degenerate + gaps).
	Kp = 29

	// CodeGap is the alignment gap symbol '-'.
	CodeGap = 26
	// CodeEnd is the in-sequence terminator '*'.
	CodeEnd = 27
	// CodeMissing is the missing-data symbol '~'.
	CodeMissing = 28

	// PackSentinel marks padding residues inside a packed word (the
	// paper assigns 31 to "wasteful residues" as a loop-termination flag).
	PackSentinel = 31
)

// Symbols lists the printable symbol for each digital code, indexed by code.
const Symbols = "ACDEFGHIKLMNPQRSTVWYBJZOUX-*~"

// degenerate residue expansions: which canonical residues each
// degenerate code may stand for.
var degenerates = map[byte][]byte{
	'B': {'D', 'N'},
	'J': {'I', 'L'},
	'Z': {'E', 'Q'},
	'O': {'K'}, // pyrrolysine, decoded as lysine
	'U': {'C'}, // selenocysteine, decoded as cysteine
	'X': nil,   // fully degenerate; nil means "all canonical residues"
}

// Alphabet is the digital amino-acid alphabet. It is immutable after
// construction; the zero value is not usable — use New.
type Alphabet struct {
	symToCode [256]int8 // -1 for invalid symbols
	expand    [Kp][]byte
	bg        [K]float64
}

// New returns the standard 29-code amino alphabet with the Robinson &
// Robinson background residue frequencies used by HMMER.
func New() *Alphabet {
	a := &Alphabet{}
	for i := range a.symToCode {
		a.symToCode[i] = -1
	}
	for code := 0; code < Kp; code++ {
		sym := Symbols[code]
		a.symToCode[sym] = int8(code)
		if sym >= 'A' && sym <= 'Z' {
			a.symToCode[sym+'a'-'A'] = int8(code)
		}
	}
	// '.' is accepted as a gap alias in alignment input.
	a.symToCode['.'] = CodeGap
	for code := 0; code < K; code++ {
		a.expand[code] = []byte{byte(code)}
	}
	for sym, exp := range degenerates {
		code := a.symToCode[sym]
		if exp == nil {
			all := make([]byte, K)
			for i := range all {
				all[i] = byte(i)
			}
			a.expand[code] = all
			continue
		}
		codes := make([]byte, len(exp))
		for i, s := range exp {
			codes[i] = byte(a.symToCode[s])
		}
		a.expand[code] = codes
	}
	a.bg = robinsonFrequencies
	return a
}

// robinsonFrequencies are the Robinson & Robinson (1991) amino-acid
// background frequencies in the alphabet's canonical order, as used by
// HMMER's default null model.
var robinsonFrequencies = [K]float64{
	0.0787945, // A
	0.0151600, // C
	0.0535222, // D
	0.0668298, // E
	0.0397062, // F
	0.0695071, // G
	0.0229198, // H
	0.0590092, // I
	0.0594422, // K
	0.0963728, // L
	0.0237718, // M
	0.0414386, // N
	0.0482904, // P
	0.0395639, // Q
	0.0540978, // R
	0.0683364, // S
	0.0540687, // T
	0.0673417, // V
	0.0114135, // W
	0.0304133, // Y
}

// Size returns the number of canonical residues (20).
func (a *Alphabet) Size() int { return K }

// SizeAll returns the total number of digital codes (29).
func (a *Alphabet) SizeAll() int { return Kp }

// Code returns the digital code for symbol s, or an error if s is not
// part of the alphabet.
func (a *Alphabet) Code(s byte) (byte, error) {
	c := a.symToCode[s]
	if c < 0 {
		return 0, fmt.Errorf("alphabet: symbol %q is not a valid amino-acid code", s)
	}
	return byte(c), nil
}

// Symbol returns the printable symbol for digital code c. Codes out of
// range render as '?'.
func (a *Alphabet) Symbol(c byte) byte {
	if int(c) >= Kp {
		return '?'
	}
	return Symbols[c]
}

// IsCanonical reports whether code c is one of the 20 standard residues.
func (a *Alphabet) IsCanonical(c byte) bool { return c < K }

// IsDegenerate reports whether code c is a degenerate residue symbol
// (B, J, Z, O, U or X).
func (a *Alphabet) IsDegenerate(c byte) bool { return c >= K && c < CodeGap }

// IsResidue reports whether code c denotes a residue (canonical or
// degenerate) rather than a gap-like symbol.
func (a *Alphabet) IsResidue(c byte) bool { return c < CodeGap }

// Expand returns the canonical residues a code may stand for. Canonical
// codes expand to themselves; X expands to all 20; gap-like codes
// expand to nothing.
func (a *Alphabet) Expand(c byte) []byte {
	if int(c) >= Kp {
		return nil
	}
	return a.expand[c]
}

// Background returns the background frequency of canonical residue c.
func (a *Alphabet) Background(c byte) float64 {
	if c >= K {
		return 0
	}
	return a.bg[c]
}

// Backgrounds returns a copy of the canonical background distribution.
func (a *Alphabet) Backgrounds() []float64 {
	out := make([]float64, K)
	copy(out, a.bg[:])
	return out
}

// Digitize converts a text sequence into digital codes. Whitespace is
// skipped; any other symbol outside the alphabet is an error.
func (a *Alphabet) Digitize(text string) ([]byte, error) {
	out := make([]byte, 0, len(text))
	for i := 0; i < len(text); i++ {
		s := text[i]
		if s == ' ' || s == '\t' || s == '\n' || s == '\r' {
			continue
		}
		c, err := a.Code(s)
		if err != nil {
			return nil, fmt.Errorf("alphabet: position %d: %w", i, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// Textize converts digital codes back to a printable string.
func (a *Alphabet) Textize(dsq []byte) string {
	var b strings.Builder
	b.Grow(len(dsq))
	for _, c := range dsq {
		b.WriteByte(a.Symbol(c))
	}
	return b.String()
}

// DegenerateScore returns the expected match score of a degenerate code
// given per-canonical-residue scores, weighting by background frequency
// (HMMER's marginalisation rule for degenerate residues).
func (a *Alphabet) DegenerateScore(c byte, scores []float64) float64 {
	exp := a.Expand(c)
	if len(exp) == 0 {
		return 0
	}
	if len(exp) == 1 {
		return scores[exp[0]]
	}
	var num, den float64
	for _, r := range exp {
		num += a.bg[r] * scores[r]
		den += a.bg[r]
	}
	if den == 0 {
		return 0
	}
	return num / den
}
