package alphabet

// Residue packing (paper Figure 6): each digital residue needs 5 bits
// (codes 0..28), so six consecutive residues are packed into a single
// 32-bit word, cutting global-memory traffic on the device by nearly 6x
// relative to one byte per residue. Unused slots in the final word are
// filled with PackSentinel (31), which doubles as a loop-termination
// flag in the kernels.

const (
	// ResiduesPerWord is the number of 5-bit residues packed per 32-bit word.
	ResiduesPerWord = 6
	residueBits     = 5
	residueMask     = (1 << residueBits) - 1
)

// PackedLen returns the number of 32-bit words needed to pack n residues.
func PackedLen(n int) int {
	return (n + ResiduesPerWord - 1) / ResiduesPerWord
}

// Pack compresses a digital sequence into 5-bit-per-residue words.
// Residue i lands in word i/6 at bit offset 5*(i%6) (LSB-first, matching
// the unpack order). Slack slots are set to PackSentinel.
func Pack(dsq []byte) []uint32 {
	words := make([]uint32, PackedLen(len(dsq)))
	for w := range words {
		var word uint32
		for s := 0; s < ResiduesPerWord; s++ {
			idx := w*ResiduesPerWord + s
			var r uint32 = PackSentinel
			if idx < len(dsq) {
				r = uint32(dsq[idx]) & residueMask
			}
			word |= r << (residueBits * s)
		}
		words[w] = word
	}
	return words
}

// Unpack expands packed words back into digital residues. n is the
// original residue count; sentinel slots beyond n are discarded.
func Unpack(words []uint32, n int) []byte {
	out := make([]byte, 0, n)
	for _, word := range words {
		for s := 0; s < ResiduesPerWord && len(out) < n; s++ {
			out = append(out, byte((word>>(residueBits*s))&residueMask))
		}
	}
	return out
}

// PackedAt extracts residue i from a packed sequence without unpacking
// the whole thing; this is the access pattern the GPU kernels use.
func PackedAt(words []uint32, i int) byte {
	w, s := i/ResiduesPerWord, i%ResiduesPerWord
	return byte((words[w] >> (residueBits * s)) & residueMask)
}
