package msa

import "hmmer3gpu/internal/alphabet"

// Henikoff & Henikoff (1994) position-based sequence weights: rows
// that belong to an over-represented subfamily share the credit their
// columns provide, so near-duplicate rows cannot dominate the counts.
// This is hmmbuild's default relative weighting.

// HenikoffWeights returns one weight per row, normalised so they sum
// to the row count (a uniform alignment gets all-1 weights).
func HenikoffWeights(m *MSA, abc *alphabet.Alphabet) []float64 {
	n := m.NumSeqs()
	weights := make([]float64, n)
	if n == 0 {
		return weights
	}
	for c := 0; c < m.Cols; c++ {
		// Count distinct residues and their multiplicities in column c.
		var counts [32]int
		kinds := 0
		for _, row := range m.Rows {
			code := row[c]
			if !abc.IsResidue(code) {
				continue
			}
			if counts[code] == 0 {
				kinds++
			}
			counts[code]++
		}
		if kinds == 0 {
			continue
		}
		// Each residue contributes 1/(kinds * multiplicity).
		for i, row := range m.Rows {
			code := row[c]
			if !abc.IsResidue(code) {
				continue
			}
			weights[i] += 1.0 / float64(kinds*counts[code])
		}
	}
	// Normalise to mean 1.
	var total float64
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		for i := range weights {
			weights[i] = 1
		}
		return weights
	}
	scale := float64(n) / total
	for i := range weights {
		weights[i] *= scale
	}
	return weights
}
