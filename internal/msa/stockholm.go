package msa

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"hmmer3gpu/internal/alphabet"
)

// Stockholm format support — Pfam's native alignment format. The
// reader handles the single-block and interleaved (multi-block) forms,
// per-file and per-sequence annotations (#=GF/#=GS/#=GR/#=GC lines are
// recognised and skipped), and the mandatory "//" terminator.

// ReadStockholm parses one Stockholm alignment.
func ReadStockholm(r io.Reader, abc *alphabet.Alphabet) (*MSA, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	msa := &MSA{}
	rows := map[string]int{} // name -> row index (for interleaved blocks)
	line := 0
	sawHeader := false
	sawEnd := false
	var id string

	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t\r")
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, "# STOCKHOLM"):
			sawHeader = true
			continue
		case text == "//":
			sawEnd = true
			goto done
		case strings.HasPrefix(text, "#=GF ID"):
			if f := strings.Fields(text); len(f) >= 3 {
				id = f[2]
			}
			continue
		case strings.HasPrefix(text, "#"):
			// Other annotation (GF/GS/GR/GC) — recognised, not needed.
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("stockholm: line %d: missing '# STOCKHOLM' header", line)
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("stockholm: line %d: expected 'name sequence', got %d fields", line, len(fields))
		}
		name, data := fields[0], fields[1]
		dsq, err := abc.Digitize(data)
		if err != nil {
			return nil, fmt.Errorf("stockholm: line %d: %w", line, err)
		}
		if idx, ok := rows[name]; ok {
			msa.Rows[idx] = append(msa.Rows[idx], dsq...)
		} else {
			rows[name] = len(msa.Rows)
			msa.Names = append(msa.Names, name)
			msa.Rows = append(msa.Rows, dsq)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
done:
	if !sawHeader {
		return nil, fmt.Errorf("stockholm: missing '# STOCKHOLM' header")
	}
	if !sawEnd {
		return nil, fmt.Errorf("stockholm: missing // terminator")
	}
	if len(msa.Rows) == 0 {
		return nil, fmt.Errorf("stockholm: no sequences found")
	}
	msa.Name = id
	msa.Cols = len(msa.Rows[0])
	for i, row := range msa.Rows {
		if len(row) != msa.Cols {
			return nil, fmt.Errorf("stockholm: row %q has %d columns, want %d",
				msa.Names[i], len(row), msa.Cols)
		}
	}
	return msa, nil
}

// WriteStockholm emits the alignment in single-block Stockholm form.
func WriteStockholm(w io.Writer, m *MSA, abc *alphabet.Alphabet) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# STOCKHOLM 1.0")
	if m.Name != "" {
		fmt.Fprintf(bw, "#=GF ID %s\n", m.Name)
	}
	width := 0
	for _, n := range m.Names {
		if len(n) > width {
			width = len(n)
		}
	}
	for i, row := range m.Rows {
		fmt.Fprintf(bw, "%-*s %s\n", width, m.Names[i], abc.Textize(row))
	}
	fmt.Fprintln(bw, "//")
	return bw.Flush()
}
