package msa

import (
	"strings"
	"testing"
)

// FuzzReadStockholm checks the Stockholm parser never panics and that
// accepted alignments are rectangular.
func FuzzReadStockholm(f *testing.F) {
	f.Add(stockholmSample)
	f.Add("# STOCKHOLM 1.0\nrow ACDE\n//\n")
	f.Add("# STOCKHOLM 1.0\n//\n")
	f.Add("")
	f.Add("#=GF ID x\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		m, err := ReadStockholm(strings.NewReader(in), abc)
		if err != nil {
			return
		}
		if m.NumSeqs() == 0 {
			t.Fatal("accepted empty alignment")
		}
		for _, row := range m.Rows {
			if len(row) != m.Cols {
				t.Fatal("accepted ragged alignment")
			}
		}
	})
}
