package msa

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/refimpl"
)

var abc = alphabet.New()

const smallMSA = `>row1 description ignored
ACDE-FG
>row2
ACDEQFG
>row3
AC-EQFG
`

func TestReadAlignedFasta(t *testing.T) {
	m, err := Read(strings.NewReader(smallMSA), abc)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSeqs() != 3 || m.Cols != 7 {
		t.Fatalf("got %d rows x %d cols", m.NumSeqs(), m.Cols)
	}
	if m.Names[0] != "row1" || m.Names[2] != "row3" {
		t.Errorf("names = %v", m.Names)
	}
	if m.Rows[0][4] != alphabet.CodeGap {
		t.Errorf("row1 col4 = %d, want gap", m.Rows[0][4])
	}
}

func TestReadRejectsRaggedRows(t *testing.T) {
	in := ">a\nACDE\n>b\nACD\n"
	if _, err := Read(strings.NewReader(in), abc); err == nil {
		t.Error("ragged alignment accepted")
	}
	if _, err := Read(strings.NewReader(""), abc); err == nil {
		t.Error("empty alignment accepted")
	}
	if _, err := Read(strings.NewReader("ACDE\n"), abc); err == nil {
		t.Error("headerless data accepted")
	}
}

func TestBuildBasicModel(t *testing.T) {
	m, err := Read(strings.NewReader(smallMSA), abc)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build("fam", m, abc, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	// All 7 columns have >= 2/3 residues, so all are consensus.
	if h.M != 7 {
		t.Fatalf("M = %d, want 7", h.M)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Column 1 is all-A: the match distribution must peak strongly on A.
	if h.Mat[1][0] < 0.5 {
		t.Errorf("Mat[1][A] = %g, want dominant", h.Mat[1][0])
	}
	// Column 5 (index 4) has a gap in row1 -> some D usage, so the
	// model must assign nonzero M->D probability somewhere upstream.
	var sawMD bool
	for k := 1; k < h.M; k++ {
		if h.T[k][hmm.TMD] > 0.05 {
			sawMD = true
		}
	}
	if !sawMD {
		t.Error("gapped column left no M->D signal")
	}
}

func TestBuildInsertColumns(t *testing.T) {
	// Middle column is residue-poor -> insert column; the model length
	// must be 4, not 5.
	in := ">a\nAC-DE\n>b\nAC-DE\n>c\nACWDE\n"
	m, err := Read(strings.NewReader(in), abc)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build("ins", m, abc, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h.M != 4 {
		t.Fatalf("M = %d, want 4 (one insert column)", h.M)
	}
	// The insertion happens after node 2, so M2->I2 got a count.
	if h.T[2][hmm.TMI] <= h.T[1][hmm.TMI] {
		t.Errorf("insert signal missing: TMI[2]=%g TMI[1]=%g", h.T[2][hmm.TMI], h.T[1][hmm.TMI])
	}
}

func TestBuildOptionValidation(t *testing.T) {
	m, _ := Read(strings.NewReader(smallMSA), abc)
	bad := []BuildOptions{
		{ConsensusFraction: 0, EmissionPrior: 0.1, TransitionPrior: 0.1},
		{ConsensusFraction: 1.5, EmissionPrior: 0.1, TransitionPrior: 0.1},
		{ConsensusFraction: 0.5, EmissionPrior: 0, TransitionPrior: 0.1},
		{ConsensusFraction: 0.5, EmissionPrior: 0.1, TransitionPrior: 0},
	}
	for i, o := range bad {
		if _, err := Build("bad", m, abc, o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// All-gap alignment has no consensus columns.
	g, err := Read(strings.NewReader(">a\n----\n>b\n----\n"), abc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build("gaps", g, abc, DefaultBuildOptions()); err == nil {
		t.Error("gap-only alignment accepted")
	}
}

// TestBuildRecoversSampledFamily is the round-trip soundness test:
// sample sequences from a known model, align them trivially (they are
// all full-length consensus paths), rebuild, and check that the
// rebuilt model scores fresh homologs far above random sequences.
func TestBuildRecoversSampledFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth, err := hmm.Random("truth", 50, abc,
		hmm.BuildParams{MatchIdentity: 0.8, GapOpen: 0.001, GapExtend: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// With GapOpen ~ 0 the samples are all length M: a trivial MSA.
	m := &MSA{Name: "fam", Cols: truth.M}
	for i := 0; i < 40; i++ {
		s := truth.SampleSequence(rng)
		if len(s) != truth.M {
			i--
			continue
		}
		m.Names = append(m.Names, "s")
		m.Rows = append(m.Rows, s)
	}
	rebuilt, err := Build("rebuilt", m, abc, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.M != truth.M {
		t.Fatalf("rebuilt M = %d, want %d", rebuilt.M, truth.M)
	}
	p := profile.Config(rebuilt)
	homolog := truth.SampleSequence(rng)
	random := make([]byte, len(homolog))
	for i := range random {
		random[i] = byte(rng.Intn(20))
	}
	p.SetLength(len(homolog))
	hs, rs := refimpl.Viterbi(p, homolog), refimpl.Viterbi(p, random)
	if hs < rs+10 {
		t.Errorf("rebuilt model separates poorly: homolog %g vs random %g", hs, rs)
	}
}

const stockholmSample = `# STOCKHOLM 1.0
#=GF ID TestFam
#=GS row1 AC Q12345
row1 ACDE-
row2 ACDEF

row1 FGHIK
row2 FGHIK
#=GC SS_cons xxxxx
//
`

func TestReadStockholmInterleaved(t *testing.T) {
	m, err := ReadStockholm(strings.NewReader(stockholmSample), abc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "TestFam" {
		t.Errorf("ID = %q", m.Name)
	}
	if m.NumSeqs() != 2 || m.Cols != 10 {
		t.Fatalf("got %d rows x %d cols, want 2 x 10", m.NumSeqs(), m.Cols)
	}
	if abc.Textize(m.Rows[0]) != "ACDE-FGHIK" {
		t.Errorf("row1 = %q", abc.Textize(m.Rows[0]))
	}
}

func TestStockholmRoundTrip(t *testing.T) {
	m, err := Read(strings.NewReader(smallMSA), abc)
	if err != nil {
		t.Fatal(err)
	}
	m.Name = "RT"
	var buf strings.Builder
	if err := WriteStockholm(&buf, m, abc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStockholm(strings.NewReader(buf.String()), abc)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSeqs() != m.NumSeqs() || back.Cols != m.Cols || back.Name != "RT" {
		t.Fatalf("round trip mismatch: %d x %d (%q)", back.NumSeqs(), back.Cols, back.Name)
	}
	for i := range m.Rows {
		if abc.Textize(back.Rows[i]) != abc.Textize(m.Rows[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestReadStockholmErrors(t *testing.T) {
	cases := map[string]string{
		"no header":     "row1 ACDE\n//\n",
		"no terminator": "# STOCKHOLM 1.0\nrow1 ACDE\n",
		"ragged":        "# STOCKHOLM 1.0\nrow1 ACDE\nrow2 ACD\n//\n",
		"empty":         "# STOCKHOLM 1.0\n//\n",
		"bad fields":    "# STOCKHOLM 1.0\nrow1 AC DE\n//\n",
	}
	for name, in := range cases {
		if _, err := ReadStockholm(strings.NewReader(in), abc); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestHenikoffWeightsDownweightDuplicates(t *testing.T) {
	// Three identical rows and one divergent row: the divergent row
	// must carry more weight than each duplicate.
	in := ">a\nAAAA\n>b\nAAAA\n>c\nAAAA\n>d\nWYWY\n"
	m, err := Read(strings.NewReader(in), abc)
	if err != nil {
		t.Fatal(err)
	}
	w := HenikoffWeights(m, abc)
	if len(w) != 4 {
		t.Fatalf("got %d weights", len(w))
	}
	if !(w[3] > w[0] && w[0] == w[1] && w[1] == w[2]) {
		t.Errorf("weights = %v; want the divergent row dominant", w)
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-4) > 1e-9 {
		t.Errorf("weights sum to %g, want 4", sum)
	}

	// A uniform alignment has uniform weights.
	u, err := Read(strings.NewReader(">a\nACDE\n>b\nWYWY\n"), abc)
	if err != nil {
		t.Fatal(err)
	}
	uw := HenikoffWeights(u, abc)
	if math.Abs(uw[0]-uw[1]) > 1e-9 {
		t.Errorf("two distinct rows should weigh equally: %v", uw)
	}
}

func TestBuildWeightsResistRedundancy(t *testing.T) {
	// 9 near-identical rows pushing consensus 'A' vs 3 distinct rows
	// supporting 'W' at column 1. Weighted building should give W more
	// probability than unweighted building does.
	var sb strings.Builder
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&sb, ">dup%d\nACCA\n", i)
	}
	sb.WriteString(">x\nWCCA\n>y\nWDCA\n>z\nWCEA\n")
	m, err := Read(strings.NewReader(sb.String()), abc)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Build("w", m, abc, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultBuildOptions()
	opts.NoWeights = true
	unweighted, err := Build("u", m, abc, opts)
	if err != nil {
		t.Fatal(err)
	}
	wCode, _ := abc.Code('W')
	if weighted.Mat[1][wCode] <= unweighted.Mat[1][wCode] {
		t.Errorf("weighting should lift the minority residue: %.3f vs %.3f",
			weighted.Mat[1][wCode], unweighted.Mat[1][wCode])
	}
}
