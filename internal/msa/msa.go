// Package msa implements multiple sequence alignments and profile-HMM
// construction from them (the hmmbuild substrate): aligned-FASTA
// input, consensus-column marking, weighted emission/transition
// counting with Laplace priors, and conversion to a Plan7 model.
package msa

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/hmm"
)

// MSA is a multiple sequence alignment in digital form. All rows have
// equal length; gap positions carry alphabet.CodeGap.
type MSA struct {
	Name string
	// Names holds one identifier per row.
	Names []string
	// Rows[i][c] is the digital code at row i, column c.
	Rows [][]byte
	// Cols is the alignment length.
	Cols int
}

// NumSeqs returns the number of aligned sequences.
func (m *MSA) NumSeqs() int { return len(m.Rows) }

// Read parses an aligned-FASTA alignment: same format as FASTA, but
// rows may contain gap symbols ('-' or '.') and must share one length.
func Read(r io.Reader, abc *alphabet.Alphabet) (*MSA, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	msa := &MSA{}
	var cur []byte
	var curName string
	line := 0
	flush := func() error {
		if curName == "" {
			return nil
		}
		if msa.Cols == 0 {
			msa.Cols = len(cur)
		} else if len(cur) != msa.Cols {
			return fmt.Errorf("msa: row %q has %d columns, want %d", curName, len(cur), msa.Cols)
		}
		if len(cur) == 0 {
			return fmt.Errorf("msa: row %q is empty", curName)
		}
		msa.Names = append(msa.Names, curName)
		msa.Rows = append(msa.Rows, cur)
		cur, curName = nil, ""
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			curName = strings.Fields(strings.TrimSpace(text[1:] + " "))[0]
			if curName == "" {
				return nil, fmt.Errorf("msa: line %d: empty row name", line)
			}
			continue
		}
		if curName == "" {
			return nil, fmt.Errorf("msa: line %d: data before first header", line)
		}
		dsq, err := abc.Digitize(text)
		if err != nil {
			return nil, fmt.Errorf("msa: line %d: %w", line, err)
		}
		cur = append(cur, dsq...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if msa.NumSeqs() == 0 {
		return nil, fmt.Errorf("msa: no rows found")
	}
	return msa, nil
}

// BuildOptions controls model construction.
type BuildOptions struct {
	// ConsensusFraction marks a column as a consensus (match) column
	// when at least this fraction of rows hold a residue there
	// (HMMER's rule-of-thumb default is 0.5).
	ConsensusFraction float64
	// EmissionPrior is the Laplace pseudocount added to each residue's
	// emission count.
	EmissionPrior float64
	// TransitionPrior is the pseudocount added to each transition.
	TransitionPrior float64
	// NoWeights disables Henikoff position-based sequence weighting
	// (enabled by default, as in hmmbuild).
	NoWeights bool
}

// DefaultBuildOptions returns standard construction parameters.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		ConsensusFraction: 0.5,
		EmissionPrior:     0.1,
		TransitionPrior:   0.1,
	}
}

// Build constructs a Plan7 model from the alignment: consensus columns
// become match states; residues in non-consensus columns count as
// insertions; gaps in consensus columns count as deletions. Degenerate
// residues distribute their count over their expansion weighted by the
// background.
func Build(name string, m *MSA, abc *alphabet.Alphabet, opts BuildOptions) (*hmm.Plan7, error) {
	if opts.ConsensusFraction <= 0 || opts.ConsensusFraction > 1 {
		return nil, fmt.Errorf("msa: consensus fraction %g out of (0,1]", opts.ConsensusFraction)
	}
	if opts.EmissionPrior <= 0 || opts.TransitionPrior <= 0 {
		return nil, fmt.Errorf("msa: priors must be positive")
	}

	// Mark consensus columns.
	isMatch := make([]bool, m.Cols)
	nMatch := 0
	for c := 0; c < m.Cols; c++ {
		residues := 0
		for _, row := range m.Rows {
			if abc.IsResidue(row[c]) {
				residues++
			}
		}
		if float64(residues) >= opts.ConsensusFraction*float64(m.NumSeqs()) {
			isMatch[c] = true
			nMatch++
		}
	}
	if nMatch == 0 {
		return nil, fmt.Errorf("msa: no consensus columns at fraction %g", opts.ConsensusFraction)
	}

	h, err := hmm.New(nMatch, abc)
	if err != nil {
		return nil, err
	}
	h.Name = name

	// Count emissions and transitions along each row's implied path
	// through the model.
	K := abc.Size()
	matCount := make([][]float64, nMatch+1)
	insCount := make([][]float64, nMatch+1)
	traCount := make([][]float64, nMatch+1)
	for k := 0; k <= nMatch; k++ {
		matCount[k] = make([]float64, K)
		insCount[k] = make([]float64, K)
		traCount[k] = make([]float64, hmm.NTrans)
	}
	addEmission := func(counts []float64, code byte, wgt float64) {
		exp := abc.Expand(code)
		if len(exp) == 1 {
			counts[exp[0]] += wgt
			return
		}
		var den float64
		for _, r := range exp {
			den += abc.Background(r)
		}
		for _, r := range exp {
			counts[r] += wgt * abc.Background(r) / den
		}
	}

	weights := make([]float64, m.NumSeqs())
	for i := range weights {
		weights[i] = 1
	}
	if !opts.NoWeights {
		weights = HenikoffWeights(m, abc)
	}

	for ri, row := range m.Rows {
		wgt := weights[ri]
		prev := stM // virtual begin node (k=0 acts as M0)
		k := 0
		for c := 0; c < m.Cols; c++ {
			code := row[c]
			hasRes := abc.IsResidue(code)
			if isMatch[c] {
				k++
				var curState state
				if hasRes {
					curState = stM
					addEmission(matCount[k], code, wgt)
				} else {
					curState = stD
				}
				countTransition(traCount, k-1, prev, curState, wgt)
				prev = curState
			} else if hasRes {
				// Insert at node k.
				if prev != stI {
					countTransition(traCount, k, prev, stI, wgt)
				} else {
					traCount[k][hmm.TII] += wgt
				}
				addEmission(insCount[k], code, wgt)
				prev = stI
			}
		}
		// Final transition into the implicit end (counted as M->M out
		// of the last node so normalisation closes).
		countTransition(traCount, nMatch, prev, stM, wgt)
	}

	// Normalise with priors.
	bg := abc.Backgrounds()
	for k := 1; k <= nMatch; k++ {
		total := 0.0
		for r := 0; r < K; r++ {
			matCount[k][r] += opts.EmissionPrior * bg[r] * float64(K)
			total += matCount[k][r]
		}
		for r := 0; r < K; r++ {
			h.Mat[k][r] = matCount[k][r] / total
		}
	}
	h.SetUniformInserts()
	for k := 0; k <= nMatch; k++ {
		normalizeGroup(h.T[k], traCount[k], opts.TransitionPrior,
			[]int{hmm.TMM, hmm.TMI, hmm.TMD})
		normalizeGroup(h.T[k], traCount[k], opts.TransitionPrior,
			[]int{hmm.TIM, hmm.TII})
		normalizeGroup(h.T[k], traCount[k], opts.TransitionPrior,
			[]int{hmm.TDM, hmm.TDD})
	}
	// Boundary conventions (see hmm.Plan7.Validate).
	h.T[0][hmm.TMI] = 0
	reweight2(h.T[0], hmm.TMM, hmm.TMD)
	h.T[nMatch][hmm.TMI], h.T[nMatch][hmm.TMD] = 0, 0
	h.T[nMatch][hmm.TMM] = 1
	h.T[nMatch][hmm.TIM], h.T[nMatch][hmm.TII] = 1, 0
	h.T[nMatch][hmm.TDM], h.T[nMatch][hmm.TDD] = 1, 0

	h.ComputeCompo()
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("msa: built model invalid: %w", err)
	}
	return h, nil
}

// state is a row's current Plan7 state class while threading the
// alignment through the model.
type state int

const (
	stM state = iota
	stI
	stD
)

// countTransition records a transition from state `from` at node k
// into the next node's state `to`, with the row's sequence weight.
func countTransition(tra [][]float64, k int, from, to state, wgt float64) {
	var idx int
	switch from {
	case stM:
		switch to {
		case stM:
			idx = hmm.TMM
		case stI:
			idx = hmm.TMI
		default:
			idx = hmm.TMD
		}
	case stI:
		switch to {
		case stM:
			idx = hmm.TIM
		case stI:
			idx = hmm.TII
		default:
			// I->D is not part of Plan7; count it as I->M (HMMER's
			// condensation of non-Plan7 paths).
			idx = hmm.TIM
		}
	default: // stD
		switch to {
		case stM:
			idx = hmm.TDM
		case stD:
			idx = hmm.TDD
		default:
			// D->I likewise condenses to D->M.
			idx = hmm.TDM
		}
	}
	tra[k][idx] += wgt
}

// normalizeGroup converts counts to probabilities over one transition
// group with Laplace priors.
func normalizeGroup(dst []float64, counts []float64, prior float64, idx []int) {
	total := 0.0
	for _, i := range idx {
		total += counts[i] + prior
	}
	for _, i := range idx {
		dst[i] = (counts[i] + prior) / total
	}
}

// reweight2 renormalises two entries to sum to 1.
func reweight2(t []float64, a, b int) {
	s := t[a] + t[b]
	if s <= 0 {
		t[a], t[b] = 1, 0
		return
	}
	t[a], t[b] = t[a]/s, t[b]/s
}
