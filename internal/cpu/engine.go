package cpu

import (
	"context"
	"runtime"
	"sync"

	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/seq"
)

// Engine runs the striped filters over whole databases with a worker
// pool, the multi-core half of the paper's baseline configuration
// (HMMER 3.0 "utilizing multi-core and SSE capabilities").
type Engine struct {
	// Workers is the number of concurrent workers; 0 means GOMAXPROCS.
	Workers int
}

func (e Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// MSVAll computes MSV filter scores for every sequence in db. Each
// worker owns a private MSVEngine; results land at the sequence's
// database index.
func (e Engine) MSVAll(mp *profile.MSVProfile, db *seq.Database) []FilterResult {
	out, _ := e.MSVAllContext(context.Background(), mp, db)
	return out
}

// MSVAllContext is MSVAll with cancellation: ctx is checked before
// every sequence, so a deadline or cancel stops the pass mid-database
// (important when the engine is the host fallback for a multi-hour
// streamed run). On cancellation the partial results are discarded and
// ctx's error returned.
func (e Engine) MSVAllContext(ctx context.Context, mp *profile.MSVProfile, db *seq.Database) ([]FilterResult, error) {
	out := make([]FilterResult, db.NumSeqs())
	if err := e.parallel(ctx, db.NumSeqs(), func() any {
		return NewMSVEngine(mp)
	}, func(state any, i int) {
		out[i] = state.(*MSVEngine).Filter(db.Seqs[i].Residues)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ViterbiAll computes Viterbi filter scores for every sequence in db.
func (e Engine) ViterbiAll(vp *profile.VitProfile, db *seq.Database) []FilterResult {
	out, _ := e.ViterbiAllContext(context.Background(), vp, db)
	return out
}

// ViterbiAllContext is ViterbiAll with per-sequence cancellation; see
// MSVAllContext.
func (e Engine) ViterbiAllContext(ctx context.Context, vp *profile.VitProfile, db *seq.Database) ([]FilterResult, error) {
	out := make([]FilterResult, db.NumSeqs())
	if err := e.parallel(ctx, db.NumSeqs(), func() any {
		return NewVitEngine(vp)
	}, func(state any, i int) {
		out[i] = state.(*VitEngine).Filter(db.Seqs[i].Residues)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// parallel fans n indexed tasks out over the worker pool. newState
// constructs per-worker private state (a filter engine). ctx is
// checked before every task; the first non-nil ctx.Err() stops all
// workers and is returned (a context.Background() caller pays one
// atomic load per task).
func (e Engine) parallel(ctx context.Context, n int, newState func() any, do func(state any, i int)) error {
	w := e.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		state := newState()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			do(state, i)
		}
		return nil
	}
	var next int64
	var mu sync.Mutex
	grab := func(batch int) (int, int) {
		mu.Lock()
		defer mu.Unlock()
		lo := int(next)
		if lo >= n {
			return n, n
		}
		hi := lo + batch
		if hi > n {
			hi = n
		}
		next = int64(hi)
		return lo, hi
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for wi := 0; wi < w; wi++ {
		go func() {
			defer wg.Done()
			state := newState()
			for {
				lo, hi := grab(32)
				if lo >= hi {
					return
				}
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						return
					}
					do(state, i)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
