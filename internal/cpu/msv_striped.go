package cpu

import (
	"math"

	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/satmath"
)

// MSVEngine is the striped 16-lane byte MSV filter — the CPU side of
// the paper's comparison ("16, 8-bit SIMD registers thus achieving
// 16-fold speedup on a commodity processor"). Build one per profile and
// reuse it across sequences; it is not safe for concurrent use (each
// worker goroutine owns its own engine).
type MSVEngine struct {
	mp *profile.MSVProfile
	q  int
	// rsc[r][q] is the striped emission cost vector for residue r.
	rsc [][]vecU8
	dp  []vecU8
}

// NewMSVEngine prepares the striped emission layout for mp.
func NewMSVEngine(mp *profile.MSVProfile) *MSVEngine {
	q := profile.StripedSegments(mp.M, MSVWidth)
	striped := mp.Striped(MSVWidth)
	e := &MSVEngine{mp: mp, q: q}
	e.rsc = make([][]vecU8, len(striped))
	for r := range striped {
		row := make([]vecU8, q)
		for qi := 0; qi < q; qi++ {
			copy(row[qi][:], striped[r][qi*MSVWidth:(qi+1)*MSVWidth])
		}
		e.rsc[r] = row
	}
	e.dp = make([]vecU8, q)
	return e
}

// Filter computes the MSV filter score of dsq. The scores are
// bit-identical to MSVFilterScalar.
func (e *MSVEngine) Filter(dsq []byte) FilterResult {
	mp := e.mp
	q := e.q
	dp := e.dp
	zero := splatU8(0)
	biasv := splatU8(mp.Bias)
	for i := range dp {
		dp[i] = zero
	}

	const base = uint8(profile.MSVBase)
	overflowAt := mp.OverflowThreshold()
	xJ := uint8(0)
	xB := satmath.SubU8(base, mp.TJB)

	for i := 0; i < len(dsq); i++ {
		rsc := e.rsc[dsq[i]]
		xEv := zero
		xBv := splatU8(satmath.SubU8(xB, mp.TBM))

		// The striped diagonal: the previous row's last stripe, lanes
		// shifted up one, feeds stripe 0.
		mpv := shiftU8(dp[q-1], 0)
		for qi := 0; qi < q; qi++ {
			sv := maxU8v(mpv, xBv)
			sv = addsU8v(sv, biasv)
			sv = subsU8v(sv, rsc[qi])
			xEv = maxU8v(xEv, sv)
			mpv = dp[qi]
			dp[qi] = sv
		}

		xE := hmaxU8(xEv)
		if xE >= overflowAt {
			return FilterResult{Score: math.Inf(1), Overflowed: true}
		}
		xJ = satmath.MaxU8(xJ, satmath.SubU8(xE, mp.TEC))
		xB = satmath.SubU8(satmath.MaxU8(base, xJ), mp.TJB)
	}
	return FilterResult{Score: mp.ScoreToNats(xJ)}
}
