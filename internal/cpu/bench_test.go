package cpu

import (
	"math/rand"
	"testing"
)

func BenchmarkStripedMSVFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	_, mp, _ := buildProfiles(b, 400, 250, 1)
	eng := NewMSVEngine(mp)
	dsq := randomSeq(rng, 250)
	b.SetBytes(int64(400 * 250))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Filter(dsq)
	}
}

func BenchmarkStripedVitFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	_, _, vp := buildProfiles(b, 400, 250, 2)
	eng := NewVitEngine(vp)
	dsq := randomSeq(rng, 250)
	b.SetBytes(int64(400 * 250))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Filter(dsq)
	}
}

func BenchmarkScalarMSVFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	_, mp, _ := buildProfiles(b, 400, 250, 3)
	dsq := randomSeq(rng, 250)
	b.SetBytes(int64(400 * 250))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MSVFilterScalar(mp, dsq)
	}
}

func BenchmarkScalarVitFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	_, _, vp := buildProfiles(b, 400, 250, 4)
	dsq := randomSeq(rng, 250)
	b.SetBytes(int64(400 * 250))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VitFilterScalar(vp, dsq)
	}
}
