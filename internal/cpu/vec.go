package cpu

import "hmmer3gpu/internal/satmath"

// Emulated SSE vectors. HMMER 3.0's filters use 128-bit registers: 16
// unsigned byte lanes for MSV, 8 signed word lanes for the Viterbi
// filter. The paper's CPU baseline is exactly this configuration.
const (
	// MSVWidth is the byte-lane count of the MSV filter vectors.
	MSVWidth = 16
	// VitWidth is the word-lane count of the Viterbi filter vectors.
	VitWidth = 8
)

type vecU8 [MSVWidth]uint8

type vecI16 [VitWidth]int16

func splatU8(x uint8) vecU8 {
	var v vecU8
	for i := range v {
		v[i] = x
	}
	return v
}

func splatI16(x int16) vecI16 {
	var v vecI16
	for i := range v {
		v[i] = x
	}
	return v
}

func maxU8v(a, b vecU8) vecU8 {
	for i := range a {
		a[i] = satmath.MaxU8(a[i], b[i])
	}
	return a
}

func addsU8v(a, b vecU8) vecU8 {
	for i := range a {
		a[i] = satmath.AddU8(a[i], b[i])
	}
	return a
}

func subsU8v(a, b vecU8) vecU8 {
	for i := range a {
		a[i] = satmath.SubU8(a[i], b[i])
	}
	return a
}

// shiftU8 moves every lane up by one (lane l takes lane l-1) and fills
// lane 0 with fill — the striped-diagonal wrap (SSE pslldq by one
// element).
func shiftU8(a vecU8, fill uint8) vecU8 {
	copy(a[1:], a[:MSVWidth-1])
	a[0] = fill
	return a
}

func hmaxU8(a vecU8) uint8 {
	m := a[0]
	for _, x := range a[1:] {
		m = satmath.MaxU8(m, x)
	}
	return m
}

func maxI16v(a, b vecI16) vecI16 {
	for i := range a {
		a[i] = satmath.MaxI16(a[i], b[i])
	}
	return a
}

func addsI16v(a, b vecI16) vecI16 {
	for i := range a {
		a[i] = satmath.AddI16(a[i], b[i])
	}
	return a
}

func shiftI16(a vecI16, fill int16) vecI16 {
	copy(a[1:], a[:VitWidth-1])
	a[0] = fill
	return a
}

func hmaxI16(a vecI16) int16 {
	m := a[0]
	for _, x := range a[1:] {
		m = satmath.MaxI16(m, x)
	}
	return m
}

// anyGtI16 reports whether any lane of a exceeds the matching lane of
// b (the SSE movemask test that terminates the lazy-F loop).
func anyGtI16(a, b vecI16) bool {
	for i := range a {
		if a[i] > b[i] {
			return true
		}
	}
	return false
}
