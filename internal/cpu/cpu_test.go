package cpu

import (
	"math"
	"math/rand"
	"testing"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/refimpl"
	"hmmer3gpu/internal/seq"
)

var abc = alphabet.New()

func randomSeq(rng *rand.Rand, n int) []byte {
	bg := abc.Backgrounds()
	out := make([]byte, n)
	for i := range out {
		u, acc := rng.Float64(), 0.0
		out[i] = byte(len(bg) - 1)
		for r, f := range bg {
			acc += f
			if u < acc {
				out[i] = byte(r)
				break
			}
		}
	}
	return out
}

func buildProfiles(t testing.TB, m, l int, seed int64) (*profile.Profile, *profile.MSVProfile, *profile.VitProfile) {
	t.Helper()
	h, err := hmm.Random("cpu", m, abc, hmm.DefaultBuildParams(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	p.SetLength(l)
	return p, profile.NewMSVProfile(p), profile.NewVitProfile(p)
}

// TestStripedMSVMatchesScalarExactly is the core equivalence test: the
// striped engine must reproduce the golden scalar filter bit for bit
// across model sizes that exercise every striping edge case.
func TestStripedMSVMatchesScalarExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{1, 2, 15, 16, 17, 31, 32, 33, 100, 257} {
		_, mp, _ := buildProfiles(t, m, 180, int64(m))
		eng := NewMSVEngine(mp)
		for trial := 0; trial < 8; trial++ {
			L := 1 + rng.Intn(400)
			mp.SetLength(L)
			dsq := randomSeq(rng, L)
			want := MSVFilterScalar(mp, dsq)
			got := eng.Filter(dsq)
			if got != want {
				t.Fatalf("M=%d L=%d: striped %+v != scalar %+v", m, L, got, want)
			}
		}
	}
}

// TestStripedVitMatchesScalarExactly does the same for the Viterbi
// filter, whose lazy-F loop is the risky part.
func TestStripedVitMatchesScalarExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []int{1, 2, 7, 8, 9, 16, 17, 63, 64, 65, 200} {
		_, _, vp := buildProfiles(t, m, 180, int64(100+m))
		eng := NewVitEngine(vp)
		for trial := 0; trial < 8; trial++ {
			L := 1 + rng.Intn(300)
			vp.SetLength(L)
			dsq := randomSeq(rng, L)
			want := VitFilterScalar(vp, dsq)
			got := eng.Filter(dsq)
			if got != want {
				t.Fatalf("M=%d L=%d: striped %+v != scalar %+v", m, L, got, want)
			}
		}
	}
}

// TestStripedVitGappyModels stresses lazy-F with models whose D-D
// paths are actually taken (high gap-open/extend probabilities).
func TestStripedVitGappyModels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	params := hmm.BuildParams{MatchIdentity: 0.7, GapOpen: 0.15, GapExtend: 0.9}
	for _, m := range []int{24, 40, 129} {
		h, err := hmm.Random("gappy", m, abc, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		p := profile.Config(h)
		p.SetLength(120)
		vp := profile.NewVitProfile(p)
		eng := NewVitEngine(vp)
		for trial := 0; trial < 10; trial++ {
			L := 20 + rng.Intn(200)
			vp.SetLength(L)
			dsq := randomSeq(rng, L)
			want := VitFilterScalar(vp, dsq)
			got, info := eng.FilterWithStats(dsq)
			if got != want {
				t.Fatalf("M=%d L=%d: striped %+v != scalar %+v (lazy-f %+v)", m, L, got, want, info)
			}
		}
		// Also score a sampled homolog — gappy homologs traverse D
		// states heavily.
		homolog := h.SampleSequence(rng)
		if len(homolog) == 0 {
			t.Fatal("empty homolog")
		}
		vp.SetLength(len(homolog))
		want := VitFilterScalar(vp, homolog)
		if got := eng.Filter(homolog); got != want {
			t.Fatalf("M=%d homolog: striped %+v != scalar %+v", m, got, want)
		}
	}
}

// TestMSVFilterApproximatesReference checks the quantised filter
// against the full-precision generic MSV within a quantisation-and-
// length-model tolerance.
func TestMSVFilterApproximatesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		m := 10 + rng.Intn(120)
		L := 60 + rng.Intn(340)
		p, mp, _ := buildProfiles(t, m, L, int64(trial+40))
		dsq := randomSeq(rng, L)
		res := MSVFilterScalar(mp, dsq)
		if res.Overflowed {
			continue
		}
		ref := refimpl.MSV(p, dsq)
		// Tolerance: per-cell quantisation noise (empirically well under
		// this) plus the flat -3.0 nat loop-cost correction error.
		tol := 1.0 + math.Abs(float64(L)*p.TLoop+3.0)
		if math.Abs(res.Score-ref) > tol {
			t.Errorf("trial %d (M=%d L=%d): filter %.3f vs reference %.3f (tol %.3f)",
				trial, m, L, res.Score, ref, tol)
		}
	}
}

// TestVitFilterApproximatesReference: the 16-bit filter has much finer
// resolution, so the tolerance is tighter.
func TestVitFilterApproximatesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		m := 10 + rng.Intn(120)
		L := 60 + rng.Intn(340)
		p, _, vp := buildProfiles(t, m, L, int64(trial+80))
		dsq := randomSeq(rng, L)
		res := VitFilterScalar(vp, dsq)
		if res.Overflowed {
			continue
		}
		ref := refimpl.Viterbi(p, dsq)
		// The flat -3.0 nat loop correction (HMMER's own heuristic)
		// overcorrects by the core-path share of L*TLoop; 1 nat covers
		// it comfortably while still catching structural bugs.
		tol := 1.0 + math.Abs(float64(L)*p.TLoop+3.0)
		if math.Abs(res.Score-ref) > tol {
			t.Errorf("trial %d (M=%d L=%d): filter %.4f vs reference %.4f (tol %.3f)",
				trial, m, L, res.Score, ref, tol)
		}
	}
}

// TestMSVOverflowOnStrongHit: a long, perfect repeat of the consensus
// must drive the 8-bit score into saturation, which the filter must
// report as +inf (pass), never as a bogus finite score.
func TestMSVOverflowOnStrongHit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cons := randomSeq(rng, 60)
	h, err := hmm.FromConsensus("hit", cons, abc,
		hmm.BuildParams{MatchIdentity: 0.9, GapOpen: 0.01, GapExtend: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	var hit []byte
	for r := 0; r < 20; r++ {
		hit = append(hit, cons...)
	}
	p.SetLength(len(hit))
	mp := profile.NewMSVProfile(p)
	res := MSVFilterScalar(mp, hit)
	if !res.Overflowed || !math.IsInf(res.Score, 1) {
		t.Errorf("expected overflow on strong hit, got %+v", res)
	}
	if got := NewMSVEngine(mp).Filter(hit); got != res {
		t.Errorf("striped overflow mismatch: %+v vs %+v", got, res)
	}
}

func TestHomologVsRandomSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, err := hmm.Random("sep", 90, abc, hmm.DefaultBuildParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	homolog := h.SampleSequence(rng)
	random := randomSeq(rng, len(homolog))
	p.SetLength(len(homolog))
	mp, vp := profile.NewMSVProfile(p), profile.NewVitProfile(p)

	hm, rm := MSVFilterScalar(mp, homolog), MSVFilterScalar(mp, random)
	hv, rv := VitFilterScalar(vp, homolog), VitFilterScalar(vp, random)
	if !hm.Overflowed && hm.Score < rm.Score+3 {
		t.Errorf("MSV separation too small: %+v vs %+v", hm, rm)
	}
	if !hv.Overflowed && hv.Score < rv.Score+3 {
		t.Errorf("Viterbi separation too small: %+v vs %+v", hv, rv)
	}
}

func TestEmptySequence(t *testing.T) {
	_, mp, vp := buildProfiles(t, 20, 100, 8)
	if res := MSVFilterScalar(mp, nil); math.IsInf(res.Score, 1) || math.IsNaN(res.Score) {
		t.Errorf("MSV on empty seq: %+v", res)
	}
	if res := VitFilterScalar(vp, nil); !math.IsInf(res.Score, 0) && math.IsNaN(res.Score) {
		t.Errorf("Viterbi on empty seq: %+v", res)
	}
	if got, want := NewMSVEngine(mp).Filter(nil), MSVFilterScalar(mp, nil); got != want {
		t.Errorf("striped MSV empty mismatch")
	}
	if got, want := NewVitEngine(vp).Filter(nil), VitFilterScalar(vp, nil); got != want {
		t.Errorf("striped Vit empty mismatch")
	}
}

func TestDegenerateResiduesScored(t *testing.T) {
	_, mp, vp := buildProfiles(t, 30, 100, 9)
	rng := rand.New(rand.NewSource(10))
	dsq := randomSeq(rng, 100)
	for i := 0; i < 10; i++ {
		dsq[rng.Intn(len(dsq))] = byte(20 + rng.Intn(6)) // B J Z O U X
	}
	sm := MSVFilterScalar(mp, dsq)
	sv := VitFilterScalar(vp, dsq)
	if math.IsNaN(sm.Score) || math.IsNaN(sv.Score) {
		t.Error("degenerate residues produced NaN")
	}
	if got := NewMSVEngine(mp).Filter(dsq); got != sm {
		t.Error("striped MSV degenerate mismatch")
	}
	if got := NewVitEngine(vp).Filter(dsq); got != sv {
		t.Error("striped Vit degenerate mismatch")
	}
}

func TestLazyFRarelyIterates(t *testing.T) {
	// For a typical model the iterated lazy-F passes should be a small
	// fraction of rows — the premise of the paper's §III-B.
	rng := rand.New(rand.NewSource(11))
	_, _, vp := buildProfiles(t, 100, 200, 12)
	eng := NewVitEngine(vp)
	var total LazyFInfo
	for trial := 0; trial < 20; trial++ {
		dsq := randomSeq(rng, 200)
		_, info := eng.FilterWithStats(dsq)
		total.Rows += info.Rows
		total.RowsIterated += info.RowsIterated
		total.IteratedPasses += info.IteratedPasses
	}
	if total.Rows == 0 {
		t.Fatal("no rows processed")
	}
	frac := float64(total.RowsIterated) / float64(total.Rows)
	if frac > 0.2 {
		t.Errorf("lazy-F iterated on %.1f%% of rows; expected it to be rare", frac*100)
	}
}

func TestEngineParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	_, mp, vp := buildProfiles(t, 64, 150, 14)
	db := seq.NewDatabase("par")
	for i := 0; i < 200; i++ {
		db.Add(&seq.Sequence{Name: "s", Residues: randomSeq(rng, 30+rng.Intn(250))})
	}
	serialM := Engine{Workers: 1}.MSVAll(mp, db)
	parM := Engine{Workers: 8}.MSVAll(mp, db)
	serialV := Engine{Workers: 1}.ViterbiAll(vp, db)
	parV := Engine{Workers: 8}.ViterbiAll(vp, db)
	for i := range serialM {
		if serialM[i] != parM[i] {
			t.Fatalf("MSV seq %d: parallel %+v != serial %+v", i, parM[i], serialM[i])
		}
		if serialV[i] != parV[i] {
			t.Fatalf("Vit seq %d: parallel %+v != serial %+v", i, parV[i], serialV[i])
		}
	}
}

func TestVecHelpers(t *testing.T) {
	a := vecU8{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	s := shiftU8(a, 99)
	if s[0] != 99 || s[1] != 1 || s[15] != 15 {
		t.Errorf("shiftU8 = %v", s)
	}
	if hmaxU8(a) != 16 {
		t.Errorf("hmaxU8 = %d", hmaxU8(a))
	}
	b := vecI16{-5, 3, 0, -32768, 7, 2, 1, 0}
	if hmaxI16(b) != 7 {
		t.Errorf("hmaxI16 = %d", hmaxI16(b))
	}
	sb := shiftI16(b, -32768)
	if sb[0] != -32768 || sb[1] != -5 || sb[7] != 1 {
		t.Errorf("shiftI16 = %v", sb)
	}
	if !anyGtI16(vecI16{0, 0, 0, 0, 0, 0, 0, 1}, vecI16{0, 0, 0, 0, 0, 0, 0, 0}) {
		t.Error("anyGtI16 missed a greater lane")
	}
	if anyGtI16(b, b) {
		t.Error("anyGtI16 false positive")
	}
}

func TestEngineEmptyDatabase(t *testing.T) {
	_, mp, vp := buildProfiles(t, 20, 100, 60)
	db := seq.NewDatabase("empty")
	if got := (Engine{}).MSVAll(mp, db); len(got) != 0 {
		t.Errorf("MSVAll on empty db returned %d results", len(got))
	}
	if got := (Engine{}).ViterbiAll(vp, db); len(got) != 0 {
		t.Errorf("ViterbiAll on empty db returned %d results", len(got))
	}
}

func TestScoresInvariantUnderDatabasePermutation(t *testing.T) {
	// Scoring is per-sequence: permuting the database must permute the
	// results identically (no cross-sequence state leaks through the
	// reused engine buffers).
	rng := rand.New(rand.NewSource(61))
	_, mp, vp := buildProfiles(t, 48, 150, 62)
	db := seq.NewDatabase("perm")
	for i := 0; i < 60; i++ {
		db.Add(&seq.Sequence{Name: "s", Residues: randomSeq(rng, 20+rng.Intn(200))})
	}
	fwd := Engine{Workers: 1}.MSVAll(mp, db)
	fwdV := Engine{Workers: 1}.ViterbiAll(vp, db)

	perm := rng.Perm(db.NumSeqs())
	shuffled := seq.NewDatabase("perm2")
	for _, p := range perm {
		shuffled.Add(db.Seqs[p])
	}
	got := Engine{Workers: 1}.MSVAll(mp, shuffled)
	gotV := Engine{Workers: 1}.ViterbiAll(vp, shuffled)
	for i, p := range perm {
		if got[i] != fwd[p] || gotV[i] != fwdV[p] {
			t.Fatalf("permutation changed scores at %d", i)
		}
	}
}

func TestEngineFewerTasksThanWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	_, mp, _ := buildProfiles(t, 20, 100, 64)
	db := seq.NewDatabase("small")
	for i := 0; i < 3; i++ {
		db.Add(&seq.Sequence{Name: "s", Residues: randomSeq(rng, 50)})
	}
	got := Engine{Workers: 16}.MSVAll(mp, db)
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	for i, s := range db.Seqs {
		if want := MSVFilterScalar(mp, s.Residues); got[i] != want {
			t.Fatalf("seq %d mismatch", i)
		}
	}
}
