// Package cpu implements the HMMER 3.0 CPU baseline the paper compares
// against: the 8-bit saturating MSV filter and the 16-bit P7Viterbi
// filter in Farrar-striped SIMD form (vector lanes emulated on byte and
// word slices), plus a multicore database driver.
//
// The package also provides scalar "golden" filters that evaluate the
// same quantised recurrences sequentially. The golden filters define
// the exact integer semantics of the two algorithms; the striped CPU
// engines here and the warp-synchronous GPU kernels in internal/gpu
// must (and do, see the tests) reproduce their scores bit-for-bit.
package cpu

import (
	"math"

	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/satmath"
)

// FilterResult is the outcome of one filter invocation.
type FilterResult struct {
	// Score is the bit-score in nats. +Inf when Overflowed.
	Score float64
	// Overflowed reports that the quantised score saturated; the true
	// score is at least as large, and the sequence must be treated as
	// passing the filter.
	Overflowed bool
}

// MSVFilterScalar computes the quantised MSV filter score of dsq by
// direct sequential evaluation (paper Figure 2 model, Algorithm 1
// semantics). It is the golden reference for the vectorised engines.
func MSVFilterScalar(mp *profile.MSVProfile, dsq []byte) FilterResult {
	m := mp.M
	mmx := make([]uint8, m+1) // 0 is the -inf floor in the offset domain

	const base = uint8(profile.MSVBase)
	overflowAt := mp.OverflowThreshold()
	xJ := uint8(0)
	xB := satmath.SubU8(base, mp.TJB)

	for i := 0; i < len(dsq); i++ {
		cost := mp.MatCost[dsq[i]]
		xE := uint8(0)
		xBtbm := satmath.SubU8(xB, mp.TBM)
		prevDiag := uint8(0) // mmx[0] of the previous row
		for k := 1; k <= m; k++ {
			mpv := prevDiag
			prevDiag = mmx[k]
			sv := satmath.MaxU8(mpv, xBtbm)
			sv = satmath.AddU8(sv, mp.Bias)
			sv = satmath.SubU8(sv, cost[k])
			mmx[k] = sv
			xE = satmath.MaxU8(xE, sv)
		}
		if xE >= overflowAt {
			return FilterResult{Score: math.Inf(1), Overflowed: true}
		}
		xEtec := satmath.SubU8(xE, mp.TEC)
		xJ = satmath.MaxU8(xJ, xEtec)
		xB = satmath.SubU8(satmath.MaxU8(base, xJ), mp.TJB)
	}
	return FilterResult{Score: mp.ScoreToNats(xJ)}
}

// VitFilterScalar computes the quantised P7Viterbi filter score of dsq
// by direct sequential evaluation, with the within-row D-D recurrence
// resolved serially (paper Figure 3 model, Algorithm 2 semantics). It
// is the golden reference for the vectorised engines.
func VitFilterScalar(vp *profile.VitProfile, dsq []byte) FilterResult {
	m := vp.M
	neg := satmath.NegInf16
	mmx := make([]int16, m+1)
	imx := make([]int16, m+1)
	dmx := make([]int16, m+1)
	for k := 0; k <= m; k++ {
		mmx[k], imx[k], dmx[k] = neg, neg, neg
	}
	xJ, xC := neg, neg
	xB := vp.TMove // B(0) = N(0) + move; N stays 0 (loop cost approximated as 0)

	for i := 0; i < len(dsq); i++ {
		msc := vp.MatUnit[dsq[i]]
		xE := neg
		prevM, prevI, prevD := neg, neg, neg // row i-1 at k-1
		var newPrevM int16 = neg             // row i at k-1, for the D recurrence
		var dcv int16 = neg                  // D(i, k-1) running value
		for k := 1; k <= m; k++ {
			curM, curI, curD := mmx[k], imx[k], dmx[k]

			mv := satmath.MaxI16(
				satmath.MaxI16(satmath.AddI16(prevM, vp.TMM[k-1]), satmath.AddI16(prevI, vp.TIM[k-1])),
				satmath.MaxI16(satmath.AddI16(prevD, vp.TDM[k-1]), satmath.AddI16(xB, vp.TBM)),
			)
			mv = satmath.AddI16(mv, msc[k])

			iv := satmath.MaxI16(
				satmath.AddI16(curM, vp.TMI[k]),
				satmath.AddI16(curI, vp.TII[k]),
			)

			dv := satmath.MaxI16(
				satmath.AddI16(newPrevM, vp.TMD[k-1]),
				satmath.AddI16(dcv, vp.TDD[k-1]),
			)

			mmx[k], imx[k], dmx[k] = mv, iv, dv
			xE = satmath.MaxI16(xE, mv)

			prevM, prevI, prevD = curM, curI, curD
			newPrevM, dcv = mv, dv
		}
		xE = satmath.MaxI16(xE, dmx[m]) // local exit from D_M

		xJ = satmath.MaxI16(xJ, satmath.AddI16(xE, vp.TEJ))
		xC = satmath.MaxI16(xC, satmath.AddI16(xE, vp.TEC))
		xB = satmath.AddI16(satmath.MaxI16(0, xJ), vp.TMove)
	}
	if profile.Overflowed(xC) {
		return FilterResult{Score: math.Inf(1), Overflowed: true}
	}
	return FilterResult{Score: vp.ScoreToNats(xC)}
}
