package cpu

import (
	"math"

	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/satmath"
)

// VitEngine is the striped 8-lane word P7Viterbi filter with Farrar's
// lazy-F treatment of the D-D chain — HMMER 3.0's ViterbiFilter, the
// second stage of the paper's CPU baseline. Not safe for concurrent
// use; each worker owns its own engine.
type VitEngine struct {
	vp *profile.VitProfile
	q  int

	// msc[r][q] is the striped emission vector for residue r
	// (lane l of stripe q holds node q + l*Q + 1).
	msc [][]vecI16
	// Source-aligned transition vectors for the M update: lane l of
	// stripe q holds the transition out of node q + l*Q (= k-1).
	tMM, tIM, tDM []vecI16
	// Same-node transition vectors: lane l of stripe q holds the
	// transition out of node q + l*Q + 1 (= k).
	tMI, tII, tMD, tDD []vecI16

	mmx, imx, dmx []vecI16

	// qM and lM are the striped coordinates of node M (for the D_M
	// local exit contribution to E).
	qM, lM int
}

// LazyFInfo counts the work done by the lazy-F correction loop over
// one sequence: how many DP rows needed iterated correction passes
// beyond the mandatory completion sweep, and how many such passes ran
// in total. The paper's §III-B argument — that the D-D path is rarely
// taken, so lazy evaluation beats unconditional prefix sums — is
// quantified by these counters (see the lazyf ablation benchmark).
type LazyFInfo struct {
	Rows           int // DP rows processed
	RowsIterated   int // rows that needed >= 1 iterated pass
	IteratedPasses int // total iterated passes
}

// NewVitEngine prepares the striped layouts for vp.
func NewVitEngine(vp *profile.VitProfile) *VitEngine {
	q := profile.StripedSegments(vp.M, VitWidth)
	e := &VitEngine{vp: vp, q: q}

	neg := satmath.NegInf16
	stripeByTarget := func(src []int16) []vecI16 {
		out := make([]vecI16, q)
		for qi := 0; qi < q; qi++ {
			for l := 0; l < VitWidth; l++ {
				k := qi + l*q + 1
				if k <= vp.M {
					out[qi][l] = src[k]
				} else {
					out[qi][l] = neg
				}
			}
		}
		return out
	}
	stripeBySource := func(src []int16) []vecI16 {
		out := make([]vecI16, q)
		for qi := 0; qi < q; qi++ {
			for l := 0; l < VitWidth; l++ {
				k := qi + l*q + 1
				if k <= vp.M {
					out[qi][l] = src[k-1]
				} else {
					out[qi][l] = neg
				}
			}
		}
		return out
	}

	e.msc = make([][]vecI16, len(vp.MatUnit))
	for r := range vp.MatUnit {
		e.msc[r] = stripeByTarget(vp.MatUnit[r])
	}
	e.tMM = stripeBySource(vp.TMM)
	e.tIM = stripeBySource(vp.TIM)
	e.tDM = stripeBySource(vp.TDM)
	e.tMI = stripeByTarget(vp.TMI)
	e.tII = stripeByTarget(vp.TII)
	e.tMD = stripeByTarget(vp.TMD)
	e.tDD = stripeByTarget(vp.TDD)

	e.mmx = make([]vecI16, q)
	e.imx = make([]vecI16, q)
	e.dmx = make([]vecI16, q)

	e.qM = (vp.M - 1) % q
	e.lM = (vp.M - 1) / q
	return e
}

// Filter computes the Viterbi filter score of dsq. The scores are
// bit-identical to VitFilterScalar.
func (e *VitEngine) Filter(dsq []byte) FilterResult {
	res, _ := e.run(dsq)
	return res
}

// FilterWithStats computes the filter score and reports lazy-F
// correction statistics for the sequence.
func (e *VitEngine) FilterWithStats(dsq []byte) (FilterResult, LazyFInfo) {
	return e.run(dsq)
}

func (e *VitEngine) run(dsq []byte) (FilterResult, LazyFInfo) {
	vp := e.vp
	q := e.q
	neg := satmath.NegInf16
	negv := splatI16(neg)
	var info LazyFInfo
	for i := 0; i < q; i++ {
		e.mmx[i], e.imx[i], e.dmx[i] = negv, negv, negv
	}

	xJ, xC := neg, neg
	xB := vp.TMove

	for i := 0; i < len(dsq); i++ {
		msc := e.msc[dsq[i]]
		xEv := negv
		xBv := splatI16(satmath.AddI16(xB, vp.TBM))

		mpv := shiftI16(e.mmx[q-1], neg)
		ipv := shiftI16(e.imx[q-1], neg)
		dpv := shiftI16(e.dmx[q-1], neg)
		dcv := negv

		for qi := 0; qi < q; qi++ {
			oldM, oldI, oldD := e.mmx[qi], e.imx[qi], e.dmx[qi]

			sv := maxI16v(
				maxI16v(addsI16v(mpv, e.tMM[qi]), addsI16v(ipv, e.tIM[qi])),
				maxI16v(addsI16v(dpv, e.tDM[qi]), xBv),
			)
			sv = addsI16v(sv, msc[qi])
			xEv = maxI16v(xEv, sv)

			iv := maxI16v(addsI16v(oldM, e.tMI[qi]), addsI16v(oldI, e.tII[qi]))

			newD := dcv
			dcv = maxI16v(addsI16v(sv, e.tMD[qi]), addsI16v(newD, e.tDD[qi]))

			e.mmx[qi], e.imx[qi], e.dmx[qi] = sv, iv, newD
			mpv, ipv, dpv = oldM, oldI, oldD
		}

		// Mandatory completion sweep: the D-D chain wraps from the last
		// stripe into lane l+1 of stripe 0.
		dcv = shiftI16(dcv, neg)
		for qi := 0; qi < q; qi++ {
			e.dmx[qi] = maxI16v(e.dmx[qi], dcv)
			dcv = addsI16v(e.dmx[qi], e.tDD[qi])
		}

		// Lazy-F: iterate only while the wrapped chain still improves
		// some D cell. The chain decays monotonically (D-D costs are
		// negative), so as soon as one stripe shows no improvement the
		// whole remaining chain is dominated and we can stop. At most
		// VitWidth-1 iterated passes can ever be needed; in practice
		// rows almost never need any — that rarity is the premise of
		// the paper's parallel Lazy-F.
		info.Rows++
		rowPasses := 0
	lazyf:
		for pass := 0; pass < VitWidth-1; pass++ {
			dcv = shiftI16(dcv, neg)
			for qi := 0; qi < q; qi++ {
				if !anyGtI16(dcv, e.dmx[qi]) {
					break lazyf
				}
				e.dmx[qi] = maxI16v(e.dmx[qi], dcv)
				dcv = addsI16v(e.dmx[qi], e.tDD[qi])
				if qi == 0 {
					rowPasses++
				}
			}
		}
		if rowPasses > 0 {
			info.RowsIterated++
			info.IteratedPasses += rowPasses
		}

		xE := hmaxI16(xEv)
		xE = satmath.MaxI16(xE, e.dmx[e.qM][e.lM]) // local exit from D_M

		xJ = satmath.MaxI16(xJ, satmath.AddI16(xE, vp.TEJ))
		xC = satmath.MaxI16(xC, satmath.AddI16(xE, vp.TEC))
		xB = satmath.AddI16(satmath.MaxI16(0, xJ), vp.TMove)
	}
	if profile.Overflowed(xC) {
		return FilterResult{Score: math.Inf(1), Overflowed: true}, info
	}
	return FilterResult{Score: vp.ScoreToNats(xC)}, info
}
