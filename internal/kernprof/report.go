package kernprof

// Text renderers behind cmd/hmmprof: the kernel summary + occupancy
// table (with automatic detection of the paper's shared-config
// occupancy collapse across a model-size sweep) and the folded-stack
// stall flamegraph. All output is deterministic — launches render in
// collection order, groups sort lexically — so golden tests can pin
// the format.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"hmmer3gpu/internal/obs"
)

// labelString renders a label set deterministically: "db=sp m=400".
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(labels))
	for _, k := range sortedLabelKeys(labels) {
		parts = append(parts, k+"="+labels[k])
	}
	return strings.Join(parts, " ")
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// WriteReport renders the full text report: header, per-kernel
// summary, the occupancy table with collapse notes, and stall
// attribution.
func (p *Profile) WriteReport(w io.Writer) error {
	fmt.Fprintf(w, "kernprof profile: %d launches\n\n", len(p.Launches))
	if len(p.Launches) == 0 {
		return nil
	}

	// Per-kernel aggregate summary, in first-seen order.
	type kagg struct {
		kernel   string
		launches int
		warps    int64
		instr    int64
		laneAct  float64
		laneTot  float64
		replays  int64
		sharedAc int64
		reqByt   float64
		movByt   float64
	}
	var order []string
	aggs := make(map[string]*kagg)
	for i := range p.Launches {
		l := &p.Launches[i]
		a, ok := aggs[l.Kernel]
		if !ok {
			a = &kagg{kernel: l.Kernel}
			aggs[l.Kernel] = a
			order = append(order, l.Kernel)
		}
		a.launches++
		a.warps += l.Counters["warps_executed"]
		a.instr += l.Counters["alu_ops"] + l.Derived.SharedAccesses +
			l.Derived.GlobalTransactions + l.Derived.ShuffleOps + l.Derived.VoteOps
		a.laneAct += float64(l.Counters["active_lane_slots"])
		a.laneTot += float64(l.Counters["total_lane_slots"])
		a.replays += l.Counters["bank_conflict_replays"]
		a.sharedAc += l.Derived.SharedAccesses
		a.reqByt += float64(l.Counters["global_requested_bytes"])
		a.movByt += float64(l.Counters["global_bytes"] + l.Counters["cached_bytes"])
	}
	fmt.Fprintln(w, "== kernels ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel\tlaunches\twarps\tinstructions\twarp-eff\tbank-replay/access\tcoalescing")
	for _, k := range order {
		a := aggs[k]
		warpEff := 1.0
		if a.laneTot > 0 {
			warpEff = a.laneAct / a.laneTot
		}
		replayRate := 0.0
		if a.sharedAc > 0 {
			replayRate = float64(a.replays) / float64(a.sharedAc)
		}
		coal := 1.0
		if a.movByt > 0 {
			coal = a.reqByt / a.movByt
			if coal > 1 {
				coal = 1
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%.3f\t%s\n",
			a.kernel, a.launches, a.warps, a.instr, pct(warpEff), replayRate, pct(coal))
	}
	tw.Flush()
	fmt.Fprintln(w)

	if err := p.WriteOccupancy(w); err != nil {
		return err
	}

	fmt.Fprintln(w, "== stall attribution (cycles) ==")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel\tcompute\tmemory\tbarrier\tscheduler-wait")
	type stall struct{ compute, memory, barrier, sched int64 }
	stalls := make(map[string]*stall)
	for i := range p.Launches {
		l := &p.Launches[i]
		s, ok := stalls[l.Kernel]
		if !ok {
			s = &stall{}
			stalls[l.Kernel] = s
		}
		s.compute += l.Stalls.ComputeCycles
		s.memory += l.Stalls.MemoryCycles
		s.barrier += l.Stalls.BarrierCycles
		s.sched += l.Stalls.SchedulerWaitCycles
	}
	for _, k := range order {
		s := stalls[k]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", k, s.compute, s.memory, s.barrier, s.sched)
	}
	tw.Flush()

	// Block-duration percentiles per kernel, when collected.
	var havePcts bool
	for i := range p.Launches {
		if p.Launches[i].BlockCycles != nil && p.Launches[i].BlockCycles.Count > 0 {
			havePcts = true
			break
		}
	}
	if havePcts {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "== block cycles (sampled) ==")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "kernel\tblocks\tp50\tp99\tmean")
		merged := make(map[string]*histAgg)
		for i := range p.Launches {
			l := &p.Launches[i]
			if l.BlockCycles == nil {
				continue
			}
			m, ok := merged[l.Kernel]
			if !ok {
				m = &histAgg{}
				merged[l.Kernel] = m
			}
			m.add(l)
		}
		for _, k := range order {
			if m := merged[k]; m != nil && m.hist != nil && m.hist.Count > 0 {
				fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.0f\n",
					k, m.hist.Count, m.hist.Quantile(0.5), m.hist.Quantile(0.99), m.hist.Mean())
			}
		}
		tw.Flush()
	}
	return nil
}

type histAgg struct{ hist *obs.Hist }

func (h *histAgg) add(l *LaunchRecord) {
	if h.hist == nil {
		h.hist = obs.NewHist(l.BlockCycles.Buckets)
	}
	h.hist.Merge(l.BlockCycles)
}

// WriteOccupancy renders the per-launch occupancy table and appends a
// note for every detected shared-config-style occupancy collapse: a
// group of launches differing only in their "m" label whose predicted
// occupancy drops by ≥ 1.5× between adjacent model sizes (the paper's
// crossover at model ≈ 1002).
func (p *Profile) WriteOccupancy(w io.Writer) error {
	fmt.Fprintln(w, "== occupancy ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel\tlabels\tgrid\tshared\tregs\tpredicted\tachieved\tactive\tlimiter")
	for i := range p.Launches {
		l := &p.Launches[i]
		fmt.Fprintf(tw, "%s\t%s\t%dx%d\t%dB\t%d\t%s\t%s\t%s\t%s\n",
			l.Kernel, labelString(l.Labels), l.Blocks, l.WarpsPerBlock,
			l.SharedBytes, l.RegsPerThread,
			pct(l.Predicted.Fraction), pct(l.Achieved.Fraction),
			pct(l.Achieved.ActiveFraction), l.Predicted.Limiter)
	}
	tw.Flush()

	for _, note := range p.collapseNotes() {
		fmt.Fprintln(w, note)
	}
	fmt.Fprintln(w)
	return nil
}

// collapseNotes scans model-size sweeps for occupancy collapses.
func (p *Profile) collapseNotes() []string {
	type point struct {
		m   int
		occ float64
	}
	groups := make(map[string][]point)
	var keys []string
	for i := range p.Launches {
		l := &p.Launches[i]
		mstr, ok := l.Labels["m"]
		if !ok {
			continue
		}
		m, err := strconv.Atoi(mstr)
		if err != nil {
			continue
		}
		rest := make(map[string]string, len(l.Labels))
		for k, v := range l.Labels {
			if k != "m" {
				rest[k] = v
			}
		}
		key := l.Kernel + "[" + labelString(rest) + "]"
		if _, seen := groups[key]; !seen {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], point{m: m, occ: l.Predicted.Fraction})
	}
	sort.Strings(keys)
	var notes []string
	for _, key := range keys {
		pts := groups[key]
		sort.Slice(pts, func(i, j int) bool { return pts[i].m < pts[j].m })
		for i := 1; i < len(pts); i++ {
			prev, cur := pts[i-1], pts[i]
			if prev.m == cur.m || cur.occ <= 0 {
				continue
			}
			if prev.occ >= cur.occ*1.5 {
				notes = append(notes, fmt.Sprintf(
					"note: occupancy collapse in %s: %s at M=%d -> %s at M=%d",
					key, pct(prev.occ), prev.m, pct(cur.occ), cur.m))
			}
		}
	}
	return notes
}

// WriteFlame renders the stall attribution as folded stacks
// (flamegraph.pl / speedscope input): one stack per kernel and cause,
// weighted in cycles.
func (p *Profile) WriteFlame(w io.Writer) error {
	type stall struct{ compute, memory, barrier, sched int64 }
	stalls := make(map[string]*stall)
	var order []string
	for i := range p.Launches {
		l := &p.Launches[i]
		kernel := l.Kernel
		if kernel == "" {
			kernel = "kernel"
		}
		s, ok := stalls[kernel]
		if !ok {
			s = &stall{}
			stalls[kernel] = s
			order = append(order, kernel)
		}
		s.compute += l.Stalls.ComputeCycles
		s.memory += l.Stalls.MemoryCycles
		s.barrier += l.Stalls.BarrierCycles
		s.sched += l.Stalls.SchedulerWaitCycles
	}
	for _, k := range order {
		s := stalls[k]
		fmt.Fprintf(w, "%s;compute %d\n", k, s.compute)
		fmt.Fprintf(w, "%s;stall;memory-latency %d\n", k, s.memory)
		fmt.Fprintf(w, "%s;stall;barrier %d\n", k, s.barrier)
		fmt.Fprintf(w, "%s;stall;scheduler-wait %d\n", k, s.sched)
	}
	return nil
}
