// Package kernprof is an nvprof-style kernel profiler for the
// simulated GPU: it implements simt.Profiler, turns the raw per-block
// counter deltas a Device delivers into per-launch records — achieved
// vs predicted occupancy, warp execution efficiency, bank-conflict
// replay rate, coalescing efficiency, stall attribution across
// barrier / memory / scheduler-wait — and renders them as a JSON
// artifact, metrics series, text reports and folded-stack flamegraphs
// (cmd/hmmprof). It is the data plane the autotuner (ROADMAP item 5)
// and the resident service (item 1) consume.
//
// Collection cost follows the repo's nil-cost-when-off discipline: a
// device without a Collector attached pays one comparison per block;
// a fast-mode device with one attached profiles only every Nth block
// (SamplePeriod), leaving all other blocks on the nil cost model.
package kernprof

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"sync"

	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/simt"
)

// Schema identifies the profile artifact format; bump on any
// incompatible change so cmd/tracecheck can reject stale artifacts.
const Schema = "hmmer3gpu-kernprof/v1"

// Profile is the artifact written by -kprof: one record per kernel
// launch, in launch order.
type Profile struct {
	Schema   string         `json:"schema"`
	Launches []LaunchRecord `json:"launches"`
}

// OccupancyView is the resource-arithmetic occupancy prediction of
// simt.CalcOccupancy, embedded per launch.
type OccupancyView struct {
	BlocksPerSM int     `json:"blocks_per_sm"`
	WarpsPerSM  int     `json:"warps_per_sm"`
	Fraction    float64 `json:"fraction"`
	Limiter     string  `json:"limiter"`
}

// AchievedView is the occupancy the launch actually achieved, derived
// from the execution (block→SM placement and measured block cycles),
// not echoed from the calculator.
type AchievedView struct {
	// WarpsPerSM is the mean resident warps per active SM across the
	// launch's residency waves.
	WarpsPerSM float64 `json:"warps_per_sm"`
	// Fraction is WarpsPerSM / MaxWarpsPerSM — the figure to compare
	// against the predicted fraction. It dips below the prediction
	// when the grid does not fill every residency wave (tail effects).
	Fraction float64 `json:"fraction"`
	// ActiveFraction weights residency by measured block issue cycles
	// (slot-greedy schedule): it additionally drops when block
	// durations are ragged or warps idle, the number that exposes
	// under-filled grids that still "fit" perfectly.
	ActiveFraction float64 `json:"active_fraction"`
}

// StallView attributes the launch's cycles: compute issue, exposed
// memory latency (an estimate from the device's latency parameters,
// assuming no overlap), barrier stalls, and scheduler wait (resident
// warp-cycles idle in the slot/tail model).
type StallView struct {
	ComputeCycles       int64 `json:"compute_cycles"`
	MemoryCycles        int64 `json:"memory_cycles"`
	BarrierCycles       int64 `json:"barrier_cycles"`
	SchedulerWaitCycles int64 `json:"scheduler_wait_cycles"`
}

// DerivedView carries the headline efficiency ratios.
type DerivedView struct {
	// WarpExecEfficiency is active lane slots / total lane slots over
	// memory operations (nvprof warp_execution_efficiency).
	WarpExecEfficiency float64 `json:"warp_exec_efficiency"`
	// BankConflictReplayRate is replays per shared access.
	BankConflictReplayRate float64 `json:"bank_conflict_replay_rate"`
	// CoalescingEfficiency is requested bytes / 128-byte-granular
	// bytes moved across global+cached traffic (nvprof
	// gld_efficiency-style), capped at 1.
	CoalescingEfficiency float64 `json:"coalescing_efficiency"`
	// GlobalTransactions totals load+store+cached transactions.
	GlobalTransactions int64 `json:"global_transactions"`
	SharedAccesses     int64 `json:"shared_accesses"`
	ShuffleOps         int64 `json:"shuffle_ops"`
	VoteOps            int64 `json:"vote_ops"`
}

// SMRecord is the per-SM view of one launch under the simulator's
// round-robin block→SM placement.
type SMRecord struct {
	SM int `json:"sm"`
	// Blocks is every block placed on this SM (full grid, not just
	// sampled ones).
	Blocks int `json:"blocks"`
	// SampledBlocks and IssueCycles cover the profiled subset.
	SampledBlocks int   `json:"sampled_blocks"`
	IssueCycles   int64 `json:"issue_cycles"`
	// Makespan is the greedy-slot schedule length of the sampled
	// blocks in cycles (0 when nothing was sampled on this SM).
	Makespan int64 `json:"makespan"`
	// Occupancy is this SM's achieved residency fraction.
	Occupancy float64 `json:"occupancy"`
}

// LaunchRecord is one kernel launch's complete profile.
type LaunchRecord struct {
	Seq    int               `json:"seq"`
	Kernel string            `json:"kernel"`
	Device string            `json:"device"`
	Spec   string            `json:"spec"`
	Mode   string            `json:"mode"`
	Labels map[string]string `json:"labels,omitempty"`

	Blocks        int `json:"blocks"`
	WarpsPerBlock int `json:"warps_per_block"`
	SharedBytes   int `json:"shared_bytes_per_block"`
	RegsPerThread int `json:"regs_per_thread"`

	// SamplePeriod and SampledBlocks describe fast-mode thinning;
	// counters below are already scaled back to full-grid estimates.
	SamplePeriod  int `json:"sample_period"`
	SampledBlocks int `json:"sampled_blocks"`

	Predicted OccupancyView `json:"predicted"`
	Achieved  AchievedView  `json:"achieved"`

	// Counters maps snake-cased simt.KernelStats field names to
	// full-grid totals (sampled launches are scaled by the period;
	// warps_executed is exact from the geometry).
	Counters map[string]int64 `json:"counters"`

	Derived DerivedView `json:"derived"`
	Stalls  StallView   `json:"stalls"`
	PerSM   []SMRecord  `json:"per_sm,omitempty"`

	// BlockCycles is the histogram of per-block issue+stall cycles
	// over the sampled blocks (the latency distribution a roofline
	// hides); exported as a Chrome counter event and Prometheus
	// histogram via Record.
	BlockCycles *obs.Hist `json:"block_cycles,omitempty"`
}

// Collector implements simt.Profiler: attach one to a Device (or
// every device of a System) and it accumulates one LaunchRecord per
// successful launch. Safe for concurrent use by multiple devices.
type Collector struct {
	mu      sync.Mutex
	period  int
	labels  map[string]string
	records []LaunchRecord
}

// NewCollector returns a Collector with the default fast-mode sample
// period of 8 (one profiled block per 8).
func NewCollector() *Collector {
	return &Collector{period: 8}
}

// SamplePeriod implements simt.Profiler.
func (c *Collector) SamplePeriod() int {
	if c == nil {
		return 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.period
}

// SetSamplePeriod sets the fast-mode block-sampling stride (values
// < 1 mean profile every block).
func (c *Collector) SetSamplePeriod(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if n < 1 {
		n = 1
	}
	c.period = n
	c.mu.Unlock()
}

// SetLabels attaches a label set (copied) to every subsequently
// collected launch — callers tag launches with workload context the
// simulator cannot see (model size, database, memory config). Nil
// clears the labels.
func (c *Collector) SetLabels(kv map[string]string) {
	if c == nil {
		return
	}
	var cp map[string]string
	if len(kv) > 0 {
		cp = make(map[string]string, len(kv))
		for k, v := range kv {
			cp[k] = v
		}
	}
	c.mu.Lock()
	c.labels = cp
	c.mu.Unlock()
}

// SetLabel merges a single label into the current set, leaving the
// others in place — the pipeline tags "m"/"mem" per run while the
// caller's broader labels ("db") persist.
func (c *Collector) SetLabel(key, value string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.labels == nil {
		c.labels = make(map[string]string, 1)
	}
	c.labels[key] = value
	c.mu.Unlock()
}

// OnLaunch implements simt.Profiler.
func (c *Collector) OnLaunch(p *simt.LaunchProfile) {
	if c == nil || p == nil {
		return
	}
	c.mu.Lock()
	rec := buildRecord(p, c.labels)
	rec.Seq = len(c.records)
	c.records = append(c.records, rec)
	c.mu.Unlock()
}

// Len returns the number of launches collected so far.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// Profile snapshots the collected launches as an artifact.
func (c *Collector) Profile() *Profile {
	p := &Profile{Schema: Schema}
	if c == nil {
		return p
	}
	c.mu.Lock()
	p.Launches = append([]LaunchRecord(nil), c.records...)
	c.mu.Unlock()
	return p
}

// statNames returns simt.KernelStats' field names in declaration
// order, snake-cased — the reflective bridge that keeps the profile's
// counter table in lockstep with the simulator's stats struct.
func statNames() []string {
	t := reflect.TypeOf(simt.KernelStats{})
	out := make([]string, t.NumField())
	for i := range out {
		out[i] = simt.SnakeCase(t.Field(i).Name)
	}
	return out
}

// counterMap explodes a KernelStats into the snake-cased counter map,
// scaling every field by scale except warps_executed, which the
// launch geometry fixes exactly.
func counterMap(s *simt.KernelStats, scale int64, exactWarps int64) map[string]int64 {
	v := reflect.ValueOf(*s)
	t := v.Type()
	out := make(map[string]int64, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		name := simt.SnakeCase(t.Field(i).Name)
		val := v.Field(i).Int() * scale
		if name == "warps_executed" {
			val = exactWarps
		}
		out[name] = val
	}
	return out
}

// WriteJSON serializes the profile as indented JSON.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteFile writes the profile artifact to path.
func (p *Profile) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("kernprof: writing %s: %w", path, err)
	}
	return f.Close()
}

// Read parses a profile artifact, validating it.
func Read(r io.Reader) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("kernprof: parsing profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ReadFile reads and validates a profile artifact from path.
func ReadFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("kernprof: %s: %w", path, err)
	}
	return p, nil
}

// Validate checks the artifact invariants cmd/tracecheck enforces in
// CI: schema match, non-negative counters, occupancy fractions within
// [0, 1], and coherent geometry.
func (p *Profile) Validate() error {
	if p.Schema != Schema {
		return fmt.Errorf("kernprof: schema %q, want %q", p.Schema, Schema)
	}
	for i := range p.Launches {
		l := &p.Launches[i]
		where := fmt.Sprintf("launch %d (%s on %s)", i, l.Kernel, l.Device)
		if l.Blocks < 1 || l.WarpsPerBlock < 1 {
			return fmt.Errorf("kernprof: %s: bad geometry %dx%d", where, l.Blocks, l.WarpsPerBlock)
		}
		if l.SamplePeriod < 1 {
			return fmt.Errorf("kernprof: %s: sample period %d", where, l.SamplePeriod)
		}
		if l.Mode != "cycles" && l.Mode != "fast" {
			return fmt.Errorf("kernprof: %s: unknown mode %q", where, l.Mode)
		}
		for name, v := range l.Counters {
			if v < 0 {
				return fmt.Errorf("kernprof: %s: negative counter %s = %d", where, name, v)
			}
		}
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"predicted occupancy", l.Predicted.Fraction},
			{"achieved occupancy", l.Achieved.Fraction},
			{"achieved active occupancy", l.Achieved.ActiveFraction},
			{"warp exec efficiency", l.Derived.WarpExecEfficiency},
			{"coalescing efficiency", l.Derived.CoalescingEfficiency},
		} {
			if f.v < 0 || f.v > 1 {
				return fmt.Errorf("kernprof: %s: %s %g outside [0,1]", where, f.name, f.v)
			}
		}
		for _, sm := range l.PerSM {
			if sm.Occupancy < 0 || sm.Occupancy > 1 {
				return fmt.Errorf("kernprof: %s: SM %d occupancy %g outside [0,1]", where, sm.SM, sm.Occupancy)
			}
		}
	}
	return nil
}

// Merge appends other's launches (re-sequenced) into p.
func (p *Profile) Merge(other *Profile) {
	for _, l := range other.Launches {
		l.Seq = len(p.Launches)
		p.Launches = append(p.Launches, l)
	}
}

// sortedLabelKeys renders a label map deterministically.
func sortedLabelKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
