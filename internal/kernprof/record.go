package kernprof

import (
	"sort"

	"hmmer3gpu/internal/obs"
)

// Record merges the profile into reg under the kernprof subsystem,
// aggregated per kernel: every raw counter becomes
// hmmer_kernprof_<counter>_total{kernel="..."} (the reflective
// counter table, so a new KernelStats field automatically gains a
// series), the headline ratios become gauges, stall attribution
// becomes a cause-labelled counter, and the per-block cycle
// distribution merges into a histogram (which the Chrome exporter
// then renders as a counter event).
func (p *Profile) Record(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	for i := range p.Launches {
		l := &p.Launches[i]
		kernel := l.Kernel
		if kernel == "" {
			kernel = "kernel"
		}
		reg.AddInt(obs.WithLabel("hmmer_kernprof_launches_total", "kernel", kernel), 1)

		names := make([]string, 0, len(l.Counters))
		for name := range l.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			reg.AddInt(obs.WithLabel("hmmer_kernprof_"+name+"_total", "kernel", kernel), l.Counters[name])
		}

		reg.Set(obs.WithLabel("hmmer_kernprof_predicted_occupancy", "kernel", kernel), l.Predicted.Fraction)
		reg.Set(obs.WithLabel("hmmer_kernprof_achieved_occupancy", "kernel", kernel), l.Achieved.Fraction)
		reg.Set(obs.WithLabel("hmmer_kernprof_active_occupancy", "kernel", kernel), l.Achieved.ActiveFraction)
		reg.Set(obs.WithLabel("hmmer_kernprof_warp_exec_efficiency", "kernel", kernel), l.Derived.WarpExecEfficiency)
		reg.Set(obs.WithLabel("hmmer_kernprof_bank_conflict_replay_rate", "kernel", kernel), l.Derived.BankConflictReplayRate)
		reg.Set(obs.WithLabel("hmmer_kernprof_coalescing_efficiency", "kernel", kernel), l.Derived.CoalescingEfficiency)

		for _, s := range []struct {
			cause  string
			cycles int64
		}{
			{"compute", l.Stalls.ComputeCycles},
			{"memory", l.Stalls.MemoryCycles},
			{"barrier", l.Stalls.BarrierCycles},
			{"scheduler-wait", l.Stalls.SchedulerWaitCycles},
		} {
			name := obs.WithLabel("hmmer_kernprof_stall_cycles_total", "kernel", kernel)
			reg.AddInt(obs.WithLabel(name, "cause", s.cause), s.cycles)
		}

		if l.BlockCycles != nil {
			reg.MergeHist(obs.WithLabel("hmmer_kernprof_block_cycles", "kernel", kernel), l.BlockCycles)
		}
	}
	reg.Help("hmmer_kernprof_launches_total", "kernel launches profiled by kernprof")
	reg.Help("hmmer_kernprof_achieved_occupancy", "achieved residency occupancy (resident warps per SM / max)")
	reg.Help("hmmer_kernprof_predicted_occupancy", "resource-arithmetic occupancy prediction")
	reg.Help("hmmer_kernprof_stall_cycles_total", "cycle attribution across compute/memory/barrier/scheduler-wait")
	reg.Help("hmmer_kernprof_block_cycles", "per-block issue+stall cycles over sampled blocks")
}
