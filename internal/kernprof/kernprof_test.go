package kernprof

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/simt"
)

// testKernel exercises every counter class: ALU, shared loads/stores,
// global span traffic, shuffle and vote.
func testKernel(w *simt.Warp) {
	lanes := w.Lanes()
	f := make([]float32, lanes)
	w.ALU(7)
	w.SharedSpanStoreF32(f, 0, lanes)
	w.SharedSpanLoadF32(f, 0, lanes)
	w.GlobalSpanLoad(0, 4, lanes)
	w.ShflXorF32Into(f, f, 1)
	w.Vote()
}

// collect runs one launch against a fresh Collector and returns the
// resulting record.
func collect(t *testing.T, mode simt.Mode, blocks, wpb, period int) LaunchRecord {
	t.Helper()
	c := NewCollector()
	c.SetSamplePeriod(period)
	c.SetLabels(map[string]string{"db": "sp", "m": "400"})
	dev := simt.NewDevice(simt.TeslaK40())
	dev.Mode = mode
	dev.Profiler = c
	_, err := dev.Launch(simt.LaunchConfig{
		Blocks: blocks, WarpsPerBlock: wpb,
		SharedBytesPerBlock: 1024, RegsPerThread: 32, Name: "msv",
	}, testKernel)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("collected %d launches, want 1", c.Len())
	}
	return c.Profile().Launches[0]
}

// fullGridBlocks sizes a grid the way gpu.planLaunch does: exactly
// BlocksPerSM blocks on every SM.
func fullGridBlocks(wpb int) int {
	spec := simt.TeslaK40()
	occ := spec.CalcOccupancy(simt.KernelResources{
		RegsPerThread:   32,
		SharedPerBlock:  1024,
		ThreadsPerBlock: wpb * spec.WarpSize,
	})
	return occ.BlocksPerSM * spec.SMCount
}

// TestCountersCoverEveryKernelStatsField is the reflective pin: every
// field of simt.KernelStats must surface in LaunchRecord.Counters
// under its snake_case name, so adding a simulator counter grows the
// profile automatically.
func TestCountersCoverEveryKernelStatsField(t *testing.T) {
	rec := collect(t, simt.ModeCycleAccurate, 6, 2, 1)
	typ := reflect.TypeOf(simt.KernelStats{})
	if len(rec.Counters) != typ.NumField() {
		t.Errorf("counter map has %d entries, KernelStats has %d fields", len(rec.Counters), typ.NumField())
	}
	for i := 0; i < typ.NumField(); i++ {
		name := simt.SnakeCase(typ.Field(i).Name)
		if _, ok := rec.Counters[name]; !ok {
			t.Errorf("KernelStats.%s missing from Counters (want key %q)", typ.Field(i).Name, name)
		}
	}
	for name, v := range rec.Counters {
		if v < 0 {
			t.Errorf("counter %s = %d, want >= 0", name, v)
		}
	}
	for _, name := range []string{"alu_ops", "shared_loads", "shuffle_ops", "vote_ops", "global_requested_bytes"} {
		if rec.Counters[name] == 0 {
			t.Errorf("counter %s = 0, want > 0 (kernel exercises it)", name)
		}
	}
}

// TestFullGridAchievedMatchesPredicted pins the acceptance criterion:
// for a planLaunch-shaped grid (BlocksPerSM × SMCount) the achieved
// occupancy must stay within 5%% of the prediction.
func TestFullGridAchievedMatchesPredicted(t *testing.T) {
	const wpb = 4
	rec := collect(t, simt.ModeCycleAccurate, fullGridBlocks(wpb), wpb, 1)
	pred, ach := rec.Predicted.Fraction, rec.Achieved.Fraction
	if pred <= 0 {
		t.Fatalf("predicted occupancy %g, want > 0", pred)
	}
	if diff := ach - pred; diff > 0.05*pred || diff < -0.05*pred {
		t.Errorf("achieved %.3f vs predicted %.3f: off by more than 5%%", ach, pred)
	}
	if rec.Achieved.ActiveFraction <= 0 || rec.Achieved.ActiveFraction > 1 {
		t.Errorf("active fraction %g outside (0,1]", rec.Achieved.ActiveFraction)
	}
	if len(rec.PerSM) != simt.TeslaK40().SMCount {
		t.Errorf("per-SM records: %d, want %d", len(rec.PerSM), simt.TeslaK40().SMCount)
	}
	if err := (&Profile{Schema: Schema, Launches: []LaunchRecord{rec}}).Validate(); err != nil {
		t.Errorf("full-grid record fails validation: %v", err)
	}
}

// TestUnderfilledGridShowsTailDip: a single-block grid cannot achieve
// the predicted residency — achieved must dip well below predicted,
// and most cycles must attribute to scheduler wait... except there is
// only one SM active with one block, so the dip is the signal.
func TestUnderfilledGridShowsTailDip(t *testing.T) {
	rec := collect(t, simt.ModeCycleAccurate, 1, 2, 1)
	if rec.Achieved.Fraction >= rec.Predicted.Fraction {
		t.Errorf("1-block grid: achieved %.3f should dip below predicted %.3f",
			rec.Achieved.Fraction, rec.Predicted.Fraction)
	}
}

// TestFastModeScalesCounters pins the sampled-counter contract: with
// period P over B blocks the scaled totals estimate the full grid, and
// warps_executed is exact from geometry.
func TestFastModeScalesCounters(t *testing.T) {
	const blocks, wpb, period = 12, 2, 4
	rec := collect(t, simt.ModeFast, blocks, wpb, period)
	if rec.Mode != "fast" || rec.SamplePeriod != period {
		t.Fatalf("mode/period = %s/%d, want fast/%d", rec.Mode, rec.SamplePeriod, period)
	}
	if rec.SampledBlocks != blocks/period {
		t.Errorf("sampled %d blocks, want %d", rec.SampledBlocks, blocks/period)
	}
	if got, want := rec.Counters["warps_executed"], int64(blocks*wpb); got != want {
		t.Errorf("warps_executed = %d, want exact %d", got, want)
	}
	// Every block runs the same kernel, so the scaled ALU count must
	// land exactly on the full-grid total.
	perBlock := int64(7 * wpb)
	if got, want := rec.Counters["alu_ops"], perBlock*blocks; got != want {
		t.Errorf("alu_ops = %d, want %d (scaled to full grid)", got, want)
	}
	if rec.BlockCycles == nil || rec.BlockCycles.Count != uint64(blocks/period) {
		t.Errorf("block-cycle histogram covers %v samples, want %d", rec.BlockCycles, blocks/period)
	}
}

// TestStallAttributionNonZero: the test kernel touches shared and
// global memory, so memory stall cycles and compute cycles must both
// be attributed.
func TestStallAttributionNonZero(t *testing.T) {
	rec := collect(t, simt.ModeCycleAccurate, 6, 2, 1)
	if rec.Stalls.ComputeCycles <= 0 {
		t.Errorf("compute cycles = %d, want > 0", rec.Stalls.ComputeCycles)
	}
	if rec.Stalls.MemoryCycles <= 0 {
		t.Errorf("memory cycles = %d, want > 0", rec.Stalls.MemoryCycles)
	}
	if rec.Stalls.BarrierCycles != 0 {
		t.Errorf("barrier cycles = %d, want 0 (no Sync in kernel)", rec.Stalls.BarrierCycles)
	}
}

// TestRecordReachesRegistryAndExporters is satellite 4's pin: every
// counter name must surface in the obs.Registry and the Prometheus
// text, and the block-cycle histogram must surface as a Chrome
// counter event.
func TestRecordReachesRegistryAndExporters(t *testing.T) {
	rec := collect(t, simt.ModeCycleAccurate, 6, 2, 1)
	p := &Profile{Schema: Schema, Launches: []LaunchRecord{rec}}
	reg := obs.NewRegistry()
	p.Record(reg)

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()

	typ := reflect.TypeOf(simt.KernelStats{})
	for i := 0; i < typ.NumField(); i++ {
		series := "hmmer_kernprof_" + simt.SnakeCase(typ.Field(i).Name) + "_total"
		if _, ok := reg.Get(obs.WithLabel(series, "kernel", "msv")); !ok {
			t.Errorf("registry missing %s{kernel=\"msv\"}", series)
		}
		if !strings.Contains(text, series) {
			t.Errorf("Prometheus output missing %s", series)
		}
	}
	for _, series := range []string{
		"hmmer_kernprof_predicted_occupancy",
		"hmmer_kernprof_achieved_occupancy",
		"hmmer_kernprof_active_occupancy",
		"hmmer_kernprof_warp_exec_efficiency",
		"hmmer_kernprof_bank_conflict_replay_rate",
		"hmmer_kernprof_coalescing_efficiency",
		"hmmer_kernprof_stall_cycles_total",
		"hmmer_kernprof_block_cycles_bucket",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("Prometheus output missing %s", series)
		}
	}
	if _, err := obs.ParsePrometheus(prom.Bytes()); err != nil {
		t.Errorf("exported text does not round-trip: %v", err)
	}

	// The histogram must also surface as a Chrome counter event.
	tr := obs.New()
	tr.Start("host", "run").End()
	var chrome bytes.Buffer
	if err := tr.WriteChromeTraceWithCounters(&chrome, reg); err != nil {
		t.Fatal(err)
	}
	st, err := obs.ValidateChromeTraceStats(chrome.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if st.Counters == 0 {
		t.Error("Chrome trace has no counter events for the block-cycle histogram")
	}
}

// TestJSONRoundTrip: WriteJSON → Read must reproduce the profile.
func TestJSONRoundTrip(t *testing.T) {
	rec := collect(t, simt.ModeFast, 12, 2, 4)
	p := &Profile{Schema: Schema, Launches: []LaunchRecord{rec}}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

// TestValidateRejects enumerates the invariants tracecheck enforces.
func TestValidateRejects(t *testing.T) {
	base := func() *Profile {
		rec := collect(t, simt.ModeCycleAccurate, 2, 1, 1)
		return &Profile{Schema: Schema, Launches: []LaunchRecord{rec}}
	}
	cases := []struct {
		name  string
		mutP  func(*Profile)
		wants string
	}{
		{"bad schema", func(p *Profile) { p.Schema = "nvprof/v12" }, "schema"},
		{"negative counter", func(p *Profile) { p.Launches[0].Counters["alu_ops"] = -1 }, "negative counter"},
		{"occupancy above one", func(p *Profile) { p.Launches[0].Achieved.Fraction = 1.5 }, "outside [0,1]"},
		{"bad mode", func(p *Profile) { p.Launches[0].Mode = "warp-speed" }, "unknown mode"},
		{"bad geometry", func(p *Profile) { p.Launches[0].Blocks = 0 }, "bad geometry"},
		{"bad sample period", func(p *Profile) { p.Launches[0].SamplePeriod = 0 }, "sample period"},
		{"per-SM occupancy", func(p *Profile) { p.Launches[0].PerSM[0].Occupancy = -0.1 }, "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.mutP(p)
			err := p.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wants) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.wants)
			}
		})
	}
}

// TestCollapseNotes pins the fig9 shared-config collapse detector: a
// model sweep whose predicted occupancy drops ≥ 1.5× between adjacent
// sizes must emit a note, and WriteOccupancy must print it.
func TestCollapseNotes(t *testing.T) {
	mk := func(m string, occ float64) LaunchRecord {
		return LaunchRecord{
			Kernel: "msv", Mode: "cycles", Blocks: 1, WarpsPerBlock: 1, SamplePeriod: 1,
			Labels:    map[string]string{"db": "sp", "mem": "shared", "m": m},
			Predicted: OccupancyView{Fraction: occ, Limiter: "shared"},
		}
	}
	p := &Profile{Schema: Schema, Launches: []LaunchRecord{
		mk("1528", 0.25), mk("400", 0.75), mk("960", 0.75), mk("1056", 0.25),
	}}
	notes := p.collapseNotes()
	if len(notes) != 1 {
		t.Fatalf("got %d notes, want 1: %v", len(notes), notes)
	}
	if !strings.Contains(notes[0], "occupancy collapse") ||
		!strings.Contains(notes[0], "M=960") || !strings.Contains(notes[0], "M=1056") {
		t.Errorf("note does not name the 960→1056 collapse: %s", notes[0])
	}
	var buf bytes.Buffer
	if err := p.WriteOccupancy(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "occupancy collapse") {
		t.Error("WriteOccupancy output missing the collapse note")
	}

	// A smooth sweep stays silent.
	smooth := &Profile{Schema: Schema, Launches: []LaunchRecord{
		mk("400", 0.75), mk("960", 0.70), mk("1528", 0.65),
	}}
	if notes := smooth.collapseNotes(); len(notes) != 0 {
		t.Errorf("smooth sweep produced notes: %v", notes)
	}
}

// TestReportAndFlameRender smoke-tests the text renderers on a real
// collection.
func TestReportAndFlameRender(t *testing.T) {
	rec := collect(t, simt.ModeCycleAccurate, 6, 2, 1)
	p := &Profile{Schema: Schema, Launches: []LaunchRecord{rec}}
	var rep bytes.Buffer
	if err := p.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kernprof profile: 1 launches", "== kernels ==", "== occupancy ==",
		"== stall attribution (cycles) ==", "msv", "db=sp m=400"} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report missing %q:\n%s", want, rep.String())
		}
	}
	var flame bytes.Buffer
	if err := p.WriteFlame(&flame); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"msv;compute ", "msv;stall;memory-latency ", "msv;stall;barrier ", "msv;stall;scheduler-wait "} {
		if !strings.Contains(flame.String(), want) {
			t.Errorf("flame output missing %q:\n%s", want, flame.String())
		}
	}
}

// TestMergeResequences: merged profiles renumber Seq contiguously.
func TestMergeResequences(t *testing.T) {
	a := &Profile{Schema: Schema, Launches: []LaunchRecord{{Kernel: "msv"}}}
	b := &Profile{Schema: Schema, Launches: []LaunchRecord{{Kernel: "vit", Seq: 7}, {Kernel: "fwd", Seq: 9}}}
	a.Merge(b)
	for i, l := range a.Launches {
		if l.Seq != i {
			t.Errorf("launch %d has Seq %d", i, l.Seq)
		}
	}
}

// TestNilCollectorSafe: every method tolerates a nil receiver, the
// same discipline as obs.
func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.SetSamplePeriod(4)
	c.SetLabels(map[string]string{"a": "b"})
	c.OnLaunch(nil)
	if c.SamplePeriod() != 1 {
		t.Errorf("nil SamplePeriod = %d, want 1", c.SamplePeriod())
	}
	if c.Len() != 0 {
		t.Errorf("nil Len = %d, want 0", c.Len())
	}
	if p := c.Profile(); p.Schema != Schema || len(p.Launches) != 0 {
		t.Errorf("nil Profile = %+v", p)
	}
}
