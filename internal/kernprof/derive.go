package kernprof

// Derivations from raw per-block samples to the profile's headline
// numbers. The achieved-occupancy model mirrors what the simulator
// actually does with a grid: blocks land on SM (block % SMCount) and
// an SM keeps at most Occupancy.BlocksPerSM of its blocks resident at
// once, so blocks run in residency waves.
//
//   - Achieved.Fraction weights residency by wave: an SM with n
//     blocks and r resident slots averages n/ceil(n/r) resident
//     blocks per wave. For a grid sized by gpu.planLaunch (Blocks =
//     BlocksPerSM × SMCount) this equals the prediction exactly;
//     under- or over-subscribed grids show the tail-wave dip nvprof's
//     achieved_occupancy reports for short kernels.
//   - Achieved.ActiveFraction additionally weights by measured block
//     cycles under a greedy slot schedule, so ragged block durations
//     and idle warps pull it down — the honest "how busy were the
//     resident slots" number.
//
// Stall attribution is an estimate, not a timeline: barrier stalls
// are measured (SyncStallCycles), memory stall is exposed latency
// (accesses × device latency, no overlap assumed), scheduler wait is
// the slot/tail idleness of the residency model.

import (
	"sort"

	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/simt"
)

// BlockCycleBuckets returns the bucket bounds (in cycles) for the
// per-block duration histogram: powers of two from 256 to ~16M.
func BlockCycleBuckets() []float64 {
	out := make([]float64, 0, 17)
	for v := 256.0; v <= 1<<24; v *= 2 {
		out = append(out, v)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// cachedLatencyFraction scales the device's DRAM latency for traffic
// served from L2 (the cached transaction classes).
const cachedLatencyFraction = 0.25

// buildRecord converts one raw launch profile into a LaunchRecord.
// Callers hold the Collector lock (labels is read without copying).
func buildRecord(p *simt.LaunchProfile, labels map[string]string) LaunchRecord {
	stride := int64(p.SamplePeriod)
	if stride < 1 {
		stride = 1
	}
	var agg simt.KernelStats
	hist := obs.NewHist(BlockCycleBuckets())
	for i := range p.Samples {
		agg.Add(&p.Samples[i].Stats)
		hist.Observe(float64(p.Samples[i].Stats.IssueCycles + p.Samples[i].Stats.SyncStallCycles))
	}

	totalWarps := int64(p.Blocks) * int64(p.WarpsPerBlock)
	rec := LaunchRecord{
		Kernel:        p.Kernel,
		Device:        p.Device,
		Spec:          p.Spec.Name,
		Mode:          p.Mode.String(),
		Blocks:        p.Blocks,
		WarpsPerBlock: p.WarpsPerBlock,
		SharedBytes:   p.SharedBytesPerBlock,
		RegsPerThread: p.RegsPerThread,
		SamplePeriod:  int(stride),
		SampledBlocks: len(p.Samples),
		Predicted: OccupancyView{
			BlocksPerSM: p.Occupancy.BlocksPerSM,
			WarpsPerSM:  p.Occupancy.WarpsPerSM,
			Fraction:    p.Occupancy.Fraction,
			Limiter:     p.Occupancy.Limiter,
		},
		Counters:    counterMap(&agg, stride, totalWarps),
		BlockCycles: hist,
	}
	if len(labels) > 0 {
		rec.Labels = make(map[string]string, len(labels))
		for k, v := range labels {
			rec.Labels[k] = v
		}
	}

	shared := agg.SharedLoads + agg.SharedStores
	transactions := agg.GlobalLoadTransactions + agg.GlobalStoreTransactions +
		agg.CachedLoadTransactions + agg.CachedStoreTransactions
	rec.Derived = DerivedView{
		WarpExecEfficiency:     clamp01(agg.LaneUtilization()),
		GlobalTransactions:     transactions * stride,
		SharedAccesses:         shared * stride,
		ShuffleOps:             agg.ShuffleOps * stride,
		VoteOps:                agg.VoteOps * stride,
		BankConflictReplayRate: 0,
		CoalescingEfficiency:   1,
	}
	if shared > 0 {
		rec.Derived.BankConflictReplayRate = float64(agg.BankConflictReplays) / float64(shared)
	}
	if moved := agg.GlobalBytes + agg.CachedBytes; moved > 0 {
		rec.Derived.CoalescingEfficiency = clamp01(float64(agg.GlobalRequestedBytes) / float64(moved))
	}

	achieved, perSM, schedWait := deriveOccupancy(p)
	rec.Achieved = achieved
	rec.PerSM = perSM

	spec := p.Spec
	memCycles := float64(shared)*spec.SharedLatency +
		float64(agg.GlobalLoadTransactions+agg.GlobalStoreTransactions)*spec.GlobalLatency +
		float64(agg.CachedLoadTransactions+agg.CachedStoreTransactions)*spec.GlobalLatency*cachedLatencyFraction
	rec.Stalls = StallView{
		ComputeCycles:       (agg.ALUOps + agg.ShuffleOps + agg.VoteOps) * stride,
		MemoryCycles:        int64(memCycles) * stride,
		BarrierCycles:       agg.SyncStallCycles * stride,
		SchedulerWaitCycles: schedWait * stride,
	}
	return rec
}

// deriveOccupancy computes the achieved residency per SM, the
// issue-weighted active occupancy, and the scheduler-wait cycles of
// the greedy slot model.
func deriveOccupancy(p *simt.LaunchProfile) (AchievedView, []SMRecord, int64) {
	spec := p.Spec
	smCount := spec.SMCount
	if smCount < 1 {
		smCount = 1
	}
	slots := p.Occupancy.BlocksPerSM
	if slots < 1 {
		slots = 1
	}
	maxWarps := float64(spec.MaxWarpsPerSM)
	if maxWarps <= 0 {
		maxWarps = float64(slots * p.WarpsPerBlock)
	}
	warpsPB := float64(p.WarpsPerBlock)

	// Sampled block durations, grouped by SM. The duration estimate is
	// the block's cycles divided across its (conceptually concurrent)
	// warps.
	type smState struct {
		durations []int64
		issue     int64
		sampled   int
	}
	states := make([]smState, smCount)
	for i := range p.Samples {
		s := &p.Samples[i]
		sm := s.Block % smCount
		d := (s.Stats.IssueCycles + s.Stats.SyncStallCycles) / int64(p.WarpsPerBlock)
		if d < 1 {
			d = 1
		}
		st := &states[sm]
		st.durations = append(st.durations, d)
		st.issue += s.Stats.IssueCycles
		st.sampled++
	}

	var (
		perSM        []SMRecord
		sumWarps     float64 // residency-weighted
		sumOcc       float64
		activeSMs    int
		sumActiveOcc float64
		activeMeasSM int
		makespans    = make([]int64, smCount)
		slotIdle     = make([]int64, smCount)
	)
	for sm := 0; sm < smCount; sm++ {
		// Full-grid block count on this SM under round-robin placement.
		n := p.Blocks / smCount
		if sm < p.Blocks%smCount {
			n++
		}
		if n == 0 {
			continue
		}
		activeSMs++
		waves := (n + slots - 1) / slots
		residentBlocks := float64(n) / float64(waves)
		warps := residentBlocks * warpsPB
		if warps > maxWarps {
			warps = maxWarps
		}
		occ := clamp01(warps / maxWarps)
		sumWarps += warps
		sumOcc += occ

		rec := SMRecord{SM: sm, Blocks: n, SampledBlocks: states[sm].sampled,
			IssueCycles: states[sm].issue, Occupancy: occ}

		// Greedy slot schedule over the sampled durations: longest
		// blocks first into the least-loaded of the resident slots.
		if ds := states[sm].durations; len(ds) > 0 {
			sort.Slice(ds, func(i, j int) bool { return ds[i] > ds[j] })
			loads := make([]int64, slots)
			for _, d := range ds {
				mi := 0
				for j := 1; j < len(loads); j++ {
					if loads[j] < loads[mi] {
						mi = j
					}
				}
				loads[mi] += d
			}
			var makespan, busy int64
			for _, l := range loads {
				if l > makespan {
					makespan = l
				}
				busy += l
			}
			for _, l := range loads {
				slotIdle[sm] += makespan - l
			}
			makespans[sm] = makespan
			rec.Makespan = makespan
			if makespan > 0 {
				activeWarps := float64(busy) * warpsPB / float64(makespan)
				if activeWarps > maxWarps {
					activeWarps = maxWarps
				}
				sumActiveOcc += clamp01(activeWarps / maxWarps)
				activeMeasSM++
			}
		}
		perSM = append(perSM, rec)
	}

	var achieved AchievedView
	if activeSMs > 0 {
		achieved.WarpsPerSM = sumWarps / float64(activeSMs)
		achieved.Fraction = clamp01(sumOcc / float64(activeSMs))
	}
	if activeMeasSM > 0 {
		achieved.ActiveFraction = clamp01(sumActiveOcc / float64(activeMeasSM))
	}

	// Scheduler wait: warp-cycles idle inside an SM's slot schedule,
	// plus whole-SM idleness at the device tail (SMs finished while
	// the slowest one still ran).
	var devMakespan int64
	for _, m := range makespans {
		if m > devMakespan {
			devMakespan = m
		}
	}
	var wait int64
	for sm := 0; sm < smCount; sm++ {
		if makespans[sm] == 0 && slotIdle[sm] == 0 {
			continue
		}
		wait += slotIdle[sm] * int64(warpsPB)
		wait += (devMakespan - makespans[sm]) * int64(slots) * int64(warpsPB)
	}
	return achieved, perSM, wait
}
