// Package drainctx implements the two-stage shutdown policy shared by
// every long-lived process in the tree (hmmsearch's streamed runs,
// hmmworker, hmmserved): the first signal requests a graceful drain —
// in-flight work finishes (and is journaled where a journal exists) —
// and a second signal aborts hard via context cancellation.
//
// The split matters operationally: orchestrators send SIGTERM and
// expect the process to stop accepting work, land what it holds
// durably, and exit 0; a stuck drain is escalated with a second signal
// (or SIGKILL), and the crash-recovery machinery picks up from there.
package drainctx

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
)

// Notify installs the two-stage policy for the given signals
// (os.Interrupt when none are named): the first signal closes the
// returned drain channel, the second cancels the returned context.
// One line per stage is written to w (os.Stderr when nil), prefixed
// with prog. stop uninstalls the handler and releases the goroutine.
func Notify(prog string, w io.Writer, sigs ...os.Signal) (ctx context.Context, drain <-chan struct{}, stop func()) {
	if len(sigs) == 0 {
		sigs = []os.Signal{os.Interrupt}
	}
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, sigs...)
	ctx, drain, stopStage := twoStage(prog, w, sigc)
	return ctx, drain, func() {
		signal.Stop(sigc)
		stopStage()
	}
}

// twoStage is the signal-source-agnostic core (tests feed it a plain
// channel): the first receive closes drain, the second cancels ctx. A
// closed source channel ends the watcher without acting.
func twoStage(prog string, w io.Writer, sigc <-chan os.Signal) (ctx context.Context, drain <-chan struct{}, stop func()) {
	if w == nil {
		w = os.Stderr
	}
	cctx, cancel := context.WithCancel(context.Background())
	drainCh := make(chan struct{})
	go func() {
		if _, ok := <-sigc; !ok {
			return
		}
		fmt.Fprintf(w, "%s: signal: draining in-flight work (signal again to abort)\n", prog)
		close(drainCh)
		if _, ok := <-sigc; !ok {
			return
		}
		fmt.Fprintf(w, "%s: second signal: aborting\n", prog)
		cancel()
	}()
	return cctx, drainCh, cancel
}
