package drainctx

import (
	"bytes"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestTwoStage(t *testing.T) {
	var buf bytes.Buffer
	sigc := make(chan os.Signal, 2)
	ctx, drain, stop := twoStage("prog", &buf, sigc)
	defer stop()

	select {
	case <-drain:
		t.Fatal("drain closed before any signal")
	case <-ctx.Done():
		t.Fatal("ctx cancelled before any signal")
	default:
	}

	sigc <- syscall.SIGTERM
	select {
	case <-drain:
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not close after the first signal")
	}
	if ctx.Err() != nil {
		t.Fatal("ctx cancelled after only one signal")
	}

	sigc <- syscall.SIGTERM
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("ctx did not cancel after the second signal")
	}
	if got := buf.String(); !bytes.Contains([]byte(got), []byte("prog: signal: draining")) ||
		!bytes.Contains([]byte(got), []byte("prog: second signal: aborting")) {
		t.Errorf("unexpected stage messages:\n%s", got)
	}
}

func TestTwoStageClosedSourceIsInert(t *testing.T) {
	sigc := make(chan os.Signal)
	ctx, drain, stop := twoStage("prog", nil, sigc)
	defer stop()
	close(sigc)
	select {
	case <-drain:
		t.Fatal("drain closed on a closed source")
	case <-ctx.Done():
		t.Fatal("ctx cancelled on a closed source")
	case <-time.After(50 * time.Millisecond):
	}
}
