// Package hmm implements the Plan7 profile hidden Markov model at the
// heart of HMMER3: the core probability model (match/insert emission
// distributions and the seven-class transition structure of Figure 3 in
// the paper), plus HMMER3 ASCII file input/output.
package hmm

import (
	"fmt"
	"math"

	"hmmer3gpu/internal/alphabet"
)

// Transition indices into Plan7.T[k]. Following HMMER's convention,
// T[k] holds the transitions out of node k: M_k->M_{k+1}, M_k->I_k,
// M_k->D_{k+1}, I_k->M_{k+1}, I_k->I_k, D_k->M_{k+1}, D_k->D_{k+1}.
// T[0] holds the begin transitions (B->M1 in TMM, B->D1 in TMD).
const (
	TMM = iota
	TMI
	TMD
	TIM
	TII
	TDM
	TDD
	// NTrans is the number of transition classes per node.
	NTrans
)

// Plan7 is the core Plan7 probability model of length M.
//
// Indexing: emission and transition rows are indexed 1..M for model
// nodes, with row 0 reserved (emissions unused; T[0] holds begin
// transitions). All values are probabilities, not scores.
type Plan7 struct {
	Name string
	Acc  string
	Desc string

	// M is the model length (number of match states).
	M int
	// Abc is the digital alphabet the model emits over.
	Abc *alphabet.Alphabet

	// Mat[k][r] is the match emission probability of canonical residue
	// r at node k (k = 1..M).
	Mat [][]float64
	// Ins[k][r] is the insert emission probability at node k (k = 1..M-1;
	// row M exists but is conventionally unused in Plan7).
	Ins [][]float64
	// T[k][c] are the transition probabilities out of node k (see the
	// transition-index constants).
	T [][]float64

	// Compo, if non-nil, is the model's average match-emission
	// composition (the HMMER3 COMPO line).
	Compo []float64

	// Stats holds score-distribution calibration parameters, when known.
	Stats CalibrationStats
}

// CalibrationStats records the statistical parameters of the three
// score distributions HMMER3 calibrates (STATS LOCAL lines): Gumbel
// location/slope for MSV and Viterbi, exponential tail for Forward.
type CalibrationStats struct {
	MSVMu     float64
	MSVLambda float64
	VitMu     float64
	VitLambda float64
	FwdTau    float64
	FwdLambda float64
	// Calibrated reports whether the fields above are meaningful.
	Calibrated bool
}

// New allocates a zeroed Plan7 model of length m over abc.
func New(m int, abc *alphabet.Alphabet) (*Plan7, error) {
	if m < 1 {
		return nil, fmt.Errorf("hmm: model length %d < 1", m)
	}
	h := &Plan7{M: m, Abc: abc}
	h.Mat = make([][]float64, m+1)
	h.Ins = make([][]float64, m+1)
	h.T = make([][]float64, m+1)
	for k := 0; k <= m; k++ {
		h.Mat[k] = make([]float64, abc.Size())
		h.Ins[k] = make([]float64, abc.Size())
		h.T[k] = make([]float64, NTrans)
	}
	return h, nil
}

// SetUniformInserts sets every insert emission distribution to the
// background (HMMER3's convention, which makes insert emission
// log-odds scores zero in the search profile).
func (h *Plan7) SetUniformInserts() {
	for k := 1; k <= h.M; k++ {
		copy(h.Ins[k], h.Abc.Backgrounds())
	}
}

// Validate checks that the model is a well-formed probability model:
// every emission row and transition group sums to ~1 where required.
func (h *Plan7) Validate() error {
	if h.M < 1 {
		return fmt.Errorf("hmm %s: length %d < 1", h.Name, h.M)
	}
	const tol = 1e-3
	sumOK := func(p []float64) bool {
		s := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			s += v
		}
		return math.Abs(s-1) <= tol
	}
	for k := 1; k <= h.M; k++ {
		if !sumOK(h.Mat[k]) {
			return fmt.Errorf("hmm %s: match emissions at node %d do not sum to 1", h.Name, k)
		}
		if k < h.M && !sumOK(h.Ins[k]) {
			return fmt.Errorf("hmm %s: insert emissions at node %d do not sum to 1", h.Name, k)
		}
	}
	// Transition groups: {MM,MI,MD}, {IM,II}, {DM,DD} out of each node.
	for k := 0; k <= h.M; k++ {
		m := []float64{h.T[k][TMM], h.T[k][TMI], h.T[k][TMD]}
		i := []float64{h.T[k][TIM], h.T[k][TII]}
		d := []float64{h.T[k][TDM], h.T[k][TDD]}
		switch k {
		case 0:
			// Begin node: B->{M1, D1}; insert group I0 unused here
			// (we require it zeroed or normalised).
			if !sumOK([]float64{h.T[0][TMM], h.T[0][TMD]}) {
				return fmt.Errorf("hmm %s: begin transitions do not sum to 1", h.Name)
			}
		case h.M:
			// Last node: M_M -> E is implicit (TMM row is M->E); HMMER
			// stores t[M] with MM=1-MI, MD=0, DM=1, DD=0.
			if !sumOK(m) || !sumOK(d) {
				return fmt.Errorf("hmm %s: node M transitions malformed", h.Name)
			}
		default:
			if !sumOK(m) {
				return fmt.Errorf("hmm %s: match transitions at node %d do not sum to 1", h.Name, k)
			}
			if !sumOK(i) {
				return fmt.Errorf("hmm %s: insert transitions at node %d do not sum to 1", h.Name, k)
			}
			if !sumOK(d) {
				return fmt.Errorf("hmm %s: delete transitions at node %d do not sum to 1", h.Name, k)
			}
		}
	}
	return nil
}

// Consensus returns the consensus sequence: the highest-probability
// match residue at each node.
func (h *Plan7) Consensus() []byte {
	out := make([]byte, h.M)
	for k := 1; k <= h.M; k++ {
		best, bestP := 0, -1.0
		for r, p := range h.Mat[k] {
			if p > bestP {
				best, bestP = r, p
			}
		}
		out[k-1] = byte(best)
	}
	return out
}

// MeanMatchEntropy returns the mean relative entropy (bits) of the
// match emission distributions versus the background — a standard
// measure of model information content.
func (h *Plan7) MeanMatchEntropy() float64 {
	bg := h.Abc.Backgrounds()
	total := 0.0
	for k := 1; k <= h.M; k++ {
		for r, p := range h.Mat[k] {
			if p > 0 {
				total += p * math.Log2(p/bg[r])
			}
		}
	}
	return total / float64(h.M)
}

// Clone returns a deep copy of the model.
func (h *Plan7) Clone() *Plan7 {
	c, _ := New(h.M, h.Abc)
	c.Name, c.Acc, c.Desc, c.Stats = h.Name, h.Acc, h.Desc, h.Stats
	for k := 0; k <= h.M; k++ {
		copy(c.Mat[k], h.Mat[k])
		copy(c.Ins[k], h.Ins[k])
		copy(c.T[k], h.T[k])
	}
	if h.Compo != nil {
		c.Compo = append([]float64(nil), h.Compo...)
	}
	return c
}

// ComputeCompo fills Compo with the mean match emission distribution.
func (h *Plan7) ComputeCompo() {
	compo := make([]float64, h.Abc.Size())
	for k := 1; k <= h.M; k++ {
		for r, p := range h.Mat[k] {
			compo[r] += p
		}
	}
	for r := range compo {
		compo[r] /= float64(h.M)
	}
	h.Compo = compo
}
