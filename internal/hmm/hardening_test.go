package hmm

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestMaxModelLength checks the configurable LENG cap: a header over
// the limit is rejected before any allocation with a structured error
// naming the model.
func TestMaxModelLength(t *testing.T) {
	defer func(old int) { MaxModelLength = old }(MaxModelLength)
	MaxModelLength = 50
	in := "HMMER3/f\nNAME toolong\nLENG 51\nALPH amino\n"
	_, err := Read(strings.NewReader(in), abc)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Model != "toolong" {
		t.Errorf("error names model %q, want %q (err: %v)", pe.Model, "toolong", err)
	}
}

// TestParseErrorNamesModel checks that a body error in the second model
// of a concatenated file identifies that model by name and line.
func TestParseErrorNamesModel(t *testing.T) {
	h := mustModelT(t)
	var buf bytes.Buffer
	if err := Write(&buf, h); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	bad := "HMMER3/f\nNAME second\nLENG 2\nALPH amino\nHMM h\nhdr\ngarbage\n"
	_, err := ReadAll(strings.NewReader(good+bad), abc)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Model != "second" {
		t.Errorf("error names model %q, want %q (err: %v)", pe.Model, "second", err)
	}
	if pe.Line == 0 {
		t.Errorf("error carries no line number: %v", err)
	}
}

func mustModelT(t *testing.T) *Plan7 {
	t.Helper()
	h, err := New(3, abc)
	if err != nil {
		t.Fatal(err)
	}
	h.Name = "seed"
	for k := 1; k <= 3; k++ {
		for r := range h.Mat[k] {
			h.Mat[k][r] = 1.0 / 20
		}
	}
	h.SetUniformInserts()
	h.setStandardTransitions(DefaultBuildParams())
	return h
}
