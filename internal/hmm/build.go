package hmm

import (
	"fmt"
	"math/rand"

	"hmmer3gpu/internal/alphabet"
)

// BuildParams controls construction of simple profile models.
type BuildParams struct {
	// MatchIdentity is the probability mass placed on the consensus
	// residue at each match state; the remainder is spread over the
	// background. Typical protein families sit around 0.4–0.9.
	MatchIdentity float64
	// GapOpen is the probability of M->I and of M->D at each node.
	GapOpen float64
	// GapExtend is the probability of I->I and of D->D.
	GapExtend float64
}

// DefaultBuildParams returns parameters resembling an average Pfam
// family: moderately conserved columns with rare, short gaps.
func DefaultBuildParams() BuildParams {
	return BuildParams{MatchIdentity: 0.6, GapOpen: 0.01, GapExtend: 0.4}
}

// FromConsensus builds a Plan7 model whose match states are peaked on
// the given consensus residues (digital codes, canonical only).
func FromConsensus(name string, consensus []byte, abc *alphabet.Alphabet, p BuildParams) (*Plan7, error) {
	m := len(consensus)
	h, err := New(m, abc)
	if err != nil {
		return nil, err
	}
	h.Name = name
	if p.MatchIdentity <= 0 || p.MatchIdentity >= 1 {
		return nil, fmt.Errorf("hmm: match identity %g out of (0,1)", p.MatchIdentity)
	}
	if p.GapOpen < 0 || 2*p.GapOpen >= 1 || p.GapExtend <= 0 || p.GapExtend >= 1 {
		return nil, fmt.Errorf("hmm: gap parameters open=%g extend=%g invalid", p.GapOpen, p.GapExtend)
	}
	bg := abc.Backgrounds()
	for k := 1; k <= m; k++ {
		c := consensus[k-1]
		if int(c) >= abc.Size() {
			return nil, fmt.Errorf("hmm: consensus position %d is not a canonical residue", k-1)
		}
		rest := 1 - p.MatchIdentity
		for r := range h.Mat[k] {
			h.Mat[k][r] = rest * bg[r]
		}
		h.Mat[k][c] += p.MatchIdentity
	}
	h.SetUniformInserts()
	h.setStandardTransitions(p)
	h.ComputeCompo()
	return h, nil
}

// Random builds a Plan7 model of length m with consensus residues drawn
// from the background distribution — the synthetic stand-in for a Pfam
// family model of a given size.
func Random(name string, m int, abc *alphabet.Alphabet, p BuildParams, rng *rand.Rand) (*Plan7, error) {
	cons := make([]byte, m)
	bg := abc.Backgrounds()
	for i := range cons {
		cons[i] = sampleCanonical(bg, rng)
	}
	return FromConsensus(name, cons, abc, p)
}

func sampleCanonical(bg []float64, rng *rand.Rand) byte {
	u := rng.Float64()
	acc := 0.0
	for r, f := range bg {
		acc += f
		if u < acc {
			return byte(r)
		}
	}
	return byte(len(bg) - 1)
}

// setStandardTransitions installs the uniform gap-cost transition
// structure used by the synthetic model builders.
func (h *Plan7) setStandardTransitions(p BuildParams) {
	for k := 0; k <= h.M; k++ {
		t := h.T[k]
		switch k {
		case 0:
			t[TMM] = 1 // B->M1; local profiles ignore B->D1
			t[TMD] = 0
			t[TMI] = 0
			t[TIM], t[TII] = 1, 0
			t[TDM], t[TDD] = 1, 0
		case h.M:
			t[TMM] = 1 // M_M -> E
			t[TMI], t[TMD] = 0, 0
			t[TIM], t[TII] = 1, 0
			t[TDM], t[TDD] = 1, 0
		default:
			t[TMI], t[TMD] = p.GapOpen, p.GapOpen
			t[TMM] = 1 - 2*p.GapOpen
			t[TII] = p.GapExtend
			t[TIM] = 1 - p.GapExtend
			t[TDD] = p.GapExtend
			t[TDM] = 1 - p.GapExtend
		}
	}
}

// SampleSequence emits a sequence from the core model (a true homolog):
// a straight pass B->M1..M_M->E following the transition structure,
// with match/insert emissions sampled from the model distributions.
// The returned residues are canonical digital codes.
func (h *Plan7) SampleSequence(rng *rand.Rand) []byte {
	var out []byte
	k := 1
	// Choose initial state from begin transitions (local entry ignored:
	// sampling is from the core model).
	inDelete := rng.Float64() < h.T[0][TMD]
	for k <= h.M {
		if inDelete {
			// D_k: emit nothing, move on.
			if k == h.M {
				break
			}
			inDelete = rng.Float64() < h.T[k][TDD]
			k++
			continue
		}
		// M_k: emit a match residue.
		out = append(out, sampleCanonical(h.Mat[k], rng))
		if k == h.M {
			break
		}
		// Transition out of M_k.
		u := rng.Float64()
		switch {
		case u < h.T[k][TMI]:
			// Insert loop at node k.
			for {
				out = append(out, sampleCanonical(h.Ins[k], rng))
				if rng.Float64() >= h.T[k][TII] {
					break
				}
			}
			k++
		case u < h.T[k][TMI]+h.T[k][TMD]:
			inDelete = true
			k++
		default:
			k++
		}
	}
	return out
}
