package hmm

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hmmer3gpu/internal/alphabet"
)

var abc = alphabet.New()

func testModel(t testing.TB, m int, seed int64) *Plan7 {
	t.Helper()
	h, err := Random("test", m, abc, DefaultBuildParams(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewRejectsBadLength(t *testing.T) {
	if _, err := New(0, abc); err == nil {
		t.Error("New(0) accepted")
	}
	if _, err := New(-5, abc); err == nil {
		t.Error("New(-5) accepted")
	}
}

func TestRandomModelValidates(t *testing.T) {
	for _, m := range []int{1, 2, 48, 400} {
		h := testModel(t, m, int64(m))
		if err := h.Validate(); err != nil {
			t.Errorf("M=%d: %v", m, err)
		}
		if h.M != m {
			t.Errorf("M=%d: model length %d", m, h.M)
		}
	}
}

func TestFromConsensusPeaksOnConsensus(t *testing.T) {
	cons, err := abc.Digitize("ACDEFGHIKW")
	if err != nil {
		t.Fatal(err)
	}
	h, err := FromConsensus("peak", cons, abc, DefaultBuildParams())
	if err != nil {
		t.Fatal(err)
	}
	got := h.Consensus()
	if !bytes.Equal(got, cons) {
		t.Errorf("Consensus() = %q, want %q", abc.Textize(got), abc.Textize(cons))
	}
}

func TestFromConsensusRejectsBadParams(t *testing.T) {
	cons := []byte{0, 1, 2}
	bad := []BuildParams{
		{MatchIdentity: 0, GapOpen: 0.01, GapExtend: 0.4},
		{MatchIdentity: 1, GapOpen: 0.01, GapExtend: 0.4},
		{MatchIdentity: 0.5, GapOpen: 0.6, GapExtend: 0.4},
		{MatchIdentity: 0.5, GapOpen: 0.01, GapExtend: 0},
	}
	for i, p := range bad {
		if _, err := FromConsensus("bad", cons, abc, p); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
	if _, err := FromConsensus("bad", []byte{25}, abc, DefaultBuildParams()); err == nil {
		t.Error("non-canonical consensus accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	h := testModel(t, 10, 1)
	h.Mat[3][0] += 0.5
	if err := h.Validate(); err == nil {
		t.Error("corrupted match emissions accepted")
	}
	h = testModel(t, 10, 1)
	h.T[4][TMM] = 2
	if err := h.Validate(); err == nil {
		t.Error("corrupted transitions accepted")
	}
	h = testModel(t, 10, 1)
	h.Ins[2][5] = math.NaN()
	if err := h.Validate(); err == nil {
		t.Error("NaN insert emissions accepted")
	}
}

func TestMeanMatchEntropyPositiveForPeakedModel(t *testing.T) {
	h := testModel(t, 50, 2)
	e := h.MeanMatchEntropy()
	if e <= 0 || e > math.Log2(20) {
		t.Errorf("entropy %g out of plausible range", e)
	}
	// A background-emitting model has ~0 relative entropy.
	flat, err := New(5, abc)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 5; k++ {
		copy(flat.Mat[k], abc.Backgrounds())
	}
	if e := flat.MeanMatchEntropy(); math.Abs(e) > 1e-9 {
		t.Errorf("flat model entropy %g, want 0", e)
	}
}

func TestCloneIsDeep(t *testing.T) {
	h := testModel(t, 20, 3)
	h.ComputeCompo()
	c := h.Clone()
	c.Mat[1][0] = 0.999
	c.T[2][TMM] = 0.123
	c.Compo[0] = 42
	if h.Mat[1][0] == 0.999 || h.T[2][TMM] == 0.123 || h.Compo[0] == 42 {
		t.Error("Clone shares storage with original")
	}
}

func TestSampleSequencePlausible(t *testing.T) {
	h := testModel(t, 100, 4)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		s := h.SampleSequence(rng)
		if len(s) == 0 {
			t.Fatal("sampled empty sequence")
		}
		// With GapOpen=0.01 the emitted length should be near M.
		if len(s) < h.M/2 || len(s) > h.M*2 {
			t.Errorf("sampled length %d implausible for M=%d", len(s), h.M)
		}
		for _, r := range s {
			if int(r) >= abc.Size() {
				t.Fatalf("sampled non-canonical residue %d", r)
			}
		}
	}
}

func TestSampleSequenceMatchesConsensusOften(t *testing.T) {
	cons, _ := abc.Digitize("ACDEFGHIKLMNPQRSTVWY")
	h, err := FromConsensus("c", cons, abc, BuildParams{MatchIdentity: 0.9, GapOpen: 0.001, GapExtend: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	match, total := 0, 0
	for i := 0; i < 200; i++ {
		s := h.SampleSequence(rng)
		if len(s) != len(cons) {
			continue
		}
		for j := range s {
			if s[j] == cons[j] {
				match++
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no full-length samples")
	}
	frac := float64(match) / float64(total)
	if frac < 0.8 {
		t.Errorf("consensus identity %.2f, want >= 0.8", frac)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	h := testModel(t, 37, 6)
	h.Acc = "RP00001"
	h.Desc = "round trip test model"
	h.Stats = CalibrationStats{
		MSVMu: -8.5, MSVLambda: math.Log(2),
		VitMu: -10.25, VitLambda: math.Log(2),
		FwdTau: -4.0, FwdLambda: math.Log(2),
		Calibrated: true,
	}
	var buf bytes.Buffer
	if err := Write(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, abc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != h.Name || back.Acc != h.Acc || back.Desc != h.Desc || back.M != h.M {
		t.Errorf("metadata mismatch: %+v", back)
	}
	if !back.Stats.Calibrated {
		t.Error("stats not round-tripped")
	}
	if math.Abs(back.Stats.MSVMu-h.Stats.MSVMu) > 1e-3 {
		t.Errorf("MSVMu %g != %g", back.Stats.MSVMu, h.Stats.MSVMu)
	}
	const tol = 1e-4 // 5-decimal-digit serialisation
	for k := 1; k <= h.M; k++ {
		for r := range h.Mat[k] {
			if math.Abs(back.Mat[k][r]-h.Mat[k][r]) > tol {
				t.Fatalf("Mat[%d][%d] %g != %g", k, r, back.Mat[k][r], h.Mat[k][r])
			}
		}
		for c := 0; c < NTrans; c++ {
			if math.Abs(back.T[k][c]-h.T[k][c]) > tol {
				t.Fatalf("T[%d][%d] %g != %g", k, c, back.T[k][c], h.T[k][c])
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not hmmer":    "FASTA nonsense\n",
		"no leng":      "HMMER3/f\nNAME x\nALPH amino\nHMM ...\n  hdr\n",
		"empty":        "",
		"truncated":    "HMMER3/f\nNAME x\nLENG 5\nALPH amino\nHMM h\n hdr\n",
		"bad alphabet": "HMMER3/f\nNAME x\nLENG 5\nALPH dna\n",
	}
	for name, in := range cases {
		if _, err := Read(bytes.NewReader([]byte(in)), abc); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		m := int(mRaw)%30 + 1
		h, err := Random("prop", m, abc, DefaultBuildParams(), rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, h); err != nil {
			return false
		}
		back, err := Read(&buf, abc)
		if err != nil {
			return false
		}
		return back.M == h.M && back.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestComputeCompoAveragesEmissions(t *testing.T) {
	h := testModel(t, 10, 8)
	h.ComputeCompo()
	var sum float64
	for _, p := range h.Compo {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("COMPO sums to %g", sum)
	}
}

func TestReadAllMultipleModels(t *testing.T) {
	var buf bytes.Buffer
	var want []*Plan7
	for i := 0; i < 3; i++ {
		h := testModel(t, 5+i*7, int64(40+i))
		h.Name = string(rune('A' + i))
		want = append(want, h)
		if err := Write(&buf, h); err != nil {
			t.Fatal(err)
		}
	}
	models, err := ReadAll(&buf, abc)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 {
		t.Fatalf("parsed %d models, want 3", len(models))
	}
	for i, m := range models {
		if m.Name != want[i].Name || m.M != want[i].M {
			t.Errorf("model %d: got %s/M=%d, want %s/M=%d", i, m.Name, m.M, want[i].Name, want[i].M)
		}
	}
	if _, err := ReadAll(bytes.NewReader(nil), abc); err == nil {
		t.Error("empty multi-model file accepted")
	}
}

func TestReadToleratesAnnotationColumns(t *testing.T) {
	// Real HMMER files carry MAP/CONS/RF/MM/CS annotation columns after
	// the match emissions; the parser must skip them.
	h := testModel(t, 4, 77)
	var buf bytes.Buffer
	if err := Write(&buf, h); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	for i, ln := range lines {
		trimmed := strings.TrimSpace(ln)
		if len(trimmed) > 0 && trimmed[0] >= '1' && trimmed[0] <= '9' &&
			len(strings.Fields(trimmed)) == 21 {
			lines[i] = ln + "  17 x - - -" // MAP CONS RF MM CS
		}
	}
	back, err := Read(strings.NewReader(strings.Join(lines, "\n")), abc)
	if err != nil {
		t.Fatal(err)
	}
	if back.M != h.M {
		t.Errorf("M = %d, want %d", back.M, h.M)
	}
}
