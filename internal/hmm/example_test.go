package hmm_test

import (
	"bytes"
	"fmt"
	"math/rand"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/hmm"
)

// ExampleFromConsensus builds a tiny model from a consensus string and
// prints its consensus back.
func ExampleFromConsensus() {
	abc := alphabet.New()
	cons, _ := abc.Digitize("ACDEFW")
	h, err := hmm.FromConsensus("tiny", cons, abc, hmm.DefaultBuildParams())
	if err != nil {
		panic(err)
	}
	fmt.Println(h.M, abc.Textize(h.Consensus()))
	// Output: 6 ACDEFW
}

// ExampleWrite round-trips a model through the HMMER3 ASCII format.
func ExampleWrite() {
	abc := alphabet.New()
	h, _ := hmm.Random("demo", 4, abc, hmm.DefaultBuildParams(), rand.New(rand.NewSource(1)))

	var buf bytes.Buffer
	if err := hmm.Write(&buf, h); err != nil {
		panic(err)
	}
	back, err := hmm.Read(&buf, abc)
	if err != nil {
		panic(err)
	}
	fmt.Println(back.Name, back.M)
	// Output: demo 4
}
