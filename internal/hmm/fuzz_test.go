package hmm

import (
	"bytes"
	"testing"
)

// FuzzParseHMM checks the HMMER3 parser never panics and that accepted
// models validate and re-serialise.
func FuzzParseHMM(f *testing.F) {
	// Seed with a real serialised model plus hostile variants.
	h := mustModel(f)
	var buf bytes.Buffer
	if err := Write(&buf, h); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("HMMER3/f\nNAME x\nLENG 1\nALPH amino\nHMM h\nhdr\n")
	f.Add("HMMER3/f\nLENG -3\n")
	f.Add("")
	f.Add("HMMER3/f\nNAME x\nLENG 999999999\nALPH amino\nHMM h\n")
	f.Fuzz(func(t *testing.T, in string) {
		// Guard against adversarial LENG values allocating gigabytes:
		// the parser allocates (LENG+1) rows, so cap input size-driven
		// lengths the same way a service would. (The parser itself only
		// allocates after LENG is validated positive; a huge value is
		// legal format-wise, so skip those inputs.)
		if len(in) > 1<<16 {
			return
		}
		m, err := Read(bytes.NewReader([]byte(in)), abc)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted model fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := Write(&out, m); err != nil {
			t.Fatalf("accepted model fails serialisation: %v", err)
		}
	})
}

func mustModel(f *testing.F) *Plan7 {
	f.Helper()
	h, err := New(3, abc)
	if err != nil {
		f.Fatal(err)
	}
	h.Name = "seed"
	for k := 1; k <= 3; k++ {
		for r := range h.Mat[k] {
			h.Mat[k][r] = 1.0 / 20
		}
	}
	h.SetUniformInserts()
	h.setStandardTransitions(DefaultBuildParams())
	return h
}
