package hmm

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"hmmer3gpu/internal/alphabet"
)

// HMMER3 ASCII save-file support. The format stores probabilities as
// negative natural logs, with "*" denoting probability zero. Each model
// node occupies three lines: match emissions (with node index and
// annotation columns), insert emissions, and the seven transitions.

const formatTag = "HMMER3/f"

// MaxModelLength bounds LENG when parsing untrusted files; the largest
// known protein domain models are a few thousand states (titin-scale
// full proteins reach ~35k), so 100k is generous while preventing an
// adversarial header from forcing a huge allocation. Services parsing
// hostile uploads can lower it; 0 disables the check.
var MaxModelLength = 100000

// ParseError is a structured HMM parse failure: Line is the 1-based
// input line where parsing stopped, Model names the model being parsed
// ("" when the failure precedes its NAME line), and Msg describes the
// failure. Callers rejecting one model of a Pfam-scale concatenation
// can errors.As for it instead of string-matching.
type ParseError struct {
	Line  int
	Model string
	Msg   string
}

func (e *ParseError) Error() string {
	if e.Model != "" {
		return fmt.Sprintf("hmm: line %d: model %q: %s", e.Line, e.Model, e.Msg)
	}
	return fmt.Sprintf("hmm: line %d: %s", e.Line, e.Msg)
}

// Write serialises the model in HMMER3/f ASCII format.
func Write(w io.Writer, h *Plan7) error {
	if err := h.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s [hmmer3gpu reproduction]\n", formatTag)
	fmt.Fprintf(bw, "NAME  %s\n", h.Name)
	if h.Acc != "" {
		fmt.Fprintf(bw, "ACC   %s\n", h.Acc)
	}
	if h.Desc != "" {
		fmt.Fprintf(bw, "DESC  %s\n", h.Desc)
	}
	fmt.Fprintf(bw, "LENG  %d\n", h.M)
	fmt.Fprintf(bw, "ALPH  amino\n")
	if h.Stats.Calibrated {
		fmt.Fprintf(bw, "STATS LOCAL MSV      %8.4f %8.5f\n", h.Stats.MSVMu, h.Stats.MSVLambda)
		fmt.Fprintf(bw, "STATS LOCAL VITERBI  %8.4f %8.5f\n", h.Stats.VitMu, h.Stats.VitLambda)
		fmt.Fprintf(bw, "STATS LOCAL FORWARD  %8.4f %8.5f\n", h.Stats.FwdTau, h.Stats.FwdLambda)
	}
	// Column header rows.
	fmt.Fprintf(bw, "HMM     ")
	for r := 0; r < h.Abc.Size(); r++ {
		fmt.Fprintf(bw, " %8c", alphabet.Symbols[r])
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "        %9s %8s %8s %8s %8s %8s %8s\n",
		"m->m", "m->i", "m->d", "i->m", "i->i", "d->m", "d->d")
	if h.Compo != nil {
		fmt.Fprintf(bw, "  COMPO ")
		writeProbLine(bw, h.Compo)
	}
	// Node 0: insert-0 emissions and begin transitions.
	fmt.Fprintf(bw, "        ")
	writeProbLine(bw, h.Abc.Backgrounds())
	fmt.Fprintf(bw, "        ")
	writeProbLine(bw, h.T[0])
	for k := 1; k <= h.M; k++ {
		fmt.Fprintf(bw, "%7d ", k)
		writeProbLine(bw, h.Mat[k])
		fmt.Fprintf(bw, "        ")
		if k < h.M {
			writeProbLine(bw, h.Ins[k])
		} else {
			writeProbLine(bw, h.Abc.Backgrounds())
		}
		fmt.Fprintf(bw, "        ")
		writeProbLine(bw, h.T[k])
	}
	fmt.Fprintln(bw, "//")
	return bw.Flush()
}

func writeProbLine(w io.Writer, probs []float64) {
	for i, p := range probs {
		if i > 0 {
			fmt.Fprint(w, " ")
		}
		if p <= 0 {
			fmt.Fprintf(w, "%8s", "*")
		} else {
			fmt.Fprintf(w, "%8.5f", -math.Log(p))
		}
	}
	fmt.Fprintln(w)
}

// Read parses one model in HMMER3 ASCII format. Annotation columns
// after the emission scores on match lines (MAP/CONS/RF/MM/CS) are
// tolerated and ignored.
func Read(r io.Reader, abc *alphabet.Alphabet) (*Plan7, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	p := &parser{sc: sc, abc: abc}
	return p.parse()
}

// ReadAll parses every model in a multi-model HMMER3 file (Pfam ships
// tens of thousands of concatenated models per file).
func ReadAll(r io.Reader, abc *alphabet.Alphabet) ([]*Plan7, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	p := &parser{sc: sc, abc: abc}
	var out []*Plan7
	for {
		if !p.peek() {
			break
		}
		h, err := p.parse()
		if err != nil {
			return nil, fmt.Errorf("hmm: model %d: %w", len(out)+1, err)
		}
		out = append(out, h)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("hmm: no models found")
	}
	return out, nil
}

type parser struct {
	sc      *bufio.Scanner
	abc     *alphabet.Alphabet
	line    int
	pending string
	// name is the NAME of the model currently being parsed, so errors
	// can identify the offending model in a multi-model file.
	name string
}

func (p *parser) next() (string, error) {
	if p.pending != "" {
		t := p.pending
		p.pending = ""
		return t, nil
	}
	for p.sc.Scan() {
		p.line++
		text := strings.TrimSpace(p.sc.Text())
		if text != "" {
			return text, nil
		}
	}
	if err := p.sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// peek reports whether another non-blank line exists, buffering it for
// the next call to next.
func (p *parser) peek() bool {
	if p.pending != "" {
		return true
	}
	t, err := p.next()
	if err != nil {
		return false
	}
	p.pending = t
	return true
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Model: p.name, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parse() (*Plan7, error) {
	p.name = ""
	head, err := p.next()
	if err != nil {
		return nil, fmt.Errorf("hmm: reading header: %w", err)
	}
	if !strings.HasPrefix(head, "HMMER3") {
		return nil, p.errf("not a HMMER3 save file (got %q)", head)
	}

	var (
		name, acc, desc string
		leng            int
		stats           CalibrationStats
	)
	// Header section until the HMM line.
	var line string
	for {
		line, err = p.next()
		if err != nil {
			return nil, p.errf("unexpected end of header: %v", err)
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "NAME":
			if len(fields) < 2 {
				return nil, p.errf("NAME line missing value")
			}
			name = fields[1]
			p.name = name
		case "ACC":
			if len(fields) > 1 {
				acc = fields[1]
			}
		case "DESC":
			desc = strings.TrimSpace(strings.TrimPrefix(line, "DESC"))
		case "LENG":
			if len(fields) < 2 {
				return nil, p.errf("LENG line missing value")
			}
			leng, err = strconv.Atoi(fields[1])
			if err != nil || leng < 1 || (MaxModelLength > 0 && leng > MaxModelLength) {
				return nil, p.errf("bad LENG value %q (max %d)", fields[1], MaxModelLength)
			}
		case "ALPH":
			if len(fields) < 2 || !strings.EqualFold(fields[1], "amino") {
				return nil, p.errf("only the amino alphabet is supported")
			}
		case "STATS":
			if len(fields) != 5 || fields[1] != "LOCAL" {
				return nil, p.errf("malformed STATS line")
			}
			a, err1 := strconv.ParseFloat(fields[3], 64)
			b, err2 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil {
				return nil, p.errf("malformed STATS values")
			}
			switch fields[2] {
			case "MSV":
				stats.MSVMu, stats.MSVLambda = a, b
			case "VITERBI":
				stats.VitMu, stats.VitLambda = a, b
			case "FORWARD":
				stats.FwdTau, stats.FwdLambda = a, b
			}
			stats.Calibrated = true
		case "HMM":
			goto body
		default:
			// Ignore unknown header lines (RF, MM, CONS, CS, MAP, DATE,
			// NSEQ, EFFN, CKSUM, GA, TC, NC, ...).
		}
	}
body:
	if leng == 0 {
		return nil, p.errf("missing LENG before HMM body")
	}
	h, err := New(leng, p.abc)
	if err != nil {
		return nil, err
	}
	h.Name, h.Acc, h.Desc, h.Stats = name, acc, desc, stats

	// Skip the transition-name header row.
	if _, err := p.next(); err != nil {
		return nil, p.errf("unexpected EOF after HMM line")
	}

	line, err = p.next()
	if err != nil {
		return nil, p.errf("unexpected EOF in model body")
	}
	if strings.HasPrefix(line, "COMPO") {
		compo, err := parseProbFields(strings.Fields(line)[1:], p.abc.Size())
		if err != nil {
			return nil, p.errf("COMPO: %v", err)
		}
		h.Compo = compo
		line, err = p.next()
		if err != nil {
			return nil, p.errf("unexpected EOF after COMPO")
		}
	}
	// Node 0: insert emissions (ignored; we use backgrounds) then
	// begin transitions.
	if _, err := parseProbFields(strings.Fields(line), p.abc.Size()); err != nil {
		return nil, p.errf("insert-0 emissions: %v", err)
	}
	line, err = p.next()
	if err != nil {
		return nil, p.errf("unexpected EOF before begin transitions")
	}
	t0, err := parseProbFields(strings.Fields(line), NTrans)
	if err != nil {
		return nil, p.errf("begin transitions: %v", err)
	}
	copy(h.T[0], t0)

	for k := 1; k <= leng; k++ {
		// Match emission line: node index, K emissions, optional
		// annotation columns.
		line, err = p.next()
		if err != nil {
			return nil, p.errf("unexpected EOF at node %d", k)
		}
		fields := strings.Fields(line)
		if len(fields) < 1+p.abc.Size() {
			return nil, p.errf("node %d: match line has %d fields, need >= %d", k, len(fields), 1+p.abc.Size())
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil || idx != k {
			return nil, p.errf("node %d: unexpected node index %q", k, fields[0])
		}
		mat, err := parseProbFields(fields[1:1+p.abc.Size()], p.abc.Size())
		if err != nil {
			return nil, p.errf("node %d match emissions: %v", k, err)
		}
		copy(h.Mat[k], mat)

		line, err = p.next()
		if err != nil {
			return nil, p.errf("unexpected EOF at node %d inserts", k)
		}
		ins, err := parseProbFields(strings.Fields(line), p.abc.Size())
		if err != nil {
			return nil, p.errf("node %d insert emissions: %v", k, err)
		}
		copy(h.Ins[k], ins)

		line, err = p.next()
		if err != nil {
			return nil, p.errf("unexpected EOF at node %d transitions", k)
		}
		tr, err := parseProbFields(strings.Fields(line), NTrans)
		if err != nil {
			return nil, p.errf("node %d transitions: %v", k, err)
		}
		copy(h.T[k], tr)
	}
	line, err = p.next()
	if err != nil || line != "//" {
		return nil, p.errf("missing // terminator (got %q)", line)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

func parseProbFields(fields []string, n int) ([]float64, error) {
	if len(fields) < n {
		return nil, fmt.Errorf("have %d fields, need %d", len(fields), n)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if fields[i] == "*" {
			out[i] = 0
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("field %d: %v", i, err)
		}
		out[i] = math.Exp(-v)
	}
	return out, nil
}
