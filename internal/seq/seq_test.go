package seq

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hmmer3gpu/internal/alphabet"
)

var abc = alphabet.New()

func mkSeq(t testing.TB, name, text string) *Sequence {
	t.Helper()
	dsq, err := abc.Digitize(text)
	if err != nil {
		t.Fatal(err)
	}
	return &Sequence{Name: name, Residues: dsq}
}

func TestDatabaseStats(t *testing.T) {
	db := NewDatabase("test")
	db.Add(mkSeq(t, "a", "ACDE"))
	db.Add(mkSeq(t, "b", "ACDEFGHIKL"))
	db.Add(mkSeq(t, "c", "AC"))
	if db.NumSeqs() != 3 {
		t.Errorf("NumSeqs = %d", db.NumSeqs())
	}
	if db.TotalResidues() != 16 {
		t.Errorf("TotalResidues = %d, want 16", db.TotalResidues())
	}
	if db.MaxLen() != 10 {
		t.Errorf("MaxLen = %d, want 10", db.MaxLen())
	}
	if got := db.MeanLen(); got != 16.0/3.0 {
		t.Errorf("MeanLen = %g", got)
	}
	if got := db.LengthQuantile(0.5); got != 4 {
		t.Errorf("median length = %d, want 4", got)
	}
}

func TestEmptyDatabaseStats(t *testing.T) {
	db := NewDatabase("empty")
	if db.MeanLen() != 0 || db.MaxLen() != 0 || db.LengthQuantile(0.5) != 0 {
		t.Error("empty database stats should all be zero")
	}
}

func TestValidateRejectsGapCodes(t *testing.T) {
	s := &Sequence{Name: "bad", Residues: []byte{0, 1, alphabet.CodeGap}}
	if err := s.Validate(abc); err == nil {
		t.Error("Validate accepted an embedded gap code")
	}
}

func TestPartitionBalancesResidues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := NewDatabase("p")
	for i := 0; i < 500; i++ {
		n := 20 + rng.Intn(400)
		res := make([]byte, n)
		for j := range res {
			res[j] = byte(rng.Intn(20))
		}
		db.Add(&Sequence{Name: "s", Residues: res})
	}
	for _, parts := range []int{1, 2, 3, 4, 8} {
		shards := db.Partition(parts)
		if len(shards) != parts {
			t.Fatalf("Partition(%d) returned %d shards", parts, len(shards))
		}
		var total int64
		count := 0
		for _, sh := range shards {
			total += sh.TotalResidues()
			count += sh.NumSeqs()
		}
		if total != db.TotalResidues() || count != db.NumSeqs() {
			t.Fatalf("Partition(%d) lost work: %d/%d residues, %d/%d seqs",
				parts, total, db.TotalResidues(), count, db.NumSeqs())
		}
		// Balance: each shard within 2x of ideal for this smooth workload.
		ideal := float64(db.TotalResidues()) / float64(parts)
		for i, sh := range shards {
			r := float64(sh.TotalResidues())
			if r < ideal*0.5 || r > ideal*2.0 {
				t.Errorf("Partition(%d) shard %d has %g residues, ideal %g", parts, i, r, ideal)
			}
		}
	}
}

func TestPartitionPreservesOrderProperty(t *testing.T) {
	f := func(lens []uint8, nParts uint8) bool {
		if len(lens) == 0 {
			return true
		}
		db := NewDatabase("q")
		for i, l := range lens {
			db.Add(&Sequence{Name: string(rune('a' + i%26)), Residues: make([]byte, int(l)+1)})
		}
		n := int(nParts)%4 + 1
		if n > db.NumSeqs() {
			n = db.NumSeqs()
		}
		shards := db.Partition(n)
		idx := 0
		for _, sh := range shards {
			for _, s := range sh.Seqs {
				if s != db.Seqs[idx] {
					return false
				}
				idx++
			}
		}
		return idx == db.NumSeqs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadFASTA(t *testing.T) {
	in := `>seq1 first test sequence
ACDEFGHIKL
MNPQRSTVWY
>seq2
ACACAC

>seq3 trailing
W
`
	db, err := ReadFASTA(strings.NewReader(in), abc)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSeqs() != 3 {
		t.Fatalf("parsed %d sequences, want 3", db.NumSeqs())
	}
	if db.Seqs[0].Name != "seq1" || db.Seqs[0].Desc != "first test sequence" {
		t.Errorf("header parse: name=%q desc=%q", db.Seqs[0].Name, db.Seqs[0].Desc)
	}
	if got := abc.Textize(db.Seqs[0].Residues); got != "ACDEFGHIKLMNPQRSTVWY" {
		t.Errorf("seq1 = %q", got)
	}
	if db.Seqs[1].Len() != 6 || db.Seqs[2].Len() != 1 {
		t.Errorf("lengths = %d, %d", db.Seqs[1].Len(), db.Seqs[2].Len())
	}
}

func TestReadFASTAErrors(t *testing.T) {
	cases := map[string]string{
		"data before header": "ACDEF\n>x\nAC\n",
		"empty name":         ">\nAC\n",
		"bad residue":        ">x\nAC1DEF\n",
		"empty input":        "",
	}
	for name, in := range cases {
		if _, err := ReadFASTA(strings.NewReader(in), abc); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestFASTARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := NewDatabase("rt")
	for i := 0; i < 20; i++ {
		n := 1 + rng.Intn(200)
		res := make([]byte, n)
		for j := range res {
			res[j] = byte(rng.Intn(26)) // includes degenerates
		}
		s := &Sequence{Name: "rt" + string(rune('a'+i)), Residues: res}
		if i%2 == 0 {
			s.Desc = "description text"
		}
		db.Add(s)
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, db, abc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf, abc)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSeqs() != db.NumSeqs() {
		t.Fatalf("round trip count %d != %d", back.NumSeqs(), db.NumSeqs())
	}
	for i := range db.Seqs {
		a, b := db.Seqs[i], back.Seqs[i]
		if a.Name != b.Name || a.Desc != b.Desc || !bytes.Equal(a.Residues, b.Residues) {
			t.Errorf("seq %d mismatch after round trip", i)
		}
	}
}

func TestPackedAccessor(t *testing.T) {
	s := mkSeq(t, "p", "ACDEFGHIKLMNP")
	words := s.Packed()
	got := alphabet.Unpack(words, s.Len())
	if !bytes.Equal(got, s.Residues) {
		t.Error("Packed/Unpack mismatch")
	}
}

func TestLengthQuantileBounds(t *testing.T) {
	db := NewDatabase("q")
	for _, n := range []int{5, 1, 9, 3} {
		db.Add(&Sequence{Name: "s", Residues: make([]byte, n)})
	}
	if got := db.LengthQuantile(0); got != 1 {
		t.Errorf("q0 = %d, want 1", got)
	}
	if got := db.LengthQuantile(1); got != 9 {
		t.Errorf("q1 = %d, want 9", got)
	}
	if got := db.LengthQuantile(-0.5); got != 1 {
		t.Errorf("q<0 = %d, want clamp to min", got)
	}
}

func TestSliceSharesBacking(t *testing.T) {
	db := NewDatabase("s")
	for i := 0; i < 5; i++ {
		db.Add(&Sequence{Name: string(rune('a' + i)), Residues: []byte{0}})
	}
	sub := db.Slice(1, 4)
	if sub.NumSeqs() != 3 || sub.Seqs[0] != db.Seqs[1] {
		t.Error("Slice should be a view over the same sequences")
	}
}

func TestStreamFASTAMatchesRead(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := NewDatabase("stream")
	for i := 0; i < 53; i++ {
		n := 1 + rng.Intn(120)
		res := make([]byte, n)
		for j := range res {
			res[j] = byte(rng.Intn(20))
		}
		db.Add(&Sequence{Name: "s" + string(rune('a'+i%26)) + string(rune('0'+i/26)), Residues: res})
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, db, abc); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, batchSize := range []int{1, 7, 53, 100} {
		var got []*Sequence
		batches := 0
		err := StreamFASTA(strings.NewReader(text), abc, batchSize, func(b *Database) error {
			if b.NumSeqs() > batchSize {
				t.Fatalf("batch of %d exceeds size %d", b.NumSeqs(), batchSize)
			}
			got = append(got, b.Seqs...)
			batches++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != db.NumSeqs() {
			t.Fatalf("batchSize=%d: streamed %d seqs, want %d", batchSize, len(got), db.NumSeqs())
		}
		wantBatches := (db.NumSeqs() + batchSize - 1) / batchSize
		if batches != wantBatches {
			t.Errorf("batchSize=%d: %d batches, want %d", batchSize, batches, wantBatches)
		}
		for i := range got {
			if got[i].Name != db.Seqs[i].Name || !bytes.Equal(got[i].Residues, db.Seqs[i].Residues) {
				t.Fatalf("batchSize=%d: sequence %d differs", batchSize, i)
			}
		}
	}
}

func TestStreamFASTAErrors(t *testing.T) {
	if err := StreamFASTA(strings.NewReader(">a\nAC\n"), abc, 0, func(*Database) error { return nil }); err == nil {
		t.Error("batch size 0 accepted")
	}
	if err := StreamFASTA(strings.NewReader(""), abc, 4, func(*Database) error { return nil }); err == nil {
		t.Error("empty stream accepted")
	}
	sentinel := StreamFASTA(strings.NewReader(">a\nAC\n>b\nDE\n"), abc, 1, func(b *Database) error {
		return bytes.ErrTooLarge // any sentinel error
	})
	if sentinel == nil {
		t.Error("callback error not propagated")
	}
}

func TestStreamFASTAResiduesBalancesBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	db := NewDatabase("resstream")
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(200) // heavy length skew
		res := make([]byte, n)
		for j := range res {
			res[j] = byte(rng.Intn(20))
		}
		db.Add(&Sequence{Name: fmt.Sprintf("r%03d", i), Residues: res})
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, db, abc); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, budget := range []int64{1, 150, 1000, db.TotalResidues() * 2} {
		var got []*Sequence
		err := StreamFASTAResidues(strings.NewReader(text), abc, budget, func(b *Database) error {
			got = append(got, b.Seqs...)
			// A batch may exceed the budget only by its last sequence.
			if b.NumSeqs() > 1 {
				last := int64(b.Seqs[b.NumSeqs()-1].Len())
				if b.TotalResidues()-last >= budget {
					t.Fatalf("budget=%d: batch holds %d residues before its last sequence",
						budget, b.TotalResidues()-last)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != db.NumSeqs() {
			t.Fatalf("budget=%d: streamed %d seqs, want %d", budget, len(got), db.NumSeqs())
		}
		for i := range got {
			if got[i].Name != db.Seqs[i].Name || !bytes.Equal(got[i].Residues, db.Seqs[i].Residues) {
				t.Fatalf("budget=%d: sequence %d differs", budget, i)
			}
		}
	}
	// Every batch but the last must meet the budget.
	budget := int64(300)
	var sizes []int64
	err := StreamFASTAResidues(strings.NewReader(text), abc, budget, func(b *Database) error {
		sizes = append(sizes, b.TotalResidues())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range sizes[:len(sizes)-1] {
		if n < budget {
			t.Errorf("batch %d holds %d residues, budget %d", i, n, budget)
		}
	}
	if err := StreamFASTAResidues(strings.NewReader(text), abc, 0, func(*Database) error { return nil }); err == nil {
		t.Error("residue budget 0 accepted")
	}
}

func TestShuffledPreservesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	orig := make([]byte, 500)
	for i := range orig {
		orig[i] = byte(rng.Intn(20))
	}
	sh := Shuffled(orig, rng)
	if len(sh) != len(orig) {
		t.Fatal("length changed")
	}
	var a, b [20]int
	for i := range orig {
		a[orig[i]]++
		b[sh[i]]++
	}
	if a != b {
		t.Error("composition changed")
	}
	if bytes.Equal(sh, orig) {
		t.Error("shuffle returned the identical order (astronomically unlikely)")
	}
	// The input must not be mutated.
	var c [20]int
	for _, r := range orig {
		c[r]++
	}
	if c != a {
		t.Error("input mutated")
	}
}

func TestPartitionMoreShardsThanSequences(t *testing.T) {
	db := NewDatabase("tiny")
	db.Add(&Sequence{Name: "a", Residues: make([]byte, 10)})
	db.Add(&Sequence{Name: "b", Residues: make([]byte, 10)})
	shards := db.Partition(5)
	// Partition never splits a sequence, so it may return fewer shards
	// than requested; work must still be complete.
	total := 0
	for _, sh := range shards {
		total += sh.NumSeqs()
	}
	if total != 2 {
		t.Fatalf("lost sequences: %d", total)
	}
	if len(shards) > 5 {
		t.Fatalf("returned %d shards", len(shards))
	}
}
