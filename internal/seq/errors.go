package seq

import "fmt"

// MaxRecordLen bounds the residues of a single FASTA record when
// parsing untrusted input. The longest known protein (titin) is ~35k
// residues, so the default of 64M is far beyond anything biological
// while still preventing a malformed headerless concatenation from
// swallowing the whole input into one record. Set to 0 to disable the
// check; services parsing hostile uploads should lower it.
var MaxRecordLen = 64 << 20

// ParseError is a structured FASTA parse failure: Line is the 1-based
// input line where parsing stopped, Record names the sequence being
// parsed ("" when the failure precedes the first header), and Msg
// describes the failure. Callers that want to surface the offending
// record (a web service rejecting one sequence of a large upload, say)
// can errors.As for it instead of string-matching.
type ParseError struct {
	Line   int
	Record string
	Msg    string
}

func (e *ParseError) Error() string {
	if e.Record != "" {
		return fmt.Sprintf("fasta: line %d: record %q: %s", e.Line, e.Record, e.Msg)
	}
	return fmt.Sprintf("fasta: line %d: %s", e.Line, e.Msg)
}

// parseErrf builds a *ParseError in one line at the call sites.
func parseErrf(line int, record, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Record: record, Msg: fmt.Sprintf(format, args...)}
}
