package seq

import (
	"errors"
	"strings"
	"testing"
)

// TestMaxRecordLen checks the untrusted-input record cap: a sequence
// over the limit is rejected with a structured error naming the record,
// in both the whole-file and streaming parsers.
func TestMaxRecordLen(t *testing.T) {
	defer func(old int) { MaxRecordLen = old }(MaxRecordLen)
	MaxRecordLen = 10
	in := ">ok\nACDEF\n>huge description\nACDEFGHIKL\nMNPQR\n"

	_, err := ReadFASTA(strings.NewReader(in), abc)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("ReadFASTA: want *ParseError, got %v", err)
	}
	if pe.Record != "huge" {
		t.Errorf("ReadFASTA: error names record %q, want %q (err: %v)", pe.Record, "huge", err)
	}

	err = StreamFASTA(strings.NewReader(in), abc, 1, func(*Database) error { return nil })
	pe = nil
	if !errors.As(err, &pe) {
		t.Fatalf("StreamFASTA: want *ParseError, got %v", err)
	}
	if pe.Record != "huge" {
		t.Errorf("StreamFASTA: error names record %q, want %q (err: %v)", pe.Record, "huge", err)
	}

	// At exactly the limit the record is accepted.
	db, err := ReadFASTA(strings.NewReader(">exact\nACDEFGHIKL\n"), abc)
	if err != nil {
		t.Fatalf("record at the limit rejected: %v", err)
	}
	if db.Seqs[0].Len() != 10 {
		t.Errorf("got %d residues, want 10", db.Seqs[0].Len())
	}
}

// TestParseErrorNamesRecordAndLine checks the structured error carries
// the offending line and record for a mid-file residue error.
func TestParseErrorNamesRecordAndLine(t *testing.T) {
	in := ">good\nACDEF\n>bad\nAC1EF\n"
	_, err := ReadFASTA(strings.NewReader(in), abc)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Record != "bad" || pe.Line != 4 {
		t.Errorf("got record %q line %d, want %q line 4 (err: %v)", pe.Record, pe.Line, "bad", err)
	}
	if !strings.Contains(err.Error(), `"bad"`) || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("message should name record and line: %v", err)
	}
}
