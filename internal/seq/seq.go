// Package seq provides digital protein sequences and sequence-database
// containers for the HMMER3 reproduction, including FASTA input/output.
package seq

import (
	"fmt"
	"math/rand"
	"sort"

	"hmmer3gpu/internal/alphabet"
)

// Sequence is a protein sequence in digital form.
type Sequence struct {
	// Name is the identifier from the FASTA header (up to first space).
	Name string
	// Desc is the remainder of the FASTA header, if any.
	Desc string
	// Residues holds digital residue codes (see package alphabet).
	Residues []byte
}

// Len returns the residue count.
func (s *Sequence) Len() int { return len(s.Residues) }

// Validate checks that all residue codes denote residues (no gap-like
// codes embedded in an unaligned sequence).
func (s *Sequence) Validate(abc *alphabet.Alphabet) error {
	for i, c := range s.Residues {
		if !abc.IsResidue(c) {
			return fmt.Errorf("seq %s: position %d holds non-residue code %d", s.Name, i, c)
		}
	}
	return nil
}

// Packed returns the 5-bit packed representation of the sequence (the
// layout uploaded to the device).
func (s *Sequence) Packed() []uint32 { return alphabet.Pack(s.Residues) }

// Database is an in-memory sequence database.
type Database struct {
	// Name labels the database in reports (e.g. "swissprot-like").
	Name string
	// Seqs holds the sequences in database order.
	Seqs []*Sequence
}

// NewDatabase returns an empty named database.
func NewDatabase(name string) *Database {
	return &Database{Name: name}
}

// Add appends a sequence.
func (db *Database) Add(s *Sequence) { db.Seqs = append(db.Seqs, s) }

// NumSeqs returns the number of sequences.
func (db *Database) NumSeqs() int { return len(db.Seqs) }

// TotalResidues returns the summed residue count over all sequences
// (the paper's "collective residues", which equals the total number of
// dynamic-programming rows processed).
func (db *Database) TotalResidues() int64 {
	var n int64
	for _, s := range db.Seqs {
		n += int64(s.Len())
	}
	return n
}

// MaxLen returns the length of the longest sequence (0 if empty).
func (db *Database) MaxLen() int {
	m := 0
	for _, s := range db.Seqs {
		if s.Len() > m {
			m = s.Len()
		}
	}
	return m
}

// MeanLen returns the average sequence length (0 if empty).
func (db *Database) MeanLen() float64 {
	if len(db.Seqs) == 0 {
		return 0
	}
	return float64(db.TotalResidues()) / float64(len(db.Seqs))
}

// LengthQuantile returns the q-quantile (0..1) of sequence length.
func (db *Database) LengthQuantile(q float64) int {
	if len(db.Seqs) == 0 {
		return 0
	}
	lens := make([]int, len(db.Seqs))
	for i, s := range db.Seqs {
		lens[i] = s.Len()
	}
	sort.Ints(lens)
	idx := int(q * float64(len(lens)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lens) {
		idx = len(lens) - 1
	}
	return lens[idx]
}

// Slice returns a shallow sub-database covering Seqs[lo:hi], used to
// partition work across devices.
func (db *Database) Slice(lo, hi int) *Database {
	return &Database{Name: db.Name, Seqs: db.Seqs[lo:hi]}
}

// Partition splits the database into n shards with near-equal residue
// counts (not sequence counts), the balance criterion that matters for
// DP workloads. Shards preserve database order.
func (db *Database) Partition(n int) []*Database {
	if n <= 1 {
		return []*Database{db}
	}
	total := db.TotalResidues()
	target := total / int64(n)
	shards := make([]*Database, 0, n)
	start, acc := 0, int64(0)
	for i, s := range db.Seqs {
		acc += int64(s.Len())
		// Close a shard when it reaches its residue target, keeping
		// enough sequences for the remaining shards.
		if acc >= target && len(shards) < n-1 && len(db.Seqs)-i-1 >= n-len(shards)-1 {
			shards = append(shards, db.Slice(start, i+1))
			start, acc = i+1, 0
		}
	}
	shards = append(shards, db.Slice(start, len(db.Seqs)))
	return shards
}

// Shuffled returns a residue-shuffled copy of dsq (Fisher-Yates): the
// composition is preserved but the motif order is destroyed — the
// standard decoy construction for specificity (false-positive-rate)
// experiments.
func Shuffled(dsq []byte, rng *rand.Rand) []byte {
	out := append([]byte(nil), dsq...)
	for i := len(out) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
