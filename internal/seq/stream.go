package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"hmmer3gpu/internal/alphabet"
)

// StreamFASTA parses FASTA input in batches of up to batchSize
// sequences, invoking fn for each batch — the memory-bounded path for
// databases at the paper's Env_nr scale (6.5M sequences) that should
// not be held in RAM at once. fn receives batches in file order; a
// non-nil error from fn aborts the stream.
func StreamFASTA(r io.Reader, abc *alphabet.Alphabet, batchSize int, fn func(batch *Database) error) error {
	if batchSize < 1 {
		return fmt.Errorf("fasta: batch size %d < 1", batchSize)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	batch := NewDatabase("stream")
	var cur *Sequence
	line := 0
	total := 0

	emit := func() error {
		if batch.NumSeqs() == 0 {
			return nil
		}
		if err := fn(batch); err != nil {
			return err
		}
		batch = NewDatabase("stream")
		return nil
	}
	flush := func() error {
		if cur == nil {
			return nil
		}
		if err := cur.Validate(abc); err != nil {
			return err
		}
		batch.Add(cur)
		total++
		cur = nil
		if batch.NumSeqs() >= batchSize {
			return emit()
		}
		return nil
	}

	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t\r")
		if text == "" {
			continue
		}
		if text[0] == '>' {
			if err := flush(); err != nil {
				return err
			}
			header := strings.TrimSpace(text[1:])
			name, desc := header, ""
			if i := strings.IndexAny(header, " \t"); i >= 0 {
				name, desc = header[:i], strings.TrimSpace(header[i+1:])
			}
			if name == "" {
				return fmt.Errorf("fasta: line %d: empty sequence name", line)
			}
			cur = &Sequence{Name: name, Desc: desc}
			continue
		}
		if cur == nil {
			return fmt.Errorf("fasta: line %d: sequence data before first header", line)
		}
		dsq, err := abc.Digitize(text)
		if err != nil {
			return fmt.Errorf("fasta: line %d: %w", line, err)
		}
		cur.Residues = append(cur.Residues, dsq...)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("fasta: %w", err)
	}
	if err := flush(); err != nil {
		return err
	}
	if err := emit(); err != nil {
		return err
	}
	if total == 0 {
		return fmt.Errorf("fasta: no sequences found")
	}
	return nil
}
