package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"hmmer3gpu/internal/alphabet"
)

// StreamFASTA parses FASTA input in batches of up to batchSize
// sequences, invoking fn for each batch — the memory-bounded path for
// databases at the paper's Env_nr scale (6.5M sequences) that should
// not be held in RAM at once. fn receives batches in file order; a
// non-nil error from fn aborts the stream.
func StreamFASTA(r io.Reader, abc *alphabet.Alphabet, batchSize int, fn func(batch *Database) error) error {
	if batchSize < 1 {
		return fmt.Errorf("fasta: batch size %d < 1", batchSize)
	}
	return streamFASTA(r, abc, func(seqs int, residues int64) bool {
		return seqs >= batchSize
	}, fn)
}

// StreamFASTAResidues parses FASTA input in residue-balanced batches:
// a batch closes once it holds at least residueBudget residues (always
// after a whole sequence, so a batch can exceed the budget by at most
// one sequence). Residue-balanced batches equalise DP work per batch —
// the balance criterion that matters when batches are scheduled across
// devices — whereas sequence-count batches can differ widely in cost
// under length skew. fn receives batches in file order.
func StreamFASTAResidues(r io.Reader, abc *alphabet.Alphabet, residueBudget int64, fn func(batch *Database) error) error {
	if residueBudget < 1 {
		return fmt.Errorf("fasta: residue budget %d < 1", residueBudget)
	}
	return streamFASTA(r, abc, func(seqs int, residues int64) bool {
		return residues >= residueBudget
	}, fn)
}

// streamFASTA is the shared scanner behind both batching policies:
// full(seqs, residues) is consulted after each complete sequence and
// closes the current batch when it returns true.
func streamFASTA(r io.Reader, abc *alphabet.Alphabet, full func(seqs int, residues int64) bool, fn func(batch *Database) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	batch := NewDatabase("stream")
	var batchResidues int64
	var cur *Sequence
	line := 0
	total := 0

	emit := func() error {
		if batch.NumSeqs() == 0 {
			return nil
		}
		if err := fn(batch); err != nil {
			return err
		}
		batch = NewDatabase("stream")
		batchResidues = 0
		return nil
	}
	flush := func() error {
		if cur == nil {
			return nil
		}
		if err := cur.Validate(abc); err != nil {
			return parseErrf(line, cur.Name, "%v", err)
		}
		batch.Add(cur)
		batchResidues += int64(cur.Len())
		total++
		cur = nil
		if full(batch.NumSeqs(), batchResidues) {
			return emit()
		}
		return nil
	}

	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t\r")
		if text == "" {
			continue
		}
		if text[0] == '>' {
			if err := flush(); err != nil {
				return err
			}
			header := strings.TrimSpace(text[1:])
			name, desc := header, ""
			if i := strings.IndexAny(header, " \t"); i >= 0 {
				name, desc = header[:i], strings.TrimSpace(header[i+1:])
			}
			if name == "" {
				return parseErrf(line, "", "empty sequence name")
			}
			cur = &Sequence{Name: name, Desc: desc}
			continue
		}
		if cur == nil {
			return parseErrf(line, "", "sequence data before first header")
		}
		dsq, err := abc.Digitize(text)
		if err != nil {
			return parseErrf(line, cur.Name, "%v", err)
		}
		if MaxRecordLen > 0 && len(cur.Residues)+len(dsq) > MaxRecordLen {
			return parseErrf(line, cur.Name, "sequence exceeds MaxRecordLen (%d residues)", MaxRecordLen)
		}
		cur.Residues = append(cur.Residues, dsq...)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("fasta: %w", err)
	}
	if err := flush(); err != nil {
		return err
	}
	if err := emit(); err != nil {
		return err
	}
	if total == 0 {
		return fmt.Errorf("fasta: no sequences found")
	}
	return nil
}
