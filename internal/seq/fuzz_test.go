package seq

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFASTA checks the parser never panics and that anything it
// accepts survives a write/read round trip.
func FuzzReadFASTA(f *testing.F) {
	f.Add(">a desc\nACDEF\n>b\nWY\n")
	f.Add(">x\nacdef\nGHIKL\n")
	f.Add("")
	f.Add(">\n")
	f.Add(">a\nBJZOUX\n")
	f.Fuzz(func(t *testing.T, in string) {
		db, err := ReadFASTA(strings.NewReader(in), abc)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, db, abc); err != nil {
			t.Fatalf("accepted input failed to serialise: %v", err)
		}
		back, err := ReadFASTA(&buf, abc)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumSeqs() != db.NumSeqs() || back.TotalResidues() != db.TotalResidues() {
			t.Fatalf("round trip changed content: %d/%d vs %d/%d",
				back.NumSeqs(), back.TotalResidues(), db.NumSeqs(), db.TotalResidues())
		}
	})
}
