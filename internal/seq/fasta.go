package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"hmmer3gpu/internal/alphabet"
)

// ReadFASTA parses FASTA-format sequences from r, digitising residues
// with abc. Header lines start with '>'; the token up to the first
// whitespace becomes Name and the remainder Desc.
func ReadFASTA(r io.Reader, abc *alphabet.Alphabet) (*Database, error) {
	db := NewDatabase("")
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var cur *Sequence
	line := 0
	flush := func() error {
		if cur == nil {
			return nil
		}
		if err := cur.Validate(abc); err != nil {
			return parseErrf(line, cur.Name, "%v", err)
		}
		db.Add(cur)
		cur = nil
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t\r")
		if text == "" {
			continue
		}
		if text[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			header := strings.TrimSpace(text[1:])
			name, desc := header, ""
			if i := strings.IndexAny(header, " \t"); i >= 0 {
				name, desc = header[:i], strings.TrimSpace(header[i+1:])
			}
			if name == "" {
				return nil, parseErrf(line, "", "empty sequence name")
			}
			cur = &Sequence{Name: name, Desc: desc}
			continue
		}
		if cur == nil {
			return nil, parseErrf(line, "", "sequence data before first header")
		}
		dsq, err := abc.Digitize(text)
		if err != nil {
			return nil, parseErrf(line, cur.Name, "%v", err)
		}
		if MaxRecordLen > 0 && len(cur.Residues)+len(dsq) > MaxRecordLen {
			return nil, parseErrf(line, cur.Name, "sequence exceeds MaxRecordLen (%d residues)", MaxRecordLen)
		}
		cur.Residues = append(cur.Residues, dsq...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fasta: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if db.NumSeqs() == 0 {
		return nil, fmt.Errorf("fasta: no sequences found")
	}
	return db, nil
}

// WriteFASTA writes the database in FASTA format, wrapping residue
// lines at 60 columns.
func WriteFASTA(w io.Writer, db *Database, abc *alphabet.Alphabet) error {
	bw := bufio.NewWriter(w)
	for _, s := range db.Seqs {
		if s.Desc != "" {
			fmt.Fprintf(bw, ">%s %s\n", s.Name, s.Desc)
		} else {
			fmt.Fprintf(bw, ">%s\n", s.Name)
		}
		text := abc.Textize(s.Residues)
		for len(text) > 60 {
			fmt.Fprintln(bw, text[:60])
			text = text[60:]
		}
		if len(text) > 0 {
			fmt.Fprintln(bw, text)
		}
	}
	return bw.Flush()
}
