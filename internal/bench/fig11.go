package bench

import (
	"io"
)

// Fig11Row is one point of Figure 11: overall combined-stage speedup
// on four Fermi GTX 580s, plus the single-Fermi value so the paper's
// "almost linear" multi-device scaling claim is checkable.
type Fig11Row struct {
	DB DBKind
	M  int
	// Overall4 is the 4-GPU combined speedup; Overall1 the 1-GPU one.
	Overall4 float64
	Overall1 float64
	// ScalingEfficiency is Overall4 / (4 * Overall1).
	ScalingEfficiency float64
}

// Fig11 regenerates Figure 11: overall speedups for both databases on
// a 4x GTX 580 (Fermi) system.
func Fig11(cfg Config, w io.Writer) ([]Fig11Row, error) {
	spec := gtx580()
	cfg.modeBanner(w)
	fprintf(w, "Figure 11 — overall MSV+P7Viterbi speedup on 4x %s\n", spec.Name)
	fprintf(w, "%12s %8s %10s %10s %10s\n", "DB", "M", "4-GPU", "1-GPU", "scaling")
	var rows []Fig11Row
	for _, db := range []DBKind{Swissprot, Envnr} {
		for _, m := range cfg.Sizes {
			sys := cfg.newSystem(spec, 4)
			p4, err := combinedPoint(cfg, spec, sys, db, m)
			if err != nil {
				return nil, err
			}
			p1, err := combinedPoint(cfg, spec, nil, db, m)
			if err != nil {
				return nil, err
			}
			row := Fig11Row{DB: db, M: m, Overall4: p4.Overall, Overall1: p1.Overall}
			if p1.Overall > 0 {
				row.ScalingEfficiency = p4.Overall / (4 * p1.Overall)
			}
			rows = append(rows, row)
			fprintf(w, "%12s %8d %9.2fx %9.2fx %9.0f%%\n",
				db, m, row.Overall4, row.Overall1, row.ScalingEfficiency*100)
		}
	}
	return rows, nil
}
