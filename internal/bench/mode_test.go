package bench

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/checkpoint"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

// TestModeEquivalenceQuick pins fast mode's contract end to end: the
// same streamed 2-device search — clean, under a fault schedule, with
// silent-corruption injection repaired by DMR, and crashed then
// resumed from its journal — must report a hit list bit-identical to
// a cycle-accurate clean run.
func TestModeEquivalenceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	const m = 120
	h, err := cfg.model(m)
	if err != nil {
		t.Fatal(err)
	}
	abc := alphabet.New()
	dbSpec := Envnr.specMinSeqs(cfg.MSVCellBudget, m, cfg.Seed+404, 48)
	dbSpec.HomologFrac = 0.05
	data, err := workload.Generate(dbSpec, h, abc)
	if err != nil {
		t.Fatal(err)
	}
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, data, abc); err != nil {
		t.Fatal(err)
	}
	opts := pipeline.DefaultOptions()
	opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: cfg.Seed, TailMass: 0.04}
	pl, err := pipeline.New(h, int(data.MeanLen()), opts)
	if err != nil {
		t.Fatal(err)
	}
	batchResidues := data.TotalResidues() / 8
	if batchResidues < 1 {
		batchResidues = 1
	}

	run := func(mode simt.Mode, faultSpec string, sc pipeline.StreamConfig) (*pipeline.Result, error) {
		c := cfg
		c.Mode = mode
		sys := c.newSystem(gtx580(), 2)
		if faultSpec != "" {
			faults, err := simt.ParseFaults(faultSpec, cfg.Seed+505, 2)
			if err != nil {
				return nil, err
			}
			if err := sys.ApplyFaults(faults); err != nil {
				return nil, err
			}
		}
		sc.BatchResidues = batchResidues
		return pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta.Bytes()), sc)
	}

	clean, err := run(simt.ModeCycleAccurate, "", pipeline.StreamConfig{MaxRetries: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Hits) == 0 {
		t.Fatal("cycle-accurate clean run found no hits; workload too weak to validate identity")
	}

	t.Run("clean", func(t *testing.T) {
		res, err := run(simt.ModeFast, "", pipeline.StreamConfig{MaxRetries: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !identicalHits(clean, res) {
			t.Error("fast clean run diverged from the cycle-accurate run")
		}
	})

	t.Run("faulted", func(t *testing.T) {
		res, err := run(simt.ModeFast, "0:at=0,at=2;1:dead", pipeline.StreamConfig{MaxRetries: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !identicalHits(clean, res) {
			t.Error("fast faulted run diverged from the cycle-accurate clean run")
		}
	})

	t.Run("sdc-dmr", func(t *testing.T) {
		res, err := run(simt.ModeFast, "0:flip@launch=0",
			pipeline.StreamConfig{MaxRetries: 10, Verify: pipeline.VerifyDMR})
		if err != nil {
			t.Fatal(err)
		}
		if !identicalHits(clean, res) {
			t.Error("fast DMR-repaired run diverged from the cycle-accurate clean run")
		}
	})

	t.Run("crash-resume", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "mode.ckpt")
		_, err := run(simt.ModeFast, "", pipeline.StreamConfig{
			Checkpoint: &pipeline.CheckpointConfig{
				Path:  path,
				Crash: checkpoint.CrashAfter(3, checkpoint.WindowAfterSync),
			},
		})
		if !errors.Is(err, checkpoint.ErrInjectedCrash) {
			t.Fatalf("crashed run returned %v, want injected crash", err)
		}
		res, err := run(simt.ModeFast, "", pipeline.StreamConfig{
			Checkpoint: &pipeline.CheckpointConfig{Path: path, Resume: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !identicalHits(clean, res) {
			t.Error("fast resumed run diverged from the cycle-accurate clean run")
		}
	})
}
