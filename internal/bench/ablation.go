package bench

import (
	"io"
	"math/rand"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/perf"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

// AblationReport quantifies the §III design choices one at a time.
type AblationReport struct {
	// Sync: warp-synchronous kernel vs the synchronised multi-warp
	// baseline of Figure 4 (same scores, different schedule).
	SyncFreeTime float64
	SyncedTime   float64
	SyncedSyncs  int64
	SyncedStalls int64

	// Reduction: Kepler warp-shuffle vs the shared-memory fallback
	// (a K40 with shuffle disabled).
	ShuffleTime        float64
	SharedRedTime      float64
	SharedRedOccupancy float64
	ShuffleOccupancy   float64

	// Packing: 6-residues-per-word vs one byte fetch per row.
	PackedTime        float64
	UnpackedTime      float64
	PackedLoadTrans   int64
	UnpackedLoadTrans int64

	// LazyF: warp-vote lazy evaluation vs the eager worst-case loop
	// and vs the §VI prefix-scan extension, on a typical and on a
	// gap-heavy model.
	LazyTime         float64
	EagerTime        float64
	ScanTime         float64 // prefix-scan D-D resolution, typical model
	LazyTimeGappy    float64
	ScanTimeGappy    float64
	LazyItersTypical float64 // iterations per chunk, typical model
	LazyItersGappy   float64 // iterations per chunk, gap-heavy model

	// Homology: overall combined speedup as the planted homolog
	// fraction grows (§V: more homology -> more Viterbi work -> lower
	// overall speedup).
	HomologyFracs    []float64
	HomologySpeedups []float64
}

// Ablations runs all five ablation studies.
func Ablations(cfg Config, w io.Writer) (AblationReport, error) {
	var rep AblationReport
	abc := alphabet.New()
	const m = 256
	h, err := cfg.model(m)
	if err != nil {
		return rep, err
	}
	db, err := cfg.database(Envnr, cfg.VitCellBudget, h)
	if err != nil {
		return rep, err
	}
	mp, vp := configuredProfiles(h, db)
	spec := k40()

	// --- A1: synchronisation ---------------------------------------
	{
		dev := cfg.newDevice(spec)
		ddb := gpu.UploadDB(dev, db)
		s := &gpu.Searcher{Dev: dev, Mem: gpu.MemShared, HostWorkers: cfg.Workers}
		free, err := s.MSVSearch(gpu.UploadMSVProfile(dev, mp), ddb)
		if err != nil {
			return rep, err
		}
		rep.SyncFreeTime = perf.GPUTime(spec, free.Launch)

		dev2 := cfg.newDevice(spec)
		ddb2 := gpu.UploadDB(dev2, db)
		s2 := &gpu.Searcher{Dev: dev2, HostWorkers: cfg.Workers}
		synced, err := s2.MSVSearchSynced(gpu.UploadMSVProfile(dev2, mp), ddb2, false)
		if err != nil {
			return rep, err
		}
		rep.SyncedTime = perf.GPUTime(spec, synced.Launch)
		rep.SyncedSyncs = synced.Launch.Stats.Syncs
		rep.SyncedStalls = synced.Launch.Stats.SyncStallCycles
		fprintf(w, "A1 synchronisation: warp-synchronous %.3gs vs synced multi-warp %.3gs (%.2fx; %d barriers, %d stall cycles)\n",
			rep.SyncFreeTime, rep.SyncedTime, rep.SyncedTime/rep.SyncFreeTime,
			rep.SyncedSyncs, rep.SyncedStalls)
	}

	// --- A2: warp-shuffle reduction ---------------------------------
	{
		noShfl := spec
		noShfl.Name = "K40 (shuffle disabled)"
		noShfl.HasShuffle = false

		for i, sp := range []simt.DeviceSpec{spec, noShfl} {
			dev := cfg.newDevice(sp)
			ddb := gpu.UploadDB(dev, db)
			s := &gpu.Searcher{Dev: dev, Mem: gpu.MemShared, HostWorkers: cfg.Workers}
			r, err := s.MSVSearch(gpu.UploadMSVProfile(dev, mp), ddb)
			if err != nil {
				return rep, err
			}
			t := perf.GPUTime(sp, r.Launch)
			if i == 0 {
				rep.ShuffleTime = t
				rep.ShuffleOccupancy = r.Plan.Occupancy.Fraction
			} else {
				rep.SharedRedTime = t
				rep.SharedRedOccupancy = r.Plan.Occupancy.Fraction
			}
		}
		fprintf(w, "A2 reduction: shuffle %.3gs (occ %.0f%%) vs shared-memory %.3gs (occ %.0f%%) => %.2fx\n",
			rep.ShuffleTime, rep.ShuffleOccupancy*100,
			rep.SharedRedTime, rep.SharedRedOccupancy*100,
			rep.SharedRedTime/rep.ShuffleTime)
	}

	// --- A3: residue packing ----------------------------------------
	{
		for i, disable := range []bool{false, true} {
			dev := cfg.newDevice(spec)
			ddb := gpu.UploadDB(dev, db)
			// Global config: model reads go through the cached-load
			// counters, so GlobalLoadTransactions isolates the
			// sequence-fetch traffic that packing reduces.
			s := &gpu.Searcher{Dev: dev, Mem: gpu.MemGlobal, DisablePacking: disable, HostWorkers: cfg.Workers}
			r, err := s.MSVSearch(gpu.UploadMSVProfile(dev, mp), ddb)
			if err != nil {
				return rep, err
			}
			if i == 0 {
				rep.PackedTime = perf.GPUTime(spec, r.Launch)
				rep.PackedLoadTrans = r.Launch.Stats.GlobalLoadTransactions
			} else {
				rep.UnpackedTime = perf.GPUTime(spec, r.Launch)
				rep.UnpackedLoadTrans = r.Launch.Stats.GlobalLoadTransactions
			}
		}
		fprintf(w, "A3 packing: packed %.3gs (%d seq-fetch transactions) vs unpacked %.3gs (%d) => %.2fx traffic\n",
			rep.PackedTime, rep.PackedLoadTrans, rep.UnpackedTime, rep.UnpackedLoadTrans,
			float64(rep.UnpackedLoadTrans)/float64(rep.PackedLoadTrans))
	}

	// --- A4: parallel lazy-F ----------------------------------------
	{
		runVit := func(prof *gpu.DeviceVitProfile, eager, scan bool) (float64, float64, error) {
			dev := cfg.newDevice(spec)
			ddb := gpu.UploadDB(dev, db)
			s := &gpu.Searcher{Dev: dev, Mem: gpu.MemShared, EagerLazyF: eager, DDScan: scan, HostWorkers: cfg.Workers}
			r, err := s.ViterbiSearch(prof, ddb)
			if err != nil {
				return 0, 0, err
			}
			chunks := float64(ddb.TotalResidues) * float64((m+31)/32)
			return perf.GPUTime(spec, r.Launch), float64(r.LazyF.Iterations) / chunks, nil
		}
		dev0 := cfg.newDevice(spec)
		prof := gpu.UploadVitProfile(dev0, vp)
		var err error
		rep.LazyTime, rep.LazyItersTypical, err = runVit(prof, false, false)
		if err != nil {
			return rep, err
		}
		rep.EagerTime, _, err = runVit(prof, true, false)
		if err != nil {
			return rep, err
		}
		rep.ScanTime, _, err = runVit(prof, false, true)
		if err != nil {
			return rep, err
		}
		// Gap-heavy model: the D-D path is taken often, lazy-F iterates
		// more (the paper's §VI caveat about large, delete-heavy models).
		gappy, err := hmm.Random("gappy", m, abc,
			hmm.BuildParams{MatchIdentity: 0.7, GapOpen: 0.15, GapExtend: 0.9},
			rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return rep, err
		}
		_, gvp := configuredProfiles(gappy, db)
		gprof := gpu.UploadVitProfile(cfg.newDevice(spec), gvp)
		rep.LazyTimeGappy, rep.LazyItersGappy, err = runVit(gprof, false, false)
		if err != nil {
			return rep, err
		}
		rep.ScanTimeGappy, _, err = runVit(gprof, false, true)
		if err != nil {
			return rep, err
		}
		fprintf(w, "A4 lazy-F: lazy %.3gs vs eager %.3gs (%.2fx) vs prefix-scan %.3gs; iterations/chunk %.2f typical, %.2f gap-heavy; gap-heavy lazy %.3gs vs scan %.3gs\n",
			rep.LazyTime, rep.EagerTime, rep.EagerTime/rep.LazyTime, rep.ScanTime,
			rep.LazyItersTypical, rep.LazyItersGappy, rep.LazyTimeGappy, rep.ScanTimeGappy)
	}

	// --- A5: homology dependence ------------------------------------
	{
		for _, frac := range []float64{0, 0.02, 0.08} {
			spec2 := Envnr.specMinSeqs(cfg.MSVCellBudget, m, cfg.Seed+999, 400)
			spec2.HomologFrac = frac
			data, err := workload.Generate(spec2, h, abc)
			if err != nil {
				return rep, err
			}
			sp, err := combinedOnDB(cfg, spec, h, data)
			if err != nil {
				return rep, err
			}
			rep.HomologyFracs = append(rep.HomologyFracs, frac)
			rep.HomologySpeedups = append(rep.HomologySpeedups, sp)
		}
		fprintf(w, "A5 homology: combined speedup by planted-homolog fraction:")
		for i := range rep.HomologyFracs {
			fprintf(w, " %.0f%%:%.2fx", rep.HomologyFracs[i]*100, rep.HomologySpeedups[i])
		}
		fprintf(w, "\n")
	}
	return rep, nil
}

// combinedOnDB measures the combined MSV+Viterbi speedup on a given
// database (used by the homology sweep).
func combinedOnDB(cfg Config, spec simt.DeviceSpec, h *hmm.Plan7, data *seq.Database) (float64, error) {
	opts := pipeline.DefaultOptions()
	opts.SkipForward = true
	opts.Workers = cfg.Workers
	opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: cfg.Seed, TailMass: 0.04}
	pl, err := pipeline.New(h, int(data.MeanLen()), opts)
	if err != nil {
		return 0, err
	}
	dev := cfg.newDevice(spec)
	res, err := pl.RunGPU(dev, gpu.MemAuto, data)
	if err != nil {
		return 0, err
	}
	// Extrapolate to paper scale so the fixed launch overhead does not
	// flatten the comparison (see fig10.go).
	scale := float64(Envnr.FullResidues()) / float64(data.TotalResidues())
	extra := res.Extra.(*pipeline.GPUExtra)
	gpuT := perf.GPUTimeScaled(spec, extra.MSVReport.Launch, scale)
	if extra.VitReport != nil {
		gpuT += perf.GPUTimeScaled(spec, extra.VitReport.Launch, scale)
	}
	cpuT := perf.CPUTimeMSV(perf.BaselineI5(), int64(float64(res.MSV.Cells)*scale)) +
		perf.CPUTimeVit(perf.BaselineI5(), int64(float64(res.Viterbi.Cells)*scale))
	return perf.Speedup(cpuT, gpuT), nil
}
