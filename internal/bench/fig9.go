package bench

import (
	"fmt"
	"io"

	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/perf"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// Stage names for Figure 9's two panels per database.
type Stage int

const (
	StageMSV Stage = iota
	StageViterbi
)

func (s Stage) String() string {
	if s == StageMSV {
		return "MSV"
	}
	return "P7Viterbi"
}

// Fig9Row is one sweep point of Figure 9: a (database, stage, model
// size) cell with both memory configurations.
type Fig9Row struct {
	DB    DBKind
	Stage Stage
	M     int

	// SharedFits reports whether the model fits the shared
	// configuration at all (M=2405 does not, for MSV on the K40).
	SharedFits bool

	SharedSpeedup float64
	GlobalSpeedup float64
	// OptimalSpeedup is the paper's black curve: the better of the two.
	OptimalSpeedup float64

	SharedOcc float64
	GlobalOcc float64
}

// runStage executes one kernel over db on a fresh device and returns
// the GPU time and DP cells, both extrapolated to the kind's full
// paper-scale database (the simulator's counters are linear in the
// workload; see perf.GPUTimeScaled).
func runStage(cfg Config, spec simt.DeviceSpec, kind DBKind, stage Stage, mem gpu.MemConfig,
	mp *profile.MSVProfile, vp *profile.VitProfile, db *seq.Database) (float64, int64, error) {

	m := 0
	if stage == StageViterbi {
		m = vp.M
	} else {
		m = mp.M
	}
	cfg.Prof.SetLabels(map[string]string{
		"db": kind.String(), "stage": stage.String(),
		"m": fmt.Sprint(m), "mem": mem.String(),
	})
	dev := cfg.newDevice(spec)
	ddb := gpu.UploadDB(dev, db)
	s := &gpu.Searcher{Dev: dev, Mem: mem, HostWorkers: cfg.Workers}
	var rep *gpu.SearchReport
	var err error
	if stage == StageMSV {
		rep, err = s.MSVSearch(gpu.UploadMSVProfile(dev, mp), ddb)
	} else {
		rep, err = s.ViterbiSearch(gpu.UploadVitProfile(dev, vp), ddb)
	}
	if err != nil {
		return 0, 0, err
	}
	scale := float64(kind.FullResidues()) / float64(ddb.TotalResidues)
	fullCells := kind.FullResidues() * int64(m)
	return perf.GPUTimeScaled(spec, rep.Launch, scale), fullCells, nil
}

// cpuStageTime returns the modelled baseline seconds for one stage.
func cpuStageTime(stage Stage, cells int64) float64 {
	if stage == StageMSV {
		return perf.CPUTimeMSV(perf.BaselineI5(), cells)
	}
	return perf.CPUTimeVit(perf.BaselineI5(), cells)
}

// Fig9 regenerates Figure 9: per-stage speedups and occupancies for
// both databases across the model-size sweep, for the shared and
// global memory configurations on the Tesla K40.
func Fig9(cfg Config, w io.Writer) ([]Fig9Row, error) {
	spec := k40()
	var rows []Fig9Row
	cfg.modeBanner(w)
	fprintf(w, "Figure 9 — stage speedups vs HMMER3 SSE on %s (baseline: %s)\n",
		spec.Name, perf.BaselineI5().Name)

	for _, db := range []DBKind{Swissprot, Envnr} {
		for _, stage := range []Stage{StageMSV, StageViterbi} {
			fprintf(w, "\n[%s / %s]\n", db, stage)
			fprintf(w, "%8s %14s %14s %12s %12s %12s\n",
				"M", "shared-speedup", "global-speedup", "shared-occ", "global-occ", "optimal")
			for _, m := range cfg.Sizes {
				row, err := fig9Point(cfg, spec, db, stage, m)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
				sh := "   n/a"
				if row.SharedFits {
					sh = fmt.Sprintf("%6.2f", row.SharedSpeedup)
				}
				fprintf(w, "%8d %14s %14.2f %11.0f%% %11.0f%% %12.2f\n",
					m, sh, row.GlobalSpeedup,
					row.SharedOcc*100, row.GlobalOcc*100, row.OptimalSpeedup)
			}
		}
	}
	return rows, nil
}

func fig9Point(cfg Config, spec simt.DeviceSpec, db DBKind, stage Stage, m int) (Fig9Row, error) {
	row := Fig9Row{DB: db, Stage: stage, M: m}
	h, err := cfg.model(m)
	if err != nil {
		return row, err
	}
	budget := cfg.MSVCellBudget
	if stage == StageViterbi {
		budget = cfg.VitCellBudget
	}
	data, err := cfg.database(db, budget, h)
	if err != nil {
		return row, err
	}
	mp, vp := configuredProfiles(h, data)

	planOf := gpu.PlanMSV
	if stage == StageViterbi {
		planOf = gpu.PlanViterbi
	}

	if plan, err := planOf(spec, m, gpu.MemShared); err == nil {
		row.SharedFits = true
		row.SharedOcc = plan.Occupancy.Fraction
		t, cells, err := runStage(cfg, spec, db, stage, gpu.MemShared, mp, vp, data)
		if err != nil {
			return row, err
		}
		row.SharedSpeedup = perf.Speedup(cpuStageTime(stage, cells), t)
	}
	plan, err := planOf(spec, m, gpu.MemGlobal)
	if err != nil {
		return row, err
	}
	row.GlobalOcc = plan.Occupancy.Fraction
	t, cells, err := runStage(cfg, spec, db, stage, gpu.MemGlobal, mp, vp, data)
	if err != nil {
		return row, err
	}
	row.GlobalSpeedup = perf.Speedup(cpuStageTime(stage, cells), t)

	row.OptimalSpeedup = row.GlobalSpeedup
	if row.SharedFits && row.SharedSpeedup > row.OptimalSpeedup {
		row.OptimalSpeedup = row.SharedSpeedup
	}
	return row, nil
}
