package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

// TrajectorySchema identifies the BENCH_<rev>.json layout; benchdiff
// refuses files with any other schema string.
const TrajectorySchema = "hmmer3gpu-bench/v1"

// TrajectorySuite is one timed suite of the benchmark trajectory.
// Unlike the figure experiments, which report modelled device time,
// the trajectory records host wall-clock: it tracks how fast the
// simulator itself runs, revision over revision.
type TrajectorySuite struct {
	// Suite names the workload ("fig9-kernels", "fig10-pipeline").
	Suite string `json:"suite"`
	// WallSeconds is the measured wall-clock time of the suite's
	// simulator work (workload generation and calibration excluded).
	WallSeconds float64 `json:"wall_seconds"`
	// Cells is the exact number of DP cells the suite executed.
	Cells int64 `json:"cells"`
	// CellsPerSec is Cells / WallSeconds.
	CellsPerSec float64 `json:"cells_per_sec"`
}

// TrajectoryReport is the persisted benchmark-trajectory record
// (BENCH_<rev>.json): the timings plus enough host context for
// benchdiff to warn before comparing apples to oranges.
type TrajectoryReport struct {
	Schema    string            `json:"schema"`
	Rev       string            `json:"rev"`
	SimMode   string            `json:"sim_mode"`
	GoVersion string            `json:"go_version"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	NumCPU    int               `json:"num_cpu"`
	Suites    []TrajectorySuite `json:"suites"`
}

// Trajectory times the simulator on two fixed workloads — the Figure 9
// kernel sweep and the Figure 10 combined pipeline — and returns the
// record to persist as BENCH_<rev>.json. Run it with -sim fast for the
// CI trajectory (wall-clock is the quantity under test; the cycle
// counters are not).
func Trajectory(cfg Config, rev string, w io.Writer) (*TrajectoryReport, error) {
	rep := &TrajectoryReport{
		Schema:    TrajectorySchema,
		Rev:       rev,
		SimMode:   cfg.Mode.String(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	fprintf(w, "Benchmark trajectory — rev %s, sim mode %s\n", rev, cfg.Mode)
	fprintf(w, "%-16s %12s %16s %16s\n", "suite", "wall", "cells", "cells/s")

	for _, run := range []struct {
		name string
		f    func(Config) (time.Duration, int64, error)
	}{
		{"fig9-kernels", trajectoryKernels},
		{"fig10-pipeline", trajectoryPipeline},
	} {
		wall, cells, err := run.f(cfg)
		if err != nil {
			return nil, fmt.Errorf("trajectory %s: %w", run.name, err)
		}
		s := TrajectorySuite{Suite: run.name, WallSeconds: wall.Seconds(), Cells: cells}
		if s.WallSeconds > 0 {
			s.CellsPerSec = float64(s.Cells) / s.WallSeconds
		}
		rep.Suites = append(rep.Suites, s)
		fprintf(w, "%-16s %12s %16d %16.4g\n",
			s.Suite, wall.Round(time.Millisecond), s.Cells, s.CellsPerSec)
	}
	return rep, nil
}

// trajectoryKernels is the fig9-shaped suite: every (database, stage,
// model size, memory config) kernel point. Workload generation happens
// before the clock starts; the timed region covers device creation,
// upload and launch. Cells are exact: residues times model size per
// executed kernel.
func trajectoryKernels(cfg Config) (time.Duration, int64, error) {
	type unit struct {
		kind  DBKind
		stage Stage
		mem   gpu.MemConfig
		mp    *profile.MSVProfile
		vp    *profile.VitProfile
		data  *seq.Database
		cells int64
	}
	spec := k40()
	var units []unit
	for _, db := range []DBKind{Swissprot, Envnr} {
		for _, stage := range []Stage{StageMSV, StageViterbi} {
			for _, m := range cfg.Sizes {
				h, err := cfg.model(m)
				if err != nil {
					return 0, 0, err
				}
				budget := cfg.MSVCellBudget
				planOf := gpu.PlanMSV
				if stage == StageViterbi {
					budget = cfg.VitCellBudget
					planOf = gpu.PlanViterbi
				}
				data, err := cfg.database(db, budget, h)
				if err != nil {
					return 0, 0, err
				}
				mp, vp := configuredProfiles(h, data)
				for _, mem := range []gpu.MemConfig{gpu.MemShared, gpu.MemGlobal} {
					if _, err := planOf(spec, m, mem); err != nil {
						continue // model does not fit this configuration
					}
					units = append(units, unit{db, stage, mem, mp, vp, data,
						data.TotalResidues() * int64(m)})
				}
			}
		}
	}

	start := time.Now()
	var cells int64
	for _, u := range units {
		if _, _, err := runStage(cfg, spec, u.kind, u.stage, u.mem, u.mp, u.vp, u.data); err != nil {
			return 0, 0, err
		}
		cells += u.cells
	}
	return time.Since(start), cells, nil
}

// trajectoryPipeline is the fig10-shaped suite: the combined
// MSV+P7Viterbi pipeline over the size sweep on a single K40.
// Pipelines are constructed (and calibrated) before the clock starts;
// cells come from the pipeline's exact per-stage accounting.
func trajectoryPipeline(cfg Config) (time.Duration, int64, error) {
	type unit struct {
		pl   *pipeline.Pipeline
		data *seq.Database
	}
	spec := k40()
	var units []unit
	for _, db := range []DBKind{Swissprot, Envnr} {
		for _, m := range cfg.Sizes {
			h, err := cfg.model(m)
			if err != nil {
				return 0, 0, err
			}
			dbSpec := db.specMinSeqs(cfg.MSVCellBudget, m, cfg.Seed+int64(m)*2+int64(db), 300)
			data, err := workload.Generate(dbSpec, h, alphabet.New())
			if err != nil {
				return 0, 0, err
			}
			opts := pipeline.DefaultOptions()
			opts.SkipForward = true
			opts.Workers = cfg.Workers
			opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: cfg.Seed, TailMass: 0.04}
			pl, err := pipeline.New(h, int(data.MeanLen()), opts)
			if err != nil {
				return 0, 0, err
			}
			units = append(units, unit{pl, data})
		}
	}

	start := time.Now()
	var cells int64
	for _, u := range units {
		res, err := u.pl.RunGPU(cfg.newDevice(spec), gpu.MemAuto, u.data)
		if err != nil {
			return 0, 0, err
		}
		cells += res.MSV.Cells + res.Viterbi.Cells
	}
	return time.Since(start), cells, nil
}

// WriteFile writes the report as BENCH_<rev>.json under dir and
// returns the path.
func (r *TrajectoryReport) WriteFile(dir string) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+r.Rev+".json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadTrajectory loads and schema-checks a BENCH_<rev>.json.
func ReadTrajectory(path string) (*TrajectoryReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r TrajectoryReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != TrajectorySchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, TrajectorySchema)
	}
	return &r, nil
}
