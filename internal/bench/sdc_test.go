package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestSDCQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	var buf bytes.Buffer
	rows, err := SDC(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sdcScenarios) {
		t.Fatalf("got %d rows, want %d scenarios", len(rows), len(sdcScenarios))
	}
	byName := map[string]SDCRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}

	for _, name := range []string{"clean / off", "clean / guards"} {
		r := byName[name]
		if r.Flips != 0 || r.Detected != 0 || r.Reruns != 0 || !r.Identical {
			t.Errorf("%s: %+v, want no flips, no detections, identical results", name, r)
		}
		if r.Hits == 0 {
			t.Errorf("%s found no hits; workload too weak to validate identity", name)
		}
	}

	// The headline: the same seeded flips that corrupt the unverified
	// run are detected and repaired under DMR.
	off := byName["readback p=5e-2 / off"]
	if off.Flips == 0 {
		t.Error("unverified scenario injected no flips; sweep proves nothing")
	}
	if off.Identical {
		t.Errorf("unverified flips left the hit list identical: %+v", off)
	}
	if off.Detected != 0 || off.Reruns != 0 {
		t.Errorf("verify=off counted SDC activity: %+v", off)
	}
	dmr := byName["readback p=5e-2 / dmr"]
	if dmr.Detected == 0 || dmr.Reruns == 0 {
		t.Errorf("DMR scenario detected/reran nothing: %+v", dmr)
	}
	if !dmr.Identical {
		t.Errorf("DMR failed to restore the clean hit list: %+v", dmr)
	}

	burst := byName["burst@launch0 / guards"]
	if burst.Detected != 1 || burst.Reruns != 1 || !burst.Identical {
		t.Errorf("guards burst scenario: %+v, want exactly one detected+reran burst and identical results", burst)
	}

	ecc := byName["readback p=5e-2 / ecc k40"]
	if ecc.Flips != 0 || ecc.Corrected == 0 {
		t.Errorf("ECC scenario: %+v, want every flip corrected and none applied", ecc)
	}
	if !ecc.Identical || ecc.Detected != 0 {
		t.Errorf("ECC scenario saw corruption: %+v", ecc)
	}

	if !strings.Contains(buf.String(), "SDC") {
		t.Error("report text missing")
	}
}
