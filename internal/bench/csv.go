package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export: each figure's rows serialise to one file, ready for
// plotting against the paper's curves.

// WriteFig9CSV writes the Figure 9 sweep.
func WriteFig9CSV(rows []Fig9Row, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"db", "stage", "m", "shared_fits",
		"shared_speedup", "global_speedup", "optimal_speedup",
		"shared_occupancy", "global_occupancy",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.DB.String(), r.Stage.String(), strconv.Itoa(r.M),
			strconv.FormatBool(r.SharedFits),
			f(r.SharedSpeedup), f(r.GlobalSpeedup), f(r.OptimalSpeedup),
			f(r.SharedOcc), f(r.GlobalOcc),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig10CSV writes the Figure 10 sweep.
func WriteFig10CSV(rows []Fig10Row, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"db", "m", "overall_speedup", "msv_pass"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.DB.String(), strconv.Itoa(r.M), f(r.Overall), f(r.MSVPass),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig11CSV writes the Figure 11 sweep.
func WriteFig11CSV(rows []Fig11Row, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"db", "m", "overall_4gpu", "overall_1gpu", "scaling_efficiency"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.DB.String(), strconv.Itoa(r.M), f(r.Overall4), f(r.Overall1), f(r.ScalingEfficiency),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportCSV runs the three speedup figures and writes fig9.csv,
// fig10.csv and fig11.csv into dir.
func ExportCSV(cfg Config, dir string, progress io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	r9, err := Fig9(cfg, progress)
	if err != nil {
		return err
	}
	if err := writeCSVFile(filepath.Join(dir, "fig9.csv"), func(w io.Writer) error {
		return WriteFig9CSV(r9, w)
	}); err != nil {
		return err
	}
	r10, err := Fig10(cfg, progress)
	if err != nil {
		return err
	}
	if err := writeCSVFile(filepath.Join(dir, "fig10.csv"), func(w io.Writer) error {
		return WriteFig10CSV(r10, w)
	}); err != nil {
		return err
	}
	r11, err := Fig11(cfg, progress)
	if err != nil {
		return err
	}
	return writeCSVFile(filepath.Join(dir, "fig11.csv"), func(w io.Writer) error {
		return WriteFig11CSV(r11, w)
	})
}

func writeCSVFile(path string, write func(io.Writer) error) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }
