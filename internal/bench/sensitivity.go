package bench

import (
	"fmt"
	"io"
	"math/rand"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

// SensitivityRow is one point of the sensitivity study: recall of
// planted homologs at a given divergence (mutation rate), on the CPU
// baseline and on the accelerated engine. The paper's central
// correctness claim — acceleration "while preserving the sensitivity
// and accuracy of HMMER 3.0" — demands the two columns be equal.
type SensitivityRow struct {
	MutationRate float64
	Planted      int
	CPURecall    float64
	GPURecall    float64
	// DecoyFPR is the fraction of shuffled-homolog decoys (same
	// composition, destroyed motif order) that produced a hit; it
	// should stay at ~0 regardless of divergence — the specificity
	// side of the accuracy claim.
	DecoyFPR float64
}

// Sensitivity plants homologs at increasing divergence into a random
// background database and measures recall through the full pipeline.
func Sensitivity(cfg Config, w io.Writer) ([]SensitivityRow, error) {
	abc := alphabet.New()
	const m = 150
	const planted = 40
	h, err := cfg.model(m)
	if err != nil {
		return nil, err
	}

	fprintf(w, "Sensitivity — recall of planted homologs vs divergence (M=%d, %d planted per point)\n", m, planted)
	fprintf(w, "%10s %10s %12s %12s %12s\n", "mutation", "planted", "CPU recall", "GPU recall", "decoy FPR")

	opts := pipeline.DefaultOptions()
	opts.Workers = cfg.Workers
	opts.Calibration = stats.CalibrateOptions{N: 128, L: 100, Seed: cfg.Seed, TailMass: 0.04}

	var rows []SensitivityRow
	for _, rate := range []float64{0, 0.2, 0.4, 0.55, 0.7, 0.85} {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(rate*1000)))

		// Background database plus mutated homologs (marked by name).
		spec := workload.EnvnrLike(1, cfg.Seed+7)
		spec.NumSeqs = 600
		spec.HomologFrac = 0
		db, err := workload.Generate(spec, nil, abc)
		if err != nil {
			return nil, err
		}
		truth := map[string]bool{}
		decoys := map[string]bool{}
		for i := 0; i < planted; i++ {
			core := workload.Mutate(h.SampleSequence(rng), rate, abc, rng)
			name := fmt.Sprintf("planted_%03d", i)
			truth[name] = true
			db.Add(&seq.Sequence{Name: name, Residues: core})
			// A composition-matched decoy per homolog.
			dname := fmt.Sprintf("decoy_%03d", i)
			decoys[dname] = true
			db.Add(&seq.Sequence{Name: dname, Residues: seq.Shuffled(core, rng)})
		}

		pl, err := pipeline.New(h, int(db.MeanLen()), opts)
		if err != nil {
			return nil, err
		}
		cpuRes, err := pl.RunCPU(db)
		if err != nil {
			return nil, err
		}
		gpuRes, err := pl.RunGPU(cfg.newDevice(k40()), gpu.MemAuto, db)
		if err != nil {
			return nil, err
		}

		row := SensitivityRow{
			MutationRate: rate,
			Planted:      planted,
			CPURecall:    recall(cpuRes, truth),
			GPURecall:    recall(gpuRes, truth),
			DecoyFPR:     recall(cpuRes, decoys),
		}
		rows = append(rows, row)
		fprintf(w, "%9.0f%% %10d %11.1f%% %11.1f%% %11.1f%%\n",
			rate*100, planted, row.CPURecall*100, row.GPURecall*100, row.DecoyFPR*100)
	}
	return rows, nil
}

func recall(res *pipeline.Result, truth map[string]bool) float64 {
	found := 0
	for _, h := range res.Hits {
		if truth[h.Name] {
			found++
		}
	}
	return float64(found) / float64(len(truth))
}
