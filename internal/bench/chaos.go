package bench

import (
	"bytes"
	"fmt"
	"io"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

// ChaosRow is one fault-injection scenario of the chaos experiment:
// the same streamed 4-device search run under a seeded fault schedule,
// with the scheduler's recovery activity and whether the results
// stayed bit-identical to the fault-free run.
type ChaosRow struct {
	Scenario string
	// Batches is the number of batches scheduled.
	Batches int
	// Retries, Requeues, Quarantined and Fallbacks summarise the
	// scheduler's fault handling (see gpu.FaultReport).
	Retries     int
	Requeues    int
	Quarantined int
	Fallbacks   int
	// Hits is the number of reported hits.
	Hits int
	// Identical reports the hit list matched the clean run exactly
	// (names, indexes, scores, E-values).
	Identical bool
}

// chaosScenarios are the fault schedules the experiment sweeps. Every
// schedule uses deterministic per-ordinal faults or a seeded
// probability, so each scenario is reproducible.
var chaosScenarios = []struct {
	Name string
	Spec string
}{
	{"clean", ""},
	{"flaky dev0+dev1 (p=0.3)", "0:p=0.3;1:p=0.3"},
	{"dev2 lost at launch 2", "2:dead=2"},
	{"2 flaky + 1 dead", "0:p=0.3;1:p=0.3;2:dead"},
	{"all devices dead", "0:dead;1:dead;2:dead;3:dead"},
}

// Chaos runs the fault-injection sweep: a streamed 4-device search
// under escalating fault schedules, asserting the recovery machinery
// (retry, requeue, quarantine, host fallback) keeps the results
// bit-identical to the fault-free run. The last scenario kills every
// device, so the whole stream drains through the CPU fallback.
func Chaos(cfg Config, w io.Writer) ([]ChaosRow, error) {
	const m = 120
	h, err := cfg.model(m)
	if err != nil {
		return nil, err
	}
	abc := alphabet.New()
	dbSpec := Envnr.specMinSeqs(cfg.MSVCellBudget, m, cfg.Seed+202, 64)
	dbSpec.HomologFrac = 0.05 // enough planted homologs for a meaningful hit list
	data, err := workload.Generate(dbSpec, h, abc)
	if err != nil {
		return nil, err
	}
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, data, abc); err != nil {
		return nil, err
	}

	opts := pipeline.DefaultOptions()
	opts.Workers = cfg.Workers
	opts.Trace = cfg.Trace
	opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: cfg.Seed, TailMass: 0.04}
	pl, err := pipeline.New(h, int(data.MeanLen()), opts)
	if err != nil {
		return nil, err
	}
	batchResidues := data.TotalResidues() / 16
	if batchResidues < 1 {
		batchResidues = 1
	}

	fprintf(w, "Chaos — %d seqs, M=%d, ~16 batches on 4x %s, seeded fault injection\n",
		data.NumSeqs(), m, gtx580().Name)
	fprintf(w, "%-28s %8s %8s %9s %12s %10s %6s %10s\n",
		"scenario", "batches", "retries", "requeues", "quarantined", "fallbacks", "hits", "identical")

	var rows []ChaosRow
	var clean *pipeline.Result
	for _, sc := range chaosScenarios {
		sys := cfg.newSystem(gtx580(), 4)
		if sc.Spec != "" {
			faults, err := simt.ParseFaults(sc.Spec, cfg.Seed+303, 4)
			if err != nil {
				return nil, err
			}
			if err := sys.ApplyFaults(faults); err != nil {
				return nil, err
			}
		}
		res, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta.Bytes()),
			pipeline.StreamConfig{BatchResidues: batchResidues, MaxRetries: 10})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		sched := res.Extra.(*pipeline.MultiGPUStreamExtra).Schedule
		if clean == nil {
			clean = res
		}
		row := ChaosRow{
			Scenario:    sc.Name,
			Batches:     sched.Batches,
			Retries:     sched.Faults.Retries,
			Requeues:    sched.Faults.Requeues,
			Quarantined: sched.Faults.Quarantines,
			Fallbacks:   sched.Faults.Fallbacks,
			Hits:        len(res.Hits),
			Identical:   identicalHits(clean, res),
		}
		rows = append(rows, row)
		fprintf(w, "%-28s %8d %8d %9d %12d %10d %6d %10v\n",
			row.Scenario, row.Batches, row.Retries, row.Requeues,
			row.Quarantined, row.Fallbacks, row.Hits, row.Identical)
	}
	fprintf(w, "fault-tolerant scheduling: every scenario reports the clean run's exact hit list\n")
	return rows, nil
}

// identicalHits reports whether two results carry bit-identical hit
// lists (same order, identities, scores and E-values).
func identicalHits(a, b *pipeline.Result) bool {
	if len(a.Hits) != len(b.Hits) {
		return false
	}
	for i := range a.Hits {
		x, y := a.Hits[i], b.Hits[i]
		if x.Index != y.Index || x.Name != y.Name ||
			x.MSVBits != y.MSVBits || x.VitBits != y.VitBits || x.FwdBits != y.FwdBits ||
			x.PValue != y.PValue || x.EValue != y.EValue {
			return false
		}
	}
	return true
}
