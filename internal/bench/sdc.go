package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

// SDCRow is one scenario of the silent-data-corruption experiment: the
// same streamed single-device search under a seeded bit-flip schedule
// and a result-integrity policy.
type SDCRow struct {
	Scenario string
	// Batches is the number of batches scheduled.
	Batches int
	// Flips is the number of bit flips the injector actually applied;
	// Corrected is the number an ECC device absorbed instead.
	Flips     int64
	Corrected int64
	// Detected and Reruns summarise the integrity layer's activity
	// (see gpu.FaultReport).
	Detected int
	Reruns   int
	// Hits is the number of reported hits.
	Hits int
	// Identical reports the hit list matched the clean run exactly
	// (names, indexes, scores, E-values) — for corrupting scenarios
	// without repair this is the point: it goes false.
	Identical bool
	// Wall is the run's wall-clock time, for the verification-overhead
	// comparison between the clean rows.
	Wall time.Duration
}

// sdcScenarios sweeps flip rates, flip locations and verify modes on
// one non-ECC GTX 580 (a single device keeps the flip schedule fully
// deterministic), plus an ECC K40 control. Readback flips hit the
// score words directly and are grid-detectable; shared-memory flips
// corrupt the DP recurrence mid-kernel and yield well-formed wrong
// scores only the ordering guard can catch, so their detection recall
// is structurally below one — that residual is the experiment's
// honest answer, not a bug.
var sdcScenarios = []struct {
	Name   string
	Spec   string
	ECC    bool
	Verify pipeline.VerifyMode
}{
	{"clean / off", "", false, pipeline.VerifyOff},
	{"clean / guards", "", false, pipeline.VerifyGuards},
	{"readback p=5e-2 / off", "0:flip@p=5e-2", false, pipeline.VerifyOff},
	{"readback p=5e-2 / dmr", "0:flip@p=5e-2", false, pipeline.VerifyDMR},
	{"burst@launch0 / guards", "0:flip@launch=0", false, pipeline.VerifyGuards},
	{"shared p=1e-5 / dmr", "0:flip@shared=1e-5", false, pipeline.VerifyDMR},
	{"readback p=5e-2 / ecc k40", "0:flip@p=5e-2", true, pipeline.VerifyOff},
}

// SDC runs the silent-data-corruption sweep: seeded bit flips in
// readback buffers and kernel shared memory, under each verify policy,
// measuring what the integrity guards detect, what host re-execution
// repairs, and what verification costs on a clean run.
func SDC(cfg Config, w io.Writer) ([]SDCRow, error) {
	const m = 120
	h, err := cfg.model(m)
	if err != nil {
		return nil, err
	}
	abc := alphabet.New()
	dbSpec := Envnr.specMinSeqs(cfg.MSVCellBudget, m, cfg.Seed+404, 64)
	dbSpec.HomologFrac = 0.3 // a dense hit list gives flips something to provably corrupt
	data, err := workload.Generate(dbSpec, h, abc)
	if err != nil {
		return nil, err
	}
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, data, abc); err != nil {
		return nil, err
	}

	opts := pipeline.DefaultOptions()
	opts.Workers = cfg.Workers
	opts.Trace = cfg.Trace
	opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: cfg.Seed, TailMass: 0.04}
	pl, err := pipeline.New(h, int(data.MeanLen()), opts)
	if err != nil {
		return nil, err
	}
	batchResidues := data.TotalResidues() / 8
	if batchResidues < 1 {
		batchResidues = 1
	}

	fprintf(w, "SDC — %d seqs, M=%d, ~8 batches on 1 device, seeded bit-flip injection\n",
		data.NumSeqs(), m)
	fprintf(w, "%-26s %8s %6s %10s %9s %7s %6s %10s %9s\n",
		"scenario", "batches", "flips", "corrected", "detected", "reruns", "hits", "identical", "wall")

	var rows []SDCRow
	var clean *pipeline.Result
	for _, sc := range sdcScenarios {
		spec := gtx580()
		if sc.ECC {
			spec = simt.TeslaK40()
		}
		sys := cfg.newSystem(spec, 1)
		if sc.Spec != "" {
			faults, err := simt.ParseFaults(sc.Spec, cfg.Seed+505, 1)
			if err != nil {
				return nil, err
			}
			if err := sys.ApplyFaults(faults); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		res, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta.Bytes()),
			pipeline.StreamConfig{BatchResidues: batchResidues, MaxRetries: 10, Verify: sc.Verify})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		wall := time.Since(start)
		sched := res.Extra.(*pipeline.MultiGPUStreamExtra).Schedule
		if clean == nil {
			clean = res
		}
		row := SDCRow{
			Scenario:  sc.Name,
			Batches:   sched.Batches,
			Detected:  sched.Faults.SDCDetected,
			Reruns:    sched.Faults.SDCReruns,
			Hits:      len(res.Hits),
			Identical: identicalHits(clean, res),
			Wall:      wall,
		}
		if inj := sys.Devices[0].Faults; inj != nil && inj.Mem != nil {
			mem := inj.Mem
			row.Flips = mem.Flips()
			row.Corrected = mem.Corrected()
		}
		rows = append(rows, row)
		fprintf(w, "%-26s %8d %6d %10d %9d %7d %6d %10v %9s\n",
			row.Scenario, row.Batches, row.Flips, row.Corrected,
			row.Detected, row.Reruns, row.Hits, row.Identical, row.Wall.Round(time.Millisecond))
	}
	fprintf(w, "guards catch readback flips on the score grid; shared-memory flips need the\n")
	fprintf(w, "ordering guard's luck or DMR; ECC absorbs everything at the device\n")
	return rows, nil
}
