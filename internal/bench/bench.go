// Package bench regenerates every table and figure of the paper's
// evaluation section (§IV): the pipeline statistics of Figure 1, the
// per-stage speedup/occupancy sweeps of Figure 9, the combined-pipeline
// speedups of Figure 10, the multi-GPU scaling of Figure 11, the Pfam
// model-size statistics, and a set of ablations for the design choices
// of §III. Workloads are scaled-down synthetic equivalents of the
// paper's databases (see internal/workload); speedups are ratios of
// modelled baseline and device times over identical DP-cell workloads,
// so they are invariant to the scale factor.
package bench

import (
	"fmt"
	"io"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/kernprof"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/workload"
)

// Config controls workload sizing for the harness.
type Config struct {
	// Seed fixes every generator in the harness.
	Seed int64
	// Sizes is the model-size sweep (default: the paper's eight sizes).
	Sizes []int
	// MSVCellBudget and VitCellBudget bound the DP cells per simulated
	// kernel run; speedups are cell-normalised, so the budgets trade
	// harness runtime against statistical smoothness only.
	MSVCellBudget int64
	VitCellBudget int64
	// Workers caps host-side parallelism (0 = GOMAXPROCS).
	Workers int
	// Trace, when non-nil, receives spans from the experiments that run
	// full pipelines (hmmbench -trace); nil keeps tracing off.
	Trace *obs.Tracer
	// Mode selects the simulator's execution mode for every device the
	// harness creates (hmmbench -sim). The zero value is cycle-accurate;
	// ModeFast skips all cost accounting, so the figure experiments'
	// modelled columns read zero and only wall-clock comparisons (the
	// trajectory experiment) are meaningful.
	Mode simt.Mode
	// Prof, when non-nil, is attached to every device the harness
	// creates and collects kernel-grained profiles (hmmbench -kprof);
	// sweep experiments tag launches with their sweep coordinates.
	Prof *kernprof.Collector
}

// DefaultConfig returns budgets sized for a laptop run of the full
// figure set (a few minutes).
func DefaultConfig() Config {
	return Config{
		Seed:          20150525, // IPDPSW'15 :-)
		Sizes:         append([]int(nil), workload.PaperModelSizes...),
		MSVCellBudget: 12_000_000,
		VitCellBudget: 3_000_000,
	}
}

// QuickConfig returns a reduced sweep for unit tests.
func QuickConfig() Config {
	return Config{
		Seed:          7,
		Sizes:         []int{48, 400, 1528},
		MSVCellBudget: 1_500_000,
		VitCellBudget: 600_000,
	}
}

// DBKind selects one of the paper's two evaluation databases.
type DBKind int

const (
	// Swissprot is the curated database (459,565 seqs, 171.7M residues,
	// high homology to typical queries).
	Swissprot DBKind = iota
	// Envnr is the environmental database (6,549,721 seqs, 1.29B
	// residues, low homology).
	Envnr
)

func (k DBKind) String() string {
	if k == Swissprot {
		return "Swissprot"
	}
	return "Envnr"
}

// FullResidues returns the paper database's total residue count, the
// scale the harness extrapolates modelled times to.
func (k DBKind) FullResidues() int64 {
	if k == Swissprot {
		return 171731281
	}
	return 1290247663
}

// spec returns a workload spec of the right shape holding roughly
// budget DP cells against a model of size m.
func (k DBKind) spec(budget int64, m int, seed int64) workload.DBSpec {
	var s workload.DBSpec
	if k == Swissprot {
		s = workload.SwissprotLike(1, seed)
	} else {
		s = workload.EnvnrLike(1, seed)
	}
	n := int(budget / (int64(m) * int64(s.MeanLen)))
	if n < 8 {
		n = 8
	}
	s.NumSeqs = n
	return s
}

// specMinSeqs is like spec but enforces a floor on the sequence count
// (pass-fraction statistics need enough sequences).
func (k DBKind) specMinSeqs(budget int64, m int, seed int64, minSeqs int) workload.DBSpec {
	s := k.spec(budget, m, seed)
	if s.NumSeqs < minSeqs {
		s.NumSeqs = minSeqs
	}
	return s
}

// model builds the query model for one sweep point.
func (c Config) model(m int) (*hmm.Plan7, error) {
	return workload.Model(fmt.Sprintf("query-M%d", m), m, alphabet.New(), c.Seed+int64(m))
}

// database generates one budgeted database (with the kind's default
// homolog fraction planted from h).
func (c Config) database(k DBKind, budget int64, h *hmm.Plan7) (*seq.Database, error) {
	spec := k.spec(budget, h.M, c.Seed+int64(h.M)*2+int64(k))
	return workload.Generate(spec, h, alphabet.New())
}

// configuredProfiles returns the quantised filter profiles for h
// against targets of db's mean length.
func configuredProfiles(h *hmm.Plan7, db *seq.Database) (*profile.MSVProfile, *profile.VitProfile) {
	p := profile.Config(h)
	p.SetLength(int(db.MeanLen()))
	return profile.NewMSVProfile(p), profile.NewVitProfile(p)
}

// fprintf writes to w unless it is nil.
func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// k40 and gtx580 are the paper's device specs.
func k40() simt.DeviceSpec    { return simt.TeslaK40() }
func gtx580() simt.DeviceSpec { return simt.GTX580() }

// newDevice creates one device of the given spec in the configured
// simulation mode.
func (c Config) newDevice(spec simt.DeviceSpec) *simt.Device {
	d := simt.NewDevice(spec)
	d.Mode = c.Mode
	// The guard matters: assigning a nil *Collector would still make
	// the Profiler interface non-nil and turn on per-block sampling.
	if c.Prof != nil {
		d.Profiler = c.Prof
	}
	return d
}

// newSystem creates n identical devices in the configured simulation
// mode.
func (c Config) newSystem(spec simt.DeviceSpec, n int) *simt.System {
	sys := simt.NewSystem(spec, n).SetMode(c.Mode)
	if c.Prof != nil {
		sys.SetProfiler(c.Prof)
	}
	return sys
}

// modeBanner warns when a figure experiment runs in fast mode, where
// the modelled (counter-derived) columns are meaningless.
func (c Config) modeBanner(w io.Writer) {
	if c.Mode == simt.ModeFast {
		fprintf(w, "NOTE: -sim fast skips cycle accounting; modelled speedup columns read zero.\n")
		fprintf(w, "      Use -sim cycles for figures, -experiment trajectory for wall-clock.\n")
	}
}
