package bench

import (
	"io"

	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/workload"
)

// PfamRow maps one paper sweep size to its launch configuration on the
// K40 — the basis of the §IV claim that ~98.9% of Pfam models (size
// < ~1002) are served by the shared-memory configuration.
type PfamRow struct {
	M          int
	AutoConfig gpu.MemConfig
	Occupancy  float64
}

// PfamReport is the §IV Pfam statistics table.
type PfamReport struct {
	TotalFamilies int
	Buckets       []workload.PfamBucket
	Sweep         []PfamRow
	// SharedServedFraction is the Pfam mass whose models the auto
	// strategy serves from shared memory.
	SharedServedFraction float64
}

// Pfam regenerates the Pfam model-size statistics and the memory
// configuration each sweep size receives.
func Pfam(cfg Config, w io.Writer) (PfamReport, error) {
	total, buckets := workload.PfamSizeDistribution()
	rep := PfamReport{TotalFamilies: total, Buckets: buckets}

	fprintf(w, "Pfam 27.0 model-size distribution (%d families, paper §IV)\n", total)
	for _, b := range buckets {
		fprintf(w, "  %-22s %5.1f%%\n", b.Label, b.Fraction*100)
	}

	fprintf(w, "\nMSV kernel auto memory configuration on the Tesla K40:\n")
	fprintf(w, "%8s %10s %10s\n", "M", "config", "occupancy")
	crossover := -1
	for _, m := range cfg.Sizes {
		plan, err := gpu.PlanMSV(k40(), m, gpu.MemAuto)
		if err != nil {
			return rep, err
		}
		rep.Sweep = append(rep.Sweep, PfamRow{
			M:          m,
			AutoConfig: plan.MemConfig,
			Occupancy:  plan.Occupancy.Fraction,
		})
		if plan.MemConfig == gpu.MemGlobal && crossover < 0 {
			crossover = m
		}
		fprintf(w, "%8d %10s %9.0f%%\n", m, plan.MemConfig, plan.Occupancy.Fraction*100)
	}

	// Models below the shared->global crossover are served from shared
	// memory; per the paper's buckets that covers <=400 fully plus the
	// 400..1000 bucket when the crossover is ~1002.
	rep.SharedServedFraction = buckets[0].Fraction
	if crossover < 0 || crossover > 1000 {
		rep.SharedServedFraction += buckets[1].Fraction
	}
	fprintf(w, "\nShared configuration serves ~%.1f%% of Pfam (paper: ~98.9%%)\n",
		rep.SharedServedFraction*100)
	return rep, nil
}
