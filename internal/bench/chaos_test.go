package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestChaosQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	var buf bytes.Buffer
	var rows []ChaosRow
	// A dead or flaky device only shows fault activity once its worker
	// claims enough batches; under heavy host load the healthy devices
	// can occasionally drain the whole stream first (the timing
	// sensitivity the stream fault tests also retry around), so allow a
	// few fresh sweeps before judging the fault counters. Result
	// identity is asserted unconditionally on every sweep.
	for attempt := 0; attempt < 5; attempt++ {
		buf.Reset()
		var err error
		rows, err = Chaos(cfg, &buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if !r.Identical {
				t.Errorf("scenario %q: results diverged from the clean run", r.Scenario)
			}
		}
		if rows[1].Retries > 0 && rows[2].Quarantined == 1 {
			break
		}
	}
	if len(rows) != len(chaosScenarios) {
		t.Fatalf("got %d rows, want %d scenarios", len(rows), len(chaosScenarios))
	}
	clean := rows[0]
	if clean.Retries != 0 || clean.Quarantined != 0 || clean.Fallbacks != 0 {
		t.Errorf("clean scenario reported fault activity: %+v", clean)
	}
	if clean.Hits == 0 {
		t.Error("clean scenario found no hits; workload too weak to validate identity")
	}
	flaky := rows[1]
	if flaky.Retries == 0 {
		t.Errorf("flaky scenario reported no retries: %+v", flaky)
	}
	dead := rows[2]
	if dead.Quarantined != 1 {
		t.Errorf("dead-device scenario quarantined %d devices, want 1", dead.Quarantined)
	}
	allDead := rows[len(rows)-1]
	if allDead.Quarantined != 4 || allDead.Fallbacks != allDead.Batches {
		t.Errorf("all-dead scenario: %+v, want 4 quarantines and full CPU fallback", allDead)
	}
	if !strings.Contains(buf.String(), "Chaos") {
		t.Error("report text missing")
	}
}
