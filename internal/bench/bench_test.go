package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/kernprof"
)

func TestFig9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	var buf bytes.Buffer
	rows, err := Fig9(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*2*len(cfg.Sizes) {
		t.Fatalf("got %d rows", len(rows))
	}
	byKey := map[string]Fig9Row{}
	for _, r := range rows {
		byKey[r.DB.String()+r.Stage.String()+string(rune(r.M))] = r
		if r.GlobalSpeedup <= 0 || r.OptimalSpeedup <= 0 {
			t.Errorf("row %+v has non-positive speedup", r)
		}
		if r.OptimalSpeedup < r.GlobalSpeedup || (r.SharedFits && r.OptimalSpeedup < r.SharedSpeedup) {
			t.Errorf("optimal is not the max: %+v", r)
		}
	}
	// Paper shapes on the quick sweep: shared wins at 400, global at
	// 1528, for MSV.
	for _, db := range []DBKind{Swissprot, Envnr} {
		var at400, at1528 Fig9Row
		for _, r := range rows {
			if r.DB == db && r.Stage == StageMSV && r.M == 400 {
				at400 = r
			}
			if r.DB == db && r.Stage == StageMSV && r.M == 1528 {
				at1528 = r
			}
		}
		if !at400.SharedFits || at400.SharedSpeedup <= at400.GlobalSpeedup*0.8 {
			t.Errorf("%s MSV at 400: shared %.2f should be competitive with global %.2f",
				db, at400.SharedSpeedup, at400.GlobalSpeedup)
		}
		if at1528.SharedFits && at1528.SharedSpeedup >= at1528.GlobalSpeedup {
			t.Errorf("%s MSV at 1528: global %.2f should beat shared %.2f",
				db, at1528.GlobalSpeedup, at1528.SharedSpeedup)
		}
	}
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("report text missing")
	}
}

func TestFig10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	cfg.Sizes = []int{400}
	var buf bytes.Buffer
	rows, err := Fig10(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Overall < 1.0 || r.Overall > 8 {
			t.Errorf("%s overall speedup %.2f implausible", r.DB, r.Overall)
		}
		if r.MSVPass <= 0 || r.MSVPass > 0.3 {
			t.Errorf("%s MSV pass %.3f implausible", r.DB, r.MSVPass)
		}
	}
	// §V: Swissprot's higher homology means more Viterbi work and a
	// lower overall speedup than Envnr.
	if rows[0].DB != Swissprot || rows[1].DB != Envnr {
		t.Fatal("row order changed")
	}
	if rows[0].MSVPass <= rows[1].MSVPass {
		t.Errorf("Swissprot MSV pass %.3f should exceed Envnr %.3f (homology)",
			rows[0].MSVPass, rows[1].MSVPass)
	}
	if rows[0].Overall >= rows[1].Overall {
		t.Errorf("Swissprot overall %.2f should trail Envnr %.2f (paper: 3.0x vs 3.8x)",
			rows[0].Overall, rows[1].Overall)
	}
}

func TestFig11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	cfg.Sizes = []int{400}
	var buf bytes.Buffer
	rows, err := Fig11(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Overall4 <= r.Overall1 {
			t.Errorf("%s: 4-GPU %.2f should beat 1-GPU %.2f", r.DB, r.Overall4, r.Overall1)
		}
		if r.ScalingEfficiency < 0.6 || r.ScalingEfficiency > 1.05 {
			t.Errorf("%s: scaling efficiency %.2f outside the near-linear band", r.DB, r.ScalingEfficiency)
		}
		if r.Overall4 < 2 || r.Overall4 > 12 {
			t.Errorf("%s: 4-GPU overall %.2f outside the plausible band around the paper's 5.6-7.8x", r.DB, r.Overall4)
		}
	}
}

func TestStreamScalingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	var buf bytes.Buffer
	rows, err := StreamScaling(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 1/2/4 devices", len(rows))
	}
	byDev := map[int]StreamScalingRow{}
	for _, r := range rows {
		byDev[r.Devices] = r
		if r.DeviceSeconds <= 0 || r.Throughput <= 0 {
			t.Errorf("%d devices: non-positive time/throughput %+v", r.Devices, r)
		}
		if r.Batches < 4*r.Devices {
			t.Errorf("%d devices: only %d batches; too coarse to balance", r.Devices, r.Batches)
		}
		var served int
		for _, u := range r.Util {
			served += u.Batches
		}
		if served != r.Batches {
			t.Errorf("%d devices: utilization accounts %d of %d batches", r.Devices, served, r.Batches)
		}
	}
	if s := byDev[1].Speedup; s != 1 {
		t.Errorf("1-device speedup %.2f, want 1.00", s)
	}
	// The acceptance gate: >=3x modelled throughput at 4 devices on the
	// skew-free workload (near-linear scaling under dynamic batching).
	if s := byDev[4].Speedup; s < 3 {
		t.Errorf("4-device speedup %.2fx, want >= 3x", s)
	}
	if s := byDev[2].Speedup; s < 1.5 {
		t.Errorf("2-device speedup %.2fx, want >= 1.5x", s)
	}
	if !strings.Contains(buf.String(), "Streamed scaling") {
		t.Error("report text missing")
	}
}

func TestFig1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	var buf bytes.Buffer
	st, err := Fig1(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.MSVPass < 0.005 || st.MSVPass > 0.08 {
		t.Errorf("MSV pass %.4f, paper reports 2.2%%", st.MSVPass)
	}
	if st.VitPass >= st.MSVPass {
		t.Error("Viterbi must pass fewer sequences than MSV")
	}
	if st.MSVTimeShare < 0.5 {
		t.Errorf("MSV time share %.2f; the paper reports ~80%%", st.MSVTimeShare)
	}
	// At quick scale only a handful of sequences reach Forward, so its
	// share is noisy; assert the robust orderings only.
	if st.MSVTimeShare < st.VitTimeShare || st.FwdTimeShare > 0.5 {
		t.Errorf("time shares implausible: %.2f %.2f %.2f",
			st.MSVTimeShare, st.VitTimeShare, st.FwdTimeShare)
	}
}

func TestPfamReport(t *testing.T) {
	cfg := DefaultConfig()
	var buf bytes.Buffer
	rep, err := Pfam(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalFamilies != 34831 {
		t.Errorf("total families %d", rep.TotalFamilies)
	}
	if rep.SharedServedFraction < 0.98 {
		t.Errorf("shared-served fraction %.3f, paper says ~98.9%%", rep.SharedServedFraction)
	}
	sawGlobal := false
	for _, r := range rep.Sweep {
		if r.M <= 400 && r.AutoConfig != gpu.MemShared {
			t.Errorf("M=%d should auto-select shared", r.M)
		}
		if r.AutoConfig == gpu.MemGlobal {
			sawGlobal = true
		}
	}
	if !sawGlobal {
		t.Error("no sweep size selected the global configuration")
	}
}

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	var buf bytes.Buffer
	rep, err := Ablations(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SyncedTime <= rep.SyncFreeTime {
		t.Errorf("synced kernel %.4g should be slower than warp-synchronous %.4g",
			rep.SyncedTime, rep.SyncFreeTime)
	}
	if rep.SyncedSyncs == 0 || rep.SyncedStalls == 0 {
		t.Error("synced kernel should report barriers and stalls")
	}
	if rep.SharedRedTime <= rep.ShuffleTime {
		t.Errorf("shared-memory reduction %.4g should be slower than shuffle %.4g",
			rep.SharedRedTime, rep.ShuffleTime)
	}
	if ratio := float64(rep.UnpackedLoadTrans) / float64(rep.PackedLoadTrans); ratio < 3 {
		t.Errorf("packing traffic ratio %.2f, expected ~6x fewer sequence fetches", ratio)
	}
	if rep.EagerTime <= rep.LazyTime {
		t.Errorf("eager D-D loop %.4g should be slower than lazy %.4g", rep.EagerTime, rep.LazyTime)
	}
	if rep.LazyItersGappy <= rep.LazyItersTypical {
		t.Errorf("gap-heavy models should iterate more: %.2f vs %.2f",
			rep.LazyItersGappy, rep.LazyItersTypical)
	}
	// §VI extension: the prefix scan caps the D-D cost, so it must beat
	// the vote loop decisively on the gap-heavy model.
	if rep.ScanTimeGappy >= rep.LazyTimeGappy {
		t.Errorf("prefix scan %.4g should beat the vote loop %.4g on gap-heavy models",
			rep.ScanTimeGappy, rep.LazyTimeGappy)
	}
	if len(rep.HomologySpeedups) != 3 {
		t.Fatalf("homology sweep has %d points", len(rep.HomologySpeedups))
	}
	if rep.HomologySpeedups[2] >= rep.HomologySpeedups[0] {
		t.Errorf("higher homology should reduce the overall speedup: %v", rep.HomologySpeedups)
	}
}

func TestExtensionQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	var buf bytes.Buffer
	rows, err := Extension(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.OverallGPUFwd <= r.OverallHostFwd {
			t.Errorf("%s: accelerating Forward should raise the overall speedup: %.2f vs %.2f",
				r.DB, r.OverallGPUFwd, r.OverallHostFwd)
		}
		if r.FwdShare <= 0 || r.FwdShare >= 1 {
			t.Errorf("%s: implausible Forward share %.3f", r.DB, r.FwdShare)
		}
	}
}

func TestSpillStudyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	var buf bytes.Buffer
	rows, err := SpillStudy(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SpillSpeedup <= r.GlobalSpeedup {
			t.Errorf("M=%d: spill %.2f should beat the collapsed global config %.2f",
				r.M, r.SpillSpeedup, r.GlobalSpeedup)
		}
		if r.SpillOcc <= r.GlobalOcc {
			t.Errorf("M=%d: spill occupancy %.2f should exceed global %.2f", r.M, r.SpillOcc, r.GlobalOcc)
		}
		if r.SpillSpeedup < 1.5 {
			t.Errorf("M=%d: spill speedup %.2f should stay well above 1x", r.M, r.SpillSpeedup)
		}
	}
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	rows9 := []Fig9Row{{DB: Envnr, Stage: StageMSV, M: 400, SharedFits: true,
		SharedSpeedup: 5.0, GlobalSpeedup: 4.9, OptimalSpeedup: 5.0, SharedOcc: 1, GlobalOcc: 1}}
	if err := WriteFig9CSV(rows9, &buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "shared_speedup") || !strings.Contains(got, "Envnr,MSV,400,true,5.0000") {
		t.Errorf("fig9 csv:\n%s", got)
	}
	buf.Reset()
	if err := WriteFig10CSV([]Fig10Row{{DB: Swissprot, M: 800, Overall: 3.7, MSVPass: 0.022}}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Swissprot,800,3.7000,0.0220") {
		t.Errorf("fig10 csv:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteFig11CSV([]Fig11Row{{DB: Envnr, M: 400, Overall4: 6.6, Overall1: 1.9, ScalingEfficiency: 0.88}}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Envnr,400,6.6000,1.9000,0.8800") {
		t.Errorf("fig11 csv:\n%s", buf.String())
	}
}

func TestExportCSVQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	cfg.Sizes = []int{48}
	dir := t.TempDir()
	if err := ExportCSV(cfg, dir, nil); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig9.csv", "fig10.csv", "fig11.csv"} {
		data, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Errorf("%s has no data rows", name)
		}
	}
}

func TestSensitivityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	var buf bytes.Buffer
	rows, err := Sensitivity(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The paper's claim: the accelerated engine preserves sensitivity.
	for _, r := range rows {
		if r.CPURecall != r.GPURecall {
			t.Errorf("rate %.2f: CPU recall %.3f != GPU recall %.3f",
				r.MutationRate, r.CPURecall, r.GPURecall)
		}
	}
	// Recall must start at ~1 and decay with divergence.
	if rows[0].CPURecall < 0.95 {
		t.Errorf("recall at 0%% mutation = %.2f, want ~1", rows[0].CPURecall)
	}
	last := rows[len(rows)-1]
	if last.CPURecall >= rows[0].CPURecall {
		t.Errorf("recall should decay with divergence: %.2f -> %.2f",
			rows[0].CPURecall, last.CPURecall)
	}
	// Specificity: composition-matched decoys must essentially never hit.
	for _, r := range rows {
		if r.DecoyFPR > 0.05 {
			t.Errorf("rate %.2f: decoy FPR %.3f too high", r.MutationRate, r.DecoyFPR)
		}
	}
}

// TestFig9ProfilerAcceptance is the PR's acceptance criterion: on a
// fig9 sweep spanning the paper's model ≈ 1002 crossover, the
// collected profile must (a) validate, (b) report achieved occupancy
// within 5% of predicted for every launch, and (c) flag the
// shared-config occupancy collapse between the sizes bracketing 1002.
func TestFig9ProfilerAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	cfg.Sizes = []int{400, 960, 1056, 1528}
	cfg.Prof = kernprof.NewCollector()
	if _, err := Fig9(cfg, nil); err != nil {
		t.Fatal(err)
	}
	prof := cfg.Prof.Profile()
	if len(prof.Launches) == 0 {
		t.Fatal("fig9 collected no launches")
	}
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, l := range prof.Launches {
		pred, ach := l.Predicted.Fraction, l.Achieved.Fraction
		if pred <= 0 {
			t.Errorf("launch %d (%s %v): predicted occupancy %g", l.Seq, l.Kernel, l.Labels, pred)
			continue
		}
		if diff := ach - pred; diff > 0.05*pred || diff < -0.05*pred {
			t.Errorf("launch %d (%s %v): achieved %.3f vs predicted %.3f, off by more than 5%%",
				l.Seq, l.Kernel, l.Labels, ach, pred)
		}
	}
	var rep bytes.Buffer
	if err := prof.WriteOccupancy(&rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "occupancy collapse") {
		t.Errorf("sweep across M=960..1056 did not flag the shared-config occupancy collapse:\n%s", rep.String())
	}
}
