package bench

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/checkpoint"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

// ResumeRow is one scenario of the crash-recovery experiment: either an
// uninterrupted journaled run (the fsync-overhead sweep) or a
// crash-then-resume pair (the recovery sweep).
type ResumeRow struct {
	Scenario string
	// SyncEvery is the journal's fsync cadence (0: journaling off).
	SyncEvery int
	// Batches is the number of batches the full stream chunks into.
	Batches int
	// Journaled and Syncs summarise the journal's write activity across
	// the scenario (both runs, for crash scenarios).
	Journaled int
	Syncs     int
	// Replayed and DroppedTail report what the resume recovered from
	// the journal (0 for uninterrupted scenarios).
	Replayed    int
	DroppedTail int
	// Hits is the final hit count; Identical reports the hit list
	// matched the unjournaled baseline exactly.
	Hits      int
	Identical bool
	// Wall is the first run's wall time (to completion, or to the
	// injected crash); Recovery is the resumed run's wall time (0 for
	// uninterrupted scenarios).
	Wall     time.Duration
	Recovery time.Duration
}

// resumeOverhead is the fsync-cadence sweep: the same uninterrupted
// streamed search with journaling off, with the full WAL guarantee
// (fsync per batch), and with amortised cadences.
var resumeOverhead = []struct {
	Name      string
	Journal   bool
	SyncEvery int
}{
	{"no journal", false, 0},
	{"fsync per batch", true, 1},
	{"fsync every 4", true, 4},
	{"fsync every 16", true, 16},
}

// resumeCrashFracs is the recovery sweep: the fraction of the stream's
// batches journaled before the injected crash. The crash fires in the
// after-sync window — the record is durable but the merge ack is lost —
// because that is the window where replay-then-skip must prevent a
// double merge.
var resumeCrashFracs = []float64{0.25, 0.50, 0.75}

// Resume runs the crash-recovery experiment: first the journal's fsync
// overhead on an uninterrupted run (per-batch WAL fsync vs amortised
// cadences vs no journal at all), then recovery time as a function of
// how far the run got before crashing. Every scenario's final hit list
// must match the unjournaled baseline bit-exactly.
func Resume(cfg Config, w io.Writer) ([]ResumeRow, error) {
	const m = 120
	h, err := cfg.model(m)
	if err != nil {
		return nil, err
	}
	abc := alphabet.New()
	dbSpec := Envnr.specMinSeqs(cfg.MSVCellBudget, m, cfg.Seed+606, 64)
	dbSpec.HomologFrac = 0.3
	data, err := workload.Generate(dbSpec, h, abc)
	if err != nil {
		return nil, err
	}
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, data, abc); err != nil {
		return nil, err
	}

	opts := pipeline.DefaultOptions()
	opts.Workers = cfg.Workers
	opts.Trace = cfg.Trace
	opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: cfg.Seed, TailMass: 0.04}
	pl, err := pipeline.New(h, int(data.MeanLen()), opts)
	if err != nil {
		return nil, err
	}
	batchResidues := data.TotalResidues() / 16
	if batchResidues < 1 {
		batchResidues = 1
	}

	dir, err := os.MkdirTemp("", "hmmbench-resume")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	run := func(ck *pipeline.CheckpointConfig) (*pipeline.Result, time.Duration, error) {
		sys := cfg.newSystem(gtx580(), 2)
		start := time.Now()
		res, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta.Bytes()),
			pipeline.StreamConfig{BatchResidues: batchResidues, Checkpoint: ck})
		return res, time.Since(start), err
	}

	fprintf(w, "Resume — %d seqs, M=%d, ~16 batches on 2 devices, crash-safe journal\n",
		data.NumSeqs(), m)
	fprintf(w, "%-24s %5s %8s %10s %6s %9s %5s %5s %10s %9s %9s\n",
		"scenario", "sync", "batches", "journaled", "syncs", "replayed", "torn", "hits", "identical", "wall", "recovery")
	emit := func(r ResumeRow) {
		fprintf(w, "%-24s %5d %8d %10d %6d %9d %5d %5d %10v %9s %9s\n",
			r.Scenario, r.SyncEvery, r.Batches, r.Journaled, r.Syncs,
			r.Replayed, r.DroppedTail, r.Hits, r.Identical,
			r.Wall.Round(time.Millisecond), r.Recovery.Round(time.Millisecond))
	}

	var rows []ResumeRow
	var baseline *pipeline.Result
	batches := 0
	for i, sc := range resumeOverhead {
		var ck *pipeline.CheckpointConfig
		if sc.Journal {
			ck = &pipeline.CheckpointConfig{
				Path:      filepath.Join(dir, fmt.Sprintf("overhead-%d.ckpt", i)),
				SyncEvery: sc.SyncEvery,
			}
		}
		res, wall, err := run(ck)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		extra := res.Extra.(*pipeline.MultiGPUStreamExtra)
		if baseline == nil {
			baseline = res
			batches = extra.Schedule.Batches
		}
		row := ResumeRow{
			Scenario:  sc.Name,
			SyncEvery: sc.SyncEvery,
			Batches:   extra.Schedule.Batches,
			Hits:      len(res.Hits),
			Identical: identicalHits(baseline, res),
			Wall:      wall,
		}
		if st := extra.Checkpoint; st != nil {
			row.Journaled = st.Journaled
			row.Syncs = st.Syncs
		}
		rows = append(rows, row)
		emit(row)
	}

	for _, frac := range resumeCrashFracs {
		after := int(frac * float64(batches))
		name := fmt.Sprintf("crash@%d%%, resume", int(frac*100))
		path := filepath.Join(dir, fmt.Sprintf("crash-%d.ckpt", after))
		_, crashWall, err := run(&pipeline.CheckpointConfig{
			Path:  path,
			Crash: checkpoint.CrashAfter(after, checkpoint.WindowAfterSync),
		})
		if !errors.Is(err, checkpoint.ErrInjectedCrash) {
			return nil, fmt.Errorf("scenario %q: crashed run returned %v, want injected crash", name, err)
		}
		res, recovery, err := run(&pipeline.CheckpointConfig{Path: path, Resume: true})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: resume: %w", name, err)
		}
		extra := res.Extra.(*pipeline.MultiGPUStreamExtra)
		st := extra.Checkpoint
		row := ResumeRow{
			Scenario:    name,
			SyncEvery:   1,
			Batches:     extra.Schedule.Batches + extra.Replayed,
			Journaled:   st.Journaled,
			Syncs:       st.Syncs,
			Replayed:    st.Replayed,
			DroppedTail: st.DroppedTail,
			Hits:        len(res.Hits),
			Identical:   identicalHits(baseline, res),
			Wall:        crashWall,
			Recovery:    recovery,
		}
		rows = append(rows, row)
		emit(row)
	}
	fprintf(w, "per-batch fsync is the full WAL guarantee; larger cadences amortise the\n")
	fprintf(w, "fsync and re-execute at most SyncEvery-1 batches on resume. Recovery time\n")
	fprintf(w, "falls as the crash point moves later: replayed batches skip execution\n")
	return rows, nil
}
