package bench

import (
	"bytes"
	"strings"
	"testing"

	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/simt"
)

func TestTrajectoryQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	cfg.Mode = simt.ModeFast
	var buf bytes.Buffer
	rep, err := Trajectory(cfg, "test", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != TrajectorySchema || rep.Rev != "test" || rep.SimMode != "fast" {
		t.Errorf("report header = %q/%q/%q", rep.Schema, rep.Rev, rep.SimMode)
	}
	if len(rep.Suites) != 2 {
		t.Fatalf("got %d suites, want 2", len(rep.Suites))
	}
	for _, s := range rep.Suites {
		if s.WallSeconds <= 0 || s.Cells <= 0 || s.CellsPerSec <= 0 {
			t.Errorf("suite %q: degenerate record %+v", s.Suite, s)
		}
	}
	if !strings.Contains(buf.String(), "fig10-pipeline") {
		t.Error("report text missing the pipeline suite row")
	}

	// Round-trip: WriteFile must produce a file ReadTrajectory accepts
	// and that decodes to the same record.
	dir := t.TempDir()
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != rep.Rev || len(got.Suites) != len(rep.Suites) ||
		got.Suites[0] != rep.Suites[0] || got.Suites[1] != rep.Suites[1] {
		t.Errorf("round-trip mismatch:\nwrote %+v\nread  %+v", rep, got)
	}
}

// benchStage runs the M=120 swissprot MSV kernel point, the
// trajectory's smallest unit of simulator work, in the given mode.
func benchStage(b *testing.B, mode simt.Mode) {
	cfg := QuickConfig()
	cfg.Mode = mode
	h, err := cfg.model(120)
	if err != nil {
		b.Fatal(err)
	}
	data, err := cfg.database(Swissprot, cfg.MSVCellBudget, h)
	if err != nil {
		b.Fatal(err)
	}
	mp, vp := configuredProfiles(h, data)
	cells := data.TotalResidues() * 120
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := runStage(cfg, k40(), Swissprot, StageMSV, gpu.MemShared, mp, vp, data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkMSVKernelFast tracks the simulator's functional-mode
// throughput on one kernel point; BenchmarkMSVKernelCycles is the
// same work under full cycle accounting, so the pair exposes the
// accounting overhead directly in benchstat output.
func BenchmarkMSVKernelFast(b *testing.B)   { benchStage(b, simt.ModeFast) }
func BenchmarkMSVKernelCycles(b *testing.B) { benchStage(b, simt.ModeCycleAccurate) }
