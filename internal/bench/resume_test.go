package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestResumeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness simulation is slow")
	}
	cfg := QuickConfig()
	var buf bytes.Buffer
	rows, err := Resume(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(resumeOverhead)+len(resumeCrashFracs) {
		t.Fatalf("got %d rows, want %d", len(rows), len(resumeOverhead)+len(resumeCrashFracs))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("scenario %q: results diverged from the unjournaled baseline", r.Scenario)
		}
	}
	baseline := rows[0]
	if baseline.Journaled != 0 || baseline.Syncs != 0 {
		t.Errorf("unjournaled baseline reported journal activity: %+v", baseline)
	}
	if baseline.Hits == 0 {
		t.Error("baseline found no hits; workload too weak to validate identity")
	}
	perBatch := rows[1]
	if perBatch.Journaled != perBatch.Batches {
		t.Errorf("fsync-per-batch journaled %d of %d batches", perBatch.Journaled, perBatch.Batches)
	}
	if perBatch.Syncs < perBatch.Journaled {
		t.Errorf("fsync-per-batch issued %d syncs for %d appends", perBatch.Syncs, perBatch.Journaled)
	}
	amortised := rows[3]
	if amortised.Syncs >= perBatch.Syncs {
		t.Errorf("SyncEvery=16 issued %d syncs, per-batch %d; amortisation had no effect",
			amortised.Syncs, perBatch.Syncs)
	}
	for _, r := range rows[len(resumeOverhead):] {
		if r.Replayed == 0 {
			t.Errorf("scenario %q: resume replayed no batches", r.Scenario)
		}
		if r.Recovery == 0 {
			t.Errorf("scenario %q: no recovery time recorded", r.Scenario)
		}
	}
	if !strings.Contains(buf.String(), "Resume") {
		t.Error("report text missing")
	}
}
