package bench

import (
	"io"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/perf"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

// ExtensionRow is one point of the heterogeneous-pipeline study (the
// §VI direction): the full three-stage pipeline with the Forward stage
// on the host (as in the paper) vs on the device.
type ExtensionRow struct {
	DB DBKind
	M  int
	// OverallHostFwd and OverallGPUFwd are full-pipeline speedups vs
	// the all-CPU baseline (MSV+Viterbi+Forward).
	OverallHostFwd float64
	OverallGPUFwd  float64
	// FwdShare is Forward's share of the remaining host time in the
	// paper's configuration (the Amdahl term the extension removes).
	FwdShare float64
}

// SpillRow is one point of the row-spill study: Viterbi on very large
// models with the paper's global configuration vs the spill variant.
type SpillRow struct {
	M             int
	GlobalSpeedup float64
	SpillSpeedup  float64
	GlobalOcc     float64
	SpillOcc      float64
}

// Extension runs the heterogeneous-pipeline study at M=400 on both
// databases, then the Viterbi row-spill study on the large models.
func Extension(cfg Config, w io.Writer) ([]ExtensionRow, error) {
	spec := k40()
	fprintf(w, "Extension (§VI direction) — Forward stage on the device, Tesla K40\n")
	fprintf(w, "%12s %8s %16s %16s %10s\n", "DB", "M", "host-fwd overall", "gpu-fwd overall", "fwd share")
	var rows []ExtensionRow
	const m = 400
	for _, db := range []DBKind{Swissprot, Envnr} {
		row, err := extensionPoint(cfg, spec, db, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		fprintf(w, "%12s %8d %15.2fx %15.2fx %9.1f%%\n",
			db, m, row.OverallHostFwd, row.OverallGPUFwd, row.FwdShare*100)
	}
	if _, err := SpillStudy(cfg, w); err != nil {
		return nil, err
	}
	return rows, nil
}

// SpillStudy measures the P7Viterbi row-spill variant against the
// paper's global configuration on large models (Envnr-like workload).
func SpillStudy(cfg Config, w io.Writer) ([]SpillRow, error) {
	spec := k40()
	fprintf(w, "\nExtension — P7Viterbi DP-row spill to L2 (large models, Envnr-like)\n")
	fprintf(w, "%8s %14s %14s %12s %12s\n", "M", "global-speedup", "spill-speedup", "global-occ", "spill-occ")
	var rows []SpillRow
	for _, m := range []int{1002, 1528, 2405} {
		h, err := cfg.model(m)
		if err != nil {
			return nil, err
		}
		data, err := cfg.database(Envnr, cfg.VitCellBudget, h)
		if err != nil {
			return nil, err
		}
		_, vp := configuredProfiles(h, data)
		row := SpillRow{M: m}
		for i, mem := range []gpu.MemConfig{gpu.MemGlobal, gpu.MemSpill} {
			plan, err := gpu.PlanViterbi(spec, m, mem)
			if err != nil {
				return nil, err
			}
			t, cells, err := runStage(cfg, spec, Envnr, StageViterbi, mem, nil, vp, data)
			if err != nil {
				return nil, err
			}
			sp := perf.Speedup(cpuStageTime(StageViterbi, cells), t)
			if i == 0 {
				row.GlobalSpeedup, row.GlobalOcc = sp, plan.Occupancy.Fraction
			} else {
				row.SpillSpeedup, row.SpillOcc = sp, plan.Occupancy.Fraction
			}
		}
		rows = append(rows, row)
		fprintf(w, "%8d %13.2fx %13.2fx %11.0f%% %11.0f%%\n",
			m, row.GlobalSpeedup, row.SpillSpeedup, row.GlobalOcc*100, row.SpillOcc*100)
	}
	return rows, nil
}

func extensionPoint(cfg Config, spec simt.DeviceSpec, db DBKind, m int) (ExtensionRow, error) {
	row := ExtensionRow{DB: db, M: m}
	h, err := cfg.model(m)
	if err != nil {
		return row, err
	}
	dbSpec := db.specMinSeqs(cfg.MSVCellBudget, m, cfg.Seed+int64(m)*3+int64(db), 300)
	data, err := workload.Generate(dbSpec, h, alphabet.New())
	if err != nil {
		return row, err
	}
	opts := pipeline.DefaultOptions()
	opts.Workers = cfg.Workers
	opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: cfg.Seed, TailMass: 0.04}
	pl, err := pipeline.New(h, int(data.MeanLen()), opts)
	if err != nil {
		return row, err
	}
	pl.Opts.GPUForward = true

	res, err := pl.RunGPU(cfg.newDevice(spec), gpu.MemAuto, data)
	if err != nil {
		return row, err
	}
	extra := res.Extra.(*pipeline.GPUExtra)
	scale := float64(db.FullResidues()) / float64(data.TotalResidues())

	c := perf.BaselineI5()
	cpuMSV := perf.CPUTimeMSV(c, int64(float64(res.MSV.Cells)*scale))
	cpuVit := perf.CPUTimeVit(c, int64(float64(res.Viterbi.Cells)*scale))
	cpuFwd := perf.CPUTimeFwd(c, int64(float64(res.Forward.Cells)*scale))
	cpuTotal := cpuMSV + cpuVit + cpuFwd

	gpuMSV := perf.GPUTimeScaled(spec, extra.MSVReport.Launch, scale)
	var gpuVit, gpuFwd float64
	if extra.VitReport != nil {
		gpuVit = perf.GPUTimeScaled(spec, extra.VitReport.Launch, scale)
	}
	if extra.FwdReport != nil {
		gpuFwd = perf.GPUTimeScaled(spec, extra.FwdReport.Launch, scale)
	}

	// Paper configuration: filters on device, Forward stays on host.
	row.OverallHostFwd = perf.Speedup(cpuTotal, gpuMSV+gpuVit+cpuFwd)
	// Extension: all three stages on the device.
	row.OverallGPUFwd = perf.Speedup(cpuTotal, gpuMSV+gpuVit+gpuFwd)
	if rem := gpuMSV + gpuVit + cpuFwd; rem > 0 {
		row.FwdShare = cpuFwd / rem
	}
	return row, nil
}
