package bench

import (
	"io"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/perf"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

// Fig10Row is one point of Figure 10: the overall speedup of the
// combined MSV + P7Viterbi pipeline segment on a single Tesla K40.
type Fig10Row struct {
	DB DBKind
	M  int
	// Overall is (T_cpu_msv + T_cpu_vit) / (T_gpu_msv + T_gpu_vit).
	Overall float64
	// MSVPass is the fraction of sequences surviving the MSV filter,
	// which sets the Viterbi stage's share of the work (§V).
	MSVPass float64
}

// Fig10 regenerates Figure 10: overall combined-stage speedups for
// both databases across the size sweep on a single K40, using the
// auto (optimal) memory strategy and HMMER3's filter thresholds.
func Fig10(cfg Config, w io.Writer) ([]Fig10Row, error) {
	spec := k40()
	cfg.modeBanner(w)
	fprintf(w, "Figure 10 — overall MSV+P7Viterbi speedup on a single %s\n", spec.Name)
	fprintf(w, "%12s %8s %10s %10s\n", "DB", "M", "overall", "MSV-pass")
	var rows []Fig10Row
	for _, db := range []DBKind{Swissprot, Envnr} {
		for _, m := range cfg.Sizes {
			row, err := combinedPoint(cfg, spec, nil, db, m)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			fprintf(w, "%12s %8d %9.2fx %9.2f%%\n", db, m, row.Overall, row.MSVPass*100)
		}
	}
	return rows, nil
}

// combinedPoint measures one combined-pipeline point on a single
// device (sys == nil) or across a multi-device system (Fig. 11).
func combinedPoint(cfg Config, spec simt.DeviceSpec, sys *simt.System, db DBKind, m int) (Fig10Row, error) {
	row := Fig10Row{DB: db, M: m}
	h, err := cfg.model(m)
	if err != nil {
		return row, err
	}
	// Pass-fraction statistics need a minimum sequence count even when
	// the cell budget would allow fewer.
	dbSpec := db.specMinSeqs(cfg.MSVCellBudget, m, cfg.Seed+int64(m)*2+int64(db), 300)
	data, err := workload.Generate(dbSpec, h, alphabet.New())
	if err != nil {
		return row, err
	}

	opts := pipeline.DefaultOptions()
	opts.SkipForward = true
	opts.Workers = cfg.Workers
	opts.Trace = cfg.Trace
	// A lighter calibration is plenty for stable pass fractions.
	opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: cfg.Seed, TailMass: 0.04}
	pl, err := pipeline.New(h, int(data.MeanLen()), opts)
	if err != nil {
		return row, err
	}

	// Extrapolate run times to the full paper-scale database; with n
	// devices each shard carries scale/n of the full workload.
	scale := float64(db.FullResidues()) / float64(data.TotalResidues())

	var msvT, vitT float64
	var res *pipeline.Result
	if sys == nil {
		dev := cfg.newDevice(spec)
		res, err = pl.RunGPU(dev, gpu.MemAuto, data)
		if err != nil {
			return row, err
		}
		extra := res.Extra.(*pipeline.GPUExtra)
		msvT = perf.GPUTimeScaled(spec, extra.MSVReport.Launch, scale)
		if extra.VitReport != nil {
			vitT = perf.GPUTimeScaled(spec, extra.VitReport.Launch, scale)
		}
	} else {
		res, err = pl.RunMultiGPU(sys, gpu.MemAuto, data)
		if err != nil {
			return row, err
		}
		extra := res.Extra.(*pipeline.MultiGPUExtra)
		// Devices run concurrently: the stage finishes with the slowest.
		for _, rep := range extra.MSV.PerDevice {
			if rep != nil {
				if t := perf.GPUTimeScaled(spec, rep.Launch, scale); t > msvT {
					msvT = t
				}
			}
		}
		if extra.Vit != nil {
			for _, rep := range extra.Vit.PerDevice {
				if rep != nil {
					if t := perf.GPUTimeScaled(spec, rep.Launch, scale); t > vitT {
						vitT = t
					}
				}
			}
		}
	}

	cpuT := perf.CPUTimeMSV(perf.BaselineI5(), int64(float64(res.MSV.Cells)*scale)) +
		perf.CPUTimeVit(perf.BaselineI5(), int64(float64(res.Viterbi.Cells)*scale))
	row.Overall = perf.Speedup(cpuT, msvT+vitT)
	row.MSVPass = res.MSV.PassFraction()
	return row, nil
}
