package bench

import (
	"io"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/perf"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

// Fig1Stats reproduces the pipeline statistics of Figure 1: the
// fraction of sequences crossing each stage threshold and the share of
// baseline execution time each stage accounts for. The paper reports,
// for a model of size 400 against Env_nr: 2.2% of sequences pass MSV,
// 0.1% pass P7Viterbi; execution time splits 80.6% / 14.5% / 4.9%.
type Fig1Stats struct {
	NumSeqs int

	MSVPass float64
	VitPass float64 // fraction of ALL sequences reaching Forward

	MSVTimeShare float64
	VitTimeShare float64
	FwdTimeShare float64
}

// Fig1 runs the full pipeline (CPU engine, Forward included) on an
// Env_nr-like database with a size-400 model and reports the stage
// statistics.
func Fig1(cfg Config, w io.Writer) (Fig1Stats, error) {
	var out Fig1Stats
	const m = 400
	h, err := cfg.model(m)
	if err != nil {
		return out, err
	}
	// A larger sequence count than the kernel benches use: stage pass
	// fractions need statistics, and the CPU engine is fast. The
	// homolog fraction is lowered to Env_nr levels for a 400-size
	// query (the paper's 0.1% Forward-stage rate implies very few true
	// members in the 6.5M-sequence database).
	spec := Envnr.spec(40*cfg.MSVCellBudget, m, cfg.Seed+12)
	spec.HomologFrac = 0.0005
	data, err := workload.Generate(spec, h, alphabet.New())
	if err != nil {
		return out, err
	}

	opts := pipeline.DefaultOptions()
	opts.Workers = cfg.Workers
	opts.Trace = cfg.Trace
	opts.Calibration = stats.CalibrateOptions{N: 128, L: 100, Seed: cfg.Seed, TailMass: 0.04}
	pl, err := pipeline.New(h, int(data.MeanLen()), opts)
	if err != nil {
		return out, err
	}
	res, err := pl.RunCPU(data)
	if err != nil {
		return out, err
	}

	out.NumSeqs = data.NumSeqs()
	out.MSVPass = res.MSV.PassFraction()
	out.VitPass = float64(res.Viterbi.Out) / float64(res.MSV.In)

	c := perf.BaselineI5()
	msvT := perf.CPUTimeMSV(c, res.MSV.Cells)
	vitT := perf.CPUTimeVit(c, res.Viterbi.Cells)
	fwdT := perf.CPUTimeFwd(c, res.Forward.Cells)
	total := msvT + vitT + fwdT
	out.MSVTimeShare = msvT / total
	out.VitTimeShare = vitT / total
	out.FwdTimeShare = fwdT / total

	fprintf(w, "Figure 1 — HMMER3 task pipeline statistics (Envnr-like, M=%d, %d seqs)\n", m, out.NumSeqs)
	fprintf(w, "%-16s %12s %12s %14s %12s\n", "stage", "in", "out", "pass (paper)", "time (paper)")
	fprintf(w, "%-16s %12d %12d %6.2f%% (2.2%%) %6.1f%% (80.6%%)\n",
		"MSV", res.MSV.In, res.MSV.Out, out.MSVPass*100, out.MSVTimeShare*100)
	fprintf(w, "%-16s %12d %12d %6.2f%% (0.1%%) %6.1f%% (14.5%%)\n",
		"P7Viterbi", res.Viterbi.In, res.Viterbi.Out, out.VitPass*100, out.VitTimeShare*100)
	fprintf(w, "%-16s %12d %12d %14s %6.1f%% (4.9%%)\n",
		"Forward", res.Forward.In, res.Forward.Out, "", out.FwdTimeShare*100)
	return out, nil
}
