package bench

import (
	"bytes"
	"io"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/perf"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

// StreamScalingRow is one point of the streamed multi-device scaling
// run: the same Env_nr-like workload streamed through
// pipeline.RunMultiGPUStream on 1, 2 and 4 GTX 580s with dynamic batch
// scheduling instead of the static Partition split.
type StreamScalingRow struct {
	Devices int
	// Batches is the number of residue-balanced batches scheduled.
	Batches int
	// DeviceSeconds is the modelled busy time of the busiest device
	// (the stage completes when the last device drains); modelled times
	// make the row deterministic and host-independent like every other
	// figure in this harness.
	DeviceSeconds float64
	// Throughput is residues per modelled second.
	Throughput float64
	// Speedup is DeviceSeconds(1 device) / DeviceSeconds(n devices).
	Speedup float64
	// Util is the scheduler's per-device utilization (measured busy
	// wall time, residues, batches served).
	Util []gpu.DeviceUtilization
	// Imbalance is busiest/mean modelled device time (1.0 = perfect).
	Imbalance float64
}

// StreamScaling measures streamed multi-device scaling on a skew-free
// workload (every sequence the same length, so any scaling loss is the
// scheduler's fault, not the input's): near-linear throughput growth
// at 1/2/4 devices is the paper's §IV-A claim carried over to the
// streaming scheduler.
func StreamScaling(cfg Config, w io.Writer) ([]StreamScalingRow, error) {
	const m = 400
	spec := gtx580()
	h, err := cfg.model(m)
	if err != nil {
		return nil, err
	}

	// Skew-free Env_nr-like input: constant sequence length, enough
	// sequences for ~8 batches per device at 4 devices.
	dbSpec := Envnr.specMinSeqs(cfg.MSVCellBudget, m, cfg.Seed+101, 128)
	dbSpec.LogSigma = 0
	data, err := workload.Generate(dbSpec, h, alphabet.New())
	if err != nil {
		return nil, err
	}
	abc := alphabet.New()
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, data, abc); err != nil {
		return nil, err
	}

	opts := pipeline.DefaultOptions()
	opts.SkipForward = true
	opts.Workers = cfg.Workers
	opts.Trace = cfg.Trace
	opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: cfg.Seed, TailMass: 0.04}
	pl, err := pipeline.New(h, int(data.MeanLen()), opts)
	if err != nil {
		return nil, err
	}
	batchResidues := data.TotalResidues() / 32
	if batchResidues < 1 {
		batchResidues = 1
	}

	fprintf(w, "Streamed scaling — %d seqs x %d residues (skew-free), M=%d, ~32 batches, %s\n",
		data.NumSeqs(), data.Seqs[0].Len(), m, spec.Name)
	fprintf(w, "%8s %8s %14s %16s %8s %10s\n",
		"devices", "batches", "device-time", "residues/s", "speedup", "imbalance")

	var rows []StreamScalingRow
	var base float64
	for _, n := range []int{1, 2, 4} {
		sys := cfg.newSystem(spec, n)
		res, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta.Bytes()),
			pipeline.StreamConfig{BatchResidues: batchResidues})
		if err != nil {
			return nil, err
		}
		extra := res.Extra.(*pipeline.MultiGPUStreamExtra)

		var worst, sum float64
		for _, launches := range extra.Launches {
			var t float64
			for _, rep := range launches {
				t += perf.GPUTime(spec, rep)
			}
			sum += t
			if t > worst {
				worst = t
			}
		}
		row := StreamScalingRow{
			Devices:       n,
			Batches:       extra.Schedule.Batches,
			DeviceSeconds: worst,
			Util:          extra.Schedule.Util,
		}
		if worst > 0 {
			row.Throughput = float64(extra.Schedule.Residues) / worst
			row.Imbalance = worst / (sum / float64(n))
		}
		if n == 1 {
			base = worst
		}
		if worst > 0 {
			row.Speedup = base / worst
		}
		rows = append(rows, row)
		fprintf(w, "%8d %8d %12.3fms %16.0f %7.2fx %9.2fx\n",
			n, row.Batches, row.DeviceSeconds*1e3, row.Throughput, row.Speedup, row.Imbalance)
		for i, u := range row.Util {
			fprintf(w, "%10s device %d: %3d batches, %8d residues, busy %v\n",
				"", i, u.Batches, u.Residues, u.Busy)
		}
	}
	fprintf(w, "dynamic batch scheduling keeps every device fed: speedup tracks device count\n")
	return rows, nil
}
