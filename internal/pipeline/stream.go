package pipeline

import (
	"io"
	"sort"

	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/stats"
)

// RunCPUStream searches a FASTA stream with the CPU engine in batches
// of batchSize sequences, so the database never needs to fit in memory
// (the paper's Env_nr holds 6.5M sequences). Stage statistics are
// merged across batches; E-values are computed against the final total
// sequence count and the hit list is re-sorted at the end. Hit indexes
// are global (position in the stream).
func (pl *Pipeline) RunCPUStream(r io.Reader, batchSize int) (*Result, error) {
	final := &Result{}
	offset := 0
	err := seq.StreamFASTA(r, pl.Prof.Abc, batchSize, func(batch *seq.Database) error {
		res, err := pl.RunCPU(batch)
		if err != nil {
			return err
		}
		mergeStage(&final.MSV, res.MSV)
		mergeStage(&final.Viterbi, res.Viterbi)
		mergeStage(&final.Forward, res.Forward)
		for _, h := range res.Hits {
			h.Index += offset
			final.Hits = append(final.Hits, h)
		}
		offset += batch.NumSeqs()
		return nil
	})
	if err != nil {
		return nil, err
	}
	// E-values were computed per batch; rescale to the full stream.
	for i := range final.Hits {
		final.Hits[i].EValue = stats.EValue(final.Hits[i].PValue, offset)
	}
	sort.Slice(final.Hits, func(i, j int) bool {
		if final.Hits[i].EValue != final.Hits[j].EValue {
			return final.Hits[i].EValue < final.Hits[j].EValue
		}
		return final.Hits[i].Index < final.Hits[j].Index
	})
	return final, nil
}

func mergeStage(dst *StageStats, src StageStats) {
	dst.In += src.In
	dst.Out += src.Out
	dst.Cells += src.Cells
	dst.Wall += src.Wall
}
