package pipeline

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"hmmer3gpu/internal/checkpoint"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/integrity"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/perf"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/stats"
)

// RunCPUStream searches a FASTA stream with the CPU engine in batches
// of batchSize sequences, so the database never needs to fit in memory
// (the paper's Env_nr holds 6.5M sequences). Stage statistics are
// merged across batches; E-values are computed against the final total
// sequence count and the hit list is re-sorted at the end. Hit indexes
// are global (position in the stream).
func (pl *Pipeline) RunCPUStream(r io.Reader, batchSize int) (*Result, error) {
	return pl.RunCPUStreamContext(context.Background(), r, batchSize)
}

// RunCPUStreamContext is RunCPUStream with cancellation: ctx is
// checked before every batch and before every sequence within a batch.
func (pl *Pipeline) RunCPUStreamContext(ctx context.Context, r io.Reader, batchSize int) (*Result, error) {
	root := pl.startSearch("cpu-stream", nil)
	defer root.End()
	final := &Result{}
	offset := 0
	batchNo := 0
	err := seq.StreamFASTA(r, pl.Prof.Abc, batchSize, func(batch *seq.Database) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		batchSpan := root.Child(fmt.Sprintf("batch %d", batchNo),
			obs.Int("batch", int64(batchNo)),
			obs.Int("offset", int64(offset)),
			obs.Int("seqs", int64(batch.NumSeqs())),
			obs.Int("residues", batch.TotalResidues()))
		res, err := pl.runCPUContext(ctx, batch, batchSpan)
		batchSpan.End()
		if err != nil {
			return err
		}
		mergeBatch(final, res, offset)
		offset += batch.NumSeqs()
		batchNo++
		return nil
	})
	if err != nil {
		return nil, err
	}
	finalizeStream(final, offset)
	final.Record(pl.Opts.Metrics)
	return final, nil
}

// VerifyMode selects the result-integrity policy of a streamed
// multi-device run: what the pipeline does about silent data
// corruption (bit flips on non-ECC devices that leave the launch
// successful but a score wrong).
type VerifyMode int

const (
	// VerifyOff runs no integrity checks: device results merge as-is.
	// This is the zero value, matching the pre-verification behaviour.
	VerifyOff VerifyMode = iota
	// VerifyGuards runs the cheap per-batch guards (grid membership,
	// overflow exactness, pipeline score ordering; see package
	// integrity) on every device batch. A failed batch is discarded
	// before merge and re-executed on another device, consuming the
	// batch's retry budget.
	VerifyGuards
	// VerifyDMR runs the same guards but re-executes a failed batch on
	// the host CPU immediately (dual modular redundancy on suspicion
	// only), off the device retry budget. The host engine is
	// bit-identical to the device path, so the rerun's merge restores
	// the fault-free result.
	VerifyDMR
)

// StreamConfig configures a streamed multi-device search.
type StreamConfig struct {
	// BatchResidues is the residue budget per batch (see
	// seq.StreamFASTAResidues); batches are the scheduler's work unit,
	// so this sets the load-balancing granularity: smaller batches
	// balance better but pay more per-batch launch overhead.
	BatchResidues int64
	// QueueDepth bounds parsed-but-unprocessed batches (backpressure);
	// 0 means two per device. Peak input memory is roughly
	// (QueueDepth + devices) * BatchResidues bytes of residues.
	QueueDepth int

	// MaxRetries is the per-batch retry budget after transient device
	// faults (0: scheduler default, negative: disabled); see
	// gpu.Scheduler.
	MaxRetries int
	// QuarantineAfter is the consecutive-failure circuit breaker per
	// device (0: scheduler default, negative: disabled).
	QuarantineAfter int
	// BatchTimeout is the per-batch watchdog deadline (0: disabled).
	BatchTimeout time.Duration
	// DisableFallback turns off the host-CPU fallback engaged when
	// every device is quarantined; the run then fails with
	// gpu.ErrAllQuarantined instead of completing on the host.
	DisableFallback bool
	// Verify selects the silent-data-corruption policy (off by
	// default).
	Verify VerifyMode

	// Checkpoint, when non-nil, journals every committed batch to a
	// crash-safe on-disk log and can resume an interrupted run from it
	// (see CheckpointConfig and DESIGN §2e).
	Checkpoint *CheckpointConfig
	// Drain, when non-nil, requests a graceful stop once closed:
	// in-flight batches finish (and are journaled), no further batches
	// are submitted, and the run returns with
	// MultiGPUStreamExtra.Drained set instead of an error — the SIGINT
	// path, leaving a journal a later -resume can continue from.
	Drain <-chan struct{}
}

// MultiGPUStreamExtra carries the streamed multi-device run's
// observability: the scheduler's utilization report and every kernel
// launch, per device, for the perf model.
type MultiGPUStreamExtra struct {
	// Schedule reports wall time and per-device utilization (busy wall
	// time, residues processed, batches served).
	Schedule *gpu.ScheduleReport
	// Launches[i] holds device i's kernel launch reports in processing
	// order (one MSV launch per batch, plus one Viterbi launch when the
	// batch had MSV survivors).
	Launches [][]*simt.LaunchReport
	// Drained reports that the run stopped early at the caller's
	// request (StreamConfig.Drain closed): every merged batch is
	// durable, but the stream was not fully processed, so the Result is
	// partial and a journaled run can be resumed.
	Drained bool
	// Replayed is the number of batches merged from the checkpoint
	// journal instead of being executed (0 for a fresh run).
	Replayed int
	// Checkpoint carries the journal's counters when journaling was
	// enabled.
	Checkpoint *checkpoint.Stats
}

// RunMultiGPUStream searches a FASTA stream across all devices of a
// system: the stream is chunked into residue-balanced batches, host
// parsing overlaps device execution through a bounded queue, and each
// batch runs on whichever device frees up first (dynamic load
// balancing, replacing the static Partition split of RunMultiGPU for
// streamed input). Filter stages run on the devices, the Forward stage
// on the host. Results are merged exactly as RunCPUStream merges them:
// global hit indexes, E-values rescaled to the final sequence count,
// deterministic final sort.
//
// The run is fault-tolerant per cfg: transient device faults are
// retried (preferring a different device), repeatedly failing devices
// are quarantined, and once every device is quarantined the remaining
// batches complete on the host CPU (unless cfg.DisableFallback).
// Because both engines are deterministic and merges are gated by each
// batch's commit token, a faulted run's Result is bit-identical to the
// fault-free run's.
func (pl *Pipeline) RunMultiGPUStream(sys *simt.System, mem gpu.MemConfig, r io.Reader, cfg StreamConfig) (*Result, error) {
	return pl.RunMultiGPUStreamContext(context.Background(), sys, mem, r, cfg)
}

// RunMultiGPUStreamContext is RunMultiGPUStream with cancellation:
// cancelling ctx aborts the scheduler (producer and workers) and
// returns ctx's error. With cfg.Checkpoint set the run journals every
// committed batch and can resume an interrupted run; with cfg.Drain
// set it stops gracefully when that channel closes.
func (pl *Pipeline) RunMultiGPUStreamContext(ctx context.Context, sys *simt.System, mem gpu.MemConfig, r io.Reader, cfg StreamConfig) (*Result, error) {
	if cfg.BatchResidues < 1 {
		return nil, fmt.Errorf("pipeline: stream batch residues %d < 1", cfg.BatchResidues)
	}
	if sys == nil || len(sys.Devices) == 0 {
		return nil, fmt.Errorf("pipeline: no devices")
	}
	pl.attachProfiler(mem, sys.Devices...)

	// The journal opens (and replays) before any device work starts:
	// a fingerprint, mode, or corruption error must abort the run
	// before it spends hours recomputing.
	journal, skip, err := pl.openStreamJournal(cfg, byte(sys.Devices[0].Mode))
	if err != nil {
		return nil, err
	}
	if journal != nil {
		defer journal.Close()
	}

	workers := make([]*gpu.DeviceWorker, len(sys.Devices))
	for i, dev := range sys.Devices {
		workers[i] = gpu.NewDeviceWorker(dev, mem, pl.Opts.Workers, pl.MSV, pl.Vit)
	}

	root := pl.startSearch("multigpu-stream", nil)
	defer root.End()

	final := &Result{}
	extra := &MultiGPUStreamExtra{Launches: make([][]*simt.LaunchReport, len(sys.Devices))}
	var mu sync.Mutex

	sched := &gpu.Scheduler{
		Sys:             sys,
		QueueDepth:      cfg.QueueDepth,
		Trace:           root,
		MaxRetries:      cfg.MaxRetries,
		QuarantineAfter: cfg.QuarantineAfter,
		BatchTimeout:    cfg.BatchTimeout,
		Drain:           cfg.Drain,
	}
	// commitMerge is the single commit path for every executor (device
	// worker, host fallback, DMR rerun): claim the batch's one-shot
	// merge token, make the result durable, then merge. The journal
	// append happens strictly before the merge is acknowledged (the
	// write-ahead ordering), so a batch the scheduler counts complete
	// is always recoverable; a crash between append and merge-ack is
	// resolved on resume by replay-then-skip. devIdx < 0 marks a host
	// execution with no launch reports.
	commitMerge := func(b gpu.Batch, res *Result, devIdx int, launches []*simt.LaunchReport) (bool, error) {
		if !b.Commit() {
			return false, nil
		}
		if journal != nil {
			if err := journal.Append(encodeBatchRecord(b, res)); err != nil {
				return false, err
			}
		}
		mu.Lock()
		defer mu.Unlock()
		mergeBatch(final, res, b.Offset)
		if devIdx >= 0 {
			extra.Launches[devIdx] = append(extra.Launches[devIdx], launches...)
		}
		return true, nil
	}
	// Host re-execution: the CPU engine computes the same hits as the
	// device path, so a batch drained here merges bit-identically.
	// Shared by the all-quarantined fallback and the DMR rerun. The
	// per-sequence ctx check means a cancelled run stops promptly even
	// when the host is grinding through a fallback batch.
	hostRerun := func(b gpu.Batch) (bool, error) {
		res, err := pl.runCPUContext(ctx, b.DB, b.Trace)
		if err != nil {
			return false, err
		}
		return commitMerge(b, res, -1, nil)
	}
	if !cfg.DisableFallback {
		sched.Fallback = hostRerun
	}
	var chk *integrity.Checker
	if cfg.Verify != VerifyOff {
		chk = &integrity.Checker{MSV: pl.MSV, Vit: pl.Vit}
	}
	if cfg.Verify == VerifyDMR {
		sched.DMR = hostRerun
	}
	var replayedBatches, replayedSeqs int
	rep, err := sched.RunBatches(ctx,
		func(submit func(b gpu.Batch) error) error {
			// The producer re-chunks the stream exactly as the original
			// run did (same parser, same residue budget — enforced by the
			// fingerprint), so batch ordinals and offsets line up with
			// the journal's. Journaled batches merge from disk and are
			// never submitted; everything else executes normally.
			seqNo, offset := uint64(0), 0
			return seq.StreamFASTAResidues(r, pl.Prof.Abc, cfg.BatchResidues, func(db *seq.Database) error {
				if rec, ok := skip[seqNo]; ok {
					if rec.Offset != uint64(offset) || rec.NumSeqs != uint64(db.NumSeqs()) || rec.Residues != uint64(db.TotalResidues()) {
						return fmt.Errorf("pipeline: journal record for batch %d does not match the input stream (journal: offset %d, %d seqs, %d residues; stream: offset %d, %d seqs, %d residues): was the database file changed?",
							seqNo, rec.Offset, rec.NumSeqs, rec.Residues, offset, db.NumSeqs(), db.TotalResidues())
					}
					res, err := decodeBatchPayload(rec.Payload)
					if err != nil {
						return fmt.Errorf("pipeline: journal record for batch %d: %v", seqNo, err)
					}
					mu.Lock()
					mergeBatch(final, res, offset)
					mu.Unlock()
					delete(skip, seqNo)
					replayedBatches++
					replayedSeqs += db.NumSeqs()
					seqNo++
					offset += db.NumSeqs()
					return nil
				}
				if err := submit(gpu.Batch{Seq: int(seqNo), Offset: offset, DB: db}); err != nil {
					return err
				}
				seqNo++
				offset += db.NumSeqs()
				return nil
			})
		},
		func(devIdx int, _ *simt.Device, b gpu.Batch) error {
			res, launches, err := pl.searchBatchOnDevice(ctx, workers[devIdx], b.DB, chk, b.Trace)
			if err != nil {
				return err
			}
			// A watchdog-abandoned attempt can complete late, after the
			// batch was reassigned: the commit token inside commitMerge
			// makes the merge (and its journal record) exactly-once.
			_, err = commitMerge(b, res, devIdx, launches)
			return err
		})
	if err != nil {
		return nil, err
	}
	if len(skip) > 0 && !rep.Drained {
		return nil, fmt.Errorf("pipeline: journal holds %d batches beyond the end of the input stream: was the database file changed?", len(skip))
	}
	extra.Schedule = rep
	extra.Drained = rep.Drained
	extra.Replayed = replayedBatches
	if journal != nil {
		// Surface close/sync errors: an unsynced tail the caller was
		// told is durable would break the resume contract.
		if err := journal.Close(); err != nil {
			return nil, err
		}
		st := journal.Stats()
		extra.Checkpoint = &st
	}
	finalizeStream(final, rep.Seqs+replayedSeqs)
	final.Extra = extra
	if reg := pl.Opts.Metrics; reg.Enabled() {
		final.Record(reg)
		var all []*simt.LaunchReport
		for _, launches := range extra.Launches {
			all = append(all, launches...)
		}
		perf.Record(reg, sys.Devices[0].Spec, "stream", all...)
	}
	return final, nil
}

// searchBatchOnDevice runs the full per-batch pipeline on one bound
// device worker: MSV and P7Viterbi on the device (reusing the worker's
// profile uploads), Forward on the host. Hit indexes are batch-local;
// the caller rebases them. chk (nilable) runs the integrity guards on
// each stage's output before it is used; a guard failure surfaces as a
// wrapped *integrity.Error before any result is built, so the
// scheduler discards the attempt with the batch's merge token
// untouched. batchSpan (nilable) is the batch's span on the device
// track; stage and kernel spans nest under it. Kernel launches poll
// ctx.Done() between blocks, so cancellation interrupts a batch
// mid-kernel rather than at the next stage boundary.
func (pl *Pipeline) searchBatchOnDevice(ctx context.Context, w *gpu.DeviceWorker, db *seq.Database, chk *integrity.Checker, batchSpan *obs.Span) (*Result, []*simt.LaunchReport, error) {
	result := &Result{}
	var launches []*simt.LaunchReport

	start := time.Now()
	msvSpan, endMSV := startStage(batchSpan, "msv")
	w.S.Trace = msvSpan
	w.S.Cancel = ctx.Done()
	msvRep, err := w.MSVBatch(db)
	if err != nil {
		return nil, nil, ctxErr(ctx, err)
	}
	if chk != nil {
		if err := chk.CheckMSV(msvRep.Results); err != nil {
			return nil, nil, fmt.Errorf("pipeline: msv batch: %w", err)
		}
	}
	launches = append(launches, msvRep.Launch)
	result.MSV.Wall = time.Since(start)
	result.MSV.In = db.NumSeqs()
	result.MSV.Cells = db.TotalResidues() * int64(pl.Prof.M)

	msvBits := make(map[int]float64)
	var msvSurvivors []int
	for i, res := range msvRep.Results {
		if pl.msvPass(res) {
			msvSurvivors = append(msvSurvivors, i)
			msvBits[i] = bitsOf(res)
		}
	}
	result.MSV.Out = len(msvSurvivors)
	endMSV(&result.MSV)

	start = time.Now()
	vitSpan, endVit := startStage(batchSpan, "viterbi")
	w.S.Trace = vitSpan
	sub := subDatabase(db, msvSurvivors)
	var vitSurvivors []int
	vitBits := make(map[int]float64)
	if sub.NumSeqs() > 0 {
		vitRep, err := w.ViterbiBatch(sub)
		if err != nil {
			return nil, nil, ctxErr(ctx, err)
		}
		if chk != nil {
			if err := chk.CheckViterbi(vitRep.Results); err != nil {
				return nil, nil, fmt.Errorf("pipeline: viterbi batch: %w", err)
			}
		}
		launches = append(launches, vitRep.Launch)
		for j, res := range vitRep.Results {
			if pl.vitPass(res) {
				idx := msvSurvivors[j]
				vitSurvivors = append(vitSurvivors, idx)
				vitBits[idx] = bitsOf(res)
			}
		}
	}
	result.Viterbi.Wall = time.Since(start)
	result.Viterbi.In = len(msvSurvivors)
	result.Viterbi.Cells = sub.TotalResidues() * int64(pl.Prof.M)
	result.Viterbi.Out = len(vitSurvivors)
	endVit(&result.Viterbi)

	w.S.Trace = nil
	if err := pl.finishForward(ctx, db, vitSurvivors, msvBits, vitBits, result, batchSpan); err != nil {
		return nil, nil, err
	}
	if chk != nil {
		// The only guard spanning stages: a shared-memory flip that
		// produced a wrong but on-grid filter score can still betray
		// itself by breaking MSV <= Viterbi <= Forward on a hit.
		for _, h := range result.Hits {
			if err := chk.CheckHit(h.Index, h.MSVBits, h.VitBits, h.FwdBits); err != nil {
				return nil, nil, fmt.Errorf("pipeline: hit scores: %w", err)
			}
		}
	}
	return result, launches, nil
}

// mergeBatch folds one batch's result into the stream-wide result,
// rebasing hit indexes by the batch's global offset.
func mergeBatch(final, res *Result, offset int) {
	mergeStage(&final.MSV, res.MSV)
	mergeStage(&final.Viterbi, res.Viterbi)
	mergeStage(&final.Forward, res.Forward)
	for _, h := range res.Hits {
		h.Index += offset
		final.Hits = append(final.Hits, h)
	}
}

// finalizeStream rescales E-values to the full stream's sequence count
// (they were computed per batch) and applies the deterministic final
// sort, so a streamed run reports exactly what the whole-database run
// reports regardless of batching or device assignment.
func finalizeStream(final *Result, totalSeqs int) {
	for i := range final.Hits {
		final.Hits[i].EValue = stats.EValue(final.Hits[i].PValue, totalSeqs)
	}
	sort.Slice(final.Hits, func(i, j int) bool {
		if final.Hits[i].EValue != final.Hits[j].EValue {
			return final.Hits[i].EValue < final.Hits[j].EValue
		}
		return final.Hits[i].Index < final.Hits[j].Index
	})
}

func mergeStage(dst *StageStats, src StageStats) {
	dst.In += src.In
	dst.Out += src.Out
	dst.Cells += src.Cells
	dst.Wall += src.Wall
}
