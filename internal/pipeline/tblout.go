package pipeline

import (
	"fmt"
	"io"
)

// WriteTblout emits the HMMER-style space-separated per-target table
// for a search result. Every consumer of machine-readable hits — the
// hmmsearch -tblout flag, hmmserved's tbl response format — goes
// through this one formatter, so "byte-identical hit tables" is a
// property of the Result alone, not of which front end rendered it.
func WriteTblout(w io.Writer, queryName string, res *Result) error {
	if _, err := fmt.Fprintf(w, "# target              query                 e-value   fwd-bits  vit-bits  msv-bits\n"); err != nil {
		return err
	}
	for _, h := range res.Hits {
		if _, err := fmt.Fprintf(w, "%-20s %-20s %9.3g %9.2f %9.2f %9.2f\n",
			h.Name, queryName, h.EValue, h.FwdBits, h.VitBits, h.MSVBits); err != nil {
			return err
		}
	}
	return nil
}
