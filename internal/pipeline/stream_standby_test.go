package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"hmmer3gpu/internal/checkpoint"
	"hmmer3gpu/internal/cluster"
)

// chanLeadership grants the lease when the returned trigger is called
// — the deterministic stand-in for the flock freeing on primary death.
func chanLeadership() (cluster.AcquireLeadership, func()) {
	ch := make(chan struct{})
	acquire := func(ctx context.Context) (func(), error) {
		select {
		case <-ch:
			return func() {}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return acquire, func() { close(ch) }
}

// TestStandbyTakeoverMatchesSingleNode is the in-process end-to-end
// failover: the primary coordinator is killed mid-run by injection,
// the hot standby — tailing the journal and holding warm connections
// to the same three workers — takes over at epoch 2 and finishes the
// stream. The merged result must be bit-identical to the single-node
// run, with no batch merged twice.
func TestStandbyTakeoverMatchesSingleNode(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := StreamConfig{BatchResidues: batchResidues,
		Checkpoint: &CheckpointConfig{Path: path}}

	// Persistent worker servers: the epoch fence lives in the server,
	// so primary and standby must reach the same instances.
	servers := make([]*cluster.WorkerServer, 3)
	specs := make([]cluster.WorkerSpec, 3)
	for i := range servers {
		servers[i] = pl.NewWorkerServer(cfg, 0, fmt.Sprintf("w%d", i), 1, pl.ClusterExecCPU())
		specs[i] = InProcessWorkerSpec(servers[i])
	}

	// The standby starts first (as deployed: it must be warm before the
	// primary can die) and parks on the leadership lease.
	acquire, grantLease := chanLeadership()
	type outcome struct {
		res *Result
		err error
	}
	standbyDone := make(chan outcome, 1)
	go func() {
		res, err := pl.RunStandbyClusterStream(bytes.NewReader(fasta),
			cfg, ClusterConfig{Workers: specs},
			StandbyClusterConfig{Acquire: acquire, PingEvery: 10 * time.Millisecond,
				TailPoll: 5 * time.Millisecond})
		standbyDone <- outcome{res, err}
	}()

	// The primary dies after its third batch assignment.
	inject, err := cluster.ParseFaults("kill-coordinator@3", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = pl.RunClusterStream(bytes.NewReader(fasta), cfg,
		ClusterConfig{Workers: specs, Inject: inject})
	if !errors.Is(err, cluster.ErrInjectedCoordinatorKill) {
		t.Fatalf("primary returned %v, want ErrInjectedCoordinatorKill", err)
	}

	// The dead primary's flock frees; the standby takes over.
	grantLease()
	var got outcome
	select {
	case got = <-standbyDone:
	case <-time.After(30 * time.Second):
		t.Fatal("standby never finished the takeover run")
	}
	if got.err != nil {
		t.Fatalf("standby run failed: %v", got.err)
	}
	sameHits(t, "standby takeover", whole, got.res)

	extra := got.res.Extra.(*ClusterStreamExtra)
	if extra.Cluster.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", extra.Cluster.Failovers)
	}
	if extra.Cluster.Epoch != 2 {
		t.Errorf("takeover epoch = %d, want 2", extra.Cluster.Epoch)
	}
	if extra.Cluster.StandbyTailed != extra.Replayed {
		t.Errorf("StandbyTailed = %d but Replayed = %d: the takeover merged batches it never tailed",
			extra.Cluster.StandbyTailed, extra.Replayed)
	}
	for _, ws := range servers {
		if gotE := ws.MaxEpoch(); gotE != 2 {
			t.Errorf("worker %s MaxEpoch = %d, want 2", ws.Name, gotE)
		}
	}

	// Journal replay audit: the journal both coordinators wrote must
	// hold exactly one record per batch (Resume's duplicate check plus
	// the replay covering the whole stream) and replay to the same
	// bytes with zero recomputation.
	res, err := pl.RunClusterStream(bytes.NewReader(fasta),
		StreamConfig{BatchResidues: batchResidues,
			Checkpoint: &CheckpointConfig{Path: path, Resume: true}},
		ClusterConfig{Workers: specs})
	if err != nil {
		t.Fatalf("post-failover journal replay: %v", err)
	}
	sameHits(t, "post-failover replay", whole, res)
	replay := res.Extra.(*ClusterStreamExtra)
	if replay.Cluster.Batches != 0 {
		t.Errorf("replay dispatched %d batches, want 0 (journal must cover the whole stream)", replay.Cluster.Batches)
	}
}

// A standby that wins leadership before any journal exists refuses to
// run: its flag promised a takeover, not a fresh primary.
func TestStandbyRefusesWithoutJournal(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "never-created.ckpt")
	cfg := StreamConfig{BatchResidues: batchResidues,
		Checkpoint: &CheckpointConfig{Path: path}}
	acquire, grant := chanLeadership()
	grant()
	_, err := pl.RunStandbyClusterStream(bytes.NewReader(fasta), cfg,
		ClusterConfig{Workers: cpuWorkers(pl, cfg, 1)},
		StandbyClusterConfig{Acquire: acquire, TailPoll: time.Millisecond})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("no journal")) {
		t.Fatalf("err = %v, want a no-journal refusal", err)
	}
}

// A standby requires the checkpoint journal: it is the handoff medium.
func TestStandbyRequiresCheckpoint(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	cfg := StreamConfig{BatchResidues: batchResidues}
	_, err := pl.RunStandbyClusterStream(bytes.NewReader(fasta), cfg,
		ClusterConfig{Workers: cpuWorkers(pl, cfg, 1)}, StandbyClusterConfig{})
	if err == nil {
		t.Fatal("standby ran without a checkpoint journal")
	}
}

// The takeover settles a torn journal tail exactly as a crash-resume
// would: the primary dies mid-append (checkpoint crash injection), the
// standby truncates the torn half-record and recomputes that batch.
func TestStandbyTakeoverSettlesTornTail(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := StreamConfig{BatchResidues: batchResidues,
		Checkpoint: &CheckpointConfig{Path: path}}
	specs := cpuWorkers(pl, cfg, 2)

	acquire, grantLease := chanLeadership()
	type outcome struct {
		res *Result
		err error
	}
	standbyDone := make(chan outcome, 1)
	go func() {
		res, err := pl.RunStandbyClusterStream(bytes.NewReader(fasta),
			cfg, ClusterConfig{Workers: specs},
			StandbyClusterConfig{Acquire: acquire, PingEvery: 10 * time.Millisecond,
				TailPoll: 5 * time.Millisecond})
		standbyDone <- outcome{res, err}
	}()

	// The primary crashes inside its second journal append, leaving a
	// torn half-record on disk.
	crashCfg := cfg
	crashCfg.Checkpoint = &CheckpointConfig{Path: path,
		Crash: checkpoint.CrashAfter(1, checkpoint.WindowAfterAppend)}
	_, err := pl.RunClusterStream(bytes.NewReader(fasta), crashCfg,
		ClusterConfig{Workers: specs})
	if !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("primary returned %v, want ErrInjectedCrash", err)
	}

	grantLease()
	var got outcome
	select {
	case got = <-standbyDone:
	case <-time.After(30 * time.Second):
		t.Fatal("standby never finished the takeover run")
	}
	if got.err != nil {
		t.Fatalf("standby run failed: %v", got.err)
	}
	sameHits(t, "torn-tail takeover", whole, got.res)
	extra := got.res.Extra.(*ClusterStreamExtra)
	if extra.Checkpoint == nil || extra.Checkpoint.DroppedTail != 1 {
		t.Errorf("checkpoint stats = %+v, want DroppedTail 1 (the torn half-record)", extra.Checkpoint)
	}
}
