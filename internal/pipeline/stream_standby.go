package pipeline

// Hot-standby cluster streaming: the failover half of DESIGN §2j. A
// standby process tails the primary's checkpoint journal (shared file)
// and holds warm connections to the worker roster; when the primary
// dies — observed as the journal's flock lease freeing — the standby
// settles the journal tail, promotes the warm connections, and
// finishes the stream as a coordinator at a higher fencing epoch. The
// (seq, epoch) fence plus the workers' epoch memory guarantee no batch
// the primary committed is ever re-merged, and a primary that was
// merely paused cannot commit past the takeover.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"hmmer3gpu/internal/checkpoint"
	"hmmer3gpu/internal/cluster"
)

// StandbyClusterConfig shapes the standby side of a failover pair.
type StandbyClusterConfig struct {
	// Acquire blocks until this process holds the cluster leadership
	// lease. Nil uses an exclusive flock on "<journal>.lock"
	// (cluster.AcquireFileLeadership) — the kernel frees it the instant
	// the primary dies, however it dies. Tests substitute
	// channel-backed implementations.
	Acquire cluster.AcquireLeadership
	// Epoch is the fencing epoch the takeover coordinator runs at; it
	// must exceed the primary's. Zero means 2 (primary default + 1).
	Epoch uint64
	// PingEvery is the warm-connection keepalive cadence
	// (cluster.StandbyConfig.PingEvery).
	PingEvery time.Duration
	// TailPoll is how often the journal is re-polled while tailing and
	// how often an absent journal file is retried. Zero means
	// cluster.DefaultLeadershipPoll.
	TailPoll time.Duration
}

func (c *StandbyClusterConfig) epoch() uint64 {
	if c.Epoch > 0 {
		return c.Epoch
	}
	return 2
}

func (c *StandbyClusterConfig) tailPoll() time.Duration {
	if c.TailPoll > 0 {
		return c.TailPoll
	}
	return cluster.DefaultLeadershipPoll
}

// RunStandbyClusterStream is RunStandbyClusterStreamContext without
// cancellation.
func (pl *Pipeline) RunStandbyClusterStream(r io.Reader, cfg StreamConfig, ccfg ClusterConfig, ha StandbyClusterConfig) (*Result, error) {
	return pl.RunStandbyClusterStreamContext(context.Background(), r, cfg, ccfg, ha)
}

// RunStandbyClusterStreamContext runs the hot-standby protocol to
// completion: warm the worker roster, tail the primary's journal,
// block on the leadership lease, then take over and finish the
// stream. The returned Result is byte-identical to what the primary
// would have produced had it survived — the standby re-chunks the same
// stream under the same config fingerprint, merges the primary's
// journaled batches from disk, and computes only the remainder.
//
// cfg.Checkpoint.Path must name the primary's journal (shared
// filesystem); the standby keeps journaling to it after takeover, so a
// second failover (or a crash-resume) layers on the same file.
func (pl *Pipeline) RunStandbyClusterStreamContext(ctx context.Context, r io.Reader, cfg StreamConfig, ccfg ClusterConfig, ha StandbyClusterConfig) (*Result, error) {
	if err := pl.vetClusterRun(cfg, ccfg); err != nil {
		return nil, err
	}
	ck := cfg.Checkpoint
	if ck == nil || ck.Path == "" {
		return nil, fmt.Errorf("pipeline: standby mode requires a checkpoint journal (the primary's commit log is the handoff medium)")
	}
	if ccfg.Epoch != 0 && ccfg.Epoch >= ha.epoch() {
		return nil, fmt.Errorf("pipeline: standby epoch %d must exceed the primary's %d", ha.epoch(), ccfg.Epoch)
	}
	acquire := ha.Acquire
	if acquire == nil {
		acquire = cluster.AcquireFileLeadership(ck.Path+".lock", ha.tailPoll())
	}
	fp := pl.fingerprint(cfg)
	logf := ccfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Warm connections first: they are useful the moment the primary
	// dies, and the standby handshake also front-loads fingerprint
	// validation against every reachable worker.
	sb := cluster.NewStandby(cluster.StandbyConfig{
		Workers:     ccfg.Workers,
		Fingerprint: fp,
		Mode:        ccfg.Mode,
		PingEvery:   ha.PingEvery,
		BackoffBase: ccfg.BackoffBase,
		BackoffCap:  ccfg.BackoffCap,
		Logf:        ccfg.Logf,
	})
	sb.Start(ctx)
	defer sb.Close() // no-op after Promote

	// The leadership race runs while we tail: the lease frees when the
	// primary exits (cleanly or not), which is the takeover signal.
	type lease struct {
		release func()
		err     error
	}
	leaseCh := make(chan lease, 1)
	go func() {
		release, err := acquire(ctx)
		leaseCh <- lease{release, err}
	}()

	// Wait for the primary's journal to exist with a complete header,
	// then follow it. Header-level config errors are hard stops — this
	// standby was launched against the wrong run; an absent or
	// still-forming file is retried.
	var fo *checkpoint.Follower
	var got lease
	haveLease := false
	for fo == nil {
		f, err := checkpoint.OpenFollower(ck.Path, fp, checkpoint.FollowerOptions{Mode: ccfg.Mode})
		if err == nil {
			fo = f
			break
		}
		if hardFollowerError(err) {
			return nil, err
		}
		select {
		case got = <-leaseCh:
			if got.err != nil {
				return nil, got.err
			}
			// Leadership before the journal exists: the primary died (or
			// never started) pre-header. There is nothing to take over;
			// refuse rather than silently running a fresh primary under a
			// flag that promised a takeover.
			got.release()
			return nil, fmt.Errorf("pipeline: standby acquired leadership but no journal exists at %s: primary never started a run", ck.Path)
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(ha.tailPoll()):
		}
	}
	defer fo.Close() // no-op after TakeOver
	logf("standby: following journal %s", ck.Path)

	// Tail until the lease is ours. Every complete, CRC-valid record
	// the primary commits lands in skip — on takeover those batches
	// merge from disk, never re-execute.
	skip := make(map[uint64]checkpoint.Record)
	tailed := 0
	absorb := func(recs []checkpoint.Record) error {
		for _, rec := range recs {
			if _, dup := skip[rec.Seq]; dup {
				return fmt.Errorf("pipeline: journal holds two records for batch %d: refusing to take over", rec.Seq)
			}
			skip[rec.Seq] = rec
			tailed++
		}
		return nil
	}
	for !haveLease {
		recs, err := fo.Poll()
		if err != nil {
			return nil, err
		}
		if err := absorb(recs); err != nil {
			return nil, err
		}
		select {
		case got = <-leaseCh:
			if got.err != nil {
				return nil, got.err
			}
			haveLease = true
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(ha.tailPoll()):
		}
	}
	defer got.release() // hold the lease for the whole takeover run

	// Takeover: settle the tail (the primary is dead; a torn last
	// record is its crash artefact, truncated exactly as Resume would),
	// absorb the settled records, and continue appending to the same
	// journal.
	journal, tail, err := fo.TakeOver(checkpoint.Options{SyncEvery: ck.SyncEvery, Crash: ck.Crash})
	if err != nil {
		return nil, err
	}
	if err := absorb(tail); err != nil {
		journal.Close()
		return nil, err
	}
	logf("standby: taking over: %d batches tailed from the primary, promoting %d warm workers at epoch %d",
		tailed, sb.Warm(), ha.epoch())

	ccfg.Workers = sb.Promote()
	ccfg.Epoch = ha.epoch()
	return pl.runClusterCore(ctx, r, cfg, ccfg, journal, skip,
		haState{failovers: 1, standbyTailed: tailed})
}

// hardFollowerError reports whether an OpenFollower failure is a
// config-level mismatch that retrying cannot fix.
func hardFollowerError(err error) bool {
	var fpe *checkpoint.FingerprintError
	var mme *checkpoint.ModeMismatchError
	var ve *checkpoint.VersionError
	var ce *checkpoint.CorruptError
	return errors.As(err, &fpe) || errors.As(err, &mme) ||
		errors.As(err, &ve) || errors.As(err, &ce)
}
