package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/kernprof"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/stats"
	"hmmer3gpu/internal/workload"
)

// tracedStreamRun executes one streamed multi-device search with
// tracing and metrics on, returning both sinks.
func tracedStreamRun(t *testing.T, devices int) (*obs.Tracer, *obs.Registry) {
	t.Helper()
	h, err := workload.Model("obs", 80, abc, 31)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.SwissprotLike(0.00012, 32)
	spec.HomologFrac = 0.05
	db, err := workload.Generate(spec, h, abc)
	if err != nil {
		t.Fatal(err)
	}
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, db, abc); err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: 7, TailMass: 0.04}
	opts.Trace = obs.New()
	opts.Metrics = obs.NewRegistry()
	pl, err := New(h, int(db.MeanLen()), opts)
	if err != nil {
		t.Fatal(err)
	}
	sys := simt.NewSystem(simt.GTX580(), devices)
	_, err = pl.RunMultiGPUStream(sys, gpu.MemAuto, &fasta,
		StreamConfig{BatchResidues: db.TotalResidues() / 6})
	if err != nil {
		t.Fatal(err)
	}
	return opts.Trace, opts.Metrics
}

// TestStreamTraceNestsSearchBatchStageKernel is the acceptance
// criterion: one streamed multi-GPU run must yield a span tree where
// every kernel span sits under a stage span, under a batch span on a
// device track, under the root search span.
func TestStreamTraceNestsSearchBatchStageKernel(t *testing.T) {
	tr, _ := tracedStreamRun(t, 2)
	spans := tr.Spans()
	byID := map[uint64]obs.SpanRecord{}
	for _, s := range spans {
		byID[s.ID] = s
	}

	var kernels, batches int
	deviceTracks := map[string]bool{}
	for _, s := range spans {
		if strings.HasPrefix(s.Name, "batch ") {
			batches++
			deviceTracks[s.Track] = true
			if parent := byID[s.Parent]; parent.Name != "search" {
				t.Errorf("batch span %q parented under %q, want search", s.Name, parent.Name)
			}
		}
		if !strings.HasPrefix(s.Name, "kernel:") {
			continue
		}
		kernels++
		stage := byID[s.Parent]
		if !strings.HasPrefix(stage.Name, "stage:") {
			t.Fatalf("kernel %q parented under %q, want a stage span", s.Name, stage.Name)
		}
		batch := byID[stage.Parent]
		if !strings.HasPrefix(batch.Name, "batch ") {
			t.Fatalf("stage %q parented under %q, want a batch span", stage.Name, batch.Name)
		}
		root := byID[batch.Parent]
		if root.Name != "search" || root.Parent != 0 {
			t.Fatalf("batch %q parented under %q, want the root search span", batch.Name, root.Name)
		}
		if !strings.HasPrefix(s.Track, "device") || s.Track != batch.Track {
			t.Errorf("kernel %q on track %q, batch on %q; want a shared device track", s.Name, s.Track, batch.Track)
		}
	}
	if kernels == 0 {
		t.Fatal("no kernel spans recorded")
	}
	if batches < 2 {
		t.Fatalf("got %d batch spans, want several", batches)
	}
	if len(deviceTracks) != 2 {
		t.Errorf("batch spans on tracks %v, want both devices", deviceTracks)
	}

	// The Chrome export of this real run must pass the validator.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateChromeTrace(buf.Bytes()); err != nil || n != len(spans) {
		t.Fatalf("chrome export of live run: %d spans, err %v (want %d, nil)", n, err, len(spans))
	}
	var jl bytes.Buffer
	if err := tr.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateJSONL(jl.Bytes()); err != nil || n != len(spans) {
		t.Fatalf("jsonl export of live run: %d spans, err %v (want %d, nil)", n, err, len(spans))
	}
}

// TestStreamMetricsMergeThreeSubsystems: the second half of the
// acceptance criterion — one run's registry must carry counters from
// the simulator, the pipeline, and the scheduler (plus the perf
// model), and survive its own exposition round trip.
func TestStreamMetricsMergeThreeSubsystems(t *testing.T) {
	_, reg := tracedStreamRun(t, 2)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("live metrics fail exposition parse: %v\n%s", err, buf.String())
	}

	subsystems := map[string]bool{}
	for name := range parsed {
		for _, prefix := range []string{"hmmer_simt_", "hmmer_pipeline_", "hmmer_sched_", "hmmer_perf_"} {
			if strings.HasPrefix(name, prefix) {
				subsystems[prefix] = true
			}
		}
	}
	for _, prefix := range []string{"hmmer_simt_", "hmmer_pipeline_", "hmmer_sched_", "hmmer_perf_"} {
		if !subsystems[prefix] {
			t.Errorf("metrics table missing subsystem %s", prefix)
		}
	}

	// Spot-check load-bearing series.
	if v := parsed["hmmer_simt_warps_executed_total"]; v <= 0 {
		t.Errorf("warps executed = %g, want > 0", v)
	}
	if v := parsed[`hmmer_pipeline_stage_in_total{stage="msv"}`]; v <= 0 {
		t.Errorf("msv stage in = %g, want > 0", v)
	}
	if v := parsed["hmmer_sched_batches_total"]; v < 2 {
		t.Errorf("scheduled batches = %g, want >= 2", v)
	}
	if _, ok := parsed[`hmmer_sched_device_queue_wait_seconds_total{device="0"}`]; !ok {
		t.Error("missing per-device queue-wait series")
	}
	if util := parsed["hmmer_simt_lane_utilization"]; util <= 0 || util > 1 {
		t.Errorf("lane utilization = %g, want in (0, 1]", util)
	}
}

// TestUntracedRunSharesResults: tracing must be observability only —
// the same run with sinks attached returns identical hits, and an
// untraced pipeline records nothing.
func TestUntracedRunStaysCold(t *testing.T) {
	pl := testPipeline(t, 40, 120)
	db := seq.NewDatabase("empty")
	res, err := pl.RunCPU(db)
	if err != nil {
		t.Fatal(err)
	}
	if res.MSV.PassFraction() != 0 {
		t.Errorf("zero-input pass fraction = %g, want 0", res.MSV.PassFraction())
	}
	if got := res.MSV.Summary(); !strings.Contains(got, "-") {
		t.Errorf("zero-input stage summary %q should render '-' for the undefined pass fraction", got)
	}
	if pl.Opts.Trace.Enabled() || pl.Opts.Metrics.Enabled() {
		t.Fatal("default options unexpectedly enable observability")
	}
}

// TestPipelineAttachesProfiler: a run with Options.Profiler set must
// collect one record per kernel launch, tagged with the query's model
// size and memory configuration.
func TestPipelineAttachesProfiler(t *testing.T) {
	h, err := workload.Model("prof", 64, abc, 11)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.SwissprotLike(0.0001, 24)
	spec.HomologFrac = 0.05
	db, err := workload.Generate(spec, h, abc)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Calibration = stats.CalibrateOptions{N: 64, L: 100, Seed: 9, TailMass: 0.04}
	opts.SkipForward = true
	opts.Profiler = kernprof.NewCollector()
	pl, err := New(h, int(db.MeanLen()), opts)
	if err != nil {
		t.Fatal(err)
	}
	dev := simt.NewDevice(simt.TeslaK40())
	if _, err := pl.RunGPU(dev, gpu.MemShared, db); err != nil {
		t.Fatal(err)
	}
	prof := opts.Profiler.Profile()
	if len(prof.Launches) == 0 {
		t.Fatal("profiler collected no launches")
	}
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	kernels := map[string]bool{}
	for _, l := range prof.Launches {
		kernels[l.Kernel] = true
		if l.Labels["m"] != "64" || l.Labels["mem"] != "shared" {
			t.Errorf("launch %s labels = %v, want m=64 mem=shared", l.Kernel, l.Labels)
		}
	}
	if !kernels["msv"] || !kernels["p7viterbi"] {
		t.Errorf("profiled kernels %v, want msv and p7viterbi", kernels)
	}
}
