// Package pipeline implements the HMMER 3.0 hmmsearch acceleration
// pipeline of Figure 1: the MSV filter screens every target sequence,
// survivors pass to the P7Viterbi filter, and only the small remainder
// reaches the full-precision Forward scoring stage. Stage thresholds
// are P-values over calibrated score distributions (Gumbel for the
// optimal-alignment filters, exponential tail for Forward), following
// the lambda = log 2 conjecture that lets Viterbi-style scores
// pre-screen for Forward scores.
//
// Documented simplifications relative to HMMER 3.0 (applied to every
// engine, so cross-engine comparisons remain exact): no bias
// composition filter between MSV and Viterbi, no domain
// post-processing after Forward, and the length model is configured
// once for the database's mean sequence length rather than per target
// (calibration uses the same length, keeping P-values consistent).
package pipeline

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/kernprof"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/refimpl"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/stats"
)

// Thresholds are the stage P-value cutoffs; Default matches HMMER3's
// --F1/--F2/--F3 defaults.
type Thresholds struct {
	MSV     float64
	Viterbi float64
	Forward float64
}

// DefaultThresholds returns HMMER3's defaults: 0.02 / 1e-3 / 1e-5.
// With these, ~2% of random sequences survive MSV and ~0.1% survive
// Viterbi — the fractions of the paper's Figure 1.
func DefaultThresholds() Thresholds {
	return Thresholds{MSV: 0.02, Viterbi: 1e-3, Forward: 1e-5}
}

// Options configures a pipeline.
type Options struct {
	Thresholds Thresholds
	// Workers bounds host-side parallelism (0 = GOMAXPROCS).
	Workers int
	// Calibration controls the random-sequence score calibration.
	Calibration stats.CalibrateOptions
	// SkipForward disables the Forward stage (and its calibration);
	// the benchmark harness uses this because the paper's speedup
	// figures cover the MSV and Viterbi stages only.
	SkipForward bool
	// GPUForward runs the Forward stage on the device too (the §VI
	// heterogeneous-acceleration extension) instead of the host;
	// applies to RunGPU only. Scores are float32 on the device, so
	// P-values can differ in the last digits from the CPU engine.
	GPUForward bool
	// ComputeAlignments attaches Viterbi-traceback domain alignments
	// and posterior envelopes to each hit (O(L*M) memory per hit;
	// skipped for hits beyond AlignmentCellCap DP cells).
	ComputeAlignments bool
	// UseNull2 applies HMMER's biased-composition score correction to
	// Forward scores before thresholding (posterior decode per
	// survivor; subject to the same AlignmentCellCap).
	UseNull2 bool
	// AlignmentCellCap bounds the alignment matrices; 0 means the
	// 10M-cell default.
	AlignmentCellCap int64
	// Trace receives a span per search, stage, batch, and kernel
	// launch (nil disables tracing at ~zero cost).
	Trace *obs.Tracer
	// Metrics receives the run's merged counters — stage stats,
	// simulator kernel counters, scheduler utilization (nil disables).
	Metrics *obs.Registry
	// Profiler, when non-nil, is attached to every device the GPU
	// engines run on and collects one kernel-grained profile per launch
	// (see internal/kernprof); launches are tagged with the query's
	// model size ("m") and memory configuration ("mem").
	Profiler *kernprof.Collector
}

// DefaultOptions returns standard settings.
func DefaultOptions() Options {
	return Options{
		Thresholds:  DefaultThresholds(),
		Calibration: stats.DefaultCalibration(),
	}
}

// Hit is one sequence that survived all three stages.
type Hit struct {
	// Index is the sequence's database index; Name its identifier.
	Index int
	Name  string
	// MSVBits, VitBits and FwdBits are the stage bit scores.
	MSVBits float64
	VitBits float64
	FwdBits float64
	// PValue and EValue are derived from the Forward score.
	PValue float64
	EValue float64
	// Domains holds the optimal-alignment rendering per domain and
	// Envelopes the posterior-decoded domain extents (only when
	// Options.ComputeAlignments is set).
	Domains   []refimpl.DomainAlignment
	Envelopes []refimpl.Envelope
}

// StageStats records one stage's filtering behaviour plus its modelled
// baseline cost (used for the Figure 1 time split).
type StageStats struct {
	// In and Out are the sequence counts entering and surviving.
	In, Out int
	// Cells is the number of DP cells the stage processed.
	Cells int64
	// Wall is the measured wall-clock time of this stage in this run.
	Wall time.Duration
}

// PassFraction returns Out/In. A stage that saw no input returns 0,
// never NaN — report strings additionally render the undefined ratio
// as "-" via Summary.
func (s StageStats) PassFraction() float64 {
	if s.In == 0 {
		return 0
	}
	return float64(s.Out) / float64(s.In)
}

// Result is the outcome of one database search.
type Result struct {
	// Hits are the surviving sequences, best E-value first.
	Hits []Hit
	// MSV, Viterbi and Forward are the per-stage statistics.
	MSV, Viterbi, Forward StageStats
	// Extra carries engine-specific reports (e.g. GPU launch reports);
	// see the engine constructors.
	Extra any
}

// Pipeline is a configured, calibrated search for one query model.
type Pipeline struct {
	Prof *profile.Profile
	MSV  *profile.MSVProfile
	Vit  *profile.VitProfile

	// consensus holds the query's consensus residues for alignment
	// rendering.
	consensus []byte

	MSVGumbel stats.Gumbel
	VitGumbel stats.Gumbel
	FwdExp    stats.Exponential

	Opts Options
}

// New configures and calibrates a pipeline for query model h against
// targets of typical length targetLen.
func New(h *hmm.Plan7, targetLen int, opts Options) (*Pipeline, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if targetLen < 1 {
		return nil, fmt.Errorf("pipeline: target length %d < 1", targetLen)
	}
	p := profile.Config(h)
	p.SetLength(targetLen)
	pl := &Pipeline{
		Prof:      p,
		MSV:       profile.NewMSVProfile(p),
		Vit:       profile.NewVitProfile(p),
		consensus: h.Consensus(),
		Opts:      opts,
	}
	if err := pl.calibrate(); err != nil {
		return nil, err
	}
	return pl, nil
}

// calibrate fits the three score distributions by random-sequence
// simulation using the same scorers the pipeline will apply.
func (pl *Pipeline) calibrate() error {
	bg := pl.Prof.Abc.Backgrounds()
	opts := pl.Opts.Calibration
	var err error

	// The calibration length must match the scoring configuration; we
	// deliberately calibrate at the pipeline's configured length
	// rather than HMMER's fixed L=100 (see the package comment).
	opts.L = pl.Prof.L

	msvEng := cpu.NewMSVEngine(pl.MSV)
	pl.MSVGumbel, err = stats.CalibrateGumbel(func(dsq []byte) float64 {
		return stats.BitsFromNats(msvEng.Filter(dsq).Score)
	}, bg, opts)
	if err != nil {
		return fmt.Errorf("pipeline: MSV calibration: %w", err)
	}
	opts.Seed++
	vitEng := cpu.NewVitEngine(pl.Vit)
	pl.VitGumbel, err = stats.CalibrateGumbel(func(dsq []byte) float64 {
		return stats.BitsFromNats(vitEng.Filter(dsq).Score)
	}, bg, opts)
	if err != nil {
		return fmt.Errorf("pipeline: Viterbi calibration: %w", err)
	}
	if pl.Opts.SkipForward {
		return nil
	}
	opts.Seed++
	pl.FwdExp, err = stats.CalibrateExponential(func(dsq []byte) float64 {
		return stats.BitsFromNats(refimpl.Forward(pl.Prof, dsq))
	}, bg, opts)
	if err != nil {
		return fmt.Errorf("pipeline: Forward calibration: %w", err)
	}
	return nil
}

// msvPass reports whether an MSV filter result survives the threshold.
func (pl *Pipeline) msvPass(res cpu.FilterResult) bool {
	if res.Overflowed {
		return true
	}
	return pl.MSVGumbel.Surv(stats.BitsFromNats(res.Score)) <= pl.Opts.Thresholds.MSV
}

// vitPass reports whether a Viterbi filter result survives.
func (pl *Pipeline) vitPass(res cpu.FilterResult) bool {
	if res.Overflowed {
		return true
	}
	return pl.VitGumbel.Surv(stats.BitsFromNats(res.Score)) <= pl.Opts.Thresholds.Viterbi
}

// finishForward runs the Forward stage over the Viterbi survivors and
// assembles the final result. msvRes and vitRes are indexed like the
// corresponding id slices. parent (nilable) is the span the forward
// stage span nests under. ctx is checked before every survivor — the
// Forward stage is the pipeline's most expensive per-sequence work, so
// this is where a deadline lands mid-stage.
func (pl *Pipeline) finishForward(ctx context.Context, db *seq.Database, survivors []int,
	msvBits, vitBits map[int]float64, result *Result, parent *obs.Span) error {

	start := time.Now()
	result.Forward.In = len(survivors)
	if pl.Opts.SkipForward {
		return nil
	}
	_, endStage := startStage(parent, "forward")
	defer func() { endStage(&result.Forward) }()
	for _, idx := range survivors {
		if err := ctx.Err(); err != nil {
			return err
		}
		dsq := db.Seqs[idx].Residues
		result.Forward.Cells += int64(len(dsq)) * int64(pl.Prof.M)
		fwdNats := refimpl.Forward(pl.Prof, dsq)
		po := pl.maybeDecode(dsq)
		if pl.Opts.UseNull2 && po != nil {
			fwdNats -= refimpl.Null2Correction(pl.Prof, dsq, po)
		}
		fwdBits := stats.BitsFromNats(fwdNats)
		pv := pl.FwdExp.Surv(fwdBits)
		if pv > pl.Opts.Thresholds.Forward {
			continue
		}
		hit := Hit{
			Index:   idx,
			Name:    db.Seqs[idx].Name,
			MSVBits: msvBits[idx],
			VitBits: vitBits[idx],
			FwdBits: fwdBits,
			PValue:  pv,
			EValue:  stats.EValue(pv, db.NumSeqs()),
		}
		pl.annotate(&hit, dsq, po)
		result.Hits = append(result.Hits, hit)
	}
	result.Forward.Out = len(result.Hits)
	result.Forward.Wall = time.Since(start)
	sort.Slice(result.Hits, func(i, j int) bool {
		if result.Hits[i].EValue != result.Hits[j].EValue {
			return result.Hits[i].EValue < result.Hits[j].EValue
		}
		return result.Hits[i].Index < result.Hits[j].Index
	})
	return nil
}

// cellCap returns the alignment/decoding matrix budget.
func (pl *Pipeline) cellCap() int64 {
	if pl.Opts.AlignmentCellCap > 0 {
		return pl.Opts.AlignmentCellCap
	}
	return 10_000_000
}

// maybeDecode runs posterior decoding when any consumer (null2 or
// alignment annotation) needs it and the matrices fit the cap.
func (pl *Pipeline) maybeDecode(dsq []byte) *refimpl.Posterior {
	if !pl.Opts.UseNull2 && !pl.Opts.ComputeAlignments {
		return nil
	}
	if int64(len(dsq))*int64(pl.Prof.M) > pl.cellCap() {
		return nil
	}
	po, err := refimpl.PosteriorDecode(pl.Prof, dsq)
	if err != nil {
		return nil
	}
	return po
}

// annotate attaches domain alignments and posterior envelopes to a
// hit when alignment output is enabled and the matrices fit the cap.
func (pl *Pipeline) annotate(hit *Hit, dsq []byte, po *refimpl.Posterior) {
	if !pl.Opts.ComputeAlignments {
		return
	}
	if int64(len(dsq))*int64(pl.Prof.M) > pl.cellCap() {
		return
	}
	if tr, err := refimpl.ViterbiTrace(pl.Prof, dsq); err == nil {
		hit.Domains = tr.Alignments(pl.Prof, dsq, pl.consensus, pl.Prof.Abc)
	}
	if po != nil {
		hit.Envelopes = po.Envelopes(0.5)
	}
}

// bitsOf converts a filter result to a bit score for reporting
// (+Inf overflow becomes a large sentinel).
func bitsOf(res cpu.FilterResult) float64 {
	if res.Overflowed {
		return math.Inf(1)
	}
	return stats.BitsFromNats(res.Score)
}
